#!/usr/bin/env python3
"""Unit tests for amri_ast_lint.py, run on inline fixture sources.

Executed by ctest as `amri_ast_lint_selftest` and runnable directly:
  python3 tools/test_amri_ast_lint.py

Each test feeds (path, text) fixture pairs through `analyze()` with the
checks under test pinned, so a fixture written for AMRI101 cannot drown
in AMRI104 noise from its own scaffolding members.
"""

from __future__ import annotations

import pathlib
import sys
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from amri_ast_lint import (  # noqa: E402
    analyze,
    rank_constant_name,
    render_ranks_header,
)


def run(text, path="src/fixture.hpp", checks=None, seed_edges=(),
        require_rank_init=False, sources=None):
    """analyze() a single fixture (or an explicit source list) with seed
    edges disabled, so only the fixture's own structure is visible."""
    if sources is None:
        sources = [(path, text)]
    return analyze(sources, checks=checks, seed_edges=list(seed_edges),
                   require_rank_init=require_rank_init)


def rules_of(findings):
    return [f.rule for f in findings]


class CostParityTest(unittest.TestCase):
    """AMRI101: every metered entry point reaches exactly one charge."""

    CHECKS = {"AMRI101"}

    def test_direct_charge_is_clean(self):
        findings, _, _ = run(
            "class GoodIndex : public TupleIndex {\n"
            " public:\n"
            "  void insert(int k) { meter_->charge_insert(1); }\n"
            " private:\n"
            "  CostMeter* meter_;\n"
            "};\n", checks=self.CHECKS)
        self.assertEqual(rules_of(findings), [])

    def test_uncharged_entry_flagged(self):
        findings, _, _ = run(
            "class BadIndex : public TupleIndex {\n"
            " public:\n"
            "  void insert(int k) { table_[k] = 1; }\n"
            "};\n", checks=self.CHECKS)
        self.assertEqual(rules_of(findings), ["AMRI101"])
        self.assertIn("uncharged", findings[0].message)
        self.assertEqual(findings[0].line, 3)

    def test_charge_through_same_class_helper(self):
        findings, _, _ = run(
            "class HelperIndex : public TupleIndex {\n"
            " public:\n"
            "  void insert(int k) { charge(); }\n"
            " private:\n"
            "  void charge() { meter_->charge_insert(1); }\n"
            "  CostMeter* meter_;\n"
            "};\n", checks=self.CHECKS)
        self.assertEqual(rules_of(findings), [])

    def test_charge_via_costmeter_param(self):
        findings, _, _ = run(
            "class ParamIndex : public TupleIndex {\n"
            " public:\n"
            "  void probe(int k, CostMeter& m) { m.charge_probe(1); }\n"
            "};\n", checks=self.CHECKS)
        self.assertEqual(rules_of(findings), [])

    def test_delegation_to_ctor_metered_member(self):
        findings, _, _ = run(
            "class Delegating : public TupleIndex {\n"
            " public:\n"
            "  explicit Delegating(CostMeter* meter) : inner_(meter) {}\n"
            "  void insert(int k) { inner_->insert(k); }\n"
            " private:\n"
            "  HashIndex* inner_;\n"
            "};\n", checks=self.CHECKS)
        self.assertEqual(rules_of(findings), [])

    def test_double_charge_flagged(self):
        findings, _, _ = run(
            "class DoubleIndex : public TupleIndex {\n"
            " public:\n"
            "  explicit DoubleIndex(CostMeter* meter) : inner_(meter) {}\n"
            "  void insert(int k) {\n"
            "    meter_->charge_insert(1);\n"
            "    inner_->insert(k);\n"
            "  }\n"
            " private:\n"
            "  CostMeter* meter_;\n"
            "  HashIndex* inner_;\n"
            "};\n", checks=self.CHECKS)
        self.assertEqual(rules_of(findings), ["AMRI101"])
        self.assertIn("double-charged", findings[0].message)

    def test_two_step_make_unique_move_tracked(self):
        findings, _, _ = run(
            "class TwoStep : public TupleIndex {\n"
            " public:\n"
            "  void rebuild(int bits) {\n"
            "    auto idx = std::make_unique<HashIndex>(bits, meter_);\n"
            "    inner_ = std::move(idx);\n"
            "  }\n"
            "  void insert(int k) { inner_->insert(k); }\n"
            " private:\n"
            "  std::unique_ptr<HashIndex> inner_;\n"
            "  CostMeter* meter_;\n"
            "};\n", checks=self.CHECKS)
        self.assertEqual(rules_of(findings), [])

    def test_push_back_container_and_range_for(self):
        findings, _, _ = run(
            "class ModulePool : public TupleIndex {\n"
            " public:\n"
            "  void add_module(CostMeter* meter) {\n"
            "    mods_.push_back(std::make_unique<HashIndex>(meter));\n"
            "  }\n"
            "  void probe(int k) {\n"
            "    for (auto& m : mods_) m->probe(k);\n"
            "  }\n"
            " private:\n"
            "  std::vector<std::unique_ptr<HashIndex>> mods_;\n"
            "};\n", checks=self.CHECKS)
        self.assertEqual(rules_of(findings), [])

    def test_virtual_delegate_to_declared_only_entry(self):
        # Mirrors TupleIndex's default probe_batch: the loop body calls a
        # pure-virtual probe(), which charges in the implementation.
        findings, _, _ = run(
            "class TupleIndex {\n"
            " public:\n"
            "  virtual void probe(int k) = 0;\n"
            "  virtual void probe_batch(const std::vector<int>& ks) {\n"
            "    for (int k : ks) probe(k);\n"
            "  }\n"
            "};\n", checks=self.CHECKS)
        self.assertEqual(rules_of(findings), [])

    def test_bucket_directory_must_not_charge(self):
        findings, _, _ = run(
            "class BucketDirectory {\n"
            " public:\n"
            "  void insert(int k) { meter_->charge_insert(1); }\n"
            "};\n", checks=self.CHECKS)
        self.assertEqual(rules_of(findings), ["AMRI101"])
        self.assertIn("charge-free", findings[0].message)

    def test_bucket_directory_chargeless_is_clean(self):
        findings, _, _ = run(
            "class BucketDirectory {\n"
            " public:\n"
            "  void insert(int k) { slots_[k] = 1; }\n"
            "};\n", checks=self.CHECKS)
        self.assertEqual(rules_of(findings), [])

    def test_unmetered_class_is_out_of_scope(self):
        findings, _, _ = run(
            "class FreeList {\n"
            " public:\n"
            "  void insert(int k) { slots_[k] = 1; }\n"
            "};\n", checks=self.CHECKS)
        self.assertEqual(rules_of(findings), [])

    def test_waiver_on_line_above(self):
        findings, _, _ = run(
            "class WaivedIndex : public TupleIndex {\n"
            " public:\n"
            "  // amri-lint: allow(AMRI101)\n"
            "  void insert(int k) { table_[k] = 1; }\n"
            "};\n", checks={"AMRI100", "AMRI101"})
        self.assertEqual(rules_of(findings), [])


class ClockDisciplineTest(unittest.TestCase):
    """AMRI102: no wall-clock reads in cost-metered paths."""

    CHECKS = {"AMRI102"}

    def test_chrono_in_entry_flagged_once_per_method(self):
        findings, _, _ = run(
            "class ClockIndex : public TupleIndex {\n"
            " public:\n"
            "  void probe(int k) {\n"
            "    auto t0 = std::chrono::steady_clock::now();\n"
            "    meter_->charge_probe(1);\n"
            "    auto t1 = std::chrono::steady_clock::now();\n"
            "  }\n"
            "};\n", checks=self.CHECKS)
        self.assertEqual(rules_of(findings), ["AMRI102"])
        self.assertEqual(findings[0].line, 4)  # first chrono read
        self.assertIn("2 steady/system_clock read(s)", findings[0].message)

    def test_chrono_in_helper_reached_from_entry(self):
        findings, _, _ = run(
            "class TimedIndex : public TupleIndex {\n"
            " public:\n"
            "  void probe(int k) { timed_probe(k); }\n"
            " private:\n"
            "  void timed_probe(int k) {\n"
            "    auto t0 = std::chrono::system_clock::now();\n"
            "  }\n"
            "};\n", checks=self.CHECKS)
        self.assertEqual(rules_of(findings), ["AMRI102"])
        self.assertEqual(findings[0].line, 6)

    def test_telemetry_paths_exempt(self):
        findings, _, _ = run(
            "class StemOperator {\n"
            " public:\n"
            "  void probe(int k) {\n"
            "    auto t0 = std::chrono::steady_clock::now();\n"
            "  }\n"
            "};\n", path="src/telemetry/fixture.hpp", checks=self.CHECKS)
        self.assertEqual(rules_of(findings), [])

    def test_chrono_outside_metered_class_is_fine(self):
        findings, _, _ = run(
            "class Profiler {\n"
            " public:\n"
            "  void probe(int k) {\n"
            "    auto t0 = std::chrono::steady_clock::now();\n"
            "  }\n"
            "};\n", checks=self.CHECKS)
        self.assertEqual(rules_of(findings), [])

    def test_chrono_in_non_entry_method_not_reached(self):
        findings, _, _ = run(
            "class LazyIndex : public TupleIndex {\n"
            " public:\n"
            "  void insert(int k) { table_[k] = 1; }\n"
            "  void report() {\n"
            "    auto t0 = std::chrono::steady_clock::now();\n"
            "  }\n"
            "};\n", checks=self.CHECKS)
        self.assertEqual(rules_of(findings), [])

    def test_waiver_above_first_read_covers_method(self):
        findings, _, _ = run(
            "class WaivedClock : public TupleIndex {\n"
            " public:\n"
            "  void probe(int k) {\n"
            "    // amri-lint: allow(AMRI102)\n"
            "    auto t0 = std::chrono::steady_clock::now();\n"
            "    auto t1 = std::chrono::steady_clock::now();\n"
            "  }\n"
            "};\n", checks={"AMRI100", "AMRI102"})
        self.assertEqual(rules_of(findings), [])


LOCK_PAIR = (
    "class Leaf {\n"
    " public:\n"
    "  void log(int v) { MutexLock lk(mu_); }\n"
    "  Mutex mu_;\n"
    "};\n"
    "class Root {\n"
    " public:\n"
    "  void run() {\n"
    "    MutexLock lk(mu_);\n"
    "    leaf_->log(1);\n"
    "  }\n"
    "  Mutex mu_;\n"
    "  Leaf* leaf_;\n"
    "};\n")


class LockOrderTest(unittest.TestCase):
    """AMRI103: static acquisition graph, ranks, cycles, self-deadlock."""

    CHECKS = {"AMRI103"}

    def test_nested_acquisition_yields_edge_and_ranks(self):
        findings, ranks, edges = run(
            "class Inner {\n"
            " public:\n"
            "  Mutex mu_;\n"
            "};\n"
            "class Outer {\n"
            " public:\n"
            "  void f() {\n"
            "    MutexLock a(mu_);\n"
            "    MutexLock b(inner_.mu_);\n"
            "  }\n"
            "  Mutex mu_;\n"
            "  Inner inner_;\n"
            "};\n", checks=self.CHECKS)
        self.assertEqual(rules_of(findings), [])
        pairs = {(e.src, e.dst) for e in edges}
        self.assertIn(("Outer::mu_", "Inner::mu_"), pairs)
        self.assertLess(ranks["Outer::mu_"], ranks["Inner::mu_"])

    def test_call_under_lock_yields_edge(self):
        findings, ranks, edges = run(LOCK_PAIR, checks=self.CHECKS)
        self.assertEqual(rules_of(findings), [])
        hit = [e for e in edges
               if (e.src, e.dst) == ("Root::mu_", "Leaf::mu_")]
        self.assertTrue(hit)
        self.assertIn("under the lock", hit[0].why)
        self.assertLess(ranks["Root::mu_"], ranks["Leaf::mu_"])

    def test_cycle_reported_and_ranks_withheld(self):
        findings, ranks, _ = run(
            "class Ping {\n"
            " public:\n"
            "  void f() {\n"
            "    MutexLock lk(mu_);\n"
            "    peer_->g();\n"
            "  }\n"
            "  Mutex mu_;\n"
            "  Pong* peer_;\n"
            "};\n"
            "class Pong {\n"
            " public:\n"
            "  void g() {\n"
            "    MutexLock lk(mu_);\n"
            "    peer_->f();\n"
            "  }\n"
            "  Mutex mu_;\n"
            "  Ping* peer_;\n"
            "};\n", checks=self.CHECKS)
        # The transitive closure also proves each side may re-acquire its
        # own mutex through the cycle, so expect those findings too.
        self.assertEqual(set(rules_of(findings)), {"AMRI103"})
        self.assertTrue(any("lock acquisition cycle" in f.message
                            for f in findings))
        self.assertIsNone(ranks)

    def test_nested_same_mutex_is_self_deadlock(self):
        findings, _, _ = run(
            "class Recur {\n"
            " public:\n"
            "  void f() {\n"
            "    MutexLock a(mu_);\n"
            "    MutexLock b(mu_);\n"
            "  }\n"
            "  Mutex mu_;\n"
            "};\n", checks=self.CHECKS)
        self.assertEqual(rules_of(findings), ["AMRI103"])
        self.assertIn("self-deadlock", findings[0].message)
        self.assertEqual(findings[0].line, 5)

    def test_reacquire_via_call_is_self_deadlock(self):
        findings, _, _ = run(
            "class Chain {\n"
            " public:\n"
            "  void f() {\n"
            "    MutexLock lk(mu_);\n"
            "    peer_->f();\n"
            "  }\n"
            "  Mutex mu_;\n"
            "  Chain* peer_;\n"
            "};\n", checks=self.CHECKS)
        self.assertEqual(rules_of(findings), ["AMRI103"])
        self.assertIn("may re-acquire", findings[0].message)

    def test_disjoint_scopes_do_not_nest(self):
        findings, _, edges = run(
            "class Seq {\n"
            " public:\n"
            "  void f() {\n"
            "    { MutexLock a(mu_); }\n"
            "    { MutexLock b(mu_); }\n"
            "  }\n"
            "  Mutex mu_;\n"
            "};\n", checks=self.CHECKS)
        self.assertEqual(rules_of(findings), [])
        self.assertEqual(edges, [])

    def test_seed_edges_orient_ranks(self):
        src = ("class A {\n public:\n  Mutex mu_;\n};\n"
               "class B {\n public:\n  Mutex mu_;\n};\n")
        _, ranks, edges = run(
            src, checks=self.CHECKS,
            seed_edges=[("B::mu_", "A::mu_", "runtime-only ordering")])
        self.assertLess(ranks["B::mu_"], ranks["A::mu_"])
        self.assertEqual(edges[0].why, "runtime-only ordering")

    def test_seed_edge_with_unknown_node_dropped(self):
        src = "class A {\n public:\n  Mutex mu_;\n};\n"
        _, ranks, edges = run(
            src, checks=self.CHECKS,
            seed_edges=[("Ghost::mu_", "A::mu_", "stale seed")])
        self.assertEqual(edges, [])
        self.assertEqual(ranks, {"A::mu_": 10})

    def test_ranks_deterministic(self):
        _, r1, _ = run(LOCK_PAIR, checks=self.CHECKS)
        _, r2, _ = run(LOCK_PAIR, checks=self.CHECKS)
        self.assertEqual(r1, r2)

    def test_rank_init_required(self):
        src = ("class A {\n"
               " public:\n"
               "  void f() { MutexLock lk(mu_); }\n"
               "  Mutex mu_;\n"
               "};\n")
        findings, _, _ = run(src, checks=self.CHECKS,
                             require_rank_init=True)
        self.assertEqual(rules_of(findings), ["AMRI103"])
        self.assertIn("lockrank::kAMu", findings[0].message)

    def test_rank_init_satisfied(self):
        src = ("class A {\n"
               " public:\n"
               "  void f() { MutexLock lk(mu_); }\n"
               "  Mutex mu_{lockrank::kAMu};\n"
               "};\n")
        findings, _, _ = run(src, checks=self.CHECKS,
                             require_rank_init=True)
        self.assertEqual(rules_of(findings), [])


class RankHeaderTest(unittest.TestCase):
    def test_constant_names(self):
        self.assertEqual(rank_constant_name("MetricsRegistry::mu_"),
                         "kMetricsRegistryMu")
        self.assertEqual(rank_constant_name("ShardedBitIndex::Shard::mu"),
                         "kShardedBitIndexShardMu")

    def test_header_rendering(self):
        header = render_ranks_header({"B::mu_": 20, "A::mu_": 10})
        self.assertIn("#pragma once", header)
        self.assertIn("inline constexpr int kAMu = 10;", header)
        self.assertIn("inline constexpr int kBMu = 20;", header)
        self.assertLess(header.index("kAMu"), header.index("kBMu"))
        self.assertIn("namespace amri::lockrank", header)

    def test_header_has_no_line_continuations_in_comments(self):
        # A trailing backslash in a // comment trips -Wcomment in every
        # including TU; the generator must never emit one.
        header = render_ranks_header({"A::mu_": 10})
        for line in header.splitlines():
            self.assertFalse(line.endswith("\\"), line)

    def test_header_is_ascii(self):
        header = render_ranks_header({"A::mu_": 10})
        header.encode("ascii")


class AnnotationCoverageTest(unittest.TestCase):
    """AMRI104: mutable members of Mutex-owning classes carry guards."""

    CHECKS = {"AMRI104"}

    def test_unannotated_member_flagged(self):
        findings, _, _ = run(
            "class Counted {\n"
            " public:\n"
            "  void bump() { MutexLock lk(mu_); ++count_; }\n"
            " private:\n"
            "  Mutex mu_;\n"
            "  int count_ = 0;\n"
            "};\n", checks=self.CHECKS)
        self.assertEqual(rules_of(findings), ["AMRI104"])
        self.assertIn("Counted::count_", findings[0].message)
        self.assertEqual(findings[0].line, 6)

    def test_skip_list_members_exempt(self):
        findings, _, _ = run(
            "class Skips {\n"
            " private:\n"
            "  Mutex mu_;\n"
            "  CondVar cv_;\n"
            "  const int limit_ = 8;\n"
            "  static int instances_;\n"
            "  std::atomic<int> seq_{0};\n"
            "  telemetry::Counter* hits_ = nullptr;\n"
            "  telemetry::Gauge* depth_ = nullptr;\n"
            "  std::vector<int>& backing_;\n"
            "  int held_ AMRI_GUARDED_BY(mu_);\n"
            "  int* boxed_ AMRI_PT_GUARDED_BY(mu_);\n"
            "};\n", checks=self.CHECKS)
        self.assertEqual(rules_of(findings), [])

    def test_class_without_mutex_not_checked(self):
        findings, _, _ = run(
            "class Plain {\n"
            " private:\n"
            "  int count_ = 0;\n"
            "};\n", checks=self.CHECKS)
        self.assertEqual(rules_of(findings), [])

    def test_waiver_on_member_line(self):
        findings, _, _ = run(
            "class Waived {\n"
            " private:\n"
            "  Mutex mu_;\n"
            "  int count_ = 0;  // amri-lint: allow(AMRI104)\n"
            "};\n", checks={"AMRI100", "AMRI104"})
        self.assertEqual(rules_of(findings), [])


class WaiverHygieneTest(unittest.TestCase):
    """AMRI100: waivers must suppress something real."""

    def test_stale_waiver_flagged(self):
        findings, _, _ = run(
            "class CleanIndex : public TupleIndex {\n"
            " public:\n"
            "  // amri-lint: allow(AMRI101)\n"
            "  void insert(int k) { meter_->charge_insert(1); }\n"
            "};\n", checks={"AMRI100", "AMRI101"})
        self.assertEqual(rules_of(findings), ["AMRI100"])
        self.assertIn("stale waiver", findings[0].message)
        self.assertEqual(findings[0].line, 3)

    def test_unknown_rule_in_waiver_flagged(self):
        findings, _, _ = run(
            "int x;  // amri-lint: allow(AMRI177)\n")
        self.assertEqual(rules_of(findings), ["AMRI100"])
        self.assertIn("unknown rule AMRI177", findings[0].message)

    def test_foreign_namespace_waivers_ignored(self):
        # AMRI0xx belongs to amri_lint.py; this tool neither honours nor
        # polices those waivers.
        findings, _, _ = run(
            "int x;  // amri-lint: allow(AMRI002)\n")
        self.assertEqual(rules_of(findings), [])


class OutOfLineTest(unittest.TestCase):
    """Out-of-line .cpp definitions attach to classes declared in headers
    regardless of the order sources are supplied."""

    HPP = ("#pragma once\n"
           "class OolIndex : public TupleIndex {\n"
           " public:\n"
           "  void insert(int k);\n"
           " private:\n"
           "  CostMeter* meter_;\n"
           "};\n")

    def test_uncharged_out_of_line_body_flagged(self):
        cpp = ('#include "ool.hpp"\n'
               "void OolIndex::insert(int k) { table_[k] = 1; }\n")
        findings, _, _ = run(
            None, checks={"AMRI101"},
            sources=[("src/z_ool.cpp", cpp), ("src/a_ool.hpp", self.HPP)])
        self.assertEqual(rules_of(findings), ["AMRI101"])
        self.assertEqual(str(findings[0].path), "src/z_ool.cpp")

    def test_charged_out_of_line_body_clean(self):
        cpp = ('#include "ool.hpp"\n'
               "void OolIndex::insert(int k) { meter_->charge_insert(1); }\n")
        findings, _, _ = run(
            None, checks={"AMRI101"},
            sources=[("src/z_ool.cpp", cpp), ("src/a_ool.hpp", self.HPP)])
        self.assertEqual(rules_of(findings), [])


if __name__ == "__main__":
    unittest.main(verbosity=2)
