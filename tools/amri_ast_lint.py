#!/usr/bin/env python3
"""AMRI AST lint: semantic contract checkers over a lightweight C++ AST.

Where tools/amri_lint.py enforces line-local invariants with regexes, this
tool parses the code into classes / members / method bodies and checks
contracts that need structure:

AMRI101  cost parity. Every public mutating/probing entry point of a
         TupleIndex implementation, StemOperator, or BucketDirectory must
         reach exactly ONE CostMeter charging layer per logical tuple
         served: either it (or a same-class helper) charges the meter
         directly, or it delegates to a member that was constructed with
         the same meter — never both (double charge in a wrapper), never
         neither (uncharged fast path). BucketDirectory is charge-free by
         contract (its owner charges around it).
AMRI102  clock discipline. No std::chrono::steady_clock / system_clock
         reads inside cost-metered call paths (entry points above and the
         same-class helpers they reach). Wall time belongs to telemetry /
         profiler code only (src/telemetry/ is exempt).
AMRI103  lock order. Extracts the static Mutex acquisition graph from
         MutexLock/UniqueLock nesting and cross-class calls made while a
         lock is held, assigns distinct total-order ranks by longest-path
         layering, and fails on cycles, self-nesting, or (with
         --require-rank-init) a Mutex member whose declaration does not
         brace-initialize with its generated lockrank:: constant.
AMRI104  annotation coverage. Every mutable non-atomic data member of a
         class that owns an amri::Mutex must carry AMRI_GUARDED_BY /
         AMRI_PT_GUARDED_BY (closing the gap where -Wthread-safety
         silently ignores unannotated fields).
AMRI100  stale waiver. An `// amri-lint: allow(AMRI1xx)` comment that
         suppresses nothing is itself an error (shared semantics with
         amri_lint.py's AMRI007 for the AMRI0xx namespace).

Waive a finding with `// amri-lint: allow(AMRI10N)` on the offending line
or the line directly above it.

The default backend is a self-contained tokenizer + structural parser (no
toolchain needed, deterministic, unit-tested). `--backend libclang` uses
clang.cindex over compile_commands.json when the bindings are installed;
`--backend auto` tries libclang and falls back with a note.

Usage:  amri_ast_lint.py [paths...] [--checks AMRI101,AMRI103]
                         [--compile-commands build/compile_commands.json]
                         [--emit-ranks PATH|-] [--check-ranks PATH]
                         [--require-rank-init] [--list-edges]
Exit:   0 clean, 1 findings (or stale ranks), 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys
from dataclasses import dataclass, field

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from amri_lint import Finding, strip_comments_and_strings  # noqa: E402

RULES = {"AMRI100", "AMRI101", "AMRI102", "AMRI103", "AMRI104"}
RULE_NAMESPACE_RE = re.compile(r"^AMRI1\d\d$")
WAIVER_RE = re.compile(r"amri-lint:\s*allow\(([A-Z0-9, ]+)\)")
CXX_SUFFIXES = {".hpp", ".h", ".cpp", ".cc", ".cxx"}

# AMRI101 scope: classes deriving from these bases, plus these class names.
METERED_BASES = {"TupleIndex"}
METERED_CLASSES = {"StemOperator", "TupleIndex"}
# Classes that must never charge a meter (owners charge around them).
NO_CHARGE_CLASSES = {"BucketDirectory"}
# Public entry points checked for cost parity (when they have a body).
ENTRY_METHODS = {
    "insert", "erase", "probe", "probe_batch", "probe_range",
    "insert_batch", "expire", "bulk_load", "reconfigure",
}
METER_PARAM_TOKENS = {"meter", "meter_"}

# Runtime edges the static resolver cannot see, with justification.
SEED_EDGES = [
    ("MetricsRegistry::mu_", "Histogram::mu_",
     "MetricsRegistry::histogram() constructs the Histogram (whose ctor "
     "takes its own lock) inside try_emplace under the registry mutex"),
]

LOCK_CLASSES = {"MutexLock", "UniqueLock"}
CHARGE_CALL_RE = re.compile(r"^charge_\w+$")

TOKEN_RE = re.compile(r"[A-Za-z_]\w*|::|->|\d[\w.+-]*|\S")

NON_NAME_KEYWORDS = {
    "public", "private", "protected", "virtual", "final", "override",
    "const", "constexpr", "inline", "static", "mutable", "explicit",
    "noexcept", "struct", "class", "typename", "using", "friend",
}


@dataclass
class Tok:
    text: str
    line: int


def tokenize(code: str) -> list[Tok]:
    toks: list[Tok] = []
    for lineno, line in enumerate(code.splitlines(), start=1):
        if line.lstrip().startswith("#"):
            continue  # preprocessor directives carry no structure we need
        for m in TOKEN_RE.finditer(line):
            toks.append(Tok(m.group(), lineno))
    return toks


@dataclass
class Member:
    name: str
    line: int
    type_toks: list[str]
    guarded_by: str | None = None
    pt_guarded_by: str | None = None
    is_const: bool = False
    is_static: bool = False
    is_atomic: bool = False
    is_mutex: bool = False
    is_condvar: bool = False
    is_reference: bool = False
    init_toks: list[str] = field(default_factory=list)


@dataclass
class Method:
    cls_qual: str
    name: str
    line: int
    path: str
    param_types: dict[str, list[str]]
    body: list[Tok]
    init_list: list[tuple[str, list[str]]] = field(default_factory=list)
    is_decl_only: bool = False


@dataclass
class ClassInfo:
    qual: str  # namespace-stripped qualified name, e.g. ShardedBitIndex::Shard
    name: str  # last component
    path: str
    line: int
    bases: list[str] = field(default_factory=list)
    members: dict[str, Member] = field(default_factory=dict)
    methods: list[Method] = field(default_factory=list)
    declared_method_names: set[str] = field(default_factory=set)


class Model:
    """Parsed classes and free-standing method definitions across files."""

    def __init__(self) -> None:
        self.classes: dict[str, ClassInfo] = {}
        self.by_name: dict[str, list[ClassInfo]] = {}

    def add_class(self, cls: ClassInfo) -> ClassInfo:
        if cls.qual in self.classes:
            # Same class seen again (header re-parsed for another TU set):
            # keep the first, richer definitions merge via methods list.
            return self.classes[cls.qual]
        self.classes[cls.qual] = cls
        self.by_name.setdefault(cls.name, []).append(cls)
        return cls

    def resolve(self, name: str) -> ClassInfo | None:
        """Resolve a class by trailing qualified name (unique match only)."""
        if name in self.classes:
            return self.classes[name]
        cands = self.by_name.get(name.split("::")[-1], [])
        cands = [c for c in cands if c.qual.endswith(name)]
        return cands[0] if len(cands) == 1 else None


def _skip_balanced(toks: list[Tok], i: int, open_c: str, close_c: str) -> int:
    """`i` indexes the opening token; returns index just past the close."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == open_c:
            depth += 1
        elif t == close_c:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def _is_ident(text: str) -> bool:
    return bool(re.match(r"^[A-Za-z_]\w*$", text))


class Parser:
    """Structural scanner: namespaces, (nested) classes, members, methods."""

    def __init__(self, path: str, toks: list[Tok], model: Model) -> None:
        self.path = path
        self.toks = toks
        self.model = model

    def parse(self) -> None:
        self._scan_scope(0, len(self.toks), qual_prefix="")

    # --- namespace / file scope -------------------------------------------

    def _scan_scope(self, i: int, end: int, qual_prefix: str) -> None:
        toks = self.toks
        while i < end:
            t = toks[i].text
            if t == "namespace":
                j = i + 1
                while j < end and toks[j].text not in ("{", ";"):
                    j += 1
                if j < end and toks[j].text == "{":
                    close = _skip_balanced(toks, j, "{", "}")
                    self._scan_scope(j + 1, close - 1, qual_prefix)
                    i = close
                else:
                    i = j + 1
                continue
            if t in ("class", "struct") and self._is_class_def(i, end):
                i = self._parse_class(i, end, qual_prefix)
                continue
            if t == "enum":
                i = self._skip_past_braces_or_semi(i, end)
                continue
            if t == "template":
                i = self._skip_template_header(i, end)
                continue
            # Free-standing statement: either `...;` or `... { body }`.
            j = i
            while j < end and toks[j].text not in (";", "{"):
                if toks[j].text == "(":
                    j = _skip_balanced(toks, j, "(", ")")
                    continue
                j += 1
            if j >= end:
                return
            if toks[j].text == ";":
                i = j + 1
                continue
            # `{` — out-of-line method definition, or some other braced thing.
            close = _skip_balanced(toks, j, "{", "}")
            self._try_out_of_line(i, j, close, qual_prefix)
            i = close
            if i < end and toks[i].text == ";":
                i += 1

    def _is_class_def(self, i: int, end: int) -> bool:
        """class/struct followed by a body (not a forward decl / elaborated
        type specifier in a declaration)."""
        toks = self.toks
        j = i + 1
        while j < end:
            t = toks[j].text
            if t == "(":  # attribute macro, e.g. AMRI_CAPABILITY("mutex")
                j = _skip_balanced(toks, j, "(", ")")
                continue
            if t == "{":
                return True
            if t in (";", ")", ",", "=", ">"):
                return False
            if t == ":":
                return True  # base clause
            j += 1
        return False

    def _skip_past_braces_or_semi(self, i: int, end: int) -> int:
        toks = self.toks
        j = i
        while j < end and toks[j].text not in ("{", ";"):
            j += 1
        if j < end and toks[j].text == "{":
            j = _skip_balanced(toks, j, "{", "}")
        while j < end and toks[j].text != ";":
            j += 1
        return j + 1

    def _skip_template_header(self, i: int, end: int) -> int:
        toks = self.toks
        j = i + 1
        if j < end and toks[j].text == "<":
            depth = 0
            while j < end:
                if toks[j].text == "<":
                    depth += 1
                elif toks[j].text == ">":
                    depth -= 1
                    if depth == 0:
                        return j + 1
                j += 1
        return j

    # --- class bodies ------------------------------------------------------

    def _parse_class(self, i: int, end: int, qual_prefix: str) -> int:
        toks = self.toks
        j = i + 1
        name: str | None = None
        bases: list[str] = []
        while j < end and toks[j].text not in ("{", ";"):
            t = toks[j].text
            if t == "(":
                j = _skip_balanced(toks, j, "(", ")")
                continue
            if t == ":":
                j += 1
                while j < end and toks[j].text != "{":
                    if _is_ident(toks[j].text) and \
                            toks[j].text not in NON_NAME_KEYWORDS:
                        bases.append(toks[j].text)
                    j += 1
                break
            if _is_ident(t) and t not in NON_NAME_KEYWORDS and \
                    not t.startswith("AMRI_"):
                name = t
            j += 1
        if j >= end or toks[j].text == ";" or name is None:
            return j + 1
        close = _skip_balanced(toks, j, "{", "}")
        qual = f"{qual_prefix}::{name}" if qual_prefix else name
        cls = self.model.add_class(
            ClassInfo(qual=qual, name=name, path=self.path,
                      line=toks[i].line, bases=bases))
        self._scan_class_body(cls, j + 1, close - 1)
        k = close
        while k < end and toks[k].text != ";":
            k += 1
        return k + 1

    def _scan_class_body(self, cls: ClassInfo, i: int, end: int) -> None:
        toks = self.toks
        while i < end:
            t = toks[i].text
            if _is_ident(t) and i + 1 < end and toks[i + 1].text == ":" and \
                    t in ("public", "private", "protected"):
                i += 2
                continue
            if t in ("using", "friend", "static_assert", "typedef"):
                i = self._skip_past_braces_or_semi(i, end)
                continue
            if t in ("class", "struct") and self._is_class_def(i, end):
                i = self._parse_class(i, end, cls.qual)
                continue
            if t == "enum":
                i = self._skip_past_braces_or_semi(i, end)
                continue
            if t == "template":
                i = self._skip_template_header(i, end)
                continue
            if t == ";":
                i += 1
                continue
            i = self._parse_class_statement(cls, i, end)

    def _parse_class_statement(self, cls: ClassInfo, i: int,
                               end: int) -> int:
        """One member declaration or method (decl or inline definition)."""
        toks = self.toks
        j = i
        angle = 0
        paren_at = -1  # index of first top-level declarator paren
        while j < end:
            t = toks[j].text
            if t == "<" and j > i and (_is_ident(toks[j - 1].text)
                                       or toks[j - 1].text == "::"):
                angle += 1
            elif t == ">" and angle > 0:
                angle -= 1
            elif t == "(" and angle == 0:
                prev = toks[j - 1].text if j > i else ""
                if _is_ident(prev) and prev.startswith("AMRI_"):
                    j = _skip_balanced(toks, j, "(", ")")
                    continue
                paren_at = j
                break
            elif t in ("{", ";") and angle == 0:
                break
            j += 1
        if j >= end:
            return end
        if paren_at < 0:
            return self._parse_member(cls, i, end)
        return self._parse_method(cls, i, paren_at, end)

    def _parse_member(self, cls: ClassInfo, i: int, end: int) -> int:
        """Member variable: tokens up to `;`, optional `{init}` / `= init`."""
        toks = self.toks
        stmt: list[Tok] = []
        init: list[str] = []
        j = i
        while j < end and toks[j].text != ";":
            if toks[j].text == "{":
                close = _skip_balanced(toks, j, "{", "}")
                init = [tk.text for tk in toks[j + 1:close - 1]]
                j = close
                continue
            stmt.append(toks[j])
            j += 1
        texts = [tk.text for tk in stmt]
        if "=" in texts:
            eq = texts.index("=")
            init = texts[eq + 1:]
            stmt = stmt[:eq]
            texts = texts[:eq]
        guarded = pt_guarded = None
        clean: list[Tok] = []
        k = 0
        while k < len(stmt):
            t = stmt[k].text
            if t in ("AMRI_GUARDED_BY", "AMRI_PT_GUARDED_BY") and \
                    k + 1 < len(stmt) and stmt[k + 1].text == "(":
                close = _skip_balanced(stmt, k + 1, "(", ")")
                arg = " ".join(tk.text for tk in stmt[k + 2:close - 1])
                if t == "AMRI_GUARDED_BY":
                    guarded = arg
                else:
                    pt_guarded = arg
                k = close
                continue
            if t.startswith("AMRI_"):
                k += 1
                if k < len(stmt) and stmt[k].text == "(":
                    k = _skip_balanced(stmt, k, "(", ")")
                continue
            clean.append(stmt[k])
            k += 1
        names = [tk for tk in clean if _is_ident(tk.text)]
        if not names:
            return j + 1
        name_tok = names[-1]
        type_toks = [tk.text for tk in clean if tk is not name_tok]
        mem = Member(
            name=name_tok.text, line=name_tok.line, type_toks=type_toks,
            guarded_by=guarded, pt_guarded_by=pt_guarded,
            is_const="const" in type_toks or "constexpr" in type_toks,
            is_static="static" in type_toks,
            is_atomic="atomic" in type_toks or "Counter" in type_toks
                      or "Gauge" in type_toks,
            is_mutex="Mutex" in type_toks,
            is_condvar="CondVar" in type_toks
                       or "condition_variable_any" in type_toks,
            is_reference="&" in type_toks,
            init_toks=init)
        if mem.name not in cls.members:
            cls.members[mem.name] = mem
        return j + 1

    def _parse_method(self, cls: ClassInfo, i: int, paren_at: int,
                      end: int) -> int:
        toks = self.toks
        name = toks[paren_at - 1].text
        if not _is_ident(name):
            name = "operator"
        if paren_at - 2 >= i and toks[paren_at - 2].text == "~":
            name = "~" + name
        params_end = _skip_balanced(toks, paren_at, "(", ")")
        param_types = _parse_params(toks[paren_at + 1:params_end - 1])
        j = params_end
        init_list: list[tuple[str, list[str]]] = []
        while j < end and toks[j].text not in ("{", ";"):
            t = toks[j].text
            if t == "=":
                # `= default;` / `= delete;` / `= 0;`
                while j < end and toks[j].text != ";":
                    j += 1
                break
            if t == ":":
                init_list, j = self._parse_init_list(j + 1, end)
                break
            if t == "(":
                j = _skip_balanced(toks, j, "(", ")")
                continue
            j += 1
        if j >= end or toks[j].text == ";":
            cls.declared_method_names.add(name)
            return j + 1
        close = _skip_balanced(toks, j, "{", "}")
        cls.declared_method_names.add(name)
        cls.methods.append(Method(
            cls_qual=cls.qual, name=name, line=toks[paren_at - 1].line,
            path=self.path, param_types=param_types,
            body=toks[j + 1:close - 1], init_list=init_list))
        return close

    def _parse_init_list(
            self, i: int,
            end: int) -> tuple[list[tuple[str, list[str]]], int]:
        toks = self.toks
        entries: list[tuple[str, list[str]]] = []
        j = i
        while j < end and toks[j].text != "{":
            t = toks[j].text
            if _is_ident(t) and j + 1 < end and \
                    toks[j + 1].text in ("(",):
                close = _skip_balanced(toks, j + 1, "(", ")")
                entries.append(
                    (t, [tk.text for tk in toks[j + 2:close - 1]]))
                j = close
                continue
            if _is_ident(t) and j + 1 < end and toks[j + 1].text == "{" \
                    and toks[j - 1].text in (":", ","):
                close = _skip_balanced(toks, j + 1, "{", "}")
                entries.append(
                    (t, [tk.text for tk in toks[j + 2:close - 1]]))
                j = close
                continue
            j += 1
        return entries, j

    # --- out-of-line definitions ------------------------------------------

    def _try_out_of_line(self, start: int, brace_at: int, close: int,
                         qual_prefix: str) -> None:
        """Recognize `Ret Class::method(params) quals { body }` between
        start..close and attach it to the class."""
        toks = self.toks
        # Find the declarator paren: the first top-level `(` preceded by a
        # `Class::name` chain.
        j = start
        while j < brace_at:
            if toks[j].text == "(" and j >= 2 and \
                    _is_ident(toks[j - 1].text) and \
                    toks[j - 2].text == "::":
                break
            if toks[j].text == "(":
                j = _skip_balanced(toks, j, "(", ")")
                continue
            j += 1
        else:
            return
        if j >= brace_at:
            return
        # Walk the ident(::ident)* chain backwards from the method name.
        chain = [toks[j - 1].text]
        k = j - 2
        while k >= start + 1 and toks[k].text == "::" and \
                _is_ident(toks[k - 1].text):
            chain.append(toks[k - 1].text)
            k -= 2
        chain.reverse()
        if len(chain) < 2:
            return
        method_name = chain[-1]
        cls = self.model.resolve("::".join(chain[:-1]))
        if cls is None:
            return
        params_end = _skip_balanced(toks, j, "(", ")")
        param_types = _parse_params(toks[j + 1:params_end - 1])
        init_list: list[tuple[str, list[str]]] = []
        m = params_end
        while m < brace_at:
            if toks[m].text == ":":
                init_list, m = self._parse_init_list(m + 1, brace_at + 1)
                break
            if toks[m].text == "(":
                m = _skip_balanced(toks, m, "(", ")")
                continue
            m += 1
        cls.methods.append(Method(
            cls_qual=cls.qual, name=method_name, line=toks[j - 1].line,
            path=self.path, param_types=param_types,
            body=toks[brace_at + 1:close - 1], init_list=init_list))
        cls.declared_method_names.add(method_name)


def _parse_params(toks: list[Tok]) -> dict[str, list[str]]:
    """Parameter list tokens -> {param_name: type tokens}. Commas at
    angle/paren depth 0 split parameters; the last identifier is the name."""
    params: dict[str, list[str]] = {}
    cur: list[str] = []
    depth = 0

    def flush() -> None:
        idents = [t for t in cur if _is_ident(t)]
        if len(idents) >= 2:
            params[idents[-1]] = cur[:]
        cur.clear()

    for tk in toks:
        t = tk.text
        if t in ("<", "(", "[", "{"):
            depth += 1
        elif t in (">", ")", "]", "}"):
            depth -= 1
        elif t == "," and depth == 0:
            flush()
            continue
        if t == "=" and depth == 0:
            flush()
            cur.append("\x00defaulted")  # swallow default argument tokens
            continue
        if cur and cur[0] == "\x00defaulted":
            continue
        cur.append(t)
    flush()
    return params


# ---------------------------------------------------------------------------
# Body-level analysis helpers
# ---------------------------------------------------------------------------


def _brace_pairs(body: list[Tok]) -> list[tuple[int, int]]:
    pairs: list[tuple[int, int]] = []
    stack: list[int] = []
    for i, tk in enumerate(body):
        if tk.text == "{":
            stack.append(i)
        elif tk.text == "}" and stack:
            pairs.append((stack.pop(), i))
    return pairs


def _enclosing_scope_end(pairs: list[tuple[int, int]], i: int,
                         body_len: int) -> int:
    best = body_len
    for (o, c) in pairs:
        if o < i < c and c < best:
            best = c
    return best


def _receiver_index(body: list[Tok], op_idx: int) -> int | None:
    """Index of the receiver identifier for `.`/`->` at op_idx, skipping one
    trailing `[...]` subscript. None for chained calls `foo()->bar()`."""
    j = op_idx - 1
    if j >= 0 and body[j].text == "]":
        depth = 0
        while j >= 0:
            if body[j].text == "]":
                depth += 1
            elif body[j].text == "[":
                depth -= 1
                if depth == 0:
                    j -= 1
                    break
            j -= 1
    if j >= 0 and _is_ident(body[j].text):
        return j
    return None


class MethodFacts:
    """Per-method extraction shared by the checkers."""

    def __init__(self, model: Model, cls: ClassInfo, method: Method,
                 metered_members: set[str]) -> None:
        self.model = model
        self.cls = cls
        self.method = method
        self.direct_charge_lines: list[int] = []
        self.chrono_lines: list[int] = []
        # Same-class bare calls: name -> first line.
        self.same_class_calls: dict[str, int] = {}
        # Delegating calls on metered members: (member, callee, line).
        self.metered_delegations: list[tuple[str, str, int]] = []
        # Lock acquisitions: (node, tok_idx, scope_end_idx, line).
        self.acquisitions: list[tuple[str, int, int, int]] = []
        # Cross-class calls: (callee ClassInfo, method name, tok_idx, line).
        self.calls: list[tuple[ClassInfo, str, int, int]] = []
        self._env = self._build_env(metered_members)
        self._scan(metered_members)

    # -- type environment ---------------------------------------------------

    def _base_class_of(self, type_toks: list[str]) -> ClassInfo | None:
        hit = None
        for t in type_toks:
            if _is_ident(t) and t in self.model.by_name:
                cands = self.model.by_name[t]
                if len(cands) == 1:
                    hit = cands[0]  # innermost template arg wins (last match)
        return hit

    def _build_env(self, metered_members: set[str]) -> dict[str, ClassInfo]:
        env: dict[str, ClassInfo] = {}
        for pname, ptoks in self.method.param_types.items():
            base = self._base_class_of(ptoks)
            if base is not None:
                env[pname] = base
        body = self.method.body
        self.metered_locals: set[str] = set()
        n = len(body)
        for i, tk in enumerate(body):
            # `Cls & name =` / `Cls name(` local declarations.
            if _is_ident(tk.text) and tk.text in self.model.by_name:
                cands = self.model.by_name[tk.text]
                if len(cands) != 1:
                    continue
                j = i + 1
                while j < n and body[j].text in ("&", "*", "const"):
                    j += 1
                if j < n and _is_ident(body[j].text) and j + 1 < n and \
                        body[j + 1].text in ("=", ";", "{"):
                    env[body[j].text] = cands[0]
            # Range-for: `for ( auto & name : member )`.
            if tk.text == "for" and i + 1 < n and body[i + 1].text == "(":
                close = _skip_balanced(body, i + 1, "(", ")")
                inner = body[i + 2:close - 1]
                texts = [t.text for t in inner]
                if ":" in texts:
                    colon = texts.index(":")
                    head, tail = inner[:colon], texts[colon + 1:]
                    idents = [t.text for t in head if _is_ident(t.text)]
                    if idents:
                        var = idents[-1]
                        cont = next((t for t in tail if _is_ident(t)), None)
                        if cont and cont in self.cls.members:
                            base = self._base_class_of(
                                self.cls.members[cont].type_toks)
                            if base is not None:
                                env[var] = base
                            if cont in metered_members:
                                self.metered_locals.add(var)
        return env

    # -- scanning -----------------------------------------------------------

    def _node_for_member(self, cls: ClassInfo, member: str) -> str | None:
        mem = cls.members.get(member)
        if mem is not None and mem.is_mutex and not mem.is_reference:
            return f"{cls.qual}::{member}"
        return None

    def _resolve_lock_arg(self, arg: list[Tok]) -> str | None:
        texts = [t.text for t in arg]
        if len(texts) == 1 and _is_ident(texts[0]):
            return self._node_for_member(self.cls, texts[0])
        if len(texts) == 3 and texts[1] in (".", "->") and \
                _is_ident(texts[0]) and _is_ident(texts[2]):
            base = self._env.get(texts[0])
            if base is None and texts[0] in self.cls.members:
                base = self._base_class_of(
                    self.cls.members[texts[0]].type_toks)
            if base is not None:
                return self._node_for_member(base, texts[2])
        return None

    def _scan(self, metered_members: set[str]) -> None:
        body = self.method.body
        n = len(body)
        pairs = _brace_pairs(body)
        meter_names = {m for m in (metered_members or set())}
        # Members whose type is CostMeter act as the chargeable meter.
        cost_meters = {name for name, mem in self.cls.members.items()
                       if "CostMeter" in mem.type_toks}
        cost_meters |= {p for p, tks in self.method.param_types.items()
                        if "CostMeter" in tks}
        cost_meters |= METER_PARAM_TOKENS
        i = 0
        while i < n:
            t = body[i].text
            if t in ("steady_clock", "system_clock"):
                self.chrono_lines.append(body[i].line)
            if t in LOCK_CLASSES and i + 2 < n and \
                    _is_ident(body[i + 1].text) and body[i + 2].text == "(":
                close = _skip_balanced(body, i + 2, "(", ")")
                node = self._resolve_lock_arg(body[i + 3:close - 1])
                if node is not None:
                    scope_end = _enclosing_scope_end(pairs, i, n)
                    self.acquisitions.append(
                        (node, i, scope_end, body[i].line))
                i = close
                continue
            if t == "(" and i > 0 and _is_ident(body[i - 1].text):
                callee = body[i - 1].text
                prev2 = body[i - 2].text if i >= 2 else ""
                if prev2 in (".", "->"):
                    ridx = _receiver_index(body, i - 2)
                    recv = body[ridx].text if ridx is not None else None
                    if CHARGE_CALL_RE.match(callee) and recv in cost_meters:
                        self.direct_charge_lines.append(body[i - 1].line)
                    elif recv is not None:
                        self._record_receiver_call(
                            recv, callee, metered_members, i, body[i].line)
                elif prev2 != "::" and callee not in NON_NAME_KEYWORDS and \
                        callee not in ("if", "for", "while", "switch",
                                       "return", "sizeof", "catch"):
                    if callee in self.cls.declared_method_names:
                        self.same_class_calls.setdefault(
                            callee, body[i - 1].line)
                        self.calls.append(
                            (self.cls, callee, i - 1, body[i - 1].line))
            i += 1

    def _record_receiver_call(self, recv: str, callee: str,
                              metered_members: set[str], tok_idx: int,
                              line: int) -> None:
        if (recv in metered_members or recv in self.metered_locals) and \
                callee in ENTRY_METHODS:
            self.metered_delegations.append((recv, callee, line))
        base: ClassInfo | None = None
        if recv in self._env:
            base = self._env[recv]
        elif recv in self.cls.members:
            base = self._base_class_of(self.cls.members[recv].type_toks)
        if base is not None:
            self.calls.append((base, callee, tok_idx, line))


def compute_metered_members(model: Model, cls: ClassInfo) -> set[str]:
    """Members constructed/filled with the class's CostMeter: the delegated
    charging layer for AMRI101. Tracks ctor-init args, make_unique
    assignments, two-step `local = make_unique(...); member_ =
    std::move(local)` / `.get()` aliasing, and container push_back."""
    metered: set[str] = set()
    member_names = set(cls.members)
    for method in cls.methods:
        tainted_locals: set[str] = set()
        for (mem, args) in method.init_list:
            target = cls.members.get(mem)
            if target is not None and "CostMeter" in target.type_toks:
                continue  # the meter member itself, not a delegate
            if set(args) & METER_PARAM_TOKENS and mem in member_names:
                metered.add(mem)
        body = method.body
        n = len(body)
        i = 0
        while i < n:
            t = body[i].text
            stmt_end = i
            while stmt_end < n and body[stmt_end].text != ";":
                stmt_end += 1
            stmt = [tk.text for tk in body[i:stmt_end]]
            if "=" in stmt and _is_ident(t) and len(stmt) > 1 and \
                    stmt[1] == "=":
                rhs = stmt[2:]
                tainted_rhs = (
                    ("make_unique" in rhs and
                     set(rhs) & METER_PARAM_TOKENS) or
                    ("move" in rhs and set(rhs) & tainted_locals) or
                    ("get" in rhs and set(rhs) & tainted_locals))
                if tainted_rhs:
                    if t in member_names:
                        metered.add(t)
                    else:
                        tainted_locals.add(t)
            if t in ("push_back", "emplace_back") and i >= 2 and \
                    body[i - 1].text == "." and \
                    _is_ident(body[i - 2].text) and \
                    body[i - 2].text in member_names and \
                    i + 1 < n and body[i + 1].text == "(":
                close = _skip_balanced(body, i + 1, "(", ")")
                args = {tk.text for tk in body[i + 2:close - 1]}
                if args & METER_PARAM_TOKENS or args & tainted_locals:
                    metered.add(body[i - 2].text)
                i = close
                continue
            # `auto idx = make_unique(... meter_ ...)` where the decl is
            # `auto idx = ...` — handled by the `=`-at-stmt[1] case above
            # because `auto` precedes; re-check with offset.
            if t == "auto" and len(stmt) > 2 and _is_ident(stmt[1]) and \
                    stmt[2] == "=":
                rhs = stmt[3:]
                if ("make_unique" in rhs and
                        set(rhs) & METER_PARAM_TOKENS):
                    if stmt[1] in member_names:
                        metered.add(stmt[1])
                    else:
                        tainted_locals.add(stmt[1])
            i += 1
    return metered


# ---------------------------------------------------------------------------
# Checkers
# ---------------------------------------------------------------------------


def _is_metered_class(cls: ClassInfo) -> bool:
    return bool(set(cls.bases) & METERED_BASES) or \
        cls.name in METERED_CLASSES


def _facts_for(model: Model) -> dict[str, list[MethodFacts]]:
    """qual -> MethodFacts per method definition."""
    out: dict[str, list[MethodFacts]] = {}
    for cls in model.classes.values():
        metered = compute_metered_members(model, cls)
        out[cls.qual] = [MethodFacts(model, cls, m, metered)
                         for m in cls.methods]
    return out


def _reach_same_class(facts: list[MethodFacts], start: MethodFacts,
                      ) -> list[MethodFacts]:
    """start plus every same-class method reachable via bare calls."""
    by_name: dict[str, list[MethodFacts]] = {}
    for f in facts:
        by_name.setdefault(f.method.name, []).append(f)
    seen: set[int] = set()
    out: list[MethodFacts] = []
    stack = [start]
    while stack:
        f = stack.pop()
        if id(f) in seen:
            continue
        seen.add(id(f))
        out.append(f)
        for callee in f.same_class_calls:
            stack.extend(by_name.get(callee, []))
    return out


def check_cost_parity(model: Model, facts: dict[str, list[MethodFacts]],
                      add) -> None:
    for cls in model.classes.values():
        cls_facts = facts[cls.qual]
        if cls.name in NO_CHARGE_CLASSES:
            for f in cls_facts:
                for line in f.direct_charge_lines:
                    add(f.method.path, line, "AMRI101",
                        f"{cls.name}::{f.method.name} charges a CostMeter; "
                        f"{cls.name} is charge-free by contract (its owner "
                        "charges around it)")
            continue
        if not _is_metered_class(cls):
            continue
        for f in cls_facts:
            if f.method.name not in ENTRY_METHODS or not f.method.body:
                continue
            reach = _reach_same_class(cls_facts, f)
            direct = any(r.direct_charge_lines for r in reach)
            delegated = any(r.metered_delegations for r in reach)
            # A bare call to a same-class entry method that has no parsed
            # body (pure virtual / declared-only) charges via dynamic
            # dispatch in the implementation.
            defined = {r.method.name for r in cls_facts}
            virtual_delegate = any(
                callee in ENTRY_METHODS and callee not in defined
                for r in reach for callee in r.same_class_calls)
            if direct and delegated:
                where = "; ".join(
                    f"delegates to `{m}->{c}` at line {ln}"
                    for r in reach for (m, c, ln) in r.metered_delegations)
                add(f.method.path, f.method.line, "AMRI101",
                    f"{cls.name}::{f.method.name} both charges the meter "
                    f"directly and {where}: the served tuples are "
                    "double-charged")
            elif not direct and not delegated and not virtual_delegate:
                add(f.method.path, f.method.line, "AMRI101",
                    f"{cls.name}::{f.method.name} reaches no CostMeter "
                    "charge: neither a direct charge_* call nor a "
                    "delegation to a meter-constructed member (uncharged "
                    "fast path)")


def check_clock_discipline(model: Model,
                           facts: dict[str, list[MethodFacts]],
                           add) -> None:
    for cls in model.classes.values():
        if not _is_metered_class(cls):
            continue
        cls_facts = facts[cls.qual]
        flagged: set[int] = set()
        for f in cls_facts:
            if f.method.name not in ENTRY_METHODS:
                continue
            for r in _reach_same_class(cls_facts, f):
                if "/telemetry/" in r.method.path or id(r) in flagged:
                    continue
                if not r.chrono_lines:
                    continue
                flagged.add(id(r))
                n = len(r.chrono_lines)
                add(r.method.path, min(r.chrono_lines), "AMRI102",
                    f"{n} steady/system_clock read(s) inside cost-metered "
                    f"path {cls.name}::{r.method.name} (reached from "
                    f"entry {f.method.name}); wall time belongs to "
                    "telemetry/profiler code")


def _acquire_sets(model: Model, facts: dict[str, list[MethodFacts]],
                  ) -> dict[tuple[str, str], set[str]]:
    """Fixpoint: (class qual, method name) -> mutex nodes the method may
    acquire, directly or via calls."""
    sets: dict[tuple[str, str], set[str]] = {}
    all_facts = [f for fs in facts.values() for f in fs]
    for f in all_facts:
        key = (f.cls.qual, f.method.name)
        sets.setdefault(key, set()).update(
            node for (node, _i, _e, _l) in f.acquisitions)
    changed = True
    while changed:
        changed = False
        for f in all_facts:
            key = (f.cls.qual, f.method.name)
            cur = sets.setdefault(key, set())
            for (callee_cls, callee, _i, _l) in f.calls:
                extra = sets.get((callee_cls.qual, callee))
                if extra and not extra <= cur:
                    cur |= extra
                    changed = True
    return sets


@dataclass
class Edge:
    src: str
    dst: str
    path: str
    line: int
    why: str


def collect_lock_edges(model: Model, facts: dict[str, list[MethodFacts]],
                       seed_edges, add) -> tuple[set[str], list[Edge]]:
    nodes: set[str] = set()
    for cls in model.classes.values():
        for name, mem in cls.members.items():
            if mem.is_mutex and not mem.is_reference:
                nodes.add(f"{cls.qual}::{name}")
    acq_sets = _acquire_sets(model, facts)
    edges: list[Edge] = []
    for fs in facts.values():
        for f in fs:
            for (node, i, scope_end, line) in f.acquisitions:
                for (node2, i2, _e2, line2) in f.acquisitions:
                    if i < i2 < scope_end:
                        if node2 == node:
                            add(f.method.path, line2, "AMRI103",
                                f"{node} acquired while already held "
                                f"(first acquired at line {line}): "
                                "self-deadlock")
                        else:
                            edges.append(Edge(
                                node, node2, f.method.path, line2,
                                f"nested in {f.cls.name}::"
                                f"{f.method.name}"))
                for (callee_cls, callee, ci, cl) in f.calls:
                    if not i < ci < scope_end:
                        continue
                    for node2 in acq_sets.get(
                            (callee_cls.qual, callee), ()):
                        if node2 == node:
                            add(f.method.path, cl, "AMRI103",
                                f"{callee_cls.name}::{callee} may "
                                f"re-acquire {node} already held in "
                                f"{f.cls.name}::{f.method.name}: "
                                "self-deadlock")
                        else:
                            edges.append(Edge(
                                node, node2, f.method.path, cl,
                                f"{f.cls.name}::{f.method.name} calls "
                                f"{callee_cls.name}::{callee} under "
                                "the lock"))
    for (src, dst, why) in seed_edges:
        if src in nodes and dst in nodes:
            edges.append(Edge(src, dst, "<seed>", 0, why))
    return nodes, edges


def _find_cycle(nodes: set[str],
                adj: dict[str, set[str]]) -> list[str] | None:
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {n: WHITE for n in nodes}
    parent: dict[str, str] = {}
    for start in sorted(nodes):
        if color[start] != WHITE:
            continue
        stack = [(start, iter(sorted(adj.get(start, ()))))]
        color[start] = GRAY
        while stack:
            n, it = stack[-1]
            advanced = False
            for m in it:
                if color.get(m, BLACK) == WHITE:
                    color[m] = GRAY
                    parent[m] = n
                    stack.append((m, iter(sorted(adj.get(m, ())))))
                    advanced = True
                    break
                if color.get(m) == GRAY:
                    cycle = [m, n]
                    p = n
                    while p != m:
                        p = parent[p]
                        cycle.append(p)
                    cycle.reverse()
                    return cycle
            if not advanced:
                color[n] = BLACK
                stack.pop()
    return None


def assign_ranks(nodes: set[str], edges: list[Edge],
                 add) -> dict[str, int] | None:
    adj: dict[str, set[str]] = {}
    for e in edges:
        adj.setdefault(e.src, set()).add(e.dst)
    cycle = _find_cycle(nodes, adj)
    if cycle is not None:
        witness = next((e for e in edges if e.src == cycle[0]
                        and e.dst == cycle[1]), edges[0] if edges else None)
        path = witness.path if witness else "<graph>"
        line = witness.line if witness else 0
        add(path, line, "AMRI103",
            "lock acquisition cycle: " + " -> ".join(cycle))
        return None
    layer: dict[str, int] = {}

    def layer_of(n: str, trail: tuple = ()) -> int:
        if n in layer:
            return layer[n]
        preds = [e.src for e in edges if e.dst == n]
        val = 1 + max((layer_of(p) for p in preds), default=0)
        layer[n] = val
        return val

    for n in nodes:
        layer_of(n)
    ordered = sorted(nodes, key=lambda n: (layer[n], n))
    return {n: 10 * (i + 1) for i, n in enumerate(ordered)}


def rank_constant_name(node: str) -> str:
    parts = [p.rstrip("_") for p in node.split("::")]
    return "k" + "".join(p[:1].upper() + p[1:] for p in parts if p)


def render_ranks_header(ranks: dict[str, int]) -> str:
    lines = [
        "// Generated by tools/amri_ast_lint.py --emit-ranks. Do not edit.",
        "// Static Mutex acquisition order (AMRI103): a thread may only",
        "// acquire a mutex with a strictly greater rank than every mutex",
        "// it already holds. Regenerate after changing lock structure:",
        "//   python3 tools/amri_ast_lint.py src",
        "//       --emit-ranks src/common/lock_ranks.gen.hpp",
        "#pragma once",
        "",
        "namespace amri::lockrank {",
        "",
    ]
    for node, rank in sorted(ranks.items(), key=lambda kv: kv[1]):
        lines.append(f"// {node}")
        lines.append(f"inline constexpr int {rank_constant_name(node)} = "
                     f"{rank};")
    lines += ["", "}  // namespace amri::lockrank", ""]
    return "\n".join(lines)


def check_rank_init(model: Model, ranks: dict[str, int], add) -> None:
    for cls in model.classes.values():
        for name, mem in cls.members.items():
            node = f"{cls.qual}::{name}"
            if node not in ranks:
                continue
            want = rank_constant_name(node)
            init = [t for t in mem.init_toks if t not in ("(", ")")]
            if init != ["lockrank", "::", want]:
                add(cls.path, mem.line, "AMRI103",
                    f"Mutex member {node} must brace-initialize with its "
                    f"generated rank: `Mutex {name}{{lockrank::{want}}};`")


def check_annotation_coverage(model: Model, add) -> None:
    for cls in model.classes.values():
        owned = [m for m in cls.members.values()
                 if m.is_mutex and not m.is_reference]
        if not owned:
            continue
        mutex_names = ", ".join(sorted(m.name for m in owned))
        for mem in cls.members.values():
            if mem.is_mutex or mem.is_condvar or mem.is_const or \
                    mem.is_static or mem.is_atomic or mem.is_reference:
                continue
            if mem.guarded_by or mem.pt_guarded_by:
                continue
            add(cls.path, mem.line, "AMRI104",
                f"{cls.qual}::{mem.name} is a mutable non-atomic member of "
                f"a Mutex-owning class ({mutex_names}) without "
                "AMRI_GUARDED_BY/AMRI_PT_GUARDED_BY; -Wthread-safety "
                "silently ignores unannotated fields")


# ---------------------------------------------------------------------------
# Waivers + driver
# ---------------------------------------------------------------------------


class WaiverTable:
    """Per-file `// amri-lint: allow(AMRI1xx)` comments. A waiver on line L
    suppresses findings on L and L+1 (comment-above style). Waivers naming
    rules outside this tool's AMRI1xx namespace belong to amri_lint.py and
    are ignored here; unused AMRI1xx waivers are stale (AMRI100)."""

    def __init__(self) -> None:
        # (path, line) -> set of rules; and usage tracking.
        self.at: dict[tuple[str, int], set[str]] = {}
        self.used: set[tuple[str, int, str]] = set()

    def load(self, path: str, text: str) -> None:
        for idx, line in enumerate(text.splitlines(), start=1):
            m = WAIVER_RE.search(line)
            if m:
                rules = {r.strip() for r in m.group(1).split(",")}
                ours = {r for r in rules if RULE_NAMESPACE_RE.match(r)}
                if ours:
                    self.at[(path, idx)] = ours

    def suppresses(self, path: str, line: int, rule: str) -> bool:
        for wline in (line, line - 1):
            if rule in self.at.get((path, wline), ()):
                self.used.add((path, wline, rule))
                return True
        return False

    def stale(self) -> list[tuple[str, int, str]]:
        out = []
        for (path, line), rules in sorted(self.at.items()):
            for rule in sorted(rules):
                if rule not in RULES:
                    out.append((path, line, rule))
                elif (path, line, rule) not in self.used:
                    out.append((path, line, rule))
        return out


def analyze(sources: list[tuple[str, str]],
            checks: set[str] | None = None,
            seed_edges=None,
            require_rank_init: bool = False,
            ) -> tuple[list[Finding], dict[str, int] | None, list["Edge"]]:
    """Run the internal backend over (path, text) pairs.

    Returns (findings, ranks-or-None, lock edges). `checks` defaults to all
    rules; AMRI100 (stale waiver) always runs."""
    checks = set(checks) if checks else set(RULES)
    model = Model()
    waivers = WaiverTable()
    # Headers first: out-of-line .cpp definitions attach to classes that
    # must already be in the model.
    ordered = sorted(
        sources,
        key=lambda s: (pathlib.PurePosixPath(s[0]).suffix
                       not in (".hpp", ".h"), s[0]))
    for path, text in ordered:
        waivers.load(path, text)
        toks = tokenize(strip_comments_and_strings(text))
        Parser(path, toks, model).parse()

    findings: list[Finding] = []

    def add(path: str, line: int, rule: str, message: str) -> None:
        if rule not in checks:
            return
        if waivers.suppresses(path, line, rule):
            return
        findings.append(Finding(pathlib.Path(path), line, rule, message))

    facts = _facts_for(model)
    if "AMRI101" in checks:
        check_cost_parity(model, facts, add)
    if "AMRI102" in checks:
        check_clock_discipline(model, facts, add)
    ranks: dict[str, int] | None = None
    if "AMRI103" in checks:
        nodes, edges = collect_lock_edges(
            model, facts, seed_edges if seed_edges is not None
            else SEED_EDGES, add)
        ranks = assign_ranks(nodes, edges, add)
        if ranks is not None and require_rank_init:
            check_rank_init(model, ranks, add)
    else:
        edges = []
    if "AMRI104" in checks:
        check_annotation_coverage(model, add)
    if "AMRI100" in checks:
        for (path, line, rule) in waivers.stale():
            if rule not in RULES:
                add(path, line, "AMRI100",
                    f"waiver names unknown rule {rule} (known: "
                    f"{', '.join(sorted(RULES))})")
            else:
                add(path, line, "AMRI100",
                    f"stale waiver: allow({rule}) suppresses nothing")
    return findings, ranks, edges


def collect_sources(paths: list[pathlib.Path],
                    compile_commands: pathlib.Path | None,
                    ) -> list[tuple[str, str]]:
    files: list[pathlib.Path] = []
    for p in paths:
        if p.is_dir():
            files.extend(sorted(f for f in p.rglob("*")
                                if f.suffix in CXX_SUFFIXES))
        elif p.suffix in CXX_SUFFIXES and p.exists():
            files.append(p)
        else:
            raise ValueError(f"not a C++ file or directory: {p}")
    if compile_commands is not None:
        try:
            db = json.loads(compile_commands.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as err:
            raise ValueError(f"bad compile_commands: {err}") from err
        seen = {f.resolve() for f in files}
        for entry in db:
            f = (pathlib.Path(entry.get("directory", ".")) /
                 entry["file"]).resolve()
            if f.suffix in CXX_SUFFIXES and f.exists() and f not in seen:
                files.append(f)
                seen.add(f)
    out = []
    for f in files:
        try:
            out.append((f.as_posix(), f.read_text(encoding="utf-8")))
        except (OSError, UnicodeDecodeError) as err:
            print(f"amri_ast_lint: skipping {f}: {err}", file=sys.stderr)
    return out


def try_libclang_backend(sources, args):
    """Best-effort clang.cindex backend: parse each TU from
    compile_commands, surface parse diagnostics, then run the (identical,
    deterministic) token-level checkers over the same sources. Returns None
    when the bindings or library are unavailable."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        index = cindex.Index.create()
    except Exception as err:  # libclang.so missing/mismatched
        print(f"amri_ast_lint: libclang unavailable ({err})",
              file=sys.stderr)
        return None
    diags: list[str] = []
    if args.compile_commands:
        try:
            db = json.loads(
                args.compile_commands.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            db = []
        for entry in db:
            fname = entry["file"]
            cmd = entry.get("arguments") or entry.get("command", "").split()
            clang_args = [a for a in cmd[1:]
                          if a != fname and not a.startswith("-o")]
            try:
                tu = index.parse(fname, args=clang_args)
            except cindex.TranslationUnitLoadError as err:
                diags.append(f"{fname}: {err}")
                continue
            for d in tu.diagnostics:
                if d.severity >= cindex.Diagnostic.Error:
                    diags.append(f"{fname}: {d.spelling}")
    for d in diags:
        print(f"amri_ast_lint: [libclang] {d}", file=sys.stderr)
    return analyze(sources, checks=set(args.checks),
                   require_rank_init=args.require_rank_init)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", type=pathlib.Path,
                        help="files or directories (default: src/)")
    parser.add_argument("--compile-commands", type=pathlib.Path,
                        help="compile_commands.json to enumerate TUs from")
    parser.add_argument("--checks", default=",".join(sorted(RULES)),
                        help="comma-separated rule ids (default: all)")
    parser.add_argument("--backend", default="internal",
                        choices=["internal", "libclang", "auto"],
                        help="analysis backend (default: internal)")
    parser.add_argument("--emit-ranks", metavar="PATH",
                        help="write the generated lock-rank header "
                             "(- for stdout) and exit")
    parser.add_argument("--check-ranks", metavar="PATH", type=pathlib.Path,
                        help="fail if PATH differs from the ranks this "
                             "tree implies")
    parser.add_argument("--require-rank-init", action="store_true",
                        help="require every ranked Mutex member to "
                             "brace-initialize with its lockrank constant")
    parser.add_argument("--list-edges", action="store_true",
                        help="print the lock acquisition graph and exit 0")
    args = parser.parse_args(argv)
    args.checks = {c.strip() for c in args.checks.split(",") if c.strip()}
    unknown = args.checks - RULES
    if unknown:
        print(f"amri_ast_lint: unknown checks: {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2

    paths = args.paths or [pathlib.Path(__file__).resolve().parent.parent /
                           "src"]
    try:
        sources = collect_sources(paths, args.compile_commands)
    except ValueError as err:
        print(f"amri_ast_lint: {err}", file=sys.stderr)
        return 2
    if not sources:
        print("amri_ast_lint: no C++ files found", file=sys.stderr)
        return 2

    result = None
    if args.backend in ("libclang", "auto"):
        result = try_libclang_backend(sources, args)
        if result is None:
            if args.backend == "libclang":
                print("amri_ast_lint: libclang backend requested but "
                      "clang.cindex/libclang is not available",
                      file=sys.stderr)
                return 2
            print("amri_ast_lint: falling back to internal backend",
                  file=sys.stderr)
    if result is None:
        result = analyze(sources, checks=args.checks,
                         require_rank_init=args.require_rank_init)
    findings, ranks, edges = result

    if args.list_edges:
        for e in sorted(edges, key=lambda e: (e.src, e.dst, e.path, e.line)):
            print(f"{e.src} -> {e.dst}  [{e.path}:{e.line}] {e.why}")
        if ranks:
            for node, rank in sorted(ranks.items(), key=lambda kv: kv[1]):
                print(f"rank {rank:4d}  {node}")
        return 0

    rc = 0
    if args.emit_ranks is not None or args.check_ranks is not None:
        if ranks is None:
            print("amri_ast_lint: cannot emit ranks (cycle or AMRI103 "
                  "disabled)", file=sys.stderr)
            return 2
        header = render_ranks_header(ranks)
        if args.emit_ranks == "-":
            sys.stdout.write(header)
        elif args.emit_ranks is not None:
            pathlib.Path(args.emit_ranks).write_text(header,
                                                    encoding="utf-8")
            print(f"amri_ast_lint: wrote {args.emit_ranks}",
                  file=sys.stderr)
        if args.check_ranks is not None:
            try:
                current = args.check_ranks.read_text(encoding="utf-8")
            except OSError:
                current = ""
            if current != header:
                print(f"amri_ast_lint: {args.check_ranks} is stale; "
                      "regenerate with --emit-ranks", file=sys.stderr)
                rc = 1

    for finding in findings:
        print(finding.render())
    print(f"amri_ast_lint: {len(sources)} files, {len(findings)} "
          f"finding(s)", file=sys.stderr)
    return 1 if findings else rc


if __name__ == "__main__":
    sys.exit(main())
