#!/usr/bin/env python3
"""Run clang-tidy over the AMRI sources against the repo .clang-tidy.

Looks for a compile_commands.json (pass --build-dir, or it probes the usual
build directories), fans the translation units out over a process pool, and
exits non-zero if any diagnostic is emitted — the project baseline is zero
warnings on src/.

Without clang-tidy on PATH the script reports SKIP and exits 0 so that
developer machines without an LLVM toolchain aren't blocked; CI passes
--strict, which turns a missing tool into a failure.

Usage:
  tools/run_clang_tidy.py [--build-dir build] [--jobs N] [--strict] [paths...]
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import pathlib
import shutil
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
CXX_SUFFIXES = {".cpp", ".cc", ".cxx"}
TIDY_CANDIDATES = (
    "clang-tidy",
    "clang-tidy-19",
    "clang-tidy-18",
    "clang-tidy-17",
    "clang-tidy-16",
)
BUILD_DIR_CANDIDATES = ("build", "build-tidy", "build-asan", "build-ubsan")


def find_clang_tidy() -> str | None:
    for name in TIDY_CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


def find_compile_commands(build_dir: str | None) -> pathlib.Path | None:
    candidates = [build_dir] if build_dir else list(BUILD_DIR_CANDIDATES)
    for d in candidates:
        cc = REPO_ROOT / d / "compile_commands.json"
        if cc.is_file():
            return cc
    return None


def translation_units(cc_path: pathlib.Path,
                      wanted: list[pathlib.Path]) -> list[pathlib.Path]:
    """Files present in the compilation database, filtered to `wanted` roots."""
    with cc_path.open(encoding="utf-8") as fh:
        db = json.load(fh)
    roots = [p.resolve() for p in wanted]
    out: list[pathlib.Path] = []
    seen: set[pathlib.Path] = set()
    for entry in db:
        f = pathlib.Path(entry["file"])
        if not f.is_absolute():
            f = pathlib.Path(entry["directory"]) / f
        f = f.resolve()
        if f.suffix not in CXX_SUFFIXES or f in seen:
            continue
        if any(root == f or root in f.parents for root in roots):
            seen.add(f)
            out.append(f)
    return sorted(out)


def run_one(tidy: str, cc_dir: pathlib.Path,
            tu: pathlib.Path) -> tuple[pathlib.Path, int, str]:
    proc = subprocess.run(
        [tidy, "-p", str(cc_dir), "--quiet", str(tu)],
        capture_output=True, text=True, check=False)
    # clang-tidy prints diagnostics on stdout; suppress the noise-only
    # "N warnings generated" counters that land on stderr.
    return tu, proc.returncode, proc.stdout.strip()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", type=pathlib.Path,
                        help="source roots to lint (default: src/)")
    parser.add_argument("--build-dir", default=None,
                        help="build dir containing compile_commands.json")
    parser.add_argument("--jobs", type=int, default=0,
                        help="parallel clang-tidy processes (default: ncpu)")
    parser.add_argument("--strict", action="store_true",
                        help="fail (exit 3) instead of SKIP when clang-tidy "
                             "or the compilation database is missing")
    args = parser.parse_args(argv)

    tidy = find_clang_tidy()
    if tidy is None:
        print("run_clang_tidy: clang-tidy not found on PATH"
              + ("" if args.strict else " -- SKIP"), file=sys.stderr)
        return 3 if args.strict else 0

    cc_path = find_compile_commands(args.build_dir)
    if cc_path is None:
        print("run_clang_tidy: no compile_commands.json (configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)"
              + ("" if args.strict else " -- SKIP"), file=sys.stderr)
        return 3 if args.strict else 0

    wanted = args.paths or [REPO_ROOT / "src"]
    tus = translation_units(cc_path, wanted)
    if not tus:
        print("run_clang_tidy: no translation units matched", file=sys.stderr)
        return 2

    jobs = args.jobs or None  # None => ProcessPoolExecutor default (ncpu)
    failed = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(run_one, tidy, cc_path.parent, tu)
                   for tu in tus]
        for fut in concurrent.futures.as_completed(futures):
            tu, rc, output = fut.result()
            if rc != 0 or output:
                failed += 1
                rel = tu.relative_to(REPO_ROOT) if tu.is_relative_to(
                    REPO_ROOT) else tu
                print(f"--- {rel}")
                if output:
                    print(output)
    print(f"run_clang_tidy: {len(tus)} TUs, {failed} with diagnostics",
          file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
