#!/usr/bin/env python3
"""Run clang-tidy over the AMRI sources against the repo .clang-tidy.

Looks for a compile_commands.json (pass --build-dir, or it probes the usual
build directories), fans the translation units out over a process pool, and
exits non-zero if any diagnostic is emitted — the project baseline is zero
warnings on src/.

Without clang-tidy on PATH the script reports SKIP and exits 0 so that
developer machines without an LLVM toolchain aren't blocked; CI passes
--strict, which turns a missing tool into a failure.

With --changed-only [BASE] only translation units affected by the git diff
against BASE (default: HEAD) are linted: a changed .cpp selects itself, a
changed header selects every TU whose text includes it (by basename, then
verified against the include path). An empty diff is a clean exit.

Usage:
  tools/run_clang_tidy.py [--build-dir build] [--jobs N] [--strict]
                          [--changed-only [BASE]] [paths...]
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import pathlib
import re
import shutil
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
CXX_SUFFIXES = {".cpp", ".cc", ".cxx"}
HEADER_SUFFIXES = {".hpp", ".h"}
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+["<]([^">]+)[">]', re.MULTILINE)
TIDY_CANDIDATES = (
    "clang-tidy",
    "clang-tidy-19",
    "clang-tidy-18",
    "clang-tidy-17",
    "clang-tidy-16",
)
BUILD_DIR_CANDIDATES = ("build", "build-tidy", "build-asan", "build-ubsan")


def find_clang_tidy() -> str | None:
    for name in TIDY_CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


def find_compile_commands(build_dir: str | None) -> pathlib.Path | None:
    candidates = [build_dir] if build_dir else list(BUILD_DIR_CANDIDATES)
    for d in candidates:
        cc = REPO_ROOT / d / "compile_commands.json"
        if cc.is_file():
            return cc
    return None


def translation_units(cc_path: pathlib.Path,
                      wanted: list[pathlib.Path]) -> list[pathlib.Path]:
    """Files present in the compilation database, filtered to `wanted` roots."""
    with cc_path.open(encoding="utf-8") as fh:
        db = json.load(fh)
    roots = [p.resolve() for p in wanted]
    out: list[pathlib.Path] = []
    seen: set[pathlib.Path] = set()
    for entry in db:
        f = pathlib.Path(entry["file"])
        if not f.is_absolute():
            f = pathlib.Path(entry["directory"]) / f
        f = f.resolve()
        if f.suffix not in CXX_SUFFIXES or f in seen:
            continue
        if any(root == f or root in f.parents for root in roots):
            seen.add(f)
            out.append(f)
    return sorted(out)


def changed_files(base: str) -> list[pathlib.Path]:
    """Worktree files that differ from `base` (committed, staged, or
    unstaged; untracked files are not diffed)."""
    proc = subprocess.run(
        ["git", "-C", str(REPO_ROOT), "diff", "--name-only", base, "--"],
        capture_output=True, text=True, check=False)
    if proc.returncode != 0:
        raise RuntimeError(proc.stderr.strip()
                           or f"git diff {base} failed")
    return [(REPO_ROOT / line).resolve()
            for line in proc.stdout.splitlines() if line]


def _included_names(text: str) -> set[str]:
    return {pathlib.PurePosixPath(inc).name
            for inc in INCLUDE_RE.findall(text)}


def affected_tus(tus: list[pathlib.Path],
                 changed: list[pathlib.Path]) -> list[pathlib.Path]:
    """TUs touched by the diff: a changed TU selects itself; a changed
    header selects (transitively, via textual #include matching by
    basename) every TU that pulls it in. Basename matching over-selects on
    name collisions, which only costs extra lint time."""
    changed_set = set(changed)
    affected_names = {p.name for p in changed_set
                      if p.suffix in HEADER_SUFFIXES}
    if affected_names:
        texts: dict[pathlib.Path, set[str]] = {}
        for p in sorted(REPO_ROOT.rglob("*")):
            rel_top = p.relative_to(REPO_ROOT).parts[0]
            if rel_top.startswith(("build", ".")) or \
                    p.suffix not in HEADER_SUFFIXES:
                continue
            try:
                texts[p] = _included_names(p.read_text(encoding="utf-8"))
            except (OSError, UnicodeDecodeError):
                continue
        grew = True
        while grew:
            grew = False
            for p, incs in texts.items():
                if p.name not in affected_names and incs & affected_names:
                    affected_names.add(p.name)
                    grew = True
    out = []
    for tu in tus:
        if tu in changed_set:
            out.append(tu)
            continue
        if not affected_names:
            continue
        try:
            incs = _included_names(tu.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError):
            continue
        if incs & affected_names:
            out.append(tu)
    return out


def run_one(tidy: str, cc_dir: pathlib.Path,
            tu: pathlib.Path) -> tuple[pathlib.Path, int, str]:
    proc = subprocess.run(
        [tidy, "-p", str(cc_dir), "--quiet", str(tu)],
        capture_output=True, text=True, check=False)
    # clang-tidy prints diagnostics on stdout; suppress the noise-only
    # "N warnings generated" counters that land on stderr.
    return tu, proc.returncode, proc.stdout.strip()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", type=pathlib.Path,
                        help="source roots to lint (default: src/)")
    parser.add_argument("--build-dir", default=None,
                        help="build dir containing compile_commands.json")
    parser.add_argument("--jobs", type=int, default=0,
                        help="parallel clang-tidy processes (default: ncpu)")
    parser.add_argument("--strict", action="store_true",
                        help="fail (exit 3) instead of SKIP when clang-tidy "
                             "or the compilation database is missing")
    parser.add_argument("--changed-only", nargs="?", const="HEAD",
                        default=None, metavar="BASE",
                        help="lint only TUs affected by the git diff "
                             "against BASE (default HEAD): changed TUs plus "
                             "TUs that transitively include a changed "
                             "header")
    args = parser.parse_args(argv)

    tidy = find_clang_tidy()
    if tidy is None:
        print("run_clang_tidy: clang-tidy not found on PATH"
              + ("" if args.strict else " -- SKIP"), file=sys.stderr)
        return 3 if args.strict else 0

    cc_path = find_compile_commands(args.build_dir)
    if cc_path is None:
        print("run_clang_tidy: no compile_commands.json (configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)"
              + ("" if args.strict else " -- SKIP"), file=sys.stderr)
        return 3 if args.strict else 0

    wanted = args.paths or [REPO_ROOT / "src"]
    tus = translation_units(cc_path, wanted)
    if not tus:
        print("run_clang_tidy: no translation units matched", file=sys.stderr)
        return 2

    if args.changed_only is not None:
        try:
            changed = changed_files(args.changed_only)
        except RuntimeError as err:
            print(f"run_clang_tidy: {err}", file=sys.stderr)
            return 2
        tus = affected_tus(tus, changed)
        if not tus:
            print("run_clang_tidy: no TUs affected by diff against "
                  f"{args.changed_only}", file=sys.stderr)
            return 0

    jobs = args.jobs or None  # None => ProcessPoolExecutor default (ncpu)
    failed = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(run_one, tidy, cc_path.parent, tu)
                   for tu in tus]
        for fut in concurrent.futures.as_completed(futures):
            tu, rc, output = fut.result()
            if rc != 0 or output:
                failed += 1
                rel = tu.relative_to(REPO_ROOT) if tu.is_relative_to(
                    REPO_ROOT) else tu
                print(f"--- {rel}")
                if output:
                    print(output)
    print(f"run_clang_tidy: {len(tus)} TUs, {failed} with diagnostics",
          file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
