#!/usr/bin/env python3
"""Offline analysis of an amri_sim trace (--trace-out run.jsonl).

Reads nothing but the JSONL trace and reports:
  * run summary        — virtual duration, wall clock, event-ring health;
  * phase profile      — per-phase exclusive wall totals and their share of
                         the run wall clock (requires --profile at capture);
  * span latency       — exact per-tuple latency percentiles from sampled
                         span events (requires --trace-sample at capture),
                         plus per-stage counts and hop/fan-out statistics;
  * tuner timeline     — per-epoch modelled vs realized probe cost and the
                         relative model error, one row per decision event.

Usage:  trace_report.py run.jsonl
        trace_report.py --self-test

Exit:   0 ok, 1 self-test failure, 2 usage/parse error.
"""

from __future__ import annotations

import argparse
import io
import json
import math
import sys
from collections import defaultdict


# --------------------------------------------------------------------------
# Parsing


class Trace:
    """The decoded JSONL trace: header, events by kind, metrics by name."""

    def __init__(self) -> None:
        self.header: dict = {}
        self.events: dict[str, list[dict]] = defaultdict(list)
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, dict] = {}
        self.lines = 0


def parse_trace(fp) -> Trace:
    trace = Trace()
    for lineno, line in enumerate(fp, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as err:
            raise ValueError(f"line {lineno}: not JSON ({err})") from err
        trace.lines += 1
        kind = obj.get("type")
        if kind == "trace_header":
            trace.header = obj
        elif kind == "event":
            trace.events[obj.get("kind", "?")].append(obj)
        elif kind == "metric":
            name = obj.get("name", "?")
            if obj.get("kind") == "counter":
                trace.counters[name] = obj.get("value", 0)
            elif obj.get("kind") == "gauge":
                trace.gauges[name] = obj.get("value", 0.0)
            elif obj.get("kind") == "histogram":
                trace.histograms[name] = obj
    return trace


def percentile(sorted_values: list[float], q: float) -> float:
    """Exact q-quantile by linear interpolation between order statistics."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = math.floor(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


# --------------------------------------------------------------------------
# Report sections


def fmt_table(header: list[str], rows: list[list[str]], out) -> None:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def render(cells):
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))
    print(render(header), file=out)
    print("-" * len(render(header)), file=out)
    for row in rows:
        print(render(row), file=out)


def report_summary(trace: Trace, out) -> None:
    h = trace.header
    print("run summary", file=out)
    print(f"  virtual duration: {h.get('t_end', 0) / 1e6:.3f} s", file=out)
    wall = trace.gauges.get("profile.run.wall_us")
    if wall is not None:
        print(f"  run wall clock:   {wall / 1e3:.3f} ms", file=out)
    retained = h.get("events_retained", 0)
    total = h.get("events_total", 0)
    overwritten = h.get("events_overwritten", 0)
    print(f"  events: {total} emitted, {retained} retained"
          + (f", {overwritten} OVERWRITTEN (ring too small)"
             if overwritten else ""),
          file=out)


def report_phases(trace: Trace, out) -> float | None:
    """Phase table from the profiler gauges; returns coverage fraction (or
    None when the trace was captured without --profile)."""
    prefix, suffix = "profile.", ".exclusive_us"
    phases = {
        name[len(prefix):-len(suffix)]: value
        for name, value in trace.gauges.items()
        if name.startswith(prefix) and name.endswith(suffix)
    }
    wall = trace.gauges.get("profile.run.wall_us")
    if not phases or wall is None:
        print("\nphase profile: not in trace (capture with --profile)",
              file=out)
        return None
    rows = []
    covered = 0.0
    for phase, excl in sorted(phases.items(), key=lambda kv: -kv[1]):
        covered += excl
        hist = trace.histograms.get(f"profile.{phase}.scope_us", {})
        rows.append([phase, str(hist.get("count", "")),
                     f"{excl / 1e3:.3f}",
                     f"{100.0 * excl / wall:.1f}%" if wall > 0 else "-",
                     f"{hist.get('max', 0):.3f}"])
    print("\nphase profile (exclusive wall time per phase)", file=out)
    fmt_table(["phase", "scopes", "excl_ms", "%run", "max_scope_us"],
              rows, out)
    coverage = covered / wall if wall > 0 else 0.0
    print(f"profiled {covered / 1e3:.3f} ms of {wall / 1e3:.3f} ms "
          f"run wall ({100.0 * coverage:.1f}%)", file=out)
    return coverage


def report_spans(trace: Trace, out) -> dict:
    """Span-latency percentiles and stage statistics from kSpan events.
    Returns the computed stats (used by --self-test)."""
    spans = trace.events.get("span", [])
    if not spans:
        print("\nspan trace: not in trace (capture with --trace-sample N)",
              file=out)
        return {}
    stage_counts: dict[str, int] = defaultdict(int)
    latencies_us: list[float] = []
    hop_probe_ns: list[float] = []
    fanout_widths: list[float] = []
    for ev in spans:
        data = ev.get("data", {})
        stage = data.get("stage", "?")
        stage_counts[stage] += 1
        if stage == "done":
            latencies_us.append(data.get("latency_ns", 0) / 1e3)
        elif stage == "hop":
            hop_probe_ns.append(data.get("probe_ns", 0))
        elif stage == "fanout":
            fanout_widths.append(data.get("width", 0))
    latencies_us.sort()
    stats = {
        "spans_done": len(latencies_us),
        "p50": percentile(latencies_us, 0.50),
        "p95": percentile(latencies_us, 0.95),
        "p99": percentile(latencies_us, 0.99),
        "max": latencies_us[-1] if latencies_us else 0.0,
        "stages": dict(stage_counts),
    }
    print("\nspan trace (sampled per-tuple latency, wall us)", file=out)
    print(f"  completed spans: {stats['spans_done']}"
          f"  p50={stats['p50']:.3f}  p95={stats['p95']:.3f}"
          f"  p99={stats['p99']:.3f}  max={stats['max']:.3f}", file=out)
    print("  stages: "
          + "  ".join(f"{s}={n}" for s, n in sorted(stage_counts.items())),
          file=out)
    if hop_probe_ns:
        print(f"  hops: {len(hop_probe_ns)}, mean probe "
              f"{sum(hop_probe_ns) / len(hop_probe_ns) / 1e3:.3f} us",
              file=out)
    if fanout_widths:
        print(f"  fan-outs: {len(fanout_widths)}, mean width "
              f"{sum(fanout_widths) / len(fanout_widths):.2f}", file=out)
    return stats


def report_tuner(trace: Trace, out) -> list[dict]:
    """Per-epoch modelled-vs-realized table from tuner_decision events.
    Returns the epoch rows (used by --self-test)."""
    decisions = trace.events.get("tuner_decision", [])
    if not decisions:
        print("\ntuner timeline: no decisions in trace", file=out)
        return []
    rows = []
    epochs = []
    errors = []
    for ev in decisions:
        d = ev.get("data", {})
        predicted = d.get("prev_predicted_probe_us", -1.0)
        realized = d.get("realized_probe_us", -1.0)
        error = d.get("model_error")
        epoch = {
            "stream": ev.get("stream"),
            "epoch": d.get("epoch"),
            "chosen_ic": d.get("chosen_ic", "?"),
            "migrated": bool(d.get("migrated")),
            "predicted": predicted,
            "realized": realized,
            "model_error": error,
            "migration_cost_us": d.get("migration_cost_us", 0.0),
        }
        epochs.append(epoch)
        if error is not None:
            errors.append(abs(error))
        rows.append([
            str(epoch["stream"]), str(epoch["epoch"]), epoch["chosen_ic"],
            "yes" if epoch["migrated"] else "no",
            f"{predicted:.3f}" if predicted >= 0 else "-",
            f"{realized:.3f}" if realized >= 0 else "-",
            f"{100.0 * error:+.1f}%" if error is not None else "-",
            f"{epoch['migration_cost_us']:.0f}",
        ])
    print("\ntuner timeline (per decision epoch; predicted is the modelled "
          "per-probe cost\nfrom the PREVIOUS decision, realized the "
          "meter-charged mean over the epoch)", file=out)
    fmt_table(["stream", "epoch", "chosen_ic", "migrated", "pred_us",
               "real_us", "error", "mig_cost_us"], rows, out)
    if errors:
        print(f"mean |model error| over {len(errors)} closed epochs: "
              f"{100.0 * sum(errors) / len(errors):.1f}%", file=out)
    return epochs


def run_report(fp, out) -> int:
    try:
        trace = parse_trace(fp)
    except ValueError as err:
        print(f"trace_report: {err}", file=sys.stderr)
        return 2
    if not trace.lines:
        print("trace_report: empty trace", file=sys.stderr)
        return 2
    report_summary(trace, out)
    report_phases(trace, out)
    report_spans(trace, out)
    report_tuner(trace, out)
    return 0


# --------------------------------------------------------------------------
# Self-test: a synthetic trace with known statistics.


def _synthetic_trace() -> str:
    lines = [
        {"type": "trace_header", "version": 1, "t_end": 2_000_000,
         "events_total": 9, "events_retained": 9, "events_overwritten": 0},
    ]
    # Phase gauges: 600 + 300 + 80 us of 1000 us wall = 98% coverage.
    for phase, excl in (("route", 600.0), ("probe", 300.0), ("drain", 80.0)):
        lines.append({"type": "metric", "kind": "gauge", "t": 2_000_000,
                      "name": f"profile.{phase}.exclusive_us", "value": excl})
    lines.append({"type": "metric", "kind": "gauge", "t": 2_000_000,
                  "name": "profile.run.wall_us", "value": 1000.0})
    # Five spans with latencies 1..5 us -> p50 = 3 us exactly.
    seq = 0
    for i, lat_us in enumerate((1, 2, 3, 4, 5), start=1):
        for stage, extra in (("arrival", {}), ("hop", {"probe_ns": 500}),
                             ("done", {"latency_ns": lat_us * 1000})):
            lines.append({"type": "event", "kind": "span", "t": i * 100,
                          "stream": 0, "seq": seq,
                          "data": {"span": i, "stage": stage,
                                   "wall_ns": i * 1000, **extra}})
            seq += 1
    # Two decisions: epoch 1 opens a prediction of 2.0, epoch 2 realizes
    # 3.0 -> model error +50%.
    lines.append({"type": "event", "kind": "tuner_decision", "t": 1_000_000,
                  "stream": 0, "seq": seq, "data": {
                      "epoch": 1, "chosen_ic": "[A:8]", "migrated": True,
                      "migration_cost_us": 128.0,
                      "prev_predicted_probe_us": -1.0,
                      "realized_probe_us": 1.5, "epoch_probes": 100,
                      "predicted_probe_us": 2.0}})
    lines.append({"type": "event", "kind": "tuner_decision", "t": 2_000_000,
                  "stream": 0, "seq": seq + 1, "data": {
                      "epoch": 2, "chosen_ic": "[A:8]", "migrated": False,
                      "migration_cost_us": 0.0,
                      "prev_predicted_probe_us": 2.0,
                      "realized_probe_us": 3.0, "epoch_probes": 100,
                      "model_error": 0.5, "predicted_probe_us": 2.0}})
    return "\n".join(json.dumps(obj) for obj in lines) + "\n"


def self_test() -> int:
    out = io.StringIO()
    trace = parse_trace(io.StringIO(_synthetic_trace()))

    coverage = report_phases(trace, out)
    assert coverage is not None and abs(coverage - 0.98) < 1e-9, coverage

    spans = report_spans(trace, out)
    assert spans["spans_done"] == 5, spans
    assert abs(spans["p50"] - 3.0) < 1e-9, spans
    assert abs(spans["max"] - 5.0) < 1e-9, spans
    assert spans["stages"] == {"arrival": 5, "hop": 5, "done": 5}, spans

    epochs = report_tuner(trace, out)
    assert len(epochs) == 2, epochs
    assert epochs[0]["model_error"] is None, epochs
    assert abs(epochs[1]["model_error"] - 0.5) < 1e-9, epochs
    assert epochs[0]["migration_cost_us"] == 128.0, epochs

    # Percentile helper edge cases.
    assert percentile([], 0.5) == 0.0
    assert percentile([7.0], 0.99) == 7.0
    assert abs(percentile([1.0, 2.0], 0.5) - 1.5) < 1e-9

    # End-to-end render of the synthetic trace must succeed.
    rc = run_report(io.StringIO(_synthetic_trace()), io.StringIO())
    assert rc == 0, rc

    print("trace_report self-test OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", nargs="?", help="JSONL trace from "
                        "amri_sim --trace-out")
    parser.add_argument("--self-test", action="store_true",
                        help="run built-in checks on a synthetic trace")
    args = parser.parse_args(argv)

    if args.self_test:
        try:
            return self_test()
        except AssertionError as err:
            print(f"trace_report self-test FAILED: {err}", file=sys.stderr)
            return 1
    if not args.trace:
        parser.print_usage(sys.stderr)
        return 2
    try:
        with open(args.trace, encoding="utf-8") as fp:
            return run_report(fp, sys.stdout)
    except OSError as err:
        print(f"trace_report: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
