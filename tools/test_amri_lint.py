#!/usr/bin/env python3
"""Unit tests for amri_lint.py, run on inline fixture snippets.

Executed by ctest as `amri_lint_selftest` and runnable directly:
  python3 tools/test_amri_lint.py
"""

from __future__ import annotations

import pathlib
import sys
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from amri_lint import lint_text, strip_comments_and_strings  # noqa: E402


def rules_of(findings):
    return [f.rule for f in findings]


def lint(text, path="src/fixture.cpp", library_code=True):
    return lint_text(pathlib.Path(path), text, library_code=library_code)


class StripTest(unittest.TestCase):
    def test_preserves_line_count(self):
        text = 'int a; // c1\n/* b1\n b2 */ int b;\nauto s = "x\\"y";\n'
        stripped = strip_comments_and_strings(text)
        self.assertEqual(stripped.count("\n"), text.count("\n"))

    def test_blanks_comments_and_strings(self):
        stripped = strip_comments_and_strings(
            'call(); // new Foo\nauto s = "delete p";\n')
        self.assertNotIn("new Foo", stripped)
        self.assertNotIn("delete p", stripped)
        self.assertIn("call();", stripped)

    def test_char_literal_with_escape(self):
        stripped = strip_comments_and_strings("char c = '\\''; int x;")
        self.assertIn("int x;", stripped)


class RandomnessRuleTest(unittest.TestCase):
    def test_flags_rand_and_engines(self):
        for snippet in ("int x = rand();", "srand(42);",
                        "std::random_device rd;", "std::mt19937 gen;",
                        "std::mt19937_64 gen;",
                        "std::default_random_engine e;"):
            self.assertIn("AMRI001", rules_of(lint(snippet)), snippet)

    def test_ignores_lookalikes_and_comments(self):
        for snippet in ("int operand = 3;", "// use std::mt19937 here?",
                        'log("rand()");', "int random_device_count = 0;"):
            self.assertNotIn("AMRI001", rules_of(lint(snippet)), snippet)

    def test_rng_header_exempt(self):
        findings = lint("std::mt19937_64 engine_;",
                        path="src/common/rng.hpp")
        self.assertNotIn("AMRI001", rules_of(findings))


class OwnershipRuleTest(unittest.TestCase):
    def test_flags_raw_new_delete(self):
        self.assertIn("AMRI002", rules_of(lint("auto* p = new Foo();")))
        self.assertIn("AMRI002", rules_of(lint("auto* p = new int[8];")))
        self.assertIn("AMRI002", rules_of(lint("delete p;")))
        self.assertIn("AMRI002", rules_of(lint("delete[] arr;")))

    def test_allows_deleted_functions_and_placement_machinery(self):
        for snippet in ("Foo(const Foo&) = delete;",
                        "Foo& operator=(Foo&&) = delete;",
                        "void* operator new(std::size_t);",
                        "void operator delete(void*) noexcept;"):
            self.assertNotIn("AMRI002", rules_of(lint(snippet)), snippet)

    def test_memory_tracker_exempt(self):
        findings = lint("auto* p = new char[n];",
                        path="src/common/memory_tracker.hpp")
        self.assertNotIn("AMRI002", rules_of(findings))

    def test_waiver(self):
        snippet = "delete p;  // amri-lint: allow(AMRI002)"
        self.assertNotIn("AMRI002", rules_of(lint(snippet)))


class TelemetryRuleTest(unittest.TestCase):
    def test_flags_unguarded_deref(self):
        self.assertIn("AMRI003", rules_of(lint("telemetry_->emit(e);")))

    def test_guard_on_same_line(self):
        snippet = "if (telemetry_ != nullptr) telemetry_->emit(e);"
        self.assertNotIn("AMRI003", rules_of(lint(snippet)))

    def test_guard_within_window(self):
        snippet = ("void f() {\n"
                   "  if (telemetry_ == nullptr) return;\n"
                   + "  work();\n" * 10 +
                   "  telemetry_->emit(e);\n}\n")
        self.assertNotIn("AMRI003", rules_of(lint(snippet)))

    def test_guard_outside_window_flags(self):
        snippet = ("if (telemetry_ != nullptr) { g(); }\n"
                   + "work();\n" * 60 +
                   "telemetry_->emit(e);\n")
        self.assertIn("AMRI003", rules_of(lint(snippet)))

    def test_truthiness_guard_accepted(self):
        snippet = "if (telemetry_) { telemetry_->emit(e); }"
        self.assertNotIn("AMRI003", rules_of(lint(snippet)))


class HeaderGuardRuleTest(unittest.TestCase):
    def test_header_without_guard_flagged(self):
        findings = lint("#include <vector>\nint f();\n",
                        path="src/index/foo.hpp")
        self.assertIn("AMRI004", rules_of(findings))

    def test_pragma_once_ok(self):
        findings = lint("#pragma once\nint f();\n", path="src/index/foo.hpp")
        self.assertNotIn("AMRI004", rules_of(findings))

    def test_classic_guard_ok(self):
        text = "#ifndef AMRI_FOO_HPP\n#define AMRI_FOO_HPP\n#endif\n"
        findings = lint(text, path="src/index/foo.hpp")
        self.assertNotIn("AMRI004", rules_of(findings))

    def test_cpp_file_not_checked(self):
        findings = lint("#include <vector>\nint f() { return 1; }\n",
                        path="src/index/foo.cpp")
        self.assertNotIn("AMRI004", rules_of(findings))


class StdoutRuleTest(unittest.TestCase):
    def test_flags_cout_printf_puts(self):
        for snippet in ('std::cout << "x";', 'printf("%d", x);',
                        'puts("hello");'):
            self.assertIn("AMRI005", rules_of(lint(snippet)), snippet)

    def test_allows_stderr_and_snprintf(self):
        for snippet in ('fprintf(stderr, "fatal\\n");',
                        "snprintf(buf, sizeof(buf), fmt);"):
            self.assertNotIn("AMRI005", rules_of(lint(snippet)), snippet)

    def test_non_library_code_skips_rule(self):
        findings = lint('std::cout << "bench result";',
                        path="bench/report.cpp", library_code=False)
        self.assertNotIn("AMRI005", rules_of(findings))


class MetricLookupRuleTest(unittest.TestCase):
    def test_flags_lookup_in_hot_path_function(self):
        snippet = ("void StemOperator::probe(const Key& k) {\n"
                   '  reg.counter("stem.probe").add();\n'
                   "}\n")
        self.assertIn("AMRI006", rules_of(lint(snippet)))

    def test_flags_metrics_call_spelling(self):
        snippet = ("void EddyRouter::route(Tuple t) {\n"
                   '  telemetry_->metrics().histogram("h", bounds).observe(v);\n'
                   "  if (telemetry_ != nullptr) { }\n"
                   "}\n")
        self.assertIn("AMRI006", rules_of(lint(snippet)))

    def test_constructor_lookup_allowed(self):
        snippet = ("StemOperator::StemOperator(StreamId s) {\n"
                   '  probe_counter_ = &reg.counter("stem.probe.count");\n'
                   "}\n")
        self.assertNotIn("AMRI006", rules_of(lint(snippet)))

    def test_constructor_with_qualified_call_between(self):
        # A qualified *call* above the lookup must not be mistaken for the
        # enclosing function definition.
        snippet = ("StemOperator::StemOperator(StreamId s) {\n"
                   "  hist_ = &reg.histogram(\n"
                   "      name, telemetry::Histogram::exponential_bounds(1, 2, 8));\n"
                   '  other_ = &reg.counter("x");\n'
                   "}\n")
        self.assertNotIn("AMRI006", rules_of(lint(snippet)))

    def test_bind_telemetry_allowed(self):
        snippet = ("void ShardedBitIndex::bind_telemetry(Telemetry* t) {\n"
                   '  fanout_hist_ = &t->metrics().histogram("f", bounds);\n'
                   "  if (t != nullptr) { }\n"
                   "}\n")
        self.assertNotIn("AMRI006", rules_of(lint(snippet)))

    def test_inline_constructor_with_init_list_allowed(self):
        snippet = ("class Telemetry {\n"
                   " public:\n"
                   "  explicit Telemetry(Options options = {})\n"
                   "      : options_(options),\n"
                   '        dropped_(&metrics_.counter("dropped")) {}\n'
                   "};\n")
        self.assertNotIn("AMRI006", rules_of(lint(snippet)))

    def test_find_accessors_not_flagged(self):
        snippet = ("void Report::render(std::ostream& os) {\n"
                   '  const auto* h = reg.find_histogram("span.latency_us");\n'
                   "}\n")
        self.assertNotIn("AMRI006", rules_of(lint(snippet)))

    def test_waiver(self):
        snippet = ("telemetry::Histogram* StemOperator::pattern_histogram() {\n"
                   "  auto* h = &telemetry_->metrics().histogram(  "
                   "// amri-lint: allow(AMRI006)\n"
                   "      name, bounds);\n"
                   "  assert(telemetry_ != nullptr);\n"
                   "}\n")
        self.assertNotIn("AMRI006", rules_of(lint(snippet)))

    def test_non_library_code_skips_rule(self):
        snippet = ("int main() {\n"
                   '  reg.counter("bench.iters").add();\n'
                   "}\n")
        findings = lint(snippet, path="bench/micro.cpp", library_code=False)
        self.assertNotIn("AMRI006", rules_of(findings))


class WaiverTest(unittest.TestCase):
    def test_multi_rule_waiver(self):
        snippet = ('printf("%p", new Foo());  '
                   "// amri-lint: allow(AMRI002, AMRI005)")
        self.assertEqual(rules_of(lint(snippet)), [])

    def test_waiver_only_applies_to_its_line(self):
        snippet = ("delete p;  // amri-lint: allow(AMRI002)\n"
                   "delete q;\n")
        findings = lint(snippet)
        self.assertEqual(rules_of(findings), ["AMRI002"])
        self.assertEqual(findings[0].line, 2)


class StaleWaiverTest(unittest.TestCase):
    """AMRI007: waivers must suppress something on their line."""

    def test_used_waiver_not_flagged(self):
        snippet = "delete p;  // amri-lint: allow(AMRI002)"
        self.assertEqual(rules_of(lint(snippet)), [])

    def test_stale_waiver_flagged(self):
        snippet = "int x = 1;  // amri-lint: allow(AMRI002)"
        findings = lint(snippet)
        self.assertEqual(rules_of(findings), ["AMRI007"])
        self.assertIn("stale waiver", findings[0].message)
        self.assertEqual(findings[0].line, 1)

    def test_partially_stale_multi_rule_waiver(self):
        snippet = "delete p;  // amri-lint: allow(AMRI002, AMRI005)"
        findings = lint(snippet)
        self.assertEqual(rules_of(findings), ["AMRI007"])
        self.assertIn("AMRI005", findings[0].message)

    def test_unknown_rule_flagged(self):
        snippet = "delete p;  // amri-lint: allow(AMRI099)"
        findings = lint(snippet)
        self.assertEqual(set(rules_of(findings)), {"AMRI002", "AMRI007"})
        messages = " ".join(f.message for f in findings)
        self.assertIn("unknown rule AMRI099", messages)

    def test_ast_namespace_waivers_pass_through(self):
        # AMRI1xx waivers belong to amri_ast_lint.py: not honoured, not
        # policed.
        snippet = "int x = 1;  // amri-lint: allow(AMRI102)"
        self.assertEqual(rules_of(lint(snippet)), [])

    def test_waiver_in_exempt_file_is_stale(self):
        # The per-file exemption already suppresses the rule, so the waiver
        # does nothing and must be reported.
        findings = lint("#pragma once\n"
                        "auto* p = new char[n];  "
                        "// amri-lint: allow(AMRI002)\n",
                        path="src/common/memory_tracker.hpp")
        self.assertEqual(rules_of(findings), ["AMRI007"])


if __name__ == "__main__":
    unittest.main(verbosity=2)
