#!/usr/bin/env python3
"""AMRI project lint: repo-specific invariants no generic tool enforces.

Rules
-----
AMRI001  deterministic randomness only: no rand()/srand()/std::random_device/
         std::mt19937/std::default_random_engine outside src/common/rng.hpp.
         Every simulation result must be reproducible from a seed.
AMRI002  no raw new/delete: ownership goes through containers and
         std::make_unique; logical allocation accounting goes through
         MemoryTracker (src/common/memory_tracker.hpp is the one exemption).
AMRI003  telemetry pointers are nullable by contract: a `telemetry->` /
         `telemetry_->` dereference must be preceded (within 40 lines)
         by a null check or assert on the same pointer. The disabled
         telemetry path is a null pointer, so an unguarded deref is a crash
         on every untraced run.
AMRI004  every header starts with `#pragma once` (or a classic include
         guard) near the top.
AMRI005  library code (src/) never writes to stdout: no std::cout /
         printf / puts. Reports go through std::ostream parameters or the
         telemetry exporters; stderr (fprintf(stderr, ...)) is allowed for
         fatal diagnostics.
AMRI006  metric handles are resolved once, at setup: creating registry
         lookups (`reg.counter(...)` / `metrics().gauge(...)` /
         `registry().histogram(...)`) are only allowed inside constructors
         and bind_telemetry()-style setup functions. A lookup is an
         O(log n) string compare under a mutex — on a hot path it defeats
         the resolve-once nullable-handle contract. Read-only `find_*`
         accessors are exempt (post-run reporting).

AMRI007  waiver hygiene: every `allow(AMRI00N)` must suppress at least one
         finding on its line, and must name a rule this tool knows. A
         waiver that suppresses nothing is stale — the offending code was
         fixed or moved — and silently re-arms the day the pattern comes
         back, so it is an error, not a warning.

A finding can be waived in place with `// amri-lint: allow(AMRI00N)` on the
offending line. Waivers naming AMRI1xx rules belong to the AST-grounded
checker (tools/amri_ast_lint.py, same comment syntax) and are neither
honoured nor policed here.

Usage:  amri_lint.py [paths...]      (default: src/ next to this script)
Exit:   0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from dataclasses import dataclass

CXX_SUFFIXES = {".hpp", ".h", ".cpp", ".cc", ".cxx"}
HEADER_SUFFIXES = {".hpp", ".h"}

# Files exempt from specific rules (matched on posix path suffix).
RULE_EXEMPT = {
    "AMRI001": ("src/common/rng.hpp",),
    "AMRI002": ("src/common/memory_tracker.hpp",),
}

RANDOMNESS_RE = re.compile(
    r"\b(?:std::)?(?:rand|srand)\s*\(|std::random_device"
    r"|std::mt19937(?:_64)?|std::default_random_engine"
)
NEW_RE = re.compile(r"\bnew\s+[A-Za-z_:(<]|\bnew\s*\[")
DELETE_RE = re.compile(r"\bdelete\b(?:\s*\[\s*\])?")
# Not flagged: `= delete` (deleted functions) and `::operator new/delete`
# (raw-storage management inside container implementations).
NON_OWNING_USES_RE = re.compile(r"=\s*delete\b|\boperator\s+(?:new|delete)\b")
TELEMETRY_DEREF_RE = re.compile(r"\b(telemetry_|telemetry)\s*->")
TELEMETRY_GUARD_RE = re.compile(
    r"\b(telemetry_|telemetry)\s*(?:!=|==)\s*nullptr"
    r"|if\s*\(\s*(telemetry_|telemetry)\s*\)"
)
STDOUT_RE = re.compile(r"std::cout|\bprintf\s*\(|\bputs\s*\(")
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once", re.MULTILINE)
INCLUDE_GUARD_RE = re.compile(r"^\s*#\s*ifndef\s+\w+\s*\n\s*#\s*define\s+\w+",
                              re.MULTILINE)
WAIVER_RE = re.compile(r"amri-lint:\s*allow\(([A-Z0-9, ]+)\)")
# This tool owns the AMRI0xx namespace; AMRI1xx waivers belong to
# amri_ast_lint.py and pass through untouched.
OUR_WAIVER_RULE_RE = re.compile(r"^AMRI0\d\d$")
FOREIGN_WAIVER_RULE_RE = re.compile(r"^AMRI1\d\d$")
WAIVABLE_RULES = {"AMRI000", "AMRI001", "AMRI002", "AMRI003", "AMRI004",
                  "AMRI005", "AMRI006", "AMRI007"}
# Creating registry lookups: `reg.counter(`, `metrics().gauge(`,
# `metrics_.histogram(`, `registry().counter(` and the usual local-alias
# spellings. find_counter/find_gauge/find_histogram are read-only and
# deliberately not matched.
METRIC_LOOKUP_RE = re.compile(
    r"\b(?:metrics\s*\(\s*\)|metrics_|registry\s*\(\s*\)|registry_|reg)\s*"
    r"\.\s*(counter|gauge|histogram)\s*\("
)
# Out-of-line member definition: `Ret Class::func(` / `Class::Class(`.
# Anchored at column 0 (clang-format puts definitions there) so qualified
# *calls* inside bodies — `Histogram::exponential_bounds(...)` — don't
# masquerade as the enclosing function.
MEMBER_DEF_RE = re.compile(
    r"^(?!\s)(?:[\w:<>,*&~]+\s+)*([A-Za-z_]\w*)\s*::\s*(~?[A-Za-z_]\w*)\s*\(")
# In-class definition candidate: `explicit Foo(`, `void bind_telemetry(`.
INLINE_DEF_RE = re.compile(
    r"^\s*(?:explicit\s+)?(?:[\w:<>,*&]+\s+)?([A-Za-z_]\w*)\s*\(")
CLASS_DECL_RE = re.compile(r"^\s*(?:class|struct)\s+([A-Za-z_]\w*)")
# Setup functions where creating lookups are the point.
SETUP_FUNC_NAMES = {"bind_telemetry", "bind_instruments"}
# Keywords that INLINE_DEF_RE would otherwise mistake for function names.
NON_FUNC_KEYWORDS = {"if", "for", "while", "switch", "return", "sizeof",
                     "catch", "assert"}

TELEMETRY_GUARD_WINDOW = 40  # lines of lookback for AMRI003
ENCLOSING_FUNC_WINDOW = 400  # lines of lookback for AMRI006


@dataclass
class Finding:
    path: pathlib.Path
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line breaks
    so line numbers keep matching the original file."""
    out: list[str] = []
    i, n = 0, len(text)
    mode = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                mode = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif mode == "line_comment":
            if c == "\n":
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
        elif mode == "block_comment":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif mode in ("string", "char"):
            quote = '"' if mode == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                mode = "code"
            out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def metric_lookup_allowed(code_lines: list[str], idx: int) -> bool:
    """True when the creating metric lookup on 1-based line `idx` sits in a
    constructor or a recognized setup function. Backward scan for the
    nearest enclosing definition header: an out-of-line `Class::func(`
    wins; otherwise an in-class `func(` candidate is paired with the
    nearest preceding `class`/`struct` name (ctor when they match)."""
    lo = max(0, idx - 1 - ENCLOSING_FUNC_WINDOW)
    # Scan starts one line above the lookup: the lookup line itself is a
    # statement (possibly a member initializer), never the definition
    # header of the function that contains it.
    inline_name: str | None = None
    for j in range(idx - 2, lo - 1, -1):
        line = code_lines[j]
        m = MEMBER_DEF_RE.match(line)
        if m:
            cls, func = m.group(1), m.group(2)
            return func == cls or func in SETUP_FUNC_NAMES
        stripped = line.strip()
        # Member-initializer-list lines (`name_(expr),` / `: name_(expr),`)
        # look like definition headers; skip them so an in-class ctor's
        # body/init-list resolves to the ctor itself.
        if stripped.endswith(",") or stripped.startswith(":"):
            continue
        if inline_name is None:
            mi = INLINE_DEF_RE.match(line)
            if mi and mi.group(1) not in NON_FUNC_KEYWORDS:
                if mi.group(1) in SETUP_FUNC_NAMES:
                    return True
                inline_name = mi.group(1)
                continue
        mc = CLASS_DECL_RE.match(line)
        if mc and inline_name is not None:
            return inline_name == mc.group(1)
    return False


def is_exempt(rule: str, path: pathlib.Path) -> bool:
    posix = path.as_posix()
    return any(posix.endswith(sfx) for sfx in RULE_EXEMPT.get(rule, ()))


def lint_text(path: pathlib.Path, text: str,
              library_code: bool = True) -> list[Finding]:
    """Lint one file's contents. `library_code` applies the src/-only rules
    (AMRI005); headers are detected from the suffix."""
    findings: list[Finding] = []
    raw_lines = text.splitlines()
    waivers: dict[int, set[str]] = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = WAIVER_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",")}
            ours = {r for r in rules
                    if not FOREIGN_WAIVER_RULE_RE.match(r)}
            if ours:
                waivers[idx] = ours

    code = strip_comments_and_strings(text)
    code_lines = code.splitlines()
    used_waivers: set[tuple[int, str]] = set()

    def add(line_no: int, rule: str, message: str) -> None:
        # Exemption wins before the waiver is consulted: a waiver in an
        # exempt file suppresses nothing and must show up as stale.
        if is_exempt(rule, path):
            return
        if rule in waivers.get(line_no, ()):
            used_waivers.add((line_no, rule))
            return
        findings.append(Finding(path, line_no, rule, message))

    for idx, line in enumerate(code_lines, start=1):
        if RANDOMNESS_RE.search(line):
            add(idx, "AMRI001",
                "non-deterministic/ad-hoc randomness; use amri::Rng "
                "(src/common/rng.hpp) seeded from the run config")
        ownership_line = NON_OWNING_USES_RE.sub("", line)
        if NEW_RE.search(ownership_line):
            add(idx, "AMRI002",
                "raw `new`; use std::make_unique / containers (logical "
                "accounting goes through MemoryTracker)")
        if DELETE_RE.search(ownership_line):
            add(idx, "AMRI002",
                "raw `delete`; ownership must be RAII-managed")
        for m in TELEMETRY_DEREF_RE.finditer(line):
            lo = max(0, idx - TELEMETRY_GUARD_WINDOW)
            window = code_lines[lo:idx]  # includes the deref line itself
            if not any(TELEMETRY_GUARD_RE.search(w) for w in window):
                add(idx, "AMRI003",
                    f"`{m.group(1)}->` without a null check within "
                    f"{TELEMETRY_GUARD_WINDOW} lines; telemetry handles are "
                    "nullable (detached) by contract")
        if library_code and STDOUT_RE.search(line):
            add(idx, "AMRI005",
                "stdout write in library code; take a std::ostream& or use "
                "the telemetry exporters")
        m6 = METRIC_LOOKUP_RE.search(line)
        if (library_code and m6
                and not metric_lookup_allowed(code_lines, idx)):
            add(idx, "AMRI006",
                f"creating `.{m6.group(1)}(` registry lookup outside a "
                "constructor/bind_telemetry; resolve handles once at setup "
                "and hold the pointer (use find_* for read-only access)")

    if path.suffix in HEADER_SUFFIXES:
        head = "\n".join(raw_lines[:30])
        if not (PRAGMA_ONCE_RE.search(head) or INCLUDE_GUARD_RE.search(head)):
            add(1, "AMRI004",
                "header lacks `#pragma once` (or an include guard) in its "
                "first 30 lines")

    for line_no in sorted(waivers):
        for rule in sorted(waivers[line_no]):
            if rule not in WAIVABLE_RULES:
                add(line_no, "AMRI007",
                    f"waiver names unknown rule {rule} (known: "
                    f"{', '.join(sorted(WAIVABLE_RULES))})")
            elif (line_no, rule) not in used_waivers:
                add(line_no, "AMRI007",
                    f"stale waiver: allow({rule}) suppresses nothing on "
                    "this line")

    return findings


def lint_file(path: pathlib.Path, library_code: bool) -> list[Finding]:
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as err:
        return [Finding(path, 1, "AMRI000", f"unreadable: {err}")]
    return lint_text(path, text, library_code=library_code)


def collect_files(paths: list[pathlib.Path]) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for p in paths:
        if p.is_dir():
            files.extend(sorted(f for f in p.rglob("*")
                                if f.suffix in CXX_SUFFIXES))
        elif p.suffix in CXX_SUFFIXES:
            files.append(p)
        else:
            raise ValueError(f"not a C++ file or directory: {p}")
    return files


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", type=pathlib.Path,
                        help="files or directories (default: src/)")
    parser.add_argument("--no-library-rules", action="store_true",
                        help="skip src/-only rules (AMRI005) for test/bench "
                             "trees that legitimately print")
    args = parser.parse_args(argv)

    paths = args.paths or [pathlib.Path(__file__).resolve().parent.parent /
                           "src"]
    try:
        files = collect_files(paths)
    except ValueError as err:
        print(f"amri_lint: {err}", file=sys.stderr)
        return 2
    if not files:
        print("amri_lint: no C++ files found", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_file(f, library_code=not args.no_library_rules))

    for finding in findings:
        print(finding.render())
    print(f"amri_lint: {len(files)} files, {len(findings)} finding(s)",
          file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
