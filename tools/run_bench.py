#!/usr/bin/env python3
"""Run AMRI bench binaries and aggregate their --json records into one
trajectory file.

Each bench binary, given ``--json <path>`` (google-benchmark binaries) or
``json=<path>`` (scenario/figure binaries), emits a flat JSON array of
``{"bench": ..., "metric": ..., "value": ...}`` records.  This driver runs a
set of binaries, prefixes every record's bench name with the binary name
(``micro_index_ops/BM_BitAddress_ProbeExact/100000``), and writes a single
aggregate:

    {
      "schema": "amri-bench-v1",
      "date": "YYYY-MM-DD",
      "host": "...",
      "records": [ {"bench": ..., "metric": ..., "value": ...}, ... ]
    }

The default output name is ``BENCH_<date>.json`` in the current directory;
committing one of these per perf-relevant PR gives the repo a perf
trajectory that survives CI hardware churn (compare files from the same
host).  See docs/benchmarking.md.

Usage:
    tools/run_bench.py --build-dir build [--out BENCH.json]
        [--filter REGEX] [--min-time SEC] [--repetitions N] [bench ...]
    tools/run_bench.py --self-test
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import re
import subprocess
import sys
import tempfile

SCHEMA = "amri-bench-v1"

# Default bench set: the index hot-path microbench (the directory's raison
# d'etre), the assessment microbench (tuner hot path), the sharded-state
# microbench (probe churn / fan-out / migration across shard counts), the
# batched-pipeline microbench (probe_batch amortisation, batch x shards),
# the wall-pipeline microbench (wall-clock engine mode: prefetch kernel
# ablation plus end-to-end churn across engine/overlap/prefetch), the
# adversarial scenario matrix (every named scenario x guardrails off/on;
# migrations, suppressions, end-state probe cost), and the multi-query
# ablation (queries x shards x batch grid over shared states plus the
# shared-vs-independent peak-memory comparison).
DEFAULT_BENCHES = ["micro_index_ops", "micro_assessment", "micro_sharded_stem",
                   "micro_batch_pipeline", "micro_wall_pipeline",
                   "adversarial_suite", "ablation_multiquery"]

# Per-binary extra key=value args appended after the smoke-scale defaults
# (Config is last-wins, so these override).  adversarial_suite's headline
# numbers (migration-cut ratio) are calibrated at rate=80.
SCENARIO_EXTRA_ARGS = {"adversarial_suite": ["rate=80"],
                       # Smoke runs cap the query sweep; the committed
                       # trajectory raises it with --scenario-sim-seconds.
                       "ablation_multiquery": ["max_queries=3"]}

# google-benchmark encodes named args into the bench name ("BM_X/shards:4",
# "BM_Y/engine:1/overlap:0/prefetch:1/batch:64").  Each matching arg is
# lifted into a same-named queryable record field.
_ARG_RES = [(field, re.compile(rf"/{field}:(\d+)(?:/|$)"))
            for field in ("queries", "shards", "batch", "engine", "overlap",
                          "prefetch")]


def is_gbench(bench_name: str) -> bool:
    """google-benchmark binaries take --flags; scenario binaries key=value."""
    return bench_name.startswith("micro_")


def bench_argv(binary: str, bench_name: str, json_path: str,
               args: argparse.Namespace) -> list:
    if is_gbench(bench_name):
        argv = [binary, f"--json={json_path}"]
        if args.filter:
            argv.append(f"--benchmark_filter={args.filter}")
        # NB: plain double — the installed google-benchmark rejects the
        # newer "0.05s" suffix form.
        argv.append(f"--benchmark_min_time={args.min_time}")
        if args.repetitions > 1:
            argv.append(f"--benchmark_repetitions={args.repetitions}")
            argv.append("--benchmark_enable_random_interleaving=true")
            argv.append("--benchmark_report_aggregates_only=true")
        return argv
    # Scenario binaries: smoke-scale run by default so the smoke job stays
    # fast; --scenario-sim-seconds raises the scale for committed
    # trajectory entries (docs/benchmarking.md).
    return ([binary, f"json={json_path}",
             f"sim_seconds={args.scenario_sim_seconds}", "rate=50"]
            + SCENARIO_EXTRA_ARGS.get(bench_name, []))


def load_records(json_path: str) -> list:
    with open(json_path, "r", encoding="utf-8") as fh:
        records = json.load(fh)
    if not isinstance(records, list):
        raise ValueError(f"{json_path}: expected a JSON array of records")
    for rec in records:
        for field in ("bench", "metric", "value"):
            if field not in rec:
                raise ValueError(f"{json_path}: record missing '{field}': "
                                 f"{rec}")
    return records


def prefix_records(records: list, bench_name: str) -> list:
    return [{**rec, "bench": f"{bench_name}/{rec['bench']}"}
            for rec in records]


def attach_shards(records: list) -> list:
    """Lift name-encoded bench arguments (shard count, batch size, and the
    wall-mode engine/overlap/prefetch axes) into queryable record fields,
    so trajectory tooling can compare configurations without name
    parsing."""
    out = []
    for rec in records:
        lifted = rec
        for field, rx in _ARG_RES:
            m = rx.search(rec.get("bench", ""))
            if m:
                lifted = {**lifted, field: int(m.group(1))}
        out.append(lifted)
    return out


def aggregate(records: list, date: str, host: str) -> dict:
    return {"schema": SCHEMA, "date": date, "host": host, "records": records}


def run_one(bench_name: str, args: argparse.Namespace) -> list:
    binary = os.path.join(args.build_dir, "bench", bench_name)
    if not os.path.exists(binary):
        raise FileNotFoundError(
            f"bench binary not found: {binary} (build the '{bench_name}' "
            f"target in {args.build_dir} first)")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        json_path = tmp.name
    try:
        argv = bench_argv(binary, bench_name, json_path, args)
        print(f"[run_bench] {' '.join(argv)}", file=sys.stderr)
        subprocess.run(argv, check=True, stdout=sys.stderr)
        return attach_shards(prefix_records(load_records(json_path),
                                            bench_name))
    finally:
        os.unlink(json_path)


def self_test() -> int:
    """Exercise the aggregation pipeline without any bench binaries."""
    failures = []

    def check(cond: bool, label: str) -> None:
        if not cond:
            failures.append(label)
            print(f"[self-test] FAIL: {label}", file=sys.stderr)

    with tempfile.TemporaryDirectory() as tmpdir:
        # A fake bench emission, including a name that needs JSON escaping.
        raw = [
            {"bench": "BM_Probe/10000", "metric": "items_per_second",
             "value": 123456.5},
            {"bench": 'BM_"quoted"\\path', "metric": "real_time_ns",
             "value": 42.0},
        ]
        src = os.path.join(tmpdir, "one.json")
        with open(src, "w", encoding="utf-8") as fh:
            json.dump(raw, fh)

        records = prefix_records(load_records(src), "micro_index_ops")
        check(len(records) == 2, "record count preserved")
        check(records[0]["bench"] == "micro_index_ops/BM_Probe/10000",
              "bench name prefixed with binary name")
        check(records[1]["bench"].startswith("micro_index_ops/BM_\"quoted\""),
              "escaped bench names survive a load/prefix round trip")
        check(records[0]["value"] == 123456.5, "values preserved")

        # Shard-count extraction: "shards:N" bench args become a queryable
        # record field; records without the arg are left untouched.
        sharded_raw = [
            {"bench": "BM_ShardedStem_ProbeChurn/shards:4",
             "metric": "items_per_second", "value": 10.0},
            {"bench": "BM_ShardedStem_Migration/shards:16",
             "metric": "real_time_ns", "value": 20.0},
            {"bench": "BM_Probe/10000", "metric": "real_time_ns",
             "value": 30.0},
        ]
        sharded = attach_shards(
            prefix_records(sharded_raw, "micro_sharded_stem"))
        check(sharded[0].get("shards") == 4, "shards:4 arg lifted to field")
        check(sharded[1].get("shards") == 16, "multi-digit shard count lifted")
        check("shards" not in sharded[2], "non-sharded record untouched")
        check(sharded[0]["bench"]
              == "micro_sharded_stem/BM_ShardedStem_ProbeChurn/shards:4",
              "shard extraction preserves the prefixed bench name")

        # Batch-size extraction, alone and combined with a shard count (the
        # micro_batch_pipeline sweep emits "batch:N/shards:M" names).
        batched_raw = [
            {"bench": "BM_BatchPipeline_ProbeChurn/batch:64/shards:4",
             "metric": "items_per_second", "value": 40.0},
            {"bench": "BM_BatchPipeline_GroupedEnumeration/batch:256",
             "metric": "real_time_ns", "value": 50.0},
            {"bench": "BM_Probe/10000", "metric": "real_time_ns",
             "value": 60.0},
        ]
        batched = attach_shards(
            prefix_records(batched_raw, "micro_batch_pipeline"))
        check(batched[0].get("batch") == 64
              and batched[0].get("shards") == 4,
              "batch and shards both lifted from a combined name")
        check(batched[1].get("batch") == 256
              and "shards" not in batched[1],
              "batch-only name lifts batch without inventing shards")
        check("batch" not in batched[2], "non-batched record untouched")

        # Wall-pipeline axes: engine/overlap/prefetch toggles become fields
        # alongside batch (the micro_wall_pipeline churn sweep emits
        # "engine:E/overlap:O/prefetch:P/batch:N" names).
        wall_raw = [
            {"bench": "BM_WallPipeline_EngineChurn/engine:1/overlap:0/"
                      "prefetch:1/batch:64",
             "metric": "items_per_second", "value": 70.0},
            {"bench": "BM_WallPipeline_KernelPrefetch/prefetch:0/batch:256",
             "metric": "real_time_ns", "value": 80.0},
        ]
        wall = attach_shards(prefix_records(wall_raw, "micro_wall_pipeline"))
        check(wall[0].get("engine") == 1 and wall[0].get("overlap") == 0
              and wall[0].get("prefetch") == 1 and wall[0].get("batch") == 64,
              "engine/overlap/prefetch/batch all lifted from a churn name")
        check(wall[1].get("prefetch") == 0 and wall[1].get("batch") == 256
              and "engine" not in wall[1] and "overlap" not in wall[1],
              "kernel-ablation name lifts only its own axes")

        # Multi-query axis: the ablation_multiquery grid emits
        # "queries:Q/shards:S/batch:B" names; the comparison records carry
        # only the queries axis.
        mq_raw = [
            {"bench": "abl_multiquery/queries:3/shards:2/batch:8",
             "metric": "peak_memory_bytes", "value": 90.0},
            {"bench": "abl_multiquery/shared_vs_independent/queries:5",
             "metric": "shared_over_independent_memory", "value": 0.4},
        ]
        mq = attach_shards(prefix_records(mq_raw, "ablation_multiquery"))
        check(mq[0].get("queries") == 3 and mq[0].get("shards") == 2
              and mq[0].get("batch") == 8,
              "queries/shards/batch all lifted from a multi-query grid name")
        check(mq[1].get("queries") == 5 and "shards" not in mq[1],
              "shared-vs-independent name lifts only the queries axis")

        out = os.path.join(tmpdir, "BENCH_2000-01-01.json")
        agg = aggregate(records, "2000-01-01", "testhost")
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(agg, fh, indent=1)
        with open(out, "r", encoding="utf-8") as fh:
            reread = json.load(fh)
        check(reread["schema"] == SCHEMA, "schema tag present")
        check(reread["date"] == "2000-01-01", "date preserved")
        check(reread["records"] == records, "records survive a round trip")

        # Malformed input must be rejected, not silently aggregated.
        bad = os.path.join(tmpdir, "bad.json")
        with open(bad, "w", encoding="utf-8") as fh:
            fh.write('[{"bench": "x", "metric": "y"}]')  # no value
        try:
            load_records(bad)
            check(False, "missing-field record rejected")
        except ValueError:
            pass
        with open(bad, "w", encoding="utf-8") as fh:
            fh.write('{"not": "a list"}')
        try:
            load_records(bad)
            check(False, "non-array payload rejected")
        except ValueError:
            pass

    if failures:
        print(f"[self-test] {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("[self-test] OK", file=sys.stderr)
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benches", nargs="*", default=None,
                        help=f"bench targets (default: {DEFAULT_BENCHES})")
    parser.add_argument("--build-dir", default="build",
                        help="build tree containing bench/ binaries")
    parser.add_argument("--out", default=None,
                        help="aggregate output path "
                             "(default: BENCH_<date>.json)")
    parser.add_argument("--filter", default=None,
                        help="--benchmark_filter regex for gbench binaries")
    parser.add_argument("--min-time", type=float, default=0.05,
                        help="--benchmark_min_time seconds (plain double)")
    parser.add_argument("--scenario-sim-seconds", type=float, default=10,
                        help="sim_seconds passed to scenario (non-gbench) "
                             "binaries; raise for committed trajectory runs")
    parser.add_argument("--repetitions", type=int, default=1,
                        help="gbench repetitions (>1 adds interleaving and "
                             "aggregate-only reporting)")
    parser.add_argument("--self-test", action="store_true",
                        help="exercise the aggregation pipeline and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    benches = args.benches or DEFAULT_BENCHES
    date = datetime.date.today().isoformat()
    out = args.out or f"BENCH_{date}.json"

    records = []
    for bench_name in benches:
        records.extend(run_one(bench_name, args))

    agg = aggregate(records, date, platform.node())
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(agg, fh, indent=1)
        fh.write("\n")
    print(f"[run_bench] wrote {len(records)} records to {out}",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
