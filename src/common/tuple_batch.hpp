// A batch of arrival tuples moving through the execution pipeline as one
// unit. The executor drains up to `--batch-size` ready arrivals into a
// TupleBatch, expires the windows once, and then inserts/routes the batch
// run-by-run (see docs/architecture.md, "Batched execution").
//
// The batch owns its tuples in a contiguous slot array; `done[i]` is the
// routing done-mask seeded with the tuple's own stream bit (a partial tree
// never revisits a stream it already covers). Downstream layers take
// (tuples, done) spans, so a future resumable pipeline can re-enter a batch
// with partially-routed masks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/tuple.hpp"

namespace amri {

/// Per-root sequence horizon for wall-mode cross-run batching: maps each
/// stored tuple of the batch being routed to its batch index. The router
/// skips any probe match whose batch index is >= the probing partial's root
/// index, so root i sees exactly the window state sequential execution
/// would have shown it (earlier arrivals j < i inserted, later ones not
/// yet) even though the whole mixed-stream batch was inserted up front and
/// routed as one partition. This replaces same-stream run splitting
/// (run_end below) in wall mode: mixed-stream arrivals still form one
/// large routed partition instead of many tiny per-stream runs.
struct BatchVisibility {
  std::unordered_map<const Tuple*, std::uint32_t> order;

  /// Rebuild the map from the batch's stored-tuple pointers (batch order).
  void assign(const Tuple* const* stored, std::size_t n) {
    order.clear();
    for (std::size_t i = 0; i < n; ++i) {
      order.emplace(stored[i], static_cast<std::uint32_t>(i));
    }
  }

  /// May the partial rooted at batch order `root` see match `m`? True for
  /// every tuple outside the current batch (earlier batches, fully
  /// inserted) and for batch members that arrived before the root.
  bool visible_to(const Tuple* m, std::size_t root) const {
    const auto it = order.find(m);
    return it == order.end() || it->second < root;
  }

  /// Batch order of `stored`, or `fallback` when it is not a member of the
  /// horizon. Multi-query routing passes per-query sub-arrays of the batch
  /// whose local indices are NOT batch orders; the router resolves each
  /// root's true order here so the horizon stays in full-batch coordinates.
  std::uint32_t order_of(const Tuple* stored, std::uint32_t fallback) const {
    const auto it = order.find(stored);
    return it != order.end() ? it->second : fallback;
  }
};

struct TupleBatch {
  std::vector<Tuple> tuples;       ///< contiguous arrival slots
  std::vector<std::uint32_t> done; ///< per-tuple visited-streams mask

  std::size_t size() const { return tuples.size(); }
  bool empty() const { return tuples.empty(); }

  void clear() {
    tuples.clear();
    done.clear();
  }

  void push(const Tuple& t) {
    tuples.push_back(t);
    done.push_back(1u << t.stream);
  }

  /// One past the last index of the consecutive same-stream run starting at
  /// `from`. Runs are the unit of batched insert+route: within a run no
  /// tuple probes its own stream's window, so batching the run's inserts
  /// ahead of its routing is observationally identical to tuple-at-a-time
  /// execution (the equivalence argument in docs/architecture.md).
  std::size_t run_end(std::size_t from) const {
    std::size_t end = from;
    while (end < tuples.size() && tuples[end].stream == tuples[from].stream) {
      ++end;
    }
    return end;
  }
};

}  // namespace amri
