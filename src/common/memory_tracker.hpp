// Logical memory accounting with a hard budget. Reproduces the paper's
// out-of-memory failure mode for index baselines: when tracked bytes exceed
// the budget the owning experiment aborts and records the time of death.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace amri {

/// Categories of tracked memory, reported separately in experiment output.
enum class MemCategory : std::uint8_t {
  kStateTuples = 0,   ///< tuples stored in window states
  kIndexStructure,    ///< buckets / hash tables / key links
  kStatistics,        ///< assessment statistics (SRIA tables, lattices)
  kQueue,             ///< backlogged search requests & pending tuples
  kCount
};

constexpr std::string_view mem_category_name(MemCategory c) {
  switch (c) {
    case MemCategory::kStateTuples: return "state_tuples";
    case MemCategory::kIndexStructure: return "index_structure";
    case MemCategory::kStatistics: return "statistics";
    case MemCategory::kQueue: return "queue";
    default: return "unknown";
  }
}

class MemoryTracker {
 public:
  static constexpr std::size_t kUnlimited = 0;

  MemoryTracker() = default;
  /// budget_bytes == kUnlimited disables the budget check.
  explicit MemoryTracker(std::size_t budget_bytes) : budget_(budget_bytes) {}

  void allocate(MemCategory cat, std::size_t bytes) {
    by_category_[index(cat)] += bytes;
    total_ += bytes;
    if (total_ > peak_) peak_ = total_;
    if (budget_ != kUnlimited && total_ > budget_) exhausted_ = true;
  }

  void release(MemCategory cat, std::size_t bytes) {
    auto& slot = by_category_[index(cat)];
    // Releasing more than allocated indicates a bookkeeping bug upstream;
    // clamp defensively so experiments fail loudly via assertions in tests
    // rather than via unsigned wraparound.
    if (bytes > slot) bytes = slot;
    slot -= bytes;
    total_ -= bytes;
  }

  std::size_t total() const { return total_; }
  std::size_t peak() const { return peak_; }
  std::size_t budget() const { return budget_; }
  std::size_t category(MemCategory cat) const {
    return by_category_[index(cat)];
  }

  /// True once the budget has ever been exceeded. Sticky: mirrors a process
  /// that has been killed by the OS OOM killer and does not come back.
  bool exhausted() const { return exhausted_; }

  void set_budget(std::size_t budget_bytes) { budget_ = budget_bytes; }

  void reset() {
    by_category_.fill(0);
    total_ = peak_ = 0;
    exhausted_ = false;
  }

 private:
  static constexpr std::size_t index(MemCategory c) {
    return static_cast<std::size_t>(c);
  }

  std::array<std::size_t, static_cast<std::size_t>(MemCategory::kCount)>
      by_category_{};
  std::size_t total_ = 0;
  std::size_t peak_ = 0;
  std::size_t budget_ = kUnlimited;
  bool exhausted_ = false;
};

}  // namespace amri
