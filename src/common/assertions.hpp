// Deep invariant checking, compiled in when AMRI_ASSERTIONS is defined
// (the debug-asan/debug-ubsan/debug-tsan presets turn it on). Unlike
// NDEBUG-controlled assert(), these checks may be expensive — full
// data-structure walks — so they stay out of plain Debug builds and are
// invoked explicitly through AMRI_CHECK_INVARIANTS at structural
// transition points (migration, bulk load, compression passes).
//
// check_invariants() methods themselves are always compiled and callable
// from tests in any build; the macros only gate the hot-path call sites.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace amri::detail {

[[noreturn]] inline void assertion_failure(const char* expr, const char* file,
                                           int line, const char* msg) {
  std::fprintf(stderr, "AMRI invariant violated: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg);
  std::abort();
}

}  // namespace amri::detail

/// Always-on invariant check with a message; used inside check_invariants()
/// bodies, which tests call explicitly in every build type.
#define AMRI_CHECK(expr, msg)                                               \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::amri::detail::assertion_failure(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                       \
  } while (false)

#ifdef AMRI_ASSERTIONS
/// Expensive assertion compiled only under AMRI_ASSERTIONS.
#define AMRI_ASSERT(expr, msg) AMRI_CHECK(expr, msg)
/// Run an object's check_invariants() at a structural transition point.
#define AMRI_CHECK_INVARIANTS(obj) (obj).check_invariants()
#else
#define AMRI_ASSERT(expr, msg) \
  do {                         \
  } while (false)
#define AMRI_CHECK_INVARIANTS(obj) \
  do {                             \
  } while (false)
#endif
