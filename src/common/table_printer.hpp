// Aligned-column table printing and CSV emission for benchmark output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace amri {

/// Collects rows of string cells and renders either an aligned text table
/// (for terminal output matching the paper's tables/figures) or CSV.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Append a row; pads/truncates to the header width.
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }

  /// Render with space-padded, ' | '-separated columns and a rule under the
  /// header.
  void print(std::ostream& os) const;

  /// Render as RFC-4180-ish CSV (cells containing comma/quote/newline are
  /// quoted, embedded quotes doubled).
  void print_csv(std::ostream& os) const;

  /// Format helpers used by benches.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_int(long long v);
  static std::string fmt_pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace amri
