// Lightweight key=value configuration used by benchmark binaries to accept
// command-line overrides, e.g. `./fig6_assessment sim_minutes=10 seed=7`.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace amri {

class Config {
 public:
  Config() = default;

  /// Parse argv-style tokens. Accepts "key=value", "--key=value", and
  /// "--key value" (a trailing or value-less "--key" becomes "true").
  /// Flag keys are normalised: leading dashes stripped, '-' → '_', so
  /// `--trace-out x.jsonl` is read back via get_string("trace_out").
  /// Bare tokens without '=' are ignored.
  static Config from_args(int argc, const char* const* argv);

  /// Parse newline-separated "key=value" text ('#' starts a comment).
  static Config from_text(std::string_view text);

  void set(std::string key, std::string value);
  bool has(std::string_view key) const;

  std::optional<std::string> get_string(std::string_view key) const;
  std::optional<std::int64_t> get_int(std::string_view key) const;
  std::optional<double> get_double(std::string_view key) const;
  std::optional<bool> get_bool(std::string_view key) const;

  std::string string_or(std::string_view key, std::string fallback) const;
  std::int64_t int_or(std::string_view key, std::int64_t fallback) const;
  double double_or(std::string_view key, double fallback) const;
  bool bool_or(std::string_view key, bool fallback) const;
  /// int_or for count-like knobs (`--shards 4`): negative values clamp
  /// to 0, so callers can treat the result as a plain std::size_t.
  std::size_t size_or(std::string_view key, std::size_t fallback) const;

  const std::map<std::string, std::string, std::less<>>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string, std::less<>> entries_;
};

}  // namespace amri
