// Cost accounting in the units of the paper's cost model (Table I):
//   C_h — average cost of computing one hash function
//   C_c — average cost of one tuple value comparison
// Every indexed operation charges these costs to a VirtualClock, so measured
// "throughput over time" reproduces the structure of the paper's Equation 1.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "common/virtual_clock.hpp"

namespace amri {

/// Unit costs, in virtual microseconds. Defaults are calibrated so that the
/// paper's 4-way-join workload at the default arrival rates saturates the
/// system when indexes are poor (full scans) and keeps up when they are good.
struct CostParams {
  double hash_cost_us = 0.15;       ///< C_h: one hash computation
  double compare_cost_us = 0.05;    ///< C_c: one stored-tuple comparison
  double route_cost_us = 0.10;      ///< eddy routing decision per tuple visit
  double insert_cost_us = 0.08;     ///< state insertion bookkeeping (C_insert)
  double delete_cost_us = 0.08;     ///< state expiry bookkeeping (C_delete)
  double bucket_visit_cost_us = 0.02;  ///< touching one bucket during a probe
};

/// Accumulates operation counts and charges their cost to a clock.
/// The meter can be detached (null clock) for pure counting in unit tests.
class CostMeter {
 public:
  CostMeter() = default;
  explicit CostMeter(VirtualClock* clock, CostParams params = {})
      : clock_(clock), params_(params) {}

  const CostParams& params() const { return params_; }
  void set_params(const CostParams& p) { params_ = p; }
  void attach(VirtualClock* clock) { clock_ = clock; }

  void charge_hash(std::uint64_t n = 1) {
    hashes_ += n;
    charge(static_cast<double>(n) * params_.hash_cost_us);
  }
  void charge_compare(std::uint64_t n = 1) {
    compares_ += n;
    charge(static_cast<double>(n) * params_.compare_cost_us);
  }
  void charge_route(std::uint64_t n = 1) {
    routes_ += n;
    charge(static_cast<double>(n) * params_.route_cost_us);
  }
  void charge_insert(std::uint64_t n = 1) {
    inserts_ += n;
    charge(static_cast<double>(n) * params_.insert_cost_us);
  }
  void charge_delete(std::uint64_t n = 1) {
    deletes_ += n;
    charge(static_cast<double>(n) * params_.delete_cost_us);
  }
  void charge_bucket_visit(std::uint64_t n = 1) {
    bucket_visits_ += n;
    charge(static_cast<double>(n) * params_.bucket_visit_cost_us);
  }

  std::uint64_t hashes() const { return hashes_; }
  std::uint64_t compares() const { return compares_; }
  std::uint64_t routes() const { return routes_; }
  std::uint64_t inserts() const { return inserts_; }
  std::uint64_t deletes() const { return deletes_; }
  std::uint64_t bucket_visits() const { return bucket_visits_; }

  /// Total charged virtual time, in microseconds.
  double charged_us() const { return charged_us_; }

  void reset_counts() {
    hashes_ = compares_ = routes_ = inserts_ = deletes_ = bucket_visits_ = 0;
    charged_us_ = 0.0;
    // Also drop the sub-microsecond remainder pending against the clock;
    // otherwise it leaks into the first charge after a reset.
    fractional_ = 0.0;
  }

 private:
  void charge(double us) {
    charged_us_ += us;
    if (clock_ != nullptr) {
      // Accumulate fractional microseconds; advance in whole ticks.
      fractional_ += us;
      const auto whole = static_cast<TimeMicros>(fractional_);
      if (whole > 0) {
        clock_->advance(whole);
        fractional_ -= static_cast<double>(whole);
      }
    }
  }

  VirtualClock* clock_ = nullptr;
  CostParams params_{};
  double fractional_ = 0.0;
  double charged_us_ = 0.0;
  std::uint64_t hashes_ = 0;
  std::uint64_t compares_ = 0;
  std::uint64_t routes_ = 0;
  std::uint64_t inserts_ = 0;
  std::uint64_t deletes_ = 0;
  std::uint64_t bucket_visits_ = 0;
};

}  // namespace amri
