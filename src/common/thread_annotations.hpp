// Clang Thread Safety Analysis annotations and annotated lock primitives.
//
// The AMRI_* macros expand to Clang's thread-safety attributes when the
// compiler supports them and to nothing everywhere else, so annotated code
// compiles identically under GCC/MSVC. Clang builds add
// -Wthread-safety -Werror (see the top-level CMakeLists), making the
// annotations a compile-time proof obligation: every access to a
// AMRI_GUARDED_BY member must happen with the named mutex held.
//
// libstdc++'s std::mutex / std::lock_guard are not annotated, so the
// analysis cannot see through them. Mutex-bearing classes therefore use the
// annotated wrappers below (amri::Mutex, amri::MutexLock, amri::UniqueLock
// with std::condition_variable_any) instead of the raw std types.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define AMRI_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define AMRI_THREAD_ANNOTATION(x)  // no-op
#endif

/// Declares a class to be a lockable capability ("mutex").
#define AMRI_CAPABILITY(x) AMRI_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class whose lifetime acquires/releases a capability.
#define AMRI_SCOPED_CAPABILITY AMRI_THREAD_ANNOTATION(scoped_lockable)

/// Member data that may only be accessed with the given mutex held.
#define AMRI_GUARDED_BY(x) AMRI_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose pointee may only be accessed with the mutex held.
#define AMRI_PT_GUARDED_BY(x) AMRI_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the given capabilities to be held by the caller.
#define AMRI_REQUIRES(...) \
  AMRI_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function must be called with the given capabilities NOT held.
#define AMRI_EXCLUDES(...) AMRI_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability (and does not release it).
#define AMRI_ACQUIRE(...) \
  AMRI_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define AMRI_RELEASE(...) \
  AMRI_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function tries to acquire the capability; returns `ret` on success.
#define AMRI_TRY_ACQUIRE(ret, ...) \
  AMRI_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function returns a reference to the given capability.
#define AMRI_RETURN_CAPABILITY(x) AMRI_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: suppress analysis inside one function (used for accessors
/// that hand out references to guarded state for post-run, quiescent reads).
#define AMRI_NO_THREAD_SAFETY_ANALYSIS \
  AMRI_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace amri {

/// std::mutex with capability annotations so Clang TSA can track it.
class AMRI_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() AMRI_ACQUIRE() { mu_.lock(); }
  void unlock() AMRI_RELEASE() { mu_.unlock(); }
  bool try_lock() AMRI_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped mutex, for interop that the analysis cannot follow anyway.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock for the scope of a block (annotated std::lock_guard analogue).
class AMRI_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) AMRI_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() AMRI_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Annotated BasicLockable lock for use with std::condition_variable_any.
/// Unlike MutexLock it can be released/reacquired by a wait; the analysis
/// models the capability as held for the lock's whole scope, which matches
/// the state on every path the caller can observe.
class AMRI_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) AMRI_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
    held_ = true;
  }
  ~UniqueLock() AMRI_RELEASE() {
    if (held_) mu_.unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  // BasicLockable interface, used by condition_variable_any::wait which
  // releases and reacquires around the block. Suppressed from analysis:
  // the wait's release/reacquire pair is invisible to callers.
  void lock() AMRI_NO_THREAD_SAFETY_ANALYSIS {
    mu_.lock();
    held_ = true;
  }
  void unlock() AMRI_NO_THREAD_SAFETY_ANALYSIS {
    held_ = false;
    mu_.unlock();
  }

 private:
  Mutex& mu_;
  bool held_ = false;
};

/// Condition variable usable with the annotated UniqueLock.
using CondVar = std::condition_variable_any;

}  // namespace amri
