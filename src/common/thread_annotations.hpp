// Clang Thread Safety Analysis annotations and annotated lock primitives.
//
// The AMRI_* macros expand to Clang's thread-safety attributes when the
// compiler supports them and to nothing everywhere else, so annotated code
// compiles identically under GCC/MSVC. Clang builds add
// -Wthread-safety -Werror (see the top-level CMakeLists), making the
// annotations a compile-time proof obligation: every access to a
// AMRI_GUARDED_BY member must happen with the named mutex held.
//
// libstdc++'s std::mutex / std::lock_guard are not annotated, so the
// analysis cannot see through them. Mutex-bearing classes therefore use the
// annotated wrappers below (amri::Mutex, amri::MutexLock, amri::UniqueLock
// with std::condition_variable_any) instead of the raw std types.
//
// Lock-rank cross-check (AMRI103): tools/amri_ast_lint.py extracts the
// static Mutex acquisition graph and emits a total order into
// src/common/lock_ranks.gen.hpp. With AMRI_LOCK_RANK_CHECK defined (on
// under AMRI_ASSERTIONS, i.e. in every sanitizer preset) each Mutex carries
// its generated rank and every acquisition asserts, per thread, that the
// rank is strictly greater than every rank already held — so the static
// graph and real execution are checked against each other.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(AMRI_LOCK_RANK_CHECK)
#include <cstdio>
#include <cstdlib>
#endif

#if defined(__clang__) && (!defined(SWIG))
#define AMRI_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define AMRI_THREAD_ANNOTATION(x)  // no-op
#endif

/// Declares a class to be a lockable capability ("mutex").
#define AMRI_CAPABILITY(x) AMRI_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class whose lifetime acquires/releases a capability.
#define AMRI_SCOPED_CAPABILITY AMRI_THREAD_ANNOTATION(scoped_lockable)

/// Member data that may only be accessed with the given mutex held.
#define AMRI_GUARDED_BY(x) AMRI_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose pointee may only be accessed with the mutex held.
#define AMRI_PT_GUARDED_BY(x) AMRI_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the given capabilities to be held by the caller.
#define AMRI_REQUIRES(...) \
  AMRI_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function must be called with the given capabilities NOT held.
#define AMRI_EXCLUDES(...) AMRI_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability (and does not release it).
#define AMRI_ACQUIRE(...) \
  AMRI_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define AMRI_RELEASE(...) \
  AMRI_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function tries to acquire the capability; returns `ret` on success.
#define AMRI_TRY_ACQUIRE(ret, ...) \
  AMRI_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function returns a reference to the given capability.
#define AMRI_RETURN_CAPABILITY(x) AMRI_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: suppress analysis inside one function (used for accessors
/// that hand out references to guarded state for post-run, quiescent reads).
#define AMRI_NO_THREAD_SAFETY_ANALYSIS \
  AMRI_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace amri {

#if defined(AMRI_LOCK_RANK_CHECK)
namespace lockrank_detail {

/// Per-thread stack of held lock ranks. Fixed storage: the validator must
/// not allocate (it runs inside every lock acquisition, including ones
/// taken under sanitizers).
struct HeldRanks {
  static constexpr int kMaxHeld = 64;
  int ranks[kMaxHeld];
  int depth = 0;
};

inline HeldRanks& held() {
  static thread_local HeldRanks stack;
  return stack;
}

/// Rank 0 marks an unranked mutex (tests, scratch code): skipped entirely.
/// Ranked mutexes must be acquired in strictly increasing rank order per
/// thread; an equal or smaller rank is an ordering violation the static
/// graph (src/common/lock_ranks.gen.hpp) says cannot happen.
inline void note_acquire(int rank) {
  if (rank <= 0) return;
  HeldRanks& s = held();
  for (int i = 0; i < s.depth; ++i) {
    if (s.ranks[i] >= rank) {
      std::fprintf(stderr,
                   "amri: lock-rank violation: acquiring rank %d while "
                   "holding rank %d (see src/common/lock_ranks.gen.hpp)\n",
                   rank, s.ranks[i]);
      std::abort();
    }
  }
  if (s.depth < HeldRanks::kMaxHeld) s.ranks[s.depth] = rank;
  ++s.depth;
}

inline void note_release(int rank) {
  if (rank <= 0) return;
  HeldRanks& s = held();
  // Remove the most recent occurrence; releases are not required to be
  // LIFO (UniqueLock can outlive a later MutexLock in theory).
  for (int i = (s.depth <= HeldRanks::kMaxHeld ? s.depth : HeldRanks::kMaxHeld)
               - 1;
       i >= 0; --i) {
    if (s.ranks[i] == rank) {
      for (int j = i; j + 1 < s.depth && j + 1 < HeldRanks::kMaxHeld; ++j) {
        s.ranks[j] = s.ranks[j + 1];
      }
      --s.depth;
      return;
    }
  }
  --s.depth;  // overflowed entry beyond kMaxHeld: depth bookkeeping only
}

}  // namespace lockrank_detail
#endif  // AMRI_LOCK_RANK_CHECK

/// std::mutex with capability annotations so Clang TSA can track it, plus
/// an optional static lock rank (from src/common/lock_ranks.gen.hpp)
/// validated at runtime under AMRI_LOCK_RANK_CHECK.
class AMRI_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(int rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() AMRI_ACQUIRE() {
#if defined(AMRI_LOCK_RANK_CHECK)
    // Validate before blocking: a genuine inversion should abort with a
    // diagnostic, not deadlock silently against the opposing thread.
    lockrank_detail::note_acquire(rank_);
#endif
    mu_.lock();
  }
  void unlock() AMRI_RELEASE() {
#if defined(AMRI_LOCK_RANK_CHECK)
    lockrank_detail::note_release(rank_);
#endif
    mu_.unlock();
  }
  bool try_lock() AMRI_TRY_ACQUIRE(true) {
    const bool ok = mu_.try_lock();
#if defined(AMRI_LOCK_RANK_CHECK)
    if (ok) lockrank_detail::note_acquire(rank_);
#endif
    return ok;
  }

  int rank() const { return rank_; }

  /// The wrapped mutex, for interop that the analysis cannot follow anyway.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
  const int rank_ = 0;
};

/// RAII lock for the scope of a block (annotated std::lock_guard analogue).
class AMRI_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) AMRI_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() AMRI_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Annotated BasicLockable lock for use with std::condition_variable_any.
/// Unlike MutexLock it can be released/reacquired by a wait; the analysis
/// models the capability as held for the lock's whole scope, which matches
/// the state on every path the caller can observe.
class AMRI_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) AMRI_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
    held_ = true;
  }
  ~UniqueLock() AMRI_RELEASE() {
    if (held_) mu_.unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  // BasicLockable interface, used by condition_variable_any::wait which
  // releases and reacquires around the block. Suppressed from analysis:
  // the wait's release/reacquire pair is invisible to callers.
  void lock() AMRI_NO_THREAD_SAFETY_ANALYSIS {
    mu_.lock();
    held_ = true;
  }
  void unlock() AMRI_NO_THREAD_SAFETY_ANALYSIS {
    held_ = false;
    mu_.unlock();
  }

 private:
  Mutex& mu_;
  bool held_ = false;
};

/// Condition variable usable with the annotated UniqueLock.
using CondVar = std::condition_variable_any;

}  // namespace amri
