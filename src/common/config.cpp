#include "common/config.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace amri {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

// Flag keys are normalised to config keys: strip the leading dashes and
// turn '-' into '_', so `--trace-out` stores under "trace_out".
std::string normalize_key(std::string_view key) {
  while (!key.empty() && key.front() == '-') key.remove_prefix(1);
  std::string out(trim(key));
  std::replace(out.begin(), out.end(), '-', '_');
  return out;
}

}  // namespace

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string_view tok = argv[i];
    const auto eq = tok.find('=');
    if (eq != std::string_view::npos && eq > 0) {
      // "key=value" / "--key=value"
      cfg.set(normalize_key(trim(tok.substr(0, eq))),
              std::string(trim(tok.substr(eq + 1))));
      continue;
    }
    if (tok.size() > 2 && tok.substr(0, 2) == "--") {
      // "--key value" consumes the next token; a trailing "--key" or one
      // followed by another flag becomes a boolean "true".
      const std::string key = normalize_key(tok);
      if (key.empty()) continue;
      const std::string_view next =
          i + 1 < argc ? std::string_view(argv[i + 1]) : std::string_view{};
      if (next.empty() || next.substr(0, 2) == "--") {
        cfg.set(key, "true");
      } else {
        cfg.set(key, std::string(trim(next)));
        ++i;
      }
    }
    // Bare tokens without '=' stay ignored, as before.
  }
  return cfg;
}

Config Config::from_text(std::string_view text) {
  Config cfg;
  while (!text.empty()) {
    const auto nl = text.find('\n');
    std::string_view line =
        (nl == std::string_view::npos) ? text : text.substr(0, nl);
    text = (nl == std::string_view::npos) ? std::string_view{}
                                          : text.substr(nl + 1);
    const auto hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos || eq == 0) continue;
    cfg.set(std::string(trim(line.substr(0, eq))),
            std::string(trim(line.substr(eq + 1))));
  }
  return cfg;
}

void Config::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool Config::has(std::string_view key) const {
  return entries_.find(key) != entries_.end();
}

std::optional<std::string> Config::get_string(std::string_view key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::int64_t> Config::get_int(std::string_view key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  const std::string& s = it->second;
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<double> Config::get_double(std::string_view key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) return std::nullopt;
    return v;
  } catch (...) {
    return std::nullopt;
  }
}

std::optional<bool> Config::get_bool(std::string_view key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  return std::nullopt;
}

std::string Config::string_or(std::string_view key, std::string fallback) const {
  auto v = get_string(key);
  return v ? *v : std::move(fallback);
}

std::int64_t Config::int_or(std::string_view key, std::int64_t fallback) const {
  auto v = get_int(key);
  return v ? *v : fallback;
}

double Config::double_or(std::string_view key, double fallback) const {
  auto v = get_double(key);
  return v ? *v : fallback;
}

bool Config::bool_or(std::string_view key, bool fallback) const {
  auto v = get_bool(key);
  return v ? *v : fallback;
}

std::size_t Config::size_or(std::string_view key, std::size_t fallback) const {
  const std::int64_t v = int_or(key, static_cast<std::int64_t>(fallback));
  return v > 0 ? static_cast<std::size_t>(v) : 0;
}

}  // namespace amri
