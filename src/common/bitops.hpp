// Bit-manipulation helpers used by access-pattern masks and the
// bit-address index (bucket-id construction and wildcard enumeration).
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>

namespace amri {

/// A set of attributes represented as a bitmask: bit i set means attribute i
/// is a member. This is exactly the paper's BR(ap) binary representation of
/// an access pattern.
using AttrMask = std::uint32_t;

/// Number of set bits (attributes) in a mask.
constexpr int popcount(AttrMask m) { return std::popcount(m); }

/// Mask with the lowest `n` bits set, n in [0, 32]. The n == 32 case takes
/// the guarded branch — a plain 32-wide shift on a 32-bit operand is UB.
constexpr AttrMask low_bits(int n) {
  assert(n >= 0 && n <= 32);
  return (n >= 32) ? ~AttrMask{0} : ((AttrMask{1} << n) - 1u);
}

/// 64-bit variant used for bucket-id bit fields.
constexpr std::uint64_t low_bits64(int n) {
  assert(n >= 0 && n <= 64);
  return (n >= 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1u);
}

/// 2^n for n in [0, 63]; n >= 64 saturates to UINT64_MAX instead of
/// invoking UB via an oversized shift. Used for wildcard enumeration
/// counts, where saturation simply means "too many to enumerate — filter
/// the sparse directory instead".
constexpr std::uint64_t pow2_saturating(int n) {
  assert(n >= 0);
  return n >= 64 ? ~std::uint64_t{0} : std::uint64_t{1} << n;
}

/// True iff `sub` is a subset of `super` (every attribute of sub in super).
constexpr bool is_subset(AttrMask sub, AttrMask super) {
  return (sub & ~super) == 0;
}

/// True iff bit `i` is set.
constexpr bool has_bit(AttrMask m, unsigned i) { return (m >> i) & 1u; }

/// Iterate over all non-empty subsets of `mask` in decreasing numeric order.
/// Usage:
///   for (AttrMask s = mask; s != 0; s = next_subset(s, mask)) { ... }
constexpr AttrMask next_subset(AttrMask current, AttrMask mask) {
  return (current - 1) & mask;
}

/// Calls `fn(submask)` for every subset of `mask`, including the empty set
/// and `mask` itself. Order: mask, then strictly decreasing, ending at 0.
template <typename Fn>
constexpr void for_each_subset(AttrMask mask, Fn&& fn) {
  AttrMask s = mask;
  while (true) {
    fn(s);
    if (s == 0) break;
    s = (s - 1) & mask;
  }
}

/// Calls `fn(i)` for each set bit index i in `mask`, lowest first.
template <typename Fn>
constexpr void for_each_bit(AttrMask mask, Fn&& fn) {
  while (mask != 0) {
    const unsigned i = static_cast<unsigned>(std::countr_zero(mask));
    fn(i);
    mask &= mask - 1;  // clear lowest set bit
  }
}

/// Index of the lowest set bit; mask must be non-zero.
constexpr unsigned lowest_bit(AttrMask mask) {
  assert(mask != 0);
  return static_cast<unsigned>(std::countr_zero(mask));
}

/// Binomial coefficient C(n, k) for the small n used by access-pattern math
/// (n <= 30). Returns 0 when k > n.
constexpr std::uint64_t binomial(unsigned n, unsigned k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  std::uint64_t r = 1;
  for (unsigned i = 1; i <= k; ++i) {
    r = r * (n - k + i) / i;
  }
  return r;
}

}  // namespace amri
