// Discrete-event virtual clock. All engine costs advance this clock, making
// "25 minute" experiment runs deterministic and independent of the host CPU.
#pragma once

#include <cassert>

#include "common/types.hpp"

namespace amri {

class VirtualClock {
 public:
  VirtualClock() = default;
  explicit VirtualClock(TimeMicros start) : now_(start) {}

  TimeMicros now() const { return now_; }

  /// Advance by a non-negative delta, saturating at kTimeMax.
  void advance(TimeMicros delta) {
    assert(delta >= 0);
    if (now_ > kTimeMax - delta) {
      now_ = kTimeMax;
    } else {
      now_ += delta;
    }
  }

  /// Jump forward to an absolute point in time. Moving backwards is a bug.
  void advance_to(TimeMicros t) {
    assert(t >= now_);
    now_ = t;
  }

  void reset(TimeMicros t = 0) { now_ = t; }

 private:
  TimeMicros now_ = 0;
};

}  // namespace amri
