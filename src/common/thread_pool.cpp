#include "common/thread_pool.hpp"

#include <algorithm>
#include <cassert>

namespace amri {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lk(mu_);
    tasks_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t min_chunk) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t threads = workers_.size();
  if (threads <= 1 || n <= min_chunk) {
    fn(begin, end);
    return;
  }
  const std::size_t chunks = std::min(threads * 4, (n + min_chunk - 1) / min_chunk);
  const std::size_t step = (n + chunks - 1) / chunks;
  for (std::size_t lo = begin; lo < end; lo += step) {
    const std::size_t hi = std::min(end, lo + step);
    submit([fn, lo, hi] { fn(lo, hi); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard lk(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace amri
