#include "common/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace amri {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  // A task error nobody waited for is dropped here by design: the pool
  // cannot throw from its destructor.
  stop();
}

void ThreadPool::stop() {
  {
    MutexLock lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (hooks_.on_dequeue) {
    // Stamp the submit time into the task so the worker can report how
    // long it sat queued. Only paid when instrumentation is bound.
    task = [this, t0 = std::chrono::steady_clock::now(),
            inner = std::move(task)] {
      hooks_.on_dequeue(std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
      inner();
    };
  }
  bool contended = false;
  {
    MutexLock lk(mu_);
    if (stop_) {
      throw std::runtime_error("ThreadPool::submit on a stopped pool");
    }
    contended = !tasks_.empty();
    tasks_.push(std::move(task));
  }
  cv_task_.notify_one();
  if (contended && hooks_.on_contention) hooks_.on_contention();
}

void ThreadPool::wait_idle() {
  std::exception_ptr err;
  {
    UniqueLock lk(mu_);
    while (!(tasks_.empty() && active_ == 0)) cv_idle_.wait(lk);
    err = std::exchange(first_error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t min_chunk) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t threads = workers_.size();
  if (threads <= 1 || n <= min_chunk) {
    fn(begin, end);
    return;
  }
  const std::size_t chunks = std::min(threads * 4, (n + min_chunk - 1) / min_chunk);
  const std::size_t step = (n + chunks - 1) / chunks;
  for (std::size_t lo = begin; lo < end; lo += step) {
    const std::size_t hi = std::min(end, lo + step);
    submit([fn, lo, hi] { fn(lo, hi); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      UniqueLock lk(mu_);
      while (!stop_ && tasks_.empty()) cv_task_.wait(lk);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    try {
      task();
    } catch (...) {
      MutexLock lk(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      MutexLock lk(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace amri
