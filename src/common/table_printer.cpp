#include "common/table_printer.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace amri {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << " | ";
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c == 0 ? 0 : 3);
  }
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

namespace {
void emit_csv_cell(std::ostream& os, const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) {
    os << cell;
    return;
  }
  os << '"';
  for (char ch : cell) {
    if (ch == '"') os << '"';
    os << ch;
  }
  os << '"';
}
}  // namespace

void TablePrinter::print_csv(std::ostream& os) const {
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      emit_csv_cell(os, row[c]);
    }
    os << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
}

std::string TablePrinter::fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string TablePrinter::fmt_int(long long v) {
  return std::to_string(v);
}

std::string TablePrinter::fmt_pct(double fraction, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return ss.str();
}

}  // namespace amri
