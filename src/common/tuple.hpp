// Stream tuples and schemas. Tuples are small value records: a stream id,
// an arrival timestamp (virtual time), a unique sequence number, and a flat
// array of integer attribute values.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/small_vector.hpp"
#include "common/types.hpp"

namespace amri {

inline constexpr std::size_t kInlineAttrs = 8;

struct Tuple {
  StreamId stream = 0;
  TimeMicros ts = 0;
  TupleSeq seq = 0;
  SmallVector<Value, kInlineAttrs> values;

  Value at(AttrId a) const { return values[a]; }

  /// Logical size used for memory accounting: header + payload.
  std::size_t approx_bytes() const {
    return sizeof(Tuple) + (values.is_inline() ? 0 : values.size() * sizeof(Value));
  }
};

/// Schema of one stream: attribute names plus which attributes participate
/// in join predicates (the join attribute set, JAS, of the paper).
class Schema {
 public:
  Schema() = default;
  Schema(std::string stream_name, std::vector<std::string> attr_names)
      : stream_name_(std::move(stream_name)),
        attr_names_(std::move(attr_names)) {}

  const std::string& stream_name() const { return stream_name_; }
  std::size_t num_attrs() const { return attr_names_.size(); }
  const std::string& attr_name(AttrId a) const { return attr_names_[a]; }

  /// Returns the attribute id for `name`, or num_attrs() if absent.
  AttrId find_attr(const std::string& name) const {
    for (AttrId i = 0; i < attr_names_.size(); ++i) {
      if (attr_names_[i] == name) return i;
    }
    return static_cast<AttrId>(attr_names_.size());
  }

 private:
  std::string stream_name_;
  std::vector<std::string> attr_names_;
};

}  // namespace amri
