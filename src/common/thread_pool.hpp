// Minimal work-stealing-free thread pool with a blocking parallel_for.
// Used for parallel index migration and benchmark data preparation; the
// simulation core itself is single-threaded and deterministic.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace amri {

class ThreadPool {
 public:
  /// threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns immediately.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have finished.
  void wait_idle();

  /// Split [begin, end) into contiguous chunks and run `fn(lo, hi)` on the
  /// pool, blocking until done. Falls back to inline execution for tiny
  /// ranges or a single-thread pool.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t min_chunk = 1024);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace amri
