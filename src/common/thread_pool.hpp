// Minimal work-stealing-free thread pool with a blocking parallel_for.
// Used for parallel index migration and benchmark data preparation; the
// simulation core itself is single-threaded and deterministic.
//
// Exception contract: a throwing task does not tear the pool down. The
// first exception thrown by any task is captured and rethrown from the
// next wait_idle() (and therefore from parallel_for, which waits);
// remaining queued tasks still run. Submitting to a stopped pool throws.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/lock_ranks.gen.hpp"
#include "common/thread_annotations.hpp"

namespace amri {

class ThreadPool {
 public:
  /// Instrumentation hooks, deliberately framework-agnostic so the pool
  /// (common layer) never depends on the telemetry library: the executor
  /// binds these to registry instruments. `on_dequeue` runs on the worker
  /// thread immediately before each task, with the task's queue wait
  /// (submit to dequeue) in microseconds; `on_contention` runs on the
  /// submitting thread whenever a submit found tasks already queued (a
  /// backlog signal). Callbacks must be thread-safe and must not touch the
  /// pool. Unset hooks cost nothing.
  struct Hooks {
    std::function<void(double wait_us)> on_dequeue;
    std::function<void()> on_contention;
  };

  /// threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Install instrumentation hooks. Call before the first submit(): the
  /// hooks are read unguarded on the submit path and inside queued tasks.
  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns immediately. Throws std::runtime_error if the
  /// pool is shutting down (submit-after-stop was previously a silent
  /// enqueue that could never run).
  void submit(std::function<void()> task) AMRI_EXCLUDES(mu_);

  /// Idempotent shutdown: lets already-queued tasks drain, then joins the
  /// workers. Every submit() after this throws. The destructor calls it.
  void stop() AMRI_EXCLUDES(mu_);

  /// Block until all submitted tasks have finished. Rethrows the first
  /// exception any task threw since the last wait_idle().
  void wait_idle() AMRI_EXCLUDES(mu_);

  /// Split [begin, end) into contiguous chunks and run `fn(lo, hi)` on the
  /// pool, blocking until done. Falls back to inline execution for tiny
  /// ranges or a single-thread pool. Rethrows the first chunk exception.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t min_chunk = 1024) AMRI_EXCLUDES(mu_);

 private:
  void worker_loop() AMRI_EXCLUDES(mu_);

  // Written by the constructor and joined by stop() on the owning thread
  // only; worker threads never touch the vector.
  std::vector<std::thread> workers_;  // amri-lint: allow(AMRI104)
  // Immutable once the first task is submitted (set_hooks contract): read
  // unguarded on the submit path and from workers by design.
  Hooks hooks_;  // amri-lint: allow(AMRI104)
  Mutex mu_{lockrank::kThreadPoolMu};
  std::queue<std::function<void()>> tasks_ AMRI_GUARDED_BY(mu_);
  CondVar cv_task_;
  CondVar cv_idle_;
  std::size_t active_ AMRI_GUARDED_BY(mu_) = 0;
  bool stop_ AMRI_GUARDED_BY(mu_) = false;
  std::exception_ptr first_error_ AMRI_GUARDED_BY(mu_);
};

}  // namespace amri
