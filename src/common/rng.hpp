// Deterministic, fast pseudo-random generation for workload synthesis.
// SplitMix64 seeds Xoshiro256**; both are public-domain reference algorithms.
#pragma once

#include <cassert>
#include <cstdint>

namespace amri {

/// SplitMix64 — used to expand a single seed into independent stream seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — the repo-wide generator. Satisfies (most of) the
/// UniformRandomBitGenerator requirements so it can also feed <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// multiply-shift rejection method for unbiased results.
  std::uint64_t below(std::uint64_t bound) {
    assert(bound > 0);
    // Fast path: multiply-high; reject the biased region.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? next() : below(span));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform01() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace amri
