// A vector with inline storage for N elements, avoiding heap allocation for
// the short attribute lists that dominate tuple and access-pattern handling.
// Trivially-copyable element types only (enforced), which keeps the
// implementation simple and the copy paths memcpy-able.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <type_traits>

namespace amri {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector supports trivially copyable types only");
  static_assert(N > 0, "inline capacity must be positive");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;

  SmallVector(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) push_back(v);
  }

  SmallVector(std::size_t count, const T& value) {
    reserve(count);
    for (std::size_t i = 0; i < count; ++i) push_back(value);
  }

  SmallVector(const SmallVector& other) { copy_from(other); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear_storage();
      copy_from(other);
    }
    return *this;
  }

  SmallVector(SmallVector&& other) noexcept { move_from(std::move(other)); }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      clear_storage();
      move_from(std::move(other));
    }
    return *this;
  }

  ~SmallVector() { clear_storage(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) {
    assert(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  void push_back(const T& v) {
    if (size_ == capacity_) grow(capacity_ * 2);
    data_[size_++] = v;
  }

  void pop_back() {
    assert(size_ > 0);
    --size_;
  }

  void clear() { size_ = 0; }

  void resize(std::size_t n, const T& fill = T{}) {
    if (n > capacity_) grow(n);
    for (std::size_t i = size_; i < n; ++i) data_[i] = fill;
    size_ = n;
  }

  void reserve(std::size_t n) {
    if (n > capacity_) grow(n);
  }

  bool is_inline() const { return data_ == inline_storage(); }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  const T* inline_storage() const {
    return reinterpret_cast<const T*>(inline_);
  }
  T* inline_storage() { return reinterpret_cast<T*>(inline_); }

  void grow(std::size_t target) {
    const std::size_t new_cap = std::max<std::size_t>(target, capacity_ * 2);
    T* heap = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    std::memcpy(heap, data_, size_ * sizeof(T));
    if (!is_inline()) ::operator delete(data_);
    data_ = heap;
    capacity_ = new_cap;
  }

  void clear_storage() {
    if (!is_inline()) ::operator delete(data_);
    data_ = inline_storage();
    capacity_ = N;
    size_ = 0;
  }

  void copy_from(const SmallVector& other) {
    reserve(other.size_);
    std::memcpy(data_, other.data_, other.size_ * sizeof(T));
    size_ = other.size_;
  }

  void move_from(SmallVector&& other) noexcept {
    if (other.is_inline()) {
      std::memcpy(data_, other.data_, other.size_ * sizeof(T));
      size_ = other.size_;
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_storage();
      other.capacity_ = N;
      other.size_ = 0;
    }
    other.size_ = 0;
  }

  alignas(T) std::byte inline_[N * sizeof(T)];
  T* data_ = inline_storage();
  std::size_t capacity_ = N;
  std::size_t size_ = 0;
};

}  // namespace amri
