// Core scalar types shared across all AMRI modules.
#pragma once

#include <cstdint>
#include <limits>

namespace amri {

/// Attribute values carried by stream tuples. The paper's workloads are
/// integer-keyed (priority codes, package ids, location ids, stock symbols
/// mapped to dictionary ids), so a 64-bit integer domain is sufficient and
/// keeps tuples POD-copyable.
using Value = std::int64_t;

/// Index of an attribute within a stream schema (0-based).
using AttrId = std::uint32_t;

/// Identifier of a stream (and of the state instantiated for it).
using StreamId = std::uint32_t;

/// Virtual time, in microseconds since simulation start. All engine-level
/// costs (hashing, comparisons, routing) are charged in virtual time so
/// experiments are deterministic and machine-independent.
using TimeMicros = std::int64_t;

/// Monotonically increasing tuple sequence number (unique per run).
using TupleSeq = std::uint64_t;

/// Bucket identifier inside a bit-address index. The paper describes the
/// index key map as a 64-bit word; buckets are stored sparsely so the full
/// width is usable even though practical bit budgets are much smaller.
using BucketId = std::uint64_t;

inline constexpr TimeMicros kTimeMax = std::numeric_limits<TimeMicros>::max();

inline constexpr double kMicrosPerSecond = 1e6;

/// Convert seconds (double) to virtual microseconds, saturating at kTimeMax.
constexpr TimeMicros seconds_to_micros(double s) {
  const double us = s * kMicrosPerSecond;
  if (us >= static_cast<double>(kTimeMax)) return kTimeMax;
  if (us <= 0.0) return 0;
  return static_cast<TimeMicros>(us);
}

/// Convert virtual microseconds to seconds.
constexpr double micros_to_seconds(TimeMicros t) {
  return static_cast<double>(t) / kMicrosPerSecond;
}

}  // namespace amri
