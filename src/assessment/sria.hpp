// SRIA — Self Reliant Index Assessment (paper §IV-C1): exact per-pattern
// counts in a hash table keyed by BR(ap). Statistics are independent of
// each other ("self reliant"); nothing is ever evicted, so memory grows
// with the number of distinct patterns (up to 2^N_ja).
#pragma once

#include "assessment/assessor.hpp"
#include "stats/frequency_map.hpp"

namespace amri::assessment {

class Sria final : public Assessor {
 public:
  explicit Sria(AttrMask universe) : universe_(universe) {}

  void observe(AttrMask ap, std::uint64_t weight = 1) override;
  std::vector<AssessedPattern> results(double theta) const override;
  std::uint64_t observed() const override { return table_.total_observed(); }
  std::size_t table_size() const override { return table_.size(); }
  std::size_t approx_bytes() const override { return table_.approx_bytes(); }
  std::string name() const override { return "SRIA"; }
  void reset() override { table_.clear(); }
  void decay(double factor) override { table_.scale(factor); }
  AssessmentSnapshot snapshot() const override;

  const stats::FrequencyMap& table() const { return table_; }

 private:
  AttrMask universe_;
  stats::FrequencyMap table_;
};

}  // namespace amri::assessment
