// CSRIA — Compact SRIA (paper §IV-C2): SRIA with Manku–Motwani lossy
// counting. Patterns whose frequency falls below the error rate epsilon are
// periodically *deleted*; the final answer contains every pattern with
// f_ap + delta >= theta - epsilon. Guaranteed to keep anything truly above
// theta, but — as the paper's Table II example shows — deleting related
// patterns can hide index opportunities their *combined* mass would earn.
#pragma once

#include "assessment/assessor.hpp"
#include "stats/lossy_counting.hpp"

namespace amri::assessment {

class Csria final : public Assessor {
 public:
  Csria(AttrMask universe, double epsilon)
      : universe_(universe), counter_(epsilon) {}

  void observe(AttrMask ap, std::uint64_t weight = 1) override;
  std::vector<AssessedPattern> results(double theta) const override;
  std::uint64_t observed() const override { return counter_.observed(); }
  std::size_t table_size() const override { return counter_.size(); }
  std::size_t approx_bytes() const override { return counter_.approx_bytes(); }
  std::string name() const override { return "CSRIA"; }
  void reset() override { counter_.clear(); }
  void decay(double factor) override { counter_.scale(factor); }
  AssessmentSnapshot snapshot() const override;

  double epsilon() const { return counter_.epsilon(); }

  /// δ-bound consistency of the underlying lossy counter (see
  /// LossyCounting::check_invariants). Callable from tests in any build.
  void check_invariants() const { counter_.check_invariants(); }

 private:
  AttrMask universe_;
  stats::LossyCounting<AttrMask> counter_;
};

}  // namespace amri::assessment
