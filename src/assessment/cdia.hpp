// CDIA — Compact Dependent Index Assessment (paper §IV-D2): DIA with
// hierarchical-heavy-hitter compression. Instead of deleting an infrequent
// access pattern's statistics (CSRIA), its count is combined into a parent
// pattern that provides it search benefit, so the mass still argues for
// index bits on the shared attributes. Combination policy is random or
// highest-count (paper's two strategies).
#pragma once

#include "assessment/assessor.hpp"
#include "stats/hierarchical_hh.hpp"

namespace amri::assessment {

class Cdia final : public Assessor {
 public:
  Cdia(AttrMask universe, double epsilon, stats::CombinePolicy policy,
       std::uint64_t seed = 0x5eedULL)
      : hhh_(universe, epsilon, policy, seed) {}

  void observe(AttrMask ap, std::uint64_t weight = 1) override {
    // HHH compression merges infrequent leaves into a parent; a shrink
    // across one observe() counts the leaves combined away.
    const std::size_t before = hhh_.size();
    hhh_.observe(ap, weight);
    note_observed(weight);
    const std::size_t after = hhh_.size();
    if (after < before) {
      note_compressed(static_cast<std::uint64_t>(before - after));
    }
  }
  std::vector<AssessedPattern> results(double theta) const override;
  std::uint64_t observed() const override { return hhh_.observed(); }
  std::size_t table_size() const override { return hhh_.size(); }
  std::size_t approx_bytes() const override { return hhh_.approx_bytes(); }
  std::string name() const override;
  void reset() override { hhh_.clear(); }
  void decay(double factor) override { hhh_.scale(factor); }
  AssessmentSnapshot snapshot() const override;

  stats::CombinePolicy policy() const { return hhh_.policy(); }
  double epsilon() const { return hhh_.epsilon(); }
  const stats::HierarchicalHeavyHitter& counter() const { return hhh_; }

 private:
  stats::HierarchicalHeavyHitter hhh_;
};

}  // namespace amri::assessment
