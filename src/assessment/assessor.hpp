// Common interface of the paper's four index-assessment methods (§IV):
// SRIA, CSRIA, DIA, CDIA. An assessor ingests the access pattern of every
// search request a state receives and periodically answers: which access
// patterns are frequent enough (>= theta) to deserve index bits?
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bitops.hpp"
#include "index/cost_model.hpp"
#include "telemetry/telemetry.hpp"

namespace amri::assessment {

/// One frequent access pattern in an assessment answer.
struct AssessedPattern {
  AttrMask mask = 0;
  std::uint64_t count = 0;      ///< (possibly rolled-up) observation count
  std::uint64_t max_error = 0;  ///< undercount bound delta, 0 for exact
  double frequency = 0.0;       ///< count / observations
};

class Assessor {
 public:
  virtual ~Assessor() = default;

  /// Ingest one search-request access pattern.
  virtual void observe(AttrMask ap) = 0;

  /// Frequent patterns at threshold theta, sorted by descending count.
  virtual std::vector<AssessedPattern> results(double theta) const = 0;

  /// Observations ingested so far (the |A| denominator).
  virtual std::uint64_t observed() const = 0;

  /// Live statistics entries currently retained.
  virtual std::size_t table_size() const = 0;

  /// Logical bytes of retained statistics (for MemoryTracker accounting).
  virtual std::size_t approx_bytes() const = 0;

  virtual std::string name() const = 0;

  /// Drop all statistics (start a fresh assessment window).
  virtual void reset() = 0;

  /// Scale all retained statistics by `factor` in (0, 1): ages the history
  /// so new patterns can overtake old ones without a hard reset.
  /// Frequencies are preserved; entries whose count rounds to zero drop.
  virtual void decay(double factor) = 0;

  /// Register observation/compression counters under `prefix` (e.g.
  /// "stem.0.assess") in `telemetry`'s registry. Null detaches. Variants
  /// report through note_observed()/note_compressed(); detached, those are
  /// a null-pointer branch.
  void bind_telemetry(telemetry::Telemetry* telemetry,
                      const std::string& prefix);

 protected:
  /// One access pattern ingested.
  void note_observed() {
    if (observed_counter_ != nullptr) observed_counter_->add();
  }
  /// `entries` statistics entries evicted (CSRIA) or merged into a parent
  /// (CDIA) by compression.
  void note_compressed(std::uint64_t entries) {
    if (compressed_counter_ != nullptr && entries > 0) {
      compressed_counter_->add(entries);
    }
  }

 private:
  telemetry::Counter* observed_counter_ = nullptr;
  telemetry::Counter* compressed_counter_ = nullptr;
};

enum class AssessorKind : std::uint8_t {
  kSria = 0,
  kCsria,
  kDia,
  kCdiaRandom,
  kCdiaHighestCount,
};

std::string assessor_kind_name(AssessorKind kind);

/// Parameters shared by the compressing assessors.
struct AssessorParams {
  double epsilon = 0.001;  ///< lossy-counting error rate
  std::uint64_t seed = 0x5eedULL;  ///< randomness for CDIA random policy
};

/// Factory covering all four methods (five counting both CDIA policies).
std::unique_ptr<Assessor> make_assessor(AssessorKind kind, AttrMask universe,
                                        const AssessorParams& params = {});

/// Convert an assessment answer into the cost model's frequency vector,
/// re-normalising so the surviving patterns' frequencies sum to 1.
std::vector<index::PatternFrequency> to_pattern_frequencies(
    const std::vector<AssessedPattern>& patterns);

}  // namespace amri::assessment
