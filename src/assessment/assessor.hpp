// Common interface of the paper's four index-assessment methods (§IV):
// SRIA, CSRIA, DIA, CDIA. An assessor ingests the access pattern of every
// search request a state receives and periodically answers: which access
// patterns are frequent enough (>= theta) to deserve index bits?
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bitops.hpp"
#include "index/cost_model.hpp"
#include "telemetry/telemetry.hpp"

namespace amri::assessment {

/// One frequent access pattern in an assessment answer.
struct AssessedPattern {
  AttrMask mask = 0;
  std::uint64_t count = 0;      ///< (possibly rolled-up) observation count
  std::uint64_t max_error = 0;  ///< undercount bound delta, 0 for exact
  double frequency = 0.0;       ///< count / observations
};

enum class AssessorKind : std::uint8_t {
  kSria = 0,
  kCsria,
  kDia,
  kCdiaRandom,
  kCdiaHighestCount,
};

/// Mergeable dump of one assessor's retained statistics, used by sharded
/// stems: each shard assesses the probes it served, and at tuner epochs the
/// per-shard snapshots are merged (merge_snapshots) and thresholded
/// (snapshot_results, see assessment/snapshot.hpp) so the tuner still sees
/// one logical state. The kind-specific parameters travel with the data so
/// the merged answer reproduces the kind's results() semantics.
///
/// Merge soundness per kind: SRIA and DIA counts are exact and additive, so
/// the merged answer equals assessing the unpartitioned request stream.
/// CSRIA undercounts each shard substream by at most epsilon * N_shard;
/// summed over shards that is at most epsilon * N, the same Manku–Motwani
/// bound the unpartitioned sketch carries. CDIA conserves count mass under
/// compression, so the summed entries form a valid lattice state whose
/// rollup is an epsilon-approximate answer for the union stream.
struct AssessmentSnapshot {
  AssessorKind kind = AssessorKind::kSria;
  AttrMask universe = 0;
  double epsilon = 0.0;      ///< compressing kinds; 0 for exact kinds
  std::uint64_t seed = 0;    ///< CDIA random combination policy
  std::uint64_t observed = 0;  ///< stream length seen (the |A| denominator)
  /// Retained (mask, count, max_error) entries, sorted by mask ascending.
  std::vector<AssessedPattern> entries;
};

class Assessor {
 public:
  virtual ~Assessor() = default;

  /// Ingest `weight` search requests sharing one access pattern. Batched
  /// probing groups a batch's keys per pattern and feeds one weighted
  /// observe per group. For SRIA/DIA (exact additive counts) this is
  /// bit-identical to `weight` single observes; for CSRIA/CDIA the
  /// compression boundaries shift with grouping order, so counts match
  /// only within the sketch's epsilon bound (see docs/architecture.md,
  /// "Batched execution").
  virtual void observe(AttrMask ap, std::uint64_t weight = 1) = 0;

  /// Frequent patterns at threshold theta, sorted by descending count.
  virtual std::vector<AssessedPattern> results(double theta) const = 0;

  /// Observations ingested so far (the |A| denominator).
  virtual std::uint64_t observed() const = 0;

  /// Live statistics entries currently retained.
  virtual std::size_t table_size() const = 0;

  /// Logical bytes of retained statistics (for MemoryTracker accounting).
  virtual std::size_t approx_bytes() const = 0;

  virtual std::string name() const = 0;

  /// Drop all statistics (start a fresh assessment window).
  virtual void reset() = 0;

  /// Scale all retained statistics by `factor` in (0, 1): ages the history
  /// so new patterns can overtake old ones without a hard reset.
  /// Frequencies are preserved; entries whose count rounds to zero drop.
  virtual void decay(double factor) = 0;

  /// Mergeable dump of the retained statistics (see AssessmentSnapshot).
  /// Entries are sorted by mask ascending for deterministic merging.
  virtual AssessmentSnapshot snapshot() const = 0;

  /// Register observation/compression counters under `prefix` (e.g.
  /// "stem.0.assess") in `telemetry`'s registry. Null detaches. Variants
  /// report through note_observed()/note_compressed(); detached, those are
  /// a null-pointer branch.
  void bind_telemetry(telemetry::Telemetry* telemetry,
                      const std::string& prefix);

 protected:
  /// `n` access patterns ingested.
  void note_observed(std::uint64_t n = 1) {
    if (observed_counter_ != nullptr) observed_counter_->add(n);
  }
  /// `entries` statistics entries evicted (CSRIA) or merged into a parent
  /// (CDIA) by compression.
  void note_compressed(std::uint64_t entries) {
    if (compressed_counter_ != nullptr && entries > 0) {
      compressed_counter_->add(entries);
    }
  }

 private:
  telemetry::Counter* observed_counter_ = nullptr;
  telemetry::Counter* compressed_counter_ = nullptr;
};

std::string assessor_kind_name(AssessorKind kind);

/// Parameters shared by the compressing assessors.
struct AssessorParams {
  double epsilon = 0.001;  ///< lossy-counting error rate
  std::uint64_t seed = 0x5eedULL;  ///< randomness for CDIA random policy
};

/// Factory covering all four methods (five counting both CDIA policies).
std::unique_ptr<Assessor> make_assessor(AssessorKind kind, AttrMask universe,
                                        const AssessorParams& params = {});

/// Convert an assessment answer into the cost model's frequency vector,
/// re-normalising so the surviving patterns' frequencies sum to 1.
std::vector<index::PatternFrequency> to_pattern_frequencies(
    const std::vector<AssessedPattern>& patterns);

}  // namespace amri::assessment
