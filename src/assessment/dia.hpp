// DIA — Dependent Index Assessment (paper §IV-D1): counts are kept on the
// search-benefit lattice, preserving the subset relationships between
// access patterns. Without compression DIA retains exactly the same counts
// as SRIA (the paper notes their experimental curves coincide); the lattice
// structure is what CDIA's compression exploits.
#pragma once

#include "assessment/assessor.hpp"
#include "common/assertions.hpp"
#include "stats/lattice.hpp"

namespace amri::assessment {

class Dia final : public Assessor {
 public:
  explicit Dia(AttrMask universe) : lattice_(universe) {}

  void observe(AttrMask ap, std::uint64_t weight = 1) override;
  std::vector<AssessedPattern> results(double theta) const override;
  std::uint64_t observed() const override {
    return lattice_.counts().total_observed();
  }
  std::size_t table_size() const override { return lattice_.counts().size(); }
  std::size_t approx_bytes() const override {
    return lattice_.counts().approx_bytes();
  }
  std::string name() const override { return "DIA"; }
  void reset() override { lattice_.counts().clear(); }
  void decay(double factor) override { lattice_.counts().scale(factor); }
  AssessmentSnapshot snapshot() const override;

  const stats::PartialLattice& lattice() const { return lattice_; }

  /// Lattice consistency: every materialised node lies within the state's
  /// attribute universe, carries a live count, and the retained count mass
  /// never exceeds the stream length (decay rounds down; DIA itself never
  /// compresses). Always compiled; observe() invokes it only under
  /// AMRI_ASSERTIONS.
  void check_invariants() const {
    const AttrMask universe = lattice_.shape().universe();
    std::uint64_t sum = 0;
    for (const auto& [mask, entry] : lattice_.counts()) {
      AMRI_CHECK(is_subset(mask, universe),
                 "lattice node outside the attribute universe");
      AMRI_CHECK(entry.count >= 1, "lattice node with zero count");
      sum += entry.count;
    }
    AMRI_CHECK(sum <= lattice_.counts().total_observed(),
               "retained lattice mass exceeds total observations");
  }

 private:
  stats::PartialLattice lattice_;
};

}  // namespace amri::assessment
