#include "assessment/snapshot.hpp"

#include <algorithm>
#include <map>

#include "common/assertions.hpp"
#include "stats/hierarchical_hh.hpp"

namespace amri::assessment {

AssessmentSnapshot merge_snapshots(
    const std::vector<AssessmentSnapshot>& parts) {
  AssessmentSnapshot out;
  if (parts.empty()) return out;
  out.kind = parts.front().kind;
  out.universe = parts.front().universe;
  out.epsilon = parts.front().epsilon;
  out.seed = parts.front().seed;
  // std::map keeps the merged entries sorted by mask as they accumulate.
  std::map<AttrMask, AssessedPattern> merged;
  for (const AssessmentSnapshot& part : parts) {
    AMRI_CHECK(part.kind == out.kind && part.universe == out.universe &&
                   part.epsilon == out.epsilon,
               "snapshot merge across mismatched assessors");
    out.observed += part.observed;
    for (const AssessedPattern& e : part.entries) {
      AssessedPattern& slot = merged[e.mask];
      slot.mask = e.mask;
      slot.count += e.count;
      slot.max_error += e.max_error;
    }
  }
  out.entries.reserve(merged.size());
  for (auto& [mask, e] : merged) {
    // Entries stay raw (frequency 0), exactly like every assessor's own
    // snapshot(); snapshot_results() computes frequencies on demand. This
    // keeps merged snapshots bit-identical to the unpartitioned ones.
    out.entries.push_back(e);
  }
  return out;
}

namespace {

/// SRIA / DIA / CSRIA all filter on estimated frequency >= theta (see the
/// per-kind results() implementations); the entry's max_error rides along
/// (0 for the exact kinds).
std::vector<AssessedPattern> threshold_results(const AssessmentSnapshot& snap,
                                               double theta) {
  std::vector<AssessedPattern> out;
  if (snap.observed == 0) return out;
  for (const AssessedPattern& e : snap.entries) {
    const double f = static_cast<double>(e.count) /
                     static_cast<double>(snap.observed);
    if (f >= theta) {
      out.push_back(AssessedPattern{e.mask, e.count, e.max_error, f});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const AssessedPattern& a, const AssessedPattern& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.mask < b.mask;
            });
  return out;
}

/// CDIA: the merged entries are a valid search-benefit-lattice state (each
/// shard conserves count mass under compression), so the merged answer is
/// the same bottom-up rollup CDIA's results() applies to its own lattice.
std::vector<AssessedPattern> rollup_results(const AssessmentSnapshot& snap,
                                            double theta) {
  stats::HierarchicalHeavyHitter hhh(
      snap.universe, snap.epsilon,
      snap.kind == AssessorKind::kCdiaRandom
          ? stats::CombinePolicy::kRandom
          : stats::CombinePolicy::kHighestCount,
      snap.seed);
  for (const AssessedPattern& e : snap.entries) {
    hhh.load_node(e.mask, e.count, e.max_error);
  }
  hhh.set_observed(snap.observed);
  std::vector<AssessedPattern> out;
  for (const auto& r : hhh.results(theta)) {
    out.push_back(AssessedPattern{r.mask, r.count, r.max_error, r.frequency});
  }
  return out;
}

}  // namespace

std::vector<AssessedPattern> snapshot_results(const AssessmentSnapshot& snap,
                                              double theta) {
  switch (snap.kind) {
    case AssessorKind::kSria:
    case AssessorKind::kDia:
    case AssessorKind::kCsria:
      return threshold_results(snap, theta);
    case AssessorKind::kCdiaRandom:
    case AssessorKind::kCdiaHighestCount:
      return rollup_results(snap, theta);
  }
  return {};
}

}  // namespace amri::assessment
