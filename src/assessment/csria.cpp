#include "assessment/csria.hpp"

#include <algorithm>
#include <cassert>

namespace amri::assessment {

void Csria::observe(AttrMask ap, std::uint64_t weight) {
  assert(is_subset(ap, universe_));
  // Lossy counting deletes sub-epsilon entries at segment boundaries; a
  // table shrink across one observe() is exactly that eviction sweep.
  const std::size_t before = counter_.size();
  counter_.observe(ap, weight);
  note_observed(weight);
  const std::size_t after = counter_.size();
  if (after < before) {
    note_compressed(static_cast<std::uint64_t>(before - after));
  }
}

std::vector<AssessedPattern> Csria::results(double theta) const {
  // The paper states CSRIA "returns all access pattern statistics whose
  // frequencies are above a preset threshold theta" (§IV-C2). Frequencies
  // here are the *estimated* (undercounted) lossy-counting frequencies, so
  // borderline-hot patterns whose counts were eroded by compression drop
  // out, and sub-epsilon patterns vanish entirely — the information loss
  // CDIA's combining repairs. (The alternative formal reading, bar at
  // theta - epsilon over count + delta, is the classic no-false-negative
  // guarantee; LossyCounting::results implements that form.)
  std::vector<AssessedPattern> out;
  const auto n = counter_.observed();
  if (n == 0) return out;
  // Gather with the permissive bar, then apply the strict-theta filter on
  // estimated frequency.
  for (const auto& item : counter_.results(0.0)) {
    const double f =
        static_cast<double>(item.count) / static_cast<double>(n);
    if (f >= theta) {
      out.push_back(AssessedPattern{item.key, item.count, item.max_error, f});
    }
  }
  return out;
}

AssessmentSnapshot Csria::snapshot() const {
  AssessmentSnapshot s;
  s.kind = AssessorKind::kCsria;
  s.universe = universe_;
  s.epsilon = counter_.epsilon();
  s.observed = counter_.observed();
  // theta = 0 makes the eviction bar negative, so every retained entry is
  // returned; re-sort by mask for the snapshot's deterministic order.
  auto items = counter_.results(0.0);
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.key < b.key; });
  s.entries.reserve(items.size());
  for (const auto& item : items) {
    s.entries.push_back(
        AssessedPattern{item.key, item.count, item.max_error, 0.0});
  }
  return s;
}

}  // namespace amri::assessment
