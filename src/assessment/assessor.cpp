#include "assessment/assessor.hpp"

#include "assessment/cdia.hpp"
#include "assessment/csria.hpp"
#include "assessment/dia.hpp"
#include "assessment/sria.hpp"

namespace amri::assessment {

void Assessor::bind_telemetry(telemetry::Telemetry* telemetry,
                              const std::string& prefix) {
  if (telemetry == nullptr) {
    observed_counter_ = compressed_counter_ = nullptr;
    return;
  }
  auto& reg = telemetry->metrics();
  observed_counter_ = &reg.counter(prefix + ".observations");
  compressed_counter_ = &reg.counter(prefix + ".compressed_entries");
}

std::string assessor_kind_name(AssessorKind kind) {
  switch (kind) {
    case AssessorKind::kSria: return "SRIA";
    case AssessorKind::kCsria: return "CSRIA";
    case AssessorKind::kDia: return "DIA";
    case AssessorKind::kCdiaRandom: return "CDIA-random";
    case AssessorKind::kCdiaHighestCount: return "CDIA-hc";
  }
  return "unknown";
}

std::unique_ptr<Assessor> make_assessor(AssessorKind kind, AttrMask universe,
                                        const AssessorParams& params) {
  switch (kind) {
    case AssessorKind::kSria:
      return std::make_unique<Sria>(universe);
    case AssessorKind::kCsria:
      return std::make_unique<Csria>(universe, params.epsilon);
    case AssessorKind::kDia:
      return std::make_unique<Dia>(universe);
    case AssessorKind::kCdiaRandom:
      return std::make_unique<Cdia>(universe, params.epsilon,
                                    stats::CombinePolicy::kRandom,
                                    params.seed);
    case AssessorKind::kCdiaHighestCount:
      return std::make_unique<Cdia>(universe, params.epsilon,
                                    stats::CombinePolicy::kHighestCount,
                                    params.seed);
  }
  return nullptr;
}

std::vector<index::PatternFrequency> to_pattern_frequencies(
    const std::vector<AssessedPattern>& patterns) {
  std::vector<index::PatternFrequency> out;
  out.reserve(patterns.size());
  double total = 0.0;
  for (const AssessedPattern& p : patterns) total += p.frequency;
  for (const AssessedPattern& p : patterns) {
    out.push_back(index::PatternFrequency{
        p.mask, total > 0.0 ? p.frequency / total : 0.0});
  }
  return out;
}

}  // namespace amri::assessment
