#include "assessment/cdia.hpp"

namespace amri::assessment {

std::vector<AssessedPattern> Cdia::results(double theta) const {
  std::vector<AssessedPattern> out;
  for (const auto& r : hhh_.results(theta)) {
    out.push_back(AssessedPattern{r.mask, r.count, r.max_error, r.frequency});
  }
  return out;
}

AssessmentSnapshot Cdia::snapshot() const {
  AssessmentSnapshot s;
  s.kind = hhh_.policy() == stats::CombinePolicy::kRandom
               ? AssessorKind::kCdiaRandom
               : AssessorKind::kCdiaHighestCount;
  s.universe = hhh_.lattice().shape().universe();
  s.epsilon = hhh_.epsilon();
  s.seed = hhh_.seed();
  s.observed = hhh_.observed();
  s.entries.reserve(hhh_.lattice().counts().size());
  for (const auto& [mask, entry] : hhh_.lattice().counts().sorted_entries()) {
    s.entries.push_back(
        AssessedPattern{mask, entry.count, entry.max_error, 0.0});
  }
  return s;
}

std::string Cdia::name() const {
  return hhh_.policy() == stats::CombinePolicy::kRandom ? "CDIA-random"
                                                        : "CDIA-hc";
}

}  // namespace amri::assessment
