#include "assessment/cdia.hpp"

namespace amri::assessment {

std::vector<AssessedPattern> Cdia::results(double theta) const {
  std::vector<AssessedPattern> out;
  for (const auto& r : hhh_.results(theta)) {
    out.push_back(AssessedPattern{r.mask, r.count, r.max_error, r.frequency});
  }
  return out;
}

std::string Cdia::name() const {
  return hhh_.policy() == stats::CombinePolicy::kRandom ? "CDIA-random"
                                                        : "CDIA-hc";
}

}  // namespace amri::assessment
