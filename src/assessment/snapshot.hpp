// Merging per-shard assessment snapshots back into one logical answer.
//
// A sharded STeM runs one assessor per shard; every probe is attributed to
// exactly one shard, so the shard substreams partition the state's request
// stream. At tuner epochs the shards' AssessmentSnapshots are merged by
// summing per-mask counts (and error bounds), and snapshot_results()
// reproduces the kind's Assessor::results() semantics over the merged
// statistics:
//   * SRIA / DIA — exact additive counts: the merged answer is identical
//     (entries, order, frequencies) to assessing the unpartitioned stream;
//   * CSRIA — each shard undercounts by <= epsilon * N_shard, so the merged
//     count undercounts by <= epsilon * N: the unpartitioned Manku–Motwani
//     bound, with the same strict-theta filter on estimated frequency;
//   * CDIA — compression conserves count mass, so the summed entries form a
//     valid lattice state; the merged answer is its bottom-up rollup.
#pragma once

#include <vector>

#include "assessment/assessor.hpp"

namespace amri::assessment {

/// Sum `parts` into one snapshot: per-mask counts and max_errors add,
/// observation totals add, entries stay sorted by mask. All parts must
/// share kind / universe / epsilon (they come from sibling shards of one
/// state). An empty `parts` yields an empty exact snapshot.
AssessmentSnapshot merge_snapshots(const std::vector<AssessmentSnapshot>& parts);

/// Frequent patterns of a (merged) snapshot at threshold theta — the
/// sharded analogue of Assessor::results(theta). Sorted by descending
/// count, then ascending mask, exactly like the per-kind results().
std::vector<AssessedPattern> snapshot_results(const AssessmentSnapshot& snap,
                                              double theta);

}  // namespace amri::assessment
