#include "assessment/dia.hpp"

#include <algorithm>
#include <cassert>

namespace amri::assessment {

void Dia::observe(AttrMask ap, std::uint64_t weight) {
  assert(is_subset(ap, lattice_.shape().universe()));
  lattice_.counts().add(ap, weight);
  note_observed(weight);  // DIA keeps full statistics: nothing compressed
  AMRI_CHECK_INVARIANTS(*this);
}

std::vector<AssessedPattern> Dia::results(double theta) const {
  std::vector<AssessedPattern> out;
  const auto n = lattice_.counts().total_observed();
  if (n == 0) return out;
  for (const auto& [mask, entry] : lattice_.counts()) {
    const double f =
        static_cast<double>(entry.count) / static_cast<double>(n);
    if (f >= theta) {
      out.push_back(AssessedPattern{mask, entry.count, 0, f});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const AssessedPattern& a, const AssessedPattern& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.mask < b.mask;
            });
  return out;
}

AssessmentSnapshot Dia::snapshot() const {
  AssessmentSnapshot s;
  s.kind = AssessorKind::kDia;
  s.universe = lattice_.shape().universe();
  s.observed = lattice_.counts().total_observed();
  s.entries.reserve(lattice_.counts().size());
  for (const auto& [mask, entry] : lattice_.counts().sorted_entries()) {
    s.entries.push_back(
        AssessedPattern{mask, entry.count, entry.max_error, 0.0});
  }
  return s;
}

}  // namespace amri::assessment
