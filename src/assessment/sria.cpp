#include "assessment/sria.hpp"

#include <algorithm>
#include <cassert>

namespace amri::assessment {

void Sria::observe(AttrMask ap, std::uint64_t weight) {
  assert(is_subset(ap, universe_));
  table_.add(ap, weight);
  note_observed(weight);  // SRIA never compresses: observation count only
}

std::vector<AssessedPattern> Sria::results(double theta) const {
  std::vector<AssessedPattern> out;
  const auto n = table_.total_observed();
  if (n == 0) return out;
  for (const auto& [mask, entry] : table_) {
    const double f =
        static_cast<double>(entry.count) / static_cast<double>(n);
    if (f >= theta) {
      out.push_back(AssessedPattern{mask, entry.count, 0, f});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const AssessedPattern& a, const AssessedPattern& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.mask < b.mask;
            });
  return out;
}

AssessmentSnapshot Sria::snapshot() const {
  AssessmentSnapshot s;
  s.kind = AssessorKind::kSria;
  s.universe = universe_;
  s.observed = table_.total_observed();
  s.entries.reserve(table_.size());
  for (const auto& [mask, entry] : table_.sorted_entries()) {
    s.entries.push_back(
        AssessedPattern{mask, entry.count, entry.max_error, 0.0});
  }
  return s;
}

}  // namespace amri::assessment
