#include "engine/stem.hpp"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

#include "assessment/snapshot.hpp"
#include "common/assertions.hpp"
#include "index/access_pattern.hpp"

namespace amri::engine {

StemOperator::StemOperator(StreamId stream, const StateLayout& layout,
                           TimeMicros window, StemOptions options,
                           index::CostModel model, CostMeter* meter,
                           MemoryTracker* memory,
                           telemetry::Telemetry* telemetry)
    : stream_(stream),
      layout_(layout),
      window_(window),
      options_(std::move(options)),
      meter_(meter),
      memory_(memory),
      telemetry_(telemetry) {
  const std::size_t n = layout_.jas.size();
  index::BitMapper mapper = [&] {
    switch (options_.map_strategy) {
      case index::MapStrategy::kRange:
        return index::BitMapper::ranged(options_.domains);
      case index::MapStrategy::kQuantile: {
        auto samples = options_.quantile_samples;
        samples.resize(n);
        return index::BitMapper::quantile(std::move(samples));
      }
      case index::MapStrategy::kHash:
      default:
        return index::BitMapper::hashing(n);
    }
  }();
  switch (options_.backend) {
    case IndexBackend::kAmri:
    case IndexBackend::kStaticBitmap: {
      index::IndexConfig ic = options_.initial_config.num_attrs() == n
                                  ? options_.initial_config
                                  : index::IndexConfig::zero(n);
      const tuner::TunerOptions topts =
          options_.amri_tuner.value_or(tuner::TunerOptions{});
      if (options_.shards > 1) {
        const std::size_t spos =
            options_.shard_attr < n ? options_.shard_attr : 0;
        auto idx = std::make_unique<index::ShardedBitIndex>(
            layout_.jas, std::move(ic), std::move(mapper), options_.shards,
            spos, options_.pool, meter_, memory_);
        sharded_index_ = idx.get();
        index_ = std::move(idx);
        if (options_.probe_prefetch) sharded_index_->set_prefetch(true);
        if (telemetry_ != nullptr) {
          sharded_index_->bind_telemetry(
              telemetry_, "stem." + std::to_string(stream_) + ".index",
              stream_);
        }
      } else {
        auto idx = std::make_unique<index::BitAddressIndex>(
            layout_.jas, std::move(ic), std::move(mapper), meter_, memory_);
        bit_index_ = idx.get();
        index_ = std::move(idx);
        if (options_.probe_prefetch) bit_index_->set_prefetch(true);
        if (telemetry_ != nullptr) {
          bit_index_->bind_telemetry(
              telemetry_, "stem." + std::to_string(stream_) + ".index");
        }
      }
      // Sharded and/or multi-query states keep an external assessor grid
      // (query-major: one cell per query × shard), merged at tuning epochs
      // so index selection still sees the one logical request stream.
      shard_slots_ = options_.shards > 1 ? options_.shards : 1;
      if (options_.shards > 1 || options_.queries > 1) {
        const std::size_t queries = std::max<std::size_t>(options_.queries, 1);
        shard_assessors_.reserve(queries * shard_slots_);
        for (std::size_t q = 0; q < queries; ++q) {
          for (std::size_t i = 0; i < shard_slots_; ++i) {
            shard_assessors_.push_back(assessment::make_assessor(
                topts.assessor, layout_.jas.universe(), topts.assessor_params));
          }
        }
        if (options_.queries > 1) {
          epoch_query_requests_.assign(options_.queries, 0);
        }
        if (telemetry_ != nullptr) {
          const std::string prefix = "stem." + std::to_string(stream_);
          for (std::size_t q = 0; q < queries; ++q) {
            // Single-query sharded grids keep the legacy
            // "stem.N.shard.I.assess" names; multi-query cells are
            // per-query labeled.
            const std::string qpart =
                options_.queries > 1 ? ".q" + std::to_string(q) : "";
            for (std::size_t i = 0; i < shard_slots_; ++i) {
              const std::string spart = options_.shards > 1
                                            ? ".shard." + std::to_string(i)
                                            : "";
              shard_assessors_[q * shard_slots_ + i]->bind_telemetry(
                  telemetry_, prefix + qpart + spart + ".assess");
            }
          }
        }
      }
      // Static backends also carry a tuner so the warm-up phase can train
      // their starting configuration; finish_warmup() drops it.
      amri_tuner_ = std::make_unique<tuner::AmriTuner>(
          layout_.jas.universe(), n, model, topts, memory_, telemetry_,
          stream_);
      continuous_tuning_ = options_.backend == IndexBackend::kAmri;
      break;
    }
    case IndexBackend::kAccessModules:
    case IndexBackend::kStaticModules: {
      auto idx = std::make_unique<index::AccessModuleSet>(
          layout_.jas, options_.initial_modules, meter_, memory_);
      module_index_ = idx.get();
      index_ = std::move(idx);
      {
        tuner::HashTunerOptions topts =
            options_.module_tuner.value_or(tuner::HashTunerOptions{});
        module_tuner_ = std::make_unique<tuner::HashModuleTuner>(
            layout_.jas.universe(), topts, memory_);
      }
      continuous_tuning_ = options_.backend == IndexBackend::kAccessModules;
      break;
    }
    case IndexBackend::kScan:
      index_ = std::make_unique<index::ScanIndex>(layout_.jas, meter_, memory_);
      break;
  }
  if (telemetry_ != nullptr) {
    const std::string prefix = "stem." + std::to_string(stream_);
    auto& reg = telemetry_->metrics();
    profiler_ = telemetry_->profiler();
    probe_counter_ = &reg.counter(prefix + ".probe.count");
    probe_cost_hist_ = &reg.histogram(
        prefix + ".probe.cost_us",
        telemetry::Histogram::exponential_bounds(0.05, 2.0, 16));
    batch_size_hist_ = &reg.histogram(
        prefix + ".probe.batch_size",
        telemetry::Histogram::exponential_bounds(1.0, 2.0, 12));
  }
}

StemOperator::~StemOperator() {
  if (memory_ != nullptr && tracked_tuple_bytes_ > 0) {
    memory_->release(MemCategory::kStateTuples, tracked_tuple_bytes_);
  }
  if (memory_ != nullptr && tracked_stats_bytes_ > 0) {
    memory_->release(MemCategory::kStatistics, tracked_stats_bytes_);
  }
}

void StemOperator::sync_stats_memory() {
  if (memory_ == nullptr) return;
  std::size_t now = 0;
  for (const auto& a : shard_assessors_) now += a->approx_bytes();
  if (now > tracked_stats_bytes_) {
    memory_->allocate(MemCategory::kStatistics, now - tracked_stats_bytes_);
  } else if (now < tracked_stats_bytes_) {
    memory_->release(MemCategory::kStatistics, tracked_stats_bytes_ - now);
  }
  tracked_stats_bytes_ = now;
}

void StemOperator::sync_tuple_memory() {
  if (memory_ == nullptr) return;
  // deque of tuples: payload plus modest container overhead per element.
  const std::size_t now = window_store_.size() * (sizeof(Tuple) + 8);
  if (now > tracked_tuple_bytes_) {
    memory_->allocate(MemCategory::kStateTuples, now - tracked_tuple_bytes_);
  } else if (now < tracked_tuple_bytes_) {
    memory_->release(MemCategory::kStateTuples, tracked_tuple_bytes_ - now);
  }
  tracked_tuple_bytes_ = now;
}

const Tuple* StemOperator::insert(const Tuple& t) {
  window_store_.push_back(t);
  index_->insert(&window_store_.back());
  sync_tuple_memory();
  return &window_store_.back();
}

void StemOperator::insert_batch(const Tuple* arrivals, std::size_t n,
                                std::vector<const Tuple*>& stored) {
  stored.reserve(stored.size() + n);
  const std::size_t first = stored.size();
  for (std::size_t i = 0; i < n; ++i) {
    // deque::push_back never invalidates references to earlier elements,
    // so each stored pointer is stable for the rest of the batch.
    window_store_.push_back(arrivals[i]);
    stored.push_back(&window_store_.back());
  }
  if (bit_index_ != nullptr) {
    // Batched kernel: destination slots precomputed (and, in wall mode,
    // prefetched) across the run. Equivalent to per-tuple insert().
    bit_index_->insert_batch(stored.data() + first, n);
  } else {
    for (std::size_t i = 0; i < n; ++i) index_->insert(stored[first + i]);
  }
  sync_tuple_memory();
}

void StemOperator::expire(TimeMicros now) {
  const TimeMicros horizon = now - window_;
  if (bit_index_ != nullptr) {
    // The expiring run is the window's ts-ordered prefix; collecting it
    // first lets the batched erase walk prefetch across tuples.
    expiry_scratch_.clear();
    for (const Tuple& t : window_store_) {
      if (t.ts >= horizon) break;
      expiry_scratch_.push_back(&t);
    }
    if (!expiry_scratch_.empty()) {
      bit_index_->erase_batch(expiry_scratch_.data(), expiry_scratch_.size());
      for (std::size_t i = 0; i < expiry_scratch_.size(); ++i) {
        window_store_.pop_front();
      }
    }
  } else {
    while (!window_store_.empty() && window_store_.front().ts < horizon) {
      index_->erase(&window_store_.front());
      window_store_.pop_front();
    }
  }
  sync_tuple_memory();
  AMRI_CHECK_INVARIANTS(*this);
}

void StemOperator::check_invariants() const {
  for (std::size_t i = 1; i < window_store_.size(); ++i) {
    AMRI_CHECK(window_store_[i - 1].ts <= window_store_[i].ts,
               "window store timestamps must be non-decreasing");
  }
  AMRI_CHECK(index_->size() == window_store_.size(),
             "physical index size disagrees with the window store");
  AMRI_CHECK(memory_ == nullptr ||
                 tracked_tuple_bytes_ ==
                     window_store_.size() * (sizeof(Tuple) + 8),
             "tuple memory accounting is stale");
  if (bit_index_ != nullptr) bit_index_->check_invariants();
  if (sharded_index_ != nullptr) sharded_index_->check_invariants();
}

telemetry::Histogram* StemOperator::pattern_histogram(AttrMask mask) {
  assert(telemetry_ != nullptr);  // only reached from telemetry-guarded code
  const auto it = pattern_hists_.find(mask);
  if (it != pattern_hists_.end()) return it->second;
  const std::string name =
      "stem." + std::to_string(stream_) + ".ap." +
      index::pattern_to_string(mask, layout_.jas.size()) + ".probe_us";
  // Lazy by necessity: the set of access patterns is only known once
  // probes arrive; the per-mask cache above keeps repeat lookups out of
  // the registry.
  auto* hist = &telemetry_->metrics().histogram(  // amri-lint: allow(AMRI006)
      name, telemetry::Histogram::exponential_bounds(0.05, 2.0, 16));
  pattern_hists_.emplace(mask, hist);
  return hist;
}

index::ProbeStats StemOperator::probe(const index::ProbeKey& key,
                                      std::vector<const Tuple*>& out) {
  ++probes_;
  const double charged_before =
      (telemetry_ != nullptr && meter_ != nullptr) ? meter_->charged_us() : 0.0;
  index::ProbeStats stats;
  {
    telemetry::ScopedPhase probe_scope(profiler_, telemetry::Phase::kProbe);
    stats = index_->probe(key, out);
  }
  if (telemetry_ != nullptr) {
    probe_counter_->add();
    if (meter_ != nullptr) {
      // Modelled probe latency: the virtual time this probe charged to the
      // clock (hashes, bucket visits, comparisons), per access pattern.
      const double cost = meter_->charged_us() - charged_before;
      probe_cost_hist_->observe(cost);
      pattern_histogram(key.mask)->observe(cost);
      // Feed the tuner's realized-cost accumulator before any decision
      // below closes the epoch.
      if (amri_tuner_ != nullptr) amri_tuner_->note_probe_cost(cost);
    }
  }
  if (amri_tuner_ != nullptr && !shard_assessors_.empty()) {
    // External grid attribution: the request lands in the active query's
    // row, at the shard that served it; fan-outs touch every shard, so
    // they round-robin deterministically (the merged assessment is
    // shard-attribution-invariant anyway).
    std::size_t shard_slot = 0;
    if (sharded_index_ != nullptr) {
      const std::size_t target = sharded_index_->target_shard(key);
      shard_slot =
          target < shard_slots_ ? target : fanout_rr_++ % shard_slots_;
    }
    shard_assessors_[active_query_ * shard_slots_ + shard_slot]->observe(
        key.mask);
    if (!epoch_query_requests_.empty()) {
      ++epoch_query_requests_[active_query_];
    }
    amri_tuner_->note_request();
    sync_stats_memory();
    if (continuous_tuning_ && amri_tuner_->tuning_due()) {
      merged_tune();
    }
  } else if (amri_tuner_ != nullptr) {
    amri_tuner_->observe_request(key.mask);
    if (continuous_tuning_ && amri_tuner_->tuning_due()) {
      telemetry::ScopedPhase tune_scope(profiler_,
                                        telemetry::Phase::kTunerEpoch);
      amri_tuner_->maybe_tune(*bit_index_);
    }
  } else if (module_tuner_ != nullptr) {
    module_tuner_->observe_request(key.mask);
    if (continuous_tuning_ && module_tuner_->tuning_due()) {
      telemetry::ScopedPhase tune_scope(profiler_,
                                        telemetry::Phase::kTunerEpoch);
      module_tuner_->maybe_tune(*module_index_);
    }
  }
  return stats;
}

void StemOperator::probe_batch(const index::ProbeKey* keys, std::size_t n,
                               std::vector<const Tuple*>* outs,
                               index::ProbeStats* stats) {
  if (n == 0) return;
  if (batch_size_hist_ != nullptr) {
    batch_size_hist_->observe(static_cast<double>(n));
  }
  if (n == 1) {
    stats[0] = probe(keys[0], outs[0]);
    return;
  }
  std::size_t pos = 0;
  while (pos < n) {
    std::size_t chunk = n - pos;
    if (continuous_tuning_) {
      // Stop the chunk at the tuner's decision boundary so a mid-batch
      // tuning decision fires at exactly the same request index as
      // tuple-at-a-time execution would fire it.
      std::uint64_t until = 0;
      if (amri_tuner_ != nullptr) {
        until = amri_tuner_->requests_until_due();
      } else if (module_tuner_ != nullptr) {
        until = module_tuner_->requests_until_due();
      }
      if (until == 0) until = 1;  // already due: decide after one request
      if (until < chunk) chunk = static_cast<std::size_t>(until);
    }
    probe_chunk(keys + pos, chunk, outs + pos, stats + pos);
    pos += chunk;
  }
}

void StemOperator::probe_chunk(const index::ProbeKey* keys, std::size_t n,
                               std::vector<const Tuple*>* outs,
                               index::ProbeStats* stats) {
  probes_ += n;
  const double charged_before =
      (telemetry_ != nullptr && meter_ != nullptr) ? meter_->charged_us() : 0.0;
  {
    telemetry::ScopedPhase probe_scope(profiler_, telemetry::Phase::kProbe);
    index_->probe_batch(keys, n, outs, stats);
  }
  if (telemetry_ != nullptr) {
    probe_counter_->add(n);
    if (meter_ != nullptr) {
      // A batch's modelled latency is charged as one aggregate, so each
      // key's histograms receive the chunk average — observation counts
      // stay identical to the tuple-at-a-time engine.
      const double total = meter_->charged_us() - charged_before;
      const double avg = total / static_cast<double>(n);
      for (std::size_t i = 0; i < n; ++i) {
        probe_cost_hist_->observe(avg);
        pattern_histogram(keys[i].mask)->observe(avg);
      }
      if (amri_tuner_ != nullptr) amri_tuner_->note_probe_cost(total, n);
    }
  }
  if (amri_tuner_ != nullptr && !shard_assessors_.empty()) {
    // Weighted assessment: one observe per (grid slot, access pattern)
    // group in the active query's row. Shard slots are computed with the
    // exact sequential attribution sequence (target shard, else the
    // deterministic round-robin), so the merged assessment matches n
    // single probes bit-for-bit for the additive assessors.
    struct SlotObs {
      std::size_t slot;
      AttrMask mask;
      std::uint64_t weight;
    };
    SmallVector<SlotObs, 16> groups;
    const std::size_t row = active_query_ * shard_slots_;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t shard_slot = 0;
      if (sharded_index_ != nullptr) {
        const std::size_t target = sharded_index_->target_shard(keys[i]);
        shard_slot =
            target < shard_slots_ ? target : fanout_rr_++ % shard_slots_;
      }
      const std::size_t slot = row + shard_slot;
      bool found = false;
      for (SlotObs& o : groups) {
        if (o.slot == slot && o.mask == keys[i].mask) {
          ++o.weight;
          found = true;
          break;
        }
      }
      if (!found) groups.push_back(SlotObs{slot, keys[i].mask, 1});
    }
    for (const SlotObs& o : groups) {
      shard_assessors_[o.slot]->observe(o.mask, o.weight);
    }
    if (!epoch_query_requests_.empty()) {
      epoch_query_requests_[active_query_] += n;
    }
    amri_tuner_->note_request(n);
    sync_stats_memory();
    if (continuous_tuning_ && amri_tuner_->tuning_due()) {
      merged_tune();
    }
  } else if (amri_tuner_ != nullptr || module_tuner_ != nullptr) {
    struct MaskObs {
      AttrMask mask;
      std::uint64_t weight;
    };
    SmallVector<MaskObs, 8> groups;
    for (std::size_t i = 0; i < n; ++i) {
      bool found = false;
      for (MaskObs& o : groups) {
        if (o.mask == keys[i].mask) {
          ++o.weight;
          found = true;
          break;
        }
      }
      if (!found) groups.push_back(MaskObs{keys[i].mask, 1});
    }
    if (amri_tuner_ != nullptr) {
      for (const MaskObs& o : groups) {
        amri_tuner_->observe_request(o.mask, o.weight);
      }
      if (continuous_tuning_ && amri_tuner_->tuning_due()) {
        telemetry::ScopedPhase tune_scope(profiler_,
                                          telemetry::Phase::kTunerEpoch);
        amri_tuner_->maybe_tune(*bit_index_);
      }
    } else {
      for (const MaskObs& o : groups) {
        module_tuner_->observe_request(o.mask, o.weight);
      }
      if (continuous_tuning_ && module_tuner_->tuning_due()) {
        telemetry::ScopedPhase tune_scope(profiler_,
                                          telemetry::Phase::kTunerEpoch);
        module_tuner_->maybe_tune(*module_index_);
      }
    }
  }
}

void StemOperator::merged_tune() {
  assert(!shard_assessors_.empty() && amri_tuner_ != nullptr);
  assert(sharded_index_ != nullptr || bit_index_ != nullptr);
  telemetry::ScopedPhase tune_scope(profiler_, telemetry::Phase::kTunerEpoch);
  tuner::ExternalAssessment external;
  {
    telemetry::ScopedPhase merge_scope(profiler_,
                                       telemetry::Phase::kSnapshotMerge);
    std::vector<assessment::AssessmentSnapshot> parts;
    parts.reserve(shard_assessors_.size());
    for (const auto& a : shard_assessors_) parts.push_back(a->snapshot());
    const auto merged = assessment::merge_snapshots(parts);
    external.frequent =
        assessment::snapshot_results(merged, amri_tuner_->options().theta);
    external.table_size = merged.entries.size();
    for (const auto& a : shard_assessors_) {
      external.approx_bytes += a->approx_bytes();
    }
  }
  if (!epoch_query_requests_.empty()) {
    // Per-query attribution for the decision timeline, then roll the epoch.
    for (std::size_t q = 0; q < epoch_query_requests_.size(); ++q) {
      external.per_query.push_back(
          tuner::QueryShare{q, epoch_query_requests_[q]});
      epoch_query_requests_[q] = 0;
    }
  }
  if (sharded_index_ != nullptr) {
    amri_tuner_->maybe_tune_sharded(*sharded_index_, external);
  } else {
    amri_tuner_->maybe_tune_external(*bit_index_, external);
  }

  // Statistics retention, mirrored from AmriTuner::recommend() onto the
  // per-shard assessors this stem owns.
  switch (amri_tuner_->options().retention) {
    case tuner::StatsRetention::kReset:
      for (auto& a : shard_assessors_) a->reset();
      break;
    case tuner::StatsRetention::kKeep:
      break;
    case tuner::StatsRetention::kDecay:
      for (auto& a : shard_assessors_) {
        a->decay(amri_tuner_->options().decay_factor);
      }
      break;
  }
  sync_stats_memory();
}

const index::IndexConfig* StemOperator::current_config() const {
  if (sharded_index_ != nullptr) return &sharded_index_->config();
  return bit_index_ != nullptr ? &bit_index_->config() : nullptr;
}

std::uint64_t StemOperator::migrations() const {
  return warmup_migrations_ +
         (amri_tuner_ != nullptr   ? amri_tuner_->migrations()
          : module_tuner_ != nullptr ? module_tuner_->retunes()
                                     : 0);
}

double StemOperator::migration_pause_us() const {
  return warmup_pause_us_ +
         (amri_tuner_ != nullptr ? amri_tuner_->migration_pause_us() : 0.0);
}

std::uint64_t StemOperator::suppressed() const {
  return warmup_suppressed_ +
         (amri_tuner_ != nullptr ? amri_tuner_->suppressed() : 0);
}

void StemOperator::force_tune() {
  if (amri_tuner_ != nullptr && !shard_assessors_.empty()) {
    merged_tune();
  } else if (amri_tuner_ != nullptr && bit_index_ != nullptr) {
    amri_tuner_->maybe_tune(*bit_index_);
  } else if (module_tuner_ != nullptr && module_index_ != nullptr) {
    module_tuner_->maybe_tune(*module_index_);
  }
}

void StemOperator::finish_warmup() {
  force_tune();
  if (!continuous_tuning_) {
    // The non-adapting baselines keep the trained configuration forever.
    if (amri_tuner_ != nullptr) {
      warmup_migrations_ = amri_tuner_->migrations();
      warmup_suppressed_ = amri_tuner_->suppressed();
      warmup_pause_us_ = amri_tuner_->migration_pause_us();
    }
    if (module_tuner_ != nullptr) warmup_migrations_ = module_tuner_->retunes();
    amri_tuner_.reset();
    module_tuner_.reset();
    shard_assessors_.clear();
    sync_stats_memory();
  }
}

}  // namespace amri::engine
