#include "engine/eddy.hpp"

#include <cassert>
#include <chrono>

#include "telemetry/json.hpp"

namespace amri::engine {

EddyRouter::EddyRouter(const QuerySpec& query, std::vector<StemOperator*> stems,
                       EddyOptions options, CostMeter* meter,
                       telemetry::Telemetry* telemetry)
    : query_(query),
      stems_(std::move(stems)),
      options_(options),
      policy_(make_routing_policy(options.routing)),
      meter_(meter),
      telemetry_(telemetry) {
  assert(stems_.size() == query_.num_streams());
  if (telemetry_ != nullptr) {
    auto& reg = telemetry_->metrics();
    const std::string& prefix = options_.metrics_prefix;
    decisions_counter_ = &reg.counter(prefix + ".decisions");
    results_counter_ = &reg.counter(prefix + ".results");
    truncated_counter_ = &reg.counter(prefix + ".partials_truncated");
    route_change_counter_ = &reg.counter(prefix + ".route_changes");
  }
}

void EddyRouter::note_decision(std::uint32_t done_mask, StreamId target,
                               std::uint64_t count) {
  if (telemetry_ == nullptr) return;  // counters resolve with telemetry
  decisions_counter_->add(count);
  const auto it = last_target_.find(done_mask);
  if (it != last_target_.end() && it->second == target) return;
  const bool had_previous = it != last_target_.end();
  if (had_previous) {
    route_change_counter_->add();
    telemetry::JsonWriter w;
    w.begin_object();
    w.field("done_mask", static_cast<std::uint64_t>(done_mask));
    w.field("from", static_cast<std::uint64_t>(it->second));
    w.field("to", static_cast<std::uint64_t>(target));
    w.end_object();
    telemetry_->emit(telemetry::EventKind::kRoutingChange, target,
                     std::move(w).take());
  }
  last_target_[done_mask] = target;
}

std::uint64_t EddyRouter::route(const Tuple* stored,
                                std::vector<JoinResult>* sink) {
  assert(stored != nullptr);
  ++arrivals_;
  const std::uint32_t all = query_.all_streams_mask();
  const std::uint64_t span =
      telemetry_ != nullptr ? telemetry_->active_span() : 0;

  Partial root;
  root.done = std::uint32_t{1} << stored->stream;
  root.members.resize(query_.num_streams(), nullptr);
  root.members[stored->stream] = stored;

  std::uint64_t produced = 0;
  std::size_t processed = 0;
  std::vector<Partial> stack;
  stack.push_back(std::move(root));

  while (!stack.empty()) {
    if (++processed > options_.max_partials_per_arrival) {
      ++truncated_;
      if (span != 0) {
        telemetry::JsonWriter w;
        w.begin_object();
        w.field("span", span);
        w.field("stage", "truncate");
        w.field("wall_ns", telemetry_->wall_ns());
        w.field("processed", static_cast<std::uint64_t>(processed));
        w.end_object();
        telemetry_->emit(telemetry::EventKind::kSpan, stored->stream,
                         std::move(w).take());
      }
      break;
    }
    Partial p = std::move(stack.back());
    stack.pop_back();
    if (p.done == all) {
      ++produced;
      if (sink != nullptr) {
        JoinResult r;
        r.members = p.members;
        sink->push_back(std::move(r));
      }
      continue;
    }

    // Candidate next states and the access pattern each would see.
    RoutingContext ctx;
    ctx.done_mask = p.done;
    for (StreamId s = 0; s < query_.num_streams(); ++s) {
      if ((p.done >> s) & 1u) continue;
      ctx.candidates.push_back(RoutingContext::Candidate{
          s, query_.layout(s).pattern_for(p.done)});
    }
    assert(!ctx.candidates.empty());
    // Batch routing: reuse the cached decision for this done-mask while
    // its batch lasts; only fresh decisions consult the policy (and pay
    // the routing cost).
    std::size_t pick;
    bool fresh_decision = false;
    if (options_.decision_reuse > 1) {
      auto& cached = decision_cache_[p.done];
      if (cached.remaining == 0) {
        cached.pick = policy_->choose(ctx, stats_);
        cached.remaining = options_.decision_reuse;
        fresh_decision = true;
        if (meter_ != nullptr) meter_->charge_route();
      }
      pick = std::min(cached.pick, ctx.candidates.size() - 1);
      --cached.remaining;
    } else {
      pick = policy_->choose(ctx, stats_);
      fresh_decision = true;
      if (meter_ != nullptr) meter_->charge_route();
    }
    const StreamId target = ctx.candidates[pick].state;
    const AttrMask ap = ctx.candidates[pick].pattern;
    if (telemetry_ != nullptr && fresh_decision) note_decision(p.done, target);

    // Bind every available join attribute of the target state,
    // translating query-local JAS positions to the (possibly wider)
    // shared-stem positions in multi-query mode.
    const StateLayout& layout = query_.layout(target);
    const std::vector<std::uint8_t>* pos_map =
        position_maps_.empty() ? nullptr : &position_maps_[target];
    index::ProbeKey key;
    key.values.resize(stems_[target]->layout().jas.size(), Value{0});
    for_each_bit(ap, [&](unsigned pos) {
      const auto& peer = layout.peers[pos];
      const unsigned stem_pos =
          pos_map == nullptr ? pos : (*pos_map)[pos];
      key.mask |= (AttrMask{1} << stem_pos);
      key.values[stem_pos] = p.members[peer.stream]->at(peer.attr);
    });

    // The target STeM's scratch arena: cleared here, capacity retained
    // across arrivals, so the steady-state probe path allocates nothing.
    std::vector<const Tuple*>& matches = stems_[target]->probe_scratch();
    std::chrono::steady_clock::time_point hop_t0{};
    if (span != 0) hop_t0 = std::chrono::steady_clock::now();
    const auto probe_stats = stems_[target]->probe(key, matches);
    if (span != 0 && telemetry_ != nullptr) {
      const auto probe_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - hop_t0)
              .count();
      telemetry::JsonWriter w;
      w.begin_object();
      w.field("span", span);
      w.field("stage", "hop");
      w.field("wall_ns", telemetry_->wall_ns());
      w.field("done_mask", static_cast<std::uint64_t>(p.done));
      w.field("target", static_cast<std::uint64_t>(target));
      w.field("ap", static_cast<std::uint64_t>(ap));
      w.field("matches", static_cast<std::uint64_t>(probe_stats.matches));
      w.field("compared",
              static_cast<std::uint64_t>(probe_stats.tuples_compared));
      w.field("probe_ns", static_cast<std::uint64_t>(probe_ns));
      w.end_object();
      telemetry_->emit(telemetry::EventKind::kSpan, target,
                       std::move(w).take());
    }
    stats_.record(target, ap, static_cast<double>(probe_stats.matches),
                  static_cast<double>(probe_stats.tuples_compared));

    // Multi-query visibility: a shared state stores any tuple some query
    // accepted, so this query's WHERE selection must re-verify matches.
    // (Single-query states only hold pre-filtered tuples; the selection is
    // empty or trivially true there, so this is skipped.)
    const Selection& visibility = query_.selection(target);
    if (!visibility.empty()) {
      std::size_t kept = 0;
      for (const Tuple* m : matches) {
        if (visibility.matches(*m, meter_)) matches[kept++] = m;
      }
      matches.resize(kept);
    }

    for (const Tuple* m : matches) {
      Partial next;
      next.done = p.done | (std::uint32_t{1} << target);
      next.members = p.members;
      next.members[target] = m;
      stack.push_back(std::move(next));
    }
  }
  results_ += produced;
  if (telemetry_ != nullptr) {
    if (produced > 0) results_counter_->add(produced);
    if (processed > options_.max_partials_per_arrival) {
      truncated_counter_->add();
    }
  }
  return produced;
}

std::uint64_t EddyRouter::route_batch(const Tuple* const* stored,
                                      const std::uint32_t* done, std::size_t n,
                                      std::vector<JoinResult>* sink,
                                      std::size_t span_root,
                                      const BatchVisibility* visibility) {
  if (n == 0) return 0;
  // Single-arrival batches delegate; route() picks the active span up
  // directly, so span_root 0 still traces.
  if (n == 1) return route(stored[0], sink);
  assert(stored != nullptr && done != nullptr);
  arrivals_ += n;
  const std::uint32_t all = query_.all_streams_mask();
  const std::uint64_t span =
      (telemetry_ != nullptr && span_root != kNoSpanRoot)
          ? telemetry_->active_span()
          : 0;

  // A partial tagged with the arrival that rooted it, so the per-arrival
  // truncation valve keeps its exact sequential threshold.
  struct BatchPartial {
    std::uint32_t done = 0;
    std::uint32_t root = 0;  ///< index into the routed array
    /// The root's order within the visibility horizon. Equal to `root` when
    /// the routed array IS the batch (single-query wall mode); resolved via
    /// BatchVisibility::order_of when a per-query sub-array is routed, so
    /// the seq horizon keeps full-batch coordinates.
    std::uint32_t vis_order = 0;
    SmallVector<const Tuple*, 8> members;
  };

  std::uint64_t produced = 0;
  std::vector<std::uint64_t> processed(n, 0);
  std::vector<bool> truncated(n, false);
  std::vector<BatchPartial> frontier;
  frontier.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    assert(stored[i] != nullptr);
    BatchPartial root;
    root.done = done[i];
    root.root = static_cast<std::uint32_t>(i);
    root.vis_order =
        visibility != nullptr
            ? visibility->order_of(stored[i], static_cast<std::uint32_t>(i))
            : static_cast<std::uint32_t>(i);
    root.members.resize(query_.num_streams(), nullptr);
    root.members[stored[i]->stream] = stored[i];
    frontier.push_back(std::move(root));
  }

  std::vector<BatchPartial> next_level;
  std::vector<std::size_t> live;  // surviving frontier indices, in order
  while (!frontier.empty()) {
    // Consume this level: per-arrival truncation accounting, then emit
    // complete results; the rest is routed below.
    live.clear();
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      BatchPartial& p = frontier[i];
      if (truncated[p.root]) continue;  // valve already tripped for it
      if (++processed[p.root] > options_.max_partials_per_arrival) {
        truncated[p.root] = true;
        ++truncated_;
        if (telemetry_ != nullptr) truncated_counter_->add();
        if (span != 0 && p.root == span_root) {
          telemetry::JsonWriter w;
          w.begin_object();
          w.field("span", span);
          w.field("stage", "truncate");
          w.field("wall_ns", telemetry_->wall_ns());
          w.field("processed", processed[p.root]);
          w.end_object();
          telemetry_->emit(telemetry::EventKind::kSpan,
                           stored[p.root]->stream, std::move(w).take());
        }
        continue;
      }
      if (p.done == all) {
        ++produced;
        if (sink != nullptr) {
          JoinResult r;
          r.members = p.members;
          sink->push_back(std::move(r));
        }
        continue;
      }
      live.push_back(i);
    }

    // Partition the survivors on done-mask, first-appearance order. A
    // level holds few distinct masks (all the same popcount), so a linear
    // scan beats hashing.
    SmallVector<std::uint32_t, 8> masks;
    std::vector<std::vector<std::size_t>> members_of;
    for (const std::size_t i : live) {
      const std::uint32_t mask = frontier[i].done;
      std::size_t g = 0;
      while (g < masks.size() && masks[g] != mask) ++g;
      if (g == masks.size()) {
        masks.push_back(mask);
        members_of.emplace_back();
      }
      members_of[g].push_back(i);
    }

    next_level.clear();
    for (std::size_t g = 0; g < masks.size(); ++g) {
      const std::uint32_t mask = masks[g];
      const std::vector<std::size_t>& part = members_of[g];
      const std::uint64_t k = part.size();

      RoutingContext ctx;
      ctx.done_mask = mask;
      for (StreamId s = 0; s < query_.num_streams(); ++s) {
        if ((mask >> s) & 1u) continue;
        ctx.candidates.push_back(
            RoutingContext::Candidate{s, query_.layout(s).pattern_for(mask)});
      }
      assert(!ctx.candidates.empty());

      // One routing decision serves the whole partition. The decision
      // cache is still consumed once per partial, so the number of fresh
      // (policy-consulting, route-charged) decisions — and the telemetry
      // decisions counter — match k sequential route() calls exactly.
      std::size_t pick;
      std::uint64_t fresh = 0;
      if (options_.decision_reuse > 1) {
        auto& cached = decision_cache_[mask];
        std::uint64_t consumed = 0;
        while (consumed < k) {
          if (cached.remaining == 0) {
            cached.pick = policy_->choose(ctx, stats_);
            cached.remaining = options_.decision_reuse;
            ++fresh;
          }
          const std::uint64_t take =
              std::min<std::uint64_t>(cached.remaining, k - consumed);
          cached.remaining -= take;
          consumed += take;
        }
        pick = std::min(cached.pick, ctx.candidates.size() - 1);
      } else {
        pick = policy_->choose(ctx, stats_);
        fresh = k;  // tuple-at-a-time consults the policy per partial
      }
      if (meter_ != nullptr && fresh > 0) meter_->charge_route(fresh);
      const StreamId target = ctx.candidates[pick].state;
      const AttrMask ap = ctx.candidates[pick].pattern;
      if (telemetry_ != nullptr && fresh > 0) {
        note_decision(mask, target, fresh);
      }

      // Build every partition member's probe key, then probe the target
      // STeM once through its batched path.
      const StateLayout& layout = query_.layout(target);
      const std::vector<std::uint8_t>* pos_map =
          position_maps_.empty() ? nullptr : &position_maps_[target];
      const std::size_t stem_width = stems_[target]->layout().jas.size();
      batch_keys_.assign(part.size(), index::ProbeKey{});
      batch_stats_.assign(part.size(), index::ProbeStats{});
      if (batch_outs_.size() < part.size()) batch_outs_.resize(part.size());
      for (std::size_t j = 0; j < part.size(); ++j) {
        const BatchPartial& p = frontier[part[j]];
        index::ProbeKey& key = batch_keys_[j];
        key.values.resize(stem_width, Value{0});
        for_each_bit(ap, [&](unsigned pos) {
          const auto& peer = layout.peers[pos];
          const unsigned stem_pos = pos_map == nullptr ? pos : (*pos_map)[pos];
          key.mask |= (AttrMask{1} << stem_pos);
          key.values[stem_pos] = p.members[peer.stream]->at(peer.attr);
        });
        batch_outs_[j].clear();
      }
      std::uint64_t span_partials = 0;
      if (span != 0) {
        for (const std::size_t i : part) {
          if (frontier[i].root == span_root) ++span_partials;
        }
      }
      std::chrono::steady_clock::time_point hop_t0{};
      if (span_partials > 0) hop_t0 = std::chrono::steady_clock::now();
      stems_[target]->probe_batch(batch_keys_.data(), part.size(),
                                  batch_outs_.data(), batch_stats_.data());
      if (span_partials > 0 && telemetry_ != nullptr) {
        const auto probe_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - hop_t0)
                .count();
        std::uint64_t span_matches = 0;
        std::uint64_t span_compared = 0;
        for (std::size_t j = 0; j < part.size(); ++j) {
          if (frontier[part[j]].root != span_root) continue;
          span_matches += batch_stats_[j].matches;
          span_compared += batch_stats_[j].tuples_compared;
        }
        telemetry::JsonWriter w;
        w.begin_object();
        w.field("span", span);
        w.field("stage", "hop");
        w.field("wall_ns", telemetry_->wall_ns());
        w.field("done_mask", static_cast<std::uint64_t>(mask));
        w.field("target", static_cast<std::uint64_t>(target));
        w.field("ap", static_cast<std::uint64_t>(ap));
        w.field("partition", k);
        w.field("span_partials", span_partials);
        w.field("matches", span_matches);
        w.field("compared", span_compared);
        w.field("probe_ns", static_cast<std::uint64_t>(probe_ns));
        w.end_object();
        telemetry_->emit(telemetry::EventKind::kSpan, target,
                         std::move(w).take());
      }

      const Selection& selection = query_.selection(target);
      for (std::size_t j = 0; j < part.size(); ++j) {
        const BatchPartial& p = frontier[part[j]];
        std::vector<const Tuple*>& matches = batch_outs_[j];
        stats_.record(target, ap,
                      static_cast<double>(batch_stats_[j].matches),
                      static_cast<double>(batch_stats_[j].tuples_compared));
        if (visibility != nullptr) {
          // Wall-mode sequence horizon: drop matches that are batch
          // members the partial's root must not see yet (they arrived
          // later in this batch). Uncharged — the comparisons themselves
          // were already performed and charged by the probe above.
          std::size_t kept = 0;
          for (const Tuple* m : matches) {
            if (visibility->visible_to(m, p.vis_order)) matches[kept++] = m;
          }
          matches.resize(kept);
        }
        if (!selection.empty()) {
          std::size_t kept = 0;
          for (const Tuple* m : matches) {
            if (selection.matches(*m, meter_)) matches[kept++] = m;
          }
          matches.resize(kept);
        }
        for (const Tuple* m : matches) {
          BatchPartial next;
          next.done = p.done | (std::uint32_t{1} << target);
          next.root = p.root;
          next.vis_order = p.vis_order;
          next.members = p.members;
          next.members[target] = m;
          next_level.push_back(std::move(next));
        }
      }
    }
    frontier.swap(next_level);
  }

  results_ += produced;
  if (telemetry_ != nullptr && produced > 0) results_counter_->add(produced);
  return produced;
}

}  // namespace amri::engine
