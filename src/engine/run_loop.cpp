#include "engine/run_loop.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <deque>
#include <optional>
#include <thread>

#include "engine/executor.hpp"
#include "engine/stem.hpp"
#include "engine/tuple_source.hpp"
#include "telemetry/json.hpp"

namespace amri::engine {

PipelineRuntime::PipelineRuntime(ExecutorOptions& options)
    : meter(&clock, options.costs), memory(options.memory_budget) {
  if (options.telemetry != nullptr) {
    options.telemetry->attach_clock(&clock);
  }
  if (options.stem.shards > 1) {
    pool = std::make_unique<ThreadPool>(options.fanout_threads);
    options.stem.pool = pool.get();
  }
  if (options.engine == EngineMode::kWall) {
    if (options.wall_probe_prefetch) options.stem.probe_prefetch = true;
    // Trace spans are emitted inline on the drain path, so sampling keeps
    // the drain on the driver thread (overlap off). A single-core host
    // gets no overlap either: the worker would just timeshare the driver's
    // core, paying context switches for zero concurrency.
    const bool cores_for_overlap =
        options.wall_overlap_force || std::thread::hardware_concurrency() > 1;
    if (options.wall_overlap && options.trace_sample == 0 &&
        cores_for_overlap) {
      overlap_pool = std::make_unique<ThreadPool>(1);
    }
  }
  if (options.telemetry != nullptr) {
    auto& reg = options.telemetry->metrics();
    profiler = options.telemetry->profiler();
    if (profiler != nullptr) {
      run_wall_gauge = &reg.gauge("profile.run.wall_us");
    }
    if (options.trace_sample > 0) {
      span_latency_hist = &reg.histogram(
          "span.latency_us",
          telemetry::Histogram::exponential_bounds(0.5, 2.0, 22));
    }
    if (pool != nullptr) {
      // The pool lives in the common layer and cannot depend on telemetry,
      // so its generic hooks are bound to registry instruments here.
      auto* wait_hist = &reg.histogram(
          "pool.queue_wait_us",
          telemetry::Histogram::exponential_bounds(0.1, 2.0, 20));
      auto* contention = &reg.counter("pool.contention");
      ThreadPool::Hooks hooks;
      hooks.on_dequeue = [wait_hist](double us) { wait_hist->observe(us); };
      hooks.on_contention = [contention] { contention->add(); };
      pool->set_hooks(std::move(hooks));
    }
  }
}

void PipelineRuntime::sync_queue_memory(std::size_t backlog) {
  const std::size_t now = backlog * kQueueBytesPerTuple;
  if (now > tracked_queue_bytes_) {
    memory.allocate(MemCategory::kQueue, now - tracked_queue_bytes_);
  } else if (now < tracked_queue_bytes_) {
    memory.release(MemCategory::kQueue, tracked_queue_bytes_ - now);
  }
  tracked_queue_bytes_ = now;
}

void PipelineRuntime::emit_oom_event(telemetry::Telemetry* tel) {
  if (tel == nullptr) return;
  telemetry::JsonWriter w;
  w.begin_object();
  w.field("total_bytes", static_cast<std::uint64_t>(memory.total()));
  w.field("budget_bytes", static_cast<std::uint64_t>(memory.budget()));
  w.begin_array("by_category");
  for (std::size_t c = 0; c < static_cast<std::size_t>(MemCategory::kCount);
       ++c) {
    const auto cat = static_cast<MemCategory>(c);
    telemetry::JsonWriter cw;
    cw.begin_object();
    cw.field("category", mem_category_name(cat));
    cw.field("bytes", static_cast<std::uint64_t>(memory.category(cat)));
    cw.end_object();
    w.value_raw(std::move(cw).take());
  }
  w.end_array();
  w.end_object();
  tel->emit(telemetry::EventKind::kOom, 0, std::move(w).take());
}

RunResult run_pipeline(const ExecutorOptions& options, PipelineRuntime& rt,
                       const std::vector<std::unique_ptr<StemOperator>>& stems,
                       RoutingSink& sink, TupleSource& source) {
  RunResult result;
  const TimeMicros warmup_end = options.warmup;
  const TimeMicros measure_end = options.warmup + options.duration;
  telemetry::Telemetry* const tel = options.telemetry;
  const auto run_wall_t0 = std::chrono::steady_clock::now();

  // Span sampling: every trace_sample-th drained arrival gets a span id
  // that downstream producers (eddy hops, sharded fan-out) pick up via
  // Telemetry::active_span().
  const std::size_t trace_sample = tel != nullptr ? options.trace_sample : 0;
  std::uint64_t drained_arrivals = 0;
  auto emit_span_stage = [&](std::uint64_t id, StreamId stream,
                             const char* stage, auto&& extra) {
    telemetry::JsonWriter w;
    w.begin_object();
    w.field("span", id);
    w.field("stage", stage);
    w.field("wall_ns", tel->wall_ns());
    extra(w);
    w.end_object();
    tel->emit(telemetry::EventKind::kSpan, stream, std::move(w).take());
  };
  auto no_extra = [](telemetry::JsonWriter&) {};

  std::deque<Tuple> pending;
  TupleBatch batch;                   // batched-drain arenas; capacity
  std::vector<const Tuple*> stored_run;  // persists across batches
  // A sampled arrival awaiting its batch's routing: its span was begun (and
  // the "arrival" stage emitted) at drain time, then suspended. Every
  // sampled arrival of a batch is tracked — the batched and tuple-at-a-time
  // paths trace the same Nth drained arrivals.
  struct PendingSpan {
    std::size_t index = 0;  ///< arrival's index within the batch
    std::uint64_t id = 0;
    std::chrono::steady_clock::time_point start{};
  };
  std::vector<PendingSpan> batch_spans;
  // Wall-mode arenas: batch-order stored pointers and the sequence horizon
  // handed to route_batch, plus the overlap double buffer the worker
  // thread drains into while the driver routes. The worker only ever runs
  // between its submit and the wait_idle at the end of the same iteration;
  // the driver does not touch `pending` or `prefetched` in that window, so
  // ownership alternates with pool-mutex synchronisation in between.
  std::vector<const Tuple*> wall_stored;
  BatchVisibility wall_visibility;
  struct PrefetchedBatch {
    TupleBatch batch;
    CostMeter meter;  ///< detached — counts the worker's WHERE comparisons
    /// Per-admitted-slot accept sets the sink recorded off-thread,
    /// adopted via RoutingSink::adopt_accepts when the batch is.
    std::vector<std::uint64_t> accepts;
    std::uint64_t filtered = 0;
    double drain_wall_us = 0.0;
  };
  PrefetchedBatch prefetched;
  bool have_prefetched = false;
  std::optional<Tuple> lookahead = source.next();
  bool warmup_done = (options.warmup == 0);
  std::uint64_t outputs_total = 0;
  std::uint64_t outputs_offset = 0;
  std::uint64_t arrivals_measured = 0;
  TimeMicros next_sample = warmup_end + options.sample_every;
  bool backpressure_armed = true;
  // Per-query output attribution (multi-query sinks only): cumulative
  // counts pulled from the sink, reported as deltas past the warm-up
  // offsets — the same convention as `outputs`.
  const bool per_query = sink.wants_per_query();
  std::vector<std::uint64_t> pq_scratch;
  std::vector<std::uint64_t> pq_offsets;

  if (tel != nullptr) {
    telemetry::JsonWriter w;
    w.begin_object();
    w.field("warmup_us", static_cast<std::uint64_t>(options.warmup));
    w.field("duration_us", static_cast<std::uint64_t>(options.duration));
    w.field("streams", static_cast<std::uint64_t>(stems.size()));
    w.field("memory_budget",
            static_cast<std::uint64_t>(options.memory_budget));
    w.end_object();
    tel->emit(telemetry::EventKind::kRunStart, 0, std::move(w).take());
  }

  auto take_sample = [&](TimeMicros at) {
    telemetry::ScopedPhase sample_scope(rt.profiler, telemetry::Phase::kSample);
    Sample s;
    s.t = at - warmup_end;
    s.outputs = outputs_total - outputs_offset;
    s.memory_bytes = rt.memory.total();
    s.backlog = pending.size();
    if (per_query) {
      pq_scratch.clear();
      sink.per_query_outputs(pq_scratch);
      if (pq_offsets.size() < pq_scratch.size()) {
        pq_offsets.resize(pq_scratch.size(), 0);
      }
      s.per_query_outputs.resize(pq_scratch.size());
      for (std::size_t q = 0; q < pq_scratch.size(); ++q) {
        s.per_query_outputs[q] = pq_scratch[q] - pq_offsets[q];
      }
    }
    if (tel != nullptr) {
      for (const auto& stem : stems) {
        StateSample ss;
        ss.stream = stem->stream();
        ss.stored_tuples = stem->stored_tuples();
        ss.probes = stem->probes_served();
        ss.migrations = stem->migrations();
        const index::IndexConfig* ic = stem->current_config();
        ss.index_config =
            ic != nullptr ? ic->to_string() : stem->physical_index().name();
        s.states.push_back(std::move(ss));
      }
      telemetry::JsonWriter w;
      w.begin_object();
      w.field("t", static_cast<std::int64_t>(s.t));
      w.field("outputs", s.outputs);
      w.field("memory_bytes", static_cast<std::uint64_t>(s.memory_bytes));
      w.field("backlog", static_cast<std::uint64_t>(s.backlog));
      if (per_query) {
        w.begin_array("per_query");
        for (const std::uint64_t q : s.per_query_outputs) w.value(q);
        w.end_array();
      }
      w.begin_array("states");
      for (const StateSample& ss : s.states) {
        telemetry::JsonWriter sw;
        sw.begin_object();
        sw.field("stream", static_cast<std::uint64_t>(ss.stream));
        sw.field("tuples", static_cast<std::uint64_t>(ss.stored_tuples));
        sw.field("probes", ss.probes);
        sw.field("migrations", ss.migrations);
        sw.field("ic", ss.index_config);
        sw.end_object();
        w.value_raw(std::move(sw).take());
      }
      w.end_array();
      w.end_object();
      tel->emit(telemetry::EventKind::kSample, 0, std::move(w).take());
    }
    result.samples.push_back(std::move(s));
  };

  auto check_backpressure = [&] {
    if (tel == nullptr || options.backpressure_threshold == 0) return;
    if (backpressure_armed &&
        pending.size() >= options.backpressure_threshold) {
      backpressure_armed = false;
      telemetry::JsonWriter w;
      w.begin_object();
      w.field("backlog", static_cast<std::uint64_t>(pending.size()));
      w.field("threshold",
              static_cast<std::uint64_t>(options.backpressure_threshold));
      w.end_object();
      tel->emit(telemetry::EventKind::kBackpressure, 0, std::move(w).take());
    } else if (!backpressure_armed &&
               pending.size() <= options.backpressure_threshold / 2) {
      backpressure_armed = true;
    }
  };

  auto finish_warmup = [&] {
    for (auto& stem : stems) stem->finish_warmup();
    outputs_offset = outputs_total;
    if (per_query) {
      pq_offsets.clear();
      sink.per_query_outputs(pq_offsets);
    }
    warmup_done = true;
    take_sample(warmup_end);  // measurement-start baseline (t = 0)
  };

  // Drain up to `want` backlog arrivals into `batch`: sink admission (WHERE
  // selection) is applied (filtered arrivals are counted and, if sampled,
  // traced), and every sampled surviving arrival records a PendingSpan so
  // its span can resume when the batch routes. Shared by the batched
  // virtual path and the wall path.
  auto drain_batch = [&](std::size_t want) {
    for (std::size_t i = 0; i < want; ++i) {
      const Tuple arrival = pending.front();
      pending.pop_front();
      const bool sampled =
          trace_sample != 0 && (++drained_arrivals % trace_sample) == 0;
      if (!sink.admit(arrival, rt.meter, nullptr)) {
        ++result.arrivals_filtered;
        if (sampled) {
          const std::uint64_t id = tel->begin_span();
          emit_span_stage(id, arrival.stream, "arrival",
                          [&](telemetry::JsonWriter& w) {
                            w.field("backlog", static_cast<std::uint64_t>(
                                                   pending.size()));
                          });
          emit_span_stage(id, arrival.stream, "filtered", no_extra);
          tel->end_span();
        }
        continue;
      }
      if (sampled) {
        PendingSpan ps;
        ps.index = batch.size();
        ps.id = tel->begin_span();
        ps.start = std::chrono::steady_clock::now();
        emit_span_stage(ps.id, arrival.stream, "arrival",
                        [&](telemetry::JsonWriter& w) {
                          w.field("backlog",
                                  static_cast<std::uint64_t>(pending.size()));
                        });
        tel->end_span();  // suspended until the owning batch routes
        batch_spans.push_back(ps);
      }
      batch.push(arrival);
    }
    rt.sync_queue_memory(pending.size());
  };

  while (rt.clock.now() < measure_end) {
    {
      telemetry::ScopedPhase drain_scope(rt.profiler, telemetry::Phase::kDrain);
      // Pull every arrival whose timestamp has passed into the backlog.
      while (lookahead.has_value() && lookahead->ts <= rt.clock.now()) {
        pending.push_back(*lookahead);
        lookahead = source.next();
      }
      rt.sync_queue_memory(pending.size());
      check_backpressure();
      if (rt.memory.exhausted()) break;

      if (pending.empty() && !have_prefetched) {
        if (!lookahead.has_value()) break;  // source exhausted, system idle
        if (lookahead->ts >= measure_end) {
          rt.clock.advance_to(measure_end);
          break;
        }
        rt.clock.advance_to(lookahead->ts);  // idle until the next arrival
        continue;
      }
    }

    // Wall-clock engine (post-warm-up only, so the warm-up boundary below
    // stays on the tuple-at-a-time path): adopt the worker-drained batch or
    // drain inline, insert the whole mixed-stream batch up front, route it
    // as ONE partition under the per-root sequence horizon, and overlap the
    // next drain with the routing.
    if (options.engine == EngineMode::kWall && warmup_done) {
      const std::size_t batch_cap =
          std::max<std::size_t>(options.batch_size, 1);
      batch.clear();
      batch_spans.clear();
      sink.begin_batch();
      if (have_prefetched) {
        // Adopt: merge the worker's WHERE-selection charges (counted on a
        // detached meter), filtered total and accept sets, and attribute
        // its drain wall time as off-thread overlap.
        std::swap(batch, prefetched.batch);
        have_prefetched = false;
        sink.adopt_accepts(prefetched.accepts);
        if (prefetched.meter.compares() > 0) {
          rt.meter.charge_compare(prefetched.meter.compares());
        }
        result.arrivals_filtered += prefetched.filtered;
        if (rt.profiler != nullptr && prefetched.drain_wall_us > 0.0) {
          rt.profiler->record_offthread(telemetry::Phase::kDrain,
                                        prefetched.drain_wall_us);
        }
        rt.sync_queue_memory(pending.size());
      } else {
        telemetry::ScopedPhase drain_scope(rt.profiler,
                                           telemetry::Phase::kDrain);
        drain_batch(std::min(batch_cap, pending.size()));
      }
      if (batch.empty()) continue;  // whole drain was filtered out

      {
        telemetry::ScopedPhase expiry_scope(rt.profiler,
                                            telemetry::Phase::kExpiry);
        for (auto& stem : stems) stem->expire(rt.clock.now());
      }

      // Insert the whole batch, run by run (per-stream arrival order is
      // preserved — each STeM holds one stream, and runs appear in batch
      // order), collecting batch-order stored pointers for the horizon.
      wall_stored.resize(batch.size());
      {
        telemetry::ScopedPhase insert_scope(rt.profiler,
                                            telemetry::Phase::kInsert);
        for (std::size_t a = 0; a < batch.size();) {
          const std::size_t b = batch.run_end(a);
          stored_run.clear();
          stems[batch.tuples[a].stream]->insert_batch(
              batch.tuples.data() + a, b - a, stored_run);
          std::copy(stored_run.begin(), stored_run.end(),
                    wall_stored.begin() + static_cast<std::ptrdiff_t>(a));
          a = b;
        }
      }
      wall_visibility.assign(wall_stored.data(), batch.size());

      const bool batch_has_span = !batch_spans.empty();
      if (batch_has_span) {
        tel->resume_span(batch_spans.front().id);
        for (const PendingSpan& ps : batch_spans) {
          emit_span_stage(ps.id, batch.tuples[ps.index].stream, "insert",
                          [&](telemetry::JsonWriter& w) {
                            w.field("batch", static_cast<std::uint64_t>(
                                                 batch.size()));
                          });
        }
      }

      // Kick the overlap worker: it pops and WHERE-filters the NEXT batch
      // from the backlog while the driver routes this one. The backlog
      // only ever holds due arrivals, so the worker needs no clock view;
      // its admission work goes to the detached local meter and accepts
      // buffer (the sink's admit must be thread-safe in that form). The
      // driver does not touch `pending` or `prefetched` again until the
      // wait_idle below.
      bool worker_outstanding = false;
      if (rt.overlap_pool != nullptr && !pending.empty()) {
        prefetched.batch.clear();
        prefetched.accepts.clear();
        prefetched.filtered = 0;
        prefetched.meter.reset_counts();
        prefetched.drain_wall_us = 0.0;
        const std::size_t want = std::min(batch_cap, pending.size());
        rt.overlap_pool->submit([&sink, &pending, &prefetched, want] {
          const auto t0 = std::chrono::steady_clock::now();
          for (std::size_t i = 0; i < want; ++i) {
            const Tuple arrival = pending.front();
            pending.pop_front();
            if (!sink.admit(arrival, prefetched.meter, &prefetched.accepts)) {
              ++prefetched.filtered;
              continue;
            }
            prefetched.batch.push(arrival);
          }
          prefetched.drain_wall_us =
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
        });
        worker_outstanding = true;
      }

      std::uint64_t produced = 0;
      {
        telemetry::ScopedPhase route_scope(rt.profiler,
                                           telemetry::Phase::kRoute);
        produced = sink.route_batch(
            wall_stored.data(), batch.done.data(), 0, batch.size(),
            batch_has_span ? batch_spans.front().index
                           : RoutingSink::kNoSpanRoot,
            &wall_visibility);
      }
      outputs_total += produced;
      if (batch_has_span) {
        for (const PendingSpan& ps : batch_spans) {
          const auto latency_ns =
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - ps.start)
                  .count();
          emit_span_stage(ps.id, batch.tuples[ps.index].stream, "done",
                          [&](telemetry::JsonWriter& w) {
                            w.field("latency_ns",
                                    static_cast<std::uint64_t>(latency_ns));
                            w.field("run_results", produced);
                            w.field("batched", true);
                          });
          rt.span_latency_hist->observe(static_cast<double>(latency_ns) /
                                        1000.0);
        }
        tel->end_span();
      }
      arrivals_measured += batch.size();

      if (worker_outstanding) {
        telemetry::ScopedPhase wait_scope(rt.profiler,
                                          telemetry::Phase::kOverlapWait);
        rt.overlap_pool->wait_idle();
        have_prefetched = true;
      }

      if (rt.memory.exhausted()) break;
      while (rt.clock.now() >= next_sample && next_sample <= measure_end) {
        take_sample(next_sample);
        next_sample += options.sample_every;
      }
      continue;
    }

    // Batched drain (post-warm-up only, so the warm-up boundary below is
    // always hit on the tuple-at-a-time path): pull up to batch_size ready
    // arrivals, expire every window once, then batch-insert and
    // batch-route each consecutive same-stream run.
    if (options.batch_size > 1 && warmup_done) {
      batch.clear();
      batch_spans.clear();
      sink.begin_batch();
      {
        telemetry::ScopedPhase drain_scope(rt.profiler,
                                           telemetry::Phase::kDrain);
        drain_batch(std::min(options.batch_size, pending.size()));
      }
      if (batch.empty()) continue;  // whole drain was filtered out

      {
        telemetry::ScopedPhase expiry_scope(rt.profiler,
                                            telemetry::Phase::kExpiry);
        for (auto& stem : stems) stem->expire(rt.clock.now());
      }
      {
        telemetry::ScopedPhase route_scope(rt.profiler,
                                           telemetry::Phase::kRoute);
        // Spans are listed in batch-index order; walk them run by run.
        std::size_t span_cursor = 0;
        for (std::size_t a = 0; a < batch.size();) {
          const std::size_t b = batch.run_end(a);
          const StreamId s = batch.tuples[a].stream;
          stored_run.clear();
          const std::size_t span_lo = span_cursor;
          while (span_cursor < batch_spans.size() &&
                 batch_spans[span_cursor].index < b) {
            ++span_cursor;
          }
          const bool run_has_span = span_lo < span_cursor;
          // The eddy attaches hop events to one active span per call; the
          // run's first sampled arrival carries it. Every sampled arrival
          // still gets its own insert/done stages and latency observation.
          if (run_has_span) tel->resume_span(batch_spans[span_lo].id);
          {
            telemetry::ScopedPhase insert_scope(rt.profiler,
                                                telemetry::Phase::kInsert);
            stems[s]->insert_batch(batch.tuples.data() + a, b - a,
                                   stored_run);
          }
          for (std::size_t k = span_lo; k < span_cursor; ++k) {
            emit_span_stage(batch_spans[k].id, s, "insert",
                            [&](telemetry::JsonWriter& w) {
                              w.field("batch",
                                      static_cast<std::uint64_t>(b - a));
                            });
          }
          const std::uint64_t produced = sink.route_batch(
              stored_run.data(), batch.done.data() + a, a, b - a,
              run_has_span ? batch_spans[span_lo].index - a
                           : RoutingSink::kNoSpanRoot,
              nullptr);
          outputs_total += produced;
          for (std::size_t k = span_lo; k < span_cursor; ++k) {
            const auto latency =
                std::chrono::steady_clock::now() - batch_spans[k].start;
            const auto latency_ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(latency)
                    .count();
            emit_span_stage(batch_spans[k].id, s, "done",
                            [&](telemetry::JsonWriter& w) {
                              w.field("latency_ns", static_cast<std::uint64_t>(
                                                        latency_ns));
                              w.field("run_results", produced);
                              w.field("batched", true);
                            });
            rt.span_latency_hist->observe(static_cast<double>(latency_ns) /
                                          1000.0);
          }
          if (run_has_span) tel->end_span();
          a = b;
        }
      }
      arrivals_measured += batch.size();

      if (rt.memory.exhausted()) break;
      while (rt.clock.now() >= next_sample && next_sample <= measure_end) {
        take_sample(next_sample);
        next_sample += options.sample_every;
      }
      continue;
    }

    const Tuple arrival = pending.front();
    pending.pop_front();
    rt.sync_queue_memory(pending.size());

    // Warm-up boundary: apply trained configurations exactly once.
    if (!warmup_done && rt.clock.now() >= warmup_end) finish_warmup();

    const bool sampled =
        trace_sample != 0 && (++drained_arrivals % trace_sample) == 0;
    std::chrono::steady_clock::time_point span_start{};
    std::uint64_t span_id = 0;
    if (sampled) {
      span_start = std::chrono::steady_clock::now();
      span_id = tel->begin_span();
      emit_span_stage(span_id, arrival.stream, "arrival",
                      [&](telemetry::JsonWriter& w) {
                        w.field("backlog",
                                static_cast<std::uint64_t>(pending.size()));
                      });
    }

    // WHERE-clause selection (the sink's admission): filtered tuples are
    // neither stored nor routed (the paper's S of SPJ happens before the
    // join network).
    sink.begin_batch();
    if (!sink.admit(arrival, rt.meter, nullptr)) {
      if (warmup_done) ++result.arrivals_filtered;
      if (sampled) {
        emit_span_stage(span_id, arrival.stream, "filtered", no_extra);
        tel->end_span();
      }
      continue;
    }

    // Expire all windows to the current time, store, then route.
    {
      telemetry::ScopedPhase expiry_scope(rt.profiler,
                                          telemetry::Phase::kExpiry);
      for (auto& stem : stems) stem->expire(rt.clock.now());
    }
    const Tuple* stored;
    {
      telemetry::ScopedPhase insert_scope(rt.profiler,
                                          telemetry::Phase::kInsert);
      stored = stems[arrival.stream]->insert(arrival);
    }
    if (sampled) {
      emit_span_stage(span_id, arrival.stream, "insert", no_extra);
    }
    std::uint64_t produced = 0;
    {
      telemetry::ScopedPhase route_scope(rt.profiler,
                                         telemetry::Phase::kRoute);
      produced = sink.route_one(stored, warmup_done);
    }
    outputs_total += produced;
    if (sampled) {
      const auto latency_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - span_start)
              .count();
      emit_span_stage(span_id, arrival.stream, "done",
                      [&](telemetry::JsonWriter& w) {
                        w.field("latency_ns",
                                static_cast<std::uint64_t>(latency_ns));
                        w.field("run_results", produced);
                        w.field("batched", false);
                      });
      rt.span_latency_hist->observe(static_cast<double>(latency_ns) / 1000.0);
      tel->end_span();
    }
    if (warmup_done) ++arrivals_measured;

    if (rt.memory.exhausted()) break;

    while (warmup_done && rt.clock.now() >= next_sample &&
           next_sample <= measure_end) {
      take_sample(next_sample);
      next_sample += options.sample_every;
    }
  }

  if (!warmup_done) finish_warmup();

  const TimeMicros end_now = std::min(rt.clock.now(), measure_end);
  if (rt.memory.exhausted()) {
    result.died_at = end_now - warmup_end;
    rt.emit_oom_event(tel);
  } else {
    result.completed = rt.clock.now() >= measure_end || !lookahead.has_value();
  }
  take_sample(end_now >= warmup_end ? end_now : warmup_end);

  result.outputs = outputs_total - outputs_offset;
  result.arrivals = arrivals_measured;
  result.arrivals_dropped = pending.size();
  if (have_prefetched) {
    // Wall overlap: the worker had already popped these arrivals off the
    // backlog when the run ended; they were never routed (their selection
    // charges were never merged either), so they count as dropped.
    result.arrivals_dropped += prefetched.batch.size() + prefetched.filtered;
  }
  result.peak_memory = rt.memory.peak();
  result.charged_us = rt.meter.charged_us();
  result.routing_decisions = rt.meter.routes();
  sink.take_rows(result.rows);
  for (const auto& stem : stems) {
    StateSummary s;
    s.stream = stem->stream();
    s.stored_tuples = stem->stored_tuples();
    s.probes = stem->probes_served();
    s.migrations = stem->migrations();
    s.suppressed = stem->suppressed();
    s.migration_pause_us = stem->migration_pause_us();
    s.state_bytes = stem->state_bytes();
    s.shards = stem->shard_count();
    s.shard_imbalance = stem->shard_imbalance();
    s.final_index = stem->physical_index().name();
    result.states.push_back(std::move(s));
  }
  if (tel != nullptr) {
    telemetry::JsonWriter w;
    w.begin_object();
    w.field("outputs", result.outputs);
    w.field("arrivals", result.arrivals);
    w.field("dropped", result.arrivals_dropped);
    w.field("completed", result.completed);
    w.field("died", result.died_at.has_value());
    w.field("peak_memory", static_cast<std::uint64_t>(result.peak_memory));
    w.field("charged_us", result.charged_us);
    w.end_object();
    tel->emit(telemetry::EventKind::kRunEnd, 0, std::move(w).take());
  }
  if (rt.run_wall_gauge != nullptr) {
    rt.run_wall_gauge->set(std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - run_wall_t0)
                               .count());
  }
  return result;
}

}  // namespace amri::engine
