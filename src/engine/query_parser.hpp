// Parser for the paper's SPJ query template (§II, Figure 2):
//
//   SELECT <agg-func-list | column-list | *>
//   FROM   <stream-name> <alias> [, ...]
//   WHERE  <pred> [AND <pred>]...
//   [GROUP BY <alias>.<attr>]
//   [WINDOW <seconds>]
//
// Predicates are either equi-joins between two stream attributes
// (A.a1 = B.a2) or constant filters with any comparison operator
// (A.a1 >= 10). SELECT accepts '*', a list of alias.attr columns, or a
// single aggregate COUNT(*) / SUM|MIN|MAX|AVG(alias.attr).
//
// Keywords are case-insensitive; clauses may be separated by newlines or
// spaces. Unknown streams/attributes and malformed clauses throw
// std::invalid_argument with a message naming the offending token.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "engine/aggregate.hpp"
#include "engine/query.hpp"

namespace amri::engine {

struct ParsedQuery {
  QuerySpec query;
  /// query StreamId -> index into the caller's stream catalog (the query
  /// spans exactly the FROM-clause streams, in FROM order).
  std::vector<StreamId> catalog_ids;
  /// Present when the SELECT clause is an aggregate.
  std::optional<AggFunc> agg;
  std::optional<OutputColumn> agg_column;  ///< absent for COUNT(*)
  std::optional<OutputColumn> group_by;
};

/// Parse `text` against the catalog of available stream schemas (StreamId =
/// index into `streams`). `default_window` applies when no WINDOW clause is
/// given (the template's default-window-length).
ParsedQuery parse_query(std::string_view text,
                        const std::vector<Schema>& streams,
                        TimeMicros default_window = seconds_to_micros(60));

}  // namespace amri::engine
