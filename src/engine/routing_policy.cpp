#include "engine/routing_policy.hpp"

#include <cassert>
#include <limits>

namespace amri::engine {

namespace {

class FixedPolicy final : public RoutingPolicy {
 public:
  std::size_t choose(const RoutingContext& ctx,
                     const RoutingStatistics&) override {
    assert(!ctx.candidates.empty());
    std::size_t best = 0;
    for (std::size_t i = 1; i < ctx.candidates.size(); ++i) {
      if (ctx.candidates[i].state < ctx.candidates[best].state) best = i;
    }
    return best;
  }
  std::string name() const override { return "fixed"; }
};

class CostBasedPolicy final : public RoutingPolicy {
 public:
  CostBasedPolicy(double exploration, double fanout_weight, std::uint64_t seed)
      : exploration_(exploration), fanout_weight_(fanout_weight), rng_(seed) {}

  std::size_t choose(const RoutingContext& ctx,
                     const RoutingStatistics& stats) override {
    assert(!ctx.candidates.empty());
    if (ctx.candidates.size() > 1 && rng_.chance(exploration_)) {
      return rng_.below(ctx.candidates.size());
    }
    std::size_t best = 0;
    double best_score = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < ctx.candidates.size(); ++i) {
      const auto& c = ctx.candidates[i];
      const RouteStats* rs = stats.find(c.state, c.pattern);
      double score;
      if (rs == nullptr) {
        // Unknown territory: prefer exploring patterns that bind more
        // attributes (likely cheaper), optimistic default.
        score = 1.0 / (1.0 + popcount(c.pattern));
      } else {
        score = rs->compares.value_or(1.0) +
                fanout_weight_ * rs->matches.value_or(1.0);
      }
      if (score < best_score) {
        best_score = score;
        best = i;
      }
    }
    return best;
  }
  std::string name() const override { return "cost_based"; }

 private:
  double exploration_;
  double fanout_weight_;
  Rng rng_;
};

class LotteryPolicy final : public RoutingPolicy {
 public:
  LotteryPolicy(double exploration, std::uint64_t seed)
      : exploration_(exploration), rng_(seed) {}

  std::size_t choose(const RoutingContext& ctx,
                     const RoutingStatistics& stats) override {
    assert(!ctx.candidates.empty());
    if (ctx.candidates.size() > 1 && rng_.chance(exploration_)) {
      return rng_.below(ctx.candidates.size());
    }
    // Tickets inversely proportional to observed fan-out (low selectivity
    // first, the classic eddy lottery).
    std::vector<double> tickets(ctx.candidates.size());
    double total = 0.0;
    for (std::size_t i = 0; i < ctx.candidates.size(); ++i) {
      const auto& c = ctx.candidates[i];
      const RouteStats* rs = stats.find(c.state, c.pattern);
      const double fanout = rs == nullptr ? 1.0 : rs->matches.value_or(1.0);
      tickets[i] = 1.0 / (0.1 + fanout);
      total += tickets[i];
    }
    double draw = rng_.uniform01() * total;
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      draw -= tickets[i];
      if (draw <= 0.0) return i;
    }
    return tickets.size() - 1;
  }
  std::string name() const override { return "lottery"; }

 private:
  double exploration_;
  Rng rng_;
};

}  // namespace

std::unique_ptr<RoutingPolicy> make_routing_policy(const RoutingOptions& opts) {
  switch (opts.kind) {
    case RoutingPolicyKind::kFixed:
      return std::make_unique<FixedPolicy>();
    case RoutingPolicyKind::kCostBased:
      return std::make_unique<CostBasedPolicy>(
          opts.exploration_rate, opts.fanout_weight, opts.seed);
    case RoutingPolicyKind::kLottery:
      return std::make_unique<LotteryPolicy>(opts.exploration_rate, opts.seed);
  }
  return nullptr;
}

}  // namespace amri::engine
