#include "engine/multi_query.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

namespace amri::engine {

MultiQueryExecutor::MultiQueryExecutor(std::vector<QuerySpec> queries,
                                       ExecutorOptions options)
    : queries_(std::move(queries)),
      options_(options),
      meter_(&clock_, options.costs),
      memory_(options.memory_budget) {
  assert(!queries_.empty());
  const std::size_t k = queries_[0].num_streams();
  const TimeMicros window = queries_[0].window();
  for (const QuerySpec& q : queries_) {
    assert(q.num_streams() == k);
    assert(q.window() == window);
    (void)q;
  }

  // Union JAS per stream (sorted tuple-attribute ids for determinism).
  shared_layouts_.resize(k);
  for (StreamId s = 0; s < k; ++s) {
    std::vector<AttrId> attrs;
    for (const QuerySpec& q : queries_) {
      for (const AttrId a : q.layout(s).jas.attrs()) {
        if (std::find(attrs.begin(), attrs.end(), a) == attrs.end()) {
          attrs.push_back(a);
        }
      }
    }
    std::sort(attrs.begin(), attrs.end());
    shared_layouts_[s].jas = index::JoinAttributeSet(std::move(attrs));
    // Shared layouts carry no peers: peers are query-specific and only
    // used by the per-query eddies.
  }

  // Shared STeMs sized for the union JAS.
  const index::CostModel model(options_.model_params);
  std::vector<StemOperator*> stem_ptrs;
  for (StreamId s = 0; s < k; ++s) {
    StemOptions stem_opts = options_.stem;
    if (stem_opts.initial_config.num_attrs() !=
        shared_layouts_[s].jas.size()) {
      // Re-spread the configured bit budget over the union JAS.
      const int budget = stem_opts.initial_config.total_bits();
      std::vector<std::uint8_t> bits(shared_layouts_[s].jas.size(), 0);
      for (int b = 0; b < budget; ++b) {
        ++bits[static_cast<std::size_t>(b) % bits.size()];
      }
      stem_opts.initial_config = index::IndexConfig(bits);
    }
    stems_.push_back(std::make_unique<StemOperator>(
        s, shared_layouts_[s], window, stem_opts, model, &meter_, &memory_));
    stem_ptrs.push_back(stems_.back().get());
  }

  // One eddy per query, probing the shared stems through position maps.
  for (const QuerySpec& q : queries_) {
    auto eddy = std::make_unique<EddyRouter>(q, stem_ptrs, options_.eddy,
                                             &meter_);
    std::vector<std::vector<std::uint8_t>> maps(k);
    for (StreamId s = 0; s < k; ++s) {
      const auto& query_jas = q.layout(s).jas;
      for (std::size_t p = 0; p < query_jas.size(); ++p) {
        const std::size_t shared_pos =
            shared_layouts_[s].jas.position_of(query_jas.tuple_attr(p));
        assert(shared_pos < shared_layouts_[s].jas.size());
        maps[s].push_back(static_cast<std::uint8_t>(shared_pos));
      }
    }
    eddy->set_position_maps(std::move(maps));
    eddies_.push_back(std::move(eddy));
  }
}

void MultiQueryExecutor::sync_queue_memory(std::size_t backlog) {
  const std::size_t now = backlog * (sizeof(Tuple) + 16);
  if (now > tracked_queue_bytes_) {
    memory_.allocate(MemCategory::kQueue, now - tracked_queue_bytes_);
  } else if (now < tracked_queue_bytes_) {
    memory_.release(MemCategory::kQueue, tracked_queue_bytes_ - now);
  }
  tracked_queue_bytes_ = now;
}

MultiRunResult MultiQueryExecutor::run(TupleSource& source) {
  MultiRunResult result;
  result.per_query_outputs.assign(queries_.size(), 0);
  RunResult& combined = result.combined;

  const TimeMicros warmup_end = options_.warmup;
  const TimeMicros measure_end = options_.warmup + options_.duration;
  std::deque<Tuple> pending;
  std::optional<Tuple> lookahead = source.next();
  bool warmup_done = (options_.warmup == 0);
  std::uint64_t outputs_total = 0;
  std::uint64_t outputs_offset = 0;
  std::vector<std::uint64_t> per_query_offset(queries_.size(), 0);
  TimeMicros next_sample = warmup_end + options_.sample_every;

  auto take_sample = [&](TimeMicros at) {
    Sample s;
    s.t = at - warmup_end;
    s.outputs = outputs_total - outputs_offset;
    s.memory_bytes = memory_.total();
    s.backlog = pending.size();
    combined.samples.push_back(s);
  };

  auto finish_warmup = [&] {
    for (auto& stem : stems_) stem->finish_warmup();
    outputs_offset = outputs_total;
    per_query_offset = result.per_query_outputs;
    warmup_done = true;
    take_sample(warmup_end);
  };

  while (clock_.now() < measure_end) {
    while (lookahead.has_value() && lookahead->ts <= clock_.now()) {
      pending.push_back(*lookahead);
      lookahead = source.next();
    }
    sync_queue_memory(pending.size());
    if (memory_.exhausted()) break;

    if (pending.empty()) {
      if (!lookahead.has_value()) break;
      if (lookahead->ts >= measure_end) {
        clock_.advance_to(measure_end);
        break;
      }
      clock_.advance_to(lookahead->ts);
      continue;
    }

    const Tuple arrival = pending.front();
    pending.pop_front();
    sync_queue_memory(pending.size());
    if (!warmup_done && clock_.now() >= warmup_end) finish_warmup();

    // Selections are per query: a tuple enters the shared state if ANY
    // query accepts it; each query only routes tuples it accepts.
    bool accepted_by_any = false;
    SmallVector<std::uint8_t, 8> accepts;
    for (std::size_t qi = 0; qi < queries_.size(); ++qi) {
      const bool ok =
          queries_[qi].selection(arrival.stream).matches(arrival, &meter_);
      accepts.push_back(ok ? 1 : 0);
      accepted_by_any = accepted_by_any || ok;
    }
    if (!accepted_by_any) {
      if (warmup_done) ++combined.arrivals_filtered;
      continue;
    }

    for (auto& stem : stems_) stem->expire(clock_.now());
    const Tuple* stored = stems_[arrival.stream]->insert(arrival);
    for (std::size_t qi = 0; qi < queries_.size(); ++qi) {
      if (accepts[qi] == 0) continue;
      const std::uint64_t produced = eddies_[qi]->route(stored);
      outputs_total += produced;
      result.per_query_outputs[qi] += produced;
    }
    if (warmup_done) ++combined.arrivals;
    if (memory_.exhausted()) break;

    while (warmup_done && clock_.now() >= next_sample &&
           next_sample <= measure_end) {
      take_sample(next_sample);
      next_sample += options_.sample_every;
    }
  }

  if (!warmup_done) finish_warmup();
  const TimeMicros end_now = std::min(clock_.now(), measure_end);
  if (memory_.exhausted()) {
    combined.died_at = end_now - warmup_end;
  } else {
    combined.completed = clock_.now() >= measure_end || !lookahead.has_value();
  }
  take_sample(end_now >= warmup_end ? end_now : warmup_end);

  combined.outputs = outputs_total - outputs_offset;
  for (std::size_t qi = 0; qi < queries_.size(); ++qi) {
    result.per_query_outputs[qi] -= per_query_offset[qi];
  }
  combined.arrivals_dropped = pending.size();
  combined.peak_memory = memory_.peak();
  combined.charged_us = meter_.charged_us();
  combined.routing_decisions = meter_.routes();
  for (const auto& stem : stems_) {
    StateSummary s;
    s.stream = stem->stream();
    s.stored_tuples = stem->stored_tuples();
    s.probes = stem->probes_served();
    s.migrations = stem->migrations();
    s.suppressed = stem->suppressed();
    s.final_index = stem->physical_index().name();
    combined.states.push_back(std::move(s));
  }
  return result;
}

}  // namespace amri::engine
