#include "engine/multi_query.hpp"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>
#include <vector>

#include "engine/run_loop.hpp"

namespace amri::engine {

namespace {

// The multi-query routing sink. Admission evaluates EVERY query's WHERE
// selection in query order (each one charged — every query logically
// inspects every arrival on its streams) and records the accept set as a
// per-slot bitmask; an arrival enters the shared state if any query
// accepts it. Routing walks the queries in order: the tuple path routes
// the last-admitted arrival through each accepting query's eddy, and the
// batch paths carve each query's accepted sub-array out of the admitted
// slots and route it as one call. Before a query routes, its index is
// installed as the active attribution target on every shared STeM so probe
// statistics land in that query's assessor cells.
class MultiQuerySink final : public RoutingSink {
 public:
  MultiQuerySink(const std::vector<QuerySpec>& queries,
                 std::vector<std::unique_ptr<EddyRouter>>& eddies,
                 const std::vector<std::unique_ptr<StemOperator>>& stems,
                 const ExecutorOptions& options)
      : queries_(queries), eddies_(eddies), stems_(stems), options_(options) {
    per_query_.assign(queries_.size(), 0);
  }

  bool wants_per_query() const override { return true; }

  bool admit(const Tuple& arrival, CostMeter& meter,
             std::vector<std::uint64_t>* detached_accepts) override {
    std::uint64_t mask = 0;
    for (std::size_t qi = 0; qi < queries_.size(); ++qi) {
      if (queries_[qi].selection(arrival.stream).matches(arrival, &meter)) {
        mask |= std::uint64_t{1} << qi;
      }
    }
    if (mask == 0) return false;
    if (detached_accepts != nullptr) {
      // Wall overlap worker: const query state only; the accept set is
      // adopted with its batch.
      detached_accepts->push_back(mask);
    } else {
      accepts_.push_back(mask);
      last_accepts_ = mask;
    }
    return true;
  }

  void begin_batch() override { accepts_.clear(); }

  void adopt_accepts(std::vector<std::uint64_t>& accepts) override {
    accepts_.swap(accepts);
  }

  std::uint64_t route_one(const Tuple* stored, bool measured) override {
    std::uint64_t total = 0;
    for (std::size_t qi = 0; qi < queries_.size(); ++qi) {
      if ((last_accepts_ >> qi & 1) == 0) continue;
      set_active_query(qi);
      const bool want_rows = options_.collect_rows && measured &&
                             rows_.size() < options_.max_collected_rows;
      std::uint64_t produced;
      if (want_rows || options_.on_result) {
        result_sink_.clear();
        produced = eddies_[qi]->route(stored, &result_sink_);
        deliver(qi, want_rows);
      } else {
        produced = eddies_[qi]->route(stored);
      }
      total += produced;
      per_query_[qi] += produced;
    }
    return total;
  }

  std::uint64_t route_batch(const Tuple* const* stored,
                            const std::uint32_t* done, std::size_t first,
                            std::size_t n, std::size_t span_root,
                            const BatchVisibility* visibility) override {
    std::uint64_t total = 0;
    for (std::size_t qi = 0; qi < queries_.size(); ++qi) {
      // Carve query qi's sub-array out of the admitted slots. With a wall
      // horizon attached, each sub-array root keeps its true full-batch
      // order (BatchVisibility::order_of via the eddy), so visibility
      // filtering is unaffected by the carving; matches held for other
      // queries only are rejected by qi's selection re-verification.
      sub_stored_.clear();
      sub_done_.clear();
      std::size_t sub_root = EddyRouter::kNoSpanRoot;
      for (std::size_t j = 0; j < n; ++j) {
        if ((accepts_[first + j] >> qi & 1) == 0) continue;
        if (j == span_root) sub_root = sub_stored_.size();
        sub_stored_.push_back(stored[j]);
        sub_done_.push_back(done[j]);
      }
      if (sub_stored_.empty()) continue;
      set_active_query(qi);
      const bool want_rows =
          options_.collect_rows && rows_.size() < options_.max_collected_rows;
      const bool want_sink = want_rows || options_.on_result != nullptr;
      result_sink_.clear();
      const std::uint64_t produced = eddies_[qi]->route_batch(
          sub_stored_.data(), sub_done_.data(), sub_stored_.size(),
          want_sink ? &result_sink_ : nullptr, sub_root, visibility);
      if (want_sink) deliver(qi, want_rows);
      total += produced;
      per_query_[qi] += produced;
    }
    return total;
  }

  void per_query_outputs(std::vector<std::uint64_t>& out) const override {
    out.insert(out.end(), per_query_.begin(), per_query_.end());
  }

  void take_rows(
      std::vector<SmallVector<Value, kInlineAttrs>>& rows) override {
    rows = std::move(rows_);
  }

 private:
  void set_active_query(std::size_t qi) {
    for (const auto& stem : stems_) stem->set_active_query(qi);
  }

  void deliver(std::size_t qi, bool want_rows) {
    for (const JoinResult& jr : result_sink_) {
      if (options_.on_result) options_.on_result(jr);
      if (want_rows && rows_.size() < options_.max_collected_rows) {
        rows_.push_back(queries_[qi].projection().apply(jr.members));
      }
    }
  }

  const std::vector<QuerySpec>& queries_;
  std::vector<std::unique_ptr<EddyRouter>>& eddies_;
  const std::vector<std::unique_ptr<StemOperator>>& stems_;
  const ExecutorOptions& options_;
  /// Accept bitmask per admitted slot of the live batch (bit qi = query qi
  /// accepted); parallel to the core's TupleBatch.
  std::vector<std::uint64_t> accepts_;
  std::uint64_t last_accepts_ = 0;  ///< tuple path: the one admitted arrival
  std::vector<std::uint64_t> per_query_;  ///< cumulative outputs by query
  // Reusable per-call arenas (capacity persists across batches).
  std::vector<const Tuple*> sub_stored_;
  std::vector<std::uint32_t> sub_done_;
  std::vector<JoinResult> result_sink_;
  std::vector<SmallVector<Value, kInlineAttrs>> rows_;
};

}  // namespace

MultiQueryExecutor::MultiQueryExecutor(std::vector<QuerySpec> queries,
                                       ExecutorOptions options)
    : queries_(std::move(queries)),
      options_(std::move(options)),
      rt_(options_) {
  assert(!queries_.empty());
  assert(queries_.size() <= 64 && "accept sets are 64-bit masks");
  const std::size_t k = queries_[0].num_streams();
  const TimeMicros window = queries_[0].window();
  for (const QuerySpec& q : queries_) {
    assert(q.num_streams() == k);
    assert(q.window() == window);
    (void)q;
  }

  // Union JAS per stream (sorted tuple-attribute ids for determinism).
  shared_layouts_.resize(k);
  for (StreamId s = 0; s < k; ++s) {
    std::vector<AttrId> attrs;
    for (const QuerySpec& q : queries_) {
      for (const AttrId a : q.layout(s).jas.attrs()) {
        if (std::find(attrs.begin(), attrs.end(), a) == attrs.end()) {
          attrs.push_back(a);
        }
      }
    }
    std::sort(attrs.begin(), attrs.end());
    shared_layouts_[s].jas = index::JoinAttributeSet(std::move(attrs));
    // Shared layouts carry no peers: peers are query-specific and only
    // used by the per-query eddies.
  }

  // Shared STeMs sized for the union JAS, with one assessor set per query
  // so the shared tuner can attribute and merge per-query demand.
  options_.stem.queries = queries_.size();
  const index::CostModel model(options_.model_params);
  std::vector<StemOperator*> stem_ptrs;
  for (StreamId s = 0; s < k; ++s) {
    StemOptions stem_opts = options_.stem;
    if (stem_opts.initial_config.num_attrs() !=
        shared_layouts_[s].jas.size()) {
      // Re-spread the configured bit budget over the union JAS.
      const int budget = stem_opts.initial_config.total_bits();
      std::vector<std::uint8_t> bits(shared_layouts_[s].jas.size(), 0);
      for (int b = 0; b < budget; ++b) {
        ++bits[static_cast<std::size_t>(b) % bits.size()];
      }
      stem_opts.initial_config = index::IndexConfig(bits);
    }
    stems_.push_back(std::make_unique<StemOperator>(
        s, shared_layouts_[s], window, stem_opts, model, &rt_.meter,
        &rt_.memory, options_.telemetry));
    stem_ptrs.push_back(stems_.back().get());
  }

  // One eddy per query, probing the shared stems through position maps,
  // with per-query labeled routing metrics.
  for (std::size_t qi = 0; qi < queries_.size(); ++qi) {
    const QuerySpec& q = queries_[qi];
    EddyOptions eddy_opts = options_.eddy;
    eddy_opts.metrics_prefix = "q" + std::to_string(qi) + ".eddy";
    auto eddy = std::make_unique<EddyRouter>(q, stem_ptrs, eddy_opts,
                                             &rt_.meter, options_.telemetry);
    std::vector<std::vector<std::uint8_t>> maps(k);
    for (StreamId s = 0; s < k; ++s) {
      const auto& query_jas = q.layout(s).jas;
      for (std::size_t p = 0; p < query_jas.size(); ++p) {
        const std::size_t shared_pos =
            shared_layouts_[s].jas.position_of(query_jas.tuple_attr(p));
        assert(shared_pos < shared_layouts_[s].jas.size());
        maps[s].push_back(static_cast<std::uint8_t>(shared_pos));
      }
    }
    eddy->set_position_maps(std::move(maps));
    eddies_.push_back(std::move(eddy));
  }
}

MultiRunResult MultiQueryExecutor::run(TupleSource& source) {
  MultiQuerySink sink(queries_, eddies_, stems_, options_);
  MultiRunResult result;
  result.combined = run_pipeline(options_, rt_, stems_, sink, source);
  // The core always takes a final sample; its per-query deltas are the
  // measured-phase attribution.
  if (!result.combined.samples.empty() &&
      result.combined.samples.back().per_query_outputs.size() ==
          queries_.size()) {
    result.per_query_outputs = result.combined.samples.back().per_query_outputs;
  } else {
    result.per_query_outputs.assign(queries_.size(), 0);
  }
  return result;
}

}  // namespace amri::engine
