// The eddy router (paper §I, after Avnur & Hellerstein): the central
// operator that decides, per (partial) tuple, which STeM to visit next
// based on up-to-date statistics. The route a tuple takes determines the
// access pattern each state's probe carries — the coupling AMRI exploits.
//
// Join semantics: a complete result is emitted when the partial result has
// visited every stream's state. Because a probe binds *every* join
// attribute whose peer stream is already in the partial, all predicates
// among the joined streams are verified incrementally; each result is
// produced exactly once, when its latest-arriving member routes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cost_meter.hpp"
#include "common/small_vector.hpp"
#include "common/tuple_batch.hpp"
#include "engine/query.hpp"
#include "engine/routing_policy.hpp"
#include "engine/stem.hpp"

namespace amri::engine {

struct EddyOptions {
  RoutingOptions routing{};
  /// Safety valve against join explosions: partial results processed per
  /// arrival (complete results still counted, processing truncated).
  std::size_t max_partials_per_arrival = 1u << 20;
  /// A routing decision for a given done-mask is reused for the next
  /// `decision_reuse - 1` partials with the same mask, amortising the
  /// per-decision cost. (Renamed from `batch_size` so the executor-level
  /// `--batch-size` — how many arrivals move through the pipeline together
  /// — is unambiguous; this knob only caches the policy choice.)
  std::size_t decision_reuse = 1;
  /// Registry prefix for this router's counters ("<prefix>.decisions",
  /// ".results", ".partials_truncated", ".route_changes"). Multi-query
  /// executors label each query's eddy ("q0.eddy", "q1.eddy", …) so the
  /// metrics stay per-query attributable; the single-query default keeps
  /// the legacy names.
  std::string metrics_prefix = "eddy";
};

/// A complete join result: one stored tuple per stream.
struct JoinResult {
  SmallVector<const Tuple*, 8> members;  ///< indexed by StreamId
};

class EddyRouter {
 public:
  /// route_batch: no batch member carries the active trace span.
  static constexpr std::size_t kNoSpanRoot = static_cast<std::size_t>(-1);

  /// `stems[s]` must be the STeM of stream s. Optional `sink` collects
  /// complete results (null = count only). With `telemetry` set, routing
  /// decisions are counted and every change of routing target for a given
  /// done-mask is logged as a routing_change event.
  EddyRouter(const QuerySpec& query, std::vector<StemOperator*> stems,
             EddyOptions options, CostMeter* meter = nullptr,
             telemetry::Telemetry* telemetry = nullptr);

  /// Multi-query mode: the stems may index a *superset* of this query's
  /// join attributes (the union over all queries sharing the state).
  /// `position_maps[s][p]` translates this query's JAS position p of
  /// stream s into the shared stem's JAS position. Identity when empty.
  void set_position_maps(std::vector<std::vector<std::uint8_t>> maps) {
    position_maps_ = std::move(maps);
  }

  /// Route an arrival that was already inserted into its own STeM as
  /// `stored`. Returns the number of complete results produced.
  std::uint64_t route(const Tuple* stored,
                      std::vector<JoinResult>* sink = nullptr);

  /// Route a batch of `n` same-stream arrivals (already inserted into
  /// their STeM; `done[i]` is arrival i's initial done-mask, normally
  /// `1 << stream`). Processes the join expansion level by level,
  /// partitioning each level's partials on done-mask: one routing decision
  /// serves a whole partition (the decision cache is consumed once per
  /// partial, so fresh-decision counts — and route charges — match n
  /// sequential route() calls exactly for deterministic policies), and the
  /// partition's probes go through StemOperator::probe_batch. Same-stream
  /// is what makes this equivalent to sequential routing: no partial
  /// rooted at stream s ever probes stream s, so every probe sees windows
  /// that are static for the whole batch. Returns results produced.
  /// Caveats (docs/architecture.md): stochastic policies draw once per
  /// partition instead of once per partial, and the per-arrival truncation
  /// valve cuts a different partial *set* (never a different count
  /// threshold) when a join explodes mid-batch.
  /// `span_root`, when not kNoSpanRoot, names the batch index whose
  /// partials belong to the telemetry's active trace span: partitions
  /// touching that arrival emit "hop" span events (and "truncate" if its
  /// valve trips).
  /// `visibility` (wall-mode cross-run batching) lifts the same-stream
  /// requirement: when set, the whole mixed-stream batch may be inserted
  /// up front and routed as one call — probe matches that are batch
  /// members with index >= the partial's root are skipped, reproducing the
  /// window state each root would have seen under sequential execution.
  /// The skipped comparisons were still performed (and charged), so wall
  /// mode trades extra modelled probe work for large partitions; join
  /// results are identical. Null keeps the same-stream contract.
  std::uint64_t route_batch(const Tuple* const* stored,
                            const std::uint32_t* done, std::size_t n,
                            std::vector<JoinResult>* sink = nullptr,
                            std::size_t span_root = kNoSpanRoot,
                            const BatchVisibility* visibility = nullptr);

  RoutingStatistics& statistics() { return stats_; }
  const RoutingStatistics& statistics() const { return stats_; }
  const RoutingPolicy& policy() const { return *policy_; }

  std::uint64_t arrivals_routed() const { return arrivals_; }
  std::uint64_t results_produced() const { return results_; }
  std::uint64_t partials_truncated() const { return truncated_; }

 private:
  struct Partial {
    std::uint32_t done = 0;
    SmallVector<const Tuple*, 8> members;  ///< indexed by StreamId
  };

  const QuerySpec& query_;
  std::vector<StemOperator*> stems_;
  std::vector<std::vector<std::uint8_t>> position_maps_;
  EddyOptions options_;
  std::unique_ptr<RoutingPolicy> policy_;
  CostMeter* meter_;
  RoutingStatistics stats_;
  std::uint64_t arrivals_ = 0;
  std::uint64_t results_ = 0;
  std::uint64_t truncated_ = 0;
  /// Batch-routing cache: done-mask -> (candidate index, remaining uses).
  struct CachedDecision {
    std::size_t pick = 0;
    std::size_t remaining = 0;
  };
  std::unordered_map<std::uint32_t, CachedDecision> decision_cache_;
  void note_decision(std::uint32_t done_mask, StreamId target,
                     std::uint64_t count = 1);
  // Reusable route_batch arenas (capacity persists across batches).
  std::vector<index::ProbeKey> batch_keys_;
  std::vector<std::vector<const Tuple*>> batch_outs_;
  std::vector<index::ProbeStats> batch_stats_;
  // Telemetry instruments (null when detached).
  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::Counter* decisions_counter_ = nullptr;
  telemetry::Counter* results_counter_ = nullptr;
  telemetry::Counter* truncated_counter_ = nullptr;
  telemetry::Counter* route_change_counter_ = nullptr;
  /// Last fresh routing target per done-mask, for change detection.
  std::unordered_map<std::uint32_t, StreamId> last_target_;
};

}  // namespace amri::engine
