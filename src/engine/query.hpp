// SPJ query specification (paper §II): select-project-join over multiple
// streams with sliding-window semantics. A state is instantiated per stream
// in the FROM clause; equi-join predicates in the WHERE clause induce each
// state's join attribute set (JAS).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/tuple.hpp"
#include "common/types.hpp"
#include "engine/operators.hpp"
#include "index/access_pattern.hpp"

namespace amri::engine {

/// One equi-join predicate: left.attr == right.attr.
struct JoinPredicate {
  StreamId left_stream = 0;
  AttrId left_attr = 0;
  StreamId right_stream = 0;
  AttrId right_attr = 0;
};

/// Per-state layout derived from the query: the state's JAS plus, for each
/// JAS position, the peer (stream, attribute) whose value binds it when a
/// partial result containing that peer stream probes this state.
struct StateLayout {
  struct Peer {
    StreamId stream = 0;
    AttrId attr = 0;
  };
  index::JoinAttributeSet jas;
  std::vector<Peer> peers;  ///< parallel to jas positions

  /// Access-pattern mask available when probing from a partial result that
  /// has joined the streams in `done_mask` (bit i = stream i present).
  AttrMask pattern_for(std::uint32_t done_mask) const {
    AttrMask ap = 0;
    for (std::size_t p = 0; p < peers.size(); ++p) {
      if ((done_mask >> peers[p].stream) & 1u) {
        ap |= (AttrMask{1} << p);
      }
    }
    return ap;
  }
};

/// The query: schemas (one per stream, StreamId = index) + join predicates
/// + a single sliding window length applied to every stream (the paper's
/// default-window-length template).
class QuerySpec {
 public:
  QuerySpec(std::vector<Schema> schemas, std::vector<JoinPredicate> predicates,
            TimeMicros window);

  std::size_t num_streams() const { return schemas_.size(); }
  const Schema& schema(StreamId s) const { return schemas_[s]; }
  const std::vector<JoinPredicate>& predicates() const { return predicates_; }
  TimeMicros window() const { return window_; }

  /// Layout of the state for stream `s`.
  const StateLayout& layout(StreamId s) const { return layouts_[s]; }

  /// Bitmask with one bit per stream, all set.
  std::uint32_t all_streams_mask() const {
    return (std::uint32_t{1} << schemas_.size()) - 1;
  }

  /// WHERE-clause constant filters for stream `s` (empty by default).
  const Selection& selection(StreamId s) const { return selections_[s]; }
  void set_selection(StreamId s, Selection sel) {
    selections_[s] = std::move(sel);
  }

  /// SELECT-clause projection (SELECT * by default).
  const Projection& projection() const { return projection_; }
  void set_projection(Projection p) { projection_ = std::move(p); }

 private:
  std::vector<Schema> schemas_;
  std::vector<JoinPredicate> predicates_;
  TimeMicros window_;
  std::vector<StateLayout> layouts_;
  std::vector<Selection> selections_;
  Projection projection_;
};

/// Convenience builder for the paper's evaluation query: `k` streams, every
/// pair joined on a dedicated attribute (complete join graph). Each stream
/// has k-1 join attributes; attribute j of stream i joins stream j (skipping
/// self). Attribute naming: "j<i><j>" on both sides.
QuerySpec make_complete_join_query(std::size_t k, TimeMicros window);

}  // namespace amri::engine
