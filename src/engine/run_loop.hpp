// The shared pipeline core: ONE drain → expiry → insert → route → sample
// → memory-accounting loop serving every executor. The loop is
// query-agnostic — everything query-specific (WHERE admission, eddy
// routing, result collection) goes through a RoutingSink, so the
// single-query Executor and the MultiQueryExecutor run bit-for-bit the
// same engine: same warm-up boundary, same batched/wall paths, same
// telemetry (spans, profiler phases, samples, backpressure, OOM), same
// queue-memory accounting.
//
// PipelineRuntime bundles the engine-neutral run state both executors
// used to duplicate (virtual clock, cost meter, memory tracker, fan-out
// and overlap pools, resolved telemetry instruments).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/cost_meter.hpp"
#include "common/memory_tracker.hpp"
#include "common/thread_pool.hpp"
#include "common/tuple.hpp"
#include "common/tuple_batch.hpp"
#include "common/virtual_clock.hpp"
#include "engine/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace amri::engine {

struct ExecutorOptions;
class StemOperator;
class TupleSource;

/// How the executor moves arrivals through the pipeline.
enum class EngineMode : std::uint8_t {
  /// Cost-metered virtual-clock execution (the paper's reproduction):
  /// strictly phased drain → expiry → insert → route, bit-for-bit
  /// deterministic for a given batch size.
  kVirtual = 0,
  /// Wall-clock mode: same modelled costs and virtual clock, but the hot
  /// path is organised for hardware speed — whole mixed-stream batches are
  /// inserted up front and routed as one partition under a per-root
  /// sequence horizon (BatchVisibility), the grouped probe kernel runs
  /// with software prefetch, and next-batch drain overlaps current-batch
  /// routing on a worker thread. Join results match virtual mode exactly;
  /// modelled probe-work counters may exceed it (the horizon filters
  /// matches after the comparisons were charged).
  kWall,
};

/// Modelled bytes per queued (undrained) arrival: the tuple payload plus
/// container overhead. The ONE place the queue-accounting constant lives —
/// every executor charges MemCategory::kQueue through
/// PipelineRuntime::sync_queue_memory, so single- and multi-query
/// accounting can never drift.
inline constexpr std::size_t kQueueBytesPerTuple = sizeof(Tuple) + 16;

/// Query-specific half of the pipeline, implemented by each executor:
/// WHERE admission and eddy routing. The run loop owns batching, expiry,
/// insertion, sampling and accounting; the sink owns everything that needs
/// a QuerySpec. Multi-query sinks additionally remember, per admitted
/// batch slot, which queries accepted the arrival, and route each query's
/// sub-array through that query's eddy.
class RoutingSink {
 public:
  /// route_batch: no member of the routed span carries the active span.
  static constexpr std::size_t kNoSpanRoot = static_cast<std::size_t>(-1);

  virtual ~RoutingSink() = default;

  /// True when samples should carry per-query output deltas
  /// (Sample::per_query_outputs). Multi-query sinks return true.
  virtual bool wants_per_query() const { return false; }

  /// WHERE admission for `arrival`, charging selection comparisons to
  /// `meter`. Returns true when the arrival enters the pipeline (any query
  /// accepts it). With `detached_accepts` null the sink records the accept
  /// set in its live batch state (the slot is the current batch's size);
  /// the wall overlap worker passes its own vector instead — the driver
  /// adopts it later via adopt_accepts. Must be thread-safe in the
  /// detached form (const query state only).
  virtual bool admit(const Tuple& arrival, CostMeter& meter,
                     std::vector<std::uint64_t>* detached_accepts) = 0;

  /// A new admission batch starts: forget the previous batch's accepts.
  /// Called before every drain (and before each tuple-at-a-time admit).
  virtual void begin_batch() {}

  /// Adopt the accept sets a detached drain recorded (wall overlap).
  virtual void adopt_accepts(std::vector<std::uint64_t>& accepts) {
    (void)accepts;
  }

  /// Route one admitted, inserted arrival (tuple-at-a-time path).
  /// `measured` is true after the warm-up boundary (row collection).
  virtual std::uint64_t route_one(const Tuple* stored, bool measured) = 0;

  /// Route the admitted batch slots [first, first + n): `stored[j]` /
  /// `done[j]` describe slot first + j. With `visibility` null this is a
  /// same-stream run (batched virtual mode); set, it is the whole
  /// mixed-stream batch under the wall-mode sequence horizon. `span_root`,
  /// when not kNoSpanRoot, is the index in [0, n) carrying the active
  /// trace span. Returns complete results produced.
  virtual std::uint64_t route_batch(const Tuple* const* stored,
                                    const std::uint32_t* done,
                                    std::size_t first, std::size_t n,
                                    std::size_t span_root,
                                    const BatchVisibility* visibility) = 0;

  /// Append cumulative per-query outputs (multi-query sinks; the run loop
  /// turns these into per-sample deltas).
  virtual void per_query_outputs(std::vector<std::uint64_t>& out) const {
    (void)out;
  }

  /// Move collected projected rows into the run result.
  virtual void take_rows(std::vector<SmallVector<Value, kInlineAttrs>>& rows) {
    (void)rows;
  }
};

/// Engine-neutral run state shared by every executor: clock, meter,
/// memory, pools, and the telemetry instruments the run loop records into.
/// Construction applies the engine-mode implications to `options` (fan-out
/// pool for sharded stems, wall prefetch/overlap) exactly as the
/// single-query executor always has.
class PipelineRuntime {
 public:
  explicit PipelineRuntime(ExecutorOptions& options);

  PipelineRuntime(const PipelineRuntime&) = delete;
  PipelineRuntime& operator=(const PipelineRuntime&) = delete;

  VirtualClock clock;
  CostMeter meter;
  MemoryTracker memory;
  /// Shared fan-out pool, created only when the stems are sharded.
  /// Declared before any stems so it outlives every probe path.
  std::unique_ptr<ThreadPool> pool;
  /// Single-thread pool for wall-mode drain/route overlap (double
  /// buffering, not fan-out — deliberately separate from `pool` so overlap
  /// drains never queue behind sharded probe fan-outs). Null unless
  /// engine == kWall and overlap is enabled.
  std::unique_ptr<ThreadPool> overlap_pool;
  /// Observability handles, resolved once at construction (null detached).
  telemetry::Profiler* profiler = nullptr;
  telemetry::Histogram* span_latency_hist = nullptr;  ///< span.latency_us
  telemetry::Gauge* run_wall_gauge = nullptr;         ///< profile.run.wall_us

  /// Track `backlog` queued arrivals against MemCategory::kQueue at
  /// kQueueBytesPerTuple each.
  void sync_queue_memory(std::size_t backlog);

  /// Emit the per-category OOM breakdown event (no-op when `tel` is null).
  void emit_oom_event(telemetry::Telemetry* tel);

 private:
  std::size_t tracked_queue_bytes_ = 0;
};

/// The unified run loop: consume `source` until the measured duration
/// elapses, the source is exhausted, or the memory budget is exceeded.
/// `stems` is indexed by StreamId; all query-specific work goes through
/// `sink`. Single-query behavior is bit-for-bit the legacy Executor::run.
RunResult run_pipeline(const ExecutorOptions& options, PipelineRuntime& rt,
                       const std::vector<std::unique_ptr<StemOperator>>& stems,
                       RoutingSink& sink, TupleSource& source);

}  // namespace amri::engine
