#include "engine/aggregate.hpp"

namespace amri::engine {

std::string agg_func_name(AggFunc f) {
  switch (f) {
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kSum: return "SUM";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
    case AggFunc::kAvg: return "AVG";
  }
  return "?";
}

double AggregateSink::total() const {
  AggState merged;
  for (const auto& [key, st] : groups_) {
    (void)key;
    merged.count += st.count;
    merged.sum += st.sum;
    if (st.count > 0) {
      if (st.min < merged.min) merged.min = st.min;
      if (st.max > merged.max) merged.max = st.max;
    }
  }
  return merged.value(func_);
}

}  // namespace amri::engine
