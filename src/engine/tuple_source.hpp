// The stream-input abstraction the executor pulls from: an ordered (by
// timestamp) merged sequence of tuples across all streams. Implemented by
// the workload module's synthetic generators and by test fixtures.
#pragma once

#include <optional>

#include "common/tuple.hpp"

namespace amri::engine {

class TupleSource {
 public:
  virtual ~TupleSource() = default;

  /// Next arrival in non-decreasing timestamp order; nullopt when the
  /// source is exhausted.
  virtual std::optional<Tuple> next() = 0;
};

}  // namespace amri::engine
