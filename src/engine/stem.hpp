// The STeM operator (paper §II, after Raman et al. [5]): a unary join
// state module supporting insertion, window-expiry deletion, and probe by
// join predicates. The physical index behind a STeM is pluggable — the
// AMRI bit-address index, the multi-hash access-module baseline, or a full
// scan — and an optional tuner adapts it online.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "assessment/assessor.hpp"
#include "common/cost_meter.hpp"
#include "common/memory_tracker.hpp"
#include "common/thread_pool.hpp"
#include "common/tuple.hpp"
#include "engine/query.hpp"
#include "index/access_module_set.hpp"
#include "index/bit_address_index.hpp"
#include "index/scan_index.hpp"
#include "index/sharded_bit_index.hpp"
#include "telemetry/telemetry.hpp"
#include "tuner/amri_tuner.hpp"
#include "tuner/hash_module_tuner.hpp"

namespace amri::engine {

/// Which physical index a STeM uses (the experiment axis of the paper).
enum class IndexBackend : std::uint8_t {
  kAmri = 0,        ///< bit-address index with AMRI online tuning
  kStaticBitmap,    ///< bit-address index, no tuning (paper's non-adapting
                    ///< bitmap baseline)
  kAccessModules,   ///< multi-hash access modules [5], CDIA-tuned
  kStaticModules,   ///< multi-hash access modules, no tuning
  kScan,            ///< no index at all
};

struct StemOptions {
  IndexBackend backend = IndexBackend::kAmri;
  index::IndexConfig initial_config;          ///< bit-address backends
  std::vector<AttrMask> initial_modules;      ///< access-module backends
  std::optional<tuner::TunerOptions> amri_tuner;       ///< kAmri
  std::optional<tuner::HashTunerOptions> module_tuner; ///< kAccessModules
  index::MapStrategy map_strategy = index::MapStrategy::kHash;
  std::vector<index::AttrDomain> domains;     ///< for kRange mapping
  /// For kQuantile mapping: one value sample per JAS position (e.g. from
  /// a warm-up trace). Empty samples fall back to hashing per attribute.
  std::vector<std::vector<Value>> quantile_samples;
  /// Bit-address backends only: partition the state's window and index
  /// into this many shards (index::ShardedBitIndex). 1 keeps the plain
  /// single index; the module/scan backends ignore sharding.
  std::size_t shards = 1;
  /// JAS position whose value routes tuples/probes to their shard
  /// (clamped to 0 when out of range).
  std::size_t shard_attr = 0;
  /// Fan-out pool for probes that leave the sharding attribute unbound
  /// (typically owned by the executor); null runs fan-outs serially.
  ThreadPool* pool = nullptr;
  /// Bit-address backends: enable software prefetch of directory slots in
  /// the grouped probe kernel (wall-mode executors turn this on). A pure
  /// hardware hint — modelled costs and probe results are identical.
  bool probe_prefetch = false;
  /// Queries sharing this state (multi-query executors; bit-address
  /// backends only). Above 1 the STeM keeps one assessor per
  /// (query, shard) cell — set_active_query() attributes each probe to the
  /// routing query — and every tuning epoch merges the whole grid
  /// (assessment/snapshot.hpp) so one shared tuner scores candidate ICs
  /// against the union workload, with per-query request shares attached to
  /// the decision. 1 (the default) keeps the single-query paths
  /// bit-for-bit untouched.
  std::size_t queries = 1;
};

class StemOperator {
 public:
  /// `layout` comes from the QuerySpec; `window` is the sliding-window
  /// length; `model` parameterises tuner cost decisions. With `telemetry`
  /// set the STeM records probe histograms (fan-out, per-access-pattern
  /// latency) and threads the handle into its index and tuner; null keeps
  /// every telemetry path to a pointer check.
  StemOperator(StreamId stream, const StateLayout& layout, TimeMicros window,
               StemOptions options, index::CostModel model,
               CostMeter* meter = nullptr, MemoryTracker* memory = nullptr,
               telemetry::Telemetry* telemetry = nullptr);

  ~StemOperator();

  StemOperator(const StemOperator&) = delete;
  StemOperator& operator=(const StemOperator&) = delete;

  StreamId stream() const { return stream_; }
  const StateLayout& layout() const { return layout_; }
  IndexBackend backend() const { return options_.backend; }

  /// Store an arriving tuple (copied into the window store) and index it.
  /// Returns the stored copy (stable address until expiry).
  const Tuple* insert(const Tuple& t);

  /// Store and index `n` arrivals at once (timestamps must be
  /// non-decreasing, like repeated insert() calls). Stored-copy pointers
  /// are appended to `stored`. Identical charges and final state to n
  /// single insert() calls; memory accounting is synced once.
  void insert_batch(const Tuple* arrivals, std::size_t n,
                    std::vector<const Tuple*>& stored);

  /// Expire tuples older than `now - window`.
  void expire(TimeMicros now);

  /// Multi-query mode (StemOptions::queries > 1): attribute subsequent
  /// probes to query `qi`'s assessors. The multi-query routing sink sets
  /// this before routing each query's partials; single-query stems never
  /// call it (query 0 is the default attribution).
  void set_active_query(std::size_t qi) { active_query_ = qi; }

  /// Probe for matches; feeds the access pattern to the tuner (if any) and
  /// applies due tuning decisions. Matches are appended to `out`.
  index::ProbeStats probe(const index::ProbeKey& key,
                          std::vector<const Tuple*>& out);

  /// Probe `n` keys through the index's batched path: key i's matches are
  /// appended to `outs[i]`, its statistics stored in `stats[i]`. The batch
  /// is chunked at the tuner's decision boundary (requests_until_due) so
  /// mid-batch tuning fires at the same request index as n single probes;
  /// within a chunk the assessors receive one weighted observe per
  /// (shard, access-pattern) group, attributed with the sequential
  /// round-robin sequence. Exact-count equivalent to n probe() calls for
  /// the exact assessors (SRIA/DIA); epsilon-equivalent for the
  /// compressing ones (see docs/architecture.md).
  void probe_batch(const index::ProbeKey* keys, std::size_t n,
                   std::vector<const Tuple*>* outs, index::ProbeStats* stats);

  /// Reusable probe-output arena: returned cleared, capacity persists
  /// across calls, so steady-state probing through this buffer performs no
  /// allocation. The contents are valid until the next probe_scratch()
  /// call on this STeM; callers needing longer-lived results must copy.
  std::vector<const Tuple*>& probe_scratch() {
    probe_scratch_.clear();
    return probe_scratch_;
  }

  std::size_t stored_tuples() const { return window_store_.size(); }
  const index::TupleIndex& physical_index() const { return *index_; }

  /// Number of index shards (1 for every unsharded backend).
  std::size_t shard_count() const {
    return sharded_index_ != nullptr ? sharded_index_->shard_count() : 1;
  }

  /// Max/mean shard-size skew (1.0 = balanced; also 1.0 when unsharded).
  double shard_imbalance() const {
    return sharded_index_ != nullptr && stored_tuples() > 0
               ? sharded_index_->balance().imbalance
               : 1.0;
  }

  /// Current bit-address config (bit-address backends only).
  const index::IndexConfig* current_config() const;

  std::uint64_t probes_served() const { return probes_; }
  std::uint64_t migrations() const;

  /// Tuning decisions whose recommended migration was blocked by an
  /// enabled guardrail (hysteresis / amortization / budgets). 0 for
  /// non-AMRI backends and guardrails-off tuners.
  std::uint64_t suppressed() const;

  /// Total modelled virtual time this state spent paused in migrations.
  double migration_pause_us() const;

  /// Final logical footprint: window store plus index structure bytes.
  std::size_t state_bytes() const {
    return tracked_tuple_bytes_ + index_->memory_bytes();
  }

  /// Force a tuning decision now (used after the warm-up phase). For the
  /// static backends (kStaticBitmap / kStaticModules) this applies the
  /// warm-up statistics once and then *drops* the tuner: the paper's
  /// non-adapting baselines start from a trained configuration but never
  /// adapt again.
  void finish_warmup();

  /// Apply a pending tuning decision immediately (adaptive backends).
  void force_tune();

  /// Window-store / index consistency: the store's timestamps are
  /// non-decreasing (expire() pops from the front and relies on it), the
  /// bit-address index holds exactly the stored tuples (checked deeply via
  /// BitAddressIndex::check_invariants), and tuple memory accounting
  /// matches the store. Always compiled; expire() invokes it only under
  /// AMRI_ASSERTIONS.
  void check_invariants() const;

 private:
  void sync_tuple_memory();
  void sync_stats_memory();
  /// One tuner-boundary-free chunk of probe_batch: index batch probe,
  /// telemetry, grouped weighted assessor feed, then at most one tuning
  /// decision at the chunk end.
  void probe_chunk(const index::ProbeKey* keys, std::size_t n,
                   std::vector<const Tuple*>* outs, index::ProbeStats* stats);
  /// Merged tuning epoch (sharded and/or multi-query): merge the whole
  /// assessor grid's snapshots into one logical assessment, run selection
  /// (with per-query request attribution when queries > 1), migrate when
  /// the improvement clears the margin, then apply statistics retention to
  /// every grid assessor.
  void merged_tune();
  telemetry::Histogram* pattern_histogram(AttrMask mask);

  StreamId stream_;
  StateLayout layout_;
  TimeMicros window_;
  StemOptions options_;
  CostMeter* meter_;
  MemoryTracker* memory_;
  std::deque<Tuple> window_store_;
  std::unique_ptr<index::TupleIndex> index_;
  index::BitAddressIndex* bit_index_ = nullptr;      ///< non-owning view
  index::ShardedBitIndex* sharded_index_ = nullptr;  ///< non-owning view
  index::AccessModuleSet* module_index_ = nullptr;   ///< non-owning view
  std::unique_ptr<tuner::AmriTuner> amri_tuner_;
  std::unique_ptr<tuner::HashModuleTuner> module_tuner_;
  /// Sharded and/or multi-query mode: the external assessor grid (the
  /// tuner's own assessor is bypassed), laid out query-major —
  /// slot = query * shard_slots + shard. Targeted probes are attributed to
  /// the target shard's assessor; fan-out probes round-robin
  /// deterministically. Empty for plain single-query unsharded stems.
  std::vector<std::unique_ptr<assessment::Assessor>> shard_assessors_;
  /// Shard cells per query in the grid (max(shards, 1)).
  std::size_t shard_slots_ = 1;
  /// The query currently routing (multi-query mode; see set_active_query).
  std::size_t active_query_ = 0;
  /// Requests attributed to each query since the last merged decision
  /// (multi-query mode only) — the decision timeline's per-query shares.
  std::vector<std::uint64_t> epoch_query_requests_;
  /// Scratch for expire()'s batched erase (pointer run into window_store_);
  /// a member so steady-state expiry never reallocates.
  std::vector<const Tuple*> expiry_scratch_;
  std::uint64_t fanout_rr_ = 0;
  std::size_t tracked_stats_bytes_ = 0;
  bool continuous_tuning_ = false;
  std::uint64_t warmup_migrations_ = 0;
  std::uint64_t warmup_suppressed_ = 0;
  double warmup_pause_us_ = 0.0;
  std::uint64_t probes_ = 0;
  std::size_t tracked_tuple_bytes_ = 0;
  std::vector<const Tuple*> probe_scratch_;
  // Telemetry instruments (null when detached).
  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::Profiler* profiler_ = nullptr;  ///< null unless --profile
  telemetry::Counter* probe_counter_ = nullptr;
  telemetry::Histogram* probe_cost_hist_ = nullptr;
  telemetry::Histogram* batch_size_hist_ = nullptr;  ///< keys per probe_batch
  /// Per-access-pattern probe latency histograms, created lazily on the
  /// first probe carrying each pattern.
  std::unordered_map<AttrMask, telemetry::Histogram*> pattern_hists_;
};

}  // namespace amri::engine
