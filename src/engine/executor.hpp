// The discrete-event simulation driver: pulls arrivals from a TupleSource,
// runs expiry → insert → eddy routing for each, charges all modelled work
// (hashing, comparisons, routing, migrations) to the virtual clock, tracks
// memory against a budget, and samples the cumulative-throughput curve.
//
// This substitutes for the paper's CAPE testbed: identical cost structure
// (the terms of Equation 1), deterministic, and laptop-fast. A run that
// exceeds the memory budget "dies" — reproducing the baselines' observed
// out-of-memory failures — and a run whose processing falls behind the
// arrival schedule accumulates backlog, reproducing the search-request
// backlog the paper describes for under-indexed configurations.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "engine/eddy.hpp"
#include "engine/metrics.hpp"
#include "engine/query.hpp"
#include "engine/run_loop.hpp"
#include "engine/stem.hpp"
#include "engine/tuple_source.hpp"
#include "telemetry/telemetry.hpp"

namespace amri::engine {

struct ExecutorOptions {
  TimeMicros duration = seconds_to_micros(60);  ///< measured run length
  TimeMicros warmup = 0;  ///< training prefix (paper: quasi training data)
  TimeMicros sample_every = seconds_to_micros(10);
  CostParams costs{};
  StemOptions stem{};            ///< applied to every state
  EddyOptions eddy{};
  std::size_t memory_budget = MemoryTracker::kUnlimited;
  index::WorkloadParams model_params{};  ///< cost model for tuner decisions
  /// Materialise projected result rows into RunResult::rows (for examples
  /// and tests; throughput experiments leave this off).
  bool collect_rows = false;
  std::size_t max_collected_rows = 1000;
  /// Optional per-result callback (e.g. an AggregateSink); invoked for
  /// every complete join result, warm-up included.
  std::function<void(const JoinResult&)> on_result;
  /// Optional telemetry sink. When set, the executor attaches the virtual
  /// clock, threads the handle through every STeM, index, tuner, and the
  /// eddy, records run/sample/OOM/backpressure events, and fills
  /// Sample::states. Null (the default) keeps every telemetry touchpoint
  /// to a pointer check.
  telemetry::Telemetry* telemetry = nullptr;
  /// Backlog depth (queued arrivals) that raises a backpressure event.
  /// Re-armed once the backlog drains to half the threshold.
  std::size_t backpressure_threshold = 10000;
  /// Sample every Nth drained arrival into an end-to-end trace span
  /// (`--trace-sample`): span stage events flow from source drain through
  /// eddy routing hops, STeM probes and sharded fan-out to result emission
  /// or truncation, carrying both the virtual clock and steady-clock
  /// nanoseconds. 0 (the default) disables sampling. Requires `telemetry`.
  std::size_t trace_sample = 0;
  /// Worker threads for sharded fan-out probes (stem.shards > 1 only).
  /// 0 picks hardware_concurrency; ignored when the stems are unsharded.
  std::size_t fanout_threads = 0;
  /// Arrivals moved through the pipeline together (`--batch-size`): the
  /// executor drains up to this many ready arrivals into a TupleBatch,
  /// expires every window once, then batch-inserts and batch-routes each
  /// consecutive same-stream run. 1 (the default) is the tuple-at-a-time
  /// path, preserved bit-for-bit. Larger batches keep the modelled cost
  /// identical (every shared computation is still charged once per tuple
  /// it serves) but amortise real dispatch work; the only semantic drift
  /// is expiry timing — windows are expired at batch start, so a tuple
  /// whose deadline falls inside a batch's virtual-time span survives a
  /// few probes longer (see docs/architecture.md, "Batched execution").
  std::size_t batch_size = 1;
  /// Execution mode (`--engine`): kVirtual is the paper's cost-metered
  /// pipeline; kWall reorganises the post-warm-up hot path for real
  /// hardware throughput (cross-run batching, prefetching probe kernel,
  /// drain/route overlap) while the virtual clock keeps governing arrival
  /// eligibility, window expiry and run length. See docs/architecture.md,
  /// "Wall-clock engine mode".
  EngineMode engine = EngineMode::kVirtual;
  /// Wall mode: overlap next-batch drain (backlog pop + WHERE selection)
  /// with current-batch routing on a dedicated worker thread. Disabled
  /// automatically when trace sampling is on (spans are emitted inline on
  /// the drain path) and on single-core hosts, where a second runnable
  /// thread only adds context switches and cache pollution to the one
  /// core the driver needs.
  bool wall_overlap = true;
  /// Create the overlap worker even on a single-core host. For tests that
  /// must exercise the concurrent drain/route handoff (TSan race hunting,
  /// toggle differentials) regardless of where they run.
  bool wall_overlap_force = false;
  /// Wall mode: software prefetch in the index kernel — bucket-directory
  /// slots ahead of the grouped probe / batched insert / batched expiry
  /// walks, and matching tuples ahead of the compare loop (sets
  /// StemOptions::probe_prefetch on every state).
  bool wall_probe_prefetch = true;
};

class Executor {
 public:
  Executor(const QuerySpec& query, ExecutorOptions options);

  /// Consume `source` until the measured duration elapses, the source is
  /// exhausted, or the memory budget is exceeded.
  RunResult run(TupleSource& source);

  /// Engine internals exposed for inspection in tests and examples.
  const std::vector<std::unique_ptr<StemOperator>>& stems() const {
    return stems_;
  }
  const EddyRouter& eddy() const { return *eddy_; }
  const VirtualClock& clock() const { return rt_.clock; }
  const MemoryTracker& memory() const { return rt_.memory; }
  const CostMeter& meter() const { return rt_.meter; }

 private:
  const QuerySpec& query_;
  ExecutorOptions options_;
  /// The shared run-loop state (clock/meter/memory/pools/instruments).
  /// Constructed before stems_ — its construction finalises options_
  /// (fan-out pool, wall prefetch) and its pools must outlive every stem
  /// probe path.
  PipelineRuntime rt_;
  std::vector<std::unique_ptr<StemOperator>> stems_;
  std::unique_ptr<EddyRouter> eddy_;
};

}  // namespace amri::engine
