// The discrete-event simulation driver: pulls arrivals from a TupleSource,
// runs expiry → insert → eddy routing for each, charges all modelled work
// (hashing, comparisons, routing, migrations) to the virtual clock, tracks
// memory against a budget, and samples the cumulative-throughput curve.
//
// This substitutes for the paper's CAPE testbed: identical cost structure
// (the terms of Equation 1), deterministic, and laptop-fast. A run that
// exceeds the memory budget "dies" — reproducing the baselines' observed
// out-of-memory failures — and a run whose processing falls behind the
// arrival schedule accumulates backlog, reproducing the search-request
// backlog the paper describes for under-indexed configurations.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/cost_meter.hpp"
#include "common/memory_tracker.hpp"
#include "common/thread_pool.hpp"
#include "common/virtual_clock.hpp"
#include "engine/eddy.hpp"
#include "engine/metrics.hpp"
#include "engine/query.hpp"
#include "engine/stem.hpp"
#include "engine/tuple_source.hpp"
#include "telemetry/telemetry.hpp"

namespace amri::engine {

/// How the executor moves arrivals through the pipeline.
enum class EngineMode : std::uint8_t {
  /// Cost-metered virtual-clock execution (the paper's reproduction):
  /// strictly phased drain → expiry → insert → route, bit-for-bit
  /// deterministic for a given batch size.
  kVirtual = 0,
  /// Wall-clock mode: same modelled costs and virtual clock, but the hot
  /// path is organised for hardware speed — whole mixed-stream batches are
  /// inserted up front and routed as one partition under a per-root
  /// sequence horizon (BatchVisibility), the grouped probe kernel runs
  /// with software prefetch, and next-batch drain overlaps current-batch
  /// routing on a worker thread. Join results match virtual mode exactly;
  /// modelled probe-work counters may exceed it (the horizon filters
  /// matches after the comparisons were charged).
  kWall,
};

struct ExecutorOptions {
  TimeMicros duration = seconds_to_micros(60);  ///< measured run length
  TimeMicros warmup = 0;  ///< training prefix (paper: quasi training data)
  TimeMicros sample_every = seconds_to_micros(10);
  CostParams costs{};
  StemOptions stem{};            ///< applied to every state
  EddyOptions eddy{};
  std::size_t memory_budget = MemoryTracker::kUnlimited;
  index::WorkloadParams model_params{};  ///< cost model for tuner decisions
  /// Materialise projected result rows into RunResult::rows (for examples
  /// and tests; throughput experiments leave this off).
  bool collect_rows = false;
  std::size_t max_collected_rows = 1000;
  /// Optional per-result callback (e.g. an AggregateSink); invoked for
  /// every complete join result, warm-up included.
  std::function<void(const JoinResult&)> on_result;
  /// Optional telemetry sink. When set, the executor attaches the virtual
  /// clock, threads the handle through every STeM, index, tuner, and the
  /// eddy, records run/sample/OOM/backpressure events, and fills
  /// Sample::states. Null (the default) keeps every telemetry touchpoint
  /// to a pointer check.
  telemetry::Telemetry* telemetry = nullptr;
  /// Backlog depth (queued arrivals) that raises a backpressure event.
  /// Re-armed once the backlog drains to half the threshold.
  std::size_t backpressure_threshold = 10000;
  /// Sample every Nth drained arrival into an end-to-end trace span
  /// (`--trace-sample`): span stage events flow from source drain through
  /// eddy routing hops, STeM probes and sharded fan-out to result emission
  /// or truncation, carrying both the virtual clock and steady-clock
  /// nanoseconds. 0 (the default) disables sampling. Requires `telemetry`.
  std::size_t trace_sample = 0;
  /// Worker threads for sharded fan-out probes (stem.shards > 1 only).
  /// 0 picks hardware_concurrency; ignored when the stems are unsharded.
  std::size_t fanout_threads = 0;
  /// Arrivals moved through the pipeline together (`--batch-size`): the
  /// executor drains up to this many ready arrivals into a TupleBatch,
  /// expires every window once, then batch-inserts and batch-routes each
  /// consecutive same-stream run. 1 (the default) is the tuple-at-a-time
  /// path, preserved bit-for-bit. Larger batches keep the modelled cost
  /// identical (every shared computation is still charged once per tuple
  /// it serves) but amortise real dispatch work; the only semantic drift
  /// is expiry timing — windows are expired at batch start, so a tuple
  /// whose deadline falls inside a batch's virtual-time span survives a
  /// few probes longer (see docs/architecture.md, "Batched execution").
  std::size_t batch_size = 1;
  /// Execution mode (`--engine`): kVirtual is the paper's cost-metered
  /// pipeline; kWall reorganises the post-warm-up hot path for real
  /// hardware throughput (cross-run batching, prefetching probe kernel,
  /// drain/route overlap) while the virtual clock keeps governing arrival
  /// eligibility, window expiry and run length. See docs/architecture.md,
  /// "Wall-clock engine mode".
  EngineMode engine = EngineMode::kVirtual;
  /// Wall mode: overlap next-batch drain (backlog pop + WHERE selection)
  /// with current-batch routing on a dedicated worker thread. Disabled
  /// automatically when trace sampling is on (spans are emitted inline on
  /// the drain path) and on single-core hosts, where a second runnable
  /// thread only adds context switches and cache pollution to the one
  /// core the driver needs.
  bool wall_overlap = true;
  /// Create the overlap worker even on a single-core host. For tests that
  /// must exercise the concurrent drain/route handoff (TSan race hunting,
  /// toggle differentials) regardless of where they run.
  bool wall_overlap_force = false;
  /// Wall mode: software prefetch in the index kernel — bucket-directory
  /// slots ahead of the grouped probe / batched insert / batched expiry
  /// walks, and matching tuples ahead of the compare loop (sets
  /// StemOptions::probe_prefetch on every state).
  bool wall_probe_prefetch = true;
};

class Executor {
 public:
  Executor(const QuerySpec& query, ExecutorOptions options);

  /// Consume `source` until the measured duration elapses, the source is
  /// exhausted, or the memory budget is exceeded.
  RunResult run(TupleSource& source);

  /// Engine internals exposed for inspection in tests and examples.
  const std::vector<std::unique_ptr<StemOperator>>& stems() const {
    return stems_;
  }
  const EddyRouter& eddy() const { return *eddy_; }
  const VirtualClock& clock() const { return clock_; }
  const MemoryTracker& memory() const { return memory_; }
  const CostMeter& meter() const { return meter_; }

 private:
  void sync_queue_memory(std::size_t backlog);
  void emit_oom_event();

  const QuerySpec& query_;
  ExecutorOptions options_;
  VirtualClock clock_;
  CostMeter meter_;
  MemoryTracker memory_;
  /// Shared fan-out pool, created only when the stems are sharded.
  /// Declared before stems_ so it outlives every probe path.
  std::unique_ptr<ThreadPool> pool_;
  /// Single-thread pool for wall-mode drain/route overlap (double
  /// buffering, not fan-out — deliberately separate from pool_ so overlap
  /// drains never queue behind sharded probe fan-outs). Null unless
  /// engine == kWall and overlap is enabled.
  std::unique_ptr<ThreadPool> overlap_pool_;
  std::vector<std::unique_ptr<StemOperator>> stems_;
  std::unique_ptr<EddyRouter> eddy_;
  std::size_t tracked_queue_bytes_ = 0;
  /// Observability handles, resolved once at construction (null detached).
  telemetry::Profiler* profiler_ = nullptr;
  telemetry::Histogram* span_latency_hist_ = nullptr;  ///< span.latency_us
  telemetry::Gauge* run_wall_gauge_ = nullptr;         ///< profile.run.wall_us
};

}  // namespace amri::engine
