// Eddy routing policies: given a partial result (which streams it already
// joined), choose which state to probe next. Policies consult per-(state,
// access-pattern) statistics the router refreshes after every probe; an
// exploration rate occasionally routes to suboptimal operators to keep the
// statistics current (the paper's §I-B challenge 1).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "stats/ewma.hpp"

namespace amri::engine {

/// Smoothed observations for one (target state, access pattern) pair.
struct RouteStats {
  stats::Ewma matches{0.2};   ///< join fan-out per probe
  stats::Ewma compares{0.2};  ///< tuples compared per probe (probe cost)
};

/// Shared statistics table keyed by (state, pattern mask).
class RoutingStatistics {
 public:
  RouteStats& at(StreamId state, AttrMask ap) {
    return table_[key(state, ap)];
  }
  const RouteStats* find(StreamId state, AttrMask ap) const {
    const auto it = table_.find(key(state, ap));
    return it == table_.end() ? nullptr : &it->second;
  }
  void record(StreamId state, AttrMask ap, double matches, double compares) {
    auto& rs = at(state, ap);
    rs.matches.add(matches);
    rs.compares.add(compares);
  }
  std::size_t size() const { return table_.size(); }
  void clear() { table_.clear(); }

 private:
  static std::uint64_t key(StreamId state, AttrMask ap) {
    return (static_cast<std::uint64_t>(state) << 32) | ap;
  }
  std::unordered_map<std::uint64_t, RouteStats> table_;
};

enum class RoutingPolicyKind : std::uint8_t {
  kFixed = 0,    ///< static order: lowest stream id first
  kCostBased,    ///< minimise expected probe cost + fan-out penalty
  kLottery,      ///< ticket lottery, tickets inversely prop. to fan-out
};

/// Context handed to a policy for one routing decision.
struct RoutingContext {
  std::uint32_t done_mask = 0;  ///< streams already in the partial result
  /// Candidate next states with the access pattern each would see.
  struct Candidate {
    StreamId state = 0;
    AttrMask pattern = 0;
  };
  std::vector<Candidate> candidates;
};

class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;
  /// Pick the index (into ctx.candidates) of the next state to probe.
  virtual std::size_t choose(const RoutingContext& ctx,
                             const RoutingStatistics& stats) = 0;
  virtual std::string name() const = 0;
};

struct RoutingOptions {
  RoutingPolicyKind kind = RoutingPolicyKind::kCostBased;
  double exploration_rate = 0.05;  ///< probability of a random route
  double fanout_weight = 2.0;      ///< cost-based: penalty per expected match
  std::uint64_t seed = 0x5eedULL;
};

std::unique_ptr<RoutingPolicy> make_routing_policy(const RoutingOptions& opts);

}  // namespace amri::engine
