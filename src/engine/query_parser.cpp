#include "engine/query_parser.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <stdexcept>

namespace amri::engine {

namespace {

// ---- tokenizer -----------------------------------------------------------

struct Token {
  enum Kind { kWord, kNumber, kSymbol, kEnd } kind = kEnd;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  const Token& peek() {
    if (!current_) current_ = lex();
    return *current_;
  }

  Token take() {
    const Token t = peek();
    current_.reset();
    return t;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw std::invalid_argument("query parse error: " + message);
  }

 private:
  Token lex() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= text_.size()) return Token{Token::kEnd, ""};
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      return Token{Token::kWord, std::string(text_.substr(start, pos_ - start))};
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
      std::size_t start = pos_++;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.')) {
        ++pos_;
      }
      return Token{Token::kNumber, std::string(text_.substr(start, pos_ - start))};
    }
    // Multi-char comparison operators.
    for (const std::string_view op : {"<=", ">=", "!=", "<>"}) {
      if (text_.substr(pos_, 2) == op) {
        pos_ += 2;
        return Token{Token::kSymbol, std::string(op)};
      }
    }
    ++pos_;
    return Token{Token::kSymbol, std::string(1, c)};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::optional<Token> current_;
};

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

bool is_keyword(const Token& t, std::string_view kw) {
  return t.kind == Token::kWord && upper(t.text) == kw;
}

CompareOp op_from(const std::string& s) {
  if (s == "=" || s == "==") return CompareOp::kEq;
  if (s == "!=" || s == "<>") return CompareOp::kNe;
  if (s == "<") return CompareOp::kLt;
  if (s == "<=") return CompareOp::kLe;
  if (s == ">") return CompareOp::kGt;
  if (s == ">=") return CompareOp::kGe;
  throw std::invalid_argument("query parse error: unknown operator '" + s +
                              "'");
}

std::optional<AggFunc> agg_from(const std::string& word) {
  const std::string w = upper(word);
  if (w == "COUNT") return AggFunc::kCount;
  if (w == "SUM") return AggFunc::kSum;
  if (w == "MIN") return AggFunc::kMin;
  if (w == "MAX") return AggFunc::kMax;
  if (w == "AVG") return AggFunc::kAvg;
  return std::nullopt;
}

// ---- parser --------------------------------------------------------------

struct ColumnRef {
  std::string alias;
  std::string attr;
};

class Parser {
 public:
  Parser(std::string_view text, const std::vector<Schema>& streams,
         TimeMicros default_window)
      : lexer_(text), streams_(streams), window_(default_window) {}

  ParsedQuery parse() {
    parse_select();
    parse_from();
    parse_where();
    parse_optional_group_by();
    parse_optional_window();
    if (lexer_.peek().kind != Token::kEnd) {
      lexer_.fail("unexpected trailing token '" + lexer_.peek().text + "'");
    }
    return build();
  }

 private:
  void expect_keyword(std::string_view kw) {
    const Token t = lexer_.take();
    if (!is_keyword(t, kw)) {
      lexer_.fail("expected " + std::string(kw) + ", got '" + t.text + "'");
    }
  }

  void expect_symbol(std::string_view s) {
    const Token t = lexer_.take();
    if (t.kind != Token::kSymbol || t.text != s) {
      lexer_.fail("expected '" + std::string(s) + "', got '" + t.text + "'");
    }
  }

  std::string expect_word(const char* what) {
    const Token t = lexer_.take();
    if (t.kind != Token::kWord) {
      lexer_.fail(std::string("expected ") + what + ", got '" + t.text + "'");
    }
    return t.text;
  }

  /// alias '.' attr
  ColumnRef parse_column_ref() {
    ColumnRef ref;
    ref.alias = expect_word("stream alias");
    expect_symbol(".");
    ref.attr = expect_word("attribute name");
    return ref;
  }

  void parse_select() {
    expect_keyword("SELECT");
    if (lexer_.peek().kind == Token::kSymbol && lexer_.peek().text == "*") {
      lexer_.take();
      select_star_ = true;
      return;
    }
    // Aggregate form: AGG '(' ... ')'
    const Token first = lexer_.take();
    if (first.kind != Token::kWord) {
      lexer_.fail("expected column or aggregate in SELECT, got '" +
                  first.text + "'");
    }
    if (const auto agg = agg_from(first.text);
        agg && lexer_.peek().kind == Token::kSymbol &&
        lexer_.peek().text == "(") {
      lexer_.take();  // '('
      agg_ = agg;
      if (lexer_.peek().kind == Token::kSymbol && lexer_.peek().text == "*") {
        if (*agg != AggFunc::kCount) {
          lexer_.fail("only COUNT accepts '*'");
        }
        lexer_.take();
      } else {
        agg_column_ = parse_column_ref();
      }
      expect_symbol(")");
      return;
    }
    // Plain column list: first token was the leading alias.
    ColumnRef ref;
    ref.alias = first.text;
    expect_symbol(".");
    ref.attr = expect_word("attribute name");
    columns_.push_back(ref);
    while (lexer_.peek().kind == Token::kSymbol && lexer_.peek().text == ",") {
      lexer_.take();
      columns_.push_back(parse_column_ref());
    }
  }

  void parse_from() {
    expect_keyword("FROM");
    while (true) {
      const std::string stream = expect_word("stream name");
      const std::string alias = expect_word("stream alias");
      StreamId id = 0;
      bool found = false;
      for (StreamId s = 0; s < streams_.size(); ++s) {
        if (streams_[s].stream_name() == stream) {
          id = s;
          found = true;
          break;
        }
      }
      if (!found) lexer_.fail("unknown stream '" + stream + "'");
      if (aliases_.count(alias) != 0) {
        lexer_.fail("duplicate alias '" + alias + "'");
      }
      // Alias maps to the *query-local* stream id (FROM position), so the
      // same catalog stream under two aliases is a self-join.
      aliases_[alias] = static_cast<StreamId>(from_order_.size());
      from_order_.push_back(id);
      if (lexer_.peek().kind == Token::kSymbol && lexer_.peek().text == ",") {
        lexer_.take();
        continue;
      }
      break;
    }
  }

  /// Resolve a ColumnRef against the FROM aliases; the returned stream id
  /// is *query-local* (position in the FROM clause).
  OutputColumn resolve(const ColumnRef& ref) {
    const auto it = aliases_.find(ref.alias);
    if (it == aliases_.end()) {
      lexer_.fail("unknown alias '" + ref.alias + "'");
    }
    const StreamId query_id = it->second;
    const Schema& schema = streams_[from_order_[query_id]];
    const AttrId attr = schema.find_attr(ref.attr);
    if (attr == schema.num_attrs()) {
      lexer_.fail("stream '" + schema.stream_name() +
                  "' has no attribute '" + ref.attr + "'");
    }
    return OutputColumn{query_id, attr};
  }

  void parse_where() {
    if (!is_keyword(lexer_.peek(), "WHERE")) return;
    lexer_.take();
    while (true) {
      const ColumnRef left = parse_column_ref();
      const Token op_tok = lexer_.take();
      if (op_tok.kind != Token::kSymbol) {
        lexer_.fail("expected comparison operator, got '" + op_tok.text +
                    "'");
      }
      const CompareOp op = op_from(op_tok.text);
      if (lexer_.peek().kind == Token::kNumber) {
        // Constant filter.
        const Token num = lexer_.take();
        const OutputColumn col = resolve(left);
        filters_.emplace_back(col.stream,
                              FilterPredicate{col.attr, op,
                                              static_cast<Value>(
                                                  std::stoll(num.text))});
      } else {
        // Join predicate: must be an equi-join between two streams.
        const ColumnRef right = parse_column_ref();
        if (op != CompareOp::kEq) {
          lexer_.fail("join predicates must use '=' (got '" + op_tok.text +
                      "'); use constants for range filters");
        }
        const OutputColumn l = resolve(left);
        const OutputColumn r = resolve(right);
        if (l.stream == r.stream) {
          lexer_.fail("join predicate references one stream twice");
        }
        joins_.push_back(JoinPredicate{l.stream, l.attr, r.stream, r.attr});
      }
      if (is_keyword(lexer_.peek(), "AND")) {
        lexer_.take();
        continue;
      }
      break;
    }
  }

  void parse_optional_group_by() {
    if (!is_keyword(lexer_.peek(), "GROUP")) return;
    lexer_.take();
    expect_keyword("BY");
    group_by_ = parse_column_ref();
  }

  void parse_optional_window() {
    if (!is_keyword(lexer_.peek(), "WINDOW")) return;
    lexer_.take();
    const Token t = lexer_.take();
    if (t.kind != Token::kNumber) {
      lexer_.fail("expected window length in seconds, got '" + t.text + "'");
    }
    window_ = seconds_to_micros(std::stod(t.text));
  }

  ParsedQuery build() {
    if (from_order_.empty()) lexer_.fail("FROM clause is required");
    // The query spans exactly the FROM-clause streams (query StreamId =
    // FROM position); duplicate catalog streams under different aliases
    // become distinct query streams (self-join support).
    std::vector<Schema> query_schemas;
    for (const StreamId catalog_id : from_order_) {
      query_schemas.push_back(streams_[catalog_id]);
    }
    QuerySpec spec(std::move(query_schemas), joins_, window_);
    // Selections grouped per stream.
    std::map<StreamId, std::vector<FilterPredicate>> per_stream;
    for (const auto& [stream, pred] : filters_) {
      per_stream[stream].push_back(pred);
    }
    for (auto& [stream, preds] : per_stream) {
      spec.set_selection(stream, Selection(std::move(preds)));
    }
    ParsedQuery out{std::move(spec), from_order_, std::nullopt, std::nullopt,
                    std::nullopt};
    if (!select_star_ && !columns_.empty()) {
      std::vector<OutputColumn> cols;
      for (const ColumnRef& ref : columns_) cols.push_back(resolve(ref));
      out.query.set_projection(Projection(std::move(cols)));
    }
    if (agg_) {
      out.agg = agg_;
      if (agg_column_) out.agg_column = resolve(*agg_column_);
    }
    if (group_by_) out.group_by = resolve(*group_by_);
    return out;
  }

  Lexer lexer_;
  const std::vector<Schema>& streams_;
  TimeMicros window_;
  bool select_star_ = false;
  std::vector<ColumnRef> columns_;
  std::optional<AggFunc> agg_;
  std::optional<ColumnRef> agg_column_;
  std::optional<ColumnRef> group_by_;
  std::map<std::string, StreamId> aliases_;
  std::vector<StreamId> from_order_;
  std::vector<JoinPredicate> joins_;
  std::vector<std::pair<StreamId, FilterPredicate>> filters_;
};

}  // namespace

ParsedQuery parse_query(std::string_view text,
                        const std::vector<Schema>& streams,
                        TimeMicros default_window) {
  return Parser(text, streams, default_window).parse();
}

}  // namespace amri::engine
