#include "engine/executor.hpp"

#include <cassert>
#include <deque>

namespace amri::engine {

Executor::Executor(const QuerySpec& query, ExecutorOptions options)
    : query_(query),
      options_(options),
      meter_(&clock_, options.costs),
      memory_(options.memory_budget) {
  const index::CostModel model(options_.model_params);
  stems_.reserve(query_.num_streams());
  std::vector<StemOperator*> stem_ptrs;
  for (StreamId s = 0; s < query_.num_streams(); ++s) {
    stems_.push_back(std::make_unique<StemOperator>(
        s, query_.layout(s), query_.window(), options_.stem, model, &meter_,
        &memory_));
    stem_ptrs.push_back(stems_.back().get());
  }
  eddy_ = std::make_unique<EddyRouter>(query_, std::move(stem_ptrs),
                                       options_.eddy, &meter_);
}

void Executor::sync_queue_memory(std::size_t backlog) {
  const std::size_t now = backlog * (sizeof(Tuple) + 16);
  if (now > tracked_queue_bytes_) {
    memory_.allocate(MemCategory::kQueue, now - tracked_queue_bytes_);
  } else if (now < tracked_queue_bytes_) {
    memory_.release(MemCategory::kQueue, tracked_queue_bytes_ - now);
  }
  tracked_queue_bytes_ = now;
}

RunResult Executor::run(TupleSource& source) {
  RunResult result;
  const TimeMicros warmup_end = options_.warmup;
  const TimeMicros measure_end = options_.warmup + options_.duration;

  std::deque<Tuple> pending;
  std::optional<Tuple> lookahead = source.next();
  bool warmup_done = (options_.warmup == 0);
  std::uint64_t outputs_total = 0;
  std::uint64_t outputs_offset = 0;
  std::uint64_t arrivals_measured = 0;
  TimeMicros next_sample = warmup_end + options_.sample_every;

  if (warmup_done) {
    // No training phase: stems keep their construction-time configuration.
  }

  auto take_sample = [&](TimeMicros at) {
    Sample s;
    s.t = at - warmup_end;
    s.outputs = outputs_total - outputs_offset;
    s.memory_bytes = memory_.total();
    s.backlog = pending.size();
    result.samples.push_back(s);
  };

  auto finish_warmup = [&] {
    for (auto& stem : stems_) stem->finish_warmup();
    outputs_offset = outputs_total;
    warmup_done = true;
    take_sample(warmup_end);  // measurement-start baseline (t = 0)
  };

  while (clock_.now() < measure_end) {
    // Pull every arrival whose timestamp has passed into the backlog.
    while (lookahead.has_value() && lookahead->ts <= clock_.now()) {
      pending.push_back(*lookahead);
      lookahead = source.next();
    }
    sync_queue_memory(pending.size());
    if (memory_.exhausted()) break;

    if (pending.empty()) {
      if (!lookahead.has_value()) break;  // source exhausted, system idle
      if (lookahead->ts >= measure_end) {
        clock_.advance_to(measure_end);
        break;
      }
      clock_.advance_to(lookahead->ts);  // idle until the next arrival
      continue;
    }

    const Tuple arrival = pending.front();
    pending.pop_front();
    sync_queue_memory(pending.size());

    // Warm-up boundary: apply trained configurations exactly once.
    if (!warmup_done && clock_.now() >= warmup_end) finish_warmup();

    // WHERE-clause selection: filtered tuples are neither stored nor
    // routed (the paper's S of SPJ happens before the join network).
    if (!query_.selection(arrival.stream).matches(arrival, &meter_)) {
      if (warmup_done) ++result.arrivals_filtered;
      continue;
    }

    // Expire all windows to the current time, store, then route.
    for (auto& stem : stems_) stem->expire(clock_.now());
    const Tuple* stored = stems_[arrival.stream]->insert(arrival);
    const bool want_rows = options_.collect_rows && warmup_done &&
                           result.rows.size() < options_.max_collected_rows;
    if (want_rows || options_.on_result) {
      std::vector<JoinResult> sink;
      outputs_total += eddy_->route(stored, &sink);
      for (const JoinResult& jr : sink) {
        if (options_.on_result) options_.on_result(jr);
        if (want_rows && result.rows.size() < options_.max_collected_rows) {
          result.rows.push_back(query_.projection().apply(jr.members));
        }
      }
    } else {
      outputs_total += eddy_->route(stored);
    }
    if (warmup_done) ++arrivals_measured;

    if (memory_.exhausted()) break;

    while (warmup_done && clock_.now() >= next_sample &&
           next_sample <= measure_end) {
      take_sample(next_sample);
      next_sample += options_.sample_every;
    }
  }

  if (!warmup_done) finish_warmup();

  const TimeMicros end_now = std::min(clock_.now(), measure_end);
  if (memory_.exhausted()) {
    result.died_at = end_now - warmup_end;
  } else {
    result.completed = clock_.now() >= measure_end || !lookahead.has_value();
  }
  take_sample(end_now >= warmup_end ? end_now : warmup_end);

  result.outputs = outputs_total - outputs_offset;
  result.arrivals = arrivals_measured;
  result.arrivals_dropped = pending.size();
  result.peak_memory = memory_.peak();
  result.charged_us = meter_.charged_us();
  result.routing_decisions = meter_.routes();
  for (const auto& stem : stems_) {
    StateSummary s;
    s.stream = stem->stream();
    s.stored_tuples = stem->stored_tuples();
    s.probes = stem->probes_served();
    s.migrations = stem->migrations();
    s.final_index = stem->physical_index().name();
    result.states.push_back(std::move(s));
  }
  return result;
}

}  // namespace amri::engine
