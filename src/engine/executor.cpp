#include "engine/executor.hpp"

#include <cassert>
#include <chrono>
#include <thread>
#include <deque>

#include "common/tuple_batch.hpp"
#include "telemetry/json.hpp"

namespace amri::engine {

Executor::Executor(const QuerySpec& query, ExecutorOptions options)
    : query_(query),
      options_(options),
      meter_(&clock_, options.costs),
      memory_(options.memory_budget) {
  if (options_.telemetry != nullptr) {
    options_.telemetry->attach_clock(&clock_);
  }
  const index::CostModel model(options_.model_params);
  if (options_.stem.shards > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.fanout_threads);
    options_.stem.pool = pool_.get();
  }
  if (options_.engine == EngineMode::kWall) {
    if (options_.wall_probe_prefetch) options_.stem.probe_prefetch = true;
    // Trace spans are emitted inline on the drain path, so sampling keeps
    // the drain on the driver thread (overlap off). A single-core host
    // gets no overlap either: the worker would just timeshare the driver's
    // core, paying context switches for zero concurrency.
    const bool cores_for_overlap =
        options_.wall_overlap_force || std::thread::hardware_concurrency() > 1;
    if (options_.wall_overlap && options_.trace_sample == 0 &&
        cores_for_overlap) {
      overlap_pool_ = std::make_unique<ThreadPool>(1);
    }
  }
  stems_.reserve(query_.num_streams());
  std::vector<StemOperator*> stem_ptrs;
  for (StreamId s = 0; s < query_.num_streams(); ++s) {
    stems_.push_back(std::make_unique<StemOperator>(
        s, query_.layout(s), query_.window(), options_.stem, model, &meter_,
        &memory_, options_.telemetry));
    stem_ptrs.push_back(stems_.back().get());
  }
  eddy_ = std::make_unique<EddyRouter>(query_, std::move(stem_ptrs),
                                       options_.eddy, &meter_,
                                       options_.telemetry);
  if (options_.telemetry != nullptr) {
    auto& reg = options_.telemetry->metrics();
    profiler_ = options_.telemetry->profiler();
    if (profiler_ != nullptr) {
      run_wall_gauge_ = &reg.gauge("profile.run.wall_us");
    }
    if (options_.trace_sample > 0) {
      span_latency_hist_ = &reg.histogram(
          "span.latency_us",
          telemetry::Histogram::exponential_bounds(0.5, 2.0, 22));
    }
    if (pool_ != nullptr) {
      // The pool lives in the common layer and cannot depend on telemetry,
      // so its generic hooks are bound to registry instruments here.
      auto* wait_hist = &reg.histogram(
          "pool.queue_wait_us",
          telemetry::Histogram::exponential_bounds(0.1, 2.0, 20));
      auto* contention = &reg.counter("pool.contention");
      ThreadPool::Hooks hooks;
      hooks.on_dequeue = [wait_hist](double us) { wait_hist->observe(us); };
      hooks.on_contention = [contention] { contention->add(); };
      pool_->set_hooks(std::move(hooks));
    }
  }
}

void Executor::emit_oom_event() {
  if (options_.telemetry == nullptr) return;
  telemetry::JsonWriter w;
  w.begin_object();
  w.field("total_bytes", static_cast<std::uint64_t>(memory_.total()));
  w.field("budget_bytes", static_cast<std::uint64_t>(memory_.budget()));
  w.begin_array("by_category");
  for (std::size_t c = 0; c < static_cast<std::size_t>(MemCategory::kCount);
       ++c) {
    const auto cat = static_cast<MemCategory>(c);
    telemetry::JsonWriter cw;
    cw.begin_object();
    cw.field("category", mem_category_name(cat));
    cw.field("bytes", static_cast<std::uint64_t>(memory_.category(cat)));
    cw.end_object();
    w.value_raw(std::move(cw).take());
  }
  w.end_array();
  w.end_object();
  options_.telemetry->emit(telemetry::EventKind::kOom, 0, std::move(w).take());
}

void Executor::sync_queue_memory(std::size_t backlog) {
  const std::size_t now = backlog * (sizeof(Tuple) + 16);
  if (now > tracked_queue_bytes_) {
    memory_.allocate(MemCategory::kQueue, now - tracked_queue_bytes_);
  } else if (now < tracked_queue_bytes_) {
    memory_.release(MemCategory::kQueue, tracked_queue_bytes_ - now);
  }
  tracked_queue_bytes_ = now;
}

RunResult Executor::run(TupleSource& source) {
  RunResult result;
  const TimeMicros warmup_end = options_.warmup;
  const TimeMicros measure_end = options_.warmup + options_.duration;
  telemetry::Telemetry* const tel = options_.telemetry;
  const auto run_wall_t0 = std::chrono::steady_clock::now();

  // Span sampling: every trace_sample-th drained arrival gets a span id
  // that downstream producers (eddy hops, sharded fan-out) pick up via
  // Telemetry::active_span().
  const std::size_t trace_sample = tel != nullptr ? options_.trace_sample : 0;
  std::uint64_t drained_arrivals = 0;
  auto emit_span_stage = [&](std::uint64_t id, StreamId stream,
                             const char* stage, auto&& extra) {
    telemetry::JsonWriter w;
    w.begin_object();
    w.field("span", id);
    w.field("stage", stage);
    w.field("wall_ns", tel->wall_ns());
    extra(w);
    w.end_object();
    tel->emit(telemetry::EventKind::kSpan, stream, std::move(w).take());
  };
  auto no_extra = [](telemetry::JsonWriter&) {};

  std::deque<Tuple> pending;
  TupleBatch batch;                   // batched-drain arenas; capacity
  std::vector<const Tuple*> stored_run;  // persists across batches
  std::vector<JoinResult> batch_sink;
  // A sampled arrival awaiting its batch's routing: its span was begun (and
  // the "arrival" stage emitted) at drain time, then suspended. Every
  // sampled arrival of a batch is tracked — the batched and tuple-at-a-time
  // paths trace the same Nth drained arrivals.
  struct PendingSpan {
    std::size_t index = 0;  ///< arrival's index within the batch
    std::uint64_t id = 0;
    std::chrono::steady_clock::time_point start{};
  };
  std::vector<PendingSpan> batch_spans;
  // Wall-mode arenas: batch-order stored pointers and the sequence horizon
  // handed to route_batch, plus the overlap double buffer the worker
  // thread drains into while the driver routes. The worker only ever runs
  // between its submit and the wait_idle at the end of the same iteration;
  // the driver does not touch `pending` or `prefetched` in that window, so
  // ownership alternates with pool-mutex synchronisation in between.
  std::vector<const Tuple*> wall_stored;
  BatchVisibility wall_visibility;
  struct PrefetchedBatch {
    TupleBatch batch;
    CostMeter meter;  ///< detached — counts the worker's WHERE comparisons
    std::uint64_t filtered = 0;
    double drain_wall_us = 0.0;
  };
  PrefetchedBatch prefetched;
  bool have_prefetched = false;
  std::optional<Tuple> lookahead = source.next();
  bool warmup_done = (options_.warmup == 0);
  std::uint64_t outputs_total = 0;
  std::uint64_t outputs_offset = 0;
  std::uint64_t arrivals_measured = 0;
  TimeMicros next_sample = warmup_end + options_.sample_every;
  bool backpressure_armed = true;

  if (tel != nullptr) {
    telemetry::JsonWriter w;
    w.begin_object();
    w.field("warmup_us", static_cast<std::uint64_t>(options_.warmup));
    w.field("duration_us", static_cast<std::uint64_t>(options_.duration));
    w.field("streams", static_cast<std::uint64_t>(query_.num_streams()));
    w.field("memory_budget",
            static_cast<std::uint64_t>(options_.memory_budget));
    w.end_object();
    tel->emit(telemetry::EventKind::kRunStart, 0, std::move(w).take());
  }

  if (warmup_done) {
    // No training phase: stems keep their construction-time configuration.
  }

  auto take_sample = [&](TimeMicros at) {
    telemetry::ScopedPhase sample_scope(profiler_, telemetry::Phase::kSample);
    Sample s;
    s.t = at - warmup_end;
    s.outputs = outputs_total - outputs_offset;
    s.memory_bytes = memory_.total();
    s.backlog = pending.size();
    if (tel != nullptr) {
      for (const auto& stem : stems_) {
        StateSample ss;
        ss.stream = stem->stream();
        ss.stored_tuples = stem->stored_tuples();
        ss.probes = stem->probes_served();
        ss.migrations = stem->migrations();
        const index::IndexConfig* ic = stem->current_config();
        ss.index_config =
            ic != nullptr ? ic->to_string() : stem->physical_index().name();
        s.states.push_back(std::move(ss));
      }
      telemetry::JsonWriter w;
      w.begin_object();
      w.field("t", static_cast<std::int64_t>(s.t));
      w.field("outputs", s.outputs);
      w.field("memory_bytes", static_cast<std::uint64_t>(s.memory_bytes));
      w.field("backlog", static_cast<std::uint64_t>(s.backlog));
      w.begin_array("states");
      for (const StateSample& ss : s.states) {
        telemetry::JsonWriter sw;
        sw.begin_object();
        sw.field("stream", static_cast<std::uint64_t>(ss.stream));
        sw.field("tuples", static_cast<std::uint64_t>(ss.stored_tuples));
        sw.field("probes", ss.probes);
        sw.field("migrations", ss.migrations);
        sw.field("ic", ss.index_config);
        sw.end_object();
        w.value_raw(std::move(sw).take());
      }
      w.end_array();
      w.end_object();
      tel->emit(telemetry::EventKind::kSample, 0, std::move(w).take());
    }
    result.samples.push_back(std::move(s));
  };

  auto check_backpressure = [&] {
    if (tel == nullptr || options_.backpressure_threshold == 0) return;
    if (backpressure_armed &&
        pending.size() >= options_.backpressure_threshold) {
      backpressure_armed = false;
      telemetry::JsonWriter w;
      w.begin_object();
      w.field("backlog", static_cast<std::uint64_t>(pending.size()));
      w.field("threshold",
              static_cast<std::uint64_t>(options_.backpressure_threshold));
      w.end_object();
      tel->emit(telemetry::EventKind::kBackpressure, 0, std::move(w).take());
    } else if (!backpressure_armed &&
               pending.size() <= options_.backpressure_threshold / 2) {
      backpressure_armed = true;
    }
  };

  auto finish_warmup = [&] {
    for (auto& stem : stems_) stem->finish_warmup();
    outputs_offset = outputs_total;
    warmup_done = true;
    take_sample(warmup_end);  // measurement-start baseline (t = 0)
  };

  // Drain up to `want` backlog arrivals into `batch`: WHERE selection is
  // applied (filtered arrivals are counted and, if sampled, traced), and
  // every sampled surviving arrival records a PendingSpan so its span can
  // resume when the batch routes. Shared by the batched virtual path and
  // the wall path.
  auto drain_batch = [&](std::size_t want) {
    for (std::size_t i = 0; i < want; ++i) {
      const Tuple arrival = pending.front();
      pending.pop_front();
      const bool sampled =
          trace_sample != 0 && (++drained_arrivals % trace_sample) == 0;
      if (!query_.selection(arrival.stream).matches(arrival, &meter_)) {
        ++result.arrivals_filtered;
        if (sampled) {
          const std::uint64_t id = tel->begin_span();
          emit_span_stage(id, arrival.stream, "arrival",
                          [&](telemetry::JsonWriter& w) {
                            w.field("backlog", static_cast<std::uint64_t>(
                                                   pending.size()));
                          });
          emit_span_stage(id, arrival.stream, "filtered", no_extra);
          tel->end_span();
        }
        continue;
      }
      if (sampled) {
        PendingSpan ps;
        ps.index = batch.size();
        ps.id = tel->begin_span();
        ps.start = std::chrono::steady_clock::now();
        emit_span_stage(ps.id, arrival.stream, "arrival",
                        [&](telemetry::JsonWriter& w) {
                          w.field("backlog",
                                  static_cast<std::uint64_t>(pending.size()));
                        });
        tel->end_span();  // suspended until the owning batch routes
        batch_spans.push_back(ps);
      }
      batch.push(arrival);
    }
    sync_queue_memory(pending.size());
  };

  while (clock_.now() < measure_end) {
    {
      telemetry::ScopedPhase drain_scope(profiler_, telemetry::Phase::kDrain);
      // Pull every arrival whose timestamp has passed into the backlog.
      while (lookahead.has_value() && lookahead->ts <= clock_.now()) {
        pending.push_back(*lookahead);
        lookahead = source.next();
      }
      sync_queue_memory(pending.size());
      check_backpressure();
      if (memory_.exhausted()) break;

      if (pending.empty() && !have_prefetched) {
        if (!lookahead.has_value()) break;  // source exhausted, system idle
        if (lookahead->ts >= measure_end) {
          clock_.advance_to(measure_end);
          break;
        }
        clock_.advance_to(lookahead->ts);  // idle until the next arrival
        continue;
      }
    }

    // Wall-clock engine (post-warm-up only, so the warm-up boundary below
    // stays on the tuple-at-a-time path): adopt the worker-drained batch or
    // drain inline, insert the whole mixed-stream batch up front, route it
    // as ONE partition under the per-root sequence horizon, and overlap the
    // next drain with the routing.
    if (options_.engine == EngineMode::kWall && warmup_done) {
      const std::size_t batch_cap =
          std::max<std::size_t>(options_.batch_size, 1);
      batch.clear();
      batch_spans.clear();
      if (have_prefetched) {
        // Adopt: merge the worker's WHERE-selection charges (counted on a
        // detached meter) and filtered total, and attribute its drain wall
        // time as off-thread overlap.
        std::swap(batch, prefetched.batch);
        have_prefetched = false;
        if (prefetched.meter.compares() > 0) {
          meter_.charge_compare(prefetched.meter.compares());
        }
        result.arrivals_filtered += prefetched.filtered;
        if (profiler_ != nullptr && prefetched.drain_wall_us > 0.0) {
          profiler_->record_offthread(telemetry::Phase::kDrain,
                                      prefetched.drain_wall_us);
        }
        sync_queue_memory(pending.size());
      } else {
        telemetry::ScopedPhase drain_scope(profiler_,
                                           telemetry::Phase::kDrain);
        drain_batch(std::min(batch_cap, pending.size()));
      }
      if (batch.empty()) continue;  // whole drain was filtered out

      {
        telemetry::ScopedPhase expiry_scope(profiler_,
                                            telemetry::Phase::kExpiry);
        for (auto& stem : stems_) stem->expire(clock_.now());
      }

      // Insert the whole batch, run by run (per-stream arrival order is
      // preserved — each STeM holds one stream, and runs appear in batch
      // order), collecting batch-order stored pointers for the horizon.
      wall_stored.resize(batch.size());
      {
        telemetry::ScopedPhase insert_scope(profiler_,
                                            telemetry::Phase::kInsert);
        for (std::size_t a = 0; a < batch.size();) {
          const std::size_t b = batch.run_end(a);
          stored_run.clear();
          stems_[batch.tuples[a].stream]->insert_batch(
              batch.tuples.data() + a, b - a, stored_run);
          std::copy(stored_run.begin(), stored_run.end(),
                    wall_stored.begin() + static_cast<std::ptrdiff_t>(a));
          a = b;
        }
      }
      wall_visibility.assign(wall_stored.data(), batch.size());

      const bool batch_has_span = !batch_spans.empty();
      if (batch_has_span) {
        tel->resume_span(batch_spans.front().id);
        for (const PendingSpan& ps : batch_spans) {
          emit_span_stage(ps.id, batch.tuples[ps.index].stream, "insert",
                          [&](telemetry::JsonWriter& w) {
                            w.field("batch", static_cast<std::uint64_t>(
                                                 batch.size()));
                          });
        }
      }

      // Kick the overlap worker: it pops and WHERE-filters the NEXT batch
      // from the backlog while the driver routes this one. The backlog
      // only ever holds due arrivals, so the worker needs no clock view;
      // its selection comparisons go to the detached local meter. The
      // driver does not touch `pending` or `prefetched` again until the
      // wait_idle below.
      bool worker_outstanding = false;
      if (overlap_pool_ != nullptr && !pending.empty()) {
        prefetched.batch.clear();
        prefetched.filtered = 0;
        prefetched.meter.reset_counts();
        prefetched.drain_wall_us = 0.0;
        const std::size_t want = std::min(batch_cap, pending.size());
        overlap_pool_->submit([this, &pending, &prefetched, want] {
          const auto t0 = std::chrono::steady_clock::now();
          for (std::size_t i = 0; i < want; ++i) {
            const Tuple arrival = pending.front();
            pending.pop_front();
            if (!query_.selection(arrival.stream)
                     .matches(arrival, &prefetched.meter)) {
              ++prefetched.filtered;
              continue;
            }
            prefetched.batch.push(arrival);
          }
          prefetched.drain_wall_us =
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
        });
        worker_outstanding = true;
      }

      const bool want_rows = options_.collect_rows &&
                             result.rows.size() < options_.max_collected_rows;
      const bool want_sink = want_rows || options_.on_result != nullptr;
      batch_sink.clear();
      std::uint64_t produced = 0;
      {
        telemetry::ScopedPhase route_scope(profiler_,
                                           telemetry::Phase::kRoute);
        produced = eddy_->route_batch(
            wall_stored.data(), batch.done.data(), batch.size(),
            want_sink ? &batch_sink : nullptr,
            batch_has_span ? batch_spans.front().index
                           : EddyRouter::kNoSpanRoot,
            &wall_visibility);
        for (const JoinResult& jr : batch_sink) {
          if (options_.on_result) options_.on_result(jr);
          if (want_rows && result.rows.size() < options_.max_collected_rows) {
            result.rows.push_back(query_.projection().apply(jr.members));
          }
        }
      }
      outputs_total += produced;
      if (batch_has_span) {
        for (const PendingSpan& ps : batch_spans) {
          const auto latency_ns =
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - ps.start)
                  .count();
          emit_span_stage(ps.id, batch.tuples[ps.index].stream, "done",
                          [&](telemetry::JsonWriter& w) {
                            w.field("latency_ns",
                                    static_cast<std::uint64_t>(latency_ns));
                            w.field("run_results", produced);
                            w.field("batched", true);
                          });
          span_latency_hist_->observe(static_cast<double>(latency_ns) /
                                      1000.0);
        }
        tel->end_span();
      }
      arrivals_measured += batch.size();

      if (worker_outstanding) {
        telemetry::ScopedPhase wait_scope(profiler_,
                                          telemetry::Phase::kOverlapWait);
        overlap_pool_->wait_idle();
        have_prefetched = true;
      }

      if (memory_.exhausted()) break;
      while (clock_.now() >= next_sample && next_sample <= measure_end) {
        take_sample(next_sample);
        next_sample += options_.sample_every;
      }
      continue;
    }

    // Batched drain (post-warm-up only, so the warm-up boundary below is
    // always hit on the tuple-at-a-time path): pull up to batch_size ready
    // arrivals, expire every window once, then batch-insert and
    // batch-route each consecutive same-stream run.
    if (options_.batch_size > 1 && warmup_done) {
      batch.clear();
      batch_spans.clear();
      {
        telemetry::ScopedPhase drain_scope(profiler_,
                                           telemetry::Phase::kDrain);
        drain_batch(std::min(options_.batch_size, pending.size()));
      }
      if (batch.empty()) continue;  // whole drain was filtered out

      {
        telemetry::ScopedPhase expiry_scope(profiler_,
                                            telemetry::Phase::kExpiry);
        for (auto& stem : stems_) stem->expire(clock_.now());
      }
      const bool want_rows = options_.collect_rows &&
                             result.rows.size() < options_.max_collected_rows;
      const bool want_sink = want_rows || options_.on_result != nullptr;
      batch_sink.clear();
      {
        telemetry::ScopedPhase route_scope(profiler_,
                                           telemetry::Phase::kRoute);
        // Spans are listed in batch-index order; walk them run by run.
        std::size_t span_cursor = 0;
        for (std::size_t a = 0; a < batch.size();) {
          const std::size_t b = batch.run_end(a);
          const StreamId s = batch.tuples[a].stream;
          stored_run.clear();
          const std::size_t span_lo = span_cursor;
          while (span_cursor < batch_spans.size() &&
                 batch_spans[span_cursor].index < b) {
            ++span_cursor;
          }
          const bool run_has_span = span_lo < span_cursor;
          // The eddy attaches hop events to one active span per call; the
          // run's first sampled arrival carries it. Every sampled arrival
          // still gets its own insert/done stages and latency observation.
          if (run_has_span) tel->resume_span(batch_spans[span_lo].id);
          {
            telemetry::ScopedPhase insert_scope(profiler_,
                                                telemetry::Phase::kInsert);
            stems_[s]->insert_batch(batch.tuples.data() + a, b - a,
                                    stored_run);
          }
          for (std::size_t k = span_lo; k < span_cursor; ++k) {
            emit_span_stage(batch_spans[k].id, s, "insert",
                            [&](telemetry::JsonWriter& w) {
                              w.field("batch",
                                      static_cast<std::uint64_t>(b - a));
                            });
          }
          const std::uint64_t produced = eddy_->route_batch(
              stored_run.data(), batch.done.data() + a, b - a,
              want_sink ? &batch_sink : nullptr,
              run_has_span ? batch_spans[span_lo].index - a
                           : EddyRouter::kNoSpanRoot);
          outputs_total += produced;
          for (std::size_t k = span_lo; k < span_cursor; ++k) {
            const auto latency =
                std::chrono::steady_clock::now() - batch_spans[k].start;
            const auto latency_ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(latency)
                    .count();
            emit_span_stage(batch_spans[k].id, s, "done",
                            [&](telemetry::JsonWriter& w) {
                              w.field("latency_ns", static_cast<std::uint64_t>(
                                                        latency_ns));
                              w.field("run_results", produced);
                              w.field("batched", true);
                            });
            span_latency_hist_->observe(static_cast<double>(latency_ns) /
                                        1000.0);
          }
          if (run_has_span) tel->end_span();
          a = b;
        }
        for (const JoinResult& jr : batch_sink) {
          if (options_.on_result) options_.on_result(jr);
          if (want_rows && result.rows.size() < options_.max_collected_rows) {
            result.rows.push_back(query_.projection().apply(jr.members));
          }
        }
      }
      arrivals_measured += batch.size();

      if (memory_.exhausted()) break;
      while (clock_.now() >= next_sample && next_sample <= measure_end) {
        take_sample(next_sample);
        next_sample += options_.sample_every;
      }
      continue;
    }

    const Tuple arrival = pending.front();
    pending.pop_front();
    sync_queue_memory(pending.size());

    // Warm-up boundary: apply trained configurations exactly once.
    if (!warmup_done && clock_.now() >= warmup_end) finish_warmup();

    const bool sampled =
        trace_sample != 0 && (++drained_arrivals % trace_sample) == 0;
    std::chrono::steady_clock::time_point span_start{};
    std::uint64_t span_id = 0;
    if (sampled) {
      span_start = std::chrono::steady_clock::now();
      span_id = tel->begin_span();
      emit_span_stage(span_id, arrival.stream, "arrival",
                      [&](telemetry::JsonWriter& w) {
                        w.field("backlog",
                                static_cast<std::uint64_t>(pending.size()));
                      });
    }

    // WHERE-clause selection: filtered tuples are neither stored nor
    // routed (the paper's S of SPJ happens before the join network).
    if (!query_.selection(arrival.stream).matches(arrival, &meter_)) {
      if (warmup_done) ++result.arrivals_filtered;
      if (sampled) {
        emit_span_stage(span_id, arrival.stream, "filtered", no_extra);
        tel->end_span();
      }
      continue;
    }

    // Expire all windows to the current time, store, then route.
    {
      telemetry::ScopedPhase expiry_scope(profiler_,
                                          telemetry::Phase::kExpiry);
      for (auto& stem : stems_) stem->expire(clock_.now());
    }
    const Tuple* stored;
    {
      telemetry::ScopedPhase insert_scope(profiler_,
                                          telemetry::Phase::kInsert);
      stored = stems_[arrival.stream]->insert(arrival);
    }
    if (sampled) {
      emit_span_stage(span_id, arrival.stream, "insert", no_extra);
    }
    const bool want_rows = options_.collect_rows && warmup_done &&
                           result.rows.size() < options_.max_collected_rows;
    std::uint64_t produced = 0;
    {
      telemetry::ScopedPhase route_scope(profiler_, telemetry::Phase::kRoute);
      if (want_rows || options_.on_result) {
        std::vector<JoinResult> sink;
        produced = eddy_->route(stored, &sink);
        for (const JoinResult& jr : sink) {
          if (options_.on_result) options_.on_result(jr);
          if (want_rows && result.rows.size() < options_.max_collected_rows) {
            result.rows.push_back(query_.projection().apply(jr.members));
          }
        }
      } else {
        produced = eddy_->route(stored);
      }
    }
    outputs_total += produced;
    if (sampled) {
      const auto latency_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - span_start)
              .count();
      emit_span_stage(span_id, arrival.stream, "done",
                      [&](telemetry::JsonWriter& w) {
                        w.field("latency_ns",
                                static_cast<std::uint64_t>(latency_ns));
                        w.field("run_results", produced);
                        w.field("batched", false);
                      });
      span_latency_hist_->observe(static_cast<double>(latency_ns) / 1000.0);
      tel->end_span();
    }
    if (warmup_done) ++arrivals_measured;

    if (memory_.exhausted()) break;

    while (warmup_done && clock_.now() >= next_sample &&
           next_sample <= measure_end) {
      take_sample(next_sample);
      next_sample += options_.sample_every;
    }
  }

  if (!warmup_done) finish_warmup();

  const TimeMicros end_now = std::min(clock_.now(), measure_end);
  if (memory_.exhausted()) {
    result.died_at = end_now - warmup_end;
    if (tel != nullptr) emit_oom_event();
  } else {
    result.completed = clock_.now() >= measure_end || !lookahead.has_value();
  }
  take_sample(end_now >= warmup_end ? end_now : warmup_end);

  result.outputs = outputs_total - outputs_offset;
  result.arrivals = arrivals_measured;
  result.arrivals_dropped = pending.size();
  if (have_prefetched) {
    // Wall overlap: the worker had already popped these arrivals off the
    // backlog when the run ended; they were never routed (their selection
    // charges were never merged either), so they count as dropped.
    result.arrivals_dropped += prefetched.batch.size() + prefetched.filtered;
  }
  result.peak_memory = memory_.peak();
  result.charged_us = meter_.charged_us();
  result.routing_decisions = meter_.routes();
  for (const auto& stem : stems_) {
    StateSummary s;
    s.stream = stem->stream();
    s.stored_tuples = stem->stored_tuples();
    s.probes = stem->probes_served();
    s.migrations = stem->migrations();
    s.suppressed = stem->suppressed();
    s.migration_pause_us = stem->migration_pause_us();
    s.state_bytes = stem->state_bytes();
    s.shards = stem->shard_count();
    s.shard_imbalance = stem->shard_imbalance();
    s.final_index = stem->physical_index().name();
    result.states.push_back(std::move(s));
  }
  if (tel != nullptr) {
    telemetry::JsonWriter w;
    w.begin_object();
    w.field("outputs", result.outputs);
    w.field("arrivals", result.arrivals);
    w.field("dropped", result.arrivals_dropped);
    w.field("completed", result.completed);
    w.field("died", result.died_at.has_value());
    w.field("peak_memory", static_cast<std::uint64_t>(result.peak_memory));
    w.field("charged_us", result.charged_us);
    w.end_object();
    tel->emit(telemetry::EventKind::kRunEnd, 0, std::move(w).take());
  }
  if (run_wall_gauge_ != nullptr) {
    run_wall_gauge_->set(std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - run_wall_t0)
                             .count());
  }
  return result;
}

}  // namespace amri::engine
