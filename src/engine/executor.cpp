#include "engine/executor.hpp"

#include <utility>
#include <vector>

#include "engine/run_loop.hpp"

namespace amri::engine {

namespace {

// The single-query routing sink: WHERE admission against the one QuerySpec
// and routing through the one eddy. Result handling replicates the
// pre-unification Executor::run exactly — the row cap is re-checked per
// append and on_result fires for every complete join result (warm-up
// included), so single-query runs through the shared core stay bit-for-bit
// identical.
class SingleQuerySink final : public RoutingSink {
 public:
  SingleQuerySink(const QuerySpec& query, EddyRouter& eddy,
                  const ExecutorOptions& options)
      : query_(query), eddy_(eddy), options_(options) {}

  bool admit(const Tuple& arrival, CostMeter& meter,
             std::vector<std::uint64_t>* detached_accepts) override {
    (void)detached_accepts;  // one query: admission IS the accept set
    return query_.selection(arrival.stream).matches(arrival, &meter);
  }

  std::uint64_t route_one(const Tuple* stored, bool measured) override {
    const bool want_rows = options_.collect_rows && measured &&
                           rows_.size() < options_.max_collected_rows;
    if (want_rows || options_.on_result) {
      std::vector<JoinResult> sink;
      const std::uint64_t produced = eddy_.route(stored, &sink);
      deliver(sink, want_rows);
      return produced;
    }
    return eddy_.route(stored);
  }

  std::uint64_t route_batch(const Tuple* const* stored,
                            const std::uint32_t* done, std::size_t first,
                            std::size_t n, std::size_t span_root,
                            const BatchVisibility* visibility) override {
    (void)first;  // one query: every admitted slot routes through eddy_
    const bool want_rows =
        options_.collect_rows && rows_.size() < options_.max_collected_rows;
    const bool want_sink = want_rows || options_.on_result != nullptr;
    batch_sink_.clear();
    const std::uint64_t produced = eddy_.route_batch(
        stored, done, n, want_sink ? &batch_sink_ : nullptr,
        span_root == kNoSpanRoot ? EddyRouter::kNoSpanRoot : span_root,
        visibility);
    deliver(batch_sink_, want_rows);
    return produced;
  }

  void take_rows(
      std::vector<SmallVector<Value, kInlineAttrs>>& rows) override {
    rows = std::move(rows_);
  }

 private:
  void deliver(const std::vector<JoinResult>& results, bool want_rows) {
    for (const JoinResult& jr : results) {
      if (options_.on_result) options_.on_result(jr);
      if (want_rows && rows_.size() < options_.max_collected_rows) {
        rows_.push_back(query_.projection().apply(jr.members));
      }
    }
  }

  const QuerySpec& query_;
  EddyRouter& eddy_;
  const ExecutorOptions& options_;
  std::vector<JoinResult> batch_sink_;  ///< reused per-call result arena
  std::vector<SmallVector<Value, kInlineAttrs>> rows_;
};

}  // namespace

Executor::Executor(const QuerySpec& query, ExecutorOptions options)
    : query_(query), options_(std::move(options)), rt_(options_) {
  const index::CostModel model(options_.model_params);
  stems_.reserve(query_.num_streams());
  std::vector<StemOperator*> stem_ptrs;
  for (StreamId s = 0; s < query_.num_streams(); ++s) {
    stems_.push_back(std::make_unique<StemOperator>(
        s, query_.layout(s), query_.window(), options_.stem, model,
        &rt_.meter, &rt_.memory, options_.telemetry));
    stem_ptrs.push_back(stems_.back().get());
  }
  eddy_ = std::make_unique<EddyRouter>(query_, std::move(stem_ptrs),
                                       options_.eddy, &rt_.meter,
                                       options_.telemetry);
}

RunResult Executor::run(TupleSource& source) {
  SingleQuerySink sink(query_, *eddy_, options_);
  return run_pipeline(options_, rt_, stems_, sink, source);
}

}  // namespace amri::engine
