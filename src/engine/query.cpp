#include "engine/query.hpp"

#include <cassert>
#include <stdexcept>

namespace amri::engine {

QuerySpec::QuerySpec(std::vector<Schema> schemas,
                     std::vector<JoinPredicate> predicates, TimeMicros window)
    : schemas_(std::move(schemas)),
      predicates_(std::move(predicates)),
      window_(window) {
  assert(schemas_.size() >= 1);
  assert(schemas_.size() <= 31);  // done-mask fits a uint32
  // Derive each state's JAS: the attributes referenced by predicates, in
  // predicate order, deduplicated.
  layouts_.resize(schemas_.size());
  std::vector<std::vector<AttrId>> jas_attrs(schemas_.size());
  for (const JoinPredicate& p : predicates_) {
    if (p.left_stream >= schemas_.size() || p.right_stream >= schemas_.size()) {
      throw std::invalid_argument("predicate references unknown stream");
    }
    auto add_side = [&](StreamId s, AttrId a, StreamId peer_s, AttrId peer_a) {
      auto& attrs = jas_attrs[s];
      for (std::size_t i = 0; i < attrs.size(); ++i) {
        if (attrs[i] == a) {
          // A join attribute may appear in only one predicate per state;
          // multiple peers for one attribute would make pattern_for
          // ambiguous. The paper's workloads satisfy this.
          if (layouts_[s].peers[i].stream != peer_s ||
              layouts_[s].peers[i].attr != peer_a) {
            throw std::invalid_argument(
                "attribute participates in multiple predicates");
          }
          return;
        }
      }
      attrs.push_back(a);
      layouts_[s].peers.push_back(StateLayout::Peer{peer_s, peer_a});
    };
    add_side(p.left_stream, p.left_attr, p.right_stream, p.right_attr);
    add_side(p.right_stream, p.right_attr, p.left_stream, p.left_attr);
  }
  for (StreamId s = 0; s < schemas_.size(); ++s) {
    layouts_[s].jas = index::JoinAttributeSet(std::move(jas_attrs[s]));
  }
  selections_.resize(schemas_.size());
}

QuerySpec make_complete_join_query(std::size_t k, TimeMicros window) {
  assert(k >= 2);
  // Stream i's attributes: one join attribute per other stream, in order of
  // the peer's id. Attribute index of peer j within stream i:
  // j < i ? j : j - 1.
  auto attr_of = [&](StreamId i, StreamId j) -> AttrId {
    return j < i ? j : j - 1;
  };
  std::vector<Schema> schemas;
  schemas.reserve(k);
  for (StreamId i = 0; i < k; ++i) {
    std::vector<std::string> names;
    for (StreamId j = 0; j < k; ++j) {
      if (j == i) continue;
      names.push_back("j" + std::to_string(std::min(i, j)) +
                      std::to_string(std::max(i, j)));
    }
    schemas.emplace_back("Stream" + std::string(1, static_cast<char>('A' + i)),
                         std::move(names));
  }
  std::vector<JoinPredicate> preds;
  for (StreamId i = 0; i < k; ++i) {
    for (StreamId j = i + 1; j < k; ++j) {
      preds.push_back(JoinPredicate{i, attr_of(i, j), j, attr_of(j, i)});
    }
  }
  return QuerySpec(std::move(schemas), std::move(preds), window);
}

}  // namespace amri::engine
