// Selection and projection — the S and P of the paper's SPJ template
// (§II, Figure 2). Selections are per-stream predicates against constants
// applied at ingest (before a tuple is stored or routed); projection picks
// the (stream, attribute) columns a complete join result emits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/cost_meter.hpp"
#include "common/small_vector.hpp"
#include "common/tuple.hpp"

namespace amri::engine {

enum class CompareOp : std::uint8_t {
  kEq = 0,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

std::string compare_op_name(CompareOp op);

/// One WHERE-clause predicate against a constant: attr <op> constant.
struct FilterPredicate {
  AttrId attr = 0;
  CompareOp op = CompareOp::kEq;
  Value constant = 0;

  bool matches(const Tuple& t) const {
    const Value v = t.at(attr);
    switch (op) {
      case CompareOp::kEq: return v == constant;
      case CompareOp::kNe: return v != constant;
      case CompareOp::kLt: return v < constant;
      case CompareOp::kLe: return v <= constant;
      case CompareOp::kGt: return v > constant;
      case CompareOp::kGe: return v >= constant;
    }
    return false;
  }
};

/// Conjunction of filters for one stream. Charges one comparison per
/// evaluated predicate; evaluation short-circuits on the first failure.
class Selection {
 public:
  Selection() = default;
  explicit Selection(std::vector<FilterPredicate> predicates)
      : predicates_(std::move(predicates)) {}

  bool empty() const { return predicates_.empty(); }
  std::size_t size() const { return predicates_.size(); }
  const std::vector<FilterPredicate>& predicates() const { return predicates_; }

  bool matches(const Tuple& t, CostMeter* meter = nullptr) const {
    for (const FilterPredicate& p : predicates_) {
      if (meter != nullptr) meter->charge_compare();
      if (!p.matches(t)) return false;
    }
    return true;
  }

 private:
  std::vector<FilterPredicate> predicates_;
};

/// One output column of the SELECT clause.
struct OutputColumn {
  StreamId stream = 0;
  AttrId attr = 0;
};

/// Projection over a complete join result. An empty projection means
/// SELECT * (all attributes of all streams, in stream order).
class Projection {
 public:
  Projection() = default;
  explicit Projection(std::vector<OutputColumn> columns)
      : columns_(std::move(columns)) {}

  bool select_star() const { return columns_.empty(); }
  const std::vector<OutputColumn>& columns() const { return columns_; }

  /// Materialise the projected row from per-stream member tuples
  /// (`members[s]` may be null only for columns not referenced).
  SmallVector<Value, kInlineAttrs> apply(
      const SmallVector<const Tuple*, 8>& members) const {
    SmallVector<Value, kInlineAttrs> row;
    if (select_star()) {
      for (std::size_t s = 0; s < members.size(); ++s) {
        if (members[s] == nullptr) continue;
        for (std::size_t a = 0; a < members[s]->values.size(); ++a) {
          row.push_back(members[s]->values[a]);
        }
      }
      return row;
    }
    for (const OutputColumn& c : columns_) {
      row.push_back(members[c.stream]->at(c.attr));
    }
    return row;
  }

 private:
  std::vector<OutputColumn> columns_;
};

}  // namespace amri::engine
