// Run metrics: the cumulative-throughput time series behind the paper's
// Figures 6 and 7, plus per-run summary counters.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/tuple.hpp"
#include "common/types.hpp"

namespace amri::engine {

/// One point on the throughput curve.
struct Sample {
  TimeMicros t = 0;             ///< virtual time since measurement start
  std::uint64_t outputs = 0;    ///< cumulative join results
  std::size_t memory_bytes = 0; ///< tracked memory at sample time
  std::size_t backlog = 0;      ///< queued, unprocessed arrivals
};

struct StateSummary {
  StreamId stream = 0;
  std::size_t stored_tuples = 0;
  std::uint64_t probes = 0;
  std::uint64_t migrations = 0;
  std::string final_index;
};

/// Result of one executor run.
struct RunResult {
  std::vector<Sample> samples;
  std::uint64_t outputs = 0;          ///< results in the measured phase
  std::uint64_t arrivals = 0;         ///< arrivals processed (measured)
  std::uint64_t arrivals_filtered = 0;  ///< rejected by WHERE selections
  std::uint64_t arrivals_dropped = 0; ///< unprocessed when the run ended
  std::optional<TimeMicros> died_at;  ///< OOM time (measured-phase clock)
  bool completed = false;             ///< ran the full duration
  std::size_t peak_memory = 0;
  double charged_us = 0.0;            ///< total modelled work
  std::uint64_t routing_decisions = 0;  ///< fresh eddy routing decisions
  std::vector<StateSummary> states;
  /// First projected result rows (filled when ExecutorOptions::collect_rows
  /// is set; capped at ExecutorOptions::max_collected_rows).
  std::vector<SmallVector<Value, kInlineAttrs>> rows;

  /// Outputs at or before measured time `t` (samples are monotone).
  std::uint64_t outputs_at(TimeMicros t) const {
    std::uint64_t best = 0;
    for (const Sample& s : samples) {
      if (s.t <= t) best = s.outputs;
    }
    return best;
  }
};

}  // namespace amri::engine
