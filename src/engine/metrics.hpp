// Run metrics: the cumulative-throughput time series behind the paper's
// Figures 6 and 7, plus per-run summary counters.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/table_printer.hpp"
#include "common/tuple.hpp"
#include "common/types.hpp"

namespace amri::engine {

/// Per-state detail captured with each throughput sample.
struct StateSample {
  StreamId stream = 0;
  std::size_t stored_tuples = 0;
  std::uint64_t probes = 0;       ///< cumulative probes served
  std::uint64_t migrations = 0;   ///< cumulative migrations applied
  std::string index_config;       ///< current physical configuration
};

/// One point on the throughput curve.
struct Sample {
  TimeMicros t = 0;             ///< virtual time since measurement start
  std::uint64_t outputs = 0;    ///< cumulative join results
  std::size_t memory_bytes = 0; ///< tracked memory at sample time
  std::size_t backlog = 0;      ///< queued, unprocessed arrivals
  /// Per-state snapshots, indexed by StreamId. Populated only when the run
  /// has telemetry attached (ExecutorOptions::telemetry); empty otherwise.
  std::vector<StateSample> states;
  /// Multi-query runs only: cumulative join results attributed to each
  /// query at this sample (same measured-phase delta convention as
  /// `outputs`; `outputs` is their sum). Empty for single-query runs.
  std::vector<std::uint64_t> per_query_outputs;
};

struct StateSummary {
  StreamId stream = 0;
  std::size_t stored_tuples = 0;
  std::uint64_t probes = 0;
  std::uint64_t migrations = 0;
  /// Tuning decisions whose migration was blocked by an enabled guardrail
  /// (hysteresis / amortization / budgets); 0 with guardrails off.
  std::uint64_t suppressed = 0;
  /// Total modelled virtual time this state spent paused in migrations.
  double migration_pause_us = 0.0;
  /// Final logical footprint: window store plus index structure bytes.
  std::size_t state_bytes = 0;
  /// Index shards behind this state (1 = unsharded).
  std::size_t shards = 1;
  /// Max/mean shard-size skew at run end (1.0 = balanced or unsharded).
  double shard_imbalance = 1.0;
  std::string final_index;
};

/// Result of one executor run.
struct RunResult {
  std::vector<Sample> samples;
  std::uint64_t outputs = 0;          ///< results in the measured phase
  std::uint64_t arrivals = 0;         ///< arrivals processed (measured)
  std::uint64_t arrivals_filtered = 0;  ///< rejected by WHERE selections
  std::uint64_t arrivals_dropped = 0; ///< unprocessed when the run ended
  std::optional<TimeMicros> died_at;  ///< OOM time (measured-phase clock)
  bool completed = false;             ///< ran the full duration
  std::size_t peak_memory = 0;
  double charged_us = 0.0;            ///< total modelled work
  std::uint64_t routing_decisions = 0;  ///< fresh eddy routing decisions
  std::vector<StateSummary> states;
  /// First projected result rows (filled when ExecutorOptions::collect_rows
  /// is set; capped at ExecutorOptions::max_collected_rows).
  std::vector<SmallVector<Value, kInlineAttrs>> rows;

  /// Outputs at or before measured time `t` (samples are monotone).
  std::uint64_t outputs_at(TimeMicros t) const {
    std::uint64_t best = 0;
    for (const Sample& s : samples) {
      if (s.t <= t) best = s.outputs;
    }
    return best;
  }
};

/// Render the per-state summaries as an aligned table. `names[s]`, when
/// provided, labels stream s (defaults to "S<s>").
inline TablePrinter make_state_table(
    const std::vector<StateSummary>& states,
    const std::vector<std::string>& names = {}) {
  TablePrinter table({"state", "tuples", "probes", "migrations", "suppr",
                      "pause_ms", "mem_kib", "shards", "skew", "final index"});
  for (const StateSummary& s : states) {
    const std::string name = s.stream < names.size()
                                 ? names[s.stream]
                                 : "S" + std::to_string(s.stream);
    table.add_row({name,
                   TablePrinter::fmt_int(
                       static_cast<long long>(s.stored_tuples)),
                   TablePrinter::fmt_int(static_cast<long long>(s.probes)),
                   TablePrinter::fmt_int(static_cast<long long>(s.migrations)),
                   TablePrinter::fmt_int(static_cast<long long>(s.suppressed)),
                   TablePrinter::fmt(s.migration_pause_us / 1000.0, 2),
                   TablePrinter::fmt(
                       static_cast<double>(s.state_bytes) / 1024.0, 1),
                   TablePrinter::fmt_int(static_cast<long long>(s.shards)),
                   TablePrinter::fmt(s.shard_imbalance, 2),
                   s.final_index});
  }
  return table;
}

}  // namespace amri::engine
