// Multi-query AMR processing (paper §II: "our proposed logic equally
// applies to multiple SPJ queries"). Several SPJ queries run over the same
// streams; each stream has ONE shared STeM state whose join attribute set
// is the union of the attributes any query joins on, and one AMRI index
// (or baseline) serves the union of all queries' access patterns — the
// multi-query workload diversity that motivates AMRI's single versatile
// index.
//
// Built on the shared run-loop core (engine/run_loop.hpp): a multi-query
// routing sink admits arrivals against every query's WHERE selection,
// records per-arrival accept sets, and routes each query's sub-array
// through that query's eddy. Multi-query runs therefore inherit the full
// single-query feature matrix — sharded states, the batched pipeline, the
// wall-clock engine, telemetry (per-query labeled metrics, trace spans,
// profiler phases, per-query sample deltas) and the guardrailed tuner.
// Each query gets its own assessor set on the shared STeM
// (StemOptions::queries); tuning epochs merge the per-query snapshots so
// ONE shared tuner scores candidate ICs against the union workload, with
// per-query request shares attached to every decision.
//
// Constraints (asserted): all queries span the same stream universe and
// share the window length (the paper's default-window-length template),
// and at most 64 queries share an executor (accept sets are bitmasks).
#pragma once

#include <memory>
#include <vector>

#include "engine/executor.hpp"

namespace amri::engine {

struct MultiRunResult {
  /// Totals across queries. Every sample additionally carries the
  /// per-query output deltas (Sample::per_query_outputs), so dashboards
  /// can plot each query's throughput curve from one run.
  RunResult combined;
  std::vector<std::uint64_t> per_query_outputs;  ///< measured-phase, by query
};

class MultiQueryExecutor {
 public:
  /// `queries` must all reference the same streams (ids and schemas) and
  /// window. The ExecutorOptions are applied to the shared states.
  MultiQueryExecutor(std::vector<QuerySpec> queries, ExecutorOptions options);

  // Eddies hold references into queries_: not copyable or movable.
  MultiQueryExecutor(const MultiQueryExecutor&) = delete;
  MultiQueryExecutor& operator=(const MultiQueryExecutor&) = delete;

  MultiRunResult run(TupleSource& source);

  const std::vector<std::unique_ptr<StemOperator>>& stems() const {
    return stems_;
  }
  const QuerySpec& query(std::size_t i) const { return queries_[i]; }
  std::size_t num_queries() const { return queries_.size(); }
  const EddyRouter& eddy(std::size_t i) const { return *eddies_[i]; }
  const VirtualClock& clock() const { return rt_.clock; }
  const MemoryTracker& memory() const { return rt_.memory; }
  const CostMeter& meter() const { return rt_.meter; }

  /// The shared (union) join attribute set of stream `s`.
  const index::JoinAttributeSet& shared_jas(StreamId s) const {
    return shared_layouts_[s].jas;
  }

 private:
  std::vector<QuerySpec> queries_;
  ExecutorOptions options_;
  /// The shared run-loop state (clock/meter/memory/pools/instruments).
  /// Constructed before stems_ — its construction finalises options_
  /// (fan-out pool, wall prefetch) and its pools must outlive every stem
  /// probe path.
  PipelineRuntime rt_;
  std::vector<StateLayout> shared_layouts_;  ///< union JAS per stream
  std::vector<std::unique_ptr<StemOperator>> stems_;
  std::vector<std::unique_ptr<EddyRouter>> eddies_;  ///< one per query
};

}  // namespace amri::engine
