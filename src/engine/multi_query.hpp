// Multi-query AMR processing (paper §II: "our proposed logic equally
// applies to multiple SPJ queries"). Several SPJ queries run over the same
// streams; each stream has ONE shared STeM state whose join attribute set
// is the union of the attributes any query joins on, and one AMRI index
// (or baseline) serves the union of all queries' access patterns — the
// multi-query workload diversity that motivates AMRI's single versatile
// index.
//
// Constraints (asserted): all queries span the same stream universe and
// share the window length (the paper's default-window-length template).
#pragma once

#include <memory>
#include <vector>

#include "engine/executor.hpp"

namespace amri::engine {

struct MultiRunResult {
  RunResult combined;                          ///< totals across queries
  std::vector<std::uint64_t> per_query_outputs;
};

class MultiQueryExecutor {
 public:
  /// `queries` must all reference the same streams (ids and schemas) and
  /// window. The ExecutorOptions are applied to the shared states.
  MultiQueryExecutor(std::vector<QuerySpec> queries, ExecutorOptions options);

  // Eddies hold references into queries_: not copyable or movable.
  MultiQueryExecutor(const MultiQueryExecutor&) = delete;
  MultiQueryExecutor& operator=(const MultiQueryExecutor&) = delete;

  MultiRunResult run(TupleSource& source);

  const std::vector<std::unique_ptr<StemOperator>>& stems() const {
    return stems_;
  }
  const QuerySpec& query(std::size_t i) const { return queries_[i]; }
  std::size_t num_queries() const { return queries_.size(); }
  const VirtualClock& clock() const { return clock_; }
  const MemoryTracker& memory() const { return memory_; }

  /// The shared (union) join attribute set of stream `s`.
  const index::JoinAttributeSet& shared_jas(StreamId s) const {
    return shared_layouts_[s].jas;
  }

 private:
  void sync_queue_memory(std::size_t backlog);

  std::vector<QuerySpec> queries_;
  ExecutorOptions options_;
  VirtualClock clock_;
  CostMeter meter_;
  MemoryTracker memory_;
  std::vector<StateLayout> shared_layouts_;  ///< union JAS per stream
  std::vector<std::unique_ptr<StemOperator>> stems_;
  std::vector<std::unique_ptr<EddyRouter>> eddies_;  ///< one per query
  std::size_t tracked_queue_bytes_ = 0;
};

}  // namespace amri::engine
