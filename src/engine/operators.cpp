#include "engine/operators.hpp"

namespace amri::engine {

std::string compare_op_name(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

}  // namespace amri::engine
