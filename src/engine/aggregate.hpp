// Aggregation over join results — the <agg-func-list> of the paper's SPJ
// query template (§II, Figure 2). An AggregateSink consumes complete join
// results, groups them by an optional key column, and maintains
// COUNT / SUM / MIN / MAX / AVG over a value column.
//
// The paper's evaluation measures raw join throughput, so aggregation sits
// on top of the executor (collect_rows / result sinks) rather than inside
// the eddy; it completes the query template for library users.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "engine/eddy.hpp"
#include "engine/operators.hpp"

namespace amri::engine {

enum class AggFunc : std::uint8_t {
  kCount = 0,
  kSum,
  kMin,
  kMax,
  kAvg,
};

std::string agg_func_name(AggFunc f);

/// Running aggregate state for one group.
struct AggState {
  std::uint64_t count = 0;
  Value sum = 0;
  Value min = std::numeric_limits<Value>::max();
  Value max = std::numeric_limits<Value>::min();

  void add(Value v) {
    ++count;
    sum += v;
    if (v < min) min = v;
    if (v > max) max = v;
  }

  double value(AggFunc f) const {
    switch (f) {
      case AggFunc::kCount: return static_cast<double>(count);
      case AggFunc::kSum: return static_cast<double>(sum);
      case AggFunc::kMin:
        return count == 0 ? 0.0 : static_cast<double>(min);
      case AggFunc::kMax:
        return count == 0 ? 0.0 : static_cast<double>(max);
      case AggFunc::kAvg:
        return count == 0 ? 0.0
                          : static_cast<double>(sum) /
                                static_cast<double>(count);
    }
    return 0.0;
  }
};

/// Grouped aggregation over join results.
///
///   AggregateSink sink(AggFunc::kSum, /*value=*/{0, 2},
///                      /*group_by=*/OutputColumn{1, 0});
///   ... sink.consume(result) per complete join ...
///   sink.groups() -> per-key AggState
class AggregateSink {
 public:
  /// `value` is the aggregated column (ignored for COUNT); `group_by`
  /// nullopt means one global group.
  AggregateSink(AggFunc func, OutputColumn value,
                std::optional<OutputColumn> group_by = std::nullopt)
      : func_(func), value_(value), group_by_(group_by) {}

  AggFunc func() const { return func_; }

  void consume(const JoinResult& r) {
    const Value key =
        group_by_ ? r.members[group_by_->stream]->at(group_by_->attr) : 0;
    const Value v = func_ == AggFunc::kCount
                        ? 0
                        : r.members[value_.stream]->at(value_.attr);
    groups_[key].add(v);
    ++consumed_;
  }

  void consume_all(const std::vector<JoinResult>& results) {
    for (const JoinResult& r : results) consume(r);
  }

  std::uint64_t consumed() const { return consumed_; }
  std::size_t group_count() const { return groups_.size(); }
  const std::map<Value, AggState>& groups() const { return groups_; }

  /// Aggregate value of one group (0 if absent).
  double value_of(Value key) const {
    const auto it = groups_.find(key);
    return it == groups_.end() ? 0.0 : it->second.value(func_);
  }

  /// Global aggregate across all groups (AVG is count-weighted).
  double total() const;

  void reset() {
    groups_.clear();
    consumed_ = 0;
  }

 private:
  AggFunc func_;
  OutputColumn value_;
  std::optional<OutputColumn> group_by_;
  std::map<Value, AggState> groups_;
  std::uint64_t consumed_ = 0;
};

}  // namespace amri::engine
