// Access-pattern request streams for assessment-only experiments: a
// drifting mixture of hot patterns over a universe of join attributes,
// used by the assessment micro-benchmarks and epsilon/theta ablations
// without running the full engine.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitops.hpp"
#include "common/rng.hpp"

namespace amri::workload {

struct RequestPhase {
  std::uint64_t length = 10000;  ///< requests in this phase
  /// (pattern, weight) mixture; remaining probability mass is spread
  /// uniformly over the whole universe (the exploration noise floor).
  std::vector<std::pair<AttrMask, double>> hot;
};

class RequestGenerator {
 public:
  RequestGenerator(AttrMask universe, std::vector<RequestPhase> phases,
                   std::uint64_t seed = 0x5eedULL);

  /// Next access pattern; cycles phase by phase, wrapping at the end.
  AttrMask next();

  std::uint64_t produced() const { return produced_; }
  std::size_t current_phase() const { return phase_; }

  /// A rotating drift over the `n`-attribute universe: each phase makes a
  /// different single-attribute pattern hot (weight `hot_weight`) plus its
  /// full-pattern companion.
  static RequestGenerator rotating(int n, std::size_t num_phases,
                                   std::uint64_t phase_length,
                                   double hot_weight,
                                   std::uint64_t seed = 0x5eedULL);

 private:
  AttrMask universe_;
  std::vector<RequestPhase> phases_;
  Rng rng_;
  std::uint64_t produced_ = 0;
  std::uint64_t into_phase_ = 0;
  std::size_t phase_ = 0;
};

}  // namespace amri::workload
