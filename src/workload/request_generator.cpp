#include "workload/request_generator.hpp"

#include <cassert>

namespace amri::workload {

RequestGenerator::RequestGenerator(AttrMask universe,
                                   std::vector<RequestPhase> phases,
                                   std::uint64_t seed)
    : universe_(universe), phases_(std::move(phases)), rng_(seed) {
  assert(!phases_.empty());
  assert(universe_ != 0);
}

AttrMask RequestGenerator::next() {
  const RequestPhase& ph = phases_[phase_];
  ++produced_;
  if (++into_phase_ >= ph.length) {
    into_phase_ = 0;
    phase_ = (phase_ + 1) % phases_.size();
  }
  double u = rng_.uniform01();
  for (const auto& [mask, weight] : ph.hot) {
    if (u < weight) return mask;
    u -= weight;
  }
  // Noise floor: uniform over all subsets of the universe. Enumerate the
  // k-th subset by spreading the draw over the universe's bits.
  AttrMask m = 0;
  for_each_bit(universe_, [&](unsigned i) {
    if (rng_.chance(0.5)) m |= (AttrMask{1} << i);
  });
  return m;
}

RequestGenerator RequestGenerator::rotating(int n, std::size_t num_phases,
                                            std::uint64_t phase_length,
                                            double hot_weight,
                                            std::uint64_t seed) {
  assert(n >= 1 && n <= 30);
  const AttrMask universe = low_bits(n);
  std::vector<RequestPhase> phases;
  phases.reserve(num_phases);
  for (std::size_t k = 0; k < num_phases; ++k) {
    RequestPhase ph;
    ph.length = phase_length;
    const AttrMask hot1 = AttrMask{1} << (k % static_cast<std::size_t>(n));
    ph.hot.push_back({hot1, hot_weight * 0.6});
    ph.hot.push_back({universe, hot_weight * 0.4});
    phases.push_back(std::move(ph));
  }
  return RequestGenerator(universe, std::move(phases), seed);
}

}  // namespace amri::workload
