#include "workload/trace.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace amri::workload {

void TraceRecorder::save(std::ostream& os) const {
  os << "AMRITRACE 1\n";
  for (const Tuple& t : trace_) {
    os << t.stream << ' ' << t.ts << ' ' << t.seq << ' ' << t.values.size();
    for (const Value v : t.values) os << ' ' << v;
    os << '\n';
  }
}

void TraceRecorder::save_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::invalid_argument("trace: cannot write " + path);
  save(os);
}

TraceReplaySource TraceReplaySource::load(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "AMRITRACE" || version != 1) {
    throw std::invalid_argument("trace: bad header (expected AMRITRACE 1)");
  }
  std::vector<Tuple> tuples;
  std::string line;
  std::getline(is, line);  // consume the header's newline
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream row(line);
    Tuple t;
    std::size_t n = 0;
    if (!(row >> t.stream >> t.ts >> t.seq >> n)) {
      // Blank/comment-only lines are fine; anything else is malformed.
      std::istringstream probe(line);
      std::string tok;
      if (probe >> tok) {
        throw std::invalid_argument("trace: malformed row at line " +
                                    std::to_string(lineno));
      }
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      Value v = 0;
      if (!(row >> v)) {
        throw std::invalid_argument("trace: truncated values at line " +
                                    std::to_string(lineno));
      }
      t.values.push_back(v);
    }
    if (!tuples.empty() && t.ts < tuples.back().ts) {
      throw std::invalid_argument(
          "trace: timestamps regress at line " + std::to_string(lineno));
    }
    tuples.push_back(std::move(t));
  }
  return TraceReplaySource(std::move(tuples));
}

TraceReplaySource TraceReplaySource::load_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::invalid_argument("trace: cannot read " + path);
  return load(is);
}

}  // namespace amri::workload
