#include "workload/distributions.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace amri::workload {

ZipfDistribution::ZipfDistribution(std::int64_t domain, double s)
    : domain_(domain), s_(s) {
  assert(domain >= 1);
  assert(s >= 0.0);
  cdf_.reserve(static_cast<std::size_t>(domain));
  double total = 0.0;
  for (std::int64_t k = 1; k <= domain; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
}

Value ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<Value>(it - cdf_.begin());
}

std::unique_ptr<Distribution> make_uniform(std::int64_t domain) {
  return std::make_unique<UniformDistribution>(domain);
}

std::unique_ptr<Distribution> make_zipf(std::int64_t domain, double s) {
  return std::make_unique<ZipfDistribution>(domain, s);
}

}  // namespace amri::workload
