#include "workload/scenario.hpp"

namespace amri::workload {

Scenario::Scenario(ScenarioOptions options)
    : options_(options),
      query_(engine::make_complete_join_query(
          options.streams, seconds_to_micros(options.window_seconds))),
      schedule_(PhaseSchedule::rotating(
          query_.predicates().size(), options.num_phases,
          seconds_to_micros(options.phase_seconds), options.hot_domain,
          options.cold_domain)) {}

std::unique_ptr<SyntheticGenerator> Scenario::make_source(
    std::uint64_t seed_offset) const {
  GeneratorOptions gopts;
  gopts.rates_per_sec.assign(options_.streams, options_.rate_per_sec);
  gopts.end = options_.generate_seconds > 0.0
                  ? seconds_to_micros(options_.generate_seconds)
                  : 0;
  gopts.seed = options_.seed + seed_offset;
  return std::make_unique<SyntheticGenerator>(query_, schedule_, gopts);
}

engine::ExecutorOptions Scenario::default_executor_options() const {
  engine::ExecutorOptions eopts;
  eopts.model_params.lambda_d = options_.rate_per_sec;
  eopts.model_params.lambda_r = options_.rate_per_sec * options_.streams;
  eopts.model_params.window_units = options_.window_seconds;
  eopts.model_params.hash_cost = eopts.costs.hash_cost_us;
  eopts.model_params.compare_cost = eopts.costs.compare_cost_us;
  eopts.model_params.bucket_cost = eopts.costs.bucket_visit_cost_us;
  return eopts;
}

}  // namespace amri::workload
