// Phase schedules: time-varying join selectivities (paper §V: "synthetic
// data in which the selectivities of joining one stream to another adapt
// over time"). Each join predicate draws both endpoints from a shared
// domain; a smaller domain means more matches (a less selective join).
// Phases change the per-predicate domains, so the router's preferred query
// paths — and therefore the access-pattern workload each state sees —
// shift during the run.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace amri::workload {

/// Per-phase settings: one value domain per join predicate.
struct Phase {
  TimeMicros start = 0;
  std::vector<std::int64_t> predicate_domains;
};

class PhaseSchedule {
 public:
  PhaseSchedule() = default;
  explicit PhaseSchedule(std::vector<Phase> phases) : phases_(std::move(phases)) {
    assert(!phases_.empty());
    for (std::size_t i = 1; i < phases_.size(); ++i) {
      assert(phases_[i].start > phases_[i - 1].start);
    }
  }

  std::size_t num_phases() const { return phases_.size(); }
  const Phase& phase(std::size_t i) const { return phases_[i]; }

  /// Index of the phase active at time `t` (clamps to first/last phase).
  std::size_t phase_index_at(TimeMicros t) const {
    std::size_t idx = 0;
    for (std::size_t i = 0; i < phases_.size(); ++i) {
      if (phases_[i].start <= t) idx = i;
    }
    return idx;
  }

  /// Domain of predicate `p` at time `t`.
  std::int64_t domain_at(TimeMicros t, std::size_t p) const {
    const Phase& ph = phases_[phase_index_at(t)];
    assert(p < ph.predicate_domains.size());
    return ph.predicate_domains[p];
  }

  /// A rotating schedule over `num_predicates` predicates: each phase lasts
  /// `phase_length`; in phase k, predicate (k mod num_predicates) is the
  /// "hot" (low-selectivity) one with `hot_domain` values, all others use
  /// `cold_domain`. This is the drift pattern the paper's evaluation needs:
  /// the best route keeps changing.
  static PhaseSchedule rotating(std::size_t num_predicates,
                                std::size_t num_phases,
                                TimeMicros phase_length,
                                std::int64_t hot_domain,
                                std::int64_t cold_domain);

 private:
  std::vector<Phase> phases_;
};

}  // namespace amri::workload
