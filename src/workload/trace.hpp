// Workload trace capture and replay: record the exact arrival sequence of
// any TupleSource to a portable text format and replay it later —
// bit-identical reruns across machines, the reproduction workflow the
// paper's experiments imply ("the synthetic data set and query were run").
//
// Format (line-oriented, '#' comments):
//   AMRITRACE 1
//   <stream> <ts_micros> <seq> <n> <v1> ... <vn>
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "engine/tuple_source.hpp"

namespace amri::workload {

/// Pass-through source that remembers everything it forwarded.
class TraceRecorder final : public engine::TupleSource {
 public:
  /// `inner` must outlive the recorder.
  explicit TraceRecorder(engine::TupleSource& inner) : inner_(&inner) {}

  std::optional<Tuple> next() override {
    auto t = inner_->next();
    if (t) trace_.push_back(*t);
    return t;
  }

  const std::vector<Tuple>& trace() const { return trace_; }

  /// Serialise everything recorded so far.
  void save(std::ostream& os) const;
  void save_file(const std::string& path) const;

 private:
  engine::TupleSource* inner_;
  std::vector<Tuple> trace_;
};

/// Replays a recorded trace (from memory, a stream, or a file).
class TraceReplaySource final : public engine::TupleSource {
 public:
  explicit TraceReplaySource(std::vector<Tuple> tuples)
      : tuples_(std::move(tuples)) {}

  /// Parse the AMRITRACE format; throws std::invalid_argument on malformed
  /// input (bad header, truncated rows, non-numeric fields).
  static TraceReplaySource load(std::istream& is);
  static TraceReplaySource load_file(const std::string& path);

  std::optional<Tuple> next() override {
    if (pos_ >= tuples_.size()) return std::nullopt;
    return tuples_[pos_++];
  }

  std::size_t size() const { return tuples_.size(); }
  void rewind() { pos_ = 0; }

 private:
  std::vector<Tuple> tuples_;
  std::size_t pos_ = 0;
};

}  // namespace amri::workload
