#include "workload/phase_schedule.hpp"

namespace amri::workload {

PhaseSchedule PhaseSchedule::rotating(std::size_t num_predicates,
                                      std::size_t num_phases,
                                      TimeMicros phase_length,
                                      std::int64_t hot_domain,
                                      std::int64_t cold_domain) {
  assert(num_predicates >= 1);
  assert(num_phases >= 1);
  std::vector<Phase> phases;
  phases.reserve(num_phases);
  for (std::size_t k = 0; k < num_phases; ++k) {
    Phase ph;
    ph.start = static_cast<TimeMicros>(k) * phase_length;
    ph.predicate_domains.assign(num_predicates, cold_domain);
    ph.predicate_domains[k % num_predicates] = hot_domain;
    phases.push_back(std::move(ph));
  }
  return PhaseSchedule(std::move(phases));
}

}  // namespace amri::workload
