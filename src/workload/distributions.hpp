// Value distributions for synthetic stream generation: uniform and Zipf
// (the classic skewed-workload model). Zipf uses a precomputed CDF with
// binary-search sampling.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace amri::workload {

class Distribution {
 public:
  virtual ~Distribution() = default;
  /// Sample a value in [0, domain()).
  virtual Value sample(Rng& rng) const = 0;
  virtual std::int64_t domain() const = 0;
};

class UniformDistribution final : public Distribution {
 public:
  explicit UniformDistribution(std::int64_t domain) : domain_(domain) {}
  Value sample(Rng& rng) const override {
    return static_cast<Value>(rng.below(static_cast<std::uint64_t>(domain_)));
  }
  std::int64_t domain() const override { return domain_; }

 private:
  std::int64_t domain_;
};

class ZipfDistribution final : public Distribution {
 public:
  /// `s` is the Zipf exponent (s = 0 degenerates to uniform).
  ZipfDistribution(std::int64_t domain, double s);
  Value sample(Rng& rng) const override;
  std::int64_t domain() const override { return domain_; }
  double exponent() const { return s_; }

 private:
  std::int64_t domain_;
  double s_;
  std::vector<double> cdf_;
};

std::unique_ptr<Distribution> make_uniform(std::int64_t domain);
std::unique_ptr<Distribution> make_zipf(std::int64_t domain, double s);

}  // namespace amri::workload
