// Bursty, regime-switching arrivals: the closest synthetic equivalent to
// the real-data traces of the paper's companion tech report [19]. A
// two-state Markov-modulated process (calm / burst) scales every stream's
// arrival rate, and value skew follows a Zipf whose hot set rotates with
// the phase schedule — so both load and selectivity fluctuate, the regime
// the paper's introduction motivates ("environments susceptible to
// frequent fluctuations in data arrival rates").
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "engine/query.hpp"
#include "engine/tuple_source.hpp"
#include "workload/distributions.hpp"
#include "workload/phase_schedule.hpp"

namespace amri::workload {

struct BurstyOptions {
  std::vector<double> base_rates_per_sec;  ///< per stream, calm regime
  double burst_multiplier = 4.0;   ///< rate scale during a burst
  double mean_calm_seconds = 20.0; ///< expected calm-regime dwell
  double mean_burst_seconds = 5.0; ///< expected burst-regime dwell
  double zipf_exponent = 0.8;      ///< value skew inside each domain
  /// Diurnal rate modulation on top of the Markov regime: the arrival
  /// rate is scaled by 1 + amplitude·sin(2π·t / period). 0 period (the
  /// default) disables it; amplitude must stay in [0, 1).
  double diurnal_period_seconds = 0.0;
  double diurnal_amplitude = 0.5;
  TimeMicros end = 0;              ///< 0 = unbounded
  std::uint64_t seed = 0x5eedULL;
};

class BurstySource final : public engine::TupleSource {
 public:
  /// `query` and `schedule` must outlive the source; the schedule supplies
  /// per-predicate domains exactly as for SyntheticGenerator.
  BurstySource(const engine::QuerySpec& query, PhaseSchedule schedule,
               BurstyOptions options);

  std::optional<Tuple> next() override;

  bool in_burst() const { return in_burst_; }
  std::uint64_t bursts_entered() const { return bursts_; }

 private:
  TimeMicros draw_dwell(double mean_seconds);
  void maybe_switch_regime(TimeMicros now);
  Value draw_value(std::int64_t domain);

  const engine::QuerySpec& query_;
  PhaseSchedule schedule_;
  BurstyOptions options_;
  std::vector<TimeMicros> next_arrival_;
  std::vector<std::vector<std::size_t>> pred_of_;
  Rng rng_;
  TupleSeq seq_ = 0;
  bool in_burst_ = false;
  TimeMicros regime_until_ = 0;
  std::uint64_t bursts_ = 0;
};

}  // namespace amri::workload
