#pragma once

// The adversarial scenario library: named workloads engineered to stress
// the tuner far beyond the paper's gentle selectivity drift. Each scenario
// is a fully wired (query, schedule, source factory) bundle addressable by
// name from amri_sim (`--scenario <name>`), the bench harness, and the
// golden tests, and is a pure function of its options + seed (stream
// digests pinned in tests/workload/test_adversarial_scenarios.cpp).
//
//   rotating_hot_set — Zipf-skewed values whose hot predicate rotates on a
//       period comparable to the tuning epoch: every reassessment sees a
//       different dominant access pattern, so an unguarded tuner migrates
//       on nearly every decision (the thrash driver).
//   bursty_diurnal   — Markov calm/burst regimes on top of a sinusoidal
//       diurnal rate curve (bursty_source.hpp): load and selectivity both
//       fluctuate, stressing budget-aware selection under backlog.
//   correlated_join  — join-attribute values drawn from one latent value
//       per tuple, violating the cost model's independence assumption:
//       modelled and realized probe cost diverge (model_error visible on
//       the decision timeline).
//   out_of_order     — arrivals delayed by a bounded random lag and
//       delivered in lag order: each tuple's values were drawn for an
//       earlier instant than its delivery timestamp, so the assessed
//       workload lags and aliases the drift schedule.
//   many_way         — a 6-way complete join (5 join attributes per state,
//       31 possible access patterns): the optimizer's search space and the
//       assessors' pattern lattice both explode.
//   oom_cliff        — bursty arrivals under a memory budget just above
//       the calm-state footprint: bursts push the window stores over the
//       cliff (the paper's out-of-memory failures) while the memory
//       guardrail vetoes directory-growing migrations.
//   multi_query      — N overlapping-JAS query templates over two shared
//       streams (query i joins attributes {i, i+1}, so neighbours share
//       one attribute): the shared index serves the union of all queries'
//       access patterns while the rotating hot predicate shifts which
//       query dominates — the paper's multi-query workload diversity,
//       weaponised. queries() returns the per-query templates for
//       MultiQueryExecutor; query() is the union generator query.

#include <memory>
#include <string>
#include <vector>

#include "engine/executor.hpp"
#include "engine/query.hpp"
#include "engine/tuple_source.hpp"
#include "workload/phase_schedule.hpp"

namespace amri::workload {

struct AdversarialOptions {
  double rate_per_sec = 50.0;     ///< per-stream calm arrival rate
  double window_seconds = 20.0;   ///< sliding window length
  std::uint64_t seed = 0x5eedULL;
  double generate_seconds = 0.0;  ///< 0 = unbounded source
  // rotating_hot_set / many_way drift
  double rotate_seconds = 5.0;    ///< hot-predicate rotation period
  std::size_t num_phases = 64;
  std::int64_t hot_domain = 15;
  std::int64_t cold_domain = 60;
  double zipf_exponent = 0.9;     ///< value skew (Zipf-like)
  // bursty_diurnal / oom_cliff regimes
  double burst_multiplier = 6.0;
  double mean_calm_seconds = 12.0;
  double mean_burst_seconds = 4.0;
  double diurnal_period_seconds = 40.0;
  double diurnal_amplitude = 0.6;
  // correlated_join
  std::int64_t correlation_noise = 2;  ///< |value jitter| around the latent
  // out_of_order
  double max_delay_seconds = 2.0;      ///< bounded reorder lag
  // many_way
  std::size_t many_way_streams = 6;
  // multi_query: overlapping two-stream templates sharing one state pair
  std::size_t num_queries = 3;
  // oom_cliff: hard memory budget; 0 = auto (≈1.8× the calm footprint)
  std::size_t oom_budget_bytes = 0;
};

class AdversarialScenario {
 public:
  /// All scenario names, in registration order (the bench matrix order).
  static const std::vector<std::string>& names();

  /// Build scenario `name` (must be one of names(); throws otherwise).
  static std::unique_ptr<AdversarialScenario> make(
      const std::string& name, AdversarialOptions options = {});

  const std::string& name() const { return name_; }
  const AdversarialOptions& options() const { return options_; }
  const engine::QuerySpec& query() const { return query_; }
  const PhaseSchedule& schedule() const { return schedule_; }

  /// Per-query routing templates for MultiQueryExecutor. multi_query
  /// returns its `num_queries` overlapping templates; every other
  /// scenario returns a singleton holding query().
  const std::vector<engine::QuerySpec>& queries() const { return queries_; }

  /// New deterministic source over this scenario; the scenario must
  /// outlive it. `seed_offset` decorrelates repeated runs.
  std::unique_ptr<engine::TupleSource> make_source(
      std::uint64_t seed_offset = 0) const;

  /// Executor options pre-filled with the scenario's workload parameters
  /// (cost-model lambdas, window; the oom_cliff memory budget). Backend /
  /// tuner configuration stays with the caller.
  engine::ExecutorOptions executor_options() const;

 private:
  AdversarialScenario(std::string name, AdversarialOptions options,
                      std::size_t streams, PhaseSchedule schedule,
                      engine::QuerySpec query,
                      std::vector<engine::QuerySpec> queries);

  std::string name_;
  AdversarialOptions options_;
  std::size_t streams_;
  /// The generator (and single-executor) query: for multi_query this is
  /// the union template joining every shared attribute, so the source
  /// draws every attribute from its predicate's drifting domain.
  engine::QuerySpec query_;
  PhaseSchedule schedule_;
  std::vector<engine::QuerySpec> queries_;  ///< per-query templates
};

}  // namespace amri::workload
