// The paper's canned evaluation scenario (§V): a 4-way join across 4
// streams, every pair joined on a dedicated attribute (3 join attributes
// per state, 7 possible non-empty access patterns), with join
// selectivities rotating over phases so the router keeps changing query
// paths. Benches and examples build their runs from this scenario.
#pragma once

#include <memory>

#include "engine/executor.hpp"
#include "engine/query.hpp"
#include "workload/synthetic_generator.hpp"

namespace amri::workload {

struct ScenarioOptions {
  std::size_t streams = 4;
  double rate_per_sec = 50.0;       ///< lambda_d per stream
  double window_seconds = 20.0;     ///< sliding window length
  double phase_seconds = 60.0;      ///< selectivity-drift period
  std::size_t num_phases = 64;      ///< schedule length (wraps by clamping)
  std::int64_t hot_domain = 15;     ///< low-selectivity (many matches)
  std::int64_t cold_domain = 60;    ///< high-selectivity (few matches)
  std::uint64_t seed = 0x5eedULL;
  double generate_seconds = 0.0;    ///< 0 = unbounded source
};

/// A fully-wired scenario: the query, the drift schedule, and a factory
/// for timestamp-ordered tuple sources.
class Scenario {
 public:
  explicit Scenario(ScenarioOptions options);

  const ScenarioOptions& options() const { return options_; }
  const engine::QuerySpec& query() const { return query_; }
  const PhaseSchedule& schedule() const { return schedule_; }

  /// New generator over this scenario (seed offset for repeated runs).
  std::unique_ptr<SyntheticGenerator> make_source(
      std::uint64_t seed_offset = 0) const;

  /// Executor options pre-filled with the scenario's workload parameters
  /// (cost-model lambdas, window) — benches override what they sweep.
  engine::ExecutorOptions default_executor_options() const;

 private:
  ScenarioOptions options_;
  engine::QuerySpec query_;
  PhaseSchedule schedule_;
};

}  // namespace amri::workload
