// Synthetic multi-stream tuple generation (paper §V "Synthetic Data Sets").
// Produces the merged, timestamp-ordered arrival sequence for a QuerySpec:
// per-stream arrival rates with light jitter, and join-attribute values
// drawn from the phase schedule's per-predicate domains so that join
// selectivities drift over time.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "engine/query.hpp"
#include "engine/tuple_source.hpp"
#include "workload/phase_schedule.hpp"

namespace amri::workload {

struct GeneratorOptions {
  std::vector<double> rates_per_sec;  ///< one per stream
  TimeMicros end = 0;                 ///< stop producing at this time
  std::uint64_t seed = 0x5eedULL;
  double jitter = 0.2;  ///< inter-arrival jitter fraction [0, 1)
};

class SyntheticGenerator final : public engine::TupleSource {
 public:
  /// `query` must outlive the generator.
  SyntheticGenerator(const engine::QuerySpec& query, PhaseSchedule schedule,
                     GeneratorOptions options);

  std::optional<Tuple> next() override;

  std::uint64_t produced() const { return seq_; }

 private:
  const engine::QuerySpec& query_;
  PhaseSchedule schedule_;
  GeneratorOptions options_;
  std::vector<TimeMicros> next_arrival_;
  std::vector<TimeMicros> base_interval_;
  /// pred_of_[stream][attr] = predicate index for that join attribute.
  std::vector<std::vector<std::size_t>> pred_of_;
  Rng rng_;
  TupleSeq seq_ = 0;
};

}  // namespace amri::workload
