#include "workload/synthetic_generator.hpp"

#include <cassert>
#include <limits>

namespace amri::workload {

SyntheticGenerator::SyntheticGenerator(const engine::QuerySpec& query,
                                       PhaseSchedule schedule,
                                       GeneratorOptions options)
    : query_(query),
      schedule_(std::move(schedule)),
      options_(std::move(options)),
      rng_(options_.seed) {
  assert(options_.rates_per_sec.size() == query_.num_streams());
  assert(options_.jitter >= 0.0 && options_.jitter < 1.0);
  next_arrival_.resize(query_.num_streams(), 0);
  base_interval_.resize(query_.num_streams());
  for (StreamId s = 0; s < query_.num_streams(); ++s) {
    assert(options_.rates_per_sec[s] > 0.0);
    base_interval_[s] = seconds_to_micros(1.0 / options_.rates_per_sec[s]);
    if (base_interval_[s] < 1) base_interval_[s] = 1;
    // Stagger stream start offsets so arrivals interleave from t = 0.
    next_arrival_[s] = static_cast<TimeMicros>(
        rng_.below(static_cast<std::uint64_t>(base_interval_[s]) + 1));
  }
  // Map each (stream, attr) to its predicate index.
  pred_of_.resize(query_.num_streams());
  for (StreamId s = 0; s < query_.num_streams(); ++s) {
    pred_of_[s].assign(query_.schema(s).num_attrs(),
                       std::numeric_limits<std::size_t>::max());
  }
  const auto& preds = query_.predicates();
  for (std::size_t p = 0; p < preds.size(); ++p) {
    pred_of_[preds[p].left_stream][preds[p].left_attr] = p;
    pred_of_[preds[p].right_stream][preds[p].right_attr] = p;
  }
  // Every phase must cover every predicate.
  for (std::size_t i = 0; i < schedule_.num_phases(); ++i) {
    assert(schedule_.phase(i).predicate_domains.size() >= preds.size());
    (void)i;
  }
}

std::optional<Tuple> SyntheticGenerator::next() {
  // Earliest next arrival across streams.
  StreamId chosen = 0;
  for (StreamId s = 1; s < query_.num_streams(); ++s) {
    if (next_arrival_[s] < next_arrival_[chosen]) chosen = s;
  }
  const TimeMicros ts = next_arrival_[chosen];
  if (options_.end > 0 && ts >= options_.end) return std::nullopt;

  Tuple t;
  t.stream = chosen;
  t.ts = ts;
  t.seq = seq_++;
  const Schema& schema = query_.schema(chosen);
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    const std::size_t p = pred_of_[chosen][a];
    std::int64_t domain = 100;  // non-join attributes: fixed small domain
    if (p != std::numeric_limits<std::size_t>::max()) {
      domain = schedule_.domain_at(ts, p);
    }
    t.values.push_back(
        static_cast<Value>(rng_.below(static_cast<std::uint64_t>(domain))));
  }

  // Schedule this stream's next arrival with jitter.
  const auto base = static_cast<double>(base_interval_[chosen]);
  const double j = 1.0 + options_.jitter * (2.0 * rng_.uniform01() - 1.0);
  TimeMicros step = static_cast<TimeMicros>(base * j);
  if (step < 1) step = 1;
  next_arrival_[chosen] = ts + step;
  return t;
}

}  // namespace amri::workload
