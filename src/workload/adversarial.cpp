#include "workload/adversarial.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"
#include "workload/bursty_source.hpp"
#include "workload/synthetic_generator.hpp"

namespace amri::workload {

namespace {

/// Join-attribute values drawn from one latent value per tuple: every
/// bound attribute equals the latent plus bounded jitter, folded into its
/// predicate's domain. Values inside a tuple (and across the predicates a
/// route binds together) are therefore strongly correlated — the cost
/// model's independence assumption (tuples distribute evenly over
/// buckets) is violated, and modelled vs realized probe cost diverge.
/// Arrival scheduling matches SyntheticGenerator (per-stream rates with
/// jitter, merged in timestamp order).
class CorrelatedGenerator final : public engine::TupleSource {
 public:
  CorrelatedGenerator(const engine::QuerySpec& query, PhaseSchedule schedule,
                      GeneratorOptions options, std::int64_t noise)
      : query_(query),
        schedule_(std::move(schedule)),
        options_(std::move(options)),
        noise_(noise),
        rng_(options_.seed) {
    assert(options_.rates_per_sec.size() == query_.num_streams());
    assert(noise_ >= 0);
    next_arrival_.resize(query_.num_streams(), 0);
    base_interval_.resize(query_.num_streams());
    for (StreamId s = 0; s < query_.num_streams(); ++s) {
      assert(options_.rates_per_sec[s] > 0.0);
      base_interval_[s] = seconds_to_micros(1.0 / options_.rates_per_sec[s]);
      if (base_interval_[s] < 1) base_interval_[s] = 1;
      next_arrival_[s] = static_cast<TimeMicros>(
          rng_.below(static_cast<std::uint64_t>(base_interval_[s]) + 1));
    }
    pred_of_.resize(query_.num_streams());
    for (StreamId s = 0; s < query_.num_streams(); ++s) {
      pred_of_[s].assign(query_.schema(s).num_attrs(),
                         std::numeric_limits<std::size_t>::max());
    }
    const auto& preds = query_.predicates();
    for (std::size_t p = 0; p < preds.size(); ++p) {
      pred_of_[preds[p].left_stream][preds[p].left_attr] = p;
      pred_of_[preds[p].right_stream][preds[p].right_attr] = p;
    }
  }

  std::optional<Tuple> next() override {
    StreamId chosen = 0;
    for (StreamId s = 1; s < query_.num_streams(); ++s) {
      if (next_arrival_[s] < next_arrival_[chosen]) chosen = s;
    }
    const TimeMicros ts = next_arrival_[chosen];
    if (options_.end > 0 && ts >= options_.end) return std::nullopt;

    Tuple t;
    t.stream = chosen;
    t.ts = ts;
    t.seq = seq_++;
    const Schema& schema = query_.schema(chosen);
    const auto latent = static_cast<std::int64_t>(rng_.below(1u << 20));
    for (AttrId a = 0; a < schema.num_attrs(); ++a) {
      const std::size_t p = pred_of_[chosen][a];
      if (p == std::numeric_limits<std::size_t>::max()) {
        t.values.push_back(static_cast<Value>(rng_.below(100)));
        continue;
      }
      const std::int64_t domain = schedule_.domain_at(ts, p);
      const std::int64_t jitter =
          static_cast<std::int64_t>(
              rng_.below(static_cast<std::uint64_t>(2 * noise_ + 1))) -
          noise_;
      const std::int64_t folded =
          ((latent + jitter) % domain + domain) % domain;
      t.values.push_back(static_cast<Value>(folded));
    }

    const auto base = static_cast<double>(base_interval_[chosen]);
    const double j = 1.0 + options_.jitter * (2.0 * rng_.uniform01() - 1.0);
    auto step = static_cast<TimeMicros>(base * j);
    if (step < 1) step = 1;
    next_arrival_[chosen] = ts + step;
    return t;
  }

 private:
  const engine::QuerySpec& query_;
  PhaseSchedule schedule_;
  GeneratorOptions options_;
  std::int64_t noise_;
  std::vector<TimeMicros> next_arrival_;
  std::vector<TimeMicros> base_interval_;
  std::vector<std::vector<std::size_t>> pred_of_;
  Rng rng_;
  TupleSeq seq_ = 0;
};

/// Bounded-lag reordering: each inner tuple is delayed by a uniform lag in
/// [0, max_delay] and delivered in lag order. The engine requires
/// non-decreasing timestamps, so delivery re-stamps ts (and seq) to the
/// delayed clock — the adversarial effect is that every tuple's *values*
/// were drawn for an instant up to max_delay earlier than the timestamp
/// the router and windows see, so the assessed workload lags and aliases
/// the drift schedule.
class OutOfOrderSource final : public engine::TupleSource {
 public:
  OutOfOrderSource(std::unique_ptr<engine::TupleSource> inner,
                   double max_delay_seconds, std::uint64_t seed)
      : inner_(std::move(inner)),
        max_delay_(seconds_to_micros(max_delay_seconds)),
        rng_(seed),
        pending_(inner_->next()) {}

  std::optional<Tuple> next() override {
    // Buffer inner tuples until the earliest delivery can no longer be
    // preempted: any future arrival's delivery is at least its generation
    // time, which now exceeds the heap top's delivery time.
    while (pending_.has_value() &&
           (heap_.empty() || pending_->ts <= heap_.top().delivery)) {
      Delayed d;
      d.delivery =
          pending_->ts +
          static_cast<TimeMicros>(
              rng_.below(static_cast<std::uint64_t>(max_delay_) + 1));
      d.tuple = std::move(*pending_);
      heap_.push(std::move(d));
      pending_ = inner_->next();
    }
    if (heap_.empty()) return std::nullopt;
    Tuple t = heap_.top().tuple;
    const TimeMicros delivery = heap_.top().delivery;
    heap_.pop();
    t.ts = delivery;
    t.seq = seq_++;
    return t;
  }

 private:
  struct Delayed {
    TimeMicros delivery = 0;
    Tuple tuple;
  };
  struct LaterDelivery {
    bool operator()(const Delayed& a, const Delayed& b) const {
      return a.delivery != b.delivery ? a.delivery > b.delivery
                                      : a.tuple.seq > b.tuple.seq;
    }
  };

  std::unique_ptr<engine::TupleSource> inner_;
  TimeMicros max_delay_;
  Rng rng_;
  std::optional<Tuple> pending_;
  std::priority_queue<Delayed, std::vector<Delayed>, LaterDelivery> heap_;
  TupleSeq seq_ = 0;
};

std::size_t complete_join_predicates(std::size_t streams) {
  return streams * (streams - 1) / 2;
}

/// Shared two-stream schemas for the multi_query scenario: `attrs` join
/// attributes a0..a<attrs-1> on each side, paired positionally.
std::vector<Schema> multi_query_schemas(std::size_t attrs) {
  std::vector<std::string> names;
  names.reserve(attrs);
  for (std::size_t a = 0; a < attrs; ++a) {
    names.push_back("a" + std::to_string(a));
  }
  return {Schema("Left", names), Schema("Right", names)};
}

/// The union generator query: one predicate per shared attribute, so the
/// synthetic generator draws every attribute from its predicate's
/// (rotating) domain.
engine::QuerySpec multi_query_union(std::size_t attrs, TimeMicros window) {
  std::vector<engine::JoinPredicate> preds;
  for (std::size_t a = 0; a < attrs; ++a) {
    preds.push_back({0, static_cast<AttrId>(a), 1, static_cast<AttrId>(a)});
  }
  return engine::QuerySpec(multi_query_schemas(attrs), std::move(preds),
                           window);
}

/// The overlapping templates: query i joins attributes {i, i+1}, so each
/// neighbouring pair of queries shares one attribute and the union JAS is
/// `n_queries + 1` attributes wide.
std::vector<engine::QuerySpec> multi_query_templates(std::size_t n_queries,
                                                     TimeMicros window) {
  const std::size_t attrs = n_queries + 1;
  const auto schemas = multi_query_schemas(attrs);
  std::vector<engine::QuerySpec> queries;
  queries.reserve(n_queries);
  for (std::size_t qi = 0; qi < n_queries; ++qi) {
    std::vector<engine::JoinPredicate> preds = {
        {0, static_cast<AttrId>(qi), 1, static_cast<AttrId>(qi)},
        {0, static_cast<AttrId>(qi + 1), 1, static_cast<AttrId>(qi + 1)}};
    queries.emplace_back(schemas, std::move(preds), window);
  }
  return queries;
}

}  // namespace

const std::vector<std::string>& AdversarialScenario::names() {
  static const std::vector<std::string> kNames = {
      "rotating_hot_set", "bursty_diurnal", "correlated_join",
      "out_of_order",     "many_way",       "oom_cliff",
      "multi_query",
  };
  return kNames;
}

AdversarialScenario::AdversarialScenario(
    std::string name, AdversarialOptions options, std::size_t streams,
    PhaseSchedule schedule, engine::QuerySpec query,
    std::vector<engine::QuerySpec> queries)
    : name_(std::move(name)),
      options_(options),
      streams_(streams),
      query_(std::move(query)),
      schedule_(std::move(schedule)),
      queries_(std::move(queries)) {}

std::unique_ptr<AdversarialScenario> AdversarialScenario::make(
    const std::string& name, AdversarialOptions options) {
  const bool multi = name == "multi_query";
  const std::size_t streams =
      multi ? 2 : (name == "many_way" ? options.many_way_streams : 4);
  // One drifting domain per generator predicate: the pairwise complete
  // join's, or (multi_query) one per shared attribute.
  const std::size_t predicates = multi ? options.num_queries + 1
                                       : complete_join_predicates(streams);
  // rotating_hot_set (and multi_query, whose attack is the shifting
  // dominant template) rotates on a period comparable to a tuning epoch;
  // the regime-driven scenarios drift on a slower clock so the stress
  // comes from arrivals, not the schedule.
  const double phase_seconds =
      (name == "rotating_hot_set" || name == "many_way" || multi)
          ? options.rotate_seconds
          : options.rotate_seconds * 6.0;
  PhaseSchedule schedule = PhaseSchedule::rotating(
      predicates, options.num_phases, seconds_to_micros(phase_seconds),
      options.hot_domain, options.cold_domain);

  const auto& known = names();
  if (std::find(known.begin(), known.end(), name) == known.end()) {
    throw std::invalid_argument("unknown adversarial scenario: " + name);
  }
  const TimeMicros window = seconds_to_micros(options.window_seconds);
  engine::QuerySpec query = multi
                                ? multi_query_union(predicates, window)
                                : engine::make_complete_join_query(streams,
                                                                   window);
  std::vector<engine::QuerySpec> queries =
      multi ? multi_query_templates(options.num_queries, window)
            : std::vector<engine::QuerySpec>{query};
  // Private constructor: unreachable from std::make_unique.
  return std::unique_ptr<AdversarialScenario>(
      new AdversarialScenario(  // amri-lint: allow(AMRI002)
          name, options, streams, std::move(schedule), std::move(query),
          std::move(queries)));
}

std::unique_ptr<engine::TupleSource> AdversarialScenario::make_source(
    std::uint64_t seed_offset) const {
  const TimeMicros end = options_.generate_seconds > 0.0
                             ? seconds_to_micros(options_.generate_seconds)
                             : 0;
  const std::uint64_t seed = options_.seed + seed_offset;

  if (name_ == "rotating_hot_set") {
    BurstyOptions b;
    b.base_rates_per_sec.assign(streams_, options_.rate_per_sec);
    b.burst_multiplier = 1.0;  // pure Zipf skew; the rotation is the attack
    b.zipf_exponent = options_.zipf_exponent;
    b.end = end;
    b.seed = seed;
    return std::make_unique<BurstySource>(query_, schedule_, b);
  }
  if (name_ == "bursty_diurnal") {
    BurstyOptions b;
    b.base_rates_per_sec.assign(streams_, options_.rate_per_sec);
    b.burst_multiplier = options_.burst_multiplier;
    b.mean_calm_seconds = options_.mean_calm_seconds;
    b.mean_burst_seconds = options_.mean_burst_seconds;
    b.zipf_exponent = options_.zipf_exponent;
    b.diurnal_period_seconds = options_.diurnal_period_seconds;
    b.diurnal_amplitude = options_.diurnal_amplitude;
    b.end = end;
    b.seed = seed;
    return std::make_unique<BurstySource>(query_, schedule_, b);
  }
  if (name_ == "correlated_join") {
    GeneratorOptions g;
    g.rates_per_sec.assign(streams_, options_.rate_per_sec);
    g.end = end;
    g.seed = seed;
    return std::make_unique<CorrelatedGenerator>(query_, schedule_, g,
                                                 options_.correlation_noise);
  }
  if (name_ == "out_of_order") {
    GeneratorOptions g;
    g.rates_per_sec.assign(streams_, options_.rate_per_sec);
    g.end = end;
    g.seed = seed;
    auto inner = std::make_unique<SyntheticGenerator>(query_, schedule_, g);
    return std::make_unique<OutOfOrderSource>(
        std::move(inner), options_.max_delay_seconds, seed ^ 0x00ffULL);
  }
  if (name_ == "many_way" || name_ == "multi_query") {
    // multi_query generates against the union template: every shared
    // attribute follows its own (rotating) domain, so each overlapping
    // query template sees its own selectivity drift.
    GeneratorOptions g;
    g.rates_per_sec.assign(streams_, options_.rate_per_sec);
    g.end = end;
    g.seed = seed;
    return std::make_unique<SyntheticGenerator>(query_, schedule_, g);
  }
  // oom_cliff
  BurstyOptions b;
  b.base_rates_per_sec.assign(streams_, options_.rate_per_sec);
  b.burst_multiplier = options_.burst_multiplier;
  b.mean_calm_seconds = options_.mean_calm_seconds;
  b.mean_burst_seconds = options_.mean_burst_seconds;
  b.zipf_exponent = options_.zipf_exponent;
  b.end = end;
  b.seed = seed;
  return std::make_unique<BurstySource>(query_, schedule_, b);
}

engine::ExecutorOptions AdversarialScenario::executor_options() const {
  engine::ExecutorOptions eopts;
  eopts.model_params.lambda_d = options_.rate_per_sec;
  eopts.model_params.lambda_r =
      options_.rate_per_sec * static_cast<double>(streams_);
  eopts.model_params.window_units = options_.window_seconds;
  eopts.model_params.hash_cost = eopts.costs.hash_cost_us;
  eopts.model_params.compare_cost = eopts.costs.compare_cost_us;
  eopts.model_params.bucket_cost = eopts.costs.bucket_visit_cost_us;
  if (name_ == "oom_cliff") {
    // Budget just above the calm-state footprint (~200 B/tuple across
    // window stores + indexes): calm traffic fits, bursts fall off the
    // cliff.
    eopts.memory_budget =
        options_.oom_budget_bytes != 0
            ? options_.oom_budget_bytes
            : static_cast<std::size_t>(options_.rate_per_sec *
                                       static_cast<double>(streams_) *
                                       options_.window_seconds * 200.0 * 1.8);
  }
  return eopts;
}

}  // namespace amri::workload
