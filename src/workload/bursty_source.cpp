#include "workload/bursty_source.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <numbers>

namespace amri::workload {

BurstySource::BurstySource(const engine::QuerySpec& query,
                           PhaseSchedule schedule, BurstyOptions options)
    : query_(query),
      schedule_(std::move(schedule)),
      options_(std::move(options)),
      rng_(options_.seed) {
  assert(options_.base_rates_per_sec.size() == query_.num_streams());
  assert(options_.burst_multiplier >= 1.0);
  assert(options_.diurnal_amplitude >= 0.0 && options_.diurnal_amplitude < 1.0);
  next_arrival_.resize(query_.num_streams(), 0);
  for (StreamId s = 0; s < query_.num_streams(); ++s) {
    next_arrival_[s] = static_cast<TimeMicros>(rng_.below(10000));
  }
  pred_of_.resize(query_.num_streams());
  for (StreamId s = 0; s < query_.num_streams(); ++s) {
    pred_of_[s].assign(query_.schema(s).num_attrs(),
                       std::numeric_limits<std::size_t>::max());
  }
  const auto& preds = query_.predicates();
  for (std::size_t p = 0; p < preds.size(); ++p) {
    pred_of_[preds[p].left_stream][preds[p].left_attr] = p;
    pred_of_[preds[p].right_stream][preds[p].right_attr] = p;
  }
  regime_until_ = draw_dwell(options_.mean_calm_seconds);
}

TimeMicros BurstySource::draw_dwell(double mean_seconds) {
  // Exponential dwell times (memoryless regime switching).
  const double u = rng_.uniform01();
  const double dwell = -mean_seconds * std::log(1.0 - u);
  return seconds_to_micros(std::max(dwell, 0.001));
}

void BurstySource::maybe_switch_regime(TimeMicros now) {
  while (now >= regime_until_) {
    in_burst_ = !in_burst_;
    if (in_burst_) ++bursts_;
    regime_until_ += draw_dwell(in_burst_ ? options_.mean_burst_seconds
                                          : options_.mean_calm_seconds);
  }
}

Value BurstySource::draw_value(std::int64_t domain) {
  // Inverse-power skew without precomputing a CDF per (phase, domain):
  // u^k concentrates mass near 0 for k > 1.
  const double u = rng_.uniform01();
  const double skewed = std::pow(u, 1.0 + options_.zipf_exponent);
  auto v = static_cast<Value>(skewed * static_cast<double>(domain));
  if (v >= domain) v = domain - 1;
  return v;
}

std::optional<Tuple> BurstySource::next() {
  StreamId chosen = 0;
  for (StreamId s = 1; s < query_.num_streams(); ++s) {
    if (next_arrival_[s] < next_arrival_[chosen]) chosen = s;
  }
  const TimeMicros ts = next_arrival_[chosen];
  if (options_.end > 0 && ts >= options_.end) return std::nullopt;
  maybe_switch_regime(ts);

  Tuple t;
  t.stream = chosen;
  t.ts = ts;
  t.seq = seq_++;
  const Schema& schema = query_.schema(chosen);
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    const std::size_t p = pred_of_[chosen][a];
    const std::int64_t domain =
        p == std::numeric_limits<std::size_t>::max()
            ? 100
            : schedule_.domain_at(ts, p);
    t.values.push_back(draw_value(domain));
  }

  double rate = options_.base_rates_per_sec[chosen] *
                (in_burst_ ? options_.burst_multiplier : 1.0);
  if (options_.diurnal_period_seconds > 0.0) {
    const double phase = 2.0 * std::numbers::pi * micros_to_seconds(ts) /
                         options_.diurnal_period_seconds;
    rate *= 1.0 + options_.diurnal_amplitude * std::sin(phase);
  }
  TimeMicros step = seconds_to_micros(1.0 / rate);
  // Poisson-ish jitter.
  step = static_cast<TimeMicros>(
      static_cast<double>(step) *
      (-std::log(1.0 - rng_.uniform01())));
  if (step < 1) step = 1;
  next_arrival_[chosen] = ts + step;
  return t;
}

}  // namespace amri::workload
