// The bit-address index's bucket directory: an open-addressing flat hash
// table from bucket id to bucket, purpose-built for the index hot path
// (paper §III: maintenance and probe cost of the one shared index *are*
// the system's inner loop).
//
// Design:
//   * power-of-two capacity, linear probing over a contiguous slot array —
//     one cache line per probe step instead of a chained-node pointer
//     chase;
//   * tombstone-free backward-shift deletion, so long-lived sliding-window
//     churn (insert+expire forever) never degrades probe distances;
//   * buckets hold their first kInlineBucketTuples tuple pointers inline
//     (SmallVector), so the dominant 1-2 tuple buckets touch no heap at
//     all — the old unordered_map directory paid a node allocation plus a
//     vector heap allocation for every occupied bucket;
//   * a slot is occupied iff its bucket is non-empty (the directory never
//     retains empty buckets, mirroring the index invariant), so no
//     separate metadata array is needed;
//   * O(1) capacity-aware memory accounting: the slot array plus every
//     bucket's heap capacity, maintained incrementally.
//
// Iteration (for_each) walks the slot array in index order: deterministic
// for a fixed operation history, and exactly what the index's
// filter-by-fixed-bits probe fallback and for_each_tuple need.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assertions.hpp"
#include "common/small_vector.hpp"
#include "common/tuple.hpp"
#include "common/types.hpp"

namespace amri::index {

/// Tuple entries stored inline per bucket before spilling to the heap.
inline constexpr std::size_t kInlineBucketTuples = 2;

/// One stored tuple plus a hash tag of its join-attribute values. Probes
/// that bind every JAS attribute compare tags first and only dereference
/// tuples whose tag matches — the bucket memory is already in cache, so a
/// mismatching tuple costs no random memory touch (the chained directory
/// this replaces had to chase every tuple pointer).
struct BucketEntry {
  const Tuple* tuple = nullptr;
  std::uint64_t tag = 0;
};

class BucketDirectory {
 public:
  using Bucket = SmallVector<BucketEntry, kInlineBucketTuples>;

  BucketDirectory() = default;

  BucketDirectory(const BucketDirectory&) = delete;
  BucketDirectory& operator=(const BucketDirectory&) = delete;
  BucketDirectory(BucketDirectory&&) = default;
  BucketDirectory& operator=(BucketDirectory&&) = default;

  /// Number of occupied buckets.
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Slot-array capacity (0 until the first insert; power of two after).
  std::size_t capacity() const { return slots_.size(); }

  /// Append `t` (with its value tag) to `key`'s bucket, creating the
  /// bucket if absent. Returns the bucket's size after the append (the
  /// chain length telemetry observes).
  std::size_t insert(BucketId key, const Tuple* t, std::uint64_t tag = 0) {
    if (size_ + 1 > max_load(slots_.size())) {
      grow(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = home_slot(key);
    while (true) {
      Slot& s = slots_[i];
      if (s.bucket.empty()) {
        s.key = key;
        ++size_;
        append(s.bucket, BucketEntry{t, tag});
        return 1;
      }
      if (s.key == key) {
        append(s.bucket, BucketEntry{t, tag});
        return s.bucket.size();
      }
      i = (i + 1) & mask;
    }
  }

  /// Remove `t` from `key`'s bucket (swap-with-last, matching the old
  /// directory's erase order). An emptied bucket's slot is removed via
  /// backward shift. Returns false if the key or tuple is absent.
  bool erase(BucketId key, const Tuple* t) {
    Slot* s = find_slot(key);
    if (s == nullptr) return false;
    Bucket& bucket = s->bucket;
    const auto pos =
        std::find_if(bucket.begin(), bucket.end(),
                     [t](const BucketEntry& e) { return e.tuple == t; });
    if (pos == bucket.end()) return false;
    *pos = bucket.back();
    bucket.pop_back();
    if (bucket.empty()) {
      bucket_heap_bytes_ -= heap_bytes(bucket);
      remove_slot(static_cast<std::size_t>(s - slots_.data()));
      --size_;
    }
    return true;
  }

  /// Prefetch the slot a key's probe sequence starts at (wall-mode grouped
  /// probes issue these a few bucket visits ahead so the cache misses of
  /// consecutive find() calls overlap). A pure hardware hint: no charges,
  /// no state change, and a no-op on an empty directory.
  void prefetch(BucketId key) const {
    if (slots_.empty()) return;
    __builtin_prefetch(&slots_[home_slot(key)], /*rw=*/0, /*locality=*/1);
  }

  /// Prefetch for write: insert appends to (and erase shifts) the slot
  /// line, so warming it in exclusive state saves the upgrade.
  void prefetch_write(BucketId key) const {
    if (slots_.empty()) return;
    __builtin_prefetch(&slots_[home_slot(key)], /*rw=*/1, /*locality=*/1);
  }

  /// The bucket stored under `key`, or null. Never returns empty buckets.
  const Bucket* find(BucketId key) const {
    const Slot* s = const_cast<BucketDirectory*>(this)->find_slot(key);
    return s == nullptr ? nullptr : &s->bucket;
  }

  /// Ensure capacity for `buckets` occupied buckets without rehashing.
  void reserve(std::size_t buckets) {
    std::size_t cap = slots_.empty() ? kMinCapacity : slots_.size();
    while (buckets > max_load(cap)) cap *= 2;
    if (cap > slots_.size()) grow(cap);
  }

  /// Drop every bucket and release all storage (capacity returns to 0).
  void clear() {
    slots_.clear();
    slots_.shrink_to_fit();
    size_ = 0;
    bucket_heap_bytes_ = 0;
  }

  /// Logical bytes: the whole slot array (capacity-aware — empty slots are
  /// real memory) plus heap-spilled bucket storage. O(1).
  std::size_t memory_bytes() const {
    return slots_.size() * sizeof(Slot) + bucket_heap_bytes_;
  }

  /// Visit every occupied bucket as fn(BucketId, const Bucket&), in slot
  /// order. The directory must not be mutated during the walk.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (!s.bucket.empty()) fn(s.key, s.bucket);
    }
  }

  /// Deep structural validation: capacity is a power of two, size_ matches
  /// the occupied-slot count, every occupied slot is reachable by its
  /// probe sequence (no hole between home and slot — the invariant
  /// backward-shift deletion maintains), keys are unique, and the
  /// incremental heap-byte accounting matches a recount. Aborts with a
  /// diagnostic on the first violation.
  void check_invariants() const {
    AMRI_CHECK(slots_.empty() || (slots_.size() & (slots_.size() - 1)) == 0,
               "directory capacity must be a power of two");
    AMRI_CHECK(size_ <= max_load(slots_.size()),
               "directory exceeds its maximum load factor");
    std::size_t occupied = 0;
    std::size_t heap = 0;
    std::vector<BucketId> keys;
    const std::size_t mask = slots_.empty() ? 0 : slots_.size() - 1;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const Slot& s = slots_[i];
      if (s.bucket.empty()) continue;
      ++occupied;
      heap += heap_bytes(s.bucket);
      keys.push_back(s.key);
      // Probe-path integrity: walking from the key's home slot must reach
      // slot i before any empty slot.
      for (std::size_t j = home_slot(s.key); j != i; j = (j + 1) & mask) {
        AMRI_CHECK(!slots_[j].bucket.empty(),
                   "hole in a probe sequence: key unreachable after a "
                   "deletion failed to backward-shift");
      }
    }
    AMRI_CHECK(occupied == size_,
               "directory size_ disagrees with the occupied-slot count");
    AMRI_CHECK(heap == bucket_heap_bytes_,
               "incremental bucket heap-byte accounting is stale");
    std::sort(keys.begin(), keys.end());
    AMRI_CHECK(std::adjacent_find(keys.begin(), keys.end()) == keys.end(),
               "duplicate bucket id stored in two slots");
  }

 private:
  struct Slot {
    BucketId key = 0;
    Bucket bucket;
  };

  static constexpr std::size_t kMinCapacity = 16;

  /// Maximum occupied buckets for a capacity: 7/8 load factor.
  static constexpr std::size_t max_load(std::size_t cap) {
    return cap - cap / 8;
  }

  /// SplitMix64 finalizer: bucket ids are bit-concatenations of mapper
  /// chunks, so low bits alone cluster badly under a power-of-two mask.
  static constexpr std::uint64_t mix(BucketId key) {
    std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::size_t home_slot(BucketId key) const {
    return mix(key) & (slots_.size() - 1);
  }

  static std::size_t heap_bytes(const Bucket& b) {
    return b.is_inline() ? 0 : b.capacity() * sizeof(BucketEntry);
  }

  /// push_back with incremental heap accounting (inline→heap spill and
  /// heap growth both land in bucket_heap_bytes_).
  void append(Bucket& b, const BucketEntry& e) {
    const std::size_t before = heap_bytes(b);
    b.push_back(e);
    bucket_heap_bytes_ += heap_bytes(b) - before;
  }

  Slot* find_slot(BucketId key) {
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = home_slot(key);
    while (!slots_[i].bucket.empty()) {
      if (slots_[i].key == key) return &slots_[i];
      i = (i + 1) & mask;
    }
    return nullptr;
  }

  /// Backward-shift deletion: close the hole at `hole` by sliding every
  /// displaced follower one step toward its home slot; no tombstones, so
  /// probe distances stay tight forever.
  void remove_slot(std::size_t hole) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t next = (hole + 1) & mask;
    while (!slots_[next].bucket.empty()) {
      const std::size_t home = home_slot(slots_[next].key);
      // The follower may move into the hole iff its home does not lie
      // cyclically after the hole (moving it would otherwise break its
      // own probe path).
      if (((next - home) & mask) >= ((next - hole) & mask)) {
        slots_[hole].key = slots_[next].key;
        slots_[hole].bucket = std::move(slots_[next].bucket);
        hole = next;
      }
      next = (next + 1) & mask;
    }
    slots_[hole].bucket = Bucket();  // release any heap shell, mark empty
  }

  void grow(std::size_t new_cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_ = std::vector<Slot>(new_cap);
    const std::size_t mask = new_cap - 1;
    for (Slot& s : old) {
      if (s.bucket.empty()) continue;
      std::size_t i = home_slot(s.key);
      while (!slots_[i].bucket.empty()) i = (i + 1) & mask;
      slots_[i].key = s.key;
      slots_[i].bucket = std::move(s.bucket);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;              ///< occupied buckets
  std::size_t bucket_heap_bytes_ = 0; ///< heap-spilled bucket capacity bytes
};

}  // namespace amri::index
