#include "index/hash_index.hpp"

#include <cassert>

namespace amri::index {

namespace {
// Per-entry cost of an unordered_multimap node: key, pointer, node links.
constexpr std::size_t kEntryOverhead = 48;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 32;
  return h;
}
}  // namespace

HashIndex::HashIndex(JoinAttributeSet jas, AttrMask key_mask, CostMeter* meter,
                     MemoryTracker* memory)
    : jas_(std::move(jas)), key_mask_(key_mask), meter_(meter),
      memory_(memory) {
  assert(key_mask != 0);
  assert(is_subset(key_mask, jas_.universe()));
}

HashIndex::~HashIndex() {
  if (memory_ != nullptr && tracked_bytes_ > 0) {
    memory_->release(MemCategory::kIndexStructure, tracked_bytes_);
  }
}

std::uint64_t HashIndex::hash_tuple(const Tuple& t) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for_each_bit(key_mask_, [&](unsigned pos) {
    h = mix(h, static_cast<std::uint64_t>(t.at(jas_.tuple_attr(pos))));
    if (meter_ != nullptr) meter_->charge_hash();
  });
  return h;
}

std::uint64_t HashIndex::hash_key(const ProbeKey& key) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for_each_bit(key_mask_, [&](unsigned pos) {
    h = mix(h, static_cast<std::uint64_t>(key.values[pos]));
    if (meter_ != nullptr) meter_->charge_hash();
  });
  return h;
}

void HashIndex::insert(const Tuple* t) {
  assert(t != nullptr);
  table_.emplace(hash_tuple(*t), t);
  ++size_;
  if (meter_ != nullptr) meter_->charge_insert();
  const std::size_t now = memory_bytes();
  if (memory_ != nullptr && now > tracked_bytes_) {
    memory_->allocate(MemCategory::kIndexStructure, now - tracked_bytes_);
  }
  tracked_bytes_ = now;
}

void HashIndex::erase(const Tuple* t) {
  assert(t != nullptr);
  const std::uint64_t h = hash_tuple(*t);
  const auto [lo, hi] = table_.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == t) {
      table_.erase(it);
      --size_;
      break;
    }
  }
  if (meter_ != nullptr) meter_->charge_delete();
  const std::size_t now = memory_bytes();
  if (memory_ != nullptr && now < tracked_bytes_) {
    memory_->release(MemCategory::kIndexStructure, tracked_bytes_ - now);
  }
  tracked_bytes_ = now;
}

ProbeStats HashIndex::probe(const ProbeKey& key,
                            std::vector<const Tuple*>& out) {
  assert(serves(key.mask));
  ProbeStats stats;
  const std::uint64_t h = hash_key(key);
  stats.buckets_visited = 1;
  if (meter_ != nullptr) meter_->charge_bucket_visit();
  const auto [lo, hi] = table_.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    ++stats.tuples_compared;
    if (meter_ != nullptr) meter_->charge_compare();
    if (key.matches(*it->second, jas_)) {
      out.push_back(it->second);
      ++stats.matches;
    }
  }
  return stats;
}

std::size_t HashIndex::memory_bytes() const {
  return table_.size() * kEntryOverhead + table_.bucket_count() * sizeof(void*);
}

std::string HashIndex::name() const {
  return "hash" + pattern_to_string(key_mask_, jas_.size());
}

void HashIndex::clear() {
  table_.clear();
  size_ = 0;
  if (memory_ != nullptr && tracked_bytes_ > 0) {
    memory_->release(MemCategory::kIndexStructure, tracked_bytes_);
  }
  tracked_bytes_ = 0;
}

}  // namespace amri::index
