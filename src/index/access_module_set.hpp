// The multi-hash-index baseline (paper §I-A, Raman et al. [5]): a state
// carries several hash-index "access modules", one per supported attribute
// combination. A probe picks the most suitable module — the one whose key
// attributes are all bound and are the most numerous — and falls back to a
// full scan when no module serves the probe's access pattern.
//
// Maintenance touches *every* module per insert/delete, and each module
// stores its own key link per tuple: this is the memory/maintenance
// overhead the paper shows exhausting the system.
#pragma once

#include <memory>
#include <vector>

#include "index/hash_index.hpp"
#include "index/scan_index.hpp"
#include "index/tuple_index.hpp"

namespace amri::index {

class AccessModuleSet final : public TupleIndex {
 public:
  /// One HashIndex per mask in `module_masks` (each non-zero). A ScanIndex
  /// backs probes no module serves.
  AccessModuleSet(JoinAttributeSet jas, std::vector<AttrMask> module_masks,
                  CostMeter* meter = nullptr, MemoryTracker* memory = nullptr);

  /// Masks of the current modules, in construction order.
  std::vector<AttrMask> module_masks() const;
  std::size_t module_count() const { return modules_.size(); }

  /// The module that would serve `probe_mask`, or nullptr (=> full scan).
  /// "Most suitable": serves the probe and has the largest key-attr count;
  /// ties break on the smaller mask for determinism.
  const HashIndex* module_for(AttrMask probe_mask) const;

  void insert(const Tuple* t) override;
  void erase(const Tuple* t) override;
  ProbeStats probe(const ProbeKey& key, std::vector<const Tuple*>& out) override;

  std::size_t size() const override { return scan_.size(); }
  std::size_t memory_bytes() const override;
  std::string name() const override;
  void clear() override;

  /// Count of probes answered by full scan (no suitable module).
  std::uint64_t scan_fallbacks() const { return scan_fallbacks_; }

  /// Replace the module set (index tuning for the baseline): drops modules
  /// not in `new_masks`, builds new ones from the stored tuples. Rebuild
  /// hashing is charged to the meter.
  void retune(const std::vector<AttrMask>& new_masks);

 private:
  JoinAttributeSet jas_;
  CostMeter* meter_;
  MemoryTracker* memory_;
  std::vector<std::unique_ptr<HashIndex>> modules_;
  ScanIndex scan_;  ///< master tuple list + fallback path
  std::uint64_t scan_fallbacks_ = 0;
};

}  // namespace amri::index
