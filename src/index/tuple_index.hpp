// The common interface all state indexes implement: the AMRI bit-address
// index, the multi-hash access-module baseline, and the full-scan fallback.
//
// Indexes store non-owning pointers to tuples owned by the state's window
// store; the state erases a tuple from its index before expiring it.
// All operations charge their work to the state's CostMeter (hash
// computations, value comparisons, bucket visits) and report logical memory
// to the MemoryTracker, which is how the experiments reproduce the paper's
// time and memory behaviour.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/cost_meter.hpp"
#include "common/memory_tracker.hpp"
#include "common/tuple.hpp"
#include "index/access_pattern.hpp"

namespace amri::index {

/// Statistics a probe reports back to the caller (fed to routing policies
/// and index assessment).
struct ProbeStats {
  std::uint64_t buckets_visited = 0;
  std::uint64_t tuples_compared = 0;
  std::uint64_t matches = 0;

  ProbeStats& operator+=(const ProbeStats& other) {
    buckets_visited += other.buckets_visited;
    tuples_compared += other.tuples_compared;
    matches += other.matches;
    return *this;
  }
};

class TupleIndex {
 public:
  virtual ~TupleIndex() = default;

  /// Register a stored tuple. The pointer must stay valid until erase().
  virtual void insert(const Tuple* t) = 0;

  /// Remove a previously inserted tuple (no-op if absent).
  virtual void erase(const Tuple* t) = 0;

  /// Find all stored tuples matching `key` (verified equality on every
  /// bound attribute). Appends to `out` and returns probe statistics.
  virtual ProbeStats probe(const ProbeKey& key,
                           std::vector<const Tuple*>& out) = 0;

  /// Probe `n` keys at once: appends key i's matches to `outs[i]` and
  /// stores its statistics in `stats[i]`. The contract is exact per-key
  /// equivalence with n single probe() calls in order — same matches in
  /// the same order, same per-key stats, same total metered cost (shared
  /// batch computations are still charged once per key they serve).
  /// The default implementation is that loop; BitAddressIndex overrides it
  /// to share per-access-pattern work across the batch and ShardedBitIndex
  /// to dispatch one task per shard per batch.
  virtual void probe_batch(const ProbeKey* keys, std::size_t n,
                           std::vector<const Tuple*>* outs,
                           ProbeStats* stats) {
    for (std::size_t i = 0; i < n; ++i) stats[i] = probe(keys[i], outs[i]);
  }

  /// Number of stored tuples.
  virtual std::size_t size() const = 0;

  /// Logical bytes of index structure (excluding the tuples themselves).
  virtual std::size_t memory_bytes() const = 0;

  virtual std::string name() const = 0;

  /// Remove all entries (without touching the tuples).
  virtual void clear() = 0;
};

}  // namespace amri::index
