// Index selection: find the index configuration minimising C_D for the
// access-pattern frequencies the assessment produced (paper §IV intro:
// "locate the index configuration with the lowest index configuration
// dependent costs").
//
// For paper-scale states (≤ ~6 join attributes, ≤ ~16-bit budgets) the
// exhaustive enumeration over bit allocations is tiny; a greedy
// bit-at-a-time search is provided for larger spaces and as an ablation.
#pragma once

#include <vector>

#include "index/cost_model.hpp"
#include "index/index_config.hpp"

namespace amri::index {

struct OptimizerOptions {
  int bit_budget = 12;        ///< total bits available for the IC
  int max_bits_per_attr = 8;  ///< hard cap per attribute chunk
  bool use_extended_cost = false;  ///< include wildcard bucket-visit term
  /// Also collect the `track_top_k` cheapest configurations into
  /// OptimizerResult::top (0 = best only). Used by telemetry to log the
  /// scored candidates behind every tuning decision.
  std::size_t track_top_k = 0;
};

/// One candidate configuration with its cost-model estimate.
struct ScoredConfig {
  IndexConfig config;
  double cost = 0.0;
};

struct OptimizerResult {
  IndexConfig config;
  double cost = 0.0;
  std::uint64_t configs_evaluated = 0;
  /// The cheapest `track_top_k` configurations, ascending cost (includes
  /// `config` itself as the first entry). Empty when tracking is off.
  std::vector<ScoredConfig> top;
};

class IndexOptimizer {
 public:
  IndexOptimizer(CostModel model, OptimizerOptions options)
      : model_(std::move(model)), options_(options) {}

  const OptimizerOptions& options() const { return options_; }

  /// Exhaustive search over all allocations of ≤ budget bits.
  OptimizerResult optimize(std::size_t num_attrs,
                           const std::vector<PatternFrequency>& patterns) const;

  /// Greedy: repeatedly add the single bit with the largest cost reduction;
  /// stops when no bit improves. Evaluates O(budget · num_attrs) configs.
  OptimizerResult optimize_greedy(
      std::size_t num_attrs,
      const std::vector<PatternFrequency>& patterns) const;

  /// Baseline "conventional index selection" used for the access-module
  /// comparison (paper §V): pick hash-index key masks for the
  /// `max_modules` most frequent access patterns.
  static std::vector<AttrMask> select_hash_modules(
      const std::vector<PatternFrequency>& patterns, std::size_t max_modules);

 private:
  double evaluate(const IndexConfig& ic,
                  const std::vector<PatternFrequency>& patterns) const;

  CostModel model_;
  OptimizerOptions options_;
};

}  // namespace amri::index
