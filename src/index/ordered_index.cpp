#include "index/ordered_index.hpp"

#include <cassert>

namespace amri::index {

namespace {
// Red-black tree node: key, pointer, three links + color.
constexpr std::size_t kNodeOverhead = 64;
}  // namespace

OrderedIndex::OrderedIndex(JoinAttributeSet jas, std::size_t key_pos,
                           CostMeter* meter, MemoryTracker* memory)
    : jas_(std::move(jas)), key_pos_(key_pos), meter_(meter),
      memory_(memory) {
  assert(key_pos_ < jas_.size());
}

OrderedIndex::~OrderedIndex() {
  if (memory_ != nullptr && tracked_bytes_ > 0) {
    memory_->release(MemCategory::kIndexStructure, tracked_bytes_);
  }
}

void OrderedIndex::sync_memory() {
  const std::size_t now = memory_bytes();
  if (memory_ != nullptr) {
    if (now > tracked_bytes_) {
      memory_->allocate(MemCategory::kIndexStructure, now - tracked_bytes_);
    } else if (now < tracked_bytes_) {
      memory_->release(MemCategory::kIndexStructure, tracked_bytes_ - now);
    }
  }
  tracked_bytes_ = now;
}

void OrderedIndex::insert(const Tuple* t) {
  assert(t != nullptr);
  table_.emplace(t->at(jas_.tuple_attr(key_pos_)), t);
  // Tree descent cost modelled as one hash-equivalent.
  if (meter_ != nullptr) {
    meter_->charge_hash();
    meter_->charge_insert();
  }
  sync_memory();
}

void OrderedIndex::erase(const Tuple* t) {
  assert(t != nullptr);
  const auto [lo, hi] = table_.equal_range(t->at(jas_.tuple_attr(key_pos_)));
  for (auto it = lo; it != hi; ++it) {
    if (it->second == t) {
      table_.erase(it);
      break;
    }
  }
  if (meter_ != nullptr) meter_->charge_delete();
  sync_memory();
}

ProbeStats OrderedIndex::probe(const ProbeKey& key,
                               std::vector<const Tuple*>& out) {
  assert(has_bit(key.mask, static_cast<unsigned>(key_pos_)));
  ProbeStats stats;
  stats.buckets_visited = 1;
  if (meter_ != nullptr) {
    meter_->charge_hash();  // tree descent
    meter_->charge_bucket_visit();
  }
  const auto [lo, hi] = table_.equal_range(key.values[key_pos_]);
  for (auto it = lo; it != hi; ++it) {
    ++stats.tuples_compared;
    if (meter_ != nullptr) meter_->charge_compare();
    if (key.matches(*it->second, jas_)) {
      out.push_back(it->second);
      ++stats.matches;
    }
  }
  return stats;
}

ProbeStats OrderedIndex::probe_range(const RangeProbeKey& key,
                                     std::vector<const Tuple*>& out) {
  ProbeStats stats;
  stats.buckets_visited = 1;
  if (meter_ != nullptr) {
    meter_->charge_hash();
    meter_->charge_bucket_visit();
  }
  auto lo = table_.begin();
  auto hi = table_.end();
  if (key.bound(key_pos_)) {
    lo = table_.lower_bound(key.los[key_pos_]);
    hi = table_.upper_bound(key.his[key_pos_]);
  }
  for (auto it = lo; it != hi; ++it) {
    ++stats.tuples_compared;
    if (meter_ != nullptr) meter_->charge_compare();
    if (key.matches(*it->second, jas_)) {
      out.push_back(it->second);
      ++stats.matches;
    }
  }
  return stats;
}

std::size_t OrderedIndex::memory_bytes() const {
  return table_.size() * kNodeOverhead;
}

std::string OrderedIndex::name() const {
  return "ordered(pos=" + std::to_string(key_pos_) + ")";
}

void OrderedIndex::clear() {
  table_.clear();
  sync_memory();
}

}  // namespace amri::index
