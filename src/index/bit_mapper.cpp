#include "index/bit_mapper.hpp"

#include <algorithm>
#include <cassert>

namespace amri::index {

BitMapper BitMapper::hashing(std::size_t num_attrs) {
  return BitMapper(MapStrategy::kHash, num_attrs, {});
}

BitMapper BitMapper::ranged(std::vector<AttrDomain> domains) {
  const std::size_t n = domains.size();
  return BitMapper(MapStrategy::kRange, n, std::move(domains));
}

BitMapper BitMapper::quantile(std::vector<std::vector<Value>> samples,
                              int max_bits) {
  assert(max_bits >= 1 && max_bits <= 20);
  const std::size_t n = samples.size();
  BitMapper m(MapStrategy::kQuantile, n, {});
  m.max_bits_ = max_bits;
  m.boundaries_.resize(n);
  const std::size_t cells = std::size_t{1} << max_bits;
  for (std::size_t pos = 0; pos < n; ++pos) {
    auto& sample = samples[pos];
    if (sample.empty()) continue;  // falls back to hashing for this attr
    std::sort(sample.begin(), sample.end());
    auto& bounds = m.boundaries_[pos];
    bounds.reserve(cells - 1);
    for (std::size_t c = 1; c < cells; ++c) {
      // Upper edge of cell c-1: the (c/cells)-quantile of the sample.
      const std::size_t idx =
          std::min(sample.size() - 1, c * sample.size() / cells);
      bounds.push_back(sample[idx]);
    }
  }
  return m;
}

std::uint64_t BitMapper::map(std::size_t pos, Value v, int bits) const {
  assert(pos < num_attrs_);
  assert(bits >= 0 && bits <= 63);
  if (bits == 0) return 0;
  if (strategy_ == MapStrategy::kQuantile && !boundaries_[pos].empty()) {
    const auto& bounds = boundaries_[pos];
    // Fine cell at max_bits_ resolution: count of boundaries < v... use
    // upper_bound on (bounds, v) semantics: cell = first boundary >= v.
    const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
    auto fine = static_cast<std::uint64_t>(it - bounds.begin());
    // Coarsen to the requested chunk width.
    if (bits < max_bits_) {
      fine >>= (max_bits_ - bits);
    } else if (bits > max_bits_) {
      // No extra resolution available: values collapse into the low cells.
      // (Callers normally keep bits <= max_bits.)
    }
    const std::uint64_t cap = (std::uint64_t{1} << std::min(bits, max_bits_)) - 1;
    return std::min(fine, cap);
  }
  if (strategy_ == MapStrategy::kRange) {
    const AttrDomain& d = domains_[pos];
    assert(d.hi >= d.lo);
    const auto span = static_cast<std::uint64_t>(d.hi - d.lo) + 1;
    std::uint64_t offset;
    if (v < d.lo) {
      offset = 0;  // clamp out-of-domain values to the edge partitions
    } else if (v > d.hi) {
      offset = span - 1;
    } else {
      offset = static_cast<std::uint64_t>(v - d.lo);
    }
    // Equi-width partition into 2^bits cells.
    const std::uint64_t cells = std::uint64_t{1} << bits;
    // offset * cells may overflow for huge spans; use 128-bit intermediate.
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(offset) * cells) / span);
  }
  // Fibonacci multiplicative hashing, then take the top `bits` bits for
  // good avalanche on sequential keys. Salt by position so identical values
  // in different attributes land in different cells.
  const std::uint64_t salt = 0x9e3779b97f4a7c15ULL * (pos + 1);
  std::uint64_t h = (static_cast<std::uint64_t>(v) + salt);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h >> (64 - bits);
}

}  // namespace amri::index
