#include "index/index_config.hpp"

#include <cassert>

namespace amri::index {

IndexConfig::IndexConfig(std::vector<std::uint8_t> bits_per_attr)
    : bits_(std::move(bits_per_attr)) {
  shifts_.resize(bits_.size(), 0);
  for (const std::uint8_t b : bits_) total_bits_ += b;
  assert(total_bits_ <= kMaxTotalBits);
  // Chunk layout: attribute 0 occupies the most-significant bits.
  int shift = total_bits_;
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    shift -= bits_[i];
    shifts_[i] = shift;
    if (bits_[i] > 0) {
      ++indexed_attrs_;
      indexed_mask_ |= (AttrMask{1} << i);
    }
  }
}

int IndexConfig::bits_for(AttrMask mask) const {
  int total = 0;
  for_each_bit(mask, [&](unsigned pos) {
    if (pos < bits_.size()) total += bits_[pos];
  });
  return total;
}

std::string IndexConfig::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (i != 0) out += ' ';
    out += static_cast<char>('A' + (i % 26));
    out += ':';
    out += std::to_string(static_cast<int>(bits_[i]));
  }
  out += ']';
  return out;
}

void enumerate_allocations(
    std::size_t num_attrs, int budget, int max_per_attr,
    const std::function<void(const std::vector<std::uint8_t>&)>& fn) {
  assert(budget >= 0);
  assert(max_per_attr >= 0);
  std::vector<std::uint8_t> alloc(num_attrs, 0);
  // Depth-first over attribute positions.
  const std::function<void(std::size_t, int)> rec = [&](std::size_t pos,
                                                        int remaining) {
    if (pos == num_attrs) {
      fn(alloc);
      return;
    }
    const int limit = std::min(remaining, max_per_attr);
    for (int b = 0; b <= limit; ++b) {
      alloc[pos] = static_cast<std::uint8_t>(b);
      rec(pos + 1, remaining - b);
    }
    alloc[pos] = 0;
  };
  rec(0, budget);
}

}  // namespace amri::index
