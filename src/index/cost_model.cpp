#include "index/cost_model.hpp"

#include <cmath>

namespace amri::index {

double CostModel::maintenance_cost(const IndexConfig& ic) const {
  return params_.lambda_d * ic.indexed_attr_count() * params_.hash_cost;
}

double CostModel::search_cost(const IndexConfig& ic, AttrMask ap) const {
  // Bits on attributes the probe binds narrow the candidate set.
  const int b_ap = ic.bits_for(ap);
  const double window_tuples = params_.lambda_d * params_.window_units;
  const double candidates = window_tuples / std::exp2(b_ap);
  const int n_a_ap = popcount(ap & ic.indexed_mask());
  return n_a_ap * params_.hash_cost + candidates * params_.compare_cost;
}

double CostModel::paper_cost(
    const IndexConfig& ic,
    const std::vector<PatternFrequency>& patterns) const {
  double search = 0.0;
  for (const PatternFrequency& p : patterns) {
    search += p.frequency * search_cost(ic, p.mask);
  }
  return maintenance_cost(ic) + params_.lambda_r * search;
}

double CostModel::extended_cost(
    const IndexConfig& ic,
    const std::vector<PatternFrequency>& patterns) const {
  double extra = 0.0;
  for (const PatternFrequency& p : patterns) {
    // Bits assigned to indexed attributes the probe does NOT bind force the
    // probe to visit 2^wild buckets.
    const int wild_bits = ic.total_bits() - ic.bits_for(p.mask);
    extra += p.frequency * std::exp2(wild_bits) * params_.bucket_cost;
  }
  return paper_cost(ic, patterns) + params_.lambda_r * extra;
}

}  // namespace amri::index
