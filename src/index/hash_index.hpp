// A single hash index over a fixed subset of a state's join attributes —
// one "access module" of the Raman et al. STeM design (paper §I-A).
//
// Every insert computes and stores a hash key linking to the tuple, which
// is exactly the per-tuple, per-index memory and maintenance cost the paper
// identifies as the weakness of the multi-hash approach.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "index/tuple_index.hpp"

namespace amri::index {

class HashIndex final : public TupleIndex {
 public:
  /// `key_mask` selects which JAS positions this index hashes.
  HashIndex(JoinAttributeSet jas, AttrMask key_mask,
            CostMeter* meter = nullptr, MemoryTracker* memory = nullptr);

  ~HashIndex() override;

  HashIndex(const HashIndex&) = delete;
  HashIndex& operator=(const HashIndex&) = delete;

  AttrMask key_mask() const { return key_mask_; }

  /// True iff this index can serve `probe_mask`: every key attribute is
  /// bound by the probe (index attrs ⊆ probe attrs).
  bool serves(AttrMask probe_mask) const {
    return is_subset(key_mask_, probe_mask);
  }

  void insert(const Tuple* t) override;
  void erase(const Tuple* t) override;

  /// Caller must ensure serves(key.mask); verified matches are appended.
  ProbeStats probe(const ProbeKey& key, std::vector<const Tuple*>& out) override;

  std::size_t size() const override { return size_; }
  std::size_t memory_bytes() const override;
  std::string name() const override;
  void clear() override;

 private:
  std::uint64_t hash_tuple(const Tuple& t);
  std::uint64_t hash_key(const ProbeKey& key);

  JoinAttributeSet jas_;
  AttrMask key_mask_;
  CostMeter* meter_;
  MemoryTracker* memory_;
  std::unordered_multimap<std::uint64_t, const Tuple*> table_;
  std::size_t size_ = 0;
  std::size_t tracked_bytes_ = 0;
};

}  // namespace amri::index
