// Index migration: moving a state's bit-address index from one IC to the
// next (paper §III: "adapt tuples in the state from BI1 to BI2 requires the
// relocation of each tuple to the buckets defined by BI2").
//
// Migration cost is N_A(new) hashes per stored tuple; the migrator charges
// it to the state's meter and can precompute bucket ids on a thread pool
// for large states (the charge stays identical — parallelism saves wall
// time, not modelled cost).
#pragma once

#include <cstdint>

#include "common/lock_ranks.gen.hpp"
#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "index/bit_address_index.hpp"
#include "telemetry/telemetry.hpp"

namespace amri::index {

struct MigrationReport {
  std::uint64_t tuples_moved = 0;
  std::uint64_t hashes_charged = 0;
  IndexConfig from;
  IndexConfig to;
  /// Virtual time the state was paused while rebuilding (0 without an
  /// attached telemetry clock; the modelled pause is hashes * C_h either
  /// way).
  TimeMicros pause_us = 0;
};

class IndexMigrator {
 public:
  /// `pool` may be null (sequential migration). With `telemetry` set the
  /// migrator emits migration_start/migration_end events for `stream` and
  /// records pause-duration/tuples-moved metrics under "stem.<stream>".
  explicit IndexMigrator(ThreadPool* pool = nullptr,
                         telemetry::Telemetry* telemetry = nullptr,
                         StreamId stream = 0);

  /// Rebuild `index` under `target`. No-op (zero-cost) if the IC is equal.
  /// Concurrent calls on one migrator serialize: the per-instance mutex
  /// covers the whole rebuild plus its telemetry emission, so a stream's
  /// migrator can be driven from pool threads without interleaving two
  /// reconfigurations of the same index.
  MigrationReport migrate(BitAddressIndex& index,
                          const IndexConfig& target) const AMRI_EXCLUDES(mu_);

 private:
  mutable Mutex mu_{lockrank::kIndexMigratorMu};
  // Set in the constructor, then only read under mu_ from migrate(): the
  // whole configuration is serialized behind the per-instance mutex.
  ThreadPool* pool_ AMRI_GUARDED_BY(mu_);
  telemetry::Telemetry* telemetry_ AMRI_GUARDED_BY(mu_);
  StreamId stream_ AMRI_GUARDED_BY(mu_);
  telemetry::Counter* migration_count_ AMRI_GUARDED_BY(mu_) = nullptr;
  telemetry::Counter* tuples_moved_ AMRI_GUARDED_BY(mu_) = nullptr;
  telemetry::Histogram* pause_hist_ AMRI_GUARDED_BY(mu_) = nullptr;
};

}  // namespace amri::index
