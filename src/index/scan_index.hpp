// Full-scan "index": no structure at all, every probe compares every stored
// tuple. This is the fallback when no access module serves a probe and the
// degenerate case of a zero-bit IC; it anchors the cost comparisons.
#pragma once

#include <vector>

#include "index/tuple_index.hpp"

namespace amri::index {

class ScanIndex final : public TupleIndex {
 public:
  explicit ScanIndex(JoinAttributeSet jas, CostMeter* meter = nullptr,
                     MemoryTracker* memory = nullptr);

  ~ScanIndex() override;

  ScanIndex(const ScanIndex&) = delete;
  ScanIndex& operator=(const ScanIndex&) = delete;

  void insert(const Tuple* t) override;
  void erase(const Tuple* t) override;
  ProbeStats probe(const ProbeKey& key, std::vector<const Tuple*>& out) override;

  std::size_t size() const override { return tuples_.size(); }
  std::size_t memory_bytes() const override {
    return tuples_.capacity() * sizeof(const Tuple*);
  }
  std::string name() const override { return "scan"; }
  void clear() override;

 private:
  void sync_memory();

  JoinAttributeSet jas_;
  CostMeter* meter_;
  MemoryTracker* memory_;
  std::vector<const Tuple*> tuples_;
  std::size_t tracked_bytes_ = 0;
};

}  // namespace amri::index
