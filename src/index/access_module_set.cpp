#include "index/access_module_set.hpp"

#include <algorithm>
#include <cassert>

namespace amri::index {

AccessModuleSet::AccessModuleSet(JoinAttributeSet jas,
                                 std::vector<AttrMask> module_masks,
                                 CostMeter* meter, MemoryTracker* memory)
    : jas_(jas), meter_(meter), memory_(memory), scan_(jas, meter, memory) {
  modules_.reserve(module_masks.size());
  for (const AttrMask mask : module_masks) {
    modules_.push_back(std::make_unique<HashIndex>(jas_, mask, meter, memory));
  }
}

std::vector<AttrMask> AccessModuleSet::module_masks() const {
  std::vector<AttrMask> out;
  out.reserve(modules_.size());
  for (const auto& m : modules_) out.push_back(m->key_mask());
  return out;
}

const HashIndex* AccessModuleSet::module_for(AttrMask probe_mask) const {
  const HashIndex* best = nullptr;
  for (const auto& m : modules_) {
    if (!m->serves(probe_mask)) continue;
    if (best == nullptr || popcount(m->key_mask()) > popcount(best->key_mask()) ||
        (popcount(m->key_mask()) == popcount(best->key_mask()) &&
         m->key_mask() < best->key_mask())) {
      best = m.get();
    }
  }
  return best;
}

void AccessModuleSet::insert(const Tuple* t) {
  scan_.insert(t);
  for (const auto& m : modules_) m->insert(t);
}

void AccessModuleSet::erase(const Tuple* t) {
  scan_.erase(t);
  for (const auto& m : modules_) m->erase(t);
}

ProbeStats AccessModuleSet::probe(const ProbeKey& key,
                                  std::vector<const Tuple*>& out) {
  // module_for is const lookup; we need the mutable module to probe.
  HashIndex* chosen = nullptr;
  for (const auto& m : modules_) {
    if (!m->serves(key.mask)) continue;
    if (chosen == nullptr ||
        popcount(m->key_mask()) > popcount(chosen->key_mask()) ||
        (popcount(m->key_mask()) == popcount(chosen->key_mask()) &&
         m->key_mask() < chosen->key_mask())) {
      chosen = m.get();
    }
  }
  if (chosen != nullptr) return chosen->probe(key, out);
  ++scan_fallbacks_;
  return scan_.probe(key, out);
}

std::size_t AccessModuleSet::memory_bytes() const {
  std::size_t total = scan_.memory_bytes();
  for (const auto& m : modules_) total += m->memory_bytes();
  return total;
}

std::string AccessModuleSet::name() const {
  return "access_modules(x" + std::to_string(modules_.size()) + ")";
}

void AccessModuleSet::clear() {
  scan_.clear();
  for (const auto& m : modules_) m->clear();
  scan_fallbacks_ = 0;
}

void AccessModuleSet::retune(const std::vector<AttrMask>& new_masks) {
  // Keep modules whose mask survives; build the others from scratch.
  // Rebuilding hashes every stored tuple — the adaptation cost the paper
  // attributes to "create and delete multiple hash keys per tuple".
  std::vector<std::unique_ptr<HashIndex>> next;
  std::vector<HashIndex*> fresh;
  next.reserve(new_masks.size());
  for (const AttrMask mask : new_masks) {
    assert(mask != 0);
    const auto existing = std::find_if(
        modules_.begin(), modules_.end(),
        [mask](const auto& m) { return m && m->key_mask() == mask; });
    if (existing != modules_.end()) {
      next.push_back(std::move(*existing));
      continue;
    }
    next.push_back(std::make_unique<HashIndex>(jas_, mask, meter_, memory_));
    fresh.push_back(next.back().get());
  }
  if (!fresh.empty() && scan_.size() > 0) {
    // A zero-bound probe matches every stored tuple; the comparison charge
    // models the rebuild's pass over the state.
    std::vector<const Tuple*> all;
    ProbeKey match_all;
    match_all.mask = 0;
    match_all.values.resize(jas_.size(), Value{0});
    scan_.probe(match_all, all);
    for (HashIndex* m : fresh) {
      for (const Tuple* t : all) m->insert(t);
    }
  }
  modules_ = std::move(next);
}

}  // namespace amri::index
