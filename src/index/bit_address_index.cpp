#include "index/bit_address_index.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/assertions.hpp"

namespace amri::index {

namespace {
// Sparse-directory node overhead estimate: hash node + key.
constexpr std::size_t kBucketOverhead = 48;
}  // namespace

BitAddressIndex::BitAddressIndex(JoinAttributeSet jas, IndexConfig config,
                                 BitMapper mapper, CostMeter* meter,
                                 MemoryTracker* memory)
    : jas_(std::move(jas)),
      config_(std::move(config)),
      mapper_(std::move(mapper)),
      meter_(meter),
      memory_(memory) {
  assert(config_.num_attrs() == jas_.size());
  assert(mapper_.num_attrs() == jas_.size());
}

BitAddressIndex::~BitAddressIndex() {
  if (memory_ != nullptr && tracked_bytes_ > 0) {
    memory_->release(MemCategory::kIndexStructure, tracked_bytes_);
  }
}

void BitAddressIndex::bind_telemetry(telemetry::Telemetry* telemetry,
                                     const std::string& prefix) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) {
    wildcard_hist_ = chain_hist_ = nullptr;
    probes_enumerated_ = probes_filtered_ = nullptr;
    imbalance_gauge_ = nullptr;
    return;
  }
  auto& reg = telemetry_->metrics();
  wildcard_hist_ =
      &reg.histogram(prefix + ".probe.wildcard_buckets",
                     telemetry::Histogram::exponential_bounds(1.0, 2.0, 14));
  chain_hist_ =
      &reg.histogram(prefix + ".bucket.chain_len",
                     telemetry::Histogram::exponential_bounds(1.0, 2.0, 12));
  probes_enumerated_ = &reg.counter(prefix + ".probe.enumerated");
  probes_filtered_ = &reg.counter(prefix + ".probe.filtered");
  imbalance_gauge_ = &reg.gauge(prefix + ".occupancy.imbalance");
}

BucketId BitAddressIndex::bucket_of_uncharged(const Tuple& t) const {
  BucketId id = 0;
  for (std::size_t pos = 0; pos < config_.num_attrs(); ++pos) {
    const int bits = config_.bits(pos);
    if (bits == 0) continue;
    id |= mapper_.map(pos, t.at(jas_.tuple_attr(pos)), bits)
          << config_.shift_of(pos);
  }
  return id;
}

BucketId BitAddressIndex::bucket_of(const Tuple& t) {
  BucketId id = 0;
  for (std::size_t pos = 0; pos < config_.num_attrs(); ++pos) {
    const int bits = config_.bits(pos);
    if (bits == 0) continue;
    const std::uint64_t chunk =
        mapper_.map(pos, t.at(jas_.tuple_attr(pos)), bits);
    id |= chunk << config_.shift_of(pos);
    if (meter_ != nullptr) meter_->charge_hash();
  }
  return id;
}

void BitAddressIndex::insert(const Tuple* t) {
  assert(t != nullptr);
  const BucketId id = bucket_of(*t);
  Bucket& bucket = buckets_[id];
  bucket.push_back(t);
  ++size_;
  if (chain_hist_ != nullptr) {
    chain_hist_->observe(static_cast<double>(bucket.size()));
  }
  if (meter_ != nullptr) meter_->charge_insert();
  // Memory delta sync (pointer + possible directory growth).
  const std::size_t now = memory_bytes();
  if (memory_ != nullptr && now > tracked_bytes_) {
    memory_->allocate(MemCategory::kIndexStructure, now - tracked_bytes_);
  }
  tracked_bytes_ = now;
}

void BitAddressIndex::erase(const Tuple* t) {
  assert(t != nullptr);
  const BucketId id = bucket_of(*t);
  const auto it = buckets_.find(id);
  if (it == buckets_.end()) return;
  Bucket& bucket = it->second;
  const auto pos = std::find(bucket.begin(), bucket.end(), t);
  if (pos == bucket.end()) return;
  *pos = bucket.back();
  bucket.pop_back();
  --size_;
  if (bucket.empty()) buckets_.erase(it);
  if (meter_ != nullptr) meter_->charge_delete();
  const std::size_t now = memory_bytes();
  if (memory_ != nullptr && now < tracked_bytes_) {
    memory_->release(MemCategory::kIndexStructure, tracked_bytes_ - now);
  }
  tracked_bytes_ = now;
}

BitAddressIndex::ProbeLayout BitAddressIndex::layout_for(const ProbeKey& key) {
  ProbeLayout layout;
  for (std::size_t pos = 0; pos < config_.num_attrs(); ++pos) {
    const int bits = config_.bits(pos);
    if (bits == 0) continue;
    if (has_bit(key.mask, static_cast<unsigned>(pos))) {
      const std::uint64_t chunk = mapper_.map(pos, key.values[pos], bits);
      layout.fixed |= chunk << config_.shift_of(pos);
      layout.fixed_mask |= low_bits64(bits) << config_.shift_of(pos);
      if (meter_ != nullptr) meter_->charge_hash();  // N_{A,ap} · C_h
    } else {
      layout.wildcard_bits += bits;
    }
  }
  return layout;
}

ProbeStats BitAddressIndex::probe(const ProbeKey& key,
                                  std::vector<const Tuple*>& out) {
  ProbeStats stats;
  const ProbeLayout layout = layout_for(key);

  auto scan_bucket = [&](const Bucket& bucket) {
    ++stats.buckets_visited;
    if (meter_ != nullptr) meter_->charge_bucket_visit();
    for (const Tuple* t : bucket) {
      ++stats.tuples_compared;
      if (meter_ != nullptr) meter_->charge_compare();
      if (key.matches(*t, jas_)) {
        out.push_back(t);
        ++stats.matches;
      }
    }
  };

  const std::uint64_t enum_count = pow2_saturating(layout.wildcard_bits);
  if (wildcard_hist_ != nullptr) {
    wildcard_hist_->observe(static_cast<double>(enum_count));
    (enum_count <= buckets_.size() ? probes_enumerated_ : probes_filtered_)
        ->add();
  }
  if (enum_count <= buckets_.size()) {
    // Enumerate the wildcard combinations and look each bucket id up.
    // Distribute the enumeration counter's bits into the unfixed positions.
    // Precompute the unfixed indexed bit positions (ascending).
    SmallVector<std::uint8_t, 32> free_positions;
    for (int bit = 0; bit < config_.total_bits(); ++bit) {
      if ((layout.fixed_mask >> bit & 1u) == 0) {
        free_positions.push_back(static_cast<std::uint8_t>(bit));
      }
    }
    assert(static_cast<int>(free_positions.size()) == layout.wildcard_bits);
    for (std::uint64_t w = 0; w < enum_count; ++w) {
      BucketId id = layout.fixed;
      for (std::size_t i = 0; i < free_positions.size(); ++i) {
        if ((w >> i) & 1u) id |= BucketId{1} << free_positions[i];
      }
      const auto it = buckets_.find(id);
      if (meter_ != nullptr) meter_->charge_bucket_visit();
      ++stats.buckets_visited;
      if (it == buckets_.end()) continue;
      // scan_bucket would double-count the visit; inline the scan.
      for (const Tuple* t : it->second) {
        ++stats.tuples_compared;
        if (meter_ != nullptr) meter_->charge_compare();
        if (key.matches(*t, jas_)) {
          out.push_back(t);
          ++stats.matches;
        }
      }
    }
  } else {
    // Cheaper to filter the sparse directory by the fixed bits.
    for (const auto& [id, bucket] : buckets_) {
      if ((id & layout.fixed_mask) != layout.fixed) continue;
      scan_bucket(bucket);
    }
  }
  return stats;
}

ProbeStats BitAddressIndex::probe_range(const RangeProbeKey& key,
                                        std::vector<const Tuple*>& out) {
  ProbeStats stats;
  // Per indexed attribute: the inclusive chunk interval its bucket-id bits
  // may take. Unbound attributes — and hash-mapped attributes with a
  // non-degenerate interval — span their whole chunk space.
  struct ChunkRange {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    int shift = 0;
  };
  SmallVector<ChunkRange, kInlineAttrs> ranges;
  __uint128_t combinations = 1;
  for (std::size_t pos = 0; pos < config_.num_attrs(); ++pos) {
    const int bits = config_.bits(pos);
    if (bits == 0) continue;
    ChunkRange cr;
    cr.shift = config_.shift_of(pos);
    cr.hi = low_bits64(bits);
    if (key.bound(pos)) {
      const bool degenerate = key.los[pos] == key.his[pos];
      if (mapper_.order_preserving(pos)) {
        cr.lo = mapper_.map(pos, key.los[pos], bits);
        cr.hi = mapper_.map(pos, key.his[pos], bits);
        if (meter_ != nullptr) meter_->charge_hash(2);
      } else if (degenerate) {
        cr.lo = cr.hi = mapper_.map(pos, key.los[pos], bits);
        if (meter_ != nullptr) meter_->charge_hash();
      }
      // hash mapper + real interval: keep the full chunk span.
    }
    combinations *= (cr.hi - cr.lo + 1);
    ranges.push_back(cr);
  }

  auto scan_bucket = [&](const Bucket& bucket) {
    for (const Tuple* t : bucket) {
      ++stats.tuples_compared;
      if (meter_ != nullptr) meter_->charge_compare();
      if (key.matches(*t, jas_)) {
        out.push_back(t);
        ++stats.matches;
      }
    }
  };

  if (combinations <= buckets_.size()) {
    // Odometer over the per-attribute chunk ranges.
    SmallVector<std::uint64_t, kInlineAttrs> current;
    for (const ChunkRange& cr : ranges) current.push_back(cr.lo);
    while (true) {
      BucketId id = 0;
      for (std::size_t i = 0; i < ranges.size(); ++i) {
        id |= current[i] << ranges[i].shift;
      }
      ++stats.buckets_visited;
      if (meter_ != nullptr) meter_->charge_bucket_visit();
      const auto it = buckets_.find(id);
      if (it != buckets_.end()) scan_bucket(it->second);
      // Advance the odometer; when every digit wraps, we are done.
      std::size_t i = 0;
      for (; i < ranges.size(); ++i) {
        if (current[i] < ranges[i].hi) {
          ++current[i];
          break;
        }
        current[i] = ranges[i].lo;
      }
      if (i == ranges.size()) break;
    }
  } else {
    // Cheaper to filter the directory: extract each indexed attribute's
    // chunk from the bucket id and test it against the chunk range.
    for (const auto& [id, bucket] : buckets_) {
      bool in_range = true;
      for (std::size_t pos = 0, r = 0; pos < config_.num_attrs(); ++pos) {
        const int bits = config_.bits(pos);
        if (bits == 0) continue;
        const std::uint64_t chunk =
            (id >> config_.shift_of(pos)) & low_bits64(bits);
        if (chunk < ranges[r].lo || chunk > ranges[r].hi) {
          in_range = false;
          break;
        }
        ++r;
      }
      if (!in_range) continue;
      ++stats.buckets_visited;
      if (meter_ != nullptr) meter_->charge_bucket_visit();
      scan_bucket(bucket);
    }
  }
  return stats;
}

BitAddressIndex::OccupancyStats BitAddressIndex::occupancy() const {
  OccupancyStats stats;
  stats.occupied = buckets_.size();
  stats.tuples = size_;
  if (buckets_.empty()) return stats;
  stats.min = SIZE_MAX;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const auto& [id, bucket] : buckets_) {
    (void)id;
    const std::size_t n = bucket.size();
    stats.min = std::min(stats.min, n);
    stats.max = std::max(stats.max, n);
    sum += static_cast<double>(n);
    sum_sq += static_cast<double>(n) * static_cast<double>(n);
  }
  const auto k = static_cast<double>(buckets_.size());
  stats.mean = sum / k;
  const double var = sum_sq / k - stats.mean * stats.mean;
  stats.stddev = var > 0.0 ? std::sqrt(var) : 0.0;
  stats.imbalance =
      stats.mean > 0.0 ? static_cast<double>(stats.max) / stats.mean : 0.0;
  return stats;
}

std::size_t BitAddressIndex::memory_bytes() const {
  return buckets_.size() * (sizeof(Bucket) + kBucketOverhead) +
         size_ * sizeof(const Tuple*);
}

std::string BitAddressIndex::name() const {
  return "bit_address" + config_.to_string();
}

void BitAddressIndex::clear() {
  buckets_.clear();
  size_ = 0;
  if (memory_ != nullptr && tracked_bytes_ > 0) {
    memory_->release(MemCategory::kIndexStructure, tracked_bytes_);
  }
  tracked_bytes_ = 0;
}

void BitAddressIndex::bulk_load(const std::vector<const Tuple*>& tuples,
                                ThreadPool* pool) {
  // Phase 1: bucket ids, parallel when a pool is provided. Uses an
  // uncharged local computation identical to bucket_of(); the modelled
  // cost is charged once below so parallelism changes wall time only.
  std::vector<BucketId> ids(tuples.size());
  auto compute = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      ids[i] = bucket_of_uncharged(*tuples[i]);
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(0, tuples.size(), compute, /*min_chunk=*/512);
  } else {
    compute(0, tuples.size());
  }
  // Phase 2: serial, deterministic directory insertion.
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    buckets_[ids[i]].push_back(tuples[i]);
  }
  size_ += tuples.size();
  if (meter_ != nullptr) {
    meter_->charge_hash(tuples.size() *
                        static_cast<std::uint64_t>(config_.indexed_attr_count()));
    meter_->charge_insert(tuples.size());
  }
  const std::size_t now = memory_bytes();
  if (memory_ != nullptr && now > tracked_bytes_) {
    memory_->allocate(MemCategory::kIndexStructure, now - tracked_bytes_);
  }
  tracked_bytes_ = now;
  AMRI_CHECK_INVARIANTS(*this);
}

void BitAddressIndex::check_invariants() const {
  const BucketId id_mask = low_bits64(config_.total_bits());
  std::size_t tuples = 0;
  for (const auto& [id, bucket] : buckets_) {
    AMRI_CHECK(!bucket.empty(),
               "sparse directory must not retain empty buckets");
    AMRI_CHECK((id & ~id_mask) == 0,
               "bucket id uses bits outside the IC's total_bits");
    tuples += bucket.size();
    for (const Tuple* t : bucket) {
      AMRI_CHECK(t != nullptr, "stored tuple pointer is null");
      AMRI_CHECK(bucket_of_uncharged(*t) == id,
                 "stored tuple does not rehash to its bucket under the "
                 "current IC (missed relocation during migration?)");
    }
  }
  AMRI_CHECK(tuples == size_,
             "size_ disagrees with the sum of bucket sizes");
  AMRI_CHECK(memory_ == nullptr || tracked_bytes_ == memory_bytes(),
             "memory-tracker bookkeeping is stale");
}

void BitAddressIndex::reconfigure(const IndexConfig& new_config) {
  assert(new_config.num_attrs() == jas_.size());
  std::vector<const Tuple*> all;
  all.reserve(size_);
  for_each_tuple([&](const Tuple* t) { all.push_back(t); });
  buckets_.clear();
  size_ = 0;
  config_ = new_config;
  for (const Tuple* t : all) {
    const BucketId id = bucket_of(*t);  // charges N_A hashes per tuple
    buckets_[id].push_back(t);
    ++size_;
  }
  const std::size_t now = memory_bytes();
  if (memory_ != nullptr) {
    if (now > tracked_bytes_) {
      memory_->allocate(MemCategory::kIndexStructure, now - tracked_bytes_);
    } else {
      memory_->release(MemCategory::kIndexStructure, tracked_bytes_ - now);
    }
  }
  tracked_bytes_ = now;
  if (imbalance_gauge_ != nullptr) {
    imbalance_gauge_->set(occupancy().imbalance);
  }
  AMRI_CHECK_INVARIANTS(*this);
}

}  // namespace amri::index
