#include "index/bit_address_index.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "common/assertions.hpp"

namespace amri::index {

BitAddressIndex::BitAddressIndex(JoinAttributeSet jas, IndexConfig config,
                                 BitMapper mapper, CostMeter* meter,
                                 MemoryTracker* memory)
    : jas_(std::move(jas)),
      config_(std::move(config)),
      mapper_(std::move(mapper)),
      meter_(meter),
      memory_(memory) {
  assert(config_.num_attrs() == jas_.size());
  assert(mapper_.num_attrs() == jas_.size());
}

BitAddressIndex::~BitAddressIndex() {
  if (memory_ != nullptr && tracked_bytes_ > 0) {
    memory_->release(MemCategory::kIndexStructure, tracked_bytes_);
  }
}

void BitAddressIndex::bind_telemetry(telemetry::Telemetry* telemetry,
                                     const std::string& prefix) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) {
    wildcard_hist_ = chain_hist_ = nullptr;
    probes_enumerated_ = probes_filtered_ = nullptr;
    imbalance_gauge_ = nullptr;
    return;
  }
  auto& reg = telemetry_->metrics();
  wildcard_hist_ =
      &reg.histogram(prefix + ".probe.wildcard_buckets",
                     telemetry::Histogram::exponential_bounds(1.0, 2.0, 14));
  chain_hist_ =
      &reg.histogram(prefix + ".bucket.chain_len",
                     telemetry::Histogram::exponential_bounds(1.0, 2.0, 12));
  probes_enumerated_ = &reg.counter(prefix + ".probe.enumerated");
  probes_filtered_ = &reg.counter(prefix + ".probe.filtered");
  imbalance_gauge_ = &reg.gauge(prefix + ".occupancy.imbalance");
}

BucketId BitAddressIndex::bucket_of_uncharged(const Tuple& t) const {
  BucketId id = 0;
  for (std::size_t pos = 0; pos < config_.num_attrs(); ++pos) {
    const int bits = config_.bits(pos);
    if (bits == 0) continue;
    id |= mapper_.map(pos, t.at(jas_.tuple_attr(pos)), bits)
          << config_.shift_of(pos);
  }
  return id;
}

BucketId BitAddressIndex::bucket_of(const Tuple& t) {
  BucketId id = 0;
  for (std::size_t pos = 0; pos < config_.num_attrs(); ++pos) {
    const int bits = config_.bits(pos);
    if (bits == 0) continue;
    const std::uint64_t chunk =
        mapper_.map(pos, t.at(jas_.tuple_attr(pos)), bits);
    id |= chunk << config_.shift_of(pos);
    if (meter_ != nullptr) meter_->charge_hash();
  }
  return id;
}

std::uint64_t BitAddressIndex::tuple_tag(const Tuple& t) const {
  // FNV-1a over the tuple's JAS values in position order. Must stay in
  // lockstep with key_tag(): a fully bound probe key's tag equals the tag
  // of every tuple it can match.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t pos = 0; pos < jas_.size(); ++pos) {
    h ^= static_cast<std::uint64_t>(t.at(jas_.tuple_attr(pos)));
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t BitAddressIndex::key_tag(const ProbeKey& key) const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t pos = 0; pos < jas_.size(); ++pos) {
    h ^= static_cast<std::uint64_t>(key.values[pos]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void BitAddressIndex::sync_memory() {
  const std::size_t now = memory_bytes();
  if (memory_ != nullptr) {
    if (now > tracked_bytes_) {
      memory_->allocate(MemCategory::kIndexStructure, now - tracked_bytes_);
    } else if (now < tracked_bytes_) {
      memory_->release(MemCategory::kIndexStructure, tracked_bytes_ - now);
    }
  }
  tracked_bytes_ = now;
}

void BitAddressIndex::insert(const Tuple* t) {
  assert(t != nullptr);
  const BucketId id = bucket_of(*t);
  const std::size_t chain = buckets_.insert(id, t, tuple_tag(*t));
  ++size_;
  if (chain_hist_ != nullptr) {
    chain_hist_->observe(static_cast<double>(chain));
  }
  if (meter_ != nullptr) meter_->charge_insert();
  sync_memory();
}

void BitAddressIndex::erase(const Tuple* t) {
  assert(t != nullptr);
  const BucketId id = bucket_of(*t);
  if (!buckets_.erase(id, t)) return;
  --size_;
  if (meter_ != nullptr) meter_->charge_delete();
  sync_memory();
}

void BitAddressIndex::insert_batch(const Tuple* const* tuples,
                                   std::size_t n) {
  // Destination addresses up front, uncharged (the mapper is pure — the
  // bulk_load() precedent); the per-tuple loop below replays the hash
  // charges in insert()'s exact order. The precomputed ids are what makes
  // the cross-tuple slot prefetch possible.
  SmallVector<BucketId, 64> ids;
  SmallVector<std::uint64_t, 64> tags;
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(bucket_of_uncharged(*tuples[i]));
    tags.push_back(tuple_tag(*tuples[i]));
  }
  if (prefetch_) {
    for (std::size_t j = 0; j < kPrefetchAhead && j < n; ++j) {
      buckets_.prefetch_write(ids[j]);
    }
  }
  const int hash_charges = [&] {
    int c = 0;
    for (std::size_t pos = 0; pos < config_.num_attrs(); ++pos) {
      if (config_.bits(pos) != 0) ++c;
    }
    return c;
  }();
  for (std::size_t i = 0; i < n; ++i) {
    // A directory grow mid-batch relocates every slot; the stale prefetches
    // in flight are harmless hints and the next iterations re-warm.
    if (prefetch_ && i + kPrefetchAhead < n) {
      buckets_.prefetch_write(ids[i + kPrefetchAhead]);
    }
    if (meter_ != nullptr) {
      for (int h = 0; h < hash_charges; ++h) meter_->charge_hash();
    }
    const std::size_t chain = buckets_.insert(ids[i], tuples[i], tags[i]);
    ++size_;
    if (chain_hist_ != nullptr) {
      chain_hist_->observe(static_cast<double>(chain));
    }
    if (meter_ != nullptr) meter_->charge_insert();
  }
  sync_memory();
}

void BitAddressIndex::erase_batch(const Tuple* const* tuples, std::size_t n) {
  SmallVector<BucketId, 64> ids;
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(bucket_of_uncharged(*tuples[i]));
  }
  if (prefetch_) {
    for (std::size_t j = 0; j < kPrefetchAhead && j < n; ++j) {
      buckets_.prefetch_write(ids[j]);
    }
  }
  const int hash_charges = [&] {
    int c = 0;
    for (std::size_t pos = 0; pos < config_.num_attrs(); ++pos) {
      if (config_.bits(pos) != 0) ++c;
    }
    return c;
  }();
  for (std::size_t i = 0; i < n; ++i) {
    if (prefetch_ && i + kPrefetchAhead < n) {
      buckets_.prefetch_write(ids[i + kPrefetchAhead]);
    }
    if (meter_ != nullptr) {
      for (int h = 0; h < hash_charges; ++h) meter_->charge_hash();
    }
    if (!buckets_.erase(ids[i], tuples[i])) continue;
    --size_;
    if (meter_ != nullptr) meter_->charge_delete();
  }
  sync_memory();
}

BitAddressIndex::ProbeLayout BitAddressIndex::layout_for(const ProbeKey& key) {
  ProbeLayout layout;
  for (std::size_t pos = 0; pos < config_.num_attrs(); ++pos) {
    const int bits = config_.bits(pos);
    if (bits == 0) continue;
    if (has_bit(key.mask, static_cast<unsigned>(pos))) {
      const std::uint64_t chunk = mapper_.map(pos, key.values[pos], bits);
      layout.fixed |= chunk << config_.shift_of(pos);
      layout.fixed_mask |= low_bits64(bits) << config_.shift_of(pos);
      if (meter_ != nullptr) meter_->charge_hash();  // N_{A,ap} · C_h
    } else {
      layout.wildcard_bits += bits;
    }
  }
  return layout;
}

ProbeStats BitAddressIndex::probe(const ProbeKey& key,
                                  std::vector<const Tuple*>& out) {
  ProbeStats stats;
  const ProbeLayout layout = layout_for(key);

  auto scan_bucket = [&](const Bucket& bucket) {
    for (const BucketEntry& e : bucket) {
      ++stats.tuples_compared;
      if (meter_ != nullptr) meter_->charge_compare();
      if (key.matches(*e.tuple, jas_)) {
        out.push_back(e.tuple);
        ++stats.matches;
      }
    }
  };

  const std::uint64_t enum_count = pow2_saturating(layout.wildcard_bits);
  if (wildcard_hist_ != nullptr) {
    wildcard_hist_->observe(static_cast<double>(enum_count));
    (enum_count <= buckets_.size() ? probes_enumerated_ : probes_filtered_)
        ->add();
  }
  if (layout.wildcard_bits == 0) {
    // Fully bound: exactly one bucket, no enumeration machinery.
    if (meter_ != nullptr) meter_->charge_bucket_visit();
    ++stats.buckets_visited;
    const Bucket* bucket = buckets_.find(layout.fixed);
    if (bucket != nullptr) {
      if (static_cast<std::size_t>(key.bound_count()) == jas_.size()) {
        // Every JAS attribute is bound, so the stored whole-tuple tag is
        // decisive: mismatching entries are rejected in the cached bucket
        // memory without touching the tuple. The tag check is the modelled
        // comparison (same tuples_compared / C_c charge as the slow path);
        // matches() then guards against tag collisions.
        const std::uint64_t tag = key_tag(key);
        for (const BucketEntry& e : *bucket) {
          ++stats.tuples_compared;
          if (meter_ != nullptr) meter_->charge_compare();
          if (e.tag != tag) continue;
          if (key.matches(*e.tuple, jas_)) {
            out.push_back(e.tuple);
            ++stats.matches;
          }
        }
      } else {
        scan_bucket(*bucket);
      }
    }
  } else if (enum_count <= buckets_.size()) {
    // Enumerate the wildcard combinations and look each bucket id up.
    // Distribute the enumeration counter's bits into the unfixed positions.
    // Precompute the unfixed indexed bit positions (ascending).
    SmallVector<std::uint8_t, 32> free_positions;
    for (int bit = 0; bit < config_.total_bits(); ++bit) {
      if ((layout.fixed_mask >> bit & 1u) == 0) {
        free_positions.push_back(static_cast<std::uint8_t>(bit));
      }
    }
    assert(static_cast<int>(free_positions.size()) == layout.wildcard_bits);
    for (std::uint64_t w = 0; w < enum_count; ++w) {
      BucketId id = layout.fixed;
      for (std::size_t i = 0; i < free_positions.size(); ++i) {
        if ((w >> i) & 1u) id |= BucketId{1} << free_positions[i];
      }
      if (meter_ != nullptr) meter_->charge_bucket_visit();
      ++stats.buckets_visited;
      const Bucket* bucket = buckets_.find(id);
      if (bucket != nullptr) scan_bucket(*bucket);
    }
  } else {
    // Cheaper to filter the flat directory by the fixed bits.
    buckets_.for_each([&](BucketId id, const Bucket& bucket) {
      if ((id & layout.fixed_mask) != layout.fixed) return;
      ++stats.buckets_visited;
      if (meter_ != nullptr) meter_->charge_bucket_visit();
      scan_bucket(bucket);
    });
  }
  return stats;
}

void BitAddressIndex::probe_batch(const ProbeKey* keys, std::size_t n,
                                  std::vector<const Tuple*>* outs,
                                  ProbeStats* stats) {
  if (n == 0) return;
  if (n == 1) {
    stats[0] = probe(keys[0], outs[0]);
    return;
  }

  // Per-access-pattern shared work. Which bucket-id bits a mask fixes, the
  // wildcard width, the enumerate-vs-filter strategy and (when enumerating)
  // the wildcard bit combinations are functions of the mask alone — compute
  // them once per distinct mask in the batch. The directory is not mutated
  // by probes, so the strategy choice is stable for the whole batch.
  struct Group {
    AttrMask mask = 0;
    BucketId fixed_mask = 0;
    int wildcard_bits = 0;
    std::uint64_t enum_count = 1;
    bool enumerate_path = false;   ///< wildcard > 0 and enumeration cheaper
    std::uint32_t bound_hashes = 0;  ///< bound indexed attrs (N_{A,ap})
    /// Unfixed indexed bit positions, ascending — probe()'s visit order.
    SmallVector<std::uint8_t, 32> free_positions;
    /// Wildcard bit combinations in w order, materialized only when the
    /// group stays under kComboMaterializeCap; wider wildcards enumerate
    /// lazily from free_positions so the batched path never allocates more
    /// than the unbatched one.
    std::vector<BucketId> combos;
  };
  SmallVector<std::uint32_t, 64> group_of;
  std::vector<Group> groups;
  // mask → group index, so adversarial mask mixes (many distinct masks per
  // batch) stay O(n) instead of the quadratic per-key linear group scan.
  std::unordered_map<AttrMask, std::uint32_t> group_index;
  for (std::size_t i = 0; i < n; ++i) {
    const auto [it, inserted] = group_index.try_emplace(
        keys[i].mask, static_cast<std::uint32_t>(groups.size()));
    if (inserted) {
      Group grp;
      grp.mask = keys[i].mask;
      for (std::size_t pos = 0; pos < config_.num_attrs(); ++pos) {
        const int bits = config_.bits(pos);
        if (bits == 0) continue;
        if (has_bit(grp.mask, static_cast<unsigned>(pos))) {
          grp.fixed_mask |= low_bits64(bits) << config_.shift_of(pos);
          ++grp.bound_hashes;
        } else {
          grp.wildcard_bits += bits;
        }
      }
      grp.enum_count = pow2_saturating(grp.wildcard_bits);
      grp.enumerate_path =
          grp.wildcard_bits > 0 && grp.enum_count <= buckets_.size();
      if (grp.enumerate_path) {
        // Distribute the enumeration counter's bits into the unfixed
        // indexed bit positions (ascending — probe()'s visit order).
        for (int bit = 0; bit < config_.total_bits(); ++bit) {
          if ((grp.fixed_mask >> bit & 1u) == 0) {
            grp.free_positions.push_back(static_cast<std::uint8_t>(bit));
          }
        }
        assert(static_cast<int>(grp.free_positions.size()) ==
               grp.wildcard_bits);
        if (grp.enum_count <= kComboMaterializeCap) {
          grp.combos.reserve(grp.enum_count);
          for (std::uint64_t w = 0; w < grp.enum_count; ++w) {
            BucketId id = 0;
            for (std::size_t b = 0; b < grp.free_positions.size(); ++b) {
              if ((w >> b) & 1u) id |= BucketId{1} << grp.free_positions[b];
            }
            grp.combos.push_back(id);
          }
        }
      }
      groups.push_back(std::move(grp));
    }
    group_of.push_back(it->second);
  }

  // Precompute every key's fixed bucket-id bits up front, uncharged — the
  // mapper is pure (the bulk_load() precedent); the per-key pass below
  // charges the same N_{A,ap} hashes in the same batch order. Knowing each
  // key's first bucket address ahead of time is what lets the kernel
  // prefetch across keys.
  SmallVector<BucketId, 64> fixed_of;
  for (std::size_t i = 0; i < n; ++i) {
    const ProbeKey& key = keys[i];
    BucketId fixed = 0;
    for (std::size_t pos = 0; pos < config_.num_attrs(); ++pos) {
      const int bits = config_.bits(pos);
      if (bits == 0 || !has_bit(key.mask, static_cast<unsigned>(pos))) {
        continue;
      }
      fixed |= mapper_.map(pos, key.values[pos], bits)
               << config_.shift_of(pos);
    }
    fixed_of.push_back(fixed);
  }

  // A probe's first bucket visit is always at its fixed bits (the w == 0
  // wildcard combination is zero), so warming fixed_of[j] covers key j's
  // first directory access. Filter-path keys scan the directory
  // sequentially and need no warming.
  const auto prefetch_key = [&](std::size_t j) {
    if (j >= n) return;
    const Group& g = groups[group_of[j]];
    if (g.wildcard_bits == 0 || g.enumerate_path) {
      buckets_.prefetch(fixed_of[j]);
    }
  };
  // Near stage of the two-stage pipeline, for fully-bound keys: by now the
  // slot line is in cache (warmed kPrefetchFar - kPrefetchAhead keys ago),
  // so the bucket's entries can be read for free and the tag-matching
  // tuples the probe is about to dereference — the second dependent miss —
  // prefetched in turn. Reads only, nothing charged: the charged compare
  // pass below re-reads the same cached lines. Partially-bound keys skip
  // this stage: without the tag filter every entry would be prefetched,
  // and the extra find() per key costs more than untargeted hints return.
  // The stage only engages at all when buckets are deep enough
  // (kDeepPrefetchMinChain mean entries) for the prefetched dereferences
  // to amortise its per-key find: on 1-2-entry buckets the out-of-order
  // window already overlaps the loads and the stage is pure overhead.
  const bool deep_prefetch =
      prefetch_ && !buckets_.empty() &&
      size_ >= kDeepPrefetchMinChain * buckets_.size();
  const auto prefetch_tuples = [&](std::size_t j) {
    if (j >= n) return;
    const Group& g = groups[group_of[j]];
    if (g.wildcard_bits != 0 ||
        static_cast<std::size_t>(keys[j].bound_count()) != jas_.size()) {
      return;
    }
    const Bucket* bucket = buckets_.find(fixed_of[j]);
    if (bucket == nullptr) return;
    const std::uint64_t tag = key_tag(keys[j]);
    for (const BucketEntry& e : *bucket) {
      if (e.tag == tag) __builtin_prefetch(e.tuple, /*rw=*/0, /*locality=*/1);
    }
  };
  if (prefetch_) {
    for (std::size_t j = 0; j < kPrefetchFar && j < n; ++j) {
      prefetch_key(j);
    }
    for (std::size_t j = 0; j < kPrefetchAhead && j < n; ++j) {
      if (deep_prefetch) prefetch_tuples(j);
    }
  }

  // Per-key pass, in batch order: bound-value mapper hashes, bucket visits
  // and comparisons are performed and charged exactly as n single probes.
  for (std::size_t i = 0; i < n; ++i) {
    const Group& grp = groups[group_of[i]];
    const ProbeKey& key = keys[i];
    ProbeStats& st = stats[i];
    st = ProbeStats{};
    std::vector<const Tuple*>& out = outs[i];
    const BucketId fixed = fixed_of[i];

    // The bound-value mapper hashes were performed in the pre-pass; charge
    // them here, one call per bound indexed attribute, preserving probe()'s
    // exact charge sequence (and floating-point accumulation order).
    if (meter_ != nullptr) {
      for (std::uint32_t h = 0; h < grp.bound_hashes; ++h) {
        meter_->charge_hash();  // N_{A,ap} · C_h
      }
    }
    if (prefetch_) {
      prefetch_key(i + kPrefetchFar);
      if (deep_prefetch) prefetch_tuples(i + kPrefetchAhead);
    }

    auto scan_bucket = [&](const Bucket& bucket) {
      for (const BucketEntry& e : bucket) {
        ++st.tuples_compared;
        if (meter_ != nullptr) meter_->charge_compare();
        if (key.matches(*e.tuple, jas_)) {
          out.push_back(e.tuple);
          ++st.matches;
        }
      }
    };

    if (wildcard_hist_ != nullptr) {
      wildcard_hist_->observe(static_cast<double>(grp.enum_count));
      (grp.enum_count <= buckets_.size() ? probes_enumerated_
                                         : probes_filtered_)
          ->add();
    }
    if (grp.wildcard_bits == 0) {
      if (meter_ != nullptr) meter_->charge_bucket_visit();
      ++st.buckets_visited;
      const Bucket* bucket = buckets_.find(fixed);
      if (bucket != nullptr) {
        if (static_cast<std::size_t>(key.bound_count()) == jas_.size()) {
          const std::uint64_t tag = key_tag(key);
          for (const BucketEntry& e : *bucket) {
            ++st.tuples_compared;
            if (meter_ != nullptr) meter_->charge_compare();
            if (e.tag != tag) continue;
            if (key.matches(*e.tuple, jas_)) {
              out.push_back(e.tuple);
              ++st.matches;
            }
          }
        } else {
          scan_bucket(*bucket);
        }
      }
    } else if (grp.enumerate_path) {
      if (!grp.combos.empty()) {
        const std::size_t m = grp.combos.size();
        for (std::size_t j = 0; j < m; ++j) {
          if (prefetch_ && j + kPrefetchAhead < m) {
            buckets_.prefetch(fixed | grp.combos[j + kPrefetchAhead]);
          }
          if (meter_ != nullptr) meter_->charge_bucket_visit();
          ++st.buckets_visited;
          const Bucket* bucket = buckets_.find(fixed | grp.combos[j]);
          if (bucket != nullptr) scan_bucket(*bucket);
        }
      } else {
        // Lazy enumeration (group wider than kComboMaterializeCap): same w
        // order as probe(). The prefetch target recomputes the combo a few
        // steps ahead — a handful of cycles against a likely cache miss.
        const auto combo_at = [&grp](std::uint64_t w) {
          BucketId id = 0;
          for (std::size_t b = 0; b < grp.free_positions.size(); ++b) {
            if ((w >> b) & 1u) id |= BucketId{1} << grp.free_positions[b];
          }
          return id;
        };
        for (std::uint64_t w = 0; w < grp.enum_count; ++w) {
          if (prefetch_ && w + kPrefetchAhead < grp.enum_count) {
            buckets_.prefetch(fixed | combo_at(w + kPrefetchAhead));
          }
          if (meter_ != nullptr) meter_->charge_bucket_visit();
          ++st.buckets_visited;
          const Bucket* bucket = buckets_.find(fixed | combo_at(w));
          if (bucket != nullptr) scan_bucket(*bucket);
        }
      }
    } else {
      buckets_.for_each([&](BucketId id, const Bucket& bucket) {
        if ((id & grp.fixed_mask) != fixed) return;
        ++st.buckets_visited;
        if (meter_ != nullptr) meter_->charge_bucket_visit();
        scan_bucket(bucket);
      });
    }
  }
}

ProbeStats BitAddressIndex::probe_range(const RangeProbeKey& key,
                                        std::vector<const Tuple*>& out) {
  ProbeStats stats;
  // Per indexed attribute: the inclusive chunk interval its bucket-id bits
  // may take. Unbound attributes — and hash-mapped attributes with a
  // non-degenerate interval — span their whole chunk space.
  struct ChunkRange {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    int shift = 0;
  };
  SmallVector<ChunkRange, kInlineAttrs> ranges;
  __uint128_t combinations = 1;
  for (std::size_t pos = 0; pos < config_.num_attrs(); ++pos) {
    const int bits = config_.bits(pos);
    if (bits == 0) continue;
    ChunkRange cr;
    cr.shift = config_.shift_of(pos);
    cr.hi = low_bits64(bits);
    if (key.bound(pos)) {
      const bool degenerate = key.los[pos] == key.his[pos];
      if (mapper_.order_preserving(pos)) {
        cr.lo = mapper_.map(pos, key.los[pos], bits);
        cr.hi = mapper_.map(pos, key.his[pos], bits);
        if (meter_ != nullptr) meter_->charge_hash(2);
      } else if (degenerate) {
        cr.lo = cr.hi = mapper_.map(pos, key.los[pos], bits);
        if (meter_ != nullptr) meter_->charge_hash();
      }
      // hash mapper + real interval: keep the full chunk span.
    }
    combinations *= (cr.hi - cr.lo + 1);
    ranges.push_back(cr);
  }

  auto scan_bucket = [&](const Bucket& bucket) {
    for (const BucketEntry& e : bucket) {
      ++stats.tuples_compared;
      if (meter_ != nullptr) meter_->charge_compare();
      if (key.matches(*e.tuple, jas_)) {
        out.push_back(e.tuple);
        ++stats.matches;
      }
    }
  };

  if (combinations <= buckets_.size()) {
    // Odometer over the per-attribute chunk ranges.
    SmallVector<std::uint64_t, kInlineAttrs> current;
    for (const ChunkRange& cr : ranges) current.push_back(cr.lo);
    while (true) {
      BucketId id = 0;
      for (std::size_t i = 0; i < ranges.size(); ++i) {
        id |= current[i] << ranges[i].shift;
      }
      ++stats.buckets_visited;
      if (meter_ != nullptr) meter_->charge_bucket_visit();
      const Bucket* bucket = buckets_.find(id);
      if (bucket != nullptr) scan_bucket(*bucket);
      // Advance the odometer; when every digit wraps, we are done.
      std::size_t i = 0;
      for (; i < ranges.size(); ++i) {
        if (current[i] < ranges[i].hi) {
          ++current[i];
          break;
        }
        current[i] = ranges[i].lo;
      }
      if (i == ranges.size()) break;
    }
  } else {
    // Cheaper to filter the directory: extract each indexed attribute's
    // chunk from the bucket id and test it against the chunk range.
    buckets_.for_each([&](BucketId id, const Bucket& bucket) {
      for (std::size_t pos = 0, r = 0; pos < config_.num_attrs(); ++pos) {
        const int bits = config_.bits(pos);
        if (bits == 0) continue;
        const std::uint64_t chunk =
            (id >> config_.shift_of(pos)) & low_bits64(bits);
        if (chunk < ranges[r].lo || chunk > ranges[r].hi) return;
        ++r;
      }
      ++stats.buckets_visited;
      if (meter_ != nullptr) meter_->charge_bucket_visit();
      scan_bucket(bucket);
    });
  }
  return stats;
}

BitAddressIndex::OccupancyStats BitAddressIndex::occupancy() const {
  OccupancyStats stats;
  stats.occupied = buckets_.size();
  stats.tuples = size_;
  if (buckets_.empty()) return stats;
  stats.min = SIZE_MAX;
  double sum = 0.0;
  double sum_sq = 0.0;
  buckets_.for_each([&](BucketId, const Bucket& bucket) {
    const std::size_t n = bucket.size();
    stats.min = std::min(stats.min, n);
    stats.max = std::max(stats.max, n);
    sum += static_cast<double>(n);
    sum_sq += static_cast<double>(n) * static_cast<double>(n);
  });
  const auto k = static_cast<double>(buckets_.size());
  stats.mean = sum / k;
  const double var = sum_sq / k - stats.mean * stats.mean;
  stats.stddev = var > 0.0 ? std::sqrt(var) : 0.0;
  stats.imbalance =
      stats.mean > 0.0 ? static_cast<double>(stats.max) / stats.mean : 0.0;
  return stats;
}

std::size_t BitAddressIndex::memory_bytes() const {
  // Capacity-aware: the directory's whole slot array (empty slots are real
  // memory) plus heap-spilled bucket storage. Inline tuple pointers live
  // inside the slots, so nothing is counted twice.
  return buckets_.memory_bytes();
}

std::string BitAddressIndex::name() const {
  return "bit_address" + config_.to_string();
}

void BitAddressIndex::clear() {
  buckets_.clear();
  size_ = 0;
  if (memory_ != nullptr && tracked_bytes_ > 0) {
    memory_->release(MemCategory::kIndexStructure, tracked_bytes_);
  }
  tracked_bytes_ = 0;
}

void BitAddressIndex::bulk_load(const std::vector<const Tuple*>& tuples,
                                ThreadPool* pool) {
  // Phase 1: bucket ids and value tags, parallel when a pool is provided.
  // Uses an uncharged local computation identical to bucket_of(); the
  // modelled cost is charged once below so parallelism changes wall time
  // only.
  std::vector<BucketId> ids(tuples.size());
  std::vector<std::uint64_t> tags(tuples.size());
  auto compute = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      ids[i] = bucket_of_uncharged(*tuples[i]);
      tags[i] = tuple_tag(*tuples[i]);
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(0, tuples.size(), compute, /*min_chunk=*/512);
  } else {
    compute(0, tuples.size());
  }
  // Phase 2: serial, deterministic directory insertion.
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    buckets_.insert(ids[i], tuples[i], tags[i]);
  }
  size_ += tuples.size();
  if (meter_ != nullptr) {
    meter_->charge_hash(tuples.size() *
                        static_cast<std::uint64_t>(config_.indexed_attr_count()));
    meter_->charge_insert(tuples.size());
  }
  // Feed the same instruments insert() feeds: final chain length once per
  // occupied bucket, and a fresh occupancy-imbalance reading. Without this
  // a bulk-loaded stem reported an empty chain_len histogram and a stale
  // imbalance gauge.
  if (chain_hist_ != nullptr) {
    buckets_.for_each([&](BucketId, const Bucket& bucket) {
      chain_hist_->observe(static_cast<double>(bucket.size()));
    });
  }
  if (imbalance_gauge_ != nullptr) {
    imbalance_gauge_->set(occupancy().imbalance);
  }
  sync_memory();
  AMRI_CHECK_INVARIANTS(*this);
}

void BitAddressIndex::check_invariants() const {
  buckets_.check_invariants();
  const BucketId id_mask = low_bits64(config_.total_bits());
  std::size_t tuples = 0;
  buckets_.for_each([&](BucketId id, const Bucket& bucket) {
    AMRI_CHECK(!bucket.empty(),
               "sparse directory must not retain empty buckets");
    AMRI_CHECK((id & ~id_mask) == 0,
               "bucket id uses bits outside the IC's total_bits");
    tuples += bucket.size();
    for (const BucketEntry& e : bucket) {
      AMRI_CHECK(e.tuple != nullptr, "stored tuple pointer is null");
      AMRI_CHECK(bucket_of_uncharged(*e.tuple) == id,
                 "stored tuple does not rehash to its bucket under the "
                 "current IC (missed relocation during migration?)");
      AMRI_CHECK(e.tag == tuple_tag(*e.tuple),
                 "stored value tag disagrees with a recomputation over the "
                 "tuple's JAS values");
    }
  });
  AMRI_CHECK(tuples == size_,
             "size_ disagrees with the sum of bucket sizes");
  AMRI_CHECK(memory_ == nullptr || tracked_bytes_ == memory_bytes(),
             "memory-tracker bookkeeping is stale");
}

void BitAddressIndex::reconfigure(const IndexConfig& new_config) {
  assert(new_config.num_attrs() == jas_.size());
  // Tags hash the tuples' JAS values, not the IC, so they survive the
  // reconfiguration verbatim — collect entries, not bare tuple pointers.
  std::vector<BucketEntry> all;
  all.reserve(size_);
  buckets_.for_each([&](BucketId, const Bucket& bucket) {
    for (const BucketEntry& e : bucket) all.push_back(e);
  });
  buckets_.clear();
  size_ = 0;
  config_ = new_config;
  for (const BucketEntry& e : all) {
    const BucketId id = bucket_of(*e.tuple);  // charges N_A hashes per tuple
    buckets_.insert(id, e.tuple, e.tag);
    ++size_;
  }
  sync_memory();
  if (imbalance_gauge_ != nullptr) {
    imbalance_gauge_->set(occupancy().imbalance);
  }
  AMRI_CHECK_INVARIANTS(*this);
}

}  // namespace amri::index
