// Access patterns over a state's join attribute set (JAS).
//
// A state indexes a fixed ordered list of join attributes; an access pattern
// is the subset of those attributes bound by a search request, represented
// as a bitmask over JAS positions — exactly the paper's BR(ap) binary
// representation (<A,*,C> over JAS {A,B,C} -> mask 0b101).
#pragma once

#include <string>
#include <vector>

#include "common/bitops.hpp"
#include "common/small_vector.hpp"
#include "common/tuple.hpp"
#include "common/types.hpp"

namespace amri::index {

/// The join attribute set of a state: JAS position -> tuple attribute id.
class JoinAttributeSet {
 public:
  JoinAttributeSet() = default;
  explicit JoinAttributeSet(std::vector<AttrId> attrs)
      : attrs_(std::move(attrs)) {}

  std::size_t size() const { return attrs_.size(); }
  AttrId tuple_attr(std::size_t jas_pos) const { return attrs_[jas_pos]; }
  const std::vector<AttrId>& attrs() const { return attrs_; }

  /// Mask with every JAS position set.
  AttrMask universe() const { return low_bits(static_cast<int>(attrs_.size())); }

  /// JAS position of tuple attribute `a`, or size() if not a join attribute.
  std::size_t position_of(AttrId a) const {
    for (std::size_t i = 0; i < attrs_.size(); ++i) {
      if (attrs_[i] == a) return i;
    }
    return attrs_.size();
  }

 private:
  std::vector<AttrId> attrs_;
};

/// A concrete probe: which JAS positions are bound (the access pattern) and
/// the value each bound position must equal. `values` is JAS-sized; slots
/// whose mask bit is clear are ignored.
struct ProbeKey {
  AttrMask mask = 0;
  SmallVector<Value, kInlineAttrs> values;

  /// Number of bound attributes (the paper's N_{A,ap} when all indexed).
  int bound_count() const { return popcount(mask); }

  /// True iff `t` matches every bound attribute. `jas` maps JAS positions
  /// to tuple attribute ids.
  bool matches(const Tuple& t, const JoinAttributeSet& jas) const {
    bool ok = true;
    for_each_bit(mask, [&](unsigned pos) {
      if (t.at(jas.tuple_attr(pos)) != values[pos]) ok = false;
    });
    return ok;
  }
};

/// An inclusive value interval used by range probes (the paper's §II join
/// expressions <, >, >=, <=). Equality is the degenerate case lo == hi.
struct RangeBound {
  Value lo = 0;
  Value hi = 0;

  bool contains(Value v) const { return v >= lo && v <= hi; }
};

/// A range probe: per JAS position an optional interval constraint.
/// Unconstrained positions are wildcards.
struct RangeProbeKey {
  SmallVector<Value, kInlineAttrs> los;     ///< parallel arrays; slot valid
  SmallVector<Value, kInlineAttrs> his;     ///< iff mask bit is set
  AttrMask mask = 0;

  void bind(std::size_t pos, Value lo, Value hi) {
    if (los.size() <= pos) {
      los.resize(pos + 1, Value{0});
      his.resize(pos + 1, Value{0});
    }
    los[pos] = lo;
    his[pos] = hi;
    mask |= (AttrMask{1} << pos);
  }

  bool bound(std::size_t pos) const {
    return has_bit(mask, static_cast<unsigned>(pos));
  }

  /// True iff `t` satisfies every bound interval.
  bool matches(const Tuple& t, const JoinAttributeSet& jas) const {
    bool ok = true;
    for_each_bit(mask, [&](unsigned pos) {
      const Value v = t.at(jas.tuple_attr(pos));
      if (v < los[pos] || v > his[pos]) ok = false;
    });
    return ok;
  }
};

/// Render a mask as the paper's vector notation, e.g. <A,*,C> for
/// mask=0b101 with names {A,B,C}. Names default to A,B,C,... when omitted.
std::string pattern_to_string(AttrMask mask, std::size_t num_attrs,
                              const std::vector<std::string>* names = nullptr);

/// Build a ProbeKey binding the JAS positions in `mask` to the
/// corresponding join-attribute values of `t` (used when a routed tuple
/// probes a peer state: the tuple's values become the search criteria).
ProbeKey probe_from_tuple(AttrMask mask, const Tuple& t,
                          const JoinAttributeSet& probing_side_attrs);

}  // namespace amri::index
