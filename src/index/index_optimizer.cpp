#include "index/index_optimizer.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace amri::index {

double IndexOptimizer::evaluate(
    const IndexConfig& ic, const std::vector<PatternFrequency>& patterns) const {
  return options_.use_extended_cost ? model_.extended_cost(ic, patterns)
                                    : model_.paper_cost(ic, patterns);
}

OptimizerResult IndexOptimizer::optimize(
    std::size_t num_attrs, const std::vector<PatternFrequency>& patterns) const {
  OptimizerResult result;
  double best = std::numeric_limits<double>::infinity();
  std::uint64_t evaluated = 0;
  const std::size_t top_k = options_.track_top_k;
  enumerate_allocations(
      num_attrs, options_.bit_budget, options_.max_bits_per_attr,
      [&](const std::vector<std::uint8_t>& alloc) {
        IndexConfig ic(alloc);
        const double cost = evaluate(ic, patterns);
        ++evaluated;
        if (top_k > 0 &&
            (result.top.size() < top_k || cost < result.top.back().cost)) {
          const auto at = std::upper_bound(
              result.top.begin(), result.top.end(), cost,
              [](double c, const ScoredConfig& s) { return c < s.cost; });
          result.top.insert(at, ScoredConfig{ic, cost});
          if (result.top.size() > top_k) result.top.pop_back();
        }
        if (cost < best) {
          best = cost;
          result.config = std::move(ic);
        }
      });
  result.cost = best;
  result.configs_evaluated = evaluated;
  return result;
}

OptimizerResult IndexOptimizer::optimize_greedy(
    std::size_t num_attrs, const std::vector<PatternFrequency>& patterns) const {
  std::vector<std::uint8_t> alloc(num_attrs, 0);
  IndexConfig current(alloc);
  double current_cost = evaluate(current, patterns);
  std::uint64_t evaluated = 1;
  int used = 0;
  while (used < options_.bit_budget) {
    double best_cost = current_cost;
    std::size_t best_attr = num_attrs;
    for (std::size_t a = 0; a < num_attrs; ++a) {
      if (alloc[a] >= options_.max_bits_per_attr) continue;
      ++alloc[a];
      const IndexConfig candidate(alloc);
      const double cost = evaluate(candidate, patterns);
      ++evaluated;
      if (cost < best_cost) {
        best_cost = cost;
        best_attr = a;
      }
      --alloc[a];
    }
    if (best_attr == num_attrs) break;  // no bit improves
    ++alloc[best_attr];
    current_cost = best_cost;
    ++used;
  }
  OptimizerResult result;
  result.config = IndexConfig(alloc);
  result.cost = current_cost;
  result.configs_evaluated = evaluated;
  return result;
}

std::vector<AttrMask> IndexOptimizer::select_hash_modules(
    const std::vector<PatternFrequency>& patterns, std::size_t max_modules) {
  std::vector<PatternFrequency> sorted = patterns;
  std::sort(sorted.begin(), sorted.end(),
            [](const PatternFrequency& a, const PatternFrequency& b) {
              if (a.frequency != b.frequency) return a.frequency > b.frequency;
              return a.mask < b.mask;
            });
  std::vector<AttrMask> out;
  for (const PatternFrequency& p : sorted) {
    if (out.size() >= max_modules) break;
    if (p.mask == 0) continue;  // full scans need no module
    if (std::find(out.begin(), out.end(), p.mask) == out.end()) {
      out.push_back(p.mask);
    }
  }
  return out;
}

}  // namespace amri::index
