// Value-to-bits mapping strategies for the bit-address index.
//
// The IC assigns b bits to an attribute; the mapper reduces an attribute
// value to a b-bit chunk. The paper assumes the range/distribution of each
// attribute is known (its "generic hashing issue" simplification); we
// provide both that range-partition mapper and a multiplicative hash mapper
// for unknown distributions.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitops.hpp"
#include "common/types.hpp"

namespace amri::index {

enum class MapStrategy : std::uint8_t {
  kHash = 0,   ///< Fibonacci-multiplicative hash, low b bits
  kRange,      ///< equi-width partition of a known [lo, hi] domain
  kQuantile,   ///< equi-depth partition learned from a value sample
};

/// Per-attribute domain bounds used by the range strategy.
struct AttrDomain {
  Value lo = 0;
  Value hi = 0;  ///< inclusive
};

class BitMapper {
 public:
  /// Hash strategy for every attribute.
  static BitMapper hashing(std::size_t num_attrs);

  /// Range strategy with explicit per-attribute domains.
  static BitMapper ranged(std::vector<AttrDomain> domains);

  /// Equi-depth (quantile) strategy learned from per-attribute value
  /// samples: cell boundaries are placed so each of the up-to-2^b cells
  /// receives roughly the same sample mass — the paper's "no bucket
  /// stores more tuples than any other" goal under skewed values.
  /// Samples may be unsorted; empty samples degenerate to hashing for
  /// that attribute. The mapper supports chunk widths up to
  /// `max_bits` (boundaries are stored at 2^max_bits resolution and
  /// coarsened by shifting for narrower chunks).
  static BitMapper quantile(std::vector<std::vector<Value>> samples,
                            int max_bits = 10);

  /// Map `v` for JAS position `pos` to a chunk of `bits` bits.
  /// bits == 0 always yields 0.
  std::uint64_t map(std::size_t pos, Value v, int bits) const;

  MapStrategy strategy() const { return strategy_; }
  std::size_t num_attrs() const { return num_attrs_; }

  /// Range and quantile mappers preserve value order within an attribute,
  /// so interval probes can prune cells. Per attribute because a quantile
  /// mapper with no sample for an attribute degenerates to hashing there.
  bool order_preserving(std::size_t pos) const {
    if (strategy_ == MapStrategy::kRange) return true;
    if (strategy_ == MapStrategy::kQuantile) {
      return pos < boundaries_.size() && !boundaries_[pos].empty();
    }
    return false;
  }

 private:
  BitMapper(MapStrategy s, std::size_t n, std::vector<AttrDomain> domains)
      : strategy_(s), num_attrs_(n), domains_(std::move(domains)) {}

  MapStrategy strategy_ = MapStrategy::kHash;
  std::size_t num_attrs_ = 0;
  std::vector<AttrDomain> domains_;
  /// kQuantile: per attribute, 2^max_bits_ - 1 sorted cell boundaries;
  /// cell i holds values in (boundaries[i-1], boundaries[i]].
  std::vector<std::vector<Value>> boundaries_;
  int max_bits_ = 0;
};

}  // namespace amri::index
