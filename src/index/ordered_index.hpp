// Ordered (tree-style) single-attribute index: the classic alternative the
// bit-address literature compares against for partial-match and range
// retrieval [22, 24]. Keeps tuples in a std::multimap keyed by one join
// attribute; equality probes hit one key run, range probes walk a
// contiguous key interval. Serves as a baseline in the range-probe
// micro-benchmarks and as a building block for users who need ordered
// retrieval on a hot attribute.
#pragma once

#include <map>

#include "index/tuple_index.hpp"

namespace amri::index {

class OrderedIndex final : public TupleIndex {
 public:
  /// Index on JAS position `key_pos` of `jas`.
  OrderedIndex(JoinAttributeSet jas, std::size_t key_pos,
               CostMeter* meter = nullptr, MemoryTracker* memory = nullptr);

  ~OrderedIndex() override;

  OrderedIndex(const OrderedIndex&) = delete;
  OrderedIndex& operator=(const OrderedIndex&) = delete;

  std::size_t key_pos() const { return key_pos_; }

  void insert(const Tuple* t) override;
  void erase(const Tuple* t) override;

  /// Equality probe; the key attribute must be bound (assert). Remaining
  /// bound attributes are verified per candidate.
  ProbeStats probe(const ProbeKey& key, std::vector<const Tuple*>& out) override;

  /// Range probe over the key attribute: walks keys in [key.los, key.his]
  /// of the key position; other bound intervals are verified.
  ProbeStats probe_range(const RangeProbeKey& key,
                         std::vector<const Tuple*>& out);

  std::size_t size() const override { return table_.size(); }
  std::size_t memory_bytes() const override;
  std::string name() const override;
  void clear() override;

 private:
  void sync_memory();

  JoinAttributeSet jas_;
  std::size_t key_pos_;
  CostMeter* meter_;
  MemoryTracker* memory_;
  std::multimap<Value, const Tuple*> table_;
  std::size_t tracked_bytes_ = 0;
};

}  // namespace amri::index
