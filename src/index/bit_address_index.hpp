// The AMRI physical index (paper §III): a single bit-address index whose
// index configuration (IC) assigns bits of the bucket id to join
// attributes. One structure serves every access pattern:
//   * a probe binding all indexed attributes touches exactly one bucket;
//   * unbound indexed attributes become wildcards — the probe enumerates
//     the 2^(wildcard bits) candidate buckets (or, when cheaper, filters
//     the sparse bucket directory by the fixed bit positions);
//   * attributes without bits contribute nothing and are verified by the
//     final comparison pass.
//
// Buckets are stored sparsely in a flat open-addressing directory
// (index/bucket_directory.hpp), so the bucket-id word can be wide while
// memory tracks only occupied slots, and small buckets stay heap-free.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "index/bit_mapper.hpp"
#include "index/bucket_directory.hpp"
#include "index/index_config.hpp"
#include "index/tuple_index.hpp"
#include "telemetry/telemetry.hpp"

namespace amri::index {

class BitAddressIndex final : public TupleIndex {
 public:
  /// `jas` maps JAS positions to tuple attribute ids; `config.num_attrs()`
  /// must equal `jas.size()`. `meter`/`memory` may be null (uncharged).
  BitAddressIndex(JoinAttributeSet jas, IndexConfig config, BitMapper mapper,
                  CostMeter* meter = nullptr, MemoryTracker* memory = nullptr);

  ~BitAddressIndex() override;

  BitAddressIndex(const BitAddressIndex&) = delete;
  BitAddressIndex& operator=(const BitAddressIndex&) = delete;

  const IndexConfig& config() const { return config_; }
  const JoinAttributeSet& jas() const { return jas_; }
  const BitMapper& mapper() const { return mapper_; }

  /// Bucket id of a stored tuple under the current IC. Charges one hash per
  /// indexed attribute (the paper's N_A · C_h insert-side hashing).
  BucketId bucket_of(const Tuple& t);

  void insert(const Tuple* t) override;
  void erase(const Tuple* t) override;

  /// Insert `n` tuples, equivalent to n insert() calls in order (same
  /// charges, same telemetry, same directory state). Bucket ids and value
  /// tags are precomputed up front (uncharged — the mapper is pure), which
  /// with prefetch enabled lets the kernel warm each tuple's destination
  /// slot a few inserts ahead: sliding-window churn writes to hash-random
  /// slots, so the slot line is a guaranteed cache miss the prefetch hides.
  void insert_batch(const Tuple* const* tuples, std::size_t n);

  /// Erase `n` tuples, equivalent to n erase() calls in order. Same
  /// precompute-and-prefetch structure as insert_batch — window expiry
  /// erases a run of the oldest tuples whose bucket slots are as
  /// hash-random as the inserts that created them.
  void erase_batch(const Tuple* const* tuples, std::size_t n);
  ProbeStats probe(const ProbeKey& key, std::vector<const Tuple*>& out) override;

  /// Batched probe: groups keys by access pattern so the per-mask work —
  /// fixed-bit layout, enumerate-vs-filter strategy, and the wildcard bit
  /// combinations — is computed once per distinct mask (a mask→group hash,
  /// so adversarial mask mixes stay O(n)) and shared across the batch.
  /// Bucket addresses for the batch are precomputed up front (uncharged —
  /// the mapper is pure, mirroring bulk_load()), and with prefetch enabled
  /// the kernel issues software prefetches a few bucket visits ahead so
  /// directory cache misses overlap. Per-key work (bound-value mapper
  /// hashes, bucket visits, comparisons) still runs and is charged per key
  /// in batch order, so the result is exactly equivalent to n single
  /// probe() calls.
  void probe_batch(const ProbeKey* keys, std::size_t n,
                   std::vector<const Tuple*>* outs, ProbeStats* stats) override;

  /// Enable software prefetch in the batched kernels (wall mode):
  /// directory slots ahead of the probe / insert / erase walks, plus —
  /// for fully-bound probes — the tag-matching tuples a probe is about to
  /// dereference. Off by default; a pure hardware hint — modelled costs,
  /// results and telemetry are identical either way.
  void set_prefetch(bool on) { prefetch_ = on; }
  bool prefetch_enabled() const { return prefetch_; }

  /// Range probe (paper §II: join expressions may be <, >, >=, <=): each
  /// bound attribute carries an inclusive interval. Under the *range*
  /// mapper an interval maps to a contiguous run of bucket cells; under
  /// the *hash* mapper a non-degenerate interval gives no bucket pruning
  /// (the attribute's bits become wildcards) but is still verified.
  ProbeStats probe_range(const RangeProbeKey& key,
                         std::vector<const Tuple*>& out);

  std::size_t size() const override { return size_; }
  std::size_t memory_bytes() const override;
  std::string name() const override;
  void clear() override;

  /// Number of occupied buckets (sparse directory size).
  std::size_t occupied_buckets() const { return buckets_.size(); }

  /// The flat directory behind the index (tests and diagnostics).
  const BucketDirectory& directory() const { return buckets_; }

  /// Register probe/occupancy instrumentation under `prefix` (e.g.
  /// "stem.0.index") in `telemetry`'s registry. Null detaches. The hot
  /// paths only ever pay a null-pointer branch when detached.
  void bind_telemetry(telemetry::Telemetry* telemetry,
                      const std::string& prefix);

  /// Bucket balance diagnostics (paper §III: "the optimal index key map is
  /// configured so that no bucket stores more tuples than any other").
  /// `imbalance` = max / mean over occupied buckets; 1.0 is perfect.
  struct OccupancyStats {
    std::size_t occupied = 0;
    std::size_t tuples = 0;
    std::size_t min = 0;
    std::size_t max = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double imbalance = 0.0;
  };
  OccupancyStats occupancy() const;

  /// Visit every stored tuple (used by migration and full scans).
  template <typename Fn>
  void for_each_tuple(Fn&& fn) const {
    buckets_.for_each([&](BucketId, const Bucket& bucket) {
      for (const BucketEntry& e : bucket) fn(e.tuple);
    });
  }

  /// Replace the IC and re-bucket every stored tuple (the paper's index
  /// adaptation: relocate each tuple to the buckets defined by the new IC).
  /// Charges one hash per indexed attribute per tuple.
  void reconfigure(const IndexConfig& new_config);

  /// Insert many tuples at once. With a thread pool the bucket ids are
  /// precomputed in parallel (the mapper is pure); directory insertion
  /// stays serial, so the result is identical to sequential insert().
  /// Charges the same modelled cost (N_A hashes + one insert per tuple).
  void bulk_load(const std::vector<const Tuple*>& tuples,
                 ThreadPool* pool = nullptr);

  /// Deep structural validation: directory/count consistency, every stored
  /// tuple rehashes to its bucket, bucket ids fit in total_bits, and the
  /// memory-tracker bookkeeping matches. Aborts with a diagnostic on the
  /// first violation. Always compiled (tests call it in every build);
  /// structural transition points invoke it automatically only under
  /// AMRI_ASSERTIONS. Does not charge the cost meter.
  void check_invariants() const;

 private:
  using Bucket = BucketDirectory::Bucket;

  /// probe_batch materializes a group's wildcard combinations only up to
  /// this many ids (8 KiB); wider wildcards enumerate lazily, exactly like
  /// single-key probe(), so a wide-wildcard probe in a large directory
  /// cannot allocate more in the batched path than the unbatched one.
  static constexpr std::uint64_t kComboMaterializeCap = 1024;
  /// How many bucket visits ahead the batched kernels prefetch directory
  /// slots (and, in probe_batch's near stage, matching tuples).
  static constexpr std::size_t kPrefetchAhead = 4;
  /// Far-stage distance of probe_batch's two-stage pipeline: slots are
  /// warmed this many keys ahead, so by the time a key is kPrefetchAhead
  /// away its slot line is present and the tag-matching tuples it points
  /// at can be prefetched in turn (two dependent misses, both hidden).
  static constexpr std::size_t kPrefetchFar = 2 * kPrefetchAhead;
  /// probe_batch's near (tuple) stage engages only when the directory's
  /// mean bucket depth reaches this many entries: each deep step pays a
  /// redundant (cache-warm) find() per key, which only amortises when a
  /// key dereferences several tuples.
  static constexpr std::size_t kDeepPrefetchMinChain = 4;

  /// Probe layout: the fixed bits contributed by bound attributes and the
  /// list of wildcard chunks to enumerate.
  struct ProbeLayout {
    BucketId fixed = 0;       ///< bound-attribute bits in place
    BucketId fixed_mask = 0;  ///< which bucket-id bits are fixed
    int wildcard_bits = 0;    ///< total unbound indexed bits
  };

  ProbeLayout layout_for(const ProbeKey& key);
  /// bucket_of without meter charges (migration precompute, invariants).
  BucketId bucket_of_uncharged(const Tuple& t) const;
  /// Hash tag over a stored tuple's JAS values; fully-bound probes compare
  /// this against the probe key's tag before dereferencing the tuple.
  std::uint64_t tuple_tag(const Tuple& t) const;
  /// The same tag computed from a fully-bound probe key's values.
  std::uint64_t key_tag(const ProbeKey& key) const;
  /// Sync tracked_bytes_ (and the MemoryTracker) to memory_bytes().
  void sync_memory();

  JoinAttributeSet jas_;
  IndexConfig config_;
  BitMapper mapper_;
  CostMeter* meter_;
  MemoryTracker* memory_;
  BucketDirectory buckets_;
  std::size_t size_ = 0;
  std::size_t tracked_bytes_ = 0;
  bool prefetch_ = false;  ///< software prefetch in batched kernels (wall mode)
  // Telemetry instruments (null when detached; see bind_telemetry).
  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::Histogram* wildcard_hist_ = nullptr;  ///< buckets enumerable/probe
  telemetry::Histogram* chain_hist_ = nullptr;     ///< bucket size after insert
  telemetry::Counter* probes_enumerated_ = nullptr;
  telemetry::Counter* probes_filtered_ = nullptr;
  telemetry::Gauge* imbalance_gauge_ = nullptr;
};

}  // namespace amri::index
