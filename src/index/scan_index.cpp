#include "index/scan_index.hpp"

#include <algorithm>
#include <cassert>

namespace amri::index {

ScanIndex::ScanIndex(JoinAttributeSet jas, CostMeter* meter,
                     MemoryTracker* memory)
    : jas_(std::move(jas)), meter_(meter), memory_(memory) {}

ScanIndex::~ScanIndex() {
  if (memory_ != nullptr && tracked_bytes_ > 0) {
    memory_->release(MemCategory::kIndexStructure, tracked_bytes_);
  }
}

void ScanIndex::sync_memory() {
  const std::size_t now = memory_bytes();
  if (memory_ != nullptr) {
    if (now > tracked_bytes_) {
      memory_->allocate(MemCategory::kIndexStructure, now - tracked_bytes_);
    } else if (now < tracked_bytes_) {
      memory_->release(MemCategory::kIndexStructure, tracked_bytes_ - now);
    }
  }
  tracked_bytes_ = now;
}

void ScanIndex::insert(const Tuple* t) {
  assert(t != nullptr);
  tuples_.push_back(t);
  if (meter_ != nullptr) meter_->charge_insert();
  sync_memory();
}

void ScanIndex::erase(const Tuple* t) {
  const auto it = std::find(tuples_.begin(), tuples_.end(), t);
  if (it == tuples_.end()) return;
  *it = tuples_.back();
  tuples_.pop_back();
  if (meter_ != nullptr) meter_->charge_delete();
  sync_memory();
}

ProbeStats ScanIndex::probe(const ProbeKey& key,
                            std::vector<const Tuple*>& out) {
  ProbeStats stats;
  stats.buckets_visited = 1;
  if (meter_ != nullptr) meter_->charge_bucket_visit();
  for (const Tuple* t : tuples_) {
    ++stats.tuples_compared;
    if (meter_ != nullptr) meter_->charge_compare();
    if (key.matches(*t, jas_)) {
      out.push_back(t);
      ++stats.matches;
    }
  }
  return stats;
}

void ScanIndex::clear() {
  tuples_.clear();
  tuples_.shrink_to_fit();
  sync_memory();
}

}  // namespace amri::index
