// Sharded bit-address index: one logical AMRI state partitioned into N
// BitAddressIndex shards by a stable hash of a designated join-attribute
// value (the sharding JAS position). Inserts and erases route to the
// owning shard; a probe that binds the sharding attribute touches exactly
// one shard, and any other probe fans out across all shards on a
// ThreadPool, with match lists merged deterministically in shard-id order.
// Migration proceeds shard-by-shard, so a probe is only ever blocked behind
// the rebuild of one shard — roughly 1/N of the window instead of all of
// it.
//
// Modelled cost: shards run uncharged (null meter), and the wrapper charges
// the aggregate on the calling thread — the same hash / bucket-visit /
// comparison structure as the unsharded index, with probe hashing charged
// once per probe (the coordinator computes the probe layout once).
// Parallelism saves wall time, never modelled cost, matching the
// bulk_load() precedent.
//
// Thread safety: each shard is guarded by its own mutex. Concurrent probes
// (including overlapping fan-outs) and a concurrent mutator (insert /
// erase / migrate_shards) are safe; the aggregate counters and the cost
// meter are only touched by the mutating/probing *calling* threads, so the
// engine's single-driver-plus-fanout usage and the TSan stress harness
// (many probers racing one writer) are both race-free. Multiple concurrent
// mutators are not supported.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/lock_ranks.gen.hpp"
#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "index/bit_address_index.hpp"
#include "index/index_migrator.hpp"
#include "index/tuple_index.hpp"
#include "telemetry/telemetry.hpp"

namespace amri::index {

/// Per-shard size distribution of a sharded index. `imbalance` is
/// max / mean over shards (1.0 = perfectly balanced, 0 when empty).
struct ShardBalance {
  std::vector<std::size_t> sizes;
  std::size_t max = 0;
  double mean = 0.0;
  double imbalance = 0.0;
};

/// Aggregate outcome of a shard-by-shard migration.
struct ShardMigrationReport {
  std::uint64_t tuples_moved = 0;
  std::uint64_t hashes_charged = 0;     ///< summed over shards
  std::uint64_t max_shard_hashes = 0;   ///< largest single-shard rebuild
};

class ShardedBitIndex final : public TupleIndex {
 public:
  /// `shards` >= 1; `shard_pos` is the JAS position whose value picks the
  /// owning shard (stable across reconfigurations — migration never moves
  /// a tuple between shards). `pool` may be null (fan-out probes run
  /// serially). `meter` / `memory` may be null; the shards themselves are
  /// always constructed uncharged and the wrapper accounts on the calling
  /// thread.
  ShardedBitIndex(JoinAttributeSet jas, IndexConfig config, BitMapper mapper,
                  std::size_t shards, std::size_t shard_pos = 0,
                  ThreadPool* pool = nullptr, CostMeter* meter = nullptr,
                  MemoryTracker* memory = nullptr);

  void insert(const Tuple* t) override;
  void erase(const Tuple* t) override;
  ProbeStats probe(const ProbeKey& key, std::vector<const Tuple*>& out) override;

  /// Batched probe: buckets the keys by owning shard (fan-out keys go to
  /// every shard) and dispatches ONE ThreadPool task per shard for the
  /// whole batch — fan-out width is paid per batch, not per tuple. Each
  /// shard answers its keys through BitAddressIndex::probe_batch (per-mask
  /// grouping), results merge deterministically (targeted keys verbatim,
  /// fan-out keys in shard-id order) and the wrapper charges per key in
  /// batch order — exactly equivalent to n single probe() calls.
  void probe_batch(const ProbeKey* keys, std::size_t n,
                   std::vector<const Tuple*>* outs, ProbeStats* stats) override;

  std::size_t size() const override { return size_; }
  std::size_t memory_bytes() const override;
  std::string name() const override;
  void clear() override;

  const IndexConfig& config() const { return config_; }
  const JoinAttributeSet& jas() const { return jas_; }
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t shard_position() const { return shard_pos_; }

  /// The owning shard of a stored tuple (stable hash of its sharding
  /// attribute value).
  std::size_t shard_of(const Tuple& t) const;

  /// The single shard a probe can be answered from, or shard_count() when
  /// the sharding attribute is unbound and the probe must fan out.
  std::size_t target_shard(const ProbeKey& key) const;

  /// Direct shard access (tests and diagnostics; not thread-safe against
  /// concurrent mutators).
  const BitAddressIndex& shard(std::size_t i) const {
    return shards_[i]->index;
  }

  /// Forward the wall-mode software-prefetch toggle to every shard (see
  /// BitAddressIndex::set_prefetch). A pure hardware hint: modelled costs
  /// and results are identical either way.
  void set_prefetch(bool on);

  /// Rebuild every shard under `target`, one shard at a time through
  /// `migrator` (probes of other shards proceed between shard rebuilds).
  /// Charges the summed rebuild hashes to the wrapper's meter. No-op when
  /// the IC is unchanged.
  ShardMigrationReport migrate_shards(const IndexConfig& target,
                                      const IndexMigrator& migrator);

  ShardBalance balance() const;

  /// Register per-shard gauges (`<prefix>.shard.<i>.size`), the balance
  /// gauge (`<prefix>.shard.imbalance`, refreshed by balance()), the probe
  /// fan-out histogram (`<prefix>.probe.fanout_shards`), the per-batch
  /// dispatch width histogram (`<prefix>.probe.batch.fanout_width`: how
  /// many shards one probe_batch call dispatched to) and the per-shard
  /// migration pause histogram (`<prefix>.migration.shard_hashes`) in
  /// `telemetry`'s registry. Also keeps the handle so fan-out probes under
  /// an active trace span emit "fanout" span events (dispatch width plus
  /// per-shard wall nanoseconds), stamped with `stream`. Null detaches.
  void bind_telemetry(telemetry::Telemetry* telemetry,
                      const std::string& prefix, StreamId stream = 0);

  /// Deep validation: per-shard BitAddressIndex invariants, shard sizes
  /// summing to size(), one shared IC, and every stored tuple hashing to
  /// the shard that holds it.
  void check_invariants() const;

 private:
  struct Shard {
    mutable Mutex mu{lockrank::kShardedBitIndexShardMu};
    BitAddressIndex index AMRI_GUARDED_BY(mu);
    telemetry::Gauge* size_gauge = nullptr;

    Shard(const JoinAttributeSet& jas, const IndexConfig& config,
          const BitMapper& mapper, MemoryTracker* memory)
        : index(jas, config, mapper, /*meter=*/nullptr, memory) {}
  };

  std::size_t shard_of_value(Value v) const;
  /// Bound JAS positions of `mask` that carry index bits (the probe-side
  /// N_{A,ap} hash charge).
  std::uint64_t bound_indexed(AttrMask mask) const;
  void charge_probe(AttrMask mask, const ProbeStats& stats);

  JoinAttributeSet jas_;
  IndexConfig config_;
  std::size_t shard_pos_;
  ThreadPool* pool_;
  CostMeter* meter_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t size_ = 0;  ///< maintained by the (single) mutating thread
  // Telemetry instruments (null when detached).
  telemetry::Telemetry* telemetry_ = nullptr;  ///< span fan-out events
  StreamId stream_id_ = 0;                     ///< span event stream stamp
  telemetry::Gauge* imbalance_gauge_ = nullptr;
  telemetry::Histogram* fanout_hist_ = nullptr;
  telemetry::Histogram* batch_fanout_hist_ = nullptr;
  telemetry::Histogram* shard_migration_hist_ = nullptr;
};

}  // namespace amri::index
