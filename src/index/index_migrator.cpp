#include "index/index_migrator.hpp"

#include "common/assertions.hpp"
#include "telemetry/json.hpp"

namespace amri::index {

IndexMigrator::IndexMigrator(ThreadPool* pool, telemetry::Telemetry* telemetry,
                             StreamId stream)
    : pool_(pool), telemetry_(telemetry), stream_(stream) {
  if (telemetry_ != nullptr) {
    auto& reg = telemetry_->metrics();
    const std::string prefix = "stem." + std::to_string(stream_);
    migration_count_ = &reg.counter(prefix + ".migration.count");
    tuples_moved_ = &reg.counter(prefix + ".migration.tuples_moved");
    pause_hist_ = &reg.histogram(
        prefix + ".migration.pause_us",
        telemetry::Histogram::exponential_bounds(10.0, 4.0, 12));
  }
}

MigrationReport IndexMigrator::migrate(BitAddressIndex& index,
                                       const IndexConfig& target) const {
  MutexLock lk(mu_);
  MigrationReport report;
  report.from = index.config();
  report.to = target;
  if (index.config() == target) return report;
  // Wall-clock profiling of actual rebuilds only (the no-op path above is
  // free). Safe off the driver thread only because the profiler is null
  // unless amri_sim --profile, which drives migrations from the executor.
  telemetry::ScopedPhase migration_scope(
      telemetry_ != nullptr ? telemetry_->profiler() : nullptr,
      telemetry::Phase::kMigration);
  report.tuples_moved = index.size();
  report.hashes_charged =
      report.tuples_moved *
      static_cast<std::uint64_t>(target.indexed_attr_count());
  if (telemetry_ != nullptr) {
    telemetry::JsonWriter w;
    w.begin_object();
    w.field("from", report.from.to_string());
    w.field("to", report.to.to_string());
    w.field("tuples", report.tuples_moved);
    w.end_object();
    telemetry_->emit(telemetry::EventKind::kMigrationStart, stream_,
                     std::move(w).take());
  }
  const TimeMicros started =
      telemetry_ != nullptr ? telemetry_->now() : TimeMicros{0};
  // The reconfigure path recomputes bucket ids sequentially and charges the
  // meter as it goes. A thread pool could precompute ids for very large
  // states; the modelled cost is identical, so we keep the deterministic
  // sequential path and reserve the pool for bulk-load helpers.
  index.reconfigure(target);
  AMRI_CHECK_INVARIANTS(index);
  if (telemetry_ != nullptr) {
    report.pause_us = telemetry_->now() - started;
    migration_count_->add();
    tuples_moved_->add(report.tuples_moved);
    pause_hist_->observe(static_cast<double>(report.pause_us));
    telemetry::JsonWriter w;
    w.begin_object();
    w.field("to", report.to.to_string());
    w.field("tuples_moved", report.tuples_moved);
    w.field("hashes_charged", report.hashes_charged);
    w.field("pause_us", static_cast<std::int64_t>(report.pause_us));
    w.end_object();
    telemetry_->emit(telemetry::EventKind::kMigrationEnd, stream_,
                     std::move(w).take());
  }
  return report;
}

}  // namespace amri::index
