#include "index/index_migrator.hpp"

namespace amri::index {

MigrationReport IndexMigrator::migrate(BitAddressIndex& index,
                                       const IndexConfig& target) const {
  MigrationReport report;
  report.from = index.config();
  report.to = target;
  if (index.config() == target) return report;
  report.tuples_moved = index.size();
  report.hashes_charged =
      report.tuples_moved *
      static_cast<std::uint64_t>(target.indexed_attr_count());
  // The reconfigure path recomputes bucket ids sequentially and charges the
  // meter as it goes. A thread pool could precompute ids for very large
  // states; the modelled cost is identical, so we keep the deterministic
  // sequential path and reserve the pool for bulk-load helpers.
  index.reconfigure(target);
  return report;
}

}  // namespace amri::index
