#include "index/sharded_bit_index.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "common/assertions.hpp"
#include "common/bitops.hpp"
#include "telemetry/json.hpp"

namespace amri::index {

namespace {

/// splitmix64 finaliser: the shard route must be a stable function of the
/// sharding attribute's value alone, independent of the BitMapper (which
/// reconfiguration retrains) so migrations never move tuples across shards.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ShardedBitIndex::ShardedBitIndex(JoinAttributeSet jas, IndexConfig config,
                                 BitMapper mapper, std::size_t shards,
                                 std::size_t shard_pos, ThreadPool* pool,
                                 CostMeter* meter, MemoryTracker* memory)
    : jas_(std::move(jas)),
      config_(std::move(config)),
      shard_pos_(shard_pos),
      pool_(pool),
      meter_(meter) {
  AMRI_CHECK(shards >= 1, "a sharded index needs at least one shard");
  AMRI_CHECK(shard_pos_ < jas_.size(),
             "sharding position outside the join attribute set");
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(jas_, config_, mapper, memory));
  }
}

std::size_t ShardedBitIndex::shard_of_value(Value v) const {
  if (shards_.size() == 1) return 0;
  return static_cast<std::size_t>(mix64(static_cast<std::uint64_t>(v)) %
                                  shards_.size());
}

std::size_t ShardedBitIndex::shard_of(const Tuple& t) const {
  return shard_of_value(t.at(jas_.tuple_attr(shard_pos_)));
}

std::size_t ShardedBitIndex::target_shard(const ProbeKey& key) const {
  if (!has_bit(key.mask, static_cast<unsigned>(shard_pos_))) {
    return shards_.size();
  }
  return shard_of_value(key.values[shard_pos_]);
}

std::uint64_t ShardedBitIndex::bound_indexed(AttrMask mask) const {
  std::uint64_t n = 0;
  for (std::size_t pos = 0; pos < config_.num_attrs(); ++pos) {
    if (config_.bits(pos) > 0 && has_bit(mask, static_cast<unsigned>(pos))) {
      ++n;
    }
  }
  return n;
}

void ShardedBitIndex::insert(const Tuple* t) {
  assert(t != nullptr);
  Shard& s = *shards_[shard_of(*t)];
  std::size_t shard_size = 0;
  {
    MutexLock lk(s.mu);
    s.index.insert(t);
    shard_size = s.index.size();
  }
  ++size_;
  // Same modelled cost as the unsharded index: one hash per indexed
  // attribute (bucket_of) plus the insert bookkeeping charge.
  if (meter_ != nullptr) {
    const std::uint64_t hashes = bound_indexed(jas_.universe());
    if (hashes > 0) meter_->charge_hash(hashes);
    meter_->charge_insert();
  }
  if (s.size_gauge != nullptr) {
    s.size_gauge->set(static_cast<double>(shard_size));
  }
}

void ShardedBitIndex::erase(const Tuple* t) {
  assert(t != nullptr);
  Shard& s = *shards_[shard_of(*t)];
  bool erased = false;
  std::size_t shard_size = 0;
  {
    MutexLock lk(s.mu);
    const std::size_t before = s.index.size();
    s.index.erase(t);
    shard_size = s.index.size();
    erased = shard_size < before;
  }
  // bucket_of hashes are charged whether or not the tuple was present;
  // the delete bookkeeping only when something was removed (both as in
  // BitAddressIndex::erase).
  if (meter_ != nullptr) {
    const std::uint64_t hashes = bound_indexed(jas_.universe());
    if (hashes > 0) meter_->charge_hash(hashes);
    if (erased) meter_->charge_delete();
  }
  if (erased) --size_;
  if (s.size_gauge != nullptr) {
    s.size_gauge->set(static_cast<double>(shard_size));
  }
}

void ShardedBitIndex::charge_probe(AttrMask mask, const ProbeStats& stats) {
  if (meter_ == nullptr) return;
  // Probe-side hashing is charged once: the coordinator computes the probe
  // layout (N_{A,ap} hashes) and every shard reuses it. Bucket visits and
  // comparisons are real per-shard work and sum.
  const std::uint64_t hashes = bound_indexed(mask);
  if (hashes > 0) meter_->charge_hash(hashes);
  if (stats.buckets_visited > 0) {
    meter_->charge_bucket_visit(stats.buckets_visited);
  }
  if (stats.tuples_compared > 0) {
    meter_->charge_compare(stats.tuples_compared);
  }
}

ProbeStats ShardedBitIndex::probe(const ProbeKey& key,
                                  std::vector<const Tuple*>& out) {
  ProbeStats total;
  const std::size_t target = target_shard(key);
  if (target < shards_.size()) {
    Shard& s = *shards_[target];
    MutexLock lk(s.mu);
    total = s.index.probe(key, out);
    if (fanout_hist_ != nullptr) fanout_hist_->observe(1.0);
  } else {
    const std::size_t n = shards_.size();
    // Local per-shard buffers: probe() must stay safe for concurrent
    // callers (the fan-out lands on pool threads), so no member scratch.
    std::vector<std::vector<const Tuple*>> parts(n);
    std::vector<ProbeStats> stats(n);
    // Trace-span fan-out timing: per-shard wall ns, written by whichever
    // pool thread serves the shard (distinct slots, no race).
    const std::uint64_t span =
        telemetry_ != nullptr ? telemetry_->active_span() : 0;
    std::vector<std::uint64_t> shard_ns;
    if (span != 0) shard_ns.assign(n, 0);
    auto run = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        // Span-gated wall timing of the per-shard fan-out: pure telemetry
        // (no cost-model input), and free unless this tuple carries a
        // trace span. amri-lint: allow(AMRI102)
        std::chrono::steady_clock::time_point t0{};
        if (span != 0) t0 = std::chrono::steady_clock::now();
        Shard& s = *shards_[i];
        MutexLock lk(s.mu);
        stats[i] = s.index.probe(key, parts[i]);
        if (span != 0) {
          shard_ns[i] = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count());
        }
      }
    };
    if (pool_ != nullptr && n > 1) {
      pool_->parallel_for(0, n, run, /*min_chunk=*/1);
    } else {
      run(0, n);
    }
    // Deterministic merge: shard-id order, each shard's matches in its
    // own probe order.
    for (std::size_t i = 0; i < n; ++i) {
      out.insert(out.end(), parts[i].begin(), parts[i].end());
      total += stats[i];
    }
    if (fanout_hist_ != nullptr) {
      fanout_hist_->observe(static_cast<double>(n));
    }
    if (span != 0 && telemetry_ != nullptr) {
      telemetry::JsonWriter w;
      w.begin_object();
      w.field("span", span);
      w.field("stage", "fanout");
      w.field("wall_ns", telemetry_->wall_ns());
      w.field("width", static_cast<std::uint64_t>(n));
      w.begin_array("shard_ns");
      for (const std::uint64_t ns : shard_ns) w.value(ns);
      w.end_array();
      w.end_object();
      telemetry_->emit(telemetry::EventKind::kSpan, stream_id_,
                       std::move(w).take());
    }
  }
  charge_probe(key.mask, total);
  return total;
}

void ShardedBitIndex::probe_batch(const ProbeKey* keys, std::size_t n,
                                  std::vector<const Tuple*>* outs,
                                  ProbeStats* stats) {
  if (n == 0) return;
  const std::size_t num_shards = shards_.size();
  if (num_shards == 1) {
    // Everything lands on shard 0 (targeted or width-1 fan-out alike):
    // one lock, one grouped batch probe underneath.
    {
      Shard& s = *shards_[0];
      MutexLock lk(s.mu);
      s.index.probe_batch(keys, n, outs, stats);
    }
    for (std::size_t i = 0; i < n; ++i) {
      charge_probe(keys[i].mask, stats[i]);
      if (fanout_hist_ != nullptr) fanout_hist_->observe(1.0);
    }
    if (batch_fanout_hist_ != nullptr) batch_fanout_hist_->observe(1.0);
    return;
  }

  // Bucket the batch's keys by owning shard; keys that do not bind the
  // sharding attribute fan out to every shard.
  std::vector<std::size_t> owner(n);
  std::vector<std::vector<std::uint32_t>> mine(num_shards);
  std::vector<std::uint32_t> fanout;
  for (std::size_t i = 0; i < n; ++i) {
    owner[i] = target_shard(keys[i]);
    if (owner[i] < num_shards) {
      mine[owner[i]].push_back(static_cast<std::uint32_t>(i));
    } else {
      fanout.push_back(static_cast<std::uint32_t>(i));
    }
  }

  // One contiguous work list per shard: its targeted keys followed by every
  // fan-out key. Each shard runs as a single ThreadPool task holding its
  // mutex once for the whole batch; the shards are uncharged, so per-key
  // stats come back exact and the wrapper charges below on this thread.
  struct ShardWork {
    std::vector<ProbeKey> keys;
    std::vector<std::vector<const Tuple*>> parts;
    std::vector<ProbeStats> stats;
  };
  std::vector<ShardWork> work(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    ShardWork& w = work[s];
    w.keys.reserve(mine[s].size() + fanout.size());
    for (const std::uint32_t i : mine[s]) w.keys.push_back(keys[i]);
    for (const std::uint32_t i : fanout) w.keys.push_back(keys[i]);
    w.parts.resize(w.keys.size());
    w.stats.resize(w.keys.size());
  }
  const std::uint64_t span =
      telemetry_ != nullptr ? telemetry_->active_span() : 0;
  std::vector<std::uint64_t> shard_ns;
  if (span != 0) shard_ns.assign(num_shards, 0);
  auto run = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t s = lo; s < hi; ++s) {
      ShardWork& w = work[s];
      if (w.keys.empty()) continue;
      // Span-gated wall timing of the batched fan-out: pure telemetry (no
      // cost-model input), free unless a trace span is active.
      // amri-lint: allow(AMRI102)
      std::chrono::steady_clock::time_point t0{};
      if (span != 0) t0 = std::chrono::steady_clock::now();
      Shard& sh = *shards_[s];
      MutexLock lk(sh.mu);
      sh.index.probe_batch(w.keys.data(), w.keys.size(), w.parts.data(),
                           w.stats.data());
      if (span != 0) {
        shard_ns[s] = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
      }
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(0, num_shards, run, /*min_chunk=*/1);
  } else {
    run(0, num_shards);
  }
  if (span != 0 && telemetry_ != nullptr) {
    std::uint64_t width = 0;
    for (const ShardWork& w : work) {
      if (!w.keys.empty()) ++width;
    }
    telemetry::JsonWriter w;
    w.begin_object();
    w.field("span", span);
    w.field("stage", "fanout");
    w.field("wall_ns", telemetry_->wall_ns());
    w.field("width", width);
    w.field("keys", static_cast<std::uint64_t>(n));
    w.field("fanout_keys", static_cast<std::uint64_t>(fanout.size()));
    w.begin_array("shard_ns");
    for (const std::uint64_t ns : shard_ns) w.value(ns);
    w.end_array();
    w.end_object();
    telemetry_->emit(telemetry::EventKind::kSpan, stream_id_,
                     std::move(w).take());
  }

  // Scatter targeted results back verbatim.
  for (std::size_t s = 0; s < num_shards; ++s) {
    ShardWork& w = work[s];
    for (std::size_t j = 0; j < mine[s].size(); ++j) {
      const std::uint32_t i = mine[s][j];
      outs[i].insert(outs[i].end(), w.parts[j].begin(), w.parts[j].end());
      stats[i] = w.stats[j];
    }
  }
  // Fan-out keys merge deterministically in shard-id order, each shard's
  // matches in its own probe order (the same order probe() produces).
  for (std::size_t f = 0; f < fanout.size(); ++f) {
    const std::uint32_t i = fanout[f];
    stats[i] = ProbeStats{};
    for (std::size_t s = 0; s < num_shards; ++s) {
      ShardWork& w = work[s];
      const std::size_t slot = mine[s].size() + f;
      outs[i].insert(outs[i].end(), w.parts[slot].begin(),
                     w.parts[slot].end());
      stats[i] += w.stats[slot];
    }
  }

  // Charges and per-key fan-out telemetry in batch order (cost parity with
  // n single probes); the batch histogram records how many shards this one
  // call dispatched to.
  for (std::size_t i = 0; i < n; ++i) {
    charge_probe(keys[i].mask, stats[i]);
    if (fanout_hist_ != nullptr) {
      fanout_hist_->observe(owner[i] < num_shards
                                ? 1.0
                                : static_cast<double>(num_shards));
    }
  }
  if (batch_fanout_hist_ != nullptr) {
    std::size_t width = 0;
    for (const ShardWork& w : work) {
      if (!w.keys.empty()) ++width;
    }
    batch_fanout_hist_->observe(static_cast<double>(width));
  }
}

ShardMigrationReport ShardedBitIndex::migrate_shards(
    const IndexConfig& target, const IndexMigrator& migrator) {
  ShardMigrationReport report;
  if (target == config_) return report;
  for (auto& sp : shards_) {
    Shard& s = *sp;
    MigrationReport r;
    {
      // Only this shard pauses; probes of the other shards proceed.
      MutexLock lk(s.mu);
      r = migrator.migrate(s.index, target);
    }
    report.tuples_moved += r.tuples_moved;
    report.hashes_charged += r.hashes_charged;
    report.max_shard_hashes =
        std::max(report.max_shard_hashes, r.hashes_charged);
    if (shard_migration_hist_ != nullptr) {
      shard_migration_hist_->observe(static_cast<double>(r.hashes_charged));
    }
  }
  config_ = target;
  if (meter_ != nullptr && report.hashes_charged > 0) {
    meter_->charge_hash(report.hashes_charged);
  }
  balance();  // refresh the imbalance gauge after the rebuild
  return report;
}

std::size_t ShardedBitIndex::memory_bytes() const {
  std::size_t total = 0;
  for (const auto& sp : shards_) {
    MutexLock lk(sp->mu);
    total += sp->index.memory_bytes();
  }
  return total;
}

std::string ShardedBitIndex::name() const {
  return "bit_address" + config_.to_string() + "x" +
         std::to_string(shards_.size());
}

void ShardedBitIndex::clear() {
  for (auto& sp : shards_) {
    MutexLock lk(sp->mu);
    sp->index.clear();
    if (sp->size_gauge != nullptr) sp->size_gauge->set(0.0);
  }
  size_ = 0;
}

void ShardedBitIndex::set_prefetch(bool on) {
  for (auto& sp : shards_) {
    MutexLock lk(sp->mu);
    sp->index.set_prefetch(on);
  }
}

ShardBalance ShardedBitIndex::balance() const {
  ShardBalance b;
  b.sizes.reserve(shards_.size());
  std::size_t total = 0;
  for (const auto& sp : shards_) {
    MutexLock lk(sp->mu);
    b.sizes.push_back(sp->index.size());
  }
  for (const std::size_t s : b.sizes) {
    total += s;
    b.max = std::max(b.max, s);
  }
  b.mean = b.sizes.empty()
               ? 0.0
               : static_cast<double>(total) /
                     static_cast<double>(b.sizes.size());
  b.imbalance = b.mean > 0.0
                    ? static_cast<double>(b.max) / b.mean
                    : 0.0;
  if (imbalance_gauge_ != nullptr) imbalance_gauge_->set(b.imbalance);
  return b;
}

void ShardedBitIndex::bind_telemetry(telemetry::Telemetry* telemetry,
                                     const std::string& prefix,
                                     StreamId stream) {
  telemetry_ = telemetry;
  stream_id_ = stream;
  if (telemetry == nullptr) {
    for (auto& sp : shards_) sp->size_gauge = nullptr;
    imbalance_gauge_ = nullptr;
    fanout_hist_ = nullptr;
    batch_fanout_hist_ = nullptr;
    shard_migration_hist_ = nullptr;
    return;
  }
  auto& reg = telemetry->metrics();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->size_gauge =
        &reg.gauge(prefix + ".shard." + std::to_string(i) + ".size");
  }
  imbalance_gauge_ = &reg.gauge(prefix + ".shard.imbalance");
  fanout_hist_ =
      &reg.histogram(prefix + ".probe.fanout_shards",
                     telemetry::Histogram::exponential_bounds(1.0, 2.0, 8));
  batch_fanout_hist_ =
      &reg.histogram(prefix + ".probe.batch.fanout_width",
                     telemetry::Histogram::exponential_bounds(1.0, 2.0, 8));
  shard_migration_hist_ =
      &reg.histogram(prefix + ".migration.shard_hashes",
                     telemetry::Histogram::exponential_bounds(1.0, 4.0, 16));
}

void ShardedBitIndex::check_invariants() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = *shards_[i];
    MutexLock lk(s.mu);
    s.index.check_invariants();
    AMRI_CHECK(s.index.config() == config_,
               "shard drifted away from the shared index configuration");
    total += s.index.size();
    s.index.for_each_tuple([&](const Tuple* t) {
      AMRI_CHECK(shard_of(*t) == i, "tuple stored in a foreign shard");
    });
  }
  AMRI_CHECK(total == size_,
             "shard sizes disagree with the aggregate tuple count");
}

}  // namespace amri::index
