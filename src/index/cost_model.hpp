// The index-configuration-dependent cost C_D of paper Equation 1:
//
//   C_D = C_hash,I + C_hash,Sr + C_search
//       = λ_d · N_A · C_h
//       + λ_r · Σ_{ap∈A} F_ap · ( N_{A,ap} · C_h
//                                + λ_d · W_ap / 2^{B_ap} · C_c )
//
// where N_A is the number of indexed attributes, N_{A,ap} the indexed
// attributes bound by ap, B_ap the bits assigned to ap's bound attributes,
// W_ap the window length and F_ap the access-pattern frequency. The model
// assumes tuples distribute evenly over buckets (the paper's stated
// index-key-map assumption).
//
// An extended variant adds the wildcard bucket-visit term the physical
// probe actually pays — 2^(bits on attributes NOT in ap) bucket touches —
// which the paper's analytical model omits; the ablation bench compares
// the two.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitops.hpp"
#include "index/index_config.hpp"

namespace amri::index {

/// One access pattern's workload share.
struct PatternFrequency {
  AttrMask mask = 0;
  double frequency = 0.0;  ///< F_ap, share of all search requests
};

/// Workload parameters of the cost model (paper Table I).
struct WorkloadParams {
  double lambda_d = 100.0;   ///< incoming tuples per time unit
  double lambda_r = 100.0;   ///< search requests per time unit
  double window_units = 10;  ///< W_ap: window length in time units
  double hash_cost = 1.0;    ///< C_h
  double compare_cost = 0.2; ///< C_c
  double bucket_cost = 0.05; ///< per-bucket touch (extended model only)
};

class CostModel {
 public:
  explicit CostModel(WorkloadParams params) : params_(params) {}

  const WorkloadParams& params() const { return params_; }

  /// The paper's C_D (Equation 1).
  double paper_cost(const IndexConfig& ic,
                    const std::vector<PatternFrequency>& patterns) const;

  /// Eq. 1 plus the wildcard bucket-enumeration term.
  double extended_cost(const IndexConfig& ic,
                       const std::vector<PatternFrequency>& patterns) const;

  /// Maintenance-side term only: λ_d · N_A · C_h.
  double maintenance_cost(const IndexConfig& ic) const;

  /// Search-side term for a single pattern (paper model).
  double search_cost(const IndexConfig& ic, AttrMask ap) const;

 private:
  WorkloadParams params_;
};

}  // namespace amri::index
