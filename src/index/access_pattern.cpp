#include "index/access_pattern.hpp"

namespace amri::index {

std::string pattern_to_string(AttrMask mask, std::size_t num_attrs,
                              const std::vector<std::string>* names) {
  std::string out = "<";
  for (std::size_t i = 0; i < num_attrs; ++i) {
    if (i != 0) out += ',';
    if (has_bit(mask, static_cast<unsigned>(i))) {
      if (names != nullptr && i < names->size()) {
        out += (*names)[i];
      } else {
        out += static_cast<char>('A' + (i % 26));
      }
    } else {
      out += '*';
    }
  }
  out += '>';
  return out;
}

ProbeKey probe_from_tuple(AttrMask mask, const Tuple& t,
                          const JoinAttributeSet& probing_side_attrs) {
  ProbeKey key;
  key.mask = mask;
  key.values.resize(probing_side_attrs.size(), Value{0});
  for_each_bit(mask, [&](unsigned pos) {
    key.values[pos] = t.at(probing_side_attrs.tuple_attr(pos));
  });
  return key;
}

}  // namespace amri::index
