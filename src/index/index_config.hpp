// Index configurations (the paper's "index key map" IC): how many bucket-id
// bits each join attribute contributes. Given B total bits the index has
// 2^B logical buckets; a tuple's bucket id is the concatenation of the
// per-attribute bit chunks.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/bitops.hpp"
#include "common/small_vector.hpp"

namespace amri::index {

class IndexConfig {
 public:
  static constexpr int kMaxTotalBits = 30;  ///< keeps 2^B enumerable

  IndexConfig() = default;
  explicit IndexConfig(std::vector<std::uint8_t> bits_per_attr);

  /// Convenience: all-zero config over `n` attributes (pure scan).
  static IndexConfig zero(std::size_t n) {
    return IndexConfig(std::vector<std::uint8_t>(n, 0));
  }

  std::size_t num_attrs() const { return bits_.size(); }
  int bits(std::size_t jas_pos) const { return bits_[jas_pos]; }
  int total_bits() const { return total_bits_; }

  /// Number of attributes with at least one bit (the paper's N_A).
  int indexed_attr_count() const { return indexed_attrs_; }

  /// Mask of JAS positions with at least one bit assigned.
  AttrMask indexed_mask() const { return indexed_mask_; }

  /// Bits assigned to the attributes in `mask` (the paper's B_ap for
  /// mask = attrs specified in ap).
  int bits_for(AttrMask mask) const;

  /// Bit shift (position within the bucket id) of attribute `jas_pos`'s
  /// chunk. Chunks are laid out lowest-JAS-position at the highest shift,
  /// mirroring the paper's concatenation order (A1 bits, then A2, then A3).
  int shift_of(std::size_t jas_pos) const { return shifts_[jas_pos]; }

  /// Total logical buckets, 2^total_bits.
  std::uint64_t bucket_count() const { return pow2_saturating(total_bits_); }

  bool operator==(const IndexConfig& o) const { return bits_ == o.bits_; }
  bool operator!=(const IndexConfig& o) const { return !(*this == o); }

  /// e.g. "[A:5 B:2 C:3]" (generic letter names).
  std::string to_string() const;

 private:
  std::vector<std::uint8_t> bits_;
  std::vector<int> shifts_;
  int total_bits_ = 0;
  int indexed_attrs_ = 0;
  AttrMask indexed_mask_ = 0;
};

/// Enumerate every allocation of at most `budget` bits over `num_attrs`
/// attributes with at most `max_per_attr` bits each, invoking `fn` for each
/// allocation (including the all-zero one). Used by the exhaustive
/// optimizer; the count is C(budget + n, n)-ish and small for paper-scale
/// parameters.
void enumerate_allocations(
    std::size_t num_attrs, int budget, int max_per_attr,
    const std::function<void(const std::vector<std::uint8_t>&)>& fn);

}  // namespace amri::index
