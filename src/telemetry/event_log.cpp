#include "telemetry/event_log.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace amri::telemetry {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kRunStart: return "run_start";
    case EventKind::kRunEnd: return "run_end";
    case EventKind::kSample: return "sample";
    case EventKind::kTunerDecision: return "tuner_decision";
    case EventKind::kMigrationStart: return "migration_start";
    case EventKind::kMigrationEnd: return "migration_end";
    case EventKind::kRoutingChange: return "routing_change";
    case EventKind::kOom: return "oom";
    case EventKind::kBackpressure: return "backpressure";
    case EventKind::kSpan: return "span";
  }
  return "unknown";
}

EventLog::EventLog(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

void EventLog::set_sink(std::function<void(const Event&)> sink) {
  MutexLock lk(mu_);
  sink_ = std::move(sink);
}

std::uint64_t EventLog::emit(Event e) {
  MutexLock lk(mu_);
  e.seq = next_seq_++;
  if (sink_) sink_(e);
  const std::size_t slot = static_cast<std::size_t>(e.seq % capacity_);
  if (slot < ring_.size()) {
    ring_[slot] = std::move(e);
  } else {
    ring_.push_back(std::move(e));  // still filling toward capacity_
  }
  return next_seq_ - 1;
}

std::vector<Event> EventLog::snapshot() const {
  std::vector<Event> out;
  {
    MutexLock lk(mu_);
    out = ring_;
  }
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return out;
}

std::uint64_t EventLog::total_emitted() const {
  MutexLock lk(mu_);
  return next_seq_;
}

std::uint64_t EventLog::overwritten() const {
  MutexLock lk(mu_);
  return next_seq_ > ring_.size() ? next_seq_ - ring_.size() : 0;
}

std::size_t EventLog::size() const {
  MutexLock lk(mu_);
  return next_seq_ < capacity_ ? static_cast<std::size_t>(next_seq_)
                               : capacity_;
}

void EventLog::clear() {
  MutexLock lk(mu_);
  ring_.clear();
  next_seq_ = 0;
}

}  // namespace amri::telemetry
