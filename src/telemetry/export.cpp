#include "telemetry/export.hpp"

#include <cctype>
#include <fstream>
#include <ostream>

#include "telemetry/json.hpp"

namespace amri::telemetry {

namespace {

std::string sanitise(std::string_view name) {
  std::string out = "amri_";
  for (const char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_';
  }
  return out;
}

void histogram_json(JsonWriter& w, const Histogram& h) {
  w.field("count", h.count());
  w.field("sum", h.sum());
  w.field("mean", h.mean());
  w.field("max", h.max_observed());
  w.begin_array("buckets");
  const auto& bounds = h.bounds();
  const auto& buckets = h.bucket_counts();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    JsonWriter b;
    b.begin_object();
    if (i < bounds.size()) {
      b.field("le", bounds[i]);
    } else {
      b.field("le", "inf");
    }
    b.field("n", buckets[i]);
    b.end_object();
    w.value_raw(std::move(b).take());
  }
  w.end_array();
}

}  // namespace

std::string event_to_json(const Event& e) {
  JsonWriter w;
  w.begin_object();
  w.field("type", "event");
  w.field("kind", event_kind_name(e.kind));
  w.field("t", static_cast<std::int64_t>(e.t));
  w.field("stream", static_cast<std::uint64_t>(e.stream));
  w.field("seq", e.seq);
  if (!e.payload.empty()) w.raw_field("data", e.payload);
  w.end_object();
  return std::move(w).take();
}

void write_trace_jsonl(std::ostream& os, const Telemetry& telemetry,
                       const TraceWriteOptions& options) {
  const EventLog& log = telemetry.events();
  {
    JsonWriter w;
    w.begin_object();
    w.field("type", "trace_header");
    w.field("version", std::uint64_t{1});
    w.field("t_end", static_cast<std::int64_t>(telemetry.now()));
    w.field("events_total", log.total_emitted());
    w.field("events_retained", static_cast<std::uint64_t>(log.size()));
    w.field("events_overwritten", log.overwritten());
    w.end_object();
    os << w.str() << '\n';
  }
  for (const Event& e : log.snapshot()) {
    os << event_to_json(e) << '\n';
  }
  if (!options.include_metrics) return;
  const TimeMicros t_end = telemetry.now();
  const MetricsRegistry& reg = telemetry.metrics();
  for (const auto& [name, c] : reg.counters()) {
    JsonWriter w;
    w.begin_object();
    w.field("type", "metric");
    w.field("kind", "counter");
    w.field("t", static_cast<std::int64_t>(t_end));
    w.field("name", name);
    w.field("value", c.value());
    w.end_object();
    os << w.str() << '\n';
  }
  for (const auto& [name, g] : reg.gauges()) {
    JsonWriter w;
    w.begin_object();
    w.field("type", "metric");
    w.field("kind", "gauge");
    w.field("t", static_cast<std::int64_t>(t_end));
    w.field("name", name);
    w.field("value", g.value());
    w.end_object();
    os << w.str() << '\n';
  }
  for (const auto& [name, h] : reg.histograms()) {
    JsonWriter w;
    w.begin_object();
    w.field("type", "metric");
    w.field("kind", "histogram");
    w.field("t", static_cast<std::int64_t>(t_end));
    w.field("name", name);
    histogram_json(w, h);
    w.end_object();
    os << w.str() << '\n';
  }
}

bool write_trace_file(const std::string& path, const Telemetry& telemetry,
                      const TraceWriteOptions& options) {
  std::ofstream out(path);
  if (!out) return false;
  write_trace_jsonl(out, telemetry, options);
  return static_cast<bool>(out);
}

void write_metrics_text(std::ostream& os, const MetricsRegistry& registry) {
  // HELP text is the original dotted name: it survives sanitisation, so a
  // scrape can always be mapped back to the registry identifier.
  for (const auto& [name, c] : registry.counters()) {
    const std::string id = sanitise(name);
    os << "# HELP " << id << ' ' << name << '\n';
    os << "# TYPE " << id << " counter\n" << id << ' ' << c.value() << '\n';
  }
  for (const auto& [name, g] : registry.gauges()) {
    const std::string id = sanitise(name);
    os << "# HELP " << id << ' ' << name << '\n';
    os << "# TYPE " << id << " gauge\n"
       << id << ' ' << json_number(g.value()) << '\n';
  }
  for (const auto& [name, h] : registry.histograms()) {
    const std::string id = sanitise(name);
    os << "# HELP " << id << ' ' << name << '\n';
    os << "# TYPE " << id << " histogram\n";
    std::uint64_t cumulative = 0;
    const auto& bounds = h.bounds();
    const auto& buckets = h.bucket_counts();
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      cumulative += buckets[i];
      os << id << "_bucket{le=\"";
      if (i < bounds.size()) {
        os << json_number(bounds[i]);
      } else {
        os << "+Inf";
      }
      os << "\"} " << cumulative << '\n';
    }
    os << id << "_sum " << json_number(h.sum()) << '\n';
    os << id << "_count " << h.count() << '\n';
  }
}

void write_metrics_csv(std::ostream& os, const MetricsRegistry& registry) {
  os << "metric,kind,field,value\n";
  // Metric names are dot/alnum identifiers chosen by this codebase — no
  // commas or quotes — so plain comma joining is CSV-safe here.
  for (const auto& [name, c] : registry.counters()) {
    os << name << ",counter,value," << c.value() << '\n';
  }
  for (const auto& [name, g] : registry.gauges()) {
    os << name << ",gauge,value," << json_number(g.value()) << '\n';
  }
  for (const auto& [name, h] : registry.histograms()) {
    os << name << ",histogram,count," << h.count() << '\n';
    os << name << ",histogram,sum," << json_number(h.sum()) << '\n';
    os << name << ",histogram,mean," << json_number(h.mean()) << '\n';
    const auto& bounds = h.bounds();
    const auto& buckets = h.bucket_counts();
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      os << name << ",histogram,le_";
      if (i < bounds.size()) {
        os << json_number(bounds[i]);
      } else {
        os << "inf";
      }
      os << ',' << buckets[i] << '\n';
    }
  }
}

}  // namespace amri::telemetry
