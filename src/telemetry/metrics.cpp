#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cassert>

namespace amri::telemetry {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  MutexLock lk(mu_);
  buckets_.assign(bounds_.size() + 1, 0);
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t count) {
  assert(start > 0.0 && factor > 1.0);
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::linear_bounds(double start, double step,
                                             std::size_t count) {
  assert(step > 0.0);
  std::vector<double> bounds;
  bounds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(start + step * static_cast<double>(i));
  }
  return bounds;
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto slot = static_cast<std::size_t>(it - bounds_.begin());
  MutexLock lk(mu_);
  ++buckets_[slot];
  ++count_;
  sum_ += v;
  if (count_ == 1 || v > max_) max_ = v;
}

std::uint64_t Histogram::count() const {
  MutexLock lk(mu_);
  return count_;
}

double Histogram::sum() const {
  MutexLock lk(mu_);
  return sum_;
}

double Histogram::mean() const {
  MutexLock lk(mu_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::max_observed() const {
  MutexLock lk(mu_);
  return count_ == 0 ? 0.0 : max_;
}

double Histogram::percentile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  MutexLock lk(mu_);
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t in_bucket = buckets_[i];
    if (in_bucket == 0) continue;
    const std::uint64_t below = cumulative;
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < target) continue;
    if (i >= bounds_.size()) return max_;  // overflow bucket: no upper bound
    const double hi = bounds_[i];
    const double lo = i == 0 ? std::min(0.0, hi) : bounds_[i - 1];
    const double fraction =
        (target - static_cast<double>(below)) / static_cast<double>(in_bucket);
    return std::min(lo + (hi - lo) * std::clamp(fraction, 0.0, 1.0), max_);
  }
  return max_;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  MutexLock lk(mu_);
  return buckets_;
}

void Histogram::reset() {
  MutexLock lk(mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  max_ = 0.0;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  MutexLock lk(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  MutexLock lk(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  MutexLock lk(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.try_emplace(std::string(name), std::move(bounds))
      .first->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  MutexLock lk(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  MutexLock lk(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  MutexLock lk(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::size_t MetricsRegistry::size() const {
  MutexLock lk(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::clear() {
  MutexLock lk(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace amri::telemetry
