// Minimal hand-rolled JSON emission for the telemetry trace: enough to
// build one object per event/metric line with correct escaping, and
// nothing more (no parsing, no DOM). Producers build payload fragments
// with JsonWriter; exporters wrap them into JSON-lines.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace amri::telemetry {

/// Escape the characters RFC 8259 requires inside a JSON string literal.
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  static constexpr char kHex[] = "0123456789abcdef";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Render a double as a JSON number (JSON has no NaN/Inf; map them to 0
/// rather than emitting an unparsable token).
inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Streaming builder for one JSON object or array tree. Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.field("name", "stem.0");
///   w.begin_array("values");
///   w.value(1.5);
///   w.end_array();
///   w.end_object();
///   std::string json = std::move(w).take();
class JsonWriter {
 public:
  JsonWriter& begin_object() {
    comma();
    out_ += '{';
    fresh_ = true;
    return *this;
  }
  JsonWriter& begin_object(std::string_view key) {
    field_key(key);
    out_ += '{';
    fresh_ = true;
    return *this;
  }
  JsonWriter& end_object() {
    out_ += '}';
    fresh_ = false;
    return *this;
  }

  JsonWriter& begin_array(std::string_view key) {
    field_key(key);
    out_ += '[';
    fresh_ = true;
    return *this;
  }
  JsonWriter& end_array() {
    out_ += ']';
    fresh_ = false;
    return *this;
  }

  JsonWriter& field(std::string_view key, std::string_view v) {
    field_key(key);
    string_value(v);
    return *this;
  }
  JsonWriter& field(std::string_view key, const char* v) {
    return field(key, std::string_view(v));
  }
  JsonWriter& field(std::string_view key, double v) {
    field_key(key);
    out_ += json_number(v);
    return *this;
  }
  JsonWriter& field(std::string_view key, std::uint64_t v) {
    field_key(key);
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& field(std::string_view key, std::int64_t v) {
    field_key(key);
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& field(std::string_view key, bool v) {
    field_key(key);
    out_ += v ? "true" : "false";
    return *this;
  }
  /// Splice a prebuilt JSON fragment (object/array/number) as the value.
  JsonWriter& raw_field(std::string_view key, std::string_view raw_json) {
    field_key(key);
    out_ += raw_json;
    return *this;
  }

  /// Array-element values.
  JsonWriter& value(double v) {
    comma();
    out_ += json_number(v);
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(std::string_view v) {
    comma();
    string_value(v);
    return *this;
  }
  /// Splice a prebuilt JSON fragment as an array element.
  JsonWriter& value_raw(std::string_view raw_json) {
    comma();
    out_ += raw_json;
    return *this;
  }

  const std::string& str() const { return out_; }
  std::string take() && { return std::move(out_); }

 private:
  void comma() {
    if (!fresh_ && !out_.empty()) out_ += ',';
    fresh_ = false;
  }
  void field_key(std::string_view key) {
    comma();
    out_ += '"';
    out_ += json_escape(key);
    out_ += "\":";
  }
  void string_value(std::string_view v) {
    out_ += '"';
    out_ += json_escape(v);
    out_ += '"';
  }

  std::string out_;
  bool fresh_ = true;
};

}  // namespace amri::telemetry
