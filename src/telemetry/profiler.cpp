#include "telemetry/profiler.hpp"

#include <cassert>
#include <ostream>
#include <string>

#include "common/table_printer.hpp"

namespace amri::telemetry {

namespace {

double elapsed_us(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

constexpr std::array<Phase, kNumPhases> kAllPhases = {
    Phase::kDrain,        Phase::kExpiry,     Phase::kInsert,
    Phase::kRoute,        Phase::kProbe,      Phase::kSnapshotMerge,
    Phase::kTunerEpoch,   Phase::kMigration,  Phase::kSample,
    Phase::kOverlapWait,
};

}  // namespace

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kDrain: return "drain";
    case Phase::kExpiry: return "expiry";
    case Phase::kInsert: return "insert";
    case Phase::kRoute: return "route";
    case Phase::kProbe: return "probe";
    case Phase::kSnapshotMerge: return "snapshot_merge";
    case Phase::kTunerEpoch: return "tuner_epoch";
    case Phase::kMigration: return "migration";
    case Phase::kSample: return "sample";
    case Phase::kOverlapWait: return "overlap_wait";
  }
  return "unknown";
}

Profiler::Profiler(MetricsRegistry& registry) {
  // Per-scope durations span sub-microsecond probes to multi-millisecond
  // migrations; 24 exponential buckets cover 0.1us .. ~1.6s.
  for (const Phase p : kAllPhases) {
    const std::string base = std::string("profile.") + phase_name(p);
    scope_us_[index(p)] = &registry.histogram(
        base + ".scope_us", Histogram::exponential_bounds(0.1, 2.0, 24));
    exclusive_gauge_[index(p)] = &registry.gauge(base + ".exclusive_us");
    offthread_gauge_[index(p)] = &registry.gauge(base + ".offthread_us");
  }
}

void Profiler::record_offthread(Phase phase, double us) {
  offthread_us_[index(phase)] += us;
  offthread_gauge_[index(phase)]->set(offthread_us_[index(phase)]);
}

double Profiler::offthread_us(Phase phase) const {
  return offthread_us_[index(phase)];
}

void Profiler::start(Phase phase) {
  const Clock::time_point now = Clock::now();
  if (depth_ > 0 && depth_ <= kMaxDepth) {
    exclusive_us_[index(stack_[depth_ - 1].phase)] +=
        elapsed_us(last_mark_, now);
  }
  if (depth_ < kMaxDepth) stack_[depth_] = Frame{phase, now};
  ++depth_;
  ++entries_[index(phase)];
  last_mark_ = now;
}

void Profiler::stop() {
  assert(depth_ > 0 && "ScopedPhase imbalance");
  if (depth_ == 0) return;
  const Clock::time_point now = Clock::now();
  if (depth_ <= kMaxDepth) {
    const Frame& frame = stack_[depth_ - 1];
    const std::size_t i = index(frame.phase);
    exclusive_us_[i] += elapsed_us(last_mark_, now);
    exclusive_gauge_[i]->set(exclusive_us_[i]);
    scope_us_[i]->observe(elapsed_us(frame.scope_start, now));
  }
  --depth_;
  last_mark_ = now;
}

Profiler::PhaseStats Profiler::stats(Phase phase) const {
  return PhaseStats{entries_[index(phase)], exclusive_us_[index(phase)]};
}

double Profiler::total_exclusive_us() const {
  double total = 0.0;
  for (const double us : exclusive_us_) total += us;
  return total;
}

const Histogram& Profiler::scope_histogram(Phase phase) const {
  return *scope_us_[index(phase)];
}

void print_phase_table(std::ostream& os, const Profiler& profiler,
                       double run_wall_us) {
  TablePrinter table({"phase", "scopes", "excl_ms", "offth_ms", "%run",
                      "p50_us", "p95_us", "p99_us", "max_us"});
  for (const Phase p : kAllPhases) {
    const Profiler::PhaseStats s = profiler.stats(p);
    const double offthread_us = profiler.offthread_us(p);
    if (s.entries == 0 && offthread_us == 0.0) continue;
    const Histogram& h = profiler.scope_histogram(p);
    const double share =
        run_wall_us > 0.0 ? s.exclusive_us / run_wall_us : 0.0;
    table.add_row({phase_name(p),
                   TablePrinter::fmt_int(static_cast<long long>(s.entries)),
                   TablePrinter::fmt(s.exclusive_us / 1000.0),
                   offthread_us > 0.0 ? TablePrinter::fmt(offthread_us / 1000.0)
                                      : "-",
                   TablePrinter::fmt_pct(share),
                   TablePrinter::fmt(h.percentile(0.50)),
                   TablePrinter::fmt(h.percentile(0.95)),
                   TablePrinter::fmt(h.percentile(0.99)),
                   TablePrinter::fmt(h.max_observed())});
  }
  const double covered =
      run_wall_us > 0.0 ? profiler.total_exclusive_us() / run_wall_us : 0.0;
  table.print(os);
  os << "profiled " << TablePrinter::fmt(profiler.total_exclusive_us() / 1000.0)
     << " ms of " << TablePrinter::fmt(run_wall_us / 1000.0) << " ms run wall ("
     << TablePrinter::fmt_pct(covered) << ")\n";
}

}  // namespace amri::telemetry
