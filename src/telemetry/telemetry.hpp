// The telemetry facade handed (as a nullable pointer) through the engine,
// index, assessment, and tuner layers. One instance per experiment run
// bundles the metric registry and the event log, and stamps events with
// the owning executor's virtual clock. The disabled path everywhere is a
// null-pointer check — no Telemetry object, no cost.
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <utility>

#include "common/types.hpp"
#include "common/virtual_clock.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"

namespace amri::telemetry {

struct TelemetryOptions {
  std::size_t event_capacity = 8192;  ///< ring-buffer slots
  /// Construct the wall-clock phase profiler (amri_sim --profile). Off by
  /// default: profiler scopes then reduce to null checks at every site.
  bool enable_profiler = false;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryOptions options = {})
      : options_(options),
        events_(options.event_capacity),
        dropped_events_(&metrics_.counter("telemetry.events.dropped")),
        wall_epoch_(std::chrono::steady_clock::now()) {
    if (options.enable_profiler) {
      profiler_ = std::make_unique<Profiler>(metrics_);
    }
  }

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  EventLog& events() { return events_; }
  const EventLog& events() const { return events_; }

  /// The executor attaches its virtual clock so events carry run time.
  /// Unattached (unit tests), events are stamped 0.
  void attach_clock(const VirtualClock* clock) { clock_ = clock; }
  TimeMicros now() const { return clock_ != nullptr ? clock_->now() : 0; }

  /// Steady-clock nanoseconds since this Telemetry was constructed; span
  /// events carry both this and the virtual `t` so wall latency and
  /// simulated time can be correlated.
  std::uint64_t wall_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall_epoch_)
            .count());
  }

  /// The phase profiler, or null unless TelemetryOptions::enable_profiler.
  Profiler* profiler() { return profiler_.get(); }
  const Profiler* profiler() const { return profiler_.get(); }

  // Sampled per-tuple spans. The executor opens a span for every Nth
  // arrival; downstream producers (eddy, STeM, sharded index) emit span
  // stage events only while `active_span() != 0`. Single active span at a
  // time, driver-thread only — like the profiler, span state is not
  // synchronized.
  std::uint64_t begin_span() { return active_span_ = ++next_span_id_; }
  /// Re-activate a span id returned by begin_span(). The batched executor
  /// allocates the span when the arrival is drained, suspends it while the
  /// rest of the batch is assembled, and resumes it around the run that
  /// routes the sampled tuple.
  void resume_span(std::uint64_t id) { active_span_ = id; }
  void end_span() { active_span_ = 0; }
  std::uint64_t active_span() const { return active_span_; }

  /// Emit an event stamped with the current virtual time. `payload` is a
  /// JSON object fragment (see JsonWriter); empty means no payload.
  /// Counts ring overwrites in `telemetry.events.dropped`.
  std::uint64_t emit(EventKind kind, StreamId stream,
                     std::string payload = {}) {
    Event e;
    e.kind = kind;
    e.t = now();
    e.stream = stream;
    e.payload = std::move(payload);
    const std::uint64_t seq = events_.emit(std::move(e));
    if (seq >= events_.capacity()) dropped_events_->add();
    return seq;
  }

 private:
  TelemetryOptions options_;
  MetricsRegistry metrics_;
  EventLog events_;
  Counter* dropped_events_;  ///< resolved once; ring-overwrite count
  std::chrono::steady_clock::time_point wall_epoch_;
  std::unique_ptr<Profiler> profiler_;
  const VirtualClock* clock_ = nullptr;
  std::uint64_t next_span_id_ = 0;
  std::uint64_t active_span_ = 0;
};

}  // namespace amri::telemetry
