// The telemetry facade handed (as a nullable pointer) through the engine,
// index, assessment, and tuner layers. One instance per experiment run
// bundles the metric registry and the event log, and stamps events with
// the owning executor's virtual clock. The disabled path everywhere is a
// null-pointer check — no Telemetry object, no cost.
#pragma once

#include <string>
#include <utility>

#include "common/types.hpp"
#include "common/virtual_clock.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/metrics.hpp"

namespace amri::telemetry {

struct TelemetryOptions {
  std::size_t event_capacity = 8192;  ///< ring-buffer slots
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryOptions options = {})
      : options_(options), events_(options.event_capacity) {}

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  EventLog& events() { return events_; }
  const EventLog& events() const { return events_; }

  /// The executor attaches its virtual clock so events carry run time.
  /// Unattached (unit tests), events are stamped 0.
  void attach_clock(const VirtualClock* clock) { clock_ = clock; }
  TimeMicros now() const { return clock_ != nullptr ? clock_->now() : 0; }

  /// Emit an event stamped with the current virtual time. `payload` is a
  /// JSON object fragment (see JsonWriter); empty means no payload.
  std::uint64_t emit(EventKind kind, StreamId stream,
                     std::string payload = {}) {
    Event e;
    e.kind = kind;
    e.t = now();
    e.stream = stream;
    e.payload = std::move(payload);
    return events_.emit(std::move(e));
  }

 private:
  TelemetryOptions options_;
  MetricsRegistry metrics_;
  EventLog events_;
  const VirtualClock* clock_ = nullptr;
};

}  // namespace amri::telemetry
