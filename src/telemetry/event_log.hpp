// Structured event log for tuner/engine decisions: a fixed-capacity ring
// buffer of timestamped events (oldest entries overwritten under pressure)
// plus an optional streaming sink that sees every event as it is emitted,
// before any overwriting. Events carry their payload as a prebuilt JSON
// object fragment — producers use JsonWriter — so the log itself stays
// independent of every engine-layer type.
//
// Thread safety: emit/snapshot/accessors are mutex-guarded so concurrent
// migrations on pool threads can log through one shared Telemetry handle.
// The sink is invoked under the log's mutex (events reach it in seq order
// exactly once); sinks must not re-enter the log.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/lock_ranks.gen.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace amri::telemetry {

enum class EventKind : std::uint8_t {
  kRunStart = 0,
  kRunEnd,
  kSample,          ///< periodic engine snapshot (throughput curve point)
  kTunerDecision,   ///< assessment + index selection outcome
  kMigrationStart,  ///< index reconfiguration begins
  kMigrationEnd,    ///< index reconfiguration done (tuples moved, pause)
  kRoutingChange,   ///< eddy picked a different target for a done-mask
  kOom,             ///< memory budget exhausted, run dies
  kBackpressure,    ///< arrival backlog crossed the pressure threshold
  kSpan,            ///< sampled per-tuple trace stage (see docs/observability)
};

const char* event_kind_name(EventKind kind);

struct Event {
  EventKind kind = EventKind::kRunStart;
  TimeMicros t = 0;        ///< virtual time at emission
  StreamId stream = 0;     ///< owning state, 0 for engine-level events
  std::uint64_t seq = 0;   ///< global emission order (assigned by the log)
  std::string payload;     ///< JSON object fragment, e.g. {"tuples":12}
};

class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 8192);

  /// Streaming sink invoked for every emitted event (after seq assignment).
  /// The sink outlives overwriting, so it sees the full stream even when
  /// the ring wraps. Pass nullptr to detach.
  void set_sink(std::function<void(const Event&)> sink) AMRI_EXCLUDES(mu_);

  /// Record an event; assigns the sequence number. Returns it.
  std::uint64_t emit(Event e) AMRI_EXCLUDES(mu_);

  /// Retained events, oldest first (ordered by seq).
  std::vector<Event> snapshot() const AMRI_EXCLUDES(mu_);

  std::uint64_t total_emitted() const AMRI_EXCLUDES(mu_);
  /// Events lost to ring overwrite (total_emitted - retained).
  std::uint64_t overwritten() const AMRI_EXCLUDES(mu_);
  std::size_t size() const AMRI_EXCLUDES(mu_);
  std::size_t capacity() const { return capacity_; }

  void clear() AMRI_EXCLUDES(mu_);

 private:
  const std::size_t capacity_;
  mutable Mutex mu_{lockrank::kEventLogMu};
  std::vector<Event> ring_
      AMRI_GUARDED_BY(mu_);  ///< grows to capacity_, then wraps by seq
  std::uint64_t next_seq_ AMRI_GUARDED_BY(mu_) = 0;
  std::function<void(const Event&)> sink_ AMRI_GUARDED_BY(mu_);
};

}  // namespace amri::telemetry
