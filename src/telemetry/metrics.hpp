// Metric primitives for the always-compiled telemetry layer: named
// counters, gauges, and fixed-bucket histograms collected in a
// MetricsRegistry owned by the component that runs an experiment (one per
// Executor). Producers resolve a metric once at construction and hold the
// returned reference/pointer; the disabled path is a null-pointer branch,
// so hot loops pay nothing when telemetry is off.
//
// Thread safety: instruments may be updated from pool threads (parallel
// migration, concurrent stress tests). Counter/Gauge use relaxed atomics —
// they are independent statistics, not synchronization; Histogram and the
// registry's name maps are mutex-guarded and annotated for Clang TSA.
// The by-reference map accessors are for post-run export and require the
// registry to be quiescent (no concurrent registration).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/lock_ranks.gen.hpp"
#include "common/thread_annotations.hpp"

namespace amri::telemetry {

/// Monotonically increasing event count. Lock-free; cross-thread updates
/// use relaxed ordering (the value is a statistic, not a synchronizer).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value. Lock-free, relaxed ordering.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with cumulative-on-export semantics (Prometheus
/// style): bucket i holds observations v <= bounds[i] and > bounds[i-1];
/// one implicit +inf overflow bucket follows the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  /// `count` bounds: start, start*factor, start*factor^2, ...
  static std::vector<double> exponential_bounds(double start, double factor,
                                                std::size_t count);
  /// `count` bounds: start, start+step, start+2*step, ...
  static std::vector<double> linear_bounds(double start, double step,
                                           std::size_t count);

  void observe(double v) AMRI_EXCLUDES(mu_);

  std::uint64_t count() const AMRI_EXCLUDES(mu_);
  double sum() const AMRI_EXCLUDES(mu_);
  double mean() const AMRI_EXCLUDES(mu_);
  double max_observed() const AMRI_EXCLUDES(mu_);

  /// Estimated q-quantile (q in [0,1]), linearly interpolated inside the
  /// bucket holding rank ceil(q*count): the same estimate Prometheus'
  /// histogram_quantile computes. The overflow bucket has no upper bound,
  /// so ranks landing there report max_observed(); an empty histogram
  /// reports 0.
  double percentile(double q) const AMRI_EXCLUDES(mu_);

  /// Bucket upper bounds; immutable after construction, safe to reference.
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts snapshot; size == bounds().size()
  /// + 1, the final entry being the +inf overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const AMRI_EXCLUDES(mu_);

  void reset() AMRI_EXCLUDES(mu_);

 private:
  const std::vector<double> bounds_;  ///< ascending upper bounds
  mutable Mutex mu_{lockrank::kHistogramMu};
  std::vector<std::uint64_t> buckets_
      AMRI_GUARDED_BY(mu_);  ///< bounds_.size() + 1 entries
  std::uint64_t count_ AMRI_GUARDED_BY(mu_) = 0;
  double sum_ AMRI_GUARDED_BY(mu_) = 0.0;
  double max_ AMRI_GUARDED_BY(mu_) = 0.0;
};

/// Name-keyed metric store. Lookup is O(log n) string compare — producers
/// are expected to resolve names once, outside hot paths. References stay
/// stable for the registry's lifetime (node-based map storage), and
/// iteration order is deterministic (sorted by name) so exports diff
/// cleanly between runs. Registration/lookup is mutex-guarded; resolved
/// instruments are individually thread-safe.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name) AMRI_EXCLUDES(mu_);
  Gauge& gauge(std::string_view name) AMRI_EXCLUDES(mu_);
  /// Creates the histogram with `bounds` on first use; subsequent calls
  /// with the same name return the existing histogram and ignore `bounds`.
  Histogram& histogram(std::string_view name, std::vector<double> bounds)
      AMRI_EXCLUDES(mu_);

  const Counter* find_counter(std::string_view name) const AMRI_EXCLUDES(mu_);
  const Gauge* find_gauge(std::string_view name) const AMRI_EXCLUDES(mu_);
  const Histogram* find_histogram(std::string_view name) const
      AMRI_EXCLUDES(mu_);

  // Whole-map accessors for exporters. Quiescent use only: no concurrent
  // registration may run while iterating (export happens after the run).
  const std::map<std::string, Counter, std::less<>>& counters() const
      AMRI_NO_THREAD_SAFETY_ANALYSIS {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const
      AMRI_NO_THREAD_SAFETY_ANALYSIS {
    return gauges_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const
      AMRI_NO_THREAD_SAFETY_ANALYSIS {
    return histograms_;
  }

  std::size_t size() const AMRI_EXCLUDES(mu_);
  void clear() AMRI_EXCLUDES(mu_);

 private:
  mutable Mutex mu_{lockrank::kMetricsRegistryMu};
  std::map<std::string, Counter, std::less<>> counters_ AMRI_GUARDED_BY(mu_);
  std::map<std::string, Gauge, std::less<>> gauges_ AMRI_GUARDED_BY(mu_);
  std::map<std::string, Histogram, std::less<>> histograms_
      AMRI_GUARDED_BY(mu_);
};

}  // namespace amri::telemetry
