// Metric primitives for the always-compiled telemetry layer: named
// counters, gauges, and fixed-bucket histograms collected in a
// MetricsRegistry owned by the component that runs an experiment (one per
// Executor). Producers resolve a metric once at construction and hold the
// returned reference/pointer; the disabled path is a null-pointer branch,
// so hot loops pay nothing when telemetry is off.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace amri::telemetry {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram with cumulative-on-export semantics (Prometheus
/// style): bucket i holds observations v <= bounds[i] and > bounds[i-1];
/// one implicit +inf overflow bucket follows the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  /// `count` bounds: start, start*factor, start*factor^2, ...
  static std::vector<double> exponential_bounds(double start, double factor,
                                                std::size_t count);
  /// `count` bounds: start, start+step, start+2*step, ...
  static std::vector<double> linear_bounds(double start, double step,
                                           std::size_t count);

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  double max_observed() const { return count_ == 0 ? 0.0 : max_; }

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size == bounds().size() + 1, the
  /// final entry being the +inf overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return buckets_; }

  void reset();

 private:
  std::vector<double> bounds_;       ///< ascending upper bounds
  std::vector<std::uint64_t> buckets_;  ///< bounds_.size() + 1 entries
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// Name-keyed metric store. Lookup is O(log n) string compare — producers
/// are expected to resolve names once, outside hot paths. References stay
/// stable for the registry's lifetime (node-based map storage), and
/// iteration order is deterministic (sorted by name) so exports diff
/// cleanly between runs.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Creates the histogram with `bounds` on first use; subsequent calls
  /// with the same name return the existing histogram and ignore `bounds`.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }
  void clear();

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace amri::telemetry
