// Trace and metric exporters (the style of bench/bench_util.hpp's CSV
// helpers): a hand-rolled JSON-lines run-trace writer, a Prometheus-style
// plain-text metrics dump, and a CSV metrics dump. All exporters are
// deterministic — events in emission order, metrics sorted by name — so
// two run traces can be diffed line by line to localise a regression.
#pragma once

#include <iosfwd>
#include <string>

#include "telemetry/telemetry.hpp"

namespace amri::telemetry {

struct TraceWriteOptions {
  bool include_metrics = true;  ///< append metric lines after the events
};

/// JSON-lines run trace: one header line, one line per retained event
/// (time-ordered), then — when requested — one line per metric carrying
/// the final registry state. Every line is a standalone JSON object.
void write_trace_jsonl(std::ostream& os, const Telemetry& telemetry,
                       const TraceWriteOptions& options = {});

/// Convenience: write_trace_jsonl to `path`; returns false when the file
/// cannot be opened.
bool write_trace_file(const std::string& path, const Telemetry& telemetry,
                      const TraceWriteOptions& options = {});

/// Prometheus-style text exposition ("# TYPE name kind" then samples;
/// histograms expand into cumulative _bucket/_sum/_count series). Metric
/// names are sanitised ('.' and other non-identifier characters become
/// '_') and prefixed "amri_".
void write_metrics_text(std::ostream& os, const MetricsRegistry& registry);

/// CSV dump: metric,kind,field,value — one row per scalar, histograms
/// flattened into count/sum/mean plus one row per bucket.
void write_metrics_csv(std::ostream& os, const MetricsRegistry& registry);

/// One event rendered as a standalone JSON object (the trace line format,
/// minus the trailing newline). Exposed for tests and streaming sinks.
std::string event_to_json(const Event& e);

}  // namespace amri::telemetry
