// Wall-clock phase profiler: RAII scope timers around the executor's
// pipeline phases (drain, expiry, insert, route, probe, assessor
// snapshot/merge, tuner epoch, shard migration, sampling). Scopes nest —
// a probe runs inside a route, a migration inside a tuner epoch — and the
// profiler keeps *exclusive* per-phase wall time (a child's time is not
// double-counted in its parent), so the per-phase totals sum to the wall
// time spent inside any scope. Per-scope *inclusive* durations feed a
// registry histogram per phase (`profile.<phase>.scope_us`) for
// p50/p95/p99; exclusive totals mirror into `profile.<phase>.exclusive_us`
// gauges so both flow through the JSONL/Prometheus exporters unchanged.
//
// Thread safety: none — the profiler tracks one scope stack and must only
// be driven from the executor's driver thread (pool-thread work is timed
// by its caller's enclosing scope; the ThreadPool has its own queue-wait
// instruments). The registry instruments it writes are thread-safe.
// The disabled path is the usual nullable-handle contract: a null
// Profiler* makes ScopedPhase a no-op worth two null checks.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <iosfwd>

#include "telemetry/metrics.hpp"

namespace amri::telemetry {

enum class Phase : std::uint8_t {
  kDrain = 0,      ///< pulling arrivals from the source into the backlog
  kExpiry,         ///< sliding-window expiry sweeps across STeMs
  kInsert,         ///< STeM index inserts (single or batched)
  kRoute,          ///< eddy routing (route / route_batch), probes excluded
  kProbe,          ///< index probe work inside a routing hop
  kSnapshotMerge,  ///< per-shard assessor snapshot + merge at an epoch
  kTunerEpoch,     ///< tuner decide/optimize (migration excluded)
  kMigration,      ///< index reconfiguration (rehash + move)
  kSample,         ///< periodic engine state sampling
  kOverlapWait,    ///< driver blocked on the wall-mode overlap worker
};

inline constexpr std::size_t kNumPhases = 10;

const char* phase_name(Phase phase);

class Profiler {
 public:
  /// Resolves the per-phase instruments from `registry` once, up front
  /// (`profile.<phase>.scope_us` histograms, `.exclusive_us` gauges).
  explicit Profiler(MetricsRegistry& registry);

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Enter / leave a phase scope. Prefer ScopedPhase. Nesting deeper than
  /// kMaxDepth is counted but not timed separately (folds into the parent).
  void start(Phase phase);
  void stop();

  struct PhaseStats {
    std::uint64_t entries = 0;    ///< scope entry count
    double exclusive_us = 0.0;    ///< wall time inside this phase only
  };
  PhaseStats stats(Phase phase) const;

  /// Attribute wall time that was spent on a worker thread concurrently
  /// with the driver (wall-mode pipeline overlap: the worker self-times
  /// its drain and the driver records it here at adoption). Kept separate
  /// from the exclusive totals — those still sum to driver-thread wall
  /// time — and mirrored into `profile.<phase>.offthread_us` gauges.
  /// Driver-thread only, like every other profiler entry point.
  void record_offthread(Phase phase, double us);
  double offthread_us(Phase phase) const;

  /// Sum of exclusive times over every phase == wall time spent inside
  /// any profiler scope.
  double total_exclusive_us() const;

  /// Inclusive per-scope duration histogram (registry-owned); use
  /// Histogram::percentile for p50/p95/p99.
  const Histogram& scope_histogram(Phase phase) const;

  static constexpr std::size_t kMaxDepth = 16;

 private:
  using Clock = std::chrono::steady_clock;

  struct Frame {
    Phase phase = Phase::kDrain;
    Clock::time_point scope_start;
  };

  static std::size_t index(Phase phase) {
    return static_cast<std::size_t>(phase);
  }

  std::array<Frame, kMaxDepth> stack_;
  std::size_t depth_ = 0;
  Clock::time_point last_mark_;

  std::array<std::uint64_t, kNumPhases> entries_{};
  std::array<double, kNumPhases> exclusive_us_{};
  std::array<double, kNumPhases> offthread_us_{};
  std::array<Histogram*, kNumPhases> scope_us_{};
  std::array<Gauge*, kNumPhases> exclusive_gauge_{};
  std::array<Gauge*, kNumPhases> offthread_gauge_{};
};

/// RAII phase scope; `profiler` may be null (detached telemetry), in which
/// case construction and destruction are single null checks.
class ScopedPhase {
 public:
  ScopedPhase(Profiler* profiler, Phase phase) : profiler_(profiler) {
    if (profiler_ != nullptr) profiler_->start(phase);
  }
  ~ScopedPhase() {
    if (profiler_ != nullptr) profiler_->stop();
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Profiler* profiler_;
};

/// Render the end-of-run phase table (amri_sim --profile): per phase the
/// scope count, exclusive total, share of `run_wall_us`, and inclusive
/// p50/p95/p99/max per scope. Phases never entered are omitted.
void print_phase_table(std::ostream& os, const Profiler& profiler,
                       double run_wall_us);

}  // namespace amri::telemetry
