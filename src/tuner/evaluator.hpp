// Candidate evaluation: the first half of the tuner's evaluator/selector
// pipeline (after hyrise's IndexTuner split). An evaluator turns one
// epoch's assessed access-pattern statistics — the thresholded answer of a
// single assessor or of merged per-shard snapshots — into scored candidate
// index configurations. It is a pure scoring function: no migration
// decision, no hysteresis, no budgets; those belong to the selector
// (tuner/selector.hpp). Keeping the two halves separate makes each
// heuristic pluggable and unit-testable in isolation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "assessment/assessor.hpp"
#include "index/cost_model.hpp"
#include "index/index_config.hpp"
#include "index/index_optimizer.hpp"

namespace amri::tuner {

/// One epoch's evaluation input: the assessed frequent patterns and the
/// configuration the state currently runs.
struct EvaluationInput {
  std::vector<assessment::AssessedPattern> frequent;
  index::IndexConfig current;
};

/// Scored candidates for one epoch, best first.
struct Evaluation {
  index::IndexConfig best;       ///< cheapest candidate found
  double best_cost = 0.0;        ///< modelled C_D of `best`
  double current_cost = 0.0;     ///< modelled C_D of the current IC
  std::uint64_t configs_evaluated = 0;
  /// The cheapest track_top_k candidates, ascending cost (includes `best`
  /// as the first entry). Empty when tracking is off.
  std::vector<index::ScoredConfig> top;
};

/// Scores candidate ICs for one state's assessed workload.
class CandidateEvaluator {
 public:
  virtual ~CandidateEvaluator() = default;

  /// Score candidates against `input.frequent`; must also cost
  /// `input.current` under the same model so the selector compares like
  /// with like. `track_top_k` > 0 asks for the scored runner-ups
  /// (telemetry provenance); evaluators may ignore it.
  virtual Evaluation evaluate(const EvaluationInput& input,
                              std::size_t track_top_k) const = 0;

  virtual std::string name() const = 0;
};

/// The paper's evaluator: exhaustive (or greedy) bit-allocation search
/// over Equation 1 via index::IndexOptimizer, costing the current IC with
/// the same paper/extended variant the optimizer uses.
class CostModelEvaluator final : public CandidateEvaluator {
 public:
  CostModelEvaluator(index::CostModel model, index::OptimizerOptions options,
                     std::size_t num_attrs, bool greedy = false)
      : model_(std::move(model)),
        options_(options),
        num_attrs_(num_attrs),
        greedy_(greedy) {}

  Evaluation evaluate(const EvaluationInput& input,
                      std::size_t track_top_k) const override;

  std::string name() const override {
    return greedy_ ? "cost-model-greedy" : "cost-model-exhaustive";
  }

  const index::CostModel& model() const { return model_; }

 private:
  index::CostModel model_;
  index::OptimizerOptions options_;
  std::size_t num_attrs_;
  bool greedy_;
};

std::unique_ptr<CandidateEvaluator> make_cost_model_evaluator(
    index::CostModel model, index::OptimizerOptions options,
    std::size_t num_attrs, bool greedy = false);

}  // namespace amri::tuner
