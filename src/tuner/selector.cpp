#include "tuner/selector.hpp"

#include <algorithm>
#include <cmath>

namespace amri::tuner {

namespace {
// Engineering estimate of one flat-directory slot (inline bucket header +
// tag array) for the memory guardrail's what-if footprint. Deliberately a
// coarse model: the guard protects against directory blow-up from large
// bit budgets, not byte-exact accounting.
constexpr std::size_t kApproxBytesPerBucket = 64;

std::size_t directory_bytes(const index::IndexConfig& ic) {
  return static_cast<std::size_t>(ic.bucket_count()) * kApproxBytesPerBucket;
}
}  // namespace

std::string_view verdict_name(GuardrailVerdict v) {
  switch (v) {
    case GuardrailVerdict::kFired:
      return "fired";
    case GuardrailVerdict::kNoChange:
      return "no_change";
    case GuardrailVerdict::kBelowDeadband:
      return "below_deadband";
    case GuardrailVerdict::kHysteresis:
      return "hysteresis";
    case GuardrailVerdict::kNotAmortized:
      return "not_amortized";
    case GuardrailVerdict::kTimeBudget:
      return "time_budget";
    case GuardrailVerdict::kMemoryBudget:
      return "memory_budget";
  }
  return "unknown";
}

Selection GuardrailSelector::select(const Evaluation& eval,
                                    const index::IndexConfig& current,
                                    const WhatIfContext& ctx) {
  ++epoch_;

  Selection s;
  s.modelled_benefit_us = eval.current_cost - eval.best_cost;
  // What-if rebuild pause: exactly the charge IndexMigrator will bill —
  // every stored tuple re-inserted at one hash per indexed attribute.
  s.migration_cost_us = static_cast<double>(ctx.stored_tuples) *
                        static_cast<double>(eval.best.indexed_attr_count()) *
                        hash_cost_;

  const bool budgeted =
      options_.enabled && options_.epoch_time_budget_us !=
                              std::numeric_limits<double>::infinity();
  if (budgeted) {
    budget_us_ =
        std::min(budget_us_ + options_.epoch_time_budget_us,
                 options_.epoch_time_budget_us * options_.burst_epochs);
  }
  s.budget_spent_us = budget_spent_total_us_;
  s.budget_remaining_us = budget_us_;

  if (eval.best == current) {
    s.verdict = GuardrailVerdict::kNoChange;
    return s;
  }

  // Benefit dead-band — identical to the legacy AmriTuner migration rule,
  // applied whether or not the production guardrails are enabled.
  if (!(eval.best_cost <
        eval.current_cost * (1.0 - options_.benefit_deadband))) {
    s.verdict = GuardrailVerdict::kBelowDeadband;
    return s;
  }

  if (options_.enabled) {
    // Hysteresis: enforce a refractory window after each migration.
    if (migrated_once_ && epoch_ - last_migration_epoch_ <
                              options_.min_epochs_between_migrations) {
      s.verdict = GuardrailVerdict::kHysteresis;
      ++suppressed_;
      return s;
    }

    // Amortization: the pause must be repaid within the horizon by the
    // modelled benefit rate (µs saved per cost-model time unit).
    s.amortize_units =
        s.modelled_benefit_us > 0.0
            ? s.migration_cost_us / s.modelled_benefit_us
            : std::numeric_limits<double>::infinity();
    if (s.amortize_units > options_.amortize_horizon_units) {
      s.verdict = GuardrailVerdict::kNotAmortized;
      ++suppressed_;
      return s;
    }

    // Memory budget: modelled post-migration footprint = live bytes plus
    // the directory growth of the target IC.
    if (options_.state_memory_budget_bytes !=
        std::numeric_limits<std::size_t>::max()) {
      const std::size_t cur_dir = directory_bytes(current);
      const std::size_t new_dir = directory_bytes(eval.best);
      const std::size_t grown =
          new_dir > cur_dir ? new_dir - cur_dir : std::size_t{0};
      if (ctx.state_bytes + grown > options_.state_memory_budget_bytes) {
        s.verdict = GuardrailVerdict::kMemoryBudget;
        ++suppressed_;
        return s;
      }
    }

    // Time budget: spend the what-if cost from the token bucket.
    if (budgeted && s.migration_cost_us > budget_us_) {
      s.verdict = GuardrailVerdict::kTimeBudget;
      ++suppressed_;
      return s;
    }
    if (budgeted) {
      budget_us_ -= s.migration_cost_us;
      budget_spent_total_us_ += s.migration_cost_us;
      s.budget_spent_us = budget_spent_total_us_;
      s.budget_remaining_us = budget_us_;
    }
  }

  migrated_once_ = true;
  last_migration_epoch_ = epoch_;
  s.migrate = true;
  s.verdict = GuardrailVerdict::kFired;
  return s;
}

}  // namespace amri::tuner
