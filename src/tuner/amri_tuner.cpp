#include "tuner/amri_tuner.hpp"

#include <cassert>

namespace amri::tuner {

AmriTuner::AmriTuner(AttrMask universe, std::size_t num_attrs,
                     index::CostModel model, TunerOptions options,
                     MemoryTracker* memory)
    : universe_(universe),
      num_attrs_(num_attrs),
      model_(std::move(model)),
      options_(options),
      assessor_(assessment::make_assessor(options.assessor, universe,
                                          options.assessor_params)),
      memory_(memory) {
  assert(assessor_ != nullptr);
  assert(popcount(universe) == static_cast<int>(num_attrs));
}

AmriTuner::~AmriTuner() {
  if (memory_ != nullptr && tracked_bytes_ > 0) {
    memory_->release(MemCategory::kStatistics, tracked_bytes_);
  }
}

void AmriTuner::sync_memory() {
  if (memory_ == nullptr) return;
  const std::size_t now = assessor_->approx_bytes();
  if (now > tracked_bytes_) {
    memory_->allocate(MemCategory::kStatistics, now - tracked_bytes_);
  } else if (now < tracked_bytes_) {
    memory_->release(MemCategory::kStatistics, tracked_bytes_ - now);
  }
  tracked_bytes_ = now;
}

void AmriTuner::observe_request(AttrMask ap) {
  assert(is_subset(ap, universe_));
  assessor_->observe(ap);
  ++since_last_decision_;
  ++observed_;
  sync_memory();
}

TuneDecision AmriTuner::recommend(const index::IndexConfig& current) {
  TuneDecision decision;
  decision.due = true;
  ++decisions_;
  since_last_decision_ = 0;

  const auto frequent = assessor_->results(options_.theta);
  decision.frequent_patterns = frequent.size();
  const auto pattern_freqs = assessment::to_pattern_frequencies(frequent);

  const index::IndexOptimizer optimizer(model_, options_.optimizer);
  const auto best = optimizer.optimize(num_attrs_, pattern_freqs);
  decision.recommended = best.config;
  decision.recommended_cost = best.cost;
  decision.current_cost = options_.optimizer.use_extended_cost
                              ? model_.extended_cost(current, pattern_freqs)
                              : model_.paper_cost(current, pattern_freqs);

  switch (options_.retention) {
    case StatsRetention::kReset:
      assessor_->reset();
      break;
    case StatsRetention::kKeep:
      break;
    case StatsRetention::kDecay:
      assessor_->decay(options_.decay_factor);
      break;
  }
  sync_memory();
  return decision;
}

TuneDecision AmriTuner::maybe_tune(index::BitAddressIndex& index) {
  TuneDecision decision = recommend(index.config());
  const double current = decision.current_cost;
  const double proposed = decision.recommended_cost;
  if (decision.recommended != index.config() &&
      proposed < current * (1.0 - options_.min_improvement)) {
    migrator_.migrate(index, decision.recommended);
    decision.migrated = true;
    ++migrations_;
  }
  return decision;
}

}  // namespace amri::tuner
