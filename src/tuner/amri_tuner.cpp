#include "tuner/amri_tuner.hpp"

#include <algorithm>
#include <cassert>

#include "common/bitops.hpp"
#include "index/access_pattern.hpp"
#include "telemetry/json.hpp"

namespace amri::tuner {

namespace {
// The selector built when TunerOptions carries no explicit guardrails:
// disabled, dead-band = min_improvement — the legacy migration rule.
GuardrailOptions effective_guardrails(const TunerOptions& options) {
  if (options.guardrails.has_value()) return *options.guardrails;
  GuardrailOptions g;
  g.enabled = false;
  g.benefit_deadband = options.min_improvement;
  return g;
}
}  // namespace

AmriTuner::AmriTuner(AttrMask universe, std::size_t num_attrs,
                     index::CostModel model, TunerOptions options,
                     MemoryTracker* memory, telemetry::Telemetry* telemetry,
                     StreamId stream)
    : universe_(universe),
      num_attrs_(num_attrs),
      model_(std::move(model)),
      options_(options),
      assessor_(assessment::make_assessor(options.assessor, universe,
                                          options.assessor_params)),
      evaluator_(make_cost_model_evaluator(model_, options.optimizer,
                                           num_attrs)),
      selector_(effective_guardrails(options), model_.params().hash_cost),
      telemetry_(telemetry),
      stream_(stream),
      migrator_(nullptr, telemetry, stream),
      memory_(memory) {
  assert(assessor_ != nullptr);
  assert(popcount(universe) == static_cast<int>(num_attrs));
  if (telemetry_ != nullptr) {
    const std::string prefix = "stem." + std::to_string(stream_);
    assessor_->bind_telemetry(telemetry_, prefix + ".assess");
    auto& reg = telemetry_->metrics();
    decision_counter_ = &reg.counter(prefix + ".tuner.decisions");
    suppressed_counter_ = &reg.counter(prefix + ".tuner.suppressed");
    stats_entries_gauge_ = &reg.gauge(prefix + ".assess.table_size");
    stats_bytes_gauge_ = &reg.gauge(prefix + ".assess.bytes");
    model_error_gauge_ = &reg.gauge(prefix + ".tuner.model_error");
    realized_probe_gauge_ = &reg.gauge(prefix + ".tuner.realized_probe_us");
  }
}

void AmriTuner::set_evaluator(std::unique_ptr<CandidateEvaluator> evaluator) {
  assert(evaluator != nullptr);
  evaluator_ = std::move(evaluator);
}

AmriTuner::~AmriTuner() {
  if (memory_ != nullptr && tracked_bytes_ > 0) {
    memory_->release(MemCategory::kStatistics, tracked_bytes_);
  }
}

void AmriTuner::sync_memory() {
  if (memory_ == nullptr) return;
  const std::size_t now = assessor_->approx_bytes();
  if (now > tracked_bytes_) {
    memory_->allocate(MemCategory::kStatistics, now - tracked_bytes_);
  } else if (now < tracked_bytes_) {
    memory_->release(MemCategory::kStatistics, tracked_bytes_ - now);
  }
  tracked_bytes_ = now;
}

void AmriTuner::observe_request(AttrMask ap, std::uint64_t weight) {
  assert(is_subset(ap, universe_));
  assessor_->observe(ap, weight);
  since_last_decision_ += weight;
  observed_ += weight;
  sync_memory();
}

TuneDecision AmriTuner::decide(
    const std::vector<assessment::AssessedPattern>& frequent,
    const index::IndexConfig& current) {
  TuneDecision decision;
  decision.due = true;
  ++decisions_;
  since_last_decision_ = 0;

  decision.frequent_patterns = frequent.size();
  decision.previous = current;

  const std::size_t top_k = telemetry_ != nullptr
                                ? options_.telemetry_top_k
                                : options_.optimizer.track_top_k;
  Evaluation eval = evaluator_->evaluate({frequent, current}, top_k);
  decision.recommended = eval.best;
  decision.recommended_cost = eval.best_cost;
  decision.candidates = std::move(eval.top);
  decision.current_cost = eval.current_cost;
  if (telemetry_ != nullptr) {
    decision.top_patterns.assign(
        frequent.begin(),
        frequent.begin() +
            static_cast<std::ptrdiff_t>(
                std::min(frequent.size(), options_.telemetry_top_k)));
    decision_counter_->add();
    decision.predicted_current_probe_us =
        expected_probe_cost(current, frequent);
    decision.predicted_recommended_probe_us =
        expected_probe_cost(decision.recommended, frequent);
  }
  return decision;
}

double AmriTuner::expected_probe_cost(
    const index::IndexConfig& ic,
    const std::vector<assessment::AssessedPattern>& frequent) const {
  double weight = 0.0;
  double cost = 0.0;
  for (const auto& p : frequent) {
    weight += p.frequency;
    cost += p.frequency * model_.search_cost(ic, p.mask);
  }
  return weight > 0.0 ? cost / weight : -1.0;
}

TuneDecision AmriTuner::recommend(const index::IndexConfig& current) {
  TuneDecision decision = decide(assessor_->results(options_.theta), current);
  if (telemetry_ != nullptr) {
    stats_entries_gauge_->set(static_cast<double>(assessor_->table_size()));
    stats_bytes_gauge_->set(static_cast<double>(assessor_->approx_bytes()));
  }

  switch (options_.retention) {
    case StatsRetention::kReset:
      assessor_->reset();
      break;
    case StatsRetention::kKeep:
      break;
    case StatsRetention::kDecay:
      assessor_->decay(options_.decay_factor);
      break;
  }
  sync_memory();
  return decision;
}

void AmriTuner::emit_decision_event(const TuneDecision& decision,
                                    const index::IndexConfig& current) {
  if (telemetry_ == nullptr) return;
  telemetry::JsonWriter w;
  w.begin_object();
  w.field("assessor", assessor_->name());
  w.field("observed", observed_);
  w.field("frequent_patterns",
          static_cast<std::uint64_t>(decision.frequent_patterns));
  w.begin_array("top_patterns");
  for (const auto& p : decision.top_patterns) {
    telemetry::JsonWriter pw;
    pw.begin_object();
    pw.field("mask", index::pattern_to_string(p.mask, num_attrs_));
    pw.field("count", p.count);
    pw.field("frequency", p.frequency);
    pw.end_object();
    w.value_raw(std::move(pw).take());
  }
  w.end_array();
  w.begin_array("candidates");
  for (const auto& c : decision.candidates) {
    telemetry::JsonWriter cw;
    cw.begin_object();
    cw.field("ic", c.config.to_string());
    cw.field("cost", c.cost);
    cw.end_object();
    w.value_raw(std::move(cw).take());
  }
  w.end_array();
  if (!decision.query_shares.empty()) {
    // Multi-query attribution: which query drove the union workload this
    // epoch (merged per-query assessor requests behind the decision).
    w.begin_array("per_query");
    for (const QueryShare& qs : decision.query_shares) {
      telemetry::JsonWriter qw;
      qw.begin_object();
      qw.field("query", static_cast<std::uint64_t>(qs.query));
      qw.field("requests", qs.requests);
      qw.end_object();
      w.value_raw(std::move(qw).take());
    }
    w.end_array();
  }
  w.field("current_ic", current.to_string());
  w.field("current_cost", decision.current_cost);
  w.field("chosen_ic", decision.recommended.to_string());
  w.field("chosen_cost", decision.recommended_cost);
  w.field("migrated", decision.migrated);
  w.field("migration_cost_us", decision.migration_cost_us);

  // Guardrail outcome: why the recommendation fired or was suppressed,
  // with the what-if numbers the selector weighed.
  w.begin_object("guardrails");
  w.field("enabled", selector_.options().enabled);
  w.field("verdict", verdict_name(decision.verdict));
  w.field("suppressed", decision.suppressed);
  w.field("modelled_benefit_us", decision.modelled_benefit_us);
  w.field("whatif_migration_cost_us", decision.whatif_migration_cost_us);
  w.field("amortize_units", decision.amortize_units);
  if (selector_.options().enabled) {
    w.field("budget_spent_us", decision.budget_spent_us);
    w.field("budget_remaining_us", decision.budget_remaining_us);
    w.field("suppressed_total", selector_.suppressed());
  }
  w.end_object();

  // Decision timeline: close the epoch this decision ends — realized
  // per-probe cost (meter-charged virtual µs) against the prediction made
  // when it opened — then open the next one with this decision's
  // effective (post-migration-choice) prediction. Every event is
  // self-contained: no cross-event shifting needed downstream.
  w.field("epoch", decisions_);
  const double realized =
      epoch_probe_count_ > 0
          ? epoch_probe_cost_us_ / static_cast<double>(epoch_probe_count_)
          : -1.0;
  w.field("prev_predicted_probe_us", predicted_probe_us_);
  w.field("realized_probe_us", realized);
  w.field("epoch_probes", epoch_probe_count_);
  if (predicted_probe_us_ > 0.0 && realized >= 0.0) {
    const double error =
        (realized - predicted_probe_us_) / predicted_probe_us_;
    w.field("model_error", error);
    model_error_gauge_->set(error);
  }
  if (realized >= 0.0) realized_probe_gauge_->set(realized);
  const double next_predicted = decision.migrated
                                    ? decision.predicted_recommended_probe_us
                                    : decision.predicted_current_probe_us;
  w.field("predicted_probe_us", next_predicted);
  predicted_probe_us_ = next_predicted;
  epoch_probe_cost_us_ = 0.0;
  epoch_probe_count_ = 0;

  w.end_object();
  assert(telemetry_ != nullptr);  // early-returned above when detached
  telemetry_->emit(telemetry::EventKind::kTunerDecision, stream_,
                   std::move(w).take());
}

bool AmriTuner::select_migration(TuneDecision& decision,
                                 const index::IndexConfig& current,
                                 const WhatIfContext& ctx) {
  Evaluation eval;
  eval.best = decision.recommended;
  eval.best_cost = decision.recommended_cost;
  eval.current_cost = decision.current_cost;
  const Selection sel = selector_.select(eval, current, ctx);
  decision.verdict = sel.verdict;
  decision.suppressed = sel.verdict == GuardrailVerdict::kHysteresis ||
                        sel.verdict == GuardrailVerdict::kNotAmortized ||
                        sel.verdict == GuardrailVerdict::kTimeBudget ||
                        sel.verdict == GuardrailVerdict::kMemoryBudget;
  decision.modelled_benefit_us = sel.modelled_benefit_us;
  decision.whatif_migration_cost_us = sel.migration_cost_us;
  decision.amortize_units = sel.amortize_units;
  decision.budget_spent_us = sel.budget_spent_us;
  decision.budget_remaining_us = sel.budget_remaining_us;
  return sel.migrate;
}

void AmriTuner::finish_decision(const TuneDecision& decision,
                                const index::IndexConfig& before) {
  if (telemetry_ != nullptr) {
    if (decision.suppressed) suppressed_counter_->add();
    emit_decision_event(decision, before);
  }
  if (options_.on_decision) options_.on_decision(stream_, decision);
}

TuneDecision AmriTuner::maybe_tune(index::BitAddressIndex& index) {
  const index::IndexConfig before = index.config();
  TuneDecision decision = recommend(before);
  const WhatIfContext ctx{index.size(), index.memory_bytes()};
  if (select_migration(decision, before, ctx)) {
    const auto report = migrator_.migrate(index, decision.recommended);
    decision.migration_cost_us = static_cast<double>(report.hashes_charged) *
                                 model_.params().hash_cost;
    migration_pause_us_ += decision.migration_cost_us;
    decision.migrated = true;
    ++migrations_;
  }
  finish_decision(decision, before);
  return decision;
}

TuneDecision AmriTuner::recommend_from(const ExternalAssessment& external,
                                       const index::IndexConfig& current) {
  TuneDecision decision = decide(external.frequent, current);
  decision.query_shares = external.per_query;
  if (telemetry_ != nullptr) {
    stats_entries_gauge_->set(static_cast<double>(external.table_size));
    stats_bytes_gauge_->set(static_cast<double>(external.approx_bytes));
  }
  return decision;
}

TuneDecision AmriTuner::maybe_tune_sharded(index::ShardedBitIndex& index,
                                           const ExternalAssessment& external) {
  const index::IndexConfig before = index.config();
  TuneDecision decision = recommend_from(external, before);
  const WhatIfContext ctx{index.size(), index.memory_bytes()};
  if (select_migration(decision, before, ctx)) {
    const auto report = index.migrate_shards(decision.recommended, migrator_);
    // Total modelled pause is the full rebuild (identical to the
    // unsharded path); the *per-probe* stall shrinks to the largest
    // single-shard rebuild, ~1/N of the window.
    decision.migration_cost_us = static_cast<double>(report.hashes_charged) *
                                 model_.params().hash_cost;
    migration_pause_us_ += decision.migration_cost_us;
    decision.migrated = true;
    ++migrations_;
  }
  finish_decision(decision, before);
  return decision;
}

TuneDecision AmriTuner::maybe_tune_external(index::BitAddressIndex& index,
                                            const ExternalAssessment& external) {
  const index::IndexConfig before = index.config();
  TuneDecision decision = recommend_from(external, before);
  const WhatIfContext ctx{index.size(), index.memory_bytes()};
  if (select_migration(decision, before, ctx)) {
    const auto report = migrator_.migrate(index, decision.recommended);
    decision.migration_cost_us = static_cast<double>(report.hashes_charged) *
                                 model_.params().hash_cost;
    migration_pause_us_ += decision.migration_cost_us;
    decision.migrated = true;
    ++migrations_;
  }
  finish_decision(decision, before);
  return decision;
}

}  // namespace amri::tuner
