#include "tuner/hash_module_tuner.hpp"

#include <algorithm>
#include <cassert>

namespace amri::tuner {

HashModuleTuner::HashModuleTuner(AttrMask universe, HashTunerOptions options,
                                 MemoryTracker* memory)
    : universe_(universe),
      options_(options),
      assessor_(assessment::make_assessor(options.assessor, universe,
                                          options.assessor_params)),
      memory_(memory) {
  assert(assessor_ != nullptr);
}

HashModuleTuner::~HashModuleTuner() {
  if (memory_ != nullptr && tracked_bytes_ > 0) {
    memory_->release(MemCategory::kStatistics, tracked_bytes_);
  }
}

void HashModuleTuner::sync_memory() {
  if (memory_ == nullptr) return;
  const std::size_t now = assessor_->approx_bytes();
  if (now > tracked_bytes_) {
    memory_->allocate(MemCategory::kStatistics, now - tracked_bytes_);
  } else if (now < tracked_bytes_) {
    memory_->release(MemCategory::kStatistics, tracked_bytes_ - now);
  }
  tracked_bytes_ = now;
}

void HashModuleTuner::observe_request(AttrMask ap, std::uint64_t weight) {
  assert(is_subset(ap, universe_));
  assessor_->observe(ap, weight);
  since_last_decision_ += weight;
  sync_memory();
}

bool HashModuleTuner::maybe_tune(index::AccessModuleSet& modules) {
  ++decisions_;
  since_last_decision_ = 0;
  const auto frequent = assessor_->results(options_.theta);
  const auto freqs = assessment::to_pattern_frequencies(frequent);
  auto masks =
      index::IndexOptimizer::select_hash_modules(freqs, options_.max_modules);
  if (options_.reset_stats_after_tune) {
    assessor_->reset();
    sync_memory();
  }
  if (masks.empty()) return false;  // no signal: keep the current modules
  auto current = modules.module_masks();
  std::sort(masks.begin(), masks.end());
  std::sort(current.begin(), current.end());
  if (masks == current) return false;
  modules.retune(masks);
  ++retunes_;
  return true;
}

}  // namespace amri::tuner
