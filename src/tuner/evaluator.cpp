#include "tuner/evaluator.hpp"

namespace amri::tuner {

Evaluation CostModelEvaluator::evaluate(const EvaluationInput& input,
                                        std::size_t track_top_k) const {
  const auto pattern_freqs = assessment::to_pattern_frequencies(input.frequent);

  index::OptimizerOptions oopts = options_;
  oopts.track_top_k = track_top_k;
  const index::IndexOptimizer optimizer(model_, oopts);
  auto best = greedy_ ? optimizer.optimize_greedy(num_attrs_, pattern_freqs)
                      : optimizer.optimize(num_attrs_, pattern_freqs);

  Evaluation eval;
  eval.best = best.config;
  eval.best_cost = best.cost;
  eval.configs_evaluated = best.configs_evaluated;
  eval.top = std::move(best.top);
  eval.current_cost = options_.use_extended_cost
                          ? model_.extended_cost(input.current, pattern_freqs)
                          : model_.paper_cost(input.current, pattern_freqs);
  return eval;
}

std::unique_ptr<CandidateEvaluator> make_cost_model_evaluator(
    index::CostModel model, index::OptimizerOptions options,
    std::size_t num_attrs, bool greedy) {
  return std::make_unique<CostModelEvaluator>(std::move(model), options,
                                              num_attrs, greedy);
}

}  // namespace amri::tuner
