// Migration selection: the second half of the tuner's evaluator/selector
// pipeline. Given one epoch's Evaluation (tuner/evaluator.hpp) the
// selector decides whether the recommended IC actually fires, applying
// the production guardrails the paper's always-migrate loop lacks:
//
//  * benefit dead-band — the hysteresis margin on modelled cost
//    improvement (the legacy `min_improvement` rule; always on);
//  * migration hysteresis — a minimum number of decision epochs between
//    migrations of one state, so adversarial drift whose period matches
//    the tuning cadence cannot thrash the migrator;
//  * what-if migration costing — the rebuild pause is estimated from the
//    live state size (stored_tuples × N_A(target) × C_h, exactly what the
//    migrator will charge) and the migration only fires when the modelled
//    benefit rate amortizes it within a configurable horizon of cost-model
//    time units;
//  * per-epoch time budget — a token bucket of modelled migration
//    microseconds accrued each epoch; a migration spends its what-if cost
//    from the bucket and is suppressed when the bucket cannot cover it;
//  * state-memory budget — migrations into ICs whose directory would
//    exceed the budgeted statistics+index footprint are suppressed.
//
// With `enabled == false` (the default) only the dead-band applies and
// the selector reproduces the legacy AmriTuner migration rule
// bit-for-bit: `best != current && best_cost < current_cost * (1 - deadband)`.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

#include "index/index_config.hpp"
#include "tuner/evaluator.hpp"

namespace amri::tuner {

/// Why a recommended migration fired or was suppressed.
enum class GuardrailVerdict : std::uint8_t {
  kFired = 0,       ///< migration recommended and allowed
  kNoChange,        ///< best IC equals the current IC
  kBelowDeadband,   ///< modelled improvement under the dead-band margin
  kHysteresis,      ///< within min_epochs_between_migrations of the last one
  kNotAmortized,    ///< what-if migration cost not repaid within the horizon
  kTimeBudget,      ///< per-epoch migration time budget exhausted
  kMemoryBudget,    ///< target IC footprint exceeds the state-memory budget
};

std::string_view verdict_name(GuardrailVerdict v);

struct GuardrailOptions {
  /// Master switch. Off = legacy behaviour: dead-band only, no budgets,
  /// no hysteresis — required for the bit-for-bit differential.
  bool enabled = false;
  /// Modelled-cost dead-band: migrate only when
  /// best_cost < current_cost * (1 - benefit_deadband). This is the legacy
  /// `min_improvement` and applies whether or not guardrails are enabled.
  double benefit_deadband = 0.02;
  /// Minimum decision epochs between two migrations of one state
  /// (1 = consecutive epochs allowed; the first migration is never
  /// hysteresis-blocked). The default — one migration per 150 decision
  /// epochs sustained — spans many periods of adversarial drift whose
  /// cycle matches the tuning cadence.
  std::uint64_t min_epochs_between_migrations = 150;
  /// The migration must repay its what-if pause within this many
  /// cost-model time units of sustained modelled benefit (C_D is a rate:
  /// µs of modelled work per time unit). Fire only when
  /// migration_cost_us <= horizon × benefit rate.
  double amortize_horizon_units = 50.0;
  /// Modelled migration microseconds accrued per decision epoch into a
  /// token bucket (capped at burst_epochs × this). A firing migration
  /// spends its what-if cost; an empty bucket suppresses. infinity = off.
  /// The defaults give a full bucket (200 µs) at startup — enough for the
  /// initial adaptation of a young state — then cap sustained migration
  /// spend at 1 µs of modelled pause per epoch (~0.05% of a 2000-probe
  /// epoch's execution time).
  double epoch_time_budget_us = 1.0;
  double burst_epochs = 200.0;  ///< token-bucket cap, in epochs of accrual
  /// Hard cap on the modelled post-migration state footprint
  /// (index bytes for the target IC). SIZE_MAX = off.
  std::size_t state_memory_budget_bytes =
      std::numeric_limits<std::size_t>::max();
};

/// Live-state facts the what-if model needs, supplied by the caller at
/// each decision (the tuner reads them off the index being tuned).
struct WhatIfContext {
  std::size_t stored_tuples = 0;  ///< tuples the migration must re-insert
  std::size_t state_bytes = 0;    ///< current index footprint (memory guard)
};

/// One selection outcome. `migrate` is true only for kFired.
struct Selection {
  bool migrate = false;
  GuardrailVerdict verdict = GuardrailVerdict::kNoChange;
  /// Modelled benefit rate of switching: current_cost - best_cost (Eq. 1
  /// µs per time unit). Present for every due decision.
  double modelled_benefit_us = 0.0;
  /// What-if rebuild pause: stored_tuples × N_A(best) × C_h — exactly the
  /// charge the migrator will bill if the migration fires.
  double migration_cost_us = 0.0;
  /// migration_cost / benefit rate — time units needed to repay the pause
  /// (infinity when benefit ≤ 0). Only computed with guardrails enabled.
  double amortize_units = 0.0;
  /// Token-bucket state after this decision (guardrails enabled only).
  double budget_spent_us = 0.0;
  double budget_remaining_us = 0.0;
};

/// Stateful per-state selector. Call select() exactly once per decision
/// epoch; the epoch counter, hysteresis clock, and time-budget bucket
/// advance on every call.
class GuardrailSelector {
 public:
  GuardrailSelector(GuardrailOptions options, double hash_cost)
      : options_(options), hash_cost_(hash_cost) {
    if (options_.enabled &&
        options_.epoch_time_budget_us !=
            std::numeric_limits<double>::infinity()) {
      // Start with one full burst so the first justified migration is
      // never starved by an empty bucket.
      budget_us_ = options_.epoch_time_budget_us * options_.burst_epochs;
    }
  }

  const GuardrailOptions& options() const { return options_; }

  /// Decide whether `eval.best` should replace `eval.current`. Advances
  /// the epoch counter and (enabled only) accrues/spends the time budget.
  Selection select(const Evaluation& eval, const index::IndexConfig& current,
                   const WhatIfContext& ctx);

  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t suppressed() const { return suppressed_; }
  double budget_remaining_us() const { return budget_us_; }

 private:
  GuardrailOptions options_;
  double hash_cost_;
  std::uint64_t epoch_ = 0;
  std::uint64_t last_migration_epoch_ = 0;
  bool migrated_once_ = false;
  std::uint64_t suppressed_ = 0;
  double budget_us_ = 0.0;
  double budget_spent_total_us_ = 0.0;
};

}  // namespace amri::tuner
