// The AMRI index tuner: the online loop that (a) feeds every search
// request's access pattern to an assessment method, (b) periodically asks
// the assessor for the frequent patterns, (c) runs a candidate *evaluator*
// (tuner/evaluator.hpp — by default the cost-model optimizer search) to
// score ICs, and (d) hands the scored recommendation to a guardrail
// *selector* (tuner/selector.hpp) that decides whether the migration
// fires: benefit dead-band always, plus hysteresis / what-if amortization
// / time and memory budgets when guardrails are enabled.
//
// The tuner is deliberately index-agnostic about *application*: it returns
// recommendations, and `maybe_tune` applies one to a BitAddressIndex via
// the migrator. This lets the same tuner drive the non-adapting ablation
// (never apply) and unit tests (inspect recommendations only).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include <vector>

#include "assessment/assessor.hpp"
#include "common/memory_tracker.hpp"
#include "index/bit_address_index.hpp"
#include "index/index_migrator.hpp"
#include "index/index_optimizer.hpp"
#include "index/sharded_bit_index.hpp"
#include "telemetry/telemetry.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/selector.hpp"

namespace amri::tuner {

/// What happens to assessment statistics after each tuning decision:
///   kReset — fresh window (fastest reaction to drift, noisiest);
///   kKeep  — continuous assessment (stable, reacts slowly to drift);
///   kDecay — counts aged by decay_factor (middle ground).
enum class StatsRetention : std::uint8_t { kReset = 0, kKeep, kDecay };

struct TuneDecision;

struct TunerOptions {
  assessment::AssessorKind assessor =
      assessment::AssessorKind::kCdiaHighestCount;
  assessment::AssessorParams assessor_params{};
  double theta = 0.1;                ///< frequency threshold for results()
  std::uint64_t reassess_every = 2000;  ///< search requests between decisions
  double min_improvement = 0.02;     ///< migrate only if cost drops by >= 2%
  index::OptimizerOptions optimizer{};
  StatsRetention retention = StatsRetention::kReset;
  double decay_factor = 0.25;        ///< for kDecay
  /// With telemetry attached, every decision carries the `telemetry_top_k`
  /// most frequent assessed patterns and cheapest candidate ICs.
  std::size_t telemetry_top_k = 5;
  /// Production guardrails for the selection stage (selector.hpp). Unset
  /// (the default) builds a disabled selector whose dead-band equals
  /// `min_improvement` — the legacy migration rule, bit-for-bit.
  std::optional<GuardrailOptions> guardrails;
  /// Called after every applied decision (maybe_tune / maybe_tune_sharded)
  /// with the owning stream and the full decision, including the guardrail
  /// verdict. Fires whether or not telemetry is attached.
  std::function<void(StreamId, const TuneDecision&)> on_decision;
};

/// One query's share of the requests behind a merged assessment epoch:
/// multi-query stems attribute every probe to the routing query, so the
/// decision timeline can show which query drove the union workload.
struct QueryShare {
  std::size_t query = 0;
  std::uint64_t requests = 0;
};

struct TuneDecision {
  bool due = false;                 ///< a reassessment happened
  bool migrated = false;            ///< the IC actually changed
  index::IndexConfig recommended;   ///< best IC found (valid when due)
  double recommended_cost = 0.0;
  double current_cost = 0.0;
  std::size_t frequent_patterns = 0;
  /// Decision provenance (populated when the tuner has telemetry attached):
  /// the assessment snapshot behind the decision and the scored runner-up
  /// configurations, ascending cost.
  std::vector<assessment::AssessedPattern> top_patterns;
  std::vector<index::ScoredConfig> candidates;
  /// Modelled per-probe search cost (Eq. 1 per-request terms, frequency
  /// weighted over the frequent patterns) under the current / recommended
  /// IC — the decision-timeline prediction checked against the next
  /// epoch's realized cost. -1 when unavailable (no telemetry, or no
  /// frequent patterns). Telemetry-attached tuners only.
  double predicted_current_probe_us = -1.0;
  double predicted_recommended_probe_us = -1.0;
  /// Modelled migration pause paid by this decision (0 when not migrated).
  double migration_cost_us = 0.0;
  /// The IC the state ran when this decision was taken (maybe_tune paths).
  index::IndexConfig previous;
  /// Selection outcome (maybe_tune paths): why the recommendation fired or
  /// was suppressed, the what-if numbers behind it, and the time-budget
  /// state after the decision. `suppressed` is true for the
  /// guardrail-blocked verdicts (hysteresis / not-amortized / budget) —
  /// migrations the legacy rule would have made.
  GuardrailVerdict verdict = GuardrailVerdict::kNoChange;
  bool suppressed = false;
  /// Per-query request attribution copied from the ExternalAssessment that
  /// produced this decision (multi-query stems; empty otherwise). Emitted
  /// on the tuner_decision timeline.
  std::vector<QueryShare> query_shares;
  double modelled_benefit_us = 0.0;
  double whatif_migration_cost_us = 0.0;
  double amortize_units = 0.0;
  double budget_spent_us = 0.0;
  double budget_remaining_us = 0.0;
};

/// Externally assessed statistics for one decision. Sharded and
/// multi-query stems collect per-shard / per-query assessor snapshots,
/// merge them (assessment/snapshot.hpp), and hand the thresholded answer
/// here so the tuner sees one logical state.
struct ExternalAssessment {
  std::vector<assessment::AssessedPattern> frequent;
  std::size_t table_size = 0;    ///< merged retained entries (gauges)
  std::size_t approx_bytes = 0;  ///< merged statistics footprint (gauges)
  /// Per-query request attribution for the closing epoch (multi-query
  /// stems only; empty keeps single-query decision events unchanged).
  std::vector<QueryShare> per_query;
};

class AmriTuner {
 public:
  /// With `telemetry` set the tuner logs every decision (assessment top-k,
  /// scored candidate ICs, chosen IC, migration outcome) as a
  /// tuner_decision event for `stream`, and binds assessor/migration
  /// instruments; null keeps all telemetry paths to a pointer check.
  AmriTuner(AttrMask universe, std::size_t num_attrs, index::CostModel model,
            TunerOptions options, MemoryTracker* memory = nullptr,
            telemetry::Telemetry* telemetry = nullptr, StreamId stream = 0);

  ~AmriTuner();

  AmriTuner(const AmriTuner&) = delete;
  AmriTuner& operator=(const AmriTuner&) = delete;

  const TunerOptions& options() const { return options_; }
  const assessment::Assessor& assessor() const { return *assessor_; }
  const CandidateEvaluator& evaluator() const { return *evaluator_; }
  const GuardrailSelector& selector() const { return selector_; }

  /// Swap in a custom candidate evaluator (the default is the cost-model
  /// optimizer search). Must not be null; call before the first decision.
  void set_evaluator(std::unique_ptr<CandidateEvaluator> evaluator);

  /// Ingest `weight` search requests sharing one access pattern (batched
  /// probing feeds one weighted call per per-pattern group).
  void observe_request(AttrMask ap, std::uint64_t weight = 1);

  /// True when enough requests arrived since the last decision.
  bool tuning_due() const {
    return since_last_decision_ >= options_.reassess_every;
  }

  /// Requests left before the next decision is due (0 = due now). Batched
  /// probes chunk their keys at this boundary so mid-batch tuning happens
  /// at exactly the same request index as tuple-at-a-time execution.
  std::uint64_t requests_until_due() const {
    return since_last_decision_ >= options_.reassess_every
               ? 0
               : options_.reassess_every - since_last_decision_;
  }

  /// Run assessment + selection against `current`; returns the decision
  /// without applying it. Resets the due-counter (and optionally stats).
  TuneDecision recommend(const index::IndexConfig& current);

  /// recommend() and, if the improvement clears the hysteresis margin,
  /// migrate `index` to the recommended IC.
  TuneDecision maybe_tune(index::BitAddressIndex& index);

  /// Count `n` requests assessed *outside* the tuner (sharded stems feed
  /// their shard assessors directly); keeps the decision cadence — and the
  /// observed-request total — identical to the observe_request() path.
  void note_request(std::uint64_t n = 1) {
    since_last_decision_ += n;
    observed_ += n;
  }

  /// Accumulate the observed (meter-charged) cost of `probes` probes into
  /// the running epoch. The stem feeds this from its telemetry-guarded
  /// probe measurement (detached runs never call it); the accumulator
  /// closes at the next decision, where the epoch's realized per-probe
  /// cost is compared against the previous decision's prediction and the
  /// relative model error is exported.
  void note_probe_cost(double cost_us, std::uint64_t probes = 1) {
    epoch_probe_cost_us_ += cost_us;
    epoch_probe_count_ += probes;
  }

  /// Selection over externally assessed (merged per-shard) statistics.
  /// Same decision core as recommend(); statistics retention is the
  /// caller's job (the stem owns the shard assessors).
  TuneDecision recommend_from(const ExternalAssessment& external,
                              const index::IndexConfig& current);

  /// recommend_from() and, if the improvement clears the hysteresis
  /// margin, migrate `index` shard by shard so each pause covers only
  /// 1/N of the window.
  TuneDecision maybe_tune_sharded(index::ShardedBitIndex& index,
                                  const ExternalAssessment& external);

  /// maybe_tune() driven by an external (merged per-query) assessment
  /// instead of the tuner's own assessor — the unsharded counterpart of
  /// maybe_tune_sharded, used by multi-query stems whose shared state runs
  /// a single BitAddressIndex.
  TuneDecision maybe_tune_external(index::BitAddressIndex& index,
                                   const ExternalAssessment& external);

  std::uint64_t decisions() const { return decisions_; }
  std::uint64_t migrations() const { return migrations_; }
  /// Decisions whose recommended migration cleared the dead-band but was
  /// blocked by an enabled guardrail (hysteresis / amortization / budget).
  std::uint64_t suppressed() const { return selector_.suppressed(); }
  std::uint64_t observed_requests() const { return observed_; }

  /// Total modelled virtual time spent paused in migrations (the hashes a
  /// rebuild charges, priced by the cost model's C_h). Tracked with or
  /// without telemetry.
  double migration_pause_us() const { return migration_pause_us_; }

 private:
  void sync_memory();
  /// Shared decision core: evaluator run over `frequent` against
  /// `current`. Increments the decision counters; retention is the
  /// caller's responsibility.
  TuneDecision decide(const std::vector<assessment::AssessedPattern>& frequent,
                      const index::IndexConfig& current);
  /// Selection stage shared by maybe_tune / maybe_tune_sharded: run the
  /// guardrail selector over a due decision and copy the outcome (verdict,
  /// what-if numbers, budget state) into it. Returns true when the
  /// migration should fire.
  bool select_migration(TuneDecision& decision,
                        const index::IndexConfig& current,
                        const WhatIfContext& ctx);
  /// Post-apply bookkeeping shared by the maybe_tune paths: decision
  /// event, suppressed gauge, on_decision callback.
  void finish_decision(const TuneDecision& decision,
                       const index::IndexConfig& before);
  /// Frequency-weighted mean per-request search cost of `ic` over the
  /// frequent patterns (the prediction the decision timeline tracks).
  /// -1 when `frequent` is empty.
  double expected_probe_cost(
      const index::IndexConfig& ic,
      const std::vector<assessment::AssessedPattern>& frequent) const;
  /// Emits the decision event and rolls the epoch accumulators: the event
  /// carries the closed epoch's prediction/realized pair and the next
  /// epoch's prediction, so each event is self-contained on the timeline.
  void emit_decision_event(const TuneDecision& decision,
                           const index::IndexConfig& current);

  AttrMask universe_;
  std::size_t num_attrs_;
  index::CostModel model_;
  TunerOptions options_;
  std::unique_ptr<assessment::Assessor> assessor_;
  std::unique_ptr<CandidateEvaluator> evaluator_;
  GuardrailSelector selector_;
  telemetry::Telemetry* telemetry_;
  StreamId stream_;
  index::IndexMigrator migrator_;
  MemoryTracker* memory_;
  std::size_t tracked_bytes_ = 0;
  std::uint64_t since_last_decision_ = 0;
  std::uint64_t observed_ = 0;
  std::uint64_t decisions_ = 0;
  std::uint64_t migrations_ = 0;
  double migration_pause_us_ = 0.0;
  telemetry::Counter* decision_counter_ = nullptr;
  telemetry::Counter* suppressed_counter_ = nullptr;
  telemetry::Gauge* stats_entries_gauge_ = nullptr;
  telemetry::Gauge* stats_bytes_gauge_ = nullptr;
  // Decision timeline: realized probe cost accumulated over the running
  // epoch (fed by note_probe_cost) and the prediction made when the epoch
  // opened (-1 before the first decision).
  double epoch_probe_cost_us_ = 0.0;
  std::uint64_t epoch_probe_count_ = 0;
  double predicted_probe_us_ = -1.0;
  telemetry::Gauge* model_error_gauge_ = nullptr;
  telemetry::Gauge* realized_probe_gauge_ = nullptr;
};

}  // namespace amri::tuner
