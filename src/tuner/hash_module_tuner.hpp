// Index tuning for the multi-hash access-module baseline (paper §V,
// "adaptive hash indices that utilize highest count compression CDIA index
// tuning and conventional index selection"): the same assessment stream
// drives conventional selection — build one hash index per most-frequent
// access pattern, capped at `max_modules`.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "assessment/assessor.hpp"
#include "common/memory_tracker.hpp"
#include "index/access_module_set.hpp"
#include "index/index_optimizer.hpp"

namespace amri::tuner {

struct HashTunerOptions {
  assessment::AssessorKind assessor =
      assessment::AssessorKind::kCdiaHighestCount;
  assessment::AssessorParams assessor_params{};
  double theta = 0.1;
  std::uint64_t reassess_every = 2000;
  std::size_t max_modules = 3;  ///< hash indices the baseline may maintain
  bool reset_stats_after_tune = true;
};

class HashModuleTuner {
 public:
  HashModuleTuner(AttrMask universe, HashTunerOptions options,
                  MemoryTracker* memory = nullptr);
  ~HashModuleTuner();

  HashModuleTuner(const HashModuleTuner&) = delete;
  HashModuleTuner& operator=(const HashModuleTuner&) = delete;

  void observe_request(AttrMask ap, std::uint64_t weight = 1);
  bool tuning_due() const {
    return since_last_decision_ >= options_.reassess_every;
  }

  /// Requests left before the next decision is due (0 = due now); batched
  /// probes chunk at this boundary (see AmriTuner::requests_until_due).
  std::uint64_t requests_until_due() const {
    return since_last_decision_ >= options_.reassess_every
               ? 0
               : options_.reassess_every - since_last_decision_;
  }

  /// Select the masks for the most frequent patterns; retunes `modules`
  /// when the selection differs from its current masks. Returns true if
  /// the module set changed.
  bool maybe_tune(index::AccessModuleSet& modules);

  std::uint64_t decisions() const { return decisions_; }
  std::uint64_t retunes() const { return retunes_; }

 private:
  void sync_memory();

  AttrMask universe_;
  HashTunerOptions options_;
  std::unique_ptr<assessment::Assessor> assessor_;
  MemoryTracker* memory_;
  std::size_t tracked_bytes_ = 0;
  std::uint64_t since_last_decision_ = 0;
  std::uint64_t decisions_ = 0;
  std::uint64_t retunes_ = 0;
};

}  // namespace amri::tuner
