// SpaceSaving (Metwally et al.) heavy hitter — a stronger-in-practice
// baseline used in the heavy-hitter micro-benchmarks alongside Misra–Gries
// and Lossy Counting. Estimates overshoot by at most min_count.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

namespace amri::stats {

template <typename Key>
class SpaceSaving {
 public:
  struct Item {
    Key key{};
    std::uint64_t count = 0;
    std::uint64_t overestimate = 0;  ///< error inherited from the evictee
  };

  explicit SpaceSaving(std::size_t capacity) : capacity_(capacity) {
    assert(capacity > 0);
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return table_.size(); }
  std::uint64_t observed() const { return observed_; }

  void observe(const Key& key) {
    ++observed_;
    const auto it = table_.find(key);
    if (it != table_.end()) {
      ++it->second.count;
      return;
    }
    if (table_.size() < capacity_) {
      table_.emplace(key, Item{key, 1, 0});
      return;
    }
    // Replace the minimum-count entry, inheriting its count as error.
    auto min_it = table_.begin();
    for (auto cur = table_.begin(); cur != table_.end(); ++cur) {
      if (cur->second.count < min_it->second.count) min_it = cur;
    }
    const std::uint64_t inherited = min_it->second.count;
    table_.erase(min_it);
    table_.emplace(key, Item{key, inherited + 1, inherited});
  }

  /// Upper-bound estimate of the key's count (0 if not tracked).
  std::uint64_t estimate(const Key& key) const {
    const auto it = table_.find(key);
    return it == table_.end() ? 0 : it->second.count;
  }

  /// Keys with guaranteed (count - overestimate) >= threshold, then the
  /// rest above threshold sorted by descending count.
  std::vector<Item> candidates(std::uint64_t threshold = 0) const {
    std::vector<Item> out;
    for (const auto& [k, item] : table_) {
      if (item.count >= threshold) out.push_back(item);
    }
    std::sort(out.begin(), out.end(), [](const Item& a, const Item& b) {
      if (a.count != b.count) return a.count > b.count;
      return a.key < b.key;
    });
    return out;
  }

  std::size_t approx_bytes() const {
    return table_.size() * (sizeof(Key) + sizeof(Item) + 16);
  }

 private:
  std::size_t capacity_;
  std::uint64_t observed_ = 0;
  std::unordered_map<Key, Item> table_;
};

}  // namespace amri::stats
