// Hierarchical heavy hitters over the search-benefit lattice, modelled after
// Cormode et al. (VLDB 2003 / SIGMOD 2004). This is the algorithmic core of
// CDIA: instead of *deleting* infrequent access-pattern statistics (lossy
// counting), the count of an infrequent leaf is *combined into a parent* —
// an access pattern with one fewer attribute that provides search benefit to
// the leaf — so the mass is preserved for index selection.
//
// Two combination policies from the paper (§IV-D2):
//   * kRandom       — pick a parent uniformly at random;
//   * kHighestCount — pick the materialised parent with the largest count
//                     (ties broken deterministically by mask).
//
// Invariant (tested): the sum of all node counts always equals the number of
// observations — compression moves mass, it never discards it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "stats/lattice.hpp"

namespace amri::stats {

enum class CombinePolicy : std::uint8_t {
  kRandom = 0,
  kHighestCount,
};

class HierarchicalHeavyHitter {
 public:
  struct Result {
    AttrMask mask = 0;
    std::uint64_t count = 0;      ///< rolled-up count f*_ap · N
    std::uint64_t max_error = 0;  ///< delta of the surviving node
    double frequency = 0.0;       ///< count / observed
  };

  /// epsilon in (0,1): segment width is ceil(1/epsilon) observations.
  HierarchicalHeavyHitter(AttrMask universe, double epsilon,
                          CombinePolicy policy,
                          std::uint64_t seed = 0x5eedULL);

  const PartialLattice& lattice() const { return lattice_; }
  CombinePolicy policy() const { return policy_; }
  double epsilon() const { return epsilon_; }
  std::uint64_t segment_width() const { return segment_width_; }
  std::uint64_t observed() const { return observed_; }
  std::uint64_t segment_id() const { return observed_ / segment_width_; }
  std::size_t size() const { return lattice_.counts().size(); }

  /// Process one access-pattern observation; runs leaf compression at each
  /// segment boundary.
  void observe(AttrMask mask, std::uint64_t weight = 1);

  /// Segment-boundary compression (public so tests can drive it directly).
  void compress();

  std::uint64_t seed() const { return seed_; }

  /// Inject one retained lattice node without running compression — used
  /// when rebuilding a sketch from merged per-shard snapshots. Call
  /// set_observed() afterwards so frequencies (and the mass-conservation
  /// invariant, when the loaded state was never decayed) hold.
  void load_node(AttrMask mask, std::uint64_t count, std::uint64_t max_error) {
    lattice_.counts().add(mask, count, max_error);
  }

  /// Set the observation total a loaded state was assessed over.
  void set_observed(std::uint64_t n) {
    observed_ = n;
    lattice_.counts().set_total(n);
  }

  /// Final-results rollup: bottom-up, nodes with frequency < theta donate
  /// their count to a parent; survivors are returned sorted by descending
  /// count. Non-destructive (operates on a copy).
  std::vector<Result> results(double theta) const;

  /// Total retained count mass (== observed() by the conservation invariant).
  std::uint64_t total_mass() const;

  std::size_t approx_bytes() const { return lattice_.counts().approx_bytes(); }

  void clear();

  /// Age the lattice: scale all counts and the observation total.
  void scale(double factor) {
    lattice_.counts().scale(factor);
    observed_ =
        static_cast<std::uint64_t>(static_cast<double>(observed_) * factor);
  }

 private:
  /// Choose the parent of `node` to receive its mass. `counts` is the map
  /// being operated on (live table during compress, a copy during results).
  AttrMask choose_parent(AttrMask node, const FrequencyMap& counts,
                         Rng& rng) const;

  PartialLattice lattice_;
  double epsilon_;
  std::uint64_t segment_width_;
  CombinePolicy policy_;
  std::uint64_t observed_ = 0;
  std::uint64_t seed_;
  mutable Rng rng_;
};

}  // namespace amri::stats
