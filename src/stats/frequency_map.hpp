// Exact frequency counting keyed by access-pattern masks. This is the
// "SRIA table" of the paper: a hash table mapping BR(ap) -> count, with an
// optional per-entry max-error field used by the lossy-counting variants.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bitops.hpp"

namespace amri::stats {

/// One statistics entry: observed count plus the Manku–Motwani max error
/// delta recorded when the entry was (re)created mid-stream.
struct FreqEntry {
  std::uint64_t count = 0;
  std::uint64_t max_error = 0;  ///< paper's per-entry delta
};

/// Hash table from access-pattern mask to FreqEntry, with helpers shared by
/// SRIA/CSRIA/DIA/CDIA. Deliberately thin: compression policies live in the
/// assessment module.
class FrequencyMap {
 public:
  using Map = std::unordered_map<AttrMask, FreqEntry>;

  /// Increment `mask` by `by`; creates the entry (max_error = `delta` for a
  /// new entry) if absent. Returns the updated count.
  std::uint64_t add(AttrMask mask, std::uint64_t by = 1,
                    std::uint64_t delta = 0) {
    auto [it, inserted] = map_.try_emplace(mask, FreqEntry{0, delta});
    it->second.count += by;
    total_ += by;
    return it->second.count;
  }

  /// Lookup; nullptr if absent.
  const FreqEntry* find(AttrMask mask) const {
    const auto it = map_.find(mask);
    return it == map_.end() ? nullptr : &it->second;
  }
  FreqEntry* find(AttrMask mask) {
    const auto it = map_.find(mask);
    return it == map_.end() ? nullptr : &it->second;
  }

  /// Remove an entry (count mass is forgotten; total_observed is NOT
  /// reduced — totals track the stream, not the table).
  void erase(AttrMask mask) { map_.erase(mask); }

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  /// Total number of observations ever added (the |A| denominator of f_ap).
  std::uint64_t total_observed() const { return total_; }

  /// Estimated frequency of `mask` (count / total); 0 if absent or empty.
  double frequency(AttrMask mask) const {
    if (total_ == 0) return 0.0;
    const auto* e = find(mask);
    return e == nullptr ? 0.0
                        : static_cast<double>(e->count) /
                              static_cast<double>(total_);
  }

  Map::const_iterator begin() const { return map_.begin(); }
  Map::const_iterator end() const { return map_.end(); }
  Map::iterator begin() { return map_.begin(); }
  Map::iterator end() { return map_.end(); }

  /// Snapshot of (mask, entry) pairs sorted by mask for deterministic
  /// iteration in tests and reports.
  std::vector<std::pair<AttrMask, FreqEntry>> sorted_entries() const;

  /// Logical bytes used, for MemoryTracker accounting.
  std::size_t approx_bytes() const {
    // key + entry + hash-table node overhead (two pointers worth).
    return map_.size() * (sizeof(AttrMask) + sizeof(FreqEntry) + 16);
  }

  void clear() {
    map_.clear();
    total_ = 0;
  }

  /// Reset only the observation denominator (used between assessment
  /// windows when entries should persist but frequencies restart).
  void reset_total() { total_ = 0; }

  /// Directly set the observation total (used when merging snapshots).
  void set_total(std::uint64_t t) { total_ = t; }

  /// Scale every count (and the total) by `factor` in (0, 1); entries
  /// whose count rounds to zero are dropped. max_error scales too so the
  /// lossy-counting invariants keep holding proportionally.
  void scale(double factor) {
    for (auto it = map_.begin(); it != map_.end();) {
      it->second.count = static_cast<std::uint64_t>(
          static_cast<double>(it->second.count) * factor);
      it->second.max_error = static_cast<std::uint64_t>(
          static_cast<double>(it->second.max_error) * factor);
      if (it->second.count == 0) {
        it = map_.erase(it);
      } else {
        ++it;
      }
    }
    total_ = static_cast<std::uint64_t>(static_cast<double>(total_) * factor);
  }

 private:
  Map map_;
  std::uint64_t total_ = 0;
};

}  // namespace amri::stats
