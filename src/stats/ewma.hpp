// Exponentially-weighted moving average, used by routing policies to smooth
// operator selectivity and cost estimates (the "up-to-date system
// statistics" the eddy router consults).
#pragma once

#include <cassert>

namespace amri::stats {

class Ewma {
 public:
  /// alpha in (0, 1]: weight of the newest sample.
  explicit Ewma(double alpha = 0.2) : alpha_(alpha) {
    assert(alpha > 0.0 && alpha <= 1.0);
  }

  void add(double sample) {
    if (!initialized_) {
      value_ = sample;
      initialized_ = true;
    } else {
      value_ += alpha_ * (sample - value_);
    }
    ++samples_;
  }

  bool initialized() const { return initialized_; }
  double value_or(double fallback) const {
    return initialized_ ? value_ : fallback;
  }
  double value() const { return value_or(0.0); }
  unsigned long long samples() const { return samples_; }

  void reset() {
    value_ = 0.0;
    initialized_ = false;
    samples_ = 0;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
  unsigned long long samples_ = 0;
};

}  // namespace amri::stats
