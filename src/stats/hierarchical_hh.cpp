#include "stats/hierarchical_hh.hpp"

#include <algorithm>
#include <cassert>

namespace amri::stats {

HierarchicalHeavyHitter::HierarchicalHeavyHitter(AttrMask universe,
                                                 double epsilon,
                                                 CombinePolicy policy,
                                                 std::uint64_t seed)
    : lattice_(universe), epsilon_(epsilon), policy_(policy), seed_(seed),
      rng_(seed) {
  assert(epsilon > 0.0 && epsilon < 1.0);
  segment_width_ = static_cast<std::uint64_t>(1.0 / epsilon);
  if (static_cast<double>(segment_width_) * epsilon < 1.0) ++segment_width_;
  if (segment_width_ == 0) segment_width_ = 1;
}

void HierarchicalHeavyHitter::observe(AttrMask mask, std::uint64_t weight) {
  assert(is_subset(mask, lattice_.shape().universe()));
  const std::uint64_t sid = segment_id();
  auto& counts = lattice_.counts();
  if (counts.find(mask) == nullptr) {
    counts.add(mask, weight, sid == 0 ? 0 : sid - 1);
  } else {
    counts.add(mask, weight);
  }
  observed_ += weight;
  if (observed_ % segment_width_ == 0) compress();
}

AttrMask HierarchicalHeavyHitter::choose_parent(AttrMask node,
                                                const FrequencyMap& counts,
                                                Rng& rng) const {
  assert(node != 0);  // the lattice top has no parent
  const auto parent_masks = lattice_.shape().parents(node);
  // Prefer materialised parents (the paper adds to an existing parent when
  // one exists and only creates a node otherwise).
  std::vector<AttrMask> existing;
  for (AttrMask p : parent_masks) {
    if (counts.find(p) != nullptr) existing.push_back(p);
  }
  if (!existing.empty()) {
    if (policy_ == CombinePolicy::kRandom) {
      return existing[rng.below(existing.size())];
    }
    // Highest count; deterministic tie-break on the smaller mask.
    std::sort(existing.begin(), existing.end());
    AttrMask best = existing.front();
    std::uint64_t best_count = counts.find(best)->count;
    for (AttrMask p : existing) {
      const std::uint64_t c = counts.find(p)->count;
      if (c > best_count) {
        best = p;
        best_count = c;
      }
    }
    return best;
  }
  // No materialised parent: create one.
  if (policy_ == CombinePolicy::kRandom) {
    return parent_masks[rng.below(parent_masks.size())];
  }
  return *std::min_element(parent_masks.begin(), parent_masks.end());
}

void HierarchicalHeavyHitter::compress() {
  const std::uint64_t sid = segment_id();
  auto& counts = lattice_.counts();
  // Snapshot the leaves first: merging a leaf into a parent can turn other
  // nodes into non-leaves, so we evaluate leaf status against the state at
  // the start of the pass, deepest level first (paper processes leaf nodes).
  const std::vector<AttrMask> leaf_masks = lattice_.leaves();
  for (const AttrMask leaf : leaf_masks) {
    if (leaf == 0) continue;  // top of lattice: no parent to merge into
    const FreqEntry* entry = counts.find(leaf);
    if (entry == nullptr) continue;  // already merged away this pass
    if (entry->count + entry->max_error > sid) continue;  // still frequent
    const std::uint64_t mass = entry->count;
    const AttrMask parent = choose_parent(leaf, counts, rng_);
    if (counts.find(parent) != nullptr) {
      counts.add(parent, mass);
    } else {
      counts.add(parent, mass, sid == 0 ? 0 : sid - 1);
    }
    // add() bumped total_observed; rebalance since this is moved mass, not
    // a new observation.
    counts.set_total(counts.total_observed() - mass);
    counts.erase(leaf);
  }
}

std::vector<HierarchicalHeavyHitter::Result>
HierarchicalHeavyHitter::results(double theta) const {
  // Operate on a copy so assessment can continue afterwards.
  FrequencyMap work = lattice_.counts();
  Rng rng(seed_ ^ 0xf00dULL);  // deterministic per-instance rollup
  const double n = static_cast<double>(observed_);
  std::vector<Result> out;
  if (observed_ == 0) return out;

  // Bottom-up over materialised nodes. Recompute the order lazily because
  // rollups can create new (parent) nodes that themselves need processing;
  // a node at level L only ever donates to level L-1, so processing levels
  // from deepest to shallowest visits every node exactly once.
  const int max_level = lattice_.shape().num_attrs();
  for (int lvl = max_level; lvl >= 0; --lvl) {
    // Collect nodes at this level (deterministic order).
    std::vector<AttrMask> level_nodes;
    for (const auto& [mask, entry] : work) {
      (void)entry;
      if (Lattice::level(mask) == lvl) level_nodes.push_back(mask);
    }
    std::sort(level_nodes.begin(), level_nodes.end());
    for (const AttrMask mask : level_nodes) {
      const FreqEntry* entry = work.find(mask);
      if (entry == nullptr) continue;
      const double freq = static_cast<double>(entry->count) / n;
      if (freq >= theta || mask == 0) {
        if (freq >= theta) {
          out.push_back(Result{mask, entry->count, entry->max_error, freq});
        }
        continue;  // lattice top below theta simply drops out
      }
      const std::uint64_t mass = entry->count;
      const std::uint64_t err = entry->max_error;
      const AttrMask parent = choose_parent(mask, work, rng);
      if (work.find(parent) != nullptr) {
        work.add(parent, mass);
      } else {
        work.add(parent, mass, err);
      }
      work.set_total(work.total_observed() - mass);
      work.erase(mask);
    }
  }
  std::sort(out.begin(), out.end(), [](const Result& a, const Result& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.mask < b.mask;
  });
  return out;
}

std::uint64_t HierarchicalHeavyHitter::total_mass() const {
  std::uint64_t sum = 0;
  for (const auto& [mask, entry] : lattice_.counts()) {
    (void)mask;
    sum += entry.count;
  }
  return sum;
}

void HierarchicalHeavyHitter::clear() {
  lattice_.counts().clear();
  observed_ = 0;
}

}  // namespace amri::stats
