#include "stats/frequency_map.hpp"

#include <algorithm>

namespace amri::stats {

std::vector<std::pair<AttrMask, FreqEntry>> FrequencyMap::sorted_entries()
    const {
  std::vector<std::pair<AttrMask, FreqEntry>> out(map_.begin(), map_.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace amri::stats
