// Lossy Counting (Manku & Motwani, VLDB 2002) — the epsilon-approximate
// heavy-hitter algorithm CSRIA is modelled after.
//
// Stream positions are processed in segments ("buckets" in the original
// paper) of width ceil(1/epsilon). Each entry stores its observed count and
// the maximum undercount delta = s_id - 1 recorded at (re)insertion. At each
// segment boundary entries with count + delta <= s_id are evicted. The
// classic guarantees hold:
//   * no false negatives: every key with true frequency >= theta is output
//     when querying with threshold (theta - epsilon) * N;
//   * estimated count undershoots the true count by at most epsilon * N;
//   * at most (1/epsilon) * log(epsilon * N) entries are retained.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/assertions.hpp"

namespace amri::stats {

template <typename Key>
class LossyCounting {
 public:
  struct Item {
    Key key{};
    std::uint64_t count = 0;      ///< observed occurrences since insertion
    std::uint64_t max_error = 0;  ///< possible undercount (delta)
  };

  /// epsilon in (0, 1). Segment width is ceil(1/epsilon).
  explicit LossyCounting(double epsilon) : epsilon_(epsilon) {
    assert(epsilon > 0.0 && epsilon < 1.0);
    segment_width_ = static_cast<std::uint64_t>(1.0 / epsilon);
    if (segment_width_ * epsilon < 1.0) ++segment_width_;  // ceil
    if (segment_width_ == 0) segment_width_ = 1;
  }

  double epsilon() const { return epsilon_; }
  std::uint64_t segment_width() const { return segment_width_; }

  /// Current segment id: floor(epsilon * N) in the paper, equivalently
  /// N / segment_width for integral segment widths.
  std::uint64_t segment_id() const { return observed_ / segment_width_; }

  std::uint64_t observed() const { return observed_; }
  std::size_t size() const { return table_.size(); }

  /// Process one stream element (a weighted element counts as `weight`
  /// unit observations). Runs the boundary compression pass automatically
  /// whenever the update crosses into a new segment — including a weighted
  /// update that jumps *past* one or more boundaries, which the previous
  /// `observed_ % segment_width_ == 0` trigger silently skipped, letting
  /// the table grow past the Manku–Motwani space bound.
  void observe(const Key& key, std::uint64_t weight = 1) {
    auto [it, inserted] = table_.try_emplace(key, Item{key, 0, 0});
    if (inserted) {
      // delta = current segment id - 1 == floor(eps*N), clamped at 0.
      it->second.max_error = segment_id() == 0 ? 0 : segment_id();
      // Manku-Motwani uses b_current - 1 where b_current = segment_id + 1.
      // segment_id() here is already b_current - 1 before this element.
    }
    const std::uint64_t segment_before = segment_id();
    it->second.count += weight;
    observed_ += weight;
    if (segment_id() != segment_before) {
      compress();
      AMRI_CHECK_INVARIANTS(*this);
    }
  }

  /// Segment-boundary eviction: drop entries with count + delta <= s_id.
  void compress() {
    const std::uint64_t sid = segment_id();
    for (auto it = table_.begin(); it != table_.end();) {
      if (it->second.count + it->second.max_error <= sid) {
        it = table_.erase(it);
      } else {
        ++it;
      }
    }
#ifdef AMRI_ASSERTIONS
    // Eviction completeness: everything the Manku–Motwani rule says to drop
    // at this boundary is gone, so the per-entry undercount bound holds.
    for (const auto& [k, item] : table_) {
      AMRI_ASSERT(item.count + item.max_error > sid,
                  "lossy-counting entry survived its eviction bound");
    }
#endif
  }

  /// Always-true δ-bound consistency (the Manku–Motwani guarantees CSRIA's
  /// correctness argument rests on): every retained entry has a live count,
  /// its recorded max undercount never exceeds floor(epsilon * N), and no
  /// count exceeds the stream length. Always compiled; hot paths invoke it
  /// only under AMRI_ASSERTIONS (after each segment-boundary compression).
  void check_invariants() const {
    const std::uint64_t sid = segment_id();
    for (const auto& [k, item] : table_) {
      AMRI_CHECK(item.count >= 1, "retained entry with zero count");
      AMRI_CHECK(item.max_error <= sid,
                 "delta exceeds floor(epsilon * N): undercount bound broken");
      AMRI_CHECK(item.count <= observed_,
                 "entry count exceeds total observations");
    }
  }

  /// All keys whose estimated frequency could reach `theta`:
  /// count >= (theta - epsilon) * N. Sorted by descending count.
  std::vector<Item> results(double theta) const {
    std::vector<Item> out;
    const double bar = (theta - epsilon_) * static_cast<double>(observed_);
    for (const auto& [k, item] : table_) {
      if (static_cast<double>(item.count) >= bar) out.push_back(item);
    }
    std::sort(out.begin(), out.end(), [](const Item& a, const Item& b) {
      if (a.count != b.count) return a.count > b.count;
      return a.key < b.key;
    });
    return out;
  }

  /// Estimated count for a key (0 if evicted/absent). Never overshoots the
  /// true count; undershoots by at most epsilon * N.
  std::uint64_t estimate(const Key& key) const {
    const auto it = table_.find(key);
    return it == table_.end() ? 0 : it->second.count;
  }

  std::size_t approx_bytes() const {
    return table_.size() * (sizeof(Key) + sizeof(Item) + 16);
  }

  void clear() {
    table_.clear();
    observed_ = 0;
  }

  /// Age the sketch: scale every count/error and the observation total by
  /// `factor` in (0, 1). Frequencies are preserved; zeroed entries drop.
  void scale(double factor) {
    for (auto it = table_.begin(); it != table_.end();) {
      it->second.count = static_cast<std::uint64_t>(
          static_cast<double>(it->second.count) * factor);
      it->second.max_error = static_cast<std::uint64_t>(
          static_cast<double>(it->second.max_error) * factor);
      if (it->second.count == 0) {
        it = table_.erase(it);
      } else {
        ++it;
      }
    }
    observed_ =
        static_cast<std::uint64_t>(static_cast<double>(observed_) * factor);
  }

 private:
  double epsilon_;
  std::uint64_t segment_width_ = 1;
  std::uint64_t observed_ = 0;
  std::unordered_map<Key, Item> table_;
};

}  // namespace amri::stats
