// Misra–Gries "Finding Repeated Elements" (1982) — the first deterministic
// heavy-hitter algorithm, cited by the paper as [25]. Kept as a baseline for
// the heavy-hitter micro-benchmarks.
//
// With k counters, every key whose true frequency exceeds N/(k+1) survives,
// and estimates undershoot by at most N/(k+1).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace amri::stats {

template <typename Key>
class MisraGries {
 public:
  struct Item {
    Key key{};
    std::uint64_t count = 0;
  };

  explicit MisraGries(std::size_t counters) : capacity_(counters) {
    assert(counters > 0);
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return table_.size(); }
  std::uint64_t observed() const { return observed_; }

  void observe(const Key& key) {
    ++observed_;
    const auto it = table_.find(key);
    if (it != table_.end()) {
      ++it->second;
      return;
    }
    if (table_.size() < capacity_) {
      table_.emplace(key, 1);
      return;
    }
    // Decrement-all step; erase zeroed counters.
    for (auto cur = table_.begin(); cur != table_.end();) {
      if (--cur->second == 0) {
        cur = table_.erase(cur);
      } else {
        ++cur;
      }
    }
  }

  /// Lower-bound estimate of a key's count (0 if not tracked).
  std::uint64_t estimate(const Key& key) const {
    const auto it = table_.find(key);
    return it == table_.end() ? 0 : it->second;
  }

  /// Surviving candidates sorted by descending estimate.
  std::vector<Item> candidates() const {
    std::vector<Item> out;
    out.reserve(table_.size());
    for (const auto& [k, c] : table_) out.push_back(Item{k, c});
    std::sort(out.begin(), out.end(), [](const Item& a, const Item& b) {
      if (a.count != b.count) return a.count > b.count;
      return a.key < b.key;
    });
    return out;
  }

  std::size_t approx_bytes() const {
    return table_.size() * (sizeof(Key) + sizeof(std::uint64_t) + 16);
  }

 private:
  std::size_t capacity_;
  std::uint64_t observed_ = 0;
  std::unordered_map<Key, std::uint64_t> table_;
};

}  // namespace amri::stats
