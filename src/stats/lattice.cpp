#include "stats/lattice.hpp"

#include <algorithm>

namespace amri::stats {

std::vector<AttrMask> Lattice::all_nodes_top_down() const {
  std::vector<AttrMask> out;
  out.reserve(node_count());
  for_each_subset(universe_, [&](AttrMask m) { out.push_back(m); });
  std::sort(out.begin(), out.end(), [](AttrMask a, AttrMask b) {
    const int la = level(a);
    const int lb = level(b);
    if (la != lb) return la < lb;
    return a < b;
  });
  return out;
}

std::vector<AttrMask> PartialLattice::leaves() const {
  std::vector<AttrMask> out;
  for (const auto& [mask, entry] : counts_) {
    (void)entry;
    if (is_leaf(mask)) out.push_back(mask);
  }
  std::sort(out.begin(), out.end(), [](AttrMask a, AttrMask b) {
    const int la = Lattice::level(a);
    const int lb = Lattice::level(b);
    if (la != lb) return la > lb;  // deepest first
    return a < b;
  });
  return out;
}

std::vector<AttrMask> PartialLattice::nodes_bottom_up() const {
  std::vector<AttrMask> out;
  out.reserve(counts_.size());
  for (const auto& [mask, entry] : counts_) {
    (void)entry;
    out.push_back(mask);
  }
  std::sort(out.begin(), out.end(), [](AttrMask a, AttrMask b) {
    const int la = Lattice::level(a);
    const int lb = Lattice::level(b);
    if (la != lb) return la > lb;
    return a < b;
  });
  return out;
}

}  // namespace amri::stats
