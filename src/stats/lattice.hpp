// The search-benefit lattice over access patterns (paper §IV-D, Figure 4).
//
// Nodes are attribute masks. The top of the lattice is the empty mask
// (<*,*,...,*>, a full scan); each level below adds one attribute; the
// bottom is the full mask. An access pattern ap1 "provides search benefit"
// to ap2 (ap1 ≺ ap2) iff attrs(ap1) ⊆ attrs(ap2): an index built on a
// subset of the bound attributes narrows the probe to a single bucket.
//
// The lattice structure is purely combinatorial, so this header provides
// static navigation helpers plus a PartialLattice container for the sparse
// runtime lattices DIA/CDIA build top-down.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitops.hpp"
#include "stats/frequency_map.hpp"

namespace amri::stats {

/// Static navigation over the lattice of subsets of `universe`.
class Lattice {
 public:
  /// `universe` is the full mask of join attributes for the state.
  explicit Lattice(AttrMask universe) : universe_(universe) {}

  AttrMask universe() const { return universe_; }
  int num_attrs() const { return popcount(universe_); }

  /// Lattice level of a node = number of attributes bound (top is level 0).
  static int level(AttrMask node) { return popcount(node); }

  /// Number of lattice levels, counting the top (h in the paper's bound).
  int height() const { return num_attrs() + 1; }

  /// True iff `a` provides search benefit to `b` (a ≺ b), i.e. a ⊆ b.
  /// The relation is reflexive here; use `a != b` for the strict version.
  static bool benefits(AttrMask a, AttrMask b) { return is_subset(a, b); }

  /// Direct parents of `node`: masks with exactly one attribute removed.
  /// The top (empty mask) has no parents.
  std::vector<AttrMask> parents(AttrMask node) const {
    std::vector<AttrMask> out;
    out.reserve(static_cast<std::size_t>(popcount(node)));
    for_each_bit(node, [&](unsigned i) { out.push_back(node & ~(AttrMask{1} << i)); });
    return out;
  }

  /// Direct children of `node`: masks with one universe attribute added.
  std::vector<AttrMask> children(AttrMask node) const {
    std::vector<AttrMask> out;
    const AttrMask missing = universe_ & ~node;
    out.reserve(static_cast<std::size_t>(popcount(missing)));
    for_each_bit(missing,
                 [&](unsigned i) { out.push_back(node | (AttrMask{1} << i)); });
    return out;
  }

  /// All nodes of the complete lattice, top-down (level order). Exponential
  /// in the universe size; intended for tests and small-N enumeration.
  std::vector<AttrMask> all_nodes_top_down() const;

  /// Total node count of the complete lattice: 2^|universe|.
  std::uint64_t node_count() const {
    return std::uint64_t{1} << num_attrs();
  }

 private:
  AttrMask universe_;
};

/// A sparse, counted lattice: the nodes materialised at runtime plus their
/// statistics, stored in a FrequencyMap (the paper stores DIA nodes in the
/// SRIA table). Provides the leaf query compression needs.
class PartialLattice {
 public:
  explicit PartialLattice(AttrMask universe) : lattice_(universe) {}

  const Lattice& shape() const { return lattice_; }
  FrequencyMap& counts() { return counts_; }
  const FrequencyMap& counts() const { return counts_; }

  /// A node is a leaf iff no *other* materialised node is a strict superset
  /// of it (nothing below it in the lattice carries a count).
  bool is_leaf(AttrMask node) const {
    for (const auto& [mask, entry] : counts_) {
      (void)entry;
      if (mask != node && is_subset(node, mask)) return false;
    }
    return true;
  }

  /// All current leaves, sorted bottom-up (deepest level first, then by
  /// mask) — the deterministic order compression processes them in.
  std::vector<AttrMask> leaves() const;

  /// All materialised nodes sorted bottom-up (used by final-results rollup).
  std::vector<AttrMask> nodes_bottom_up() const;

 private:
  Lattice lattice_;
  FrequencyMap counts_;
};

}  // namespace amri::stats
