// The paper's §I-A running example: a package-tracking DSMS whose sensor
// state carries priority code (A1), package id (A2) and location id (A3).
//
// We contrast the multi-hash access-module design (indices on A1, A1&A2,
// A2&A3 — paper Figure 1) with the single bit-address index (5 bits for
// A1, 2 for A2, 3 for A3 — paper Figure 3) on the paper's two search
// requests:
//   sr1: priority = 2012 AND location = 47   (served by the A1 module)
//   sr2: location = 47                        (no module: full scan!)
#include <iostream>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "index/access_module_set.hpp"
#include "index/bit_address_index.hpp"

using namespace amri;
using namespace amri::index;

namespace {

struct Fleet {
  std::vector<std::unique_ptr<Tuple>> sensors;
};

Fleet make_fleet(std::size_t n) {
  Fleet fleet;
  Rng rng(2012);
  for (std::size_t i = 0; i < n; ++i) {
    auto t = std::make_unique<Tuple>();
    t->seq = i;
    t->values = {
        static_cast<Value>(2000 + rng.below(32)),  // A1 priority code
        static_cast<Value>(rng.below(4000)),       // A2 package id
        static_cast<Value>(rng.below(64)),         // A3 location id
    };
    fleet.sensors.push_back(std::move(t));
  }
  return fleet;
}

void report(const char* title, const ProbeStats& stats) {
  std::cout << "  " << title << ": " << stats.matches << " packages, "
            << stats.buckets_visited << " bucket(s) visited, "
            << stats.tuples_compared << " tuples compared\n";
}

}  // namespace

int main() {
  const JoinAttributeSet jas({0, 1, 2});  // A1, A2, A3
  const auto fleet = make_fleet(20000);

  // --- Paper Figure 1: hash indices on A1, A1&A2, A2&A3.
  CostMeter hash_meter;
  MemoryTracker hash_mem;
  AccessModuleSet modules(jas, {0b001, 0b011, 0b110}, &hash_meter, &hash_mem);
  for (const auto& t : fleet.sensors) modules.insert(t.get());

  // --- Paper Figure 3: one bit-address index, IC = [A1:5 A2:2 A3:3].
  CostMeter bai_meter;
  MemoryTracker bai_mem;
  BitAddressIndex bai(jas, IndexConfig({5, 2, 3}), BitMapper::hashing(3),
                      &bai_meter, &bai_mem);
  for (const auto& t : fleet.sensors) bai.insert(t.get());

  std::cout << "ingested " << fleet.sensors.size() << " sensor readings\n"
            << "  access modules: " << hash_meter.hashes()
            << " hash computations, "
            << hash_mem.category(MemCategory::kIndexStructure) / 1024
            << " KiB of index structure\n"
            << "  bit-address:    " << bai_meter.hashes()
            << " hash computations, "
            << bai_mem.category(MemCategory::kIndexStructure) / 1024
            << " KiB of index structure\n\n";

  // sr1: priority = 2012 AND location = 47 (access pattern <A1,*,A3>).
  ProbeKey sr1;
  sr1.mask = 0b101;
  sr1.values = {2012, 0, 47};
  std::vector<const Tuple*> out;

  std::cout << "sr1 = {priority=2012, location=47}  (pattern <A1,*,A3>)\n";
  const HashIndex* chosen = modules.module_for(sr1.mask);
  std::cout << "  most suitable module: "
            << (chosen ? chosen->name() : std::string("NONE -> full scan"))
            << "\n";
  out.clear();
  report("access modules", modules.probe(sr1, out));
  out.clear();
  report("bit-address   ", bai.probe(sr1, out));

  // sr2: location = 47 only (pattern <*,*,A3>): no module serves it.
  ProbeKey sr2;
  sr2.mask = 0b100;
  sr2.values = {0, 0, 47};
  std::cout << "\nsr2 = {location=47}  (pattern <*,*,A3>)\n";
  std::cout << "  most suitable module: "
            << (modules.module_for(sr2.mask) != nullptr
                    ? "found"
                    : "NONE -> full scan of the state")
            << "\n";
  out.clear();
  report("access modules", modules.probe(sr2, out));
  out.clear();
  report("bit-address   ", bai.probe(sr2, out));

  std::cout << "\nThe bit-address index answers sr2 by scanning only the "
               "2^(5+2) = 128\nbucket combinations matching A3's bits — no "
               "new index, no extra\nper-tuple key links (the paper's case "
               "for AMRI).\n";
  return 0;
}
