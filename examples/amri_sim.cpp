// amri_sim — run an SPJ query (the paper's Figure 2 template) over
// synthetic drifting streams with the full AMRI stack, from the command
// line.
//
//   ./amri_sim                                   # default demo query
//   ./amri_sim 'query=SELECT COUNT(*) FROM Sensors S, Gateways G
//               WHERE S.region = G.region WINDOW 20' sim_seconds=60
//
// Knobs (key=value): sim_seconds, rate, seed, backend=amri|bitmap|modules|
// scan, bits, epsilon, theta, shards, batch_size, decision_reuse, engine.
// `--shards N` partitions each state's window and index into N parallel
// shards (bit-address backends). `--batch-size N` moves up to N arrivals
// through the pipeline together (vectorized probe path). `--decision-reuse
// N` reuses one routing decision per done-mask N times (deprecated alias:
// `--routing-batch-size`). `--engine virtual|wall` picks the cost-metered
// pipeline (default) or the wall-clock hot path (cross-run batching,
// prefetching probes, drain/route overlap); `--wall-overlap 0` and
// `--probe-prefetch 0` disable the wall-mode optimisations individually.
// `--trace-out run.jsonl` attaches telemetry and
// writes the full run trace (events + final metrics) as JSON lines.
// `--trace-sample N` additionally traces every Nth arrival end-to-end as
// span events; `--profile` turns on the wall-clock phase profiler and
// prints the per-phase table after the run; `--event-capacity N` sizes
// the trace ring (oldest events drop past it).
// `--scenario <name>` swaps the parsed query for a named adversarial
// workload (src/workload/adversarial.hpp): rotating_hot_set,
// bursty_diurnal, correlated_join, out_of_order, many_way, oom_cliff,
// multi_query. `--queries N` runs N overlapping SPJ templates through ONE
// set of shared per-stream states (MultiQueryExecutor over the
// multi_query scenario, implied when no scenario is named): the shared
// index serves the union workload, the tuner merges per-query
// assessments, and the report adds a per-query output table. All engine
// knobs (`--shards`, `--batch-size`, `--engine`, `--guardrails`, …) apply
// unchanged in multi-query mode.
// `--guardrails 1` enables the tuner's production guardrails;
// `--tuner-deadband`, `--tuner-hysteresis-epochs`, `--tuner-horizon`,
// `--tuner-budget-time-us` and `--tuner-budget-mem-bytes` tune them (see
// docs/architecture.md, "Tuner guardrails").
#include <iostream>
#include <memory>
#include <optional>

#include "common/config.hpp"
#include "common/table_printer.hpp"
#include "engine/aggregate.hpp"
#include "engine/executor.hpp"
#include "engine/multi_query.hpp"
#include "engine/query_parser.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/adversarial.hpp"
#include "workload/synthetic_generator.hpp"

using namespace amri;

namespace {

/// Generates arrivals for the *parsed* query's streams: each catalog
/// stream referenced by the query emits tuples at `rate`, join attributes
/// drawn from per-predicate domains.
class QuerySource final : public engine::TupleSource {
 public:
  QuerySource(const engine::QuerySpec& query, double rate, TimeMicros end,
              std::uint64_t seed)
      : query_(query),
        schedule_(workload::PhaseSchedule::rotating(
            std::max<std::size_t>(query.predicates().size(), 1), 8,
            end > 0 ? std::max<TimeMicros>(end / 8, 1) : seconds_to_micros(30),
            12, 48)) {
    workload::GeneratorOptions gopts;
    gopts.rates_per_sec.assign(query.num_streams(), rate);
    gopts.end = end;
    gopts.seed = seed;
    gen_ = std::make_unique<workload::SyntheticGenerator>(query_, schedule_,
                                                          gopts);
  }

  std::optional<Tuple> next() override { return gen_->next(); }

 private:
  const engine::QuerySpec& query_;
  workload::PhaseSchedule schedule_;
  std::unique_ptr<workload::SyntheticGenerator> gen_;
};

engine::IndexBackend backend_from(const std::string& name) {
  if (name == "amri") return engine::IndexBackend::kAmri;
  if (name == "bitmap") return engine::IndexBackend::kStaticBitmap;
  if (name == "modules") return engine::IndexBackend::kAccessModules;
  if (name == "scan") return engine::IndexBackend::kScan;
  throw std::invalid_argument("unknown backend '" + name +
                              "' (amri|bitmap|modules|scan)");
}

/// `--guardrails 1` plus the `--tuner-*` knobs → the tuner's guardrail
/// options. Unset (the default) keeps the legacy always-migrate rule.
void apply_guardrail_flags(const Config& cfg, tuner::TunerOptions& topts) {
  if (!cfg.bool_or("guardrails", false)) return;
  tuner::GuardrailOptions g;
  g.enabled = true;
  g.benefit_deadband = cfg.double_or("tuner_deadband", g.benefit_deadband);
  g.min_epochs_between_migrations = cfg.size_or(
      "tuner_hysteresis_epochs", g.min_epochs_between_migrations);
  g.amortize_horizon_units =
      cfg.double_or("tuner_horizon", g.amortize_horizon_units);
  g.epoch_time_budget_us =
      cfg.double_or("tuner_budget_time_us", g.epoch_time_budget_us);
  g.burst_epochs = cfg.double_or("tuner_budget_burst_epochs", g.burst_epochs);
  if (cfg.get_string("tuner_budget_mem_bytes").has_value()) {
    g.state_memory_budget_bytes = cfg.size_or("tuner_budget_mem_bytes", 0);
  }
  topts.guardrails = g;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const double rate = cfg.double_or("rate", 80.0);
  const double sim_seconds = cfg.double_or("sim_seconds", 60.0);
  const std::size_t num_queries =
      std::max<std::size_t>(cfg.size_or("queries", 1), 1);

  // `--scenario <name>` bypasses the query parser: the adversarial
  // library supplies the query, the drift schedule, and the source.
  // `--queries N` (N > 1) implies the multi_query scenario — the only
  // bundle that carries several templates over one stream set.
  std::unique_ptr<workload::AdversarialScenario> scenario;
  std::optional<engine::ParsedQuery> maybe_parsed;
  std::string run_label;
  std::optional<std::string> scenario_name = cfg.get_string("scenario");
  if (num_queries > 1) {
    if (scenario_name.has_value() && *scenario_name != "multi_query") {
      std::cerr << "--queries " << num_queries
                << " requires the multi_query scenario (got '"
                << *scenario_name << "')\n";
      return 1;
    }
    scenario_name = "multi_query";
  }
  if (scenario_name.has_value()) {
    workload::AdversarialOptions aopts;
    aopts.rate_per_sec = rate;
    aopts.seed = static_cast<std::uint64_t>(cfg.int_or("seed", 1));
    aopts.generate_seconds = sim_seconds;
    aopts.rotate_seconds =
        cfg.double_or("rotate_seconds", aopts.rotate_seconds);
    aopts.zipf_exponent = cfg.double_or("zipf", aopts.zipf_exponent);
    aopts.num_queries = num_queries > 1 ? num_queries : aopts.num_queries;
    try {
      scenario = workload::AdversarialScenario::make(*scenario_name, aopts);
    } catch (const std::invalid_argument& e) {
      std::cerr << e.what() << "; known scenarios:";
      for (const auto& n : workload::AdversarialScenario::names()) {
        std::cerr << " " << n;
      }
      std::cerr << "\n";
      return 1;
    }
    run_label = "scenario " + scenario->name();
  } else {
    const std::string query_text = cfg.string_or(
        "query",
        "SELECT COUNT(*) FROM Sensors S, Gateways G, Alerts A "
        "WHERE S.device = G.device AND G.zone = A.zone AND S.battery >= 10 "
        "WINDOW 20");

    // Catalog of available streams for the demo.
    const std::vector<Schema> catalog = {
        Schema("Sensors", {"device", "battery", "reading"}),
        Schema("Gateways", {"device", "zone", "load"}),
        Schema("Alerts", {"zone", "severity"}),
    };

    try {
      maybe_parsed = engine::parse_query(query_text, catalog);
    } catch (const std::invalid_argument& e) {
      std::cerr << e.what() << "\n";
      return 1;
    }
    run_label = query_text;
  }
  const engine::QuerySpec& query =
      scenario != nullptr ? scenario->query() : maybe_parsed->query;

  engine::ExecutorOptions opts = scenario != nullptr
                                     ? scenario->executor_options()
                                     : engine::ExecutorOptions{};
  opts.duration = seconds_to_micros(sim_seconds);
  opts.sample_every = seconds_to_micros(sim_seconds / 6);
  opts.stem.backend =
      backend_from(cfg.string_or("backend", "amri"));
  const std::size_t n_attrs = query.layout(0).jas.size();
  const int bits = static_cast<int>(cfg.int_or("bits", 8));
  std::vector<std::uint8_t> alloc(std::max<std::size_t>(n_attrs, 1), 0);
  for (int b = 0; b < bits; ++b) {
    ++alloc[static_cast<std::size_t>(b) % alloc.size()];
  }
  opts.stem.initial_config = index::IndexConfig(alloc);
  tuner::TunerOptions topts;
  topts.assessor_params.epsilon = cfg.double_or("epsilon", 0.05);
  topts.theta = cfg.double_or("theta", 0.1);
  topts.reassess_every = cfg.size_or("reassess_every", 2000);
  topts.optimizer.bit_budget = bits;
  apply_guardrail_flags(cfg, topts);
  opts.stem.amri_tuner = topts;
  opts.memory_budget = cfg.size_or("memory_budget", opts.memory_budget);
  opts.stem.shards = std::max<std::size_t>(cfg.size_or("shards", 1), 1);
  opts.batch_size = std::max<std::size_t>(cfg.size_or("batch_size", 1), 1);
  const std::string engine_name = cfg.string_or("engine", "virtual");
  if (engine_name == "wall") {
    opts.engine = engine::EngineMode::kWall;
  } else if (engine_name != "virtual") {
    std::cerr << "unknown engine '" << engine_name << "' (virtual|wall)\n";
    return 1;
  }
  opts.wall_overlap = cfg.bool_or("wall_overlap", true);
  opts.wall_probe_prefetch = cfg.bool_or("probe_prefetch", true);
  // `routing_batch_size` is the knob's pre-rename name, kept as a
  // deprecated alias; `decision_reuse` wins when both are given.
  opts.eddy.decision_reuse = std::max<std::size_t>(
      cfg.size_or("decision_reuse", cfg.size_or("routing_batch_size", 1)), 1);
  if (scenario == nullptr) {
    opts.model_params.lambda_d = rate;
    opts.model_params.lambda_r = rate * query.num_streams();
    opts.model_params.window_units = micros_to_seconds(query.window());
  }
  opts.collect_rows = maybe_parsed.has_value() && !maybe_parsed->agg;

  // Aggregate queries stream every result through an AggregateSink.
  std::optional<engine::AggregateSink> agg_sink;
  if (maybe_parsed.has_value() && maybe_parsed->agg) {
    const engine::ParsedQuery& parsed = *maybe_parsed;
    agg_sink.emplace(*parsed.agg,
                     parsed.agg_column.value_or(engine::OutputColumn{0, 0}),
                     parsed.group_by);
    opts.on_result = [&agg_sink](const engine::JoinResult& r) {
      agg_sink->consume(r);
    };
  }

  // Telemetry attaches only when a trace, span sampling, or profiling is
  // requested: the default run carries no instrumentation cost beyond
  // null-pointer checks.
  const std::optional<std::string> trace_out = cfg.get_string("trace_out");
  const std::size_t trace_sample = cfg.size_or("trace_sample", 0);
  const bool profile = cfg.bool_or("profile", false);
  std::optional<telemetry::Telemetry> telemetry;
  if (trace_out.has_value() || trace_sample > 0 || profile) {
    telemetry::TelemetryOptions tel_opts;
    tel_opts.event_capacity = cfg.size_or("event_capacity", 8192);
    tel_opts.enable_profiler = profile;
    telemetry.emplace(tel_opts);
    opts.telemetry = &*telemetry;
    opts.trace_sample = trace_sample;
  }

  std::unique_ptr<engine::TupleSource> source;
  if (scenario != nullptr) {
    source = scenario->make_source();
  } else {
    source = std::make_unique<QuerySource>(
        query, rate, seconds_to_micros(sim_seconds),
        static_cast<std::uint64_t>(cfg.int_or("seed", 1)));
  }

  std::cout << "running: " << run_label;
  if (num_queries > 1) std::cout << " (" << num_queries << " queries)";
  std::cout << "\n\n";

  // The executors outlive the whole report tail: telemetry keeps a pointer
  // to the executor-owned virtual clock (trace export stamps the write
  // time), so destroying the executor before write_trace_file would
  // dangle it.
  engine::RunResult result;
  std::vector<std::uint64_t> per_query_outputs;
  std::optional<engine::Executor> executor;
  std::optional<engine::MultiQueryExecutor> mq_executor;
  if (num_queries > 1) {
    mq_executor.emplace(scenario->queries(), opts);
    auto mr = mq_executor->run(*source);
    result = std::move(mr.combined);
    per_query_outputs = std::move(mr.per_query_outputs);
  } else {
    executor.emplace(query, opts);
    result = executor->run(*source);
  }

  if (num_queries > 1) {
    // Per-query outputs from the shared-state run: one row per template,
    // with its join predicates for orientation.
    TablePrinter query_table({"query", "join", "outputs"});
    for (std::size_t qi = 0; qi < per_query_outputs.size(); ++qi) {
      const engine::QuerySpec& q = scenario->queries()[qi];
      std::string join;
      for (const auto& p : q.predicates()) {
        if (!join.empty()) join += " AND ";
        join += std::string(q.schema(p.left_stream).stream_name()) + "." +
                std::string(q.schema(p.left_stream).attr_name(p.left_attr)) +
                "=" +
                std::string(q.schema(p.right_stream).stream_name()) + "." +
                std::string(
                    q.schema(p.right_stream).attr_name(p.right_attr));
      }
      query_table.add_row({"q" + std::to_string(qi), join,
                           std::to_string(per_query_outputs[qi])});
    }
    std::cout << "per-query outputs (" << result.outputs << " total):\n";
    query_table.print(std::cout);
    std::cout << "\n";
  }

  if (agg_sink.has_value()) {
    const engine::ParsedQuery& parsed = *maybe_parsed;
    if (parsed.group_by) {
      std::cout << engine::agg_func_name(*parsed.agg) << " by group (top "
                << std::min<std::size_t>(agg_sink->group_count(), 10)
                << " of " << agg_sink->group_count() << "):\n";
      std::size_t shown = 0;
      for (const auto& [key, st] : agg_sink->groups()) {
        if (++shown > 10) break;
        std::cout << "  " << key << " -> " << st.value(*parsed.agg) << "\n";
      }
    } else {
      std::cout << engine::agg_func_name(*parsed.agg) << " = "
                << agg_sink->total() << "\n";
    }
  } else if (opts.collect_rows) {
    std::cout << "first " << result.rows.size() << " projected rows (of "
              << result.outputs << " results):\n";
    for (std::size_t i = 0; i < result.rows.size() && i < 10; ++i) {
      std::cout << "  (";
      for (std::size_t c = 0; c < result.rows[i].size(); ++c) {
        if (c != 0) std::cout << ", ";
        std::cout << result.rows[i][c];
      }
      std::cout << ")\n";
    }
  } else {
    std::cout << "join results: " << result.outputs << "\n";
  }

  std::cout << "\nthroughput curve:\n";
  for (const auto& s : result.samples) {
    std::cout << "  t=" << micros_to_seconds(s.t) << "s  outputs=" << s.outputs;
    for (std::size_t qi = 0; qi < s.per_query_outputs.size(); ++qi) {
      std::cout << "  q" << qi << "=" << s.per_query_outputs[qi];
    }
    std::cout << "\n";
  }
  std::cout << "\nstates:\n";
  std::vector<std::string> state_names;
  for (StreamId s = 0; s < query.num_streams(); ++s) {
    state_names.push_back(std::string(query.schema(s).stream_name()));
  }
  engine::make_state_table(result.states, state_names).print(std::cout);

  if (telemetry.has_value()) {
    // Per-state probe-cost percentiles from the stem histograms
    // (interpolated within buckets; see Histogram::percentile).
    TablePrinter probe_table(
        {"state", "probes", "p50_us", "p95_us", "p99_us", "max_us"});
    for (StreamId s = 0; s < query.num_streams(); ++s) {
      const auto* h = telemetry->metrics().find_histogram(
          "stem." + std::to_string(s) + ".probe.cost_us");
      if (h == nullptr || h->count() == 0) continue;
      probe_table.add_row({state_names[s], std::to_string(h->count()),
                           TablePrinter::fmt(h->percentile(0.50)),
                           TablePrinter::fmt(h->percentile(0.95)),
                           TablePrinter::fmt(h->percentile(0.99)),
                           TablePrinter::fmt(h->max_observed())});
    }
    if (probe_table.row_count() > 0) {
      std::cout << "\nprobe cost (virtual us per probe):\n";
      probe_table.print(std::cout);
    }
  }

  if (trace_sample > 0) {
    const auto* span_hist =
        telemetry->metrics().find_histogram("span.latency_us");
    if (span_hist != nullptr && span_hist->count() > 0) {
      std::cout << "\nsampled tuple latency (wall us, every " << trace_sample
                << "th arrival): n=" << span_hist->count()
                << "  p50=" << TablePrinter::fmt(span_hist->percentile(0.50))
                << "  p95=" << TablePrinter::fmt(span_hist->percentile(0.95))
                << "  p99=" << TablePrinter::fmt(span_hist->percentile(0.99))
                << "  max=" << TablePrinter::fmt(span_hist->max_observed())
                << "\n";
    }
  }

  if (profile) {
    const auto* wall = telemetry->metrics().find_gauge("profile.run.wall_us");
    std::cout << "\n";
    telemetry::print_phase_table(std::cout, *telemetry->profiler(),
                                 wall != nullptr ? wall->value() : 0.0);
  }

  if (telemetry.has_value()) {
    const auto* dropped =
        telemetry->metrics().find_counter("telemetry.events.dropped");
    if (dropped != nullptr && dropped->value() > 0) {
      std::cerr << "\nwarning: trace ring overflowed; " << dropped->value()
                << " oldest events dropped (raise --event-capacity, "
                   "currently "
                << telemetry->events().capacity() << ")\n";
    }
  }

  if (trace_out.has_value()) {
    if (telemetry::write_trace_file(*trace_out, *telemetry)) {
      std::cout << "\ntrace written to " << *trace_out << " ("
                << telemetry->events().total_emitted() << " events)\n";
    } else {
      std::cerr << "\nfailed to write trace to " << *trace_out << "\n";
      return 1;
    }
  }
  return 0;
}
