// Multi-query monitoring dashboard: three analyst queries share the same
// two market streams, each joining on a different attribute — so the
// shared per-stream state must answer three disjoint access-pattern
// families with a single bit-address index (paper §II's multi-query
// claim). Watch the tuner allocate bits across ALL queries' attributes,
// and each query's progress curve build up sample by sample
// (Sample::per_query_outputs — the same series a real dashboard would
// plot offline).
#include <algorithm>
#include <iostream>
#include <string>

#include "engine/multi_query.hpp"
#include "workload/distributions.hpp"

using namespace amri;

namespace {

/// Trades and Quotes streams with three attributes each: symbol, venue,
/// sector. Query 0 joins on symbol, query 1 on venue, query 2 on sector.
std::vector<engine::QuerySpec> dashboard_queries(TimeMicros window) {
  const std::vector<Schema> schemas = {
      Schema("Trades", {"symbol", "venue", "sector"}),
      Schema("Quotes", {"symbol", "venue", "sector"}),
  };
  std::vector<engine::QuerySpec> queries;
  for (AttrId a = 0; a < 3; ++a) {
    queries.emplace_back(
        schemas, std::vector<engine::JoinPredicate>{{0, a, 1, a}}, window);
  }
  // Query 2 (sector flow) only cares about large sectors: WHERE sector < 8.
  queries[2].set_selection(
      0, engine::Selection({{2, engine::CompareOp::kLt, 8}}));
  queries[2].set_selection(
      1, engine::Selection({{2, engine::CompareOp::kLt, 8}}));
  return queries;
}

class MarketSource final : public engine::TupleSource {
 public:
  explicit MarketSource(TimeMicros end) : end_(end), rng_(1234) {}

  std::optional<Tuple> next() override {
    if (now_ >= end_) return std::nullopt;
    Tuple t;
    t.stream = static_cast<StreamId>(seq_ % 2);
    t.ts = now_;
    t.seq = seq_++;
    t.values.push_back(static_cast<Value>(rng_.below(512)));  // symbol
    t.values.push_back(static_cast<Value>(rng_.below(12)));   // venue
    t.values.push_back(static_cast<Value>(rng_.below(24)));   // sector
    now_ += 2500;  // 400 tuples/sec across both streams
    return t;
  }

 private:
  TimeMicros end_;
  TimeMicros now_ = 0;
  TupleSeq seq_ = 0;
  Rng rng_;
};

}  // namespace

int main() {
  auto queries = dashboard_queries(seconds_to_micros(15));

  engine::ExecutorOptions opts;
  opts.duration = seconds_to_micros(120);
  opts.warmup = seconds_to_micros(20);
  opts.sample_every = seconds_to_micros(30);
  opts.model_params.lambda_d = 200;
  opts.model_params.lambda_r = 600;
  opts.model_params.window_units = 15;
  opts.stem.backend = engine::IndexBackend::kAmri;
  opts.stem.initial_config = index::IndexConfig({2, 2, 2});
  tuner::TunerOptions t;
  t.reassess_every = 3000;
  t.theta = 0.05;
  t.optimizer.bit_budget = 9;
  opts.stem.amri_tuner = t;

  engine::MultiQueryExecutor executor(std::move(queries), opts);
  MarketSource source(kTimeMax);

  std::cout << "three concurrent queries over Trades x Quotes:\n"
            << "  Q0: same-symbol trade/quote pairs\n"
            << "  Q1: same-venue activity\n"
            << "  Q2: same-sector flow, large sectors only (WHERE sector < 8)"
            << "\n\n";
  const auto r = executor.run(source);

  // Per-query progress curves: every sample carries cumulative outputs
  // attributed to each query, so one run yields all three series.
  const char* labels[] = {"Q0 symbol", "Q1 venue ", "Q2 sector"};
  std::uint64_t peak = 1;
  for (const auto& s : r.combined.samples) {
    for (const std::uint64_t v : s.per_query_outputs) peak = std::max(peak, v);
  }
  std::cout << "per-query progress (cumulative joined pairs per sample):\n";
  for (const auto& s : r.combined.samples) {
    std::cout << "  t=" << micros_to_seconds(s.t) << "s\n";
    for (std::size_t q = 0; q < s.per_query_outputs.size(); ++q) {
      const std::uint64_t v = s.per_query_outputs[q];
      const auto bar = static_cast<std::size_t>(40 * v / peak);
      std::cout << "    " << labels[q] << " |" << std::string(bar, '#')
                << std::string(40 - bar, ' ') << "| " << v << "\n";
    }
  }

  std::cout << "\nper-query joined pairs over "
            << micros_to_seconds(executor.clock().now()) << "s:\n";
  for (std::size_t q = 0; q < r.per_query_outputs.size(); ++q) {
    std::cout << "  " << labels[q] << ": " << r.per_query_outputs[q] << "\n";
  }
  std::cout << "\nshared state configurations (one index serves all "
               "queries):\n";
  for (const auto& s : r.combined.states) {
    std::cout << "  " << executor.query(0).schema(s.stream).stream_name()
              << ": " << s.final_index << " after " << s.migrations
              << " migrations, " << s.probes << " probes\n";
  }
  std::cout << "\nfiltered arrivals (failed every query's WHERE): "
            << r.combined.arrivals_filtered << "\n";
  return 0;
}
