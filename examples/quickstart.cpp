// Quickstart: the AMRI public API in five minutes.
//
//  1. Build a bit-address index over a state's join attributes.
//  2. Insert tuples and probe with different access patterns.
//  3. Collect access-pattern statistics with a CDIA assessor.
//  4. Run index selection (paper Eq. 1) and migrate the index.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>
#include <memory>
#include <vector>

#include "assessment/assessor.hpp"
#include "index/bit_address_index.hpp"
#include "index/index_migrator.hpp"
#include "index/index_optimizer.hpp"

using namespace amri;

int main() {
  // --- 1. A state with three join attributes (JAS positions 0,1,2 map to
  // tuple attributes 0,1,2) and an even 6-bit index configuration.
  const index::JoinAttributeSet jas({0, 1, 2});
  index::BitAddressIndex idx(jas, index::IndexConfig({2, 2, 2}),
                             index::BitMapper::hashing(3));

  // --- 2. Store some tuples.
  std::vector<std::unique_ptr<Tuple>> tuples;
  for (Value v = 0; v < 1000; ++v) {
    auto t = std::make_unique<Tuple>();
    t->seq = static_cast<TupleSeq>(v);
    t->values = {v % 50, v % 20, v % 10};
    idx.insert(t.get());
    tuples.push_back(std::move(t));
  }
  std::cout << "stored " << idx.size() << " tuples in "
            << idx.occupied_buckets() << " buckets under "
            << idx.config().to_string() << "\n";

  // Probe binding every attribute (one bucket), then only attribute A
  // (wildcards over B and C's bits).
  index::ProbeKey exact;
  exact.mask = 0b111;
  exact.values = {7, 7, 7};
  std::vector<const Tuple*> out;
  auto stats = idx.probe(exact, out);
  std::cout << "exact probe <A,B,C>: " << stats.matches << " matches, "
            << stats.buckets_visited << " bucket(s), "
            << stats.tuples_compared << " compares\n";

  index::ProbeKey partial;
  partial.mask = 0b001;
  partial.values = {7, 0, 0};
  out.clear();
  stats = idx.probe(partial, out);
  std::cout << "wildcard probe <A,*,*>: " << stats.matches << " matches, "
            << stats.buckets_visited << " buckets, "
            << stats.tuples_compared << " compares\n";

  // --- 3. Track which access patterns the workload actually uses.
  assessment::AssessorParams aparams;
  aparams.epsilon = 0.01;
  const auto assessor = assessment::make_assessor(
      assessment::AssessorKind::kCdiaHighestCount, 0b111, aparams);
  for (int i = 0; i < 900; ++i) assessor->observe(0b001);  // mostly <A,*,*>
  for (int i = 0; i < 100; ++i) assessor->observe(0b111);
  const auto frequent = assessor->results(0.1);
  std::cout << "\nfrequent access patterns:\n";
  for (const auto& p : frequent) {
    std::cout << "  " << index::pattern_to_string(p.mask, 3) << "  "
              << p.frequency * 100 << "%\n";
  }

  // --- 4. Select the cost-optimal IC for that workload and migrate.
  index::WorkloadParams wp;
  wp.lambda_d = 100;   // tuples/sec
  wp.lambda_r = 500;   // probes/sec
  wp.window_units = 10;
  const index::CostModel model(wp);
  index::OptimizerOptions oopts;
  oopts.bit_budget = 6;
  oopts.max_bits_per_attr = 6;
  const index::IndexOptimizer optimizer(model, oopts);
  const auto best =
      optimizer.optimize(3, assessment::to_pattern_frequencies(frequent));
  std::cout << "\noptimizer recommends " << best.config.to_string()
            << " (C_D=" << best.cost << ", evaluated "
            << best.configs_evaluated << " configs)\n";

  const index::IndexMigrator migrator;
  const auto report = migrator.migrate(idx, best.config);
  std::cout << "migrated " << report.tuples_moved << " tuples from "
            << report.from.to_string() << " to " << report.to.to_string()
            << "\n";

  out.clear();
  stats = idx.probe(partial, out);
  std::cout << "wildcard probe <A,*,*> after tuning: " << stats.matches
            << " matches, " << stats.buckets_visited << " buckets, "
            << stats.tuples_compared << " compares\n";
  return 0;
}
