// Network flow monitoring with range probes: a security analyst keeps a
// sliding window of flow records and asks interval questions ("flows to
// ports 6000-6063 from subnet 10.x", §II's <, >, >=, <= expressions).
//
// Contrasts three physical designs on the same window under bursty
// arrivals: the AMRI bit-address index with a *range* mapper (contiguous
// cells -> interval pruning), an ordered per-attribute index, and a full
// scan.
#include <iostream>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/table_printer.hpp"
#include "index/bit_address_index.hpp"
#include "index/ordered_index.hpp"
#include "index/scan_index.hpp"

using namespace amri;
using namespace amri::index;

namespace {

// Flow record: src_subnet [0,256), dst_port [0,4096), bytes [0,1<<20).
std::vector<std::unique_ptr<Tuple>> capture_flows(std::size_t n) {
  Rng rng(4242);
  std::vector<std::unique_ptr<Tuple>> flows;
  flows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto t = std::make_unique<Tuple>();
    t->seq = i;
    t->values = {
        static_cast<Value>(rng.below(256)),
        static_cast<Value>(rng.below(4096)),
        static_cast<Value>(rng.below(1u << 20)),
    };
    flows.push_back(std::move(t));
  }
  return flows;
}

}  // namespace

int main() {
  const JoinAttributeSet jas({0, 1, 2});  // subnet, port, bytes
  const auto flows = capture_flows(100000);

  BitAddressIndex bai(jas, IndexConfig({4, 6, 2}),
                      BitMapper::ranged({{0, 255}, {0, 4095}, {0, (1 << 20) - 1}}));
  OrderedIndex by_port(jas, 1);
  ScanIndex scan(jas);
  std::cout << "indexing " << flows.size() << " flow records...\n";
  std::vector<const Tuple*> ptrs;
  for (const auto& f : flows) ptrs.push_back(f.get());
  bai.bulk_load(ptrs);
  for (const Tuple* f : ptrs) {
    by_port.insert(f);
    scan.insert(f);
  }

  struct Question {
    const char* label;
    RangeProbeKey key;
  };
  std::vector<Question> questions;
  {
    Question q1{"X11 ports from subnet 10 (port in [6000,6063], subnet=10)", {}};
    q1.key.bind(0, 10, 10);
    q1.key.bind(1, 600, 663);
    questions.push_back(q1);
    Question q2{"large transfers (bytes >= 900k)", {}};
    q2.key.bind(2, 900000, (1 << 20) - 1);
    questions.push_back(q2);
    Question q3{"low ports anywhere (port <= 128)", {}};
    q3.key.bind(1, 0, 128);
    questions.push_back(q3);
  }

  TablePrinter table({"question", "index", "matches", "buckets",
                      "tuples_compared"});
  for (auto& q : questions) {
    std::vector<const Tuple*> out;
    auto s1 = bai.probe_range(q.key, out);
    table.add_row({q.label, "bit-address",
                   TablePrinter::fmt_int(static_cast<long long>(s1.matches)),
                   TablePrinter::fmt_int(
                       static_cast<long long>(s1.buckets_visited)),
                   TablePrinter::fmt_int(
                       static_cast<long long>(s1.tuples_compared))});
    out.clear();
    auto s2 = by_port.probe_range(q.key, out);
    table.add_row({"", "ordered(port)",
                   TablePrinter::fmt_int(static_cast<long long>(s2.matches)),
                   "1",
                   TablePrinter::fmt_int(
                       static_cast<long long>(s2.tuples_compared))});
    out.clear();
    // Scan reference via the same verification predicate.
    std::uint64_t matches = 0;
    for (const Tuple* f : ptrs) {
      if (q.key.matches(*f, jas)) ++matches;
    }
    table.add_row({"", "full scan",
                   TablePrinter::fmt_int(static_cast<long long>(matches)),
                   "1",
                   TablePrinter::fmt_int(
                       static_cast<long long>(ptrs.size()))});
    if (s1.matches != matches || s2.matches != matches) {
      std::cerr << "MISMATCH on '" << q.label << "'\n";
      return 1;
    }
  }
  table.print(std::cout);
  std::cout << "\nOne bit-address index served subnet-, port- and "
               "bytes-interval questions;\nthe ordered index only prunes on "
               "its own key (port) and degrades to a\nverified scan "
               "elsewhere.\n";
  return 0;
}
