// Drift anatomy: watch the feedback loop the paper is built around.
//
// Phase 1 routes probes through attribute A (its join is selective);
// mid-run the selectivities flip so the router prefers attribute C first.
// The demo prints, per assessment window: the access-pattern mix one state
// receives, the IC the tuner selects, and the probe cost before/after the
// migration — the router→pattern→index chain of §I.
#include <iomanip>
#include <iostream>

#include "assessment/assessor.hpp"
#include "index/bit_address_index.hpp"
#include "index/index_migrator.hpp"
#include "index/index_optimizer.hpp"
#include "tuner/amri_tuner.hpp"
#include "workload/request_generator.hpp"

using namespace amri;

namespace {

// Synthetic state contents: 4000 tuples over 3 join attributes.
std::vector<std::unique_ptr<Tuple>> make_state(std::size_t n) {
  Rng rng(99);
  std::vector<std::unique_ptr<Tuple>> out;
  for (std::size_t i = 0; i < n; ++i) {
    auto t = std::make_unique<Tuple>();
    t->seq = i;
    t->values = {static_cast<Value>(rng.below(64)),
                 static_cast<Value>(rng.below(64)),
                 static_cast<Value>(rng.below(64))};
    out.push_back(std::move(t));
  }
  return out;
}

double average_probe_compares(index::BitAddressIndex& idx,
                              workload::RequestGenerator gen, int probes) {
  Rng rng(7);
  std::uint64_t compares = 0;
  std::vector<const Tuple*> out;
  for (int i = 0; i < probes; ++i) {
    index::ProbeKey key;
    key.mask = gen.next();
    if (key.mask == 0) key.mask = 0b001;
    key.values.resize(3, 0);
    for_each_bit(key.mask, [&](unsigned pos) {
      key.values[pos] = static_cast<Value>(rng.below(64));
    });
    out.clear();
    compares += idx.probe(key, out).tuples_compared;
  }
  return static_cast<double>(compares) / probes;
}

}  // namespace

int main() {
  const auto tuples = make_state(4000);
  const index::JoinAttributeSet jas({0, 1, 2});
  index::BitAddressIndex idx(jas, index::IndexConfig({3, 3, 2}),
                             index::BitMapper::hashing(3));
  for (const auto& t : tuples) idx.insert(t.get());

  index::WorkloadParams wp;
  wp.lambda_d = 100;
  wp.lambda_r = 400;
  wp.window_units = 40;
  tuner::TunerOptions topts;
  topts.assessor = assessment::AssessorKind::kCdiaHighestCount;
  topts.assessor_params.epsilon = 0.05;
  topts.theta = 0.1;
  topts.reassess_every = 2000;
  topts.optimizer.bit_budget = 8;
  tuner::AmriTuner tuner(0b111, 3, index::CostModel(wp), topts);

  // Two-phase drifting request stream: A-heavy, then C-heavy.
  workload::RequestPhase phase_a;
  phase_a.length = 6000;
  phase_a.hot = {{0b001, 0.55}, {0b011, 0.25}, {0b111, 0.1}};
  workload::RequestPhase phase_c;
  phase_c.length = 6000;
  phase_c.hot = {{0b100, 0.55}, {0b110, 0.25}, {0b111, 0.1}};
  workload::RequestGenerator requests(0b111, {phase_a, phase_c}, 17);

  std::cout << "initial IC: " << idx.config().to_string() << "\n\n";
  std::cout << std::fixed << std::setprecision(1);

  for (int window = 0; window < 6; ++window) {
    // One assessment window of probes.
    for (std::uint64_t i = 0; i < topts.reassess_every; ++i) {
      tuner.observe_request(requests.next());
    }
    const char* phase = requests.current_phase() == 0 ? "A-heavy" : "C-heavy";
    const double before = average_probe_compares(
        idx,
        requests.current_phase() == 0
            ? workload::RequestGenerator(0b111, {phase_a}, 3)
            : workload::RequestGenerator(0b111, {phase_c}, 3),
        500);
    const auto decision = tuner.maybe_tune(idx);
    const double after = average_probe_compares(
        idx,
        requests.current_phase() == 0
            ? workload::RequestGenerator(0b111, {phase_a}, 3)
            : workload::RequestGenerator(0b111, {phase_c}, 3),
        500);
    std::cout << "window " << window << " [" << phase << "]"
              << "  recommended " << decision.recommended.to_string()
              << (decision.migrated ? "  -> MIGRATED" : "  (kept)")
              << "  avg compares/probe: " << before << " -> " << after
              << "\n";
  }

  std::cout << "\nfinal IC: " << idx.config().to_string() << " after "
            << tuner.migrations() << " migrations over "
            << tuner.observed_requests() << " requests\n";
  return 0;
}
