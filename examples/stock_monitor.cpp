// The paper's introduction scenario: a stock analyst combining price/volume
// ticks with company news, sector feeds and blog mentions — a 4-way
// sliding-window join over streams whose relative selectivities drift as
// market activity moves between sectors.
//
// This example wires the full AMRI stack: synthetic drifting streams ->
// eddy router -> STeM states with bit-address indexes -> CDIA-hc tuner,
// and prints the route/index adaptation as it happens.
#include <iostream>

#include "engine/executor.hpp"
#include "workload/scenario.hpp"

using namespace amri;

int main() {
  // Four streams: Ticks, News, Sector, Blogs — complete join graph, so
  // each state carries three join attributes (e.g. Ticks joins News on a
  // symbol id, Sector on a sector id, Blogs on a topic id).
  workload::ScenarioOptions wopts;
  wopts.streams = 4;
  wopts.rate_per_sec = 60.0;       // ticks per virtual second per stream
  wopts.window_seconds = 30.0;     // "recent market context"
  wopts.phase_seconds = 40.0;      // sector rotation period
  wopts.hot_domain = 20;           // the busy sector: many matches
  wopts.cold_domain = 80;
  wopts.seed = 2026;
  const workload::Scenario scenario(wopts);

  auto eopts = scenario.default_executor_options();
  eopts.duration = seconds_to_micros(240);
  eopts.warmup = seconds_to_micros(40);
  eopts.sample_every = seconds_to_micros(20);
  eopts.costs.compare_cost_us = 0.35;
  eopts.model_params.compare_cost = 0.35;
  eopts.stem.backend = engine::IndexBackend::kAmri;
  eopts.stem.initial_config = index::IndexConfig({3, 3, 2});
  tuner::TunerOptions topts;
  topts.assessor = assessment::AssessorKind::kCdiaHighestCount;
  topts.assessor_params.epsilon = 0.05;
  topts.theta = 0.1;
  topts.reassess_every = 1200;
  topts.optimizer.bit_budget = 8;
  eopts.stem.amri_tuner = topts;

  engine::Executor executor(scenario.query(), eopts);
  const auto source = scenario.make_source();

  std::cout << "monitoring 4 market streams (4-way windowed join), "
            << "sector focus rotates every " << wopts.phase_seconds
            << "s...\n\n";
  const auto result = executor.run(*source);

  std::cout << "t_sec | alerts (cumulative joined events) | backlog\n";
  std::cout << "--------------------------------------------------\n";
  for (const auto& s : result.samples) {
    std::cout << "  " << micros_to_seconds(s.t) << "\t" << s.outputs << "\t\t"
              << s.backlog << "\n";
  }

  std::cout << "\nper-state final configuration:\n";
  for (const auto& s : result.states) {
    std::cout << "  " << scenario.query().schema(s.stream).stream_name()
              << ": " << s.final_index << ", " << s.probes << " probes, "
              << s.migrations << " index migrations, " << s.stored_tuples
              << " tuples in window\n";
  }
  std::cout << "\nproduced " << result.outputs << " joined alerts from "
            << result.arrivals << " arrivals; modelled work "
            << result.charged_us / 1e6 << " virtual seconds\n";
  if (result.died_at) {
    std::cout << "run DIED of memory exhaustion at "
              << micros_to_seconds(*result.died_at) << "s\n";
  }
  return 0;
}
