#include "common/small_vector.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <utility>

namespace amri {
namespace {

TEST(SmallVector, StartsEmptyAndInline) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(SmallVector, PushWithinInlineCapacity) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, SpillsToHeapPreservingContents) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 20; ++i) v.push_back(i);
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, InitializerList) {
  SmallVector<int, 4> v{1, 2, 3};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.front(), 1);
  EXPECT_EQ(v.back(), 3);
}

TEST(SmallVector, CountValueConstructor) {
  SmallVector<std::int64_t, 8> v(5, 42);
  EXPECT_EQ(v.size(), 5u);
  for (const auto x : v) EXPECT_EQ(x, 42);
}

TEST(SmallVector, CopyInline) {
  SmallVector<int, 4> a{1, 2};
  SmallVector<int, 4> b(a);
  a.push_back(3);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], 1);
  EXPECT_EQ(b[1], 2);
}

TEST(SmallVector, CopyHeap) {
  SmallVector<int, 2> a;
  for (int i = 0; i < 10; ++i) a.push_back(i);
  SmallVector<int, 2> b(a);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(b[9], 9);
}

TEST(SmallVector, CopyAssignReplacesContents) {
  SmallVector<int, 2> a{7, 8};
  SmallVector<int, 2> b;
  for (int i = 0; i < 10; ++i) b.push_back(i);
  b = a;
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], 7);
}

TEST(SmallVector, MoveHeapStealsStorage) {
  SmallVector<int, 2> a;
  for (int i = 0; i < 100; ++i) a.push_back(i);
  const int* data = a.data();
  SmallVector<int, 2> b(std::move(a));
  EXPECT_EQ(b.data(), data);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move)
}

TEST(SmallVector, ResizeGrowsWithFill) {
  SmallVector<int, 4> v{1};
  v.resize(6, 9);
  EXPECT_EQ(v.size(), 6u);
  EXPECT_EQ(v[0], 1);
  for (std::size_t i = 1; i < 6; ++i) EXPECT_EQ(v[i], 9);
}

TEST(SmallVector, ResizeShrinksKeepingPrefix) {
  SmallVector<int, 4> v{1, 2, 3};
  v.resize(1);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 1);
}

TEST(SmallVector, Equality) {
  SmallVector<int, 4> a{1, 2, 3};
  SmallVector<int, 4> b{1, 2, 3};
  SmallVector<int, 4> c{1, 2};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(SmallVector, IterationSum) {
  SmallVector<int, 4> v;
  for (int i = 1; i <= 10; ++i) v.push_back(i);
  EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0), 55);
}

TEST(SmallVector, PopBack) {
  SmallVector<int, 4> v{1, 2};
  v.pop_back();
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.back(), 1);
}

}  // namespace
}  // namespace amri
