#include "common/memory_tracker.hpp"

#include <gtest/gtest.h>

namespace amri {
namespace {

TEST(MemoryTracker, StartsEmpty) {
  MemoryTracker mem;
  EXPECT_EQ(mem.total(), 0u);
  EXPECT_EQ(mem.peak(), 0u);
  EXPECT_FALSE(mem.exhausted());
}

TEST(MemoryTracker, AllocateAndRelease) {
  MemoryTracker mem;
  mem.allocate(MemCategory::kStateTuples, 100);
  mem.allocate(MemCategory::kIndexStructure, 50);
  EXPECT_EQ(mem.total(), 150u);
  EXPECT_EQ(mem.category(MemCategory::kStateTuples), 100u);
  mem.release(MemCategory::kStateTuples, 40);
  EXPECT_EQ(mem.total(), 110u);
  EXPECT_EQ(mem.category(MemCategory::kStateTuples), 60u);
}

TEST(MemoryTracker, PeakTracksHighWater) {
  MemoryTracker mem;
  mem.allocate(MemCategory::kQueue, 1000);
  mem.release(MemCategory::kQueue, 900);
  mem.allocate(MemCategory::kQueue, 100);
  EXPECT_EQ(mem.peak(), 1000u);
}

TEST(MemoryTracker, BudgetExceededIsSticky) {
  MemoryTracker mem(100);
  mem.allocate(MemCategory::kStatistics, 101);
  EXPECT_TRUE(mem.exhausted());
  mem.release(MemCategory::kStatistics, 101);
  EXPECT_TRUE(mem.exhausted());  // like an OOM-killed process
}

TEST(MemoryTracker, ExactBudgetIsFine) {
  MemoryTracker mem(100);
  mem.allocate(MemCategory::kStateTuples, 100);
  EXPECT_FALSE(mem.exhausted());
}

TEST(MemoryTracker, UnlimitedNeverExhausts) {
  MemoryTracker mem;
  mem.allocate(MemCategory::kStateTuples, std::size_t{1} << 40);
  EXPECT_FALSE(mem.exhausted());
}

TEST(MemoryTracker, OverReleaseClamps) {
  MemoryTracker mem;
  mem.allocate(MemCategory::kQueue, 10);
  mem.release(MemCategory::kQueue, 50);
  EXPECT_EQ(mem.total(), 0u);
  EXPECT_EQ(mem.category(MemCategory::kQueue), 0u);
}

TEST(MemoryTracker, ResetClearsEverything) {
  MemoryTracker mem(10);
  mem.allocate(MemCategory::kQueue, 100);
  EXPECT_TRUE(mem.exhausted());
  mem.reset();
  EXPECT_EQ(mem.total(), 0u);
  EXPECT_EQ(mem.peak(), 0u);
  EXPECT_FALSE(mem.exhausted());
  EXPECT_EQ(mem.budget(), 10u);  // budget survives reset
}

TEST(MemoryTracker, CategoryNames) {
  EXPECT_EQ(mem_category_name(MemCategory::kStateTuples), "state_tuples");
  EXPECT_EQ(mem_category_name(MemCategory::kIndexStructure),
            "index_structure");
  EXPECT_EQ(mem_category_name(MemCategory::kStatistics), "statistics");
  EXPECT_EQ(mem_category_name(MemCategory::kQueue), "queue");
}

}  // namespace
}  // namespace amri
