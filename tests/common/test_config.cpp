#include "common/config.hpp"

#include <gtest/gtest.h>

namespace amri {
namespace {

TEST(Config, FromArgs) {
  const char* argv[] = {"prog", "alpha=1", "beta=2.5", "name=test", "flag"};
  const Config cfg = Config::from_args(5, argv);
  EXPECT_EQ(cfg.get_int("alpha"), 1);
  EXPECT_EQ(cfg.get_double("beta"), 2.5);
  EXPECT_EQ(cfg.get_string("name"), "test");
  EXPECT_FALSE(cfg.has("flag"));  // no '=' -> ignored
}

TEST(Config, FromArgsFlagSyntax) {
  const char* argv[] = {"prog",        "--trace-out", "run.jsonl",
                        "--rate=40",   "--verbose",   "--sim-seconds",
                        "12"};
  const Config cfg = Config::from_args(7, argv);
  // "--key value" with '-' -> '_' normalisation.
  EXPECT_EQ(cfg.get_string("trace_out"), "run.jsonl");
  EXPECT_EQ(cfg.get_int("sim_seconds"), 12);
  // "--key=value" also normalises.
  EXPECT_EQ(cfg.get_int("rate"), 40);
  // A flag followed by another flag is a boolean.
  EXPECT_EQ(cfg.get_bool("verbose"), true);
}

TEST(Config, FromArgsTrailingFlagIsTrue) {
  const char* argv[] = {"prog", "--dump"};
  const Config cfg = Config::from_args(2, argv);
  EXPECT_EQ(cfg.get_bool("dump"), true);
}

TEST(Config, FromText) {
  const Config cfg = Config::from_text(
      "# comment\n"
      "a = 10\n"
      "b=hello  # trailing comment\n"
      "\n"
      "  c  =  true \n");
  EXPECT_EQ(cfg.get_int("a"), 10);
  EXPECT_EQ(cfg.get_string("b"), "hello");
  EXPECT_EQ(cfg.get_bool("c"), true);
}

TEST(Config, MissingKeysReturnNullopt) {
  const Config cfg;
  EXPECT_FALSE(cfg.get_int("nope").has_value());
  EXPECT_FALSE(cfg.get_string("nope").has_value());
  EXPECT_FALSE(cfg.get_double("nope").has_value());
  EXPECT_FALSE(cfg.get_bool("nope").has_value());
}

TEST(Config, FallbackAccessors) {
  Config cfg;
  cfg.set("x", "5");
  EXPECT_EQ(cfg.int_or("x", 1), 5);
  EXPECT_EQ(cfg.int_or("y", 1), 1);
  EXPECT_EQ(cfg.double_or("y", 2.0), 2.0);
  EXPECT_EQ(cfg.string_or("y", "dflt"), "dflt");
  EXPECT_EQ(cfg.bool_or("y", true), true);
}

TEST(Config, MalformedNumbersRejected) {
  Config cfg;
  cfg.set("n", "12abc");
  EXPECT_FALSE(cfg.get_int("n").has_value());
  cfg.set("d", "3.5.5");
  EXPECT_FALSE(cfg.get_double("d").has_value());
}

TEST(Config, BoolSpellings) {
  Config cfg;
  for (const char* t : {"1", "true", "yes", "on", "TRUE", "Yes"}) {
    cfg.set("b", t);
    EXPECT_EQ(cfg.get_bool("b"), true) << t;
  }
  for (const char* f : {"0", "false", "no", "off", "FALSE"}) {
    cfg.set("b", f);
    EXPECT_EQ(cfg.get_bool("b"), false) << f;
  }
  cfg.set("b", "maybe");
  EXPECT_FALSE(cfg.get_bool("b").has_value());
}

TEST(Config, LastSetWins) {
  Config cfg;
  cfg.set("k", "1");
  cfg.set("k", "2");
  EXPECT_EQ(cfg.get_int("k"), 2);
}

TEST(Config, IntAlsoReadableAsDouble) {
  Config cfg;
  cfg.set("n", "7");
  EXPECT_EQ(cfg.get_double("n"), 7.0);
}

}  // namespace
}  // namespace amri
