#include "common/virtual_clock.hpp"

#include <gtest/gtest.h>

namespace amri {
namespace {

TEST(VirtualClock, StartsAtZero) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0);
}

TEST(VirtualClock, StartsAtGivenTime) {
  VirtualClock clock(500);
  EXPECT_EQ(clock.now(), 500);
}

TEST(VirtualClock, AdvanceAccumulates) {
  VirtualClock clock;
  clock.advance(10);
  clock.advance(5);
  EXPECT_EQ(clock.now(), 15);
}

TEST(VirtualClock, AdvanceZeroIsNoop) {
  VirtualClock clock(7);
  clock.advance(0);
  EXPECT_EQ(clock.now(), 7);
}

TEST(VirtualClock, AdvanceToAbsolute) {
  VirtualClock clock;
  clock.advance_to(1000);
  EXPECT_EQ(clock.now(), 1000);
}

TEST(VirtualClock, SaturatesAtMax) {
  VirtualClock clock(kTimeMax - 5);
  clock.advance(100);
  EXPECT_EQ(clock.now(), kTimeMax);
}

TEST(VirtualClock, Reset) {
  VirtualClock clock(123);
  clock.reset();
  EXPECT_EQ(clock.now(), 0);
  clock.reset(9);
  EXPECT_EQ(clock.now(), 9);
}

TEST(TimeConversion, RoundTripSeconds) {
  EXPECT_EQ(seconds_to_micros(1.0), 1000000);
  EXPECT_EQ(seconds_to_micros(0.5), 500000);
  EXPECT_DOUBLE_EQ(micros_to_seconds(2500000), 2.5);
}

TEST(TimeConversion, SaturatesAndClampsNegatives) {
  EXPECT_EQ(seconds_to_micros(-1.0), 0);
  EXPECT_EQ(seconds_to_micros(1e40), kTimeMax);
}

}  // namespace
}  // namespace amri
