#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <vector>

namespace amri {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(
      0, hits.size(),
      [&hits](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      },
      64);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForTinyRangeRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  pool.parallel_for(
      0, 10,
      [&sum](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) sum.fetch_add(static_cast<int>(i));
      },
      1024);
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, TasksSubmittedFromTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] {
    counter.fetch_add(1);
    pool.submit([&] { counter.fetch_add(1); });
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, DestructionDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolHooks, OnDequeueFiresPerTaskWithNonNegativeWait) {
  ThreadPool pool(2);
  std::atomic<int> dequeues{0};
  std::atomic<bool> negative_wait{false};
  ThreadPool::Hooks hooks;
  hooks.on_dequeue = [&](double wait_us) {
    dequeues.fetch_add(1);
    if (wait_us < 0.0) negative_wait.store(true);
  };
  pool.set_hooks(std::move(hooks));
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 16);
  EXPECT_EQ(dequeues.load(), 16);
  EXPECT_FALSE(negative_wait.load());
}

TEST(ThreadPoolHooks, OnContentionFiresWhenQueueBacklogged) {
  ThreadPool pool(1);
  std::atomic<int> contentions{0};
  ThreadPool::Hooks hooks;
  hooks.on_contention = [&contentions] { contentions.fetch_add(1); };
  pool.set_hooks(std::move(hooks));

  // Block the single worker so subsequent submits find a backlog.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  pool.submit([&] {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return release; });
  });
  // The blocker may or may not have been dequeued yet, so queue two more:
  // the second is guaranteed to find the first still queued.
  pool.submit([] {});
  pool.submit([] {});
  EXPECT_GE(contentions.load(), 1);
  {
    std::lock_guard<std::mutex> lk(mu);
    release = true;
  }
  cv.notify_all();
  pool.wait_idle();
}

TEST(ThreadPoolHooks, UnsetHooksAreFree) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPoolHooks, ParallelForReportsDequeues) {
  ThreadPool pool(2);
  std::atomic<int> dequeues{0};
  ThreadPool::Hooks hooks;
  hooks.on_dequeue = [&dequeues](double) { dequeues.fetch_add(1); };
  pool.set_hooks(std::move(hooks));
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(
      0, 10000,
      [&covered](std::size_t lo, std::size_t hi) {
        covered.fetch_add(hi - lo);
      },
      256);
  EXPECT_EQ(covered.load(), 10000u);
  EXPECT_GE(dequeues.load(), 1);
}

}  // namespace
}  // namespace amri
