#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace amri {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(
      0, hits.size(),
      [&hits](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      },
      64);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForTinyRangeRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  pool.parallel_for(
      0, 10,
      [&sum](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) sum.fetch_add(static_cast<int>(i));
      },
      1024);
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, TasksSubmittedFromTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] {
    counter.fetch_add(1);
    pool.submit([&] { counter.fetch_add(1); });
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, DestructionDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace amri
