#include "common/bitops.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace amri {
namespace {

TEST(Bitops, Popcount) {
  EXPECT_EQ(popcount(0u), 0);
  EXPECT_EQ(popcount(0b101u), 2);
  EXPECT_EQ(popcount(0xFFFFFFFFu), 32);
}

TEST(Bitops, LowBits) {
  EXPECT_EQ(low_bits(0), 0u);
  EXPECT_EQ(low_bits(1), 0b1u);
  EXPECT_EQ(low_bits(3), 0b111u);
  EXPECT_EQ(low_bits(31), 0x7FFFFFFFu);
}

TEST(Bitops, LowBits64) {
  EXPECT_EQ(low_bits64(0), 0u);
  EXPECT_EQ(low_bits64(64), ~std::uint64_t{0});
  EXPECT_EQ(low_bits64(12), 0xFFFu);
}

TEST(Bitops, IsSubset) {
  EXPECT_TRUE(is_subset(0b001, 0b011));
  EXPECT_TRUE(is_subset(0b011, 0b011));
  EXPECT_TRUE(is_subset(0, 0b011));
  EXPECT_FALSE(is_subset(0b100, 0b011));
  EXPECT_FALSE(is_subset(0b101, 0b001));
}

TEST(Bitops, HasBit) {
  EXPECT_TRUE(has_bit(0b101, 0));
  EXPECT_FALSE(has_bit(0b101, 1));
  EXPECT_TRUE(has_bit(0b101, 2));
}

TEST(Bitops, ForEachSubsetEnumeratesAll) {
  const AttrMask mask = 0b1011;
  std::set<AttrMask> seen;
  for_each_subset(mask, [&](AttrMask s) {
    EXPECT_TRUE(is_subset(s, mask));
    seen.insert(s);
  });
  EXPECT_EQ(seen.size(), 8u);  // 2^3 subsets of a 3-bit mask
}

TEST(Bitops, ForEachSubsetIncludesEmptyAndFull) {
  bool saw_empty = false;
  bool saw_full = false;
  for_each_subset(0b110, [&](AttrMask s) {
    if (s == 0) saw_empty = true;
    if (s == 0b110) saw_full = true;
  });
  EXPECT_TRUE(saw_empty);
  EXPECT_TRUE(saw_full);
}

TEST(Bitops, ForEachSubsetOfEmptyMask) {
  int calls = 0;
  for_each_subset(0, [&](AttrMask s) {
    EXPECT_EQ(s, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(Bitops, ForEachBitAscendingOrder) {
  std::vector<unsigned> bits;
  for_each_bit(0b10110, [&](unsigned i) { bits.push_back(i); });
  EXPECT_EQ(bits, (std::vector<unsigned>{1, 2, 4}));
}

TEST(Bitops, LowestBit) {
  EXPECT_EQ(lowest_bit(0b100), 2u);
  EXPECT_EQ(lowest_bit(0b1), 0u);
}

TEST(Bitops, Binomial) {
  EXPECT_EQ(binomial(3, 0), 1u);
  EXPECT_EQ(binomial(3, 1), 3u);
  EXPECT_EQ(binomial(3, 2), 3u);
  EXPECT_EQ(binomial(3, 3), 1u);
  EXPECT_EQ(binomial(3, 4), 0u);
  EXPECT_EQ(binomial(10, 5), 252u);
}

TEST(Bitops, SubsetCountMatchesBinomialSum) {
  // Number of k-subsets of an n-mask equals C(n, k).
  const AttrMask mask = 0b11111;  // n = 5
  std::vector<int> by_size(6, 0);
  for_each_subset(mask, [&](AttrMask s) { ++by_size[popcount(s)]; });
  for (unsigned k = 0; k <= 5; ++k) {
    EXPECT_EQ(static_cast<std::uint64_t>(by_size[k]), binomial(5, k));
  }
}

}  // namespace
}  // namespace amri
