#include "common/cost_meter.hpp"

#include <gtest/gtest.h>

namespace amri {
namespace {

TEST(CostMeter, CountsWithoutClock) {
  CostMeter meter;
  meter.charge_hash(3);
  meter.charge_compare(5);
  meter.charge_route();
  EXPECT_EQ(meter.hashes(), 3u);
  EXPECT_EQ(meter.compares(), 5u);
  EXPECT_EQ(meter.routes(), 1u);
}

TEST(CostMeter, ChargesClockInWholeMicros) {
  VirtualClock clock;
  CostParams params;
  params.hash_cost_us = 1.0;
  CostMeter meter(&clock, params);
  meter.charge_hash(10);
  EXPECT_EQ(clock.now(), 10);
}

TEST(CostMeter, AccumulatesFractionalCharges) {
  VirtualClock clock;
  CostParams params;
  params.compare_cost_us = 0.25;
  CostMeter meter(&clock, params);
  for (int i = 0; i < 8; ++i) meter.charge_compare();
  // 8 * 0.25 = 2 whole microseconds.
  EXPECT_EQ(clock.now(), 2);
}

TEST(CostMeter, FractionalChargesNeverLost) {
  VirtualClock clock;
  CostParams params;
  params.compare_cost_us = 0.3;
  CostMeter meter(&clock, params);
  for (int i = 0; i < 1000; ++i) meter.charge_compare();
  // 1000 * 0.3 = 300 microseconds; allow rounding slack of 1.
  EXPECT_GE(clock.now(), 299);
  EXPECT_LE(clock.now(), 300);
}

TEST(CostMeter, ChargedUsTracksTotal) {
  CostMeter meter;
  CostParams params;
  params.hash_cost_us = 2.0;
  params.insert_cost_us = 1.0;
  meter.set_params(params);
  meter.charge_hash(2);
  meter.charge_insert(3);
  EXPECT_DOUBLE_EQ(meter.charged_us(), 7.0);
}

TEST(CostMeter, ResetCounts) {
  CostMeter meter;
  meter.charge_hash();
  meter.charge_delete(2);
  meter.reset_counts();
  EXPECT_EQ(meter.hashes(), 0u);
  EXPECT_EQ(meter.deletes(), 0u);
  EXPECT_DOUBLE_EQ(meter.charged_us(), 0.0);
}

TEST(CostMeter, ResetCountsDropsFractionalRemainder) {
  VirtualClock clock;
  CostParams params;
  params.compare_cost_us = 0.6;
  CostMeter meter(&clock, params);
  meter.charge_compare();  // 0.6 us pending, clock still at 0
  EXPECT_EQ(clock.now(), 0);
  meter.reset_counts();
  // The pending remainder must not leak into post-reset charges: another
  // 0.6 us stays below a whole microsecond.
  meter.charge_compare();
  EXPECT_EQ(clock.now(), 0);
  meter.charge_compare();
  EXPECT_EQ(clock.now(), 1);
}

TEST(CostMeter, AttachLater) {
  CostMeter meter;
  meter.charge_hash(100);  // uncharged: no clock yet
  VirtualClock clock;
  meter.attach(&clock);
  CostParams params;
  params.hash_cost_us = 1.0;
  meter.set_params(params);
  meter.charge_hash(5);
  EXPECT_EQ(clock.now(), 5);
  EXPECT_EQ(meter.hashes(), 105u);
}

TEST(CostMeter, AllCategoriesCharge) {
  VirtualClock clock;
  CostParams params;
  params.hash_cost_us = 1;
  params.compare_cost_us = 1;
  params.route_cost_us = 1;
  params.insert_cost_us = 1;
  params.delete_cost_us = 1;
  params.bucket_visit_cost_us = 1;
  CostMeter meter(&clock, params);
  meter.charge_hash();
  meter.charge_compare();
  meter.charge_route();
  meter.charge_insert();
  meter.charge_delete();
  meter.charge_bucket_visit();
  EXPECT_EQ(clock.now(), 6);
  EXPECT_EQ(meter.bucket_visits(), 1u);
}

}  // namespace
}  // namespace amri
