// Runtime lock-rank validator (the AMRI103 cross-check): per-thread
// acquisition order asserted against the statically generated ranks in
// src/common/lock_ranks.gen.hpp. Compiled in under AMRI_LOCK_RANK_CHECK
// (implied by AMRI_ASSERTIONS, i.e. every sanitizer preset).
#include <gtest/gtest.h>

#include "common/lock_ranks.gen.hpp"
#include "common/thread_annotations.hpp"

namespace amri {
namespace {

#if defined(AMRI_LOCK_RANK_CHECK)

TEST(LockRank, OrderedAcquisitionPasses) {
  Mutex low{lockrank::kMetricsRegistryMu};
  Mutex high{lockrank::kHistogramMu};
  MutexLock a(low);
  MutexLock b(high);  // strictly increasing rank: allowed
  SUCCEED();
}

TEST(LockRank, UnrankedMutexesAreExempt) {
  Mutex unranked;  // rank 0: the validator skips it entirely
  Mutex ranked{lockrank::kEventLogMu};
  MutexLock a(ranked);
  MutexLock b(unranked);
  SUCCEED();
}

TEST(LockRank, ReleaseRestoresHeadroom) {
  Mutex low{lockrank::kMetricsRegistryMu};
  Mutex high{lockrank::kHistogramMu};
  {
    MutexLock a(high);
  }
  MutexLock b(low);  // high was released: a lower rank is fine again
  SUCCEED();
}

TEST(LockRank, CondVarWaitReacquireIsClean) {
  // UniqueLock's release/reacquire cycle (the condition-variable wait
  // path) must not corrupt the per-thread rank stack.
  Mutex mu{lockrank::kThreadPoolMu};
  {
    UniqueLock lk(mu);
    lk.unlock();
    lk.lock();
  }
  Mutex high{lockrank::kHistogramMu};
  MutexLock a(mu);
  MutexLock b(high);
  SUCCEED();
}

TEST(LockRankDeathTest, InversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex low{lockrank::kShardedBitIndexShardMu};
  Mutex high{lockrank::kHistogramMu};
  EXPECT_DEATH(
      {
        MutexLock a(high);
        MutexLock b(low);
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, SameRankAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex a{lockrank::kEventLogMu};
  Mutex b{lockrank::kEventLogMu};
  EXPECT_DEATH(
      {
        MutexLock l1(a);
        MutexLock l2(b);
      },
      "lock-rank violation");
}

#else  // !AMRI_LOCK_RANK_CHECK

TEST(LockRank, ValidatorCompiledOut) {
  GTEST_SKIP() << "AMRI_LOCK_RANK_CHECK is off in this build; the "
                  "sanitizer presets compile the validator in";
}

#endif

}  // namespace
}  // namespace amri
