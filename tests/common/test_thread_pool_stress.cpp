// Concurrency stress and exception-contract tests for ThreadPool. The
// stress cases are sized to provoke data races under ThreadSanitizer
// (debug-tsan preset) while staying fast under plain builds.
#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace amri {
namespace {

TEST(ThreadPoolStress, ConcurrentSubmitters) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kSubmitters = 4;
  constexpr int kTasksEach = 500;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &counter] {
      for (int i = 0; i < kTasksEach; ++i) {
        pool.submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(counter.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPoolStress, ConcurrentWaitIdle) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  // Several threads block on the same idle barrier; all must wake.
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&pool] { pool.wait_idle(); });
  }
  for (auto& t : waiters) t.join();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolStress, ParallelForFromMultipleThreads) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> a(4096), b(4096);
  auto bump = [](std::vector<std::atomic<int>>& v) {
    return [&v](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) v[i].fetch_add(1);
    };
  };
  std::thread t1([&] { pool.parallel_for(0, a.size(), bump(a), 64); });
  std::thread t2([&] { pool.parallel_for(0, b.size(), bump(b), 64); });
  t1.join();
  t2.join();
  for (const auto& x : a) EXPECT_EQ(x.load(), 1);
  for (const auto& x : b) EXPECT_EQ(x.load(), 1);
}

TEST(ThreadPoolException, RethrownFromWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error was consumed; the pool remains usable.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolException, FirstErrorWinsAndOthersRun) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&ran, i] {
      ran.fetch_add(1);
      if (i % 10 == 0) throw std::runtime_error("task failed");
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(ran.load(), 50);  // a failing task never cancels the queue
  pool.wait_idle();           // only the first error is kept; now clean
}

TEST(ThreadPoolException, ParallelForPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(
          0, 10000,
          [](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
              if (i == 1234) throw std::logic_error("bad element");
            }
          },
          128),
      std::logic_error);
}

TEST(ThreadPoolException, InlineParallelForPropagates) {
  ThreadPool pool(1);  // single thread => inline fast path
  EXPECT_THROW(pool.parallel_for(
                   0, 10,
                   [](std::size_t, std::size_t) {
                     throw std::logic_error("inline");
                   }),
               std::logic_error);
}

TEST(ThreadPoolStop, SubmitAfterStopThrows) {
  ThreadPool pool(2);
  pool.stop();
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPoolStop, StopDrainsQueuedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.stop();  // workers drain the queue before exiting
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolStop, StopIsIdempotent) {
  ThreadPool pool(2);
  pool.stop();
  pool.stop();
  SUCCEED();  // destructor's implicit stop() must also be safe
}

}  // namespace
}  // namespace amri
