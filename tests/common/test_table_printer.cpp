#include "common/table_printer.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace amri {
namespace {

TEST(TablePrinter, AlignedOutput) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name  | value"), std::string::npos);
  EXPECT_NE(out.find("alpha | 1"), std::string::npos);
  EXPECT_NE(out.find("b     | 22"), std::string::npos);
}

TEST(TablePrinter, RowsPaddedToHeaderWidth) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(TablePrinter, CsvBasic) {
  TablePrinter t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(TablePrinter, CsvQuoting) {
  TablePrinter t({"text"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"has,comma\""), std::string::npos);
  EXPECT_NE(os.str().find("\"has\"\"quote\""), std::string::npos);
}

TEST(TablePrinter, FmtHelpers) {
  EXPECT_EQ(TablePrinter::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::fmt_int(-42), "-42");
  EXPECT_EQ(TablePrinter::fmt_pct(0.935, 1), "93.5%");
}

}  // namespace
}  // namespace amri
