#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace amri {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, UniformInclusiveBounds) {
  Rng rng(99);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(10)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, n * 0.01);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ReseedReproduces) {
  Rng rng(21);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng.next());
  rng.reseed(21);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next(), first[static_cast<std::size_t>(i)]);
}

TEST(SplitMix, KnownDistinctness) {
  SplitMix64 sm(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(sm.next());
  EXPECT_EQ(seen.size(), 1000u);
}

}  // namespace
}  // namespace amri
