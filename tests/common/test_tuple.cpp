#include "common/tuple.hpp"

#include <gtest/gtest.h>

namespace amri {
namespace {

TEST(Tuple, BasicFields) {
  Tuple t;
  t.stream = 2;
  t.ts = 1000;
  t.seq = 7;
  t.values = {10, 20, 30};
  EXPECT_EQ(t.at(0), 10);
  EXPECT_EQ(t.at(2), 30);
  EXPECT_EQ(t.values.size(), 3u);
}

TEST(Tuple, ApproxBytesInlineVsHeap) {
  Tuple small;
  small.values = {1, 2, 3};
  EXPECT_EQ(small.approx_bytes(), sizeof(Tuple));

  Tuple big;
  for (int i = 0; i < 20; ++i) big.values.push_back(i);
  EXPECT_GT(big.approx_bytes(), sizeof(Tuple));
}

TEST(Schema, NamesAndLookup) {
  Schema s("StreamA", {"priority", "package_id", "location"});
  EXPECT_EQ(s.stream_name(), "StreamA");
  EXPECT_EQ(s.num_attrs(), 3u);
  EXPECT_EQ(s.attr_name(1), "package_id");
  EXPECT_EQ(s.find_attr("location"), 2u);
  EXPECT_EQ(s.find_attr("missing"), 3u);  // == num_attrs sentinel
}

TEST(Schema, DefaultEmpty) {
  Schema s;
  EXPECT_EQ(s.num_attrs(), 0u);
}

}  // namespace
}  // namespace amri
