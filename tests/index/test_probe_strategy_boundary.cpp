// The enumerate-vs-filter crossover, pinned at its exact boundary: a
// wildcard probe enumerates the 2^wildcard_bits combinations iff
// enum_count <= occupied buckets, otherwise it filters the directory.
// probe() and probe_batch() compute the strategy independently (probe per
// call, probe_batch once per mask group), so this test drives the occupied
// count through enum_count - 1, enum_count and enum_count + 1 and asserts
// both paths pick the same strategy, visit the same buckets and charge the
// same meter counts at every step. Plus the pow2_saturating extremes that
// guarantee very wide wildcards can never flip back to enumeration.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "../test_util.hpp"
#include "common/bitops.hpp"
#include "common/cost_meter.hpp"
#include "common/rng.hpp"
#include "index/bit_address_index.hpp"
#include "telemetry/telemetry.hpp"

namespace amri::index {
namespace {

/// Strategy counters (probe.enumerated / probe.filtered) around one call.
struct StrategyDelta {
  std::uint64_t enumerated = 0;
  std::uint64_t filtered = 0;
};

class BoundaryFixture {
 public:
  BoundaryFixture()
      : idx_(JoinAttributeSet({0, 1, 2}), IndexConfig({3, 3, 2}),
             BitMapper::hashing(3), &meter_) {
    idx_.bind_telemetry(&tel_, "idx");
    enumerated_ = tel_.metrics().find_counter("idx.probe.enumerated");
    filtered_ = tel_.metrics().find_counter("idx.probe.filtered");
  }

  /// Insert random tuples until exactly `target` buckets are occupied.
  void fill_to_occupancy(std::size_t target) {
    Rng rng(4242);
    while (idx_.occupancy().occupied < target) {
      auto t = std::make_unique<Tuple>();
      t->seq = owned_.size();
      for (int a = 0; a < 3; ++a) {
        t->values.push_back(static_cast<Value>(rng.below(1u << 20)));
      }
      const std::size_t before = idx_.occupancy().occupied;
      idx_.insert(t.get());
      if (idx_.occupancy().occupied == before) {
        idx_.erase(t.get());  // landed in an occupied bucket; try again
        continue;
      }
      owned_.push_back(std::move(t));
    }
    ASSERT_EQ(idx_.occupancy().occupied, target);
  }

  StrategyDelta probe_once(const ProbeKey& key, std::vector<const Tuple*>& out,
                           ProbeStats& stats) {
    const std::uint64_t e0 = enumerated_->value();
    const std::uint64_t f0 = filtered_->value();
    stats = idx_.probe(key, out);
    return {enumerated_->value() - e0, filtered_->value() - f0};
  }

  StrategyDelta probe_batch_once(const std::vector<ProbeKey>& keys,
                                 std::vector<std::vector<const Tuple*>>& outs,
                                 std::vector<ProbeStats>& stats) {
    const std::uint64_t e0 = enumerated_->value();
    const std::uint64_t f0 = filtered_->value();
    idx_.probe_batch(keys.data(), keys.size(), outs.data(), stats.data());
    return {enumerated_->value() - e0, filtered_->value() - f0};
  }

  BitAddressIndex& index() { return idx_; }
  CostMeter& meter() { return meter_; }

 private:
  CostMeter meter_;
  telemetry::Telemetry tel_;
  BitAddressIndex idx_;
  const telemetry::Counter* enumerated_ = nullptr;
  const telemetry::Counter* filtered_ = nullptr;
  std::vector<std::unique_ptr<Tuple>> owned_;
};

struct MeterSnapshot {
  std::uint64_t hashes, compares, bucket_visits;
  explicit MeterSnapshot(const CostMeter& m)
      : hashes(m.hashes()),
        compares(m.compares()),
        bucket_visits(m.bucket_visits()) {}
  bool operator==(const MeterSnapshot& o) const {
    return hashes == o.hashes && compares == o.compares &&
           bucket_visits == o.bucket_visits;
  }
};

TEST(ProbeStrategyBoundary, CrossoverFlipsExactlyAtOccupancy) {
  // mask 0b100 binds the 2-bit attribute, leaving 6 wildcard bits:
  // enum_count = 64, so the boundary sits at 64 occupied buckets — well
  // inside the directory's 2^8 = 256 addressable buckets, so every
  // occupancy step below is actually reachable.
  constexpr std::uint64_t kEnumCount = 64;
  ProbeKey key;
  key.mask = 0b100;
  key.values = {0, 0, 7};

  struct Step {
    std::size_t occupancy;
    bool expect_enumerate;
  };
  for (const Step step : {Step{kEnumCount - 1, false}, Step{kEnumCount, true},
                          Step{kEnumCount + 1, true}}) {
    BoundaryFixture fx;
    fx.fill_to_occupancy(step.occupancy);

    std::vector<const Tuple*> single;
    ProbeStats single_stats;
    const StrategyDelta sd = fx.probe_once(key, single, single_stats);
    EXPECT_EQ(sd.enumerated, step.expect_enumerate ? 1u : 0u)
        << "occupancy " << step.occupancy;
    EXPECT_EQ(sd.filtered, step.expect_enumerate ? 0u : 1u)
        << "occupancy " << step.occupancy;
    // Enumeration visits every wildcard combination; filtering visits only
    // the occupied buckets whose id matches the bound attribute's fixed
    // bits (a data-dependent subset of the occupancy). The strategy
    // counters above, not the visit count, pin the choice.
    if (step.expect_enumerate) {
      EXPECT_EQ(single_stats.buckets_visited, kEnumCount)
          << "occupancy " << step.occupancy;
    } else {
      EXPECT_LE(single_stats.buckets_visited, step.occupancy)
          << "occupancy " << step.occupancy;
    }

    // probe_batch must make the identical choice per key, replay the same
    // bucket visits, and charge the same meter counts as sequential
    // probes. Mixed batch: the boundary mask plus a fully-bound key, so
    // the group machinery runs alongside the degenerate path.
    ProbeKey bound;
    bound.mask = 0b111;
    bound.values = {1, 2, 3};
    const std::vector<ProbeKey> keys = {key, bound, key};

    fx.meter().reset_counts();
    std::vector<std::vector<const Tuple*>> seq_outs(keys.size());
    std::vector<ProbeStats> seq_stats(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      seq_stats[i] = fx.index().probe(keys[i], seq_outs[i]);
    }
    const MeterSnapshot seq_meter(fx.meter());

    fx.meter().reset_counts();
    std::vector<std::vector<const Tuple*>> batch_outs(keys.size());
    std::vector<ProbeStats> batch_stats(keys.size());
    const StrategyDelta bd = fx.probe_batch_once(keys, batch_outs, batch_stats);
    const MeterSnapshot batch_meter(fx.meter());

    // The fully-bound key always lands on the enumerated counter
    // (enum_count == 1 <= occupancy), so the batch tallies 2 boundary keys
    // plus 1 bound key.
    EXPECT_EQ(bd.enumerated, step.expect_enumerate ? 3u : 1u)
        << "occupancy " << step.occupancy;
    EXPECT_EQ(bd.filtered, step.expect_enumerate ? 0u : 2u)
        << "occupancy " << step.occupancy;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(batch_outs[i], seq_outs[i])
          << "occupancy " << step.occupancy << ", key " << i;
      EXPECT_EQ(batch_stats[i].buckets_visited, seq_stats[i].buckets_visited)
          << "occupancy " << step.occupancy << ", key " << i;
      EXPECT_EQ(batch_stats[i].tuples_compared, seq_stats[i].tuples_compared)
          << "occupancy " << step.occupancy << ", key " << i;
      EXPECT_EQ(batch_stats[i].matches, seq_stats[i].matches)
          << "occupancy " << step.occupancy << ", key " << i;
    }
    EXPECT_TRUE(batch_meter == seq_meter)
        << "occupancy " << step.occupancy
        << ": batched charges diverge at the strategy boundary";
  }
}

TEST(ProbeStrategyBoundary, SaturatedWildcardWidthsNeverEnumerate) {
  // IndexConfig::kMaxTotalBits caps real configurations at 30 wildcard
  // bits, but the strategy predicate itself must stay safe out to the
  // 63/64-bit extremes: 2^63 is representable, 64 saturates to UINT64_MAX,
  // and neither can ever be <= a directory's occupied-bucket count (a
  // directory holds at most one bucket per inserted tuple, nowhere near
  // 2^63). So the filter path is unconditionally chosen for saturated
  // widths — no overflow back into cheap-looking enumeration.
  EXPECT_EQ(pow2_saturating(63), std::uint64_t{1} << 63);
  EXPECT_EQ(pow2_saturating(64), ~std::uint64_t{0});
  EXPECT_EQ(pow2_saturating(70), ~std::uint64_t{0});
  EXPECT_GT(pow2_saturating(63), static_cast<std::uint64_t>(1) << 40)
      << "even 2^63 dwarfs any feasible directory";
}

}  // namespace
}  // namespace amri::index
