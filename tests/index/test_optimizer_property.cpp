// Property tests for index selection: budget respected, exhaustive
// dominates greedy, more budget never hurts, and the paper-cost optimum is
// consistent with brute-force evaluation over the whole allocation space.
#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hpp"
#include "index/index_optimizer.hpp"

namespace amri::index {
namespace {

std::vector<PatternFrequency> random_patterns(Rng& rng, int n_attrs) {
  std::vector<PatternFrequency> out;
  const AttrMask universe = low_bits(n_attrs);
  double remaining = 1.0;
  for (AttrMask m = 1; m <= universe; ++m) {
    if (!rng.chance(0.4)) continue;
    const double f = rng.uniform01() * remaining * 0.5;
    out.push_back({m, f});
    remaining -= f;
  }
  // Renormalise.
  double total = 0.0;
  for (const auto& p : out) total += p.frequency;
  if (total > 0) {
    for (auto& p : out) p.frequency /= total;
  }
  return out;
}

WorkloadParams params_for(Rng& rng) {
  WorkloadParams p;
  p.lambda_d = 50.0 + rng.uniform01() * 500.0;
  p.lambda_r = 50.0 + rng.uniform01() * 500.0;
  p.window_units = 1.0 + rng.uniform01() * 30.0;
  p.hash_cost = 0.5 + rng.uniform01();
  p.compare_cost = 0.05 + rng.uniform01() * 0.5;
  return p;
}

class OptimizerProperty : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerProperty, InvariantsHold) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  const int n_attrs = 3;
  const auto patterns = random_patterns(rng, n_attrs);
  const CostModel model(params_for(rng));

  OptimizerOptions opts;
  opts.bit_budget = 1 + static_cast<int>(rng.below(10));
  opts.max_bits_per_attr = 1 + static_cast<int>(rng.below(8));
  const IndexOptimizer opt(model, opts);

  const auto ex = opt.optimize(n_attrs, patterns);
  const auto gr = opt.optimize_greedy(n_attrs, patterns);

  // Budget and per-attribute caps respected.
  EXPECT_LE(ex.config.total_bits(), opts.bit_budget);
  EXPECT_LE(gr.config.total_bits(), opts.bit_budget);
  for (std::size_t a = 0; a < 3; ++a) {
    EXPECT_LE(ex.config.bits(a), opts.max_bits_per_attr);
    EXPECT_LE(gr.config.bits(a), opts.max_bits_per_attr);
  }

  // Exhaustive is the floor.
  EXPECT_LE(ex.cost, gr.cost + 1e-9);

  // Brute-force verification of the exhaustive optimum.
  double best = std::numeric_limits<double>::infinity();
  enumerate_allocations(3, opts.bit_budget, opts.max_bits_per_attr,
                        [&](const std::vector<std::uint8_t>& alloc) {
                          best = std::min(
                              best, model.paper_cost(IndexConfig(alloc),
                                                     patterns));
                        });
  EXPECT_NEAR(ex.cost, best, 1e-9);

  // More budget never yields a worse optimum (the search space grows).
  OptimizerOptions bigger = opts;
  bigger.bit_budget = opts.bit_budget + 2;
  const IndexOptimizer opt2(model, bigger);
  EXPECT_LE(opt2.optimize(n_attrs, patterns).cost, ex.cost + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerProperty, ::testing::Range(1, 13));

TEST(OptimizerProperty, GreedyNeverExceedsZeroConfigCost) {
  // Greedy only adds bits that strictly reduce cost, so it can never end
  // worse than the zero allocation.
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const auto patterns = random_patterns(rng, 3);
    const CostModel model(params_for(rng));
    OptimizerOptions opts;
    opts.bit_budget = 8;
    opts.max_bits_per_attr = 8;
    const IndexOptimizer opt(model, opts);
    const auto gr = opt.optimize_greedy(3, patterns);
    EXPECT_LE(gr.cost,
              model.paper_cost(IndexConfig::zero(3), patterns) + 1e-9);
  }
}

}  // namespace
}  // namespace amri::index
