// Range probes on the bit-address index (paper §II join expressions
// <, >, >=, <=): correctness against brute force, pruning behaviour under
// the range mapper, and graceful wildcard fallback under the hash mapper.
#include <gtest/gtest.h>

#include <set>

#include "../test_util.hpp"
#include "index/bit_address_index.hpp"

namespace amri::index {
namespace {

JoinAttributeSet jas3() { return JoinAttributeSet({0, 1, 2}); }

std::set<const Tuple*> brute_force(const testutil::TuplePool& pool,
                                   const RangeProbeKey& key) {
  std::set<const Tuple*> out;
  const JoinAttributeSet jas = jas3();
  for (const Tuple* t : pool.pointers()) {
    if (key.matches(*t, jas)) out.insert(t);
  }
  return out;
}

TEST(RangeProbe, BindHelperTracksMaskAndBounds) {
  RangeProbeKey key;
  EXPECT_FALSE(key.bound(1));
  key.bind(1, 5, 9);
  EXPECT_TRUE(key.bound(1));
  EXPECT_EQ(key.mask, 0b010u);
  EXPECT_EQ(key.los[1], 5);
  EXPECT_EQ(key.his[1], 9);
}

TEST(RangeProbe, MatchesChecksIntervals) {
  RangeProbeKey key;
  key.bind(0, 10, 20);
  const Tuple in = testutil::make_tuple({15, 0, 0});
  const Tuple below = testutil::make_tuple({9, 0, 0});
  const Tuple above = testutil::make_tuple({21, 0, 0});
  EXPECT_TRUE(key.matches(in, jas3()));
  EXPECT_FALSE(key.matches(below, jas3()));
  EXPECT_FALSE(key.matches(above, jas3()));
}

TEST(RangeProbe, RangeMapperExactResults) {
  testutil::TuplePool pool(500, 3, 64, 7);
  BitAddressIndex idx(jas3(), IndexConfig({3, 3, 3}),
                      BitMapper::ranged({{0, 63}, {0, 63}, {0, 63}}));
  for (const Tuple* t : pool.pointers()) idx.insert(t);

  RangeProbeKey key;
  key.bind(0, 10, 30);
  key.bind(2, 0, 5);
  std::vector<const Tuple*> out;
  idx.probe_range(key, out);
  const auto expected = brute_force(pool, key);
  EXPECT_EQ(std::set<const Tuple*>(out.begin(), out.end()), expected);
  EXPECT_EQ(out.size(), expected.size());
}

TEST(RangeProbe, RangeMapperPrunesBuckets) {
  testutil::TuplePool pool(2000, 3, 64, 9);
  BitAddressIndex idx(jas3(), IndexConfig({4, 4, 0}),
                      BitMapper::ranged({{0, 63}, {0, 63}, {0, 63}}));
  for (const Tuple* t : pool.pointers()) idx.insert(t);

  // Narrow interval on attr 0 -> only a few of the 16 chunk cells.
  RangeProbeKey narrow;
  narrow.bind(0, 0, 7);  // 1/8 of the domain -> 2 cells of 16
  std::vector<const Tuple*> out;
  const auto stats = idx.probe_range(narrow, out);
  // 2 cells on attr0 x 16 wildcard cells on attr1 = 32 of 256 ids.
  EXPECT_LE(stats.buckets_visited, 40u);
  EXPECT_LT(stats.tuples_compared, 2000u / 2);
  EXPECT_EQ(std::set<const Tuple*>(out.begin(), out.end()),
            brute_force(pool, narrow));
}

TEST(RangeProbe, HashMapperStillCorrectWithoutPruning) {
  testutil::TuplePool pool(300, 3, 64, 11);
  BitAddressIndex idx(jas3(), IndexConfig({4, 4, 4}), BitMapper::hashing(3));
  for (const Tuple* t : pool.pointers()) idx.insert(t);

  RangeProbeKey key;
  key.bind(1, 20, 40);
  std::vector<const Tuple*> out;
  idx.probe_range(key, out);
  EXPECT_EQ(std::set<const Tuple*>(out.begin(), out.end()),
            brute_force(pool, key));
}

TEST(RangeProbe, HashMapperDegenerateIntervalPrunes) {
  testutil::TuplePool pool(1000, 3, 32, 13);
  BitAddressIndex idx(jas3(), IndexConfig({5, 0, 0}), BitMapper::hashing(3));
  for (const Tuple* t : pool.pointers()) idx.insert(t);

  RangeProbeKey key;
  key.bind(0, 17, 17);  // equality: hash pruning applies
  std::vector<const Tuple*> out;
  const auto stats = idx.probe_range(key, out);
  EXPECT_EQ(stats.buckets_visited, 1u);
  EXPECT_EQ(std::set<const Tuple*>(out.begin(), out.end()),
            brute_force(pool, key));
}

TEST(RangeProbe, UnboundedKeyReturnsEverything) {
  testutil::TuplePool pool(100, 3, 16, 15);
  BitAddressIndex idx(jas3(), IndexConfig({2, 2, 2}),
                      BitMapper::ranged({{0, 15}, {0, 15}, {0, 15}}));
  for (const Tuple* t : pool.pointers()) idx.insert(t);
  RangeProbeKey key;  // nothing bound
  std::vector<const Tuple*> out;
  idx.probe_range(key, out);
  EXPECT_EQ(out.size(), 100u);
}

TEST(RangeProbe, EmptyIntervalResultWhenOutOfDomain) {
  testutil::TuplePool pool(100, 3, 16, 17);
  BitAddressIndex idx(jas3(), IndexConfig({2, 2, 2}),
                      BitMapper::ranged({{0, 15}, {0, 15}, {0, 15}}));
  for (const Tuple* t : pool.pointers()) idx.insert(t);
  RangeProbeKey key;
  key.bind(0, 100, 200);  // outside the generated domain
  std::vector<const Tuple*> out;
  idx.probe_range(key, out);
  EXPECT_TRUE(out.empty());
}

TEST(RangeProbe, ZeroBitConfigScansSingleBucket) {
  testutil::TuplePool pool(50, 3, 16, 19);
  BitAddressIndex idx(jas3(), IndexConfig::zero(3), BitMapper::hashing(3));
  for (const Tuple* t : pool.pointers()) idx.insert(t);
  RangeProbeKey key;
  key.bind(1, 3, 8);
  std::vector<const Tuple*> out;
  const auto stats = idx.probe_range(key, out);
  EXPECT_EQ(stats.tuples_compared, 50u);
  EXPECT_EQ(std::set<const Tuple*>(out.begin(), out.end()),
            brute_force(pool, key));
}

// Property sweep: random intervals over random configs must match brute
// force exactly, for both mappers.
class RangeProbeProperty : public ::testing::TestWithParam<int> {};

TEST_P(RangeProbeProperty, MatchesBruteForce) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed);
  testutil::TuplePool pool(400, 3, 100, seed * 3 + 1);
  const bool ranged = (seed % 2) == 0;
  std::vector<std::uint8_t> bits = {
      static_cast<std::uint8_t>(rng.below(5)),
      static_cast<std::uint8_t>(rng.below(5)),
      static_cast<std::uint8_t>(rng.below(5))};
  BitAddressIndex idx(
      jas3(), IndexConfig(bits),
      ranged ? BitMapper::ranged({{0, 99}, {0, 99}, {0, 99}})
             : BitMapper::hashing(3));
  for (const Tuple* t : pool.pointers()) idx.insert(t);

  for (int trial = 0; trial < 20; ++trial) {
    RangeProbeKey key;
    for (std::size_t pos = 0; pos < 3; ++pos) {
      if (rng.chance(0.5)) {
        const Value a = static_cast<Value>(rng.below(100));
        const Value b = static_cast<Value>(rng.below(100));
        key.bind(pos, std::min(a, b), std::max(a, b));
      }
    }
    std::vector<const Tuple*> out;
    idx.probe_range(key, out);
    EXPECT_EQ(std::set<const Tuple*>(out.begin(), out.end()),
              brute_force(pool, key))
        << "seed=" << seed << " trial=" << trial;
    EXPECT_EQ(out.size(),
              std::set<const Tuple*>(out.begin(), out.end()).size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeProbeProperty, ::testing::Range(1, 11));

}  // namespace
}  // namespace amri::index
