#include "index/ordered_index.hpp"

#include <gtest/gtest.h>

#include <set>

#include "../test_util.hpp"
#include "index/scan_index.hpp"

namespace amri::index {
namespace {

JoinAttributeSet jas3() { return JoinAttributeSet({0, 1, 2}); }

TEST(OrderedIndex, EqualityProbeFindsAllKeyMatches) {
  OrderedIndex idx(jas3(), 0);
  testutil::TuplePool pool(200, 3, 10, 3);
  for (const Tuple* t : pool.pointers()) idx.insert(t);
  ProbeKey key;
  key.mask = 0b001;
  key.values = {4, 0, 0};
  std::vector<const Tuple*> out;
  idx.probe(key, out);
  std::size_t expected = 0;
  for (const Tuple* t : pool.pointers()) {
    if (t->at(0) == 4) ++expected;
  }
  EXPECT_EQ(out.size(), expected);
}

TEST(OrderedIndex, SecondaryAttributesVerified) {
  OrderedIndex idx(jas3(), 0);
  const Tuple a = testutil::make_tuple({1, 5, 0}, 1);
  const Tuple b = testutil::make_tuple({1, 6, 0}, 2);
  idx.insert(&a);
  idx.insert(&b);
  ProbeKey key;
  key.mask = 0b011;
  key.values = {1, 6, 0};
  std::vector<const Tuple*> out;
  idx.probe(key, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], &b);
}

TEST(OrderedIndex, EraseSpecificDuplicate) {
  OrderedIndex idx(jas3(), 1);
  const Tuple a = testutil::make_tuple({0, 7, 0}, 1);
  const Tuple b = testutil::make_tuple({0, 7, 0}, 2);
  idx.insert(&a);
  idx.insert(&b);
  idx.erase(&a);
  EXPECT_EQ(idx.size(), 1u);
  ProbeKey key;
  key.mask = 0b010;
  key.values = {0, 7, 0};
  std::vector<const Tuple*> out;
  idx.probe(key, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], &b);
}

TEST(OrderedIndex, RangeProbeWalksInterval) {
  OrderedIndex idx(jas3(), 2);
  testutil::TuplePool pool(300, 3, 50, 5);
  for (const Tuple* t : pool.pointers()) idx.insert(t);
  RangeProbeKey key;
  key.bind(2, 10, 19);
  std::vector<const Tuple*> out;
  const auto stats = idx.probe_range(key, out);
  std::set<const Tuple*> expected;
  for (const Tuple* t : pool.pointers()) {
    if (t->at(2) >= 10 && t->at(2) <= 19) expected.insert(t);
  }
  EXPECT_EQ(std::set<const Tuple*>(out.begin(), out.end()), expected);
  // Only the interval's keys were compared, not the whole table.
  EXPECT_LT(stats.tuples_compared, 300u);
  EXPECT_EQ(stats.tuples_compared, expected.size());
}

TEST(OrderedIndex, RangeProbeVerifiesOtherBounds) {
  OrderedIndex idx(jas3(), 0);
  testutil::TuplePool pool(200, 3, 20, 7);
  ScanIndex reference(jas3());
  for (const Tuple* t : pool.pointers()) {
    idx.insert(t);
    reference.insert(t);
  }
  RangeProbeKey key;
  key.bind(0, 5, 15);
  key.bind(2, 0, 4);
  std::vector<const Tuple*> out;
  idx.probe_range(key, out);
  for (const Tuple* t : out) {
    EXPECT_GE(t->at(0), 5);
    EXPECT_LE(t->at(0), 15);
    EXPECT_LE(t->at(2), 4);
  }
  std::size_t expected = 0;
  for (const Tuple* t : pool.pointers()) {
    if (t->at(0) >= 5 && t->at(0) <= 15 && t->at(2) <= 4) ++expected;
  }
  EXPECT_EQ(out.size(), expected);
}

TEST(OrderedIndex, UnboundedRangeReturnsAll) {
  OrderedIndex idx(jas3(), 0);
  testutil::TuplePool pool(50, 3, 10, 9);
  for (const Tuple* t : pool.pointers()) idx.insert(t);
  RangeProbeKey key;  // nothing bound
  std::vector<const Tuple*> out;
  idx.probe_range(key, out);
  EXPECT_EQ(out.size(), 50u);
}

TEST(OrderedIndex, TracksCostAndMemory) {
  CostMeter meter;
  MemoryTracker mem;
  {
    OrderedIndex idx(jas3(), 0, &meter, &mem);
    const Tuple t = testutil::make_tuple({1, 2, 3});
    idx.insert(&t);
    EXPECT_EQ(meter.hashes(), 1u);
    EXPECT_EQ(meter.inserts(), 1u);
    EXPECT_GT(mem.total(), 0u);
  }
  EXPECT_EQ(mem.total(), 0u);
}

TEST(OrderedIndex, NameAndClear) {
  OrderedIndex idx(jas3(), 2);
  EXPECT_EQ(idx.name(), "ordered(pos=2)");
  const Tuple t = testutil::make_tuple({1, 2, 3});
  idx.insert(&t);
  idx.clear();
  EXPECT_EQ(idx.size(), 0u);
}

}  // namespace
}  // namespace amri::index
