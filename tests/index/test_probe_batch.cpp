// The batched probe contract (TupleIndex::probe_batch): every
// implementation — the default per-key loop, BitAddressIndex's grouped
// override, and ShardedBitIndex's per-shard dispatch — must reproduce N
// single probe() calls exactly: same per-key match vectors (same order),
// same per-key ProbeStats, same summed ProbeStats, and the same cost-meter
// counters (shared batch computations are charged once per key they
// serve). Exercised under random index configurations and random access
// patterns, including the empty mask (full fan-out) and fully-bound keys.
#include <gtest/gtest.h>

#include <vector>

#include "../test_util.hpp"
#include "common/cost_meter.hpp"
#include "common/rng.hpp"
#include "index/bit_address_index.hpp"
#include "index/sharded_bit_index.hpp"

namespace amri::index {
namespace {

TEST(ProbeStats, AccumulatesComponentwise) {
  ProbeStats a{1, 2, 3};
  const ProbeStats b{10, 20, 30};
  a += b;
  EXPECT_EQ(a.buckets_visited, 11u);
  EXPECT_EQ(a.tuples_compared, 22u);
  EXPECT_EQ(a.matches, 33u);
  (a += b) += b;  // returns *this, so accumulation chains
  EXPECT_EQ(a.matches, 93u);
}

IndexConfig random_config(Rng& rng) {
  std::vector<std::uint8_t> bits(3);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.below(4));
  return IndexConfig(bits);
}

std::vector<ProbeKey> random_keys(Rng& rng, std::size_t n,
                                  const std::vector<const Tuple*>& live,
                                  const JoinAttributeSet& jas, Value domain) {
  std::vector<ProbeKey> keys(n);
  for (auto& key : keys) {
    key.mask = static_cast<AttrMask>(rng.below(8));  // includes 0 (fan-out)
    for (std::size_t pos = 0; pos < 3; ++pos) {
      const Value v =
          (!live.empty() && rng.chance(0.6))
              ? live[rng.below(live.size())]->at(jas.tuple_attr(pos))
              : static_cast<Value>(rng.below(static_cast<std::uint64_t>(domain)));
      key.values.push_back(v);
    }
  }
  return keys;
}

struct MeterSnapshot {
  std::uint64_t hashes, compares, bucket_visits;
  explicit MeterSnapshot(const CostMeter& m)
      : hashes(m.hashes()),
        compares(m.compares()),
        bucket_visits(m.bucket_visits()) {}
  bool operator==(const MeterSnapshot& o) const {
    return hashes == o.hashes && compares == o.compares &&
           bucket_visits == o.bucket_visits;
  }
};

/// One round: same tuples into four identically-configured indexes, one
/// random key batch, all probe paths compared key-by-key and on meters.
void run_round(std::uint64_t seed, std::size_t shards) {
  const Value kDomain = 24;
  Rng rng(seed);
  const JoinAttributeSet jas({0, 1, 2});
  const IndexConfig config = random_config(rng);
  const BitMapper mapper = BitMapper::hashing(3);

  CostMeter ref_meter, grouped_meter, default_meter, sharded_meter;
  BitAddressIndex ref(jas, config, mapper, &ref_meter);
  BitAddressIndex grouped(jas, config, mapper, &grouped_meter);
  BitAddressIndex defaulted(jas, config, mapper, &default_meter);
  ShardedBitIndex sharded(jas, config, mapper, shards, /*shard_pos=*/1,
                          /*pool=*/nullptr, &sharded_meter);
  CostMeter sharded_ref_meter;
  ShardedBitIndex sharded_ref(jas, config, mapper, shards, /*shard_pos=*/1,
                              /*pool=*/nullptr, &sharded_ref_meter);

  testutil::TuplePool pool(600, 3, static_cast<int>(kDomain), seed + 1);
  const auto live = pool.pointers();
  for (const Tuple* t : live) {
    ref.insert(t);
    grouped.insert(t);
    defaulted.insert(t);
    sharded.insert(t);
    sharded_ref.insert(t);
  }
  // Insertion charges differ between wrapper and plain index; probes are
  // what this test compares, so zero everything here.
  ref_meter.reset_counts();
  grouped_meter.reset_counts();
  default_meter.reset_counts();
  sharded_meter.reset_counts();
  sharded_ref_meter.reset_counts();

  const std::size_t n = 64 + rng.below(64);
  const auto keys = random_keys(rng, n, live, jas, kDomain);

  std::vector<std::vector<const Tuple*>> want(n);
  std::vector<ProbeStats> want_stats(n);
  for (std::size_t i = 0; i < n; ++i) {
    want_stats[i] = ref.probe(keys[i], want[i]);
  }
  std::vector<std::vector<const Tuple*>> sh_want(n);
  std::vector<ProbeStats> sh_want_stats(n);
  for (std::size_t i = 0; i < n; ++i) {
    sh_want_stats[i] = sharded_ref.probe(keys[i], sh_want[i]);
  }

  std::vector<std::vector<const Tuple*>> got_grouped(n), got_default(n),
      got_sharded(n);
  std::vector<ProbeStats> grouped_stats(n), default_stats(n), sharded_stats(n);
  grouped.probe_batch(keys.data(), n, got_grouped.data(), grouped_stats.data());
  defaulted.TupleIndex::probe_batch(keys.data(), n, got_default.data(),
                                    default_stats.data());
  sharded.probe_batch(keys.data(), n, got_sharded.data(), sharded_stats.data());

  ProbeStats want_sum, grouped_sum, default_sum, sharded_sum;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(got_grouped[i], want[i]) << "grouped matches, key " << i;
    EXPECT_EQ(got_default[i], want[i]) << "default matches, key " << i;
    EXPECT_EQ(got_sharded[i], sh_want[i]) << "sharded matches, key " << i;
    EXPECT_EQ(grouped_stats[i].buckets_visited, want_stats[i].buckets_visited)
        << "key " << i;
    EXPECT_EQ(grouped_stats[i].tuples_compared, want_stats[i].tuples_compared)
        << "key " << i;
    EXPECT_EQ(grouped_stats[i].matches, want_stats[i].matches) << "key " << i;
    EXPECT_EQ(default_stats[i].matches, want_stats[i].matches) << "key " << i;
    EXPECT_EQ(sharded_stats[i].buckets_visited,
              sh_want_stats[i].buckets_visited)
        << "key " << i;
    EXPECT_EQ(sharded_stats[i].tuples_compared,
              sh_want_stats[i].tuples_compared)
        << "key " << i;
    EXPECT_EQ(sharded_stats[i].matches, sh_want_stats[i].matches)
        << "key " << i;
    want_sum += want_stats[i];
    grouped_sum += grouped_stats[i];
    default_sum += default_stats[i];
    sharded_sum += sharded_stats[i];
  }
  EXPECT_EQ(grouped_sum.matches, want_sum.matches);
  EXPECT_EQ(grouped_sum.tuples_compared, want_sum.tuples_compared);
  EXPECT_EQ(grouped_sum.buckets_visited, want_sum.buckets_visited);
  EXPECT_EQ(default_sum.matches, want_sum.matches);
  EXPECT_EQ(sharded_sum.matches, grouped_sum.matches)
      << "partitioning must not change the match count";

  // Cost parity: shared group work (wildcard enumeration, fixed masks) is
  // still charged once per key it serves, so the meters agree exactly.
  EXPECT_TRUE(MeterSnapshot(grouped_meter) == MeterSnapshot(ref_meter))
      << "grouped batch charges diverge from sequential probes";
  EXPECT_TRUE(MeterSnapshot(default_meter) == MeterSnapshot(ref_meter))
      << "default batch loop charges diverge from sequential probes";
  EXPECT_TRUE(MeterSnapshot(sharded_meter) == MeterSnapshot(sharded_ref_meter))
      << "sharded batch charges diverge from sequential sharded probes";
}

TEST(ProbeBatch, MatchesSequentialProbesUnsharded) {
  for (std::uint64_t seed = 40; seed < 48; ++seed) run_round(seed, 1);
}

TEST(ProbeBatch, MatchesSequentialProbesSharded) {
  for (std::uint64_t seed = 50; seed < 56; ++seed) run_round(seed, 4);
  run_round(77, 7);
}

TEST(ProbeBatch, SingleKeyAndEmptyBatchDegenerate) {
  const JoinAttributeSet jas({0, 1, 2});
  BitAddressIndex idx(jas, IndexConfig({2, 1, 1}), BitMapper::hashing(3));
  testutil::TuplePool pool(50, 3, 8, 5);
  for (const Tuple* t : pool.pointers()) idx.insert(t);
  ProbeKey key;
  key.mask = 0b101;
  key.values = {pool.at(0)->at(0), 0, pool.at(0)->at(2)};
  std::vector<const Tuple*> single, batched;
  const ProbeStats want = idx.probe(key, single);
  ProbeStats got{};
  idx.probe_batch(&key, 1, &batched, &got);
  EXPECT_EQ(batched, single);
  EXPECT_EQ(got.matches, want.matches);
  idx.probe_batch(&key, 0, nullptr, nullptr);  // n == 0 is a no-op
}

}  // namespace
}  // namespace amri::index
