#include "index/bit_address_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "../test_util.hpp"

namespace amri::index {
namespace {

JoinAttributeSet jas3() { return JoinAttributeSet({0, 1, 2}); }

ProbeKey key_for(AttrMask mask, std::initializer_list<Value> vals) {
  ProbeKey k;
  k.mask = mask;
  for (const Value v : vals) k.values.push_back(v);
  return k;
}

TEST(BitAddressIndex, InsertProbeExactPattern) {
  BitAddressIndex idx(jas3(), IndexConfig({4, 4, 4}),
                      BitMapper::hashing(3));
  const Tuple t1 = testutil::make_tuple({1, 2, 3}, 1);
  const Tuple t2 = testutil::make_tuple({1, 2, 4}, 2);
  idx.insert(&t1);
  idx.insert(&t2);
  EXPECT_EQ(idx.size(), 2u);

  std::vector<const Tuple*> out;
  const auto stats = idx.probe(key_for(0b111, {1, 2, 3}), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], &t1);
  EXPECT_EQ(stats.matches, 1u);
  // Fully bound probe touches exactly one bucket.
  EXPECT_EQ(stats.buckets_visited, 1u);
}

TEST(BitAddressIndex, WildcardProbeEnumeratesBuckets) {
  BitAddressIndex idx(jas3(), IndexConfig({2, 2, 2}),
                      BitMapper::hashing(3));
  testutil::TuplePool pool(200, 3, 50, 9);
  for (const Tuple* t : pool.pointers()) idx.insert(t);

  // Bind only attribute 0: 4 bits of wildcard -> up to 16 candidate ids.
  std::vector<const Tuple*> out;
  const Value v = pool.at(0)->at(0);
  const auto stats = idx.probe(key_for(0b001, {v, 0, 0}), out);
  EXPECT_GT(stats.buckets_visited, 1u);
  // Every returned tuple really matches.
  for (const Tuple* t : out) EXPECT_EQ(t->at(0), v);
  // And every stored match was found.
  std::size_t expected = 0;
  for (const Tuple* t : pool.pointers()) {
    if (t->at(0) == v) ++expected;
  }
  EXPECT_EQ(out.size(), expected);
}

TEST(BitAddressIndex, UnindexedAttributeVerifiedByComparison) {
  // Attribute 2 has no bits: probes binding it still verify via compare.
  BitAddressIndex idx(jas3(), IndexConfig({4, 4, 0}),
                      BitMapper::hashing(3));
  const Tuple a = testutil::make_tuple({1, 2, 3}, 1);
  const Tuple b = testutil::make_tuple({1, 2, 4}, 2);
  idx.insert(&a);
  idx.insert(&b);
  std::vector<const Tuple*> out;
  idx.probe(key_for(0b111, {1, 2, 4}), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], &b);
}

TEST(BitAddressIndex, EraseRemovesTuple) {
  BitAddressIndex idx(jas3(), IndexConfig({3, 3, 3}),
                      BitMapper::hashing(3));
  const Tuple t = testutil::make_tuple({9, 9, 9}, 1);
  idx.insert(&t);
  idx.erase(&t);
  EXPECT_EQ(idx.size(), 0u);
  std::vector<const Tuple*> out;
  idx.probe(key_for(0b111, {9, 9, 9}), out);
  EXPECT_TRUE(out.empty());
}

TEST(BitAddressIndex, EraseMissingIsNoop) {
  BitAddressIndex idx(jas3(), IndexConfig({2, 2, 2}),
                      BitMapper::hashing(3));
  const Tuple t = testutil::make_tuple({1, 1, 1});
  idx.erase(&t);
  EXPECT_EQ(idx.size(), 0u);
}

TEST(BitAddressIndex, DuplicateValuesCoexist) {
  BitAddressIndex idx(jas3(), IndexConfig({2, 2, 2}),
                      BitMapper::hashing(3));
  const Tuple t1 = testutil::make_tuple({5, 5, 5}, 1);
  const Tuple t2 = testutil::make_tuple({5, 5, 5}, 2);
  idx.insert(&t1);
  idx.insert(&t2);
  std::vector<const Tuple*> out;
  idx.probe(key_for(0b111, {5, 5, 5}), out);
  EXPECT_EQ(out.size(), 2u);
  idx.erase(&t1);
  out.clear();
  idx.probe(key_for(0b111, {5, 5, 5}), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], &t2);
}

TEST(BitAddressIndex, ZeroBitConfigActsAsScan) {
  BitAddressIndex idx(jas3(), IndexConfig::zero(3), BitMapper::hashing(3));
  testutil::TuplePool pool(50, 3, 10, 2);
  for (const Tuple* t : pool.pointers()) idx.insert(t);
  EXPECT_EQ(idx.occupied_buckets(), 1u);  // everything in bucket 0
  std::vector<const Tuple*> out;
  const auto stats = idx.probe(key_for(0b001, {pool.at(0)->at(0), 0, 0}), out);
  EXPECT_EQ(stats.tuples_compared, 50u);
  EXPECT_FALSE(out.empty());
}

TEST(BitAddressIndex, ChargesHashesToMeter) {
  CostMeter meter;
  BitAddressIndex idx(jas3(), IndexConfig({4, 0, 4}), BitMapper::hashing(3),
                      &meter);
  const Tuple t = testutil::make_tuple({1, 2, 3});
  idx.insert(&t);
  // Two indexed attributes -> two hash charges (N_A · C_h).
  EXPECT_EQ(meter.hashes(), 2u);
  EXPECT_EQ(meter.inserts(), 1u);
}

TEST(BitAddressIndex, ChargesProbeHashesOnlyForBoundIndexedAttrs) {
  CostMeter meter;
  BitAddressIndex idx(jas3(), IndexConfig({4, 4, 0}), BitMapper::hashing(3),
                      &meter);
  std::vector<const Tuple*> out;
  meter.reset_counts();
  // Bind attrs 0 and 2; only attr 0 is indexed -> exactly 1 hash.
  idx.probe(key_for(0b101, {1, 0, 3}), out);
  EXPECT_EQ(meter.hashes(), 1u);
}

TEST(BitAddressIndex, TracksMemory) {
  MemoryTracker mem;
  testutil::TuplePool pool(100, 3, 1000, 5);
  {
    BitAddressIndex idx(jas3(), IndexConfig({4, 4, 4}),
                        BitMapper::hashing(3), nullptr, &mem);
    for (const Tuple* t : pool.pointers()) idx.insert(t);
    EXPECT_GT(mem.category(MemCategory::kIndexStructure), 0u);
  }
  // Destructor releases everything.
  EXPECT_EQ(mem.category(MemCategory::kIndexStructure), 0u);
}

TEST(BitAddressIndex, ReconfigurePreservesTupleSet) {
  BitAddressIndex idx(jas3(), IndexConfig({6, 0, 0}), BitMapper::hashing(3));
  testutil::TuplePool pool(300, 3, 20, 11);
  for (const Tuple* t : pool.pointers()) idx.insert(t);
  idx.reconfigure(IndexConfig({2, 2, 2}));
  EXPECT_EQ(idx.size(), 300u);
  EXPECT_EQ(idx.config(), IndexConfig({2, 2, 2}));

  // Every tuple still findable under the new IC.
  std::vector<const Tuple*> out;
  const Tuple* t0 = pool.at(0);
  idx.probe(key_for(0b111, {t0->at(0), t0->at(1), t0->at(2)}), out);
  EXPECT_NE(std::find(out.begin(), out.end(), t0), out.end());
}

TEST(BitAddressIndex, ReconfigureChargesRehash) {
  CostMeter meter;
  BitAddressIndex idx(jas3(), IndexConfig({4, 0, 0}), BitMapper::hashing(3),
                      &meter);
  testutil::TuplePool pool(10, 3, 100, 3);
  for (const Tuple* t : pool.pointers()) idx.insert(t);
  meter.reset_counts();
  idx.reconfigure(IndexConfig({2, 2, 2}));
  // 10 tuples x 3 indexed attrs.
  EXPECT_EQ(meter.hashes(), 30u);
}

TEST(BitAddressIndex, RangeMapperGroupsNeighbors) {
  BitAddressIndex idx(JoinAttributeSet({0}), IndexConfig({2}),
                      BitMapper::ranged({{0, 15}}));
  std::vector<Tuple> tuples;
  tuples.reserve(16);
  for (Value v = 0; v < 16; ++v) tuples.push_back(testutil::make_tuple({v}));
  for (const Tuple& t : tuples) idx.insert(&t);
  EXPECT_EQ(idx.occupied_buckets(), 4u);  // 4 equi-width cells
}

TEST(BitAddressIndex, ForEachTupleVisitsAll) {
  BitAddressIndex idx(jas3(), IndexConfig({3, 3, 3}), BitMapper::hashing(3));
  testutil::TuplePool pool(64, 3, 8, 21);
  for (const Tuple* t : pool.pointers()) idx.insert(t);
  std::size_t visited = 0;
  idx.for_each_tuple([&](const Tuple*) { ++visited; });
  EXPECT_EQ(visited, 64u);
}

TEST(BitAddressIndex, ClearEmptiesAndReleasesMemory) {
  MemoryTracker mem;
  BitAddressIndex idx(jas3(), IndexConfig({3, 3, 3}), BitMapper::hashing(3),
                      nullptr, &mem);
  testutil::TuplePool pool(32, 3, 8, 22);
  for (const Tuple* t : pool.pointers()) idx.insert(t);
  idx.clear();
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_EQ(idx.occupied_buckets(), 0u);
  EXPECT_EQ(mem.category(MemCategory::kIndexStructure), 0u);
}

TEST(BitAddressIndex, InvariantsHoldAcrossMutations) {
  BitAddressIndex idx(jas3(), IndexConfig({3, 3, 0}), BitMapper::hashing(3));
  testutil::TuplePool pool(300, 3, 16, 77);
  for (const Tuple* t : pool.pointers()) idx.insert(t);
  idx.check_invariants();
  idx.reconfigure(IndexConfig({2, 2, 2}));
  idx.check_invariants();
  for (std::size_t i = 0; i < 150; ++i) idx.erase(pool.at(i));
  idx.check_invariants();
  idx.clear();
  idx.check_invariants();
}

}  // namespace
}  // namespace amri::index
