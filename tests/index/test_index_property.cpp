// Property tests: for any index configuration and any probe, the
// bit-address index must return exactly the tuples a full scan returns —
// the IC changes cost, never correctness. Parameterized across ICs,
// mappers, and access patterns.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "../test_util.hpp"
#include "index/bit_address_index.hpp"
#include "index/scan_index.hpp"

namespace amri::index {
namespace {

struct PropertyCase {
  std::vector<std::uint8_t> bits;
  bool range_mapper;
  AttrMask probe_mask;
};

class BitAddressEquivalence
    : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(BitAddressEquivalence, ProbeMatchesScanExactly) {
  const PropertyCase& pc = GetParam();
  const JoinAttributeSet jas({0, 1, 2});
  const std::int64_t domain = 25;
  BitMapper mapper =
      pc.range_mapper
          ? BitMapper::ranged({{0, domain - 1}, {0, domain - 1}, {0, domain - 1}})
          : BitMapper::hashing(3);
  BitAddressIndex bai(jas, IndexConfig(pc.bits), std::move(mapper));
  ScanIndex scan(jas);

  testutil::TuplePool pool(400, 3, domain, 0xabc);
  for (const Tuple* t : pool.pointers()) {
    bai.insert(t);
    scan.insert(t);
  }

  Rng rng(0xdef);
  for (int trial = 0; trial < 30; ++trial) {
    ProbeKey key;
    key.mask = pc.probe_mask;
    key.values.resize(3, 0);
    for_each_bit(key.mask, [&](unsigned pos) {
      key.values[pos] = static_cast<Value>(rng.below(
          static_cast<std::uint64_t>(domain)));
    });
    std::vector<const Tuple*> via_bai;
    std::vector<const Tuple*> via_scan;
    bai.probe(key, via_bai);
    scan.probe(key, via_scan);
    std::set<const Tuple*> a(via_bai.begin(), via_bai.end());
    std::set<const Tuple*> b(via_scan.begin(), via_scan.end());
    EXPECT_EQ(a, b) << "mask=" << pc.probe_mask;
    EXPECT_EQ(via_bai.size(), a.size()) << "duplicate results";
  }
}

std::vector<PropertyCase> property_cases() {
  std::vector<PropertyCase> cases;
  const std::vector<std::vector<std::uint8_t>> configs = {
      {0, 0, 0}, {4, 0, 0}, {0, 0, 6}, {2, 2, 2},
      {5, 2, 3}, {1, 1, 1}, {8, 0, 2}, {3, 3, 3},
  };
  for (const auto& bits : configs) {
    for (const bool ranged : {false, true}) {
      for (const AttrMask mask : {0u, 0b001u, 0b010u, 0b100u, 0b011u,
                                  0b101u, 0b110u, 0b111u}) {
        cases.push_back(PropertyCase{bits, ranged, mask});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigsAllPatterns, BitAddressEquivalence,
    ::testing::ValuesIn(property_cases()),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      std::string name = "ic";
      for (const auto b : info.param.bits) {
        name += std::to_string(static_cast<int>(b));
      }
      name += info.param.range_mapper ? "_range" : "_hash";
      name += "_ap" + std::to_string(info.param.probe_mask);
      return name;
    });

// Insert/erase interleavings must leave the index consistent with a scan.
class BitAddressChurn : public ::testing::TestWithParam<int> {};

TEST_P(BitAddressChurn, InterleavedInsertEraseStaysConsistent) {
  const JoinAttributeSet jas({0, 1, 2});
  BitAddressIndex bai(jas, IndexConfig({3, 2, 1}), BitMapper::hashing(3));
  ScanIndex scan(jas);
  testutil::TuplePool pool(300, 3, 15, static_cast<std::uint64_t>(GetParam()));
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 1);

  std::vector<const Tuple*> live;
  const auto all = pool.pointers();
  std::size_t next = 0;
  for (int step = 0; step < 600; ++step) {
    const bool insert = live.empty() || (next < all.size() && rng.chance(0.6));
    if (insert && next < all.size()) {
      bai.insert(all[next]);
      scan.insert(all[next]);
      live.push_back(all[next]);
      ++next;
    } else if (!live.empty()) {
      const std::size_t victim = rng.below(live.size());
      bai.erase(live[victim]);
      scan.erase(live[victim]);
      live[victim] = live.back();
      live.pop_back();
    }
  }
  EXPECT_EQ(bai.size(), live.size());

  for (int trial = 0; trial < 10; ++trial) {
    ProbeKey key;
    key.mask = static_cast<AttrMask>(rng.below(8));
    key.values.resize(3, 0);
    for_each_bit(key.mask, [&](unsigned pos) {
      key.values[pos] = static_cast<Value>(rng.below(15));
    });
    std::vector<const Tuple*> via_bai;
    std::vector<const Tuple*> via_scan;
    bai.probe(key, via_bai);
    scan.probe(key, via_scan);
    std::set<const Tuple*> a(via_bai.begin(), via_bai.end());
    std::set<const Tuple*> b(via_scan.begin(), via_scan.end());
    EXPECT_EQ(a, b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitAddressChurn, ::testing::Range(1, 9));

}  // namespace
}  // namespace amri::index
