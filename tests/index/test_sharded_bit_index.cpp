// ShardedBitIndex vs a single BitAddressIndex, driven through the same
// seeded mixed sequence of insert / erase / probe / migrate operations.
// The sharded wrapper must agree on every logical observable: match
// multisets, match counts, size, and post-migration contents. Work counts
// are compared route-aware: a fan-out probe visits every shard and
// compares exactly the reference's tuples, while a targeted probe visits
// only the owning shard and so may compare strictly fewer (bucket
// co-residents that live in other shards are pruned — the whole point of
// sharding on the bound attribute). Bucket-visit counts may legitimately
// differ either way (a bucket id occupied once in the single index can be
// occupied in several shards), so they are not compared.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "../test_util.hpp"
#include "common/rng.hpp"
#include "index/index_migrator.hpp"
#include "index/sharded_bit_index.hpp"

namespace amri::index {
namespace {

IndexConfig random_config(Rng& rng) {
  std::vector<std::uint8_t> bits(3);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.below(4));
  return IndexConfig(bits);
}

void run_differential(std::size_t shards, std::uint64_t seed,
                      std::size_t total_ops) {
  const Value kDomain = 60;
  JoinAttributeSet jas({0, 1, 2});
  IndexConfig config({3, 2, 2});
  const BitMapper mapper = BitMapper::hashing(3);
  BitAddressIndex ref(jas, config, mapper);
  ShardedBitIndex idx(jas, config, mapper, shards, /*shard_pos=*/1);
  const IndexMigrator migrator;

  testutil::TuplePool pool(3000, 3, static_cast<int>(kDomain), seed + 1);
  std::vector<const Tuple*> free_list = pool.pointers();
  std::vector<const Tuple*> live;
  Rng rng(seed);

  std::size_t targeted = 0;
  std::size_t fanned_out = 0;
  for (std::size_t op = 0; op < total_ops; ++op) {
    const std::size_t dice = rng.below(100);
    if (dice < 45 && !free_list.empty()) {
      const std::size_t pick = rng.below(free_list.size());
      const Tuple* t = free_list[pick];
      free_list[pick] = free_list.back();
      free_list.pop_back();
      idx.insert(t);
      ref.insert(t);
      live.push_back(t);
    } else if (dice < 65 && !live.empty()) {
      const std::size_t pick = rng.below(live.size());
      const Tuple* t = live[pick];
      live[pick] = live.back();
      live.pop_back();
      idx.erase(t);
      ref.erase(t);
      free_list.push_back(t);
    } else if (dice < 96) {
      ProbeKey key;
      key.mask = static_cast<AttrMask>(rng.below(8));
      for (std::size_t pos = 0; pos < 3; ++pos) {
        const Value v =
            (!live.empty() && rng.chance(0.5))
                ? live[rng.below(live.size())]->at(jas.tuple_attr(pos))
                : static_cast<Value>(
                      rng.below(static_cast<std::uint64_t>(kDomain)));
        key.values.push_back(v);
      }
      const bool is_targeted = idx.target_shard(key) < idx.shard_count();
      if (is_targeted) {
        ++targeted;
      } else {
        ++fanned_out;
      }
      std::vector<const Tuple*> got;
      std::vector<const Tuple*> want;
      const ProbeStats got_stats = idx.probe(key, got);
      const ProbeStats want_stats = ref.probe(key, want);
      EXPECT_EQ(got_stats.matches, want_stats.matches) << "op " << op;
      if (is_targeted) {
        // Only the owning shard is searched: never more work than the
        // reference, often less (partition pruning).
        EXPECT_LE(got_stats.tuples_compared, want_stats.tuples_compared)
            << "op " << op;
      } else {
        EXPECT_EQ(got_stats.tuples_compared, want_stats.tuples_compared)
            << "op " << op;
      }
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      EXPECT_EQ(got, want) << "op " << op;
    } else {
      const IndexConfig next = random_config(rng);
      const auto report = idx.migrate_shards(next, migrator);
      const auto ref_report = migrator.migrate(ref, next);
      EXPECT_EQ(report.tuples_moved, ref_report.tuples_moved) << "op " << op;
      EXPECT_EQ(report.hashes_charged, ref_report.hashes_charged)
          << "op " << op;
      EXPECT_LE(report.max_shard_hashes, report.hashes_charged);
      EXPECT_EQ(idx.config(), next);
    }

    EXPECT_EQ(idx.size(), ref.size()) << "op " << op;
    if (op % 1000 == 0) idx.check_invariants();
    if (::testing::Test::HasFailure()) {
      FAIL() << "first divergence at op " << op;
    }
  }
  // The mix must have exercised both probe routes (shard attr bound and
  // unbound) — for one shard everything is targeted by definition.
  EXPECT_GT(targeted + fanned_out, total_ops / 4);
  if (shards > 1) {
    EXPECT_GT(targeted, 0u);
    EXPECT_GT(fanned_out, 0u);
  }
  idx.check_invariants();
}

TEST(ShardedBitIndex, DifferentialOneShard) {
  run_differential(/*shards=*/1, /*seed=*/21, /*total_ops=*/8000);
}

TEST(ShardedBitIndex, DifferentialTwoShards) {
  run_differential(/*shards=*/2, /*seed=*/22, /*total_ops=*/8000);
}

TEST(ShardedBitIndex, DifferentialFourShards) {
  run_differential(/*shards=*/4, /*seed=*/23, /*total_ops=*/8000);
}

TEST(ShardedBitIndex, DifferentialSevenShards) {
  run_differential(/*shards=*/7, /*seed=*/24, /*total_ops=*/8000);
}

TEST(ShardedBitIndex, ShardRouteIsStableAcrossMigrations) {
  JoinAttributeSet jas({0, 1});
  ShardedBitIndex idx(jas, IndexConfig({2, 2}), BitMapper::hashing(2),
                      /*shards=*/4);
  testutil::TuplePool pool(500, 2, 40, 9);
  std::vector<std::size_t> homes;
  for (const Tuple* t : pool.pointers()) {
    idx.insert(t);
    homes.push_back(idx.shard_of(*t));
  }
  const IndexMigrator migrator;
  idx.migrate_shards(IndexConfig({0, 4}), migrator);
  idx.migrate_shards(IndexConfig({4, 0}), migrator);
  const auto ptrs = pool.pointers();
  for (std::size_t i = 0; i < ptrs.size(); ++i) {
    EXPECT_EQ(idx.shard_of(*ptrs[i]), homes[i]) << "tuple " << i;
  }
  idx.check_invariants();
}

TEST(ShardedBitIndex, BalanceReportsSkew) {
  JoinAttributeSet jas({0, 1});
  ShardedBitIndex idx(jas, IndexConfig({2, 2}), BitMapper::hashing(2),
                      /*shards=*/4);
  // All tuples share one sharding value -> one shard holds everything.
  testutil::TuplePool pool(64, 2, 40, 3);
  std::vector<Tuple> skewed;
  skewed.reserve(pool.size());
  for (const Tuple* t : pool.pointers()) {
    Tuple copy = *t;
    copy.values[0] = 7;
    skewed.push_back(copy);
  }
  for (const Tuple& t : skewed) idx.insert(&t);
  const ShardBalance b = idx.balance();
  ASSERT_EQ(b.sizes.size(), 4u);
  EXPECT_EQ(b.max, skewed.size());
  EXPECT_DOUBLE_EQ(b.mean, static_cast<double>(skewed.size()) / 4.0);
  EXPECT_DOUBLE_EQ(b.imbalance, 4.0);
  for (const Tuple& t : skewed) idx.erase(&t);
  EXPECT_EQ(idx.size(), 0u);
}

TEST(ShardedBitIndex, TargetShardRequiresShardAttrBound) {
  JoinAttributeSet jas({0, 1, 2});
  ShardedBitIndex idx(jas, IndexConfig({2, 2, 2}), BitMapper::hashing(3),
                      /*shards=*/3, /*shard_pos=*/2);
  ProbeKey unbound;
  unbound.mask = 0b011;  // positions 0 and 1 only
  unbound.values = {1, 2, 3};
  EXPECT_EQ(idx.target_shard(unbound), idx.shard_count());
  ProbeKey bound;
  bound.mask = 0b100;
  bound.values = {0, 0, 9};
  EXPECT_LT(idx.target_shard(bound), idx.shard_count());
}

}  // namespace
}  // namespace amri::index
