#include "index/bit_mapper.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace amri::index {
namespace {

TEST(BitMapper, ZeroBitsAlwaysZero) {
  const BitMapper hash = BitMapper::hashing(2);
  EXPECT_EQ(hash.map(0, 12345, 0), 0u);
  const BitMapper range = BitMapper::ranged({{0, 99}, {0, 99}});
  EXPECT_EQ(range.map(1, 55, 0), 0u);
}

TEST(BitMapper, HashStaysInRange) {
  const BitMapper m = BitMapper::hashing(3);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const auto v = static_cast<Value>(rng.next());
    for (int bits = 1; bits <= 12; ++bits) {
      EXPECT_LT(m.map(0, v, bits), std::uint64_t{1} << bits);
    }
  }
}

TEST(BitMapper, HashDeterministic) {
  const BitMapper m = BitMapper::hashing(2);
  EXPECT_EQ(m.map(0, 42, 8), m.map(0, 42, 8));
}

TEST(BitMapper, HashSaltedByPosition) {
  const BitMapper m = BitMapper::hashing(2);
  // Same value in different attribute positions should usually differ.
  int same = 0;
  for (Value v = 0; v < 100; ++v) {
    if (m.map(0, v, 16) == m.map(1, v, 16)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(BitMapper, HashRoughlyUniform) {
  const BitMapper m = BitMapper::hashing(1);
  std::vector<int> cells(16, 0);
  for (Value v = 0; v < 16000; ++v) {
    ++cells[m.map(0, v, 4)];
  }
  for (const int c : cells) {
    EXPECT_NEAR(static_cast<double>(c), 1000.0, 200.0);
  }
}

TEST(BitMapper, RangeEquiWidth) {
  const BitMapper m = BitMapper::ranged({{0, 15}});
  // 16 values into 4 cells of 4.
  EXPECT_EQ(m.map(0, 0, 2), 0u);
  EXPECT_EQ(m.map(0, 3, 2), 0u);
  EXPECT_EQ(m.map(0, 4, 2), 1u);
  EXPECT_EQ(m.map(0, 15, 2), 3u);
}

TEST(BitMapper, RangeMonotone) {
  const BitMapper m = BitMapper::ranged({{0, 999}});
  std::uint64_t prev = 0;
  for (Value v = 0; v < 1000; ++v) {
    const auto cell = m.map(0, v, 5);
    EXPECT_GE(cell, prev);
    prev = cell;
  }
  EXPECT_EQ(prev, 31u);  // top value reaches the last cell
}

TEST(BitMapper, RangeClampsOutOfDomain) {
  const BitMapper m = BitMapper::ranged({{10, 20}});
  EXPECT_EQ(m.map(0, -100, 3), 0u);
  EXPECT_EQ(m.map(0, 5, 3), 0u);
  EXPECT_EQ(m.map(0, 100, 3), 7u);
}

TEST(BitMapper, RangeSingletonDomain) {
  const BitMapper m = BitMapper::ranged({{7, 7}});
  EXPECT_EQ(m.map(0, 7, 4), 0u);
}

TEST(BitMapper, RangeHugeDomainNoOverflow) {
  const BitMapper m = BitMapper::ranged(
      {{std::numeric_limits<Value>::min() / 2,
        std::numeric_limits<Value>::max() / 2}});
  EXPECT_LT(m.map(0, 0, 8), 256u);
  EXPECT_EQ(m.map(0, std::numeric_limits<Value>::min() / 2, 8), 0u);
  EXPECT_EQ(m.map(0, std::numeric_limits<Value>::max() / 2, 8), 255u);
}

}  // namespace
}  // namespace amri::index
