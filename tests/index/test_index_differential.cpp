// Randomized differential test: the flat-directory BitAddressIndex against
// a straightforward reference implementation backed by
// std::unordered_map<BucketId, std::vector<const Tuple*>> (the shape of the
// directory the index used before the open-addressing rewrite). The two are
// driven through the same seeded mixed sequence of insert / erase / probe /
// probe_range / reconfigure operations and must agree on every observable:
// match sets, match counts, tuples compared, size, and occupied buckets.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "../test_util.hpp"
#include "common/rng.hpp"
#include "index/bit_address_index.hpp"

namespace amri::index {
namespace {

/// The pre-rewrite directory semantics, kept deliberately naive: sparse
/// hash map of vectors, swap-with-last erase, filter-everything probes.
class ReferenceIndex {
 public:
  ReferenceIndex(JoinAttributeSet jas, IndexConfig config, BitMapper mapper)
      : jas_(std::move(jas)),
        config_(std::move(config)),
        mapper_(std::move(mapper)) {}

  BucketId bucket_of(const Tuple& t) const {
    BucketId id = 0;
    for (std::size_t pos = 0; pos < config_.num_attrs(); ++pos) {
      const int bits = config_.bits(pos);
      if (bits == 0) continue;
      id |= mapper_.map(pos, t.at(jas_.tuple_attr(pos)), bits)
            << config_.shift_of(pos);
    }
    return id;
  }

  void insert(const Tuple* t) {
    buckets_[bucket_of(*t)].push_back(t);
    ++size_;
  }

  void erase(const Tuple* t) {
    const auto it = buckets_.find(bucket_of(*t));
    if (it == buckets_.end()) return;
    auto& bucket = it->second;
    const auto pos = std::find(bucket.begin(), bucket.end(), t);
    if (pos == bucket.end()) return;
    *pos = bucket.back();
    bucket.pop_back();
    if (bucket.empty()) buckets_.erase(it);
    --size_;
  }

  ProbeStats probe(const ProbeKey& key, std::vector<const Tuple*>& out) const {
    // Fixed bits contributed by bound indexed attributes (mirrors
    // BitAddressIndex::layout_for without the cost-meter charges).
    BucketId fixed = 0;
    BucketId fixed_mask = 0;
    for (std::size_t pos = 0; pos < config_.num_attrs(); ++pos) {
      const int bits = config_.bits(pos);
      if (bits == 0 || !has_bit(key.mask, static_cast<unsigned>(pos))) {
        continue;
      }
      fixed |= mapper_.map(pos, key.values[pos], bits) << config_.shift_of(pos);
      fixed_mask |= low_bits64(bits) << config_.shift_of(pos);
    }
    ProbeStats stats;
    for (const auto& [id, bucket] : buckets_) {
      if ((id & fixed_mask) != fixed) continue;
      for (const Tuple* t : bucket) {
        ++stats.tuples_compared;
        if (key.matches(*t, jas_)) {
          out.push_back(t);
          ++stats.matches;
        }
      }
    }
    return stats;
  }

  ProbeStats probe_range(const RangeProbeKey& key,
                         std::vector<const Tuple*>& out) const {
    // Per indexed attribute: the inclusive chunk interval (order-preserving
    // mappers prune, hash mappers only on degenerate intervals).
    struct ChunkRange {
      std::uint64_t lo = 0;
      std::uint64_t hi = 0;
      int shift = 0;
      int bits = 0;
    };
    std::vector<ChunkRange> ranges;
    for (std::size_t pos = 0; pos < config_.num_attrs(); ++pos) {
      const int bits = config_.bits(pos);
      if (bits == 0) continue;
      ChunkRange cr;
      cr.shift = config_.shift_of(pos);
      cr.bits = bits;
      cr.hi = low_bits64(bits);
      if (key.bound(pos)) {
        if (mapper_.order_preserving(pos)) {
          cr.lo = mapper_.map(pos, key.los[pos], bits);
          cr.hi = mapper_.map(pos, key.his[pos], bits);
        } else if (key.los[pos] == key.his[pos]) {
          cr.lo = cr.hi = mapper_.map(pos, key.los[pos], bits);
        }
      }
      ranges.push_back(cr);
    }
    ProbeStats stats;
    for (const auto& [id, bucket] : buckets_) {
      bool in_range = true;
      for (const ChunkRange& cr : ranges) {
        const std::uint64_t chunk = (id >> cr.shift) & low_bits64(cr.bits);
        if (chunk < cr.lo || chunk > cr.hi) {
          in_range = false;
          break;
        }
      }
      if (!in_range) continue;
      for (const Tuple* t : bucket) {
        ++stats.tuples_compared;
        if (key.matches(*t, jas_)) {
          out.push_back(t);
          ++stats.matches;
        }
      }
    }
    return stats;
  }

  void reconfigure(const IndexConfig& new_config) {
    std::vector<const Tuple*> all;
    for (const auto& [id, bucket] : buckets_) {
      all.insert(all.end(), bucket.begin(), bucket.end());
    }
    buckets_.clear();
    size_ = 0;
    config_ = new_config;
    for (const Tuple* t : all) insert(t);
  }

  std::size_t size() const { return size_; }
  std::size_t occupied_buckets() const { return buckets_.size(); }

  /// Canonical snapshot: sorted (bucket id, sorted tuple pointers) pairs.
  std::vector<std::pair<BucketId, std::vector<const Tuple*>>> snapshot() const {
    std::vector<std::pair<BucketId, std::vector<const Tuple*>>> snap(
        buckets_.begin(), buckets_.end());
    for (auto& [id, bucket] : snap) std::sort(bucket.begin(), bucket.end());
    std::sort(snap.begin(), snap.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return snap;
  }

 private:
  JoinAttributeSet jas_;
  IndexConfig config_;
  BitMapper mapper_;
  std::unordered_map<BucketId, std::vector<const Tuple*>> buckets_;
  std::size_t size_ = 0;
};

std::vector<std::pair<BucketId, std::vector<const Tuple*>>> snapshot_of(
    const BitAddressIndex& idx) {
  std::vector<std::pair<BucketId, std::vector<const Tuple*>>> snap;
  idx.directory().for_each(
      [&](BucketId id, const BucketDirectory::Bucket& bucket) {
        std::vector<const Tuple*> tuples;
        tuples.reserve(bucket.size());
        for (const BucketEntry& e : bucket) tuples.push_back(e.tuple);
        std::sort(tuples.begin(), tuples.end());
        snap.emplace_back(id, std::move(tuples));
      });
  std::sort(snap.begin(), snap.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return snap;
}

IndexConfig random_config(Rng& rng) {
  std::vector<std::uint8_t> bits(3);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.below(4));
  return IndexConfig(bits);
}

/// Drive both indexes through `total_ops` seeded mixed operations and
/// compare every observable after each probe plus periodic deep snapshots.
void run_differential(BitMapper mapper, std::uint64_t seed,
                      std::size_t total_ops) {
  const Value kDomain = 60;
  JoinAttributeSet jas({0, 1, 2});
  IndexConfig config({3, 2, 2});
  BitAddressIndex idx(jas, config, mapper);
  ReferenceIndex ref(jas, config, mapper);

  testutil::TuplePool pool(3000, 3, static_cast<int>(kDomain), seed + 1);
  std::vector<const Tuple*> free_list = pool.pointers();
  std::vector<const Tuple*> live;
  Rng rng(seed);

  std::size_t probes_run = 0;
  for (std::size_t op = 0; op < total_ops; ++op) {
    const std::size_t dice = rng.below(100);
    if (dice < 45 && !free_list.empty()) {
      const std::size_t pick = rng.below(free_list.size());
      const Tuple* t = free_list[pick];
      free_list[pick] = free_list.back();
      free_list.pop_back();
      idx.insert(t);
      ref.insert(t);
      live.push_back(t);
    } else if (dice < 65 && !live.empty()) {
      const std::size_t pick = rng.below(live.size());
      const Tuple* t = live[pick];
      live[pick] = live.back();
      live.pop_back();
      idx.erase(t);
      ref.erase(t);
      free_list.push_back(t);
    } else if (dice < 85) {
      // Point probe with a random access pattern; values come from a live
      // tuple half the time (guaranteed hits) and fresh randomness the rest.
      ProbeKey key;
      key.mask = static_cast<AttrMask>(rng.below(8));
      for (std::size_t pos = 0; pos < 3; ++pos) {
        const Value v = (!live.empty() && rng.chance(0.5))
                            ? live[rng.below(live.size())]->at(
                                  jas.tuple_attr(pos))
                            : static_cast<Value>(rng.below(
                                  static_cast<std::uint64_t>(kDomain)));
        key.values.push_back(v);
      }
      std::vector<const Tuple*> got;
      std::vector<const Tuple*> want;
      const ProbeStats got_stats = idx.probe(key, got);
      const ProbeStats want_stats = ref.probe(key, want);
      EXPECT_EQ(got_stats.matches, want_stats.matches) << "op " << op;
      EXPECT_EQ(got_stats.tuples_compared, want_stats.tuples_compared)
          << "op " << op;
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      EXPECT_EQ(got, want) << "op " << op;
      ++probes_run;
    } else if (dice < 97) {
      // Range probe over random inclusive intervals.
      RangeProbeKey key;
      const AttrMask mask = static_cast<AttrMask>(rng.below(8));
      for (std::size_t pos = 0; pos < 3; ++pos) {
        if (!has_bit(mask, static_cast<unsigned>(pos))) continue;
        Value lo = static_cast<Value>(
            rng.below(static_cast<std::uint64_t>(kDomain)));
        Value hi = rng.chance(0.25)
                       ? lo  // degenerate interval: hash mappers still prune
                       : static_cast<Value>(rng.below(
                             static_cast<std::uint64_t>(kDomain)));
        if (hi < lo) std::swap(lo, hi);
        key.bind(pos, lo, hi);
      }
      std::vector<const Tuple*> got;
      std::vector<const Tuple*> want;
      const ProbeStats got_stats = idx.probe_range(key, got);
      const ProbeStats want_stats = ref.probe_range(key, want);
      EXPECT_EQ(got_stats.matches, want_stats.matches) << "op " << op;
      EXPECT_EQ(got_stats.tuples_compared, want_stats.tuples_compared)
          << "op " << op;
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      EXPECT_EQ(got, want) << "op " << op;
      ++probes_run;
    } else {
      const IndexConfig next = random_config(rng);
      idx.reconfigure(next);
      ref.reconfigure(next);
    }

    EXPECT_EQ(idx.size(), ref.size()) << "op " << op;
    EXPECT_EQ(idx.occupied_buckets(), ref.occupied_buckets()) << "op " << op;
    if (op % 500 == 0) {
      EXPECT_EQ(snapshot_of(idx), ref.snapshot()) << "op " << op;
      idx.check_invariants();
    }
    if (::testing::Test::HasFailure()) {
      FAIL() << "first divergence at op " << op;
    }
  }
  // The mix must actually have exercised the probe paths.
  EXPECT_GT(probes_run, total_ops / 4);
  EXPECT_EQ(snapshot_of(idx), ref.snapshot());
  idx.check_invariants();
}

TEST(IndexDifferential, MixedOpsHashMapper) {
  run_differential(BitMapper::hashing(3), /*seed=*/42, /*total_ops=*/12000);
}

TEST(IndexDifferential, MixedOpsRangeMapper) {
  run_differential(
      BitMapper::ranged({{0, 59}, {0, 59}, {0, 59}}),
      /*seed=*/1234, /*total_ops=*/12000);
}

}  // namespace
}  // namespace amri::index
