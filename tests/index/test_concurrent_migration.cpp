// Concurrent-migration tests: several threads drive migrations against a
// shared Telemetry instance (and, in one case, a shared migrator). These
// exercise the mutex-guarded faces of IndexMigrator, MetricsRegistry, and
// EventLog; run them under the debug-tsan preset to validate the locking.
#include "index/index_migrator.hpp"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "../test_util.hpp"
#include "telemetry/telemetry.hpp"

namespace amri::index {
namespace {

JoinAttributeSet jas3() { return JoinAttributeSet({0, 1, 2}); }

constexpr std::size_t kThreads = 4;
constexpr std::size_t kTuplesPerIndex = 400;

TEST(ConcurrentMigration, PerStreamMigratorsSharedTelemetry) {
  telemetry::Telemetry telemetry;
  std::vector<std::unique_ptr<BitAddressIndex>> indexes;
  std::vector<std::unique_ptr<IndexMigrator>> migrators;
  std::vector<testutil::TuplePool> pools;
  pools.reserve(kThreads);
  for (std::size_t s = 0; s < kThreads; ++s) {
    indexes.push_back(std::make_unique<BitAddressIndex>(
        jas3(), IndexConfig({6, 0, 0}), BitMapper::hashing(3)));
    migrators.push_back(std::make_unique<IndexMigrator>(
        nullptr, &telemetry, static_cast<StreamId>(s)));
    pools.emplace_back(kTuplesPerIndex, 3, 40, 100 + s);
    for (const Tuple* t : pools.back().pointers()) indexes[s]->insert(t);
  }

  const std::vector<IndexConfig> steps = {
      IndexConfig({2, 2, 2}), IndexConfig({0, 6, 0}), IndexConfig({3, 0, 3}),
      IndexConfig({4, 4, 0})};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t s = 0; s < kThreads; ++s) {
    threads.emplace_back([&, s] {
      for (const IndexConfig& target : steps) {
        const auto report = migrators[s]->migrate(*indexes[s], target);
        EXPECT_EQ(report.tuples_moved, kTuplesPerIndex);
      }
    });
  }
  for (auto& t : threads) t.join();

  for (std::size_t s = 0; s < kThreads; ++s) {
    EXPECT_EQ(indexes[s]->config(), steps.back());
    EXPECT_EQ(indexes[s]->size(), kTuplesPerIndex);
    indexes[s]->check_invariants();
    // Per-stream counters saw every migration exactly once.
    const std::string prefix = "stem." + std::to_string(s);
    EXPECT_EQ(
        telemetry.metrics().counter(prefix + ".migration.count").value(),
        steps.size());
    EXPECT_EQ(telemetry.metrics()
                  .counter(prefix + ".migration.tuples_moved")
                  .value(),
              steps.size() * kTuplesPerIndex);
  }
  // Each migration emits a start and an end event into the shared log.
  EXPECT_EQ(telemetry.events().total_emitted(), kThreads * steps.size() * 2);
}

TEST(ConcurrentMigration, SharedMigratorSerializesRebuilds) {
  telemetry::Telemetry telemetry;
  const IndexMigrator migrator(nullptr, &telemetry, 0);
  std::vector<std::unique_ptr<BitAddressIndex>> indexes;
  std::vector<testutil::TuplePool> pools;
  std::vector<std::set<const Tuple*>> expected(kThreads);
  pools.reserve(kThreads);
  for (std::size_t s = 0; s < kThreads; ++s) {
    indexes.push_back(std::make_unique<BitAddressIndex>(
        jas3(), IndexConfig({4, 4, 0}), BitMapper::hashing(3)));
    pools.emplace_back(kTuplesPerIndex, 3, 25, 200 + s);
    for (const Tuple* t : pools.back().pointers()) {
      indexes[s]->insert(t);
      expected[s].insert(t);
    }
  }

  // All threads funnel through ONE migrator; its per-instance mutex must
  // serialize whole rebuilds (index mutation + telemetry emission).
  std::vector<std::thread> threads;
  for (std::size_t s = 0; s < kThreads; ++s) {
    threads.emplace_back([&, s] {
      migrator.migrate(*indexes[s], IndexConfig({2, 2, 2}));
      migrator.migrate(*indexes[s], IndexConfig({0, 4, 4}));
    });
  }
  for (auto& t : threads) t.join();

  for (std::size_t s = 0; s < kThreads; ++s) {
    EXPECT_EQ(indexes[s]->config(), IndexConfig({0, 4, 4}));
    indexes[s]->check_invariants();
    std::set<const Tuple*> found;
    indexes[s]->for_each_tuple([&](const Tuple* t) { found.insert(t); });
    EXPECT_EQ(found, expected[s]);
  }
  EXPECT_EQ(
      telemetry.metrics().counter("stem.0.migration.count").value(),
      kThreads * 2);
}

TEST(ConcurrentMigration, ParallelPoolBackedMigrations) {
  // Migrators that share a ThreadPool for bulk work must coexist with each
  // other and with direct pool users.
  telemetry::Telemetry telemetry;
  ThreadPool pool(4);
  std::vector<std::unique_ptr<BitAddressIndex>> indexes;
  std::vector<std::unique_ptr<IndexMigrator>> migrators;
  std::vector<testutil::TuplePool> pools;
  for (std::size_t s = 0; s < kThreads; ++s) {
    indexes.push_back(std::make_unique<BitAddressIndex>(
        jas3(), IndexConfig({6, 0, 0}), BitMapper::hashing(3)));
    migrators.push_back(std::make_unique<IndexMigrator>(
        &pool, &telemetry, static_cast<StreamId>(s)));
    pools.emplace_back(kTuplesPerIndex, 3, 40, 300 + s);
    for (const Tuple* t : pools.back().pointers()) indexes[s]->insert(t);
  }
  std::vector<std::thread> threads;
  for (std::size_t s = 0; s < kThreads; ++s) {
    threads.emplace_back(
        [&, s] { migrators[s]->migrate(*indexes[s], IndexConfig({2, 2, 2})); });
  }
  for (auto& t : threads) t.join();
  for (std::size_t s = 0; s < kThreads; ++s) {
    EXPECT_EQ(indexes[s]->config(), IndexConfig({2, 2, 2}));
    EXPECT_EQ(indexes[s]->size(), kTuplesPerIndex);
    indexes[s]->check_invariants();
  }
}

}  // namespace
}  // namespace amri::index
