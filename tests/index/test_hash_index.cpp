#include "index/hash_index.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace amri::index {
namespace {

JoinAttributeSet jas3() { return JoinAttributeSet({0, 1, 2}); }

ProbeKey key_for(AttrMask mask, std::initializer_list<Value> vals) {
  ProbeKey k;
  k.mask = mask;
  for (const Value v : vals) k.values.push_back(v);
  return k;
}

TEST(HashIndex, ServesSubsetMasks) {
  HashIndex idx(jas3(), 0b011);
  EXPECT_TRUE(idx.serves(0b011));
  EXPECT_TRUE(idx.serves(0b111));
  EXPECT_FALSE(idx.serves(0b001));  // index needs attr 1 bound too
  EXPECT_FALSE(idx.serves(0b100));
}

TEST(HashIndex, InsertAndProbe) {
  HashIndex idx(jas3(), 0b011);
  const Tuple t1 = testutil::make_tuple({1, 2, 3}, 1);
  const Tuple t2 = testutil::make_tuple({1, 3, 3}, 2);
  idx.insert(&t1);
  idx.insert(&t2);
  std::vector<const Tuple*> out;
  const auto stats = idx.probe(key_for(0b011, {1, 2, 0}), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], &t1);
  EXPECT_EQ(stats.matches, 1u);
}

TEST(HashIndex, SupersetProbeVerifiesExtraAttrs) {
  HashIndex idx(jas3(), 0b001);
  const Tuple t1 = testutil::make_tuple({7, 1, 1}, 1);
  const Tuple t2 = testutil::make_tuple({7, 2, 2}, 2);
  idx.insert(&t1);
  idx.insert(&t2);
  std::vector<const Tuple*> out;
  idx.probe(key_for(0b111, {7, 2, 2}), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], &t2);
}

TEST(HashIndex, EraseSpecificTuple) {
  HashIndex idx(jas3(), 0b111);
  const Tuple t1 = testutil::make_tuple({4, 4, 4}, 1);
  const Tuple t2 = testutil::make_tuple({4, 4, 4}, 2);
  idx.insert(&t1);
  idx.insert(&t2);
  idx.erase(&t1);
  EXPECT_EQ(idx.size(), 1u);
  std::vector<const Tuple*> out;
  idx.probe(key_for(0b111, {4, 4, 4}), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], &t2);
}

TEST(HashIndex, ChargesHashPerKeyAttr) {
  CostMeter meter;
  HashIndex idx(jas3(), 0b011, &meter);
  const Tuple t = testutil::make_tuple({1, 2, 3});
  idx.insert(&t);
  EXPECT_EQ(meter.hashes(), 2u);  // two key attributes hashed
  EXPECT_EQ(meter.inserts(), 1u);
}

TEST(HashIndex, MemoryGrowsPerEntry) {
  MemoryTracker mem;
  testutil::TuplePool pool(500, 3, 100, 13);
  HashIndex idx(jas3(), 0b010, nullptr, &mem);
  std::size_t prev = 0;
  for (const Tuple* t : pool.pointers()) {
    idx.insert(t);
    EXPECT_GE(mem.category(MemCategory::kIndexStructure), prev);
    prev = mem.category(MemCategory::kIndexStructure);
  }
  EXPECT_GT(prev, 500u * 40);  // substantive per-entry overhead
}

TEST(HashIndex, FindsAllDuplicates) {
  HashIndex idx(jas3(), 0b100);
  testutil::TuplePool pool(100, 3, 4, 17);  // small domain -> collisions
  for (const Tuple* t : pool.pointers()) idx.insert(t);
  std::vector<const Tuple*> out;
  idx.probe(key_for(0b100, {0, 0, 2}), out);
  std::size_t expected = 0;
  for (const Tuple* t : pool.pointers()) {
    if (t->at(2) == 2) ++expected;
  }
  EXPECT_EQ(out.size(), expected);
}

TEST(HashIndex, NameIncludesPattern) {
  HashIndex idx(jas3(), 0b101);
  EXPECT_EQ(idx.name(), "hash<A,*,C>");
}

}  // namespace
}  // namespace amri::index
