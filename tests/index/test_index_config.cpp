#include "index/index_config.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace amri::index {
namespace {

TEST(IndexConfig, TotalsAndCounts) {
  IndexConfig ic({5, 2, 3});
  EXPECT_EQ(ic.num_attrs(), 3u);
  EXPECT_EQ(ic.total_bits(), 10);
  EXPECT_EQ(ic.indexed_attr_count(), 3);
  EXPECT_EQ(ic.indexed_mask(), 0b111u);
  EXPECT_EQ(ic.bucket_count(), 1024u);
}

TEST(IndexConfig, ZeroBitsAttrNotIndexed) {
  IndexConfig ic({4, 0, 2});
  EXPECT_EQ(ic.indexed_attr_count(), 2);
  EXPECT_EQ(ic.indexed_mask(), 0b101u);
  EXPECT_EQ(ic.total_bits(), 6);
}

TEST(IndexConfig, ZeroConfig) {
  const IndexConfig ic = IndexConfig::zero(3);
  EXPECT_EQ(ic.total_bits(), 0);
  EXPECT_EQ(ic.indexed_attr_count(), 0);
  EXPECT_EQ(ic.bucket_count(), 1u);
}

TEST(IndexConfig, ShiftLayoutMatchesPaperConcatenation) {
  // Paper Figure 3: 10-bit IC, 5 bits A1, 2 bits A2, 3 bits A3.
  // A1 occupies the most significant bits, A3 the least.
  IndexConfig ic({5, 2, 3});
  EXPECT_EQ(ic.shift_of(0), 5);  // A1 starts above A2+A3 = 5 bits
  EXPECT_EQ(ic.shift_of(1), 3);
  EXPECT_EQ(ic.shift_of(2), 0);
}

TEST(IndexConfig, PaperFigure3BucketId) {
  // Values map to chunks 00111, 11, 010 -> 0011111010 = 250.
  IndexConfig ic({5, 2, 3});
  const std::uint64_t id = (0b00111ULL << ic.shift_of(0)) |
                           (0b11ULL << ic.shift_of(1)) |
                           (0b010ULL << ic.shift_of(2));
  EXPECT_EQ(id, 250u);
}

TEST(IndexConfig, BitsForMask) {
  IndexConfig ic({5, 2, 3});
  EXPECT_EQ(ic.bits_for(0b001), 5);
  EXPECT_EQ(ic.bits_for(0b101), 8);
  EXPECT_EQ(ic.bits_for(0b111), 10);
  EXPECT_EQ(ic.bits_for(0), 0);
}

TEST(IndexConfig, Equality) {
  EXPECT_EQ(IndexConfig({1, 2}), IndexConfig({1, 2}));
  EXPECT_NE(IndexConfig({1, 2}), IndexConfig({2, 1}));
}

TEST(IndexConfig, ToString) {
  EXPECT_EQ(IndexConfig({1, 0, 3}).to_string(), "[A:1 B:0 C:3]");
}

TEST(EnumerateAllocations, CountsMatchCombinatorics) {
  // Allocations of <= 4 bits over 2 attrs with cap 4: sum_{t=0}^{4} (t+1)
  // = 15 allocations.
  int count = 0;
  enumerate_allocations(2, 4, 4, [&](const std::vector<std::uint8_t>&) {
    ++count;
  });
  EXPECT_EQ(count, 15);
}

TEST(EnumerateAllocations, RespectsPerAttrCap) {
  enumerate_allocations(3, 10, 2, [](const std::vector<std::uint8_t>& a) {
    for (const auto b : a) EXPECT_LE(b, 2);
  });
}

TEST(EnumerateAllocations, RespectsBudget) {
  enumerate_allocations(3, 5, 5, [](const std::vector<std::uint8_t>& a) {
    int total = 0;
    for (const auto b : a) total += b;
    EXPECT_LE(total, 5);
  });
}

TEST(EnumerateAllocations, DistinctAllocations) {
  std::set<std::vector<std::uint8_t>> seen;
  enumerate_allocations(3, 4, 4, [&](const std::vector<std::uint8_t>& a) {
    EXPECT_TRUE(seen.insert(a).second);
  });
  EXPECT_GT(seen.size(), 1u);
}

TEST(EnumerateAllocations, IncludesZeroAllocation) {
  bool saw_zero = false;
  enumerate_allocations(2, 3, 3, [&](const std::vector<std::uint8_t>& a) {
    if (a[0] == 0 && a[1] == 0) saw_zero = true;
  });
  EXPECT_TRUE(saw_zero);
}

}  // namespace
}  // namespace amri::index
