#include "index/index_migrator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "../test_util.hpp"

namespace amri::index {
namespace {

JoinAttributeSet jas3() { return JoinAttributeSet({0, 1, 2}); }

TEST(IndexMigrator, MovesAllTuples) {
  BitAddressIndex idx(jas3(), IndexConfig({6, 0, 0}), BitMapper::hashing(3));
  testutil::TuplePool pool(500, 3, 30, 51);
  for (const Tuple* t : pool.pointers()) idx.insert(t);

  const IndexMigrator migrator;
  const auto report = migrator.migrate(idx, IndexConfig({2, 2, 2}));
  EXPECT_EQ(report.tuples_moved, 500u);
  EXPECT_EQ(report.hashes_charged, 1500u);
  EXPECT_EQ(report.from, IndexConfig({6, 0, 0}));
  EXPECT_EQ(report.to, IndexConfig({2, 2, 2}));
  EXPECT_EQ(idx.config(), IndexConfig({2, 2, 2}));
}

TEST(IndexMigrator, PreservesTupleMultiset) {
  BitAddressIndex idx(jas3(), IndexConfig({4, 4, 0}), BitMapper::hashing(3));
  testutil::TuplePool pool(200, 3, 10, 53);
  std::set<const Tuple*> expected;
  for (const Tuple* t : pool.pointers()) {
    idx.insert(t);
    expected.insert(t);
  }
  const IndexMigrator migrator;
  migrator.migrate(idx, IndexConfig({0, 4, 4}));
  std::set<const Tuple*> found;
  idx.for_each_tuple([&](const Tuple* t) { found.insert(t); });
  EXPECT_EQ(found, expected);
}

TEST(IndexMigrator, NoopWhenConfigUnchanged) {
  CostMeter meter;
  BitAddressIndex idx(jas3(), IndexConfig({3, 3, 3}), BitMapper::hashing(3),
                      &meter);
  testutil::TuplePool pool(50, 3, 10, 57);
  for (const Tuple* t : pool.pointers()) idx.insert(t);
  meter.reset_counts();
  const IndexMigrator migrator;
  const auto report = migrator.migrate(idx, IndexConfig({3, 3, 3}));
  EXPECT_EQ(report.tuples_moved, 0u);
  EXPECT_EQ(meter.hashes(), 0u);
}

TEST(IndexMigrator, ProbesCorrectAfterMigration) {
  BitAddressIndex idx(jas3(), IndexConfig({6, 0, 0}), BitMapper::hashing(3));
  testutil::TuplePool pool(300, 3, 12, 59);
  for (const Tuple* t : pool.pointers()) idx.insert(t);
  const IndexMigrator migrator;
  migrator.migrate(idx, IndexConfig({0, 3, 3}));

  const Tuple* target = pool.at(42);
  ProbeKey k;
  k.mask = 0b110;
  k.values = {0, target->at(1), target->at(2)};
  std::vector<const Tuple*> out;
  idx.probe(k, out);
  EXPECT_NE(std::find(out.begin(), out.end(), target), out.end());
  for (const Tuple* t : out) {
    EXPECT_EQ(t->at(1), target->at(1));
    EXPECT_EQ(t->at(2), target->at(2));
  }
}

TEST(IndexMigrator, EmptyIndexMigratesCheaply) {
  CostMeter meter;
  BitAddressIndex idx(jas3(), IndexConfig({3, 0, 0}), BitMapper::hashing(3),
                      &meter);
  const IndexMigrator migrator;
  const auto report = migrator.migrate(idx, IndexConfig({0, 0, 3}));
  EXPECT_EQ(report.tuples_moved, 0u);
  EXPECT_EQ(idx.config(), IndexConfig({0, 0, 3}));
}

}  // namespace
}  // namespace amri::index
