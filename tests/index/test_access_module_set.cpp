#include "index/access_module_set.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "../test_util.hpp"

namespace amri::index {
namespace {

JoinAttributeSet jas3() { return JoinAttributeSet({0, 1, 2}); }

ProbeKey key_for(AttrMask mask, std::initializer_list<Value> vals) {
  ProbeKey k;
  k.mask = mask;
  for (const Value v : vals) k.values.push_back(v);
  return k;
}

TEST(AccessModuleSet, PaperExampleModuleSelection) {
  // Paper §I-A: modules on A1, A1&A2, A2&A3 (JAS positions 0, 0&1, 1&2).
  AccessModuleSet ams(jas3(), {0b001, 0b011, 0b110});
  // sr1 binds A1 and A3 (mask 0b101): most suitable is the A1 module.
  const HashIndex* m = ams.module_for(0b101);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->key_mask(), 0b001u);
  // sr2 binds only A3 (mask 0b100): no module fits -> full scan.
  EXPECT_EQ(ams.module_for(0b100), nullptr);
}

TEST(AccessModuleSet, PrefersLargestServingModule) {
  AccessModuleSet ams(jas3(), {0b001, 0b011});
  const HashIndex* m = ams.module_for(0b111);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->key_mask(), 0b011u);
}

TEST(AccessModuleSet, InsertReachesEveryModule) {
  CostMeter meter;
  AccessModuleSet ams(jas3(), {0b001, 0b011, 0b111}, &meter);
  const Tuple t = testutil::make_tuple({1, 2, 3});
  ams.insert(&t);
  // Hashes: 1 (module A) + 2 (module AB) + 3 (module ABC) = 6.
  EXPECT_EQ(meter.hashes(), 6u);
  // Inserts: master list + 3 modules.
  EXPECT_EQ(meter.inserts(), 4u);
}

TEST(AccessModuleSet, ScanFallbackCountsAndFindsMatches) {
  AccessModuleSet ams(jas3(), {0b011});
  testutil::TuplePool pool(40, 3, 5, 23);
  for (const Tuple* t : pool.pointers()) ams.insert(t);
  std::vector<const Tuple*> out;
  const auto stats = ams.probe(key_for(0b100, {0, 0, 2}), out);
  EXPECT_EQ(ams.scan_fallbacks(), 1u);
  EXPECT_EQ(stats.tuples_compared, 40u);
  std::size_t expected = 0;
  for (const Tuple* t : pool.pointers()) {
    if (t->at(2) == 2) ++expected;
  }
  EXPECT_EQ(out.size(), expected);
}

TEST(AccessModuleSet, ProbeViaModuleMatchesScanResults) {
  AccessModuleSet ams(jas3(), {0b010});
  testutil::TuplePool pool(60, 3, 4, 29);
  for (const Tuple* t : pool.pointers()) ams.insert(t);
  std::vector<const Tuple*> via_module;
  ams.probe(key_for(0b010, {0, 3, 0}), via_module);
  std::size_t expected = 0;
  for (const Tuple* t : pool.pointers()) {
    if (t->at(1) == 3) ++expected;
  }
  EXPECT_EQ(via_module.size(), expected);
}

TEST(AccessModuleSet, EraseRemovesFromAllModules) {
  AccessModuleSet ams(jas3(), {0b001, 0b111});
  const Tuple t = testutil::make_tuple({5, 5, 5});
  ams.insert(&t);
  ams.erase(&t);
  EXPECT_EQ(ams.size(), 0u);
  std::vector<const Tuple*> out;
  ams.probe(key_for(0b001, {5, 0, 0}), out);
  EXPECT_TRUE(out.empty());
}

TEST(AccessModuleSet, MemoryScalesWithModuleCount) {
  testutil::TuplePool pool(200, 3, 50, 37);
  MemoryTracker mem1;
  MemoryTracker mem7;
  {
    AccessModuleSet one(jas3(), {0b001}, nullptr, &mem1);
    AccessModuleSet seven(jas3(),
                          {0b001, 0b010, 0b100, 0b011, 0b101, 0b110, 0b111},
                          nullptr, &mem7);
    for (const Tuple* t : pool.pointers()) {
      one.insert(t);
      seven.insert(t);
    }
    // Seven modules cost several times one module.
    EXPECT_GT(mem7.total(), mem1.total() * 3);
  }
}

TEST(AccessModuleSet, RetuneSwapsModules) {
  AccessModuleSet ams(jas3(), {0b001});
  testutil::TuplePool pool(30, 3, 6, 41);
  for (const Tuple* t : pool.pointers()) ams.insert(t);
  ams.retune({0b010, 0b100});
  auto masks = ams.module_masks();
  std::sort(masks.begin(), masks.end());
  EXPECT_EQ(masks, (std::vector<AttrMask>{0b010, 0b100}));
  // New modules were rebuilt from stored tuples: probes work immediately.
  std::vector<const Tuple*> out;
  ams.probe(key_for(0b010, {0, pool.at(0)->at(1), 0}), out);
  EXPECT_FALSE(out.empty());
}

TEST(AccessModuleSet, RetuneKeepsSurvivingModule) {
  CostMeter meter;
  AccessModuleSet ams(jas3(), {0b001, 0b010}, &meter);
  testutil::TuplePool pool(20, 3, 6, 43);
  for (const Tuple* t : pool.pointers()) ams.insert(t);
  const auto hashes_before = meter.hashes();
  ams.retune({0b001});  // drop 0b010, keep 0b001 (no rebuild needed)
  EXPECT_EQ(meter.hashes(), hashes_before);
  EXPECT_EQ(ams.module_count(), 1u);
}

}  // namespace
}  // namespace amri::index
