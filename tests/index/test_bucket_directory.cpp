#include "index/bucket_directory.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "../test_util.hpp"
#include "common/rng.hpp"

namespace amri::index {
namespace {

TEST(BucketDirectory, EmptyDirectory) {
  BucketDirectory dir;
  EXPECT_EQ(dir.size(), 0u);
  EXPECT_TRUE(dir.empty());
  EXPECT_EQ(dir.capacity(), 0u);
  EXPECT_EQ(dir.memory_bytes(), 0u);
  const Tuple t = testutil::make_tuple({1}, 1);
  EXPECT_EQ(dir.find(7), nullptr);
  EXPECT_FALSE(dir.erase(7, &t));
  std::size_t visited = 0;
  dir.for_each([&](BucketId, const BucketDirectory::Bucket&) { ++visited; });
  EXPECT_EQ(visited, 0u);
  dir.check_invariants();
}

TEST(BucketDirectory, InsertReportsChainLength) {
  BucketDirectory dir;
  const Tuple a = testutil::make_tuple({1}, 1);
  const Tuple b = testutil::make_tuple({2}, 2);
  const Tuple c = testutil::make_tuple({3}, 3);
  EXPECT_EQ(dir.insert(42, &a), 1u);
  EXPECT_EQ(dir.insert(42, &b), 2u);
  EXPECT_EQ(dir.insert(42, &c), 3u);
  EXPECT_EQ(dir.size(), 1u);
  const auto* bucket = dir.find(42);
  ASSERT_NE(bucket, nullptr);
  EXPECT_EQ(bucket->size(), 3u);
  dir.check_invariants();
}

TEST(BucketDirectory, FindAcrossGrowth) {
  BucketDirectory dir;
  testutil::TuplePool pool(5000, 1, 1000000, 11);
  // Distinct keys force repeated doublings past the 7/8 load bound.
  for (std::size_t i = 0; i < 5000; ++i) {
    dir.insert(static_cast<BucketId>(i * 2654435761ULL), pool.at(i));
  }
  EXPECT_EQ(dir.size(), 5000u);
  // Power-of-two capacity with room under the load bound.
  EXPECT_NE(dir.capacity(), 0u);
  EXPECT_EQ(dir.capacity() & (dir.capacity() - 1), 0u);
  for (std::size_t i = 0; i < 5000; ++i) {
    const auto* bucket = dir.find(static_cast<BucketId>(i * 2654435761ULL));
    ASSERT_NE(bucket, nullptr);
    ASSERT_EQ(bucket->size(), 1u);
    EXPECT_EQ((*bucket)[0].tuple, pool.at(i));
  }
  dir.check_invariants();
}

TEST(BucketDirectory, EraseMissingKeyOrTuple) {
  BucketDirectory dir;
  const Tuple a = testutil::make_tuple({1}, 1);
  const Tuple b = testutil::make_tuple({2}, 2);
  dir.insert(5, &a);
  EXPECT_FALSE(dir.erase(6, &a));   // absent key
  EXPECT_FALSE(dir.erase(5, &b));   // absent tuple
  EXPECT_TRUE(dir.erase(5, &a));
  EXPECT_FALSE(dir.erase(5, &a));   // bucket gone
  EXPECT_EQ(dir.size(), 0u);
  EXPECT_EQ(dir.find(5), nullptr);
  dir.check_invariants();
}

// The regression the backward shift exists for: erase keys in an order that
// punches holes into probe chains, then verify every remaining key is still
// reachable (check_invariants proves no hole sits between any key's home
// slot and its actual slot).
TEST(BucketDirectory, BackwardShiftDeletionKeepsProbePathsIntact) {
  BucketDirectory dir;
  testutil::TuplePool pool(2000, 1, 1000000, 13);
  Rng rng(99);
  std::vector<BucketId> keys;
  for (std::size_t i = 0; i < 2000; ++i) {
    // Clustered keys (small range) maximise probe-chain collisions.
    keys.push_back(static_cast<BucketId>(rng.below(4096)));
  }
  for (std::size_t i = 0; i < keys.size(); ++i) dir.insert(keys[i], pool.at(i));
  dir.check_invariants();

  // Erase half in random order, checking structure as we go.
  std::vector<std::size_t> order(keys.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  for (std::size_t n = 0; n < 1000; ++n) {
    ASSERT_TRUE(dir.erase(keys[order[n]], pool.at(order[n])));
    if (n % 50 == 0) dir.check_invariants();
  }
  dir.check_invariants();

  // Every survivor is still findable in its bucket.
  for (std::size_t n = 1000; n < 2000; ++n) {
    const auto* bucket = dir.find(keys[order[n]]);
    ASSERT_NE(bucket, nullptr);
    const Tuple* want = pool.at(order[n]);
    EXPECT_NE(std::find_if(bucket->begin(), bucket->end(),
                           [want](const BucketEntry& e) {
                             return e.tuple == want;
                           }),
              bucket->end());
  }
}

TEST(BucketDirectory, InlineToHeapSpillAccounting) {
  BucketDirectory dir;
  testutil::TuplePool pool(8, 1, 100, 3);
  dir.insert(9, pool.at(0));
  const std::size_t slots_only = dir.memory_bytes();
  // The second tuple still fits inline: no heap, no memory change.
  dir.insert(9, pool.at(1));
  const auto* bucket = dir.find(9);
  ASSERT_NE(bucket, nullptr);
  EXPECT_TRUE(bucket->is_inline());
  EXPECT_EQ(dir.memory_bytes(), slots_only);

  // Third tuple spills the bucket to the heap; memory must grow.
  dir.insert(9, pool.at(2));
  bucket = dir.find(9);
  ASSERT_NE(bucket, nullptr);
  EXPECT_FALSE(bucket->is_inline());
  EXPECT_GT(dir.memory_bytes(), slots_only);
  dir.check_invariants();

  // Draining the bucket removes the slot and returns memory to slots-only.
  EXPECT_TRUE(dir.erase(9, pool.at(0)));
  EXPECT_TRUE(dir.erase(9, pool.at(1)));
  EXPECT_TRUE(dir.erase(9, pool.at(2)));
  EXPECT_EQ(dir.size(), 0u);
  EXPECT_EQ(dir.memory_bytes(), slots_only);
  dir.check_invariants();
}

TEST(BucketDirectory, ClearReleasesEverything) {
  BucketDirectory dir;
  testutil::TuplePool pool(100, 1, 100, 5);
  for (std::size_t i = 0; i < 100; ++i) {
    dir.insert(static_cast<BucketId>(i % 10), pool.at(i));
  }
  EXPECT_GT(dir.memory_bytes(), 0u);
  dir.clear();
  EXPECT_EQ(dir.size(), 0u);
  EXPECT_EQ(dir.capacity(), 0u);
  EXPECT_EQ(dir.memory_bytes(), 0u);
  dir.check_invariants();
  // Usable again after clear.
  EXPECT_EQ(dir.insert(3, pool.at(0)), 1u);
  EXPECT_EQ(dir.size(), 1u);
}

TEST(BucketDirectory, ReserveAvoidsRehash) {
  BucketDirectory dir;
  testutil::TuplePool pool(1000, 1, 100, 17);
  dir.reserve(1000);
  const std::size_t cap = dir.capacity();
  EXPECT_GE(cap, 1000u);
  for (std::size_t i = 0; i < 1000; ++i) {
    dir.insert(static_cast<BucketId>(i), pool.at(i));
  }
  EXPECT_EQ(dir.capacity(), cap);
  dir.check_invariants();
}

TEST(BucketDirectory, ForEachVisitsEveryBucketOnce) {
  BucketDirectory dir;
  testutil::TuplePool pool(300, 1, 100, 23);
  std::set<BucketId> expected;
  for (std::size_t i = 0; i < 300; ++i) {
    const auto key = static_cast<BucketId>(i % 97);
    dir.insert(key, pool.at(i));
    expected.insert(key);
  }
  std::set<BucketId> seen;
  std::size_t tuples = 0;
  dir.for_each([&](BucketId key, const BucketDirectory::Bucket& bucket) {
    EXPECT_TRUE(seen.insert(key).second) << "bucket visited twice";
    tuples += bucket.size();
  });
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(tuples, 300u);
}

// for_each order is a function of the operation history alone, so two
// directories fed the same sequence iterate identically (the filter-probe
// path and golden traces depend on this determinism).
TEST(BucketDirectory, DeterministicIterationOrder) {
  testutil::TuplePool pool(500, 1, 100, 29);
  auto run = [&pool]() {
    BucketDirectory dir;
    Rng rng(7);
    std::vector<std::pair<BucketId, const Tuple*>> live;
    for (std::size_t i = 0; i < 500; ++i) {
      const auto key = static_cast<BucketId>(rng.below(256));
      dir.insert(key, pool.at(i));
      live.emplace_back(key, pool.at(i));
      if (rng.chance(0.3) && !live.empty()) {
        const std::size_t victim = rng.below(live.size());
        dir.erase(live[victim].first, live[victim].second);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      }
    }
    std::vector<BucketId> order;
    dir.for_each([&](BucketId key, const BucketDirectory::Bucket&) {
      order.push_back(key);
    });
    return order;
  };
  EXPECT_EQ(run(), run());
}

TEST(BucketDirectory, MoveTransfersContents) {
  BucketDirectory dir;
  testutil::TuplePool pool(10, 1, 100, 31);
  for (std::size_t i = 0; i < 10; ++i) {
    dir.insert(static_cast<BucketId>(i), pool.at(i));
  }
  const std::size_t bytes = dir.memory_bytes();
  BucketDirectory moved = std::move(dir);
  EXPECT_EQ(moved.size(), 10u);
  EXPECT_EQ(moved.memory_bytes(), bytes);
  ASSERT_NE(moved.find(4), nullptr);
  moved.check_invariants();
}

}  // namespace
}  // namespace amri::index
