#include "index/access_pattern.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace amri::index {
namespace {

TEST(JoinAttributeSet, BasicMapping) {
  JoinAttributeSet jas({2, 0, 5});
  EXPECT_EQ(jas.size(), 3u);
  EXPECT_EQ(jas.tuple_attr(0), 2u);
  EXPECT_EQ(jas.tuple_attr(2), 5u);
  EXPECT_EQ(jas.universe(), 0b111u);
}

TEST(JoinAttributeSet, PositionOf) {
  JoinAttributeSet jas({2, 0, 5});
  EXPECT_EQ(jas.position_of(0), 1u);
  EXPECT_EQ(jas.position_of(5), 2u);
  EXPECT_EQ(jas.position_of(9), 3u);  // sentinel == size()
}

TEST(ProbeKey, BoundCount) {
  ProbeKey k;
  k.mask = 0b101;
  EXPECT_EQ(k.bound_count(), 2);
}

TEST(ProbeKey, MatchesChecksOnlyBoundAttrs) {
  JoinAttributeSet jas({0, 1, 2});
  const Tuple t = testutil::make_tuple({10, 20, 30});
  ProbeKey k;
  k.mask = 0b101;  // bind JAS positions 0 and 2
  k.values.resize(3, 0);
  k.values[0] = 10;
  k.values[2] = 30;
  EXPECT_TRUE(k.matches(t, jas));
  k.values[2] = 31;
  EXPECT_FALSE(k.matches(t, jas));
  // Unbound position is ignored even if wrong.
  k.values[2] = 30;
  k.values[1] = 999;
  EXPECT_TRUE(k.matches(t, jas));
}

TEST(ProbeKey, EmptyMaskMatchesEverything) {
  JoinAttributeSet jas({0, 1});
  const Tuple t = testutil::make_tuple({1, 2});
  ProbeKey k;
  k.mask = 0;
  k.values.resize(2, 0);
  EXPECT_TRUE(k.matches(t, jas));
}

TEST(ProbeKey, RespectsJasIndirection) {
  // JAS positions point at non-contiguous tuple attributes.
  JoinAttributeSet jas({3, 1});
  const Tuple t = testutil::make_tuple({0, 11, 0, 33});
  ProbeKey k;
  k.mask = 0b11;
  k.values.resize(2, 0);
  k.values[0] = 33;  // JAS pos 0 -> tuple attr 3
  k.values[1] = 11;  // JAS pos 1 -> tuple attr 1
  EXPECT_TRUE(k.matches(t, jas));
}

TEST(PatternToString, PaperNotation) {
  EXPECT_EQ(pattern_to_string(0b101, 3), "<A,*,C>");
  EXPECT_EQ(pattern_to_string(0, 3), "<*,*,*>");
  EXPECT_EQ(pattern_to_string(0b111, 3), "<A,B,C>");
}

TEST(PatternToString, CustomNames) {
  const std::vector<std::string> names = {"prio", "pkg", "loc"};
  EXPECT_EQ(pattern_to_string(0b110, 3, &names), "<*,pkg,loc>");
}

TEST(ProbeFromTuple, CopiesBoundValues) {
  JoinAttributeSet probing({0, 2});
  const Tuple t = testutil::make_tuple({5, 6, 7});
  const ProbeKey k = probe_from_tuple(0b10, t, probing);
  EXPECT_EQ(k.mask, 0b10u);
  EXPECT_EQ(k.values.size(), 2u);
  EXPECT_EQ(k.values[1], 7);  // JAS pos 1 -> tuple attr 2
}

}  // namespace
}  // namespace amri::index
