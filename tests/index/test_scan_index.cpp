#include "index/scan_index.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace amri::index {
namespace {

JoinAttributeSet jas2() { return JoinAttributeSet({0, 1}); }

TEST(ScanIndex, ProbeComparesEveryTuple) {
  ScanIndex idx(jas2());
  testutil::TuplePool pool(25, 2, 5, 31);
  for (const Tuple* t : pool.pointers()) idx.insert(t);
  ProbeKey k;
  k.mask = 0b01;
  k.values = {2, 0};
  std::vector<const Tuple*> out;
  const auto stats = idx.probe(k, out);
  EXPECT_EQ(stats.tuples_compared, 25u);
  for (const Tuple* t : out) EXPECT_EQ(t->at(0), 2);
}

TEST(ScanIndex, EraseSwapsAndShrinks) {
  ScanIndex idx(jas2());
  const Tuple a = testutil::make_tuple({1, 1}, 1);
  const Tuple b = testutil::make_tuple({2, 2}, 2);
  idx.insert(&a);
  idx.insert(&b);
  idx.erase(&a);
  EXPECT_EQ(idx.size(), 1u);
  ProbeKey k;
  k.mask = 0;
  k.values = {0, 0};
  std::vector<const Tuple*> out;
  idx.probe(k, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], &b);
}

TEST(ScanIndex, EmptyMaskReturnsAll) {
  ScanIndex idx(jas2());
  testutil::TuplePool pool(10, 2, 3, 7);
  for (const Tuple* t : pool.pointers()) idx.insert(t);
  ProbeKey k;
  k.mask = 0;
  k.values = {0, 0};
  std::vector<const Tuple*> out;
  idx.probe(k, out);
  EXPECT_EQ(out.size(), 10u);
}

TEST(ScanIndex, NoHashChargesOnInsert) {
  CostMeter meter;
  ScanIndex idx(jas2(), &meter);
  const Tuple t = testutil::make_tuple({1, 2});
  idx.insert(&t);
  EXPECT_EQ(meter.hashes(), 0u);
  EXPECT_EQ(meter.inserts(), 1u);
}

TEST(ScanIndex, MemoryReleasedOnDestruction) {
  MemoryTracker mem;
  testutil::TuplePool pool(100, 2, 10, 19);
  {
    ScanIndex idx(jas2(), nullptr, &mem);
    for (const Tuple* t : pool.pointers()) idx.insert(t);
    EXPECT_GT(mem.total(), 0u);
  }
  EXPECT_EQ(mem.total(), 0u);
}

}  // namespace
}  // namespace amri::index
