#include "index/cost_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace amri::index {
namespace {

WorkloadParams simple_params() {
  WorkloadParams p;
  p.lambda_d = 100.0;
  p.lambda_r = 10.0;
  p.window_units = 5.0;
  p.hash_cost = 1.0;
  p.compare_cost = 0.1;
  p.bucket_cost = 0.01;
  return p;
}

TEST(CostModel, MaintenanceProportionalToIndexedAttrs) {
  const CostModel m(simple_params());
  EXPECT_DOUBLE_EQ(m.maintenance_cost(IndexConfig({0, 0, 0})), 0.0);
  EXPECT_DOUBLE_EQ(m.maintenance_cost(IndexConfig({4, 0, 0})), 100.0);
  EXPECT_DOUBLE_EQ(m.maintenance_cost(IndexConfig({4, 4, 4})), 300.0);
  // Maintenance depends on attr count, not bit count.
  EXPECT_DOUBLE_EQ(m.maintenance_cost(IndexConfig({1, 1, 1})), 300.0);
}

TEST(CostModel, SearchCostMatchesEquationOne) {
  const CostModel m(simple_params());
  const IndexConfig ic({3, 2, 0});
  // ap = <A,B,*>: N_A,ap = 2, B_ap = 5.
  // cost = 2*C_h + lambda_d*W / 2^5 * C_c = 2 + 500/32 * 0.1.
  EXPECT_NEAR(m.search_cost(ic, 0b011), 2.0 + 500.0 / 32.0 * 0.1, 1e-9);
}

TEST(CostModel, SearchCostFullScanWhenNoBits) {
  const CostModel m(simple_params());
  const IndexConfig ic = IndexConfig::zero(3);
  // No hash narrows anything: all window tuples compared.
  EXPECT_NEAR(m.search_cost(ic, 0b111), 500.0 * 0.1, 1e-9);
}

TEST(CostModel, MoreBitsOnBoundAttrReduceSearchCost) {
  const CostModel m(simple_params());
  const double c1 = m.search_cost(IndexConfig({1, 0, 0}), 0b001);
  const double c4 = m.search_cost(IndexConfig({4, 0, 0}), 0b001);
  EXPECT_LT(c4, c1);
}

TEST(CostModel, SearchCostMonotoneInBap) {
  // Property: adding bits to attributes bound by ap never increases the
  // compare term.
  const CostModel m(simple_params());
  double prev = std::numeric_limits<double>::infinity();
  for (int bits = 0; bits <= 8; ++bits) {
    const IndexConfig ic({static_cast<std::uint8_t>(bits), 0, 0});
    const double compare_term =
        m.search_cost(ic, 0b001) -
        (bits > 0 ? 1.0 : 0.0);  // subtract the hash term
    EXPECT_LE(compare_term, prev + 1e-12);
    prev = compare_term;
  }
}

TEST(CostModel, BitsOnUnboundAttrDoNotHelpPaperModel) {
  const CostModel m(simple_params());
  // ap binds only attr 0; bits on attr 1 leave B_ap unchanged.
  const double without = m.search_cost(IndexConfig({3, 0, 0}), 0b001);
  const double with = m.search_cost(IndexConfig({3, 5, 0}), 0b001);
  EXPECT_DOUBLE_EQ(without, with);
}

TEST(CostModel, PaperCostWeightsByFrequency) {
  const CostModel m(simple_params());
  const IndexConfig ic({4, 0, 0});
  const std::vector<PatternFrequency> even = {{0b001, 0.5}, {0b010, 0.5}};
  const std::vector<PatternFrequency> hot_a = {{0b001, 1.0}};
  // All-A workload is cheaper: every probe uses the indexed attribute.
  EXPECT_LT(m.paper_cost(ic, hot_a), m.paper_cost(ic, even));
}

TEST(CostModel, ExtendedCostPenalizesWildcards) {
  const CostModel m(simple_params());
  const IndexConfig ic({4, 4, 0});
  const std::vector<PatternFrequency> pats = {{0b001, 1.0}};
  // ap binds attr 0 only; attr 1's 4 bits are wildcards -> 16 buckets.
  EXPECT_GT(m.extended_cost(ic, pats), m.paper_cost(ic, pats));
}

TEST(CostModel, ExtendedEqualsPaperWhenNoWildcards) {
  const CostModel m(simple_params());
  const IndexConfig ic({4, 0, 0});
  const std::vector<PatternFrequency> pats = {{0b001, 1.0}};
  // One bucket visited: extra = lambda_r * 1 * bucket_cost.
  EXPECT_NEAR(m.extended_cost(ic, pats),
              m.paper_cost(ic, pats) + 10.0 * 0.01, 1e-9);
}

TEST(CostModel, EmptyWorkloadOnlyMaintenance) {
  const CostModel m(simple_params());
  const IndexConfig ic({2, 2, 2});
  EXPECT_DOUBLE_EQ(m.paper_cost(ic, {}), m.maintenance_cost(ic));
}

}  // namespace
}  // namespace amri::index
