// The equi-depth (quantile) bit mapper: balanced buckets under skewed
// values — the paper's §III index-key-map goal ("no bucket stores more
// tuples than any other").
#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.hpp"
#include "index/bit_address_index.hpp"
#include "workload/distributions.hpp"

namespace amri::index {
namespace {

std::vector<Value> zipf_sample(std::size_t n, std::int64_t domain, double s,
                               std::uint64_t seed) {
  workload::ZipfDistribution dist(domain, s);
  Rng rng(seed);
  std::vector<Value> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(dist.sample(rng));
  return out;
}

TEST(QuantileMapper, StaysInRange) {
  const auto m =
      BitMapper::quantile({zipf_sample(5000, 1000, 1.1, 1)}, 8);
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const Value v = static_cast<Value>(rng.below(1000));
    for (int bits = 1; bits <= 8; ++bits) {
      EXPECT_LT(m.map(0, v, bits), std::uint64_t{1} << bits);
    }
  }
}

TEST(QuantileMapper, MonotoneInValue) {
  const auto m =
      BitMapper::quantile({zipf_sample(5000, 1000, 1.0, 3)}, 8);
  std::uint64_t prev = 0;
  for (Value v = 0; v < 1000; ++v) {
    const auto cell = m.map(0, v, 6);
    EXPECT_GE(cell, prev) << "v=" << v;
    prev = cell;
  }
}

TEST(QuantileMapper, OrderPreservingFlag) {
  const auto q = BitMapper::quantile({zipf_sample(100, 50, 1.0, 4), {}}, 6);
  EXPECT_TRUE(q.order_preserving(0));
  EXPECT_FALSE(q.order_preserving(1));  // empty sample -> hash fallback
  EXPECT_TRUE(BitMapper::ranged({{0, 9}}).order_preserving(0));
  EXPECT_FALSE(BitMapper::hashing(1).order_preserving(0));
}

TEST(QuantileMapper, BalancesSkewedValuesBetterThanRange) {
  // Zipf(1.2) values: equi-width cells overload cell 0; equi-depth cells
  // spread the mass.
  const std::int64_t domain = 4096;
  const auto sample = zipf_sample(20000, domain, 1.2, 5);

  const JoinAttributeSet jas({0});
  BitAddressIndex by_range(jas, IndexConfig({5}),
                           BitMapper::ranged({{0, domain - 1}}));
  BitAddressIndex by_quantile(jas, IndexConfig({5}),
                              BitMapper::quantile({sample}, 5));

  workload::ZipfDistribution dist(domain, 1.2);
  Rng rng(6);
  std::vector<Tuple> tuples;
  tuples.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    tuples.push_back(testutil::make_tuple({dist.sample(rng)}, i));
  }
  for (const Tuple& t : tuples) {
    by_range.insert(&t);
    by_quantile.insert(&t);
  }
  const auto r = by_range.occupancy();
  const auto q = by_quantile.occupancy();
  EXPECT_LT(q.imbalance, r.imbalance * 0.5)
      << "quantile=" << q.imbalance << " range=" << r.imbalance;
  // Heavy hitters collapse duplicate boundaries into shared cells, so not
  // every cell fills; balance (above) is the metric that matters.
  EXPECT_GE(q.occupied, 20u);
}

TEST(QuantileMapper, RangeProbePrunesWithQuantileCells) {
  const std::int64_t domain = 1000;
  const auto sample = zipf_sample(10000, domain, 0.9, 7);
  const JoinAttributeSet jas({0});
  BitAddressIndex idx(jas, IndexConfig({6}),
                      BitMapper::quantile({sample}, 6));
  workload::ZipfDistribution dist(domain, 0.9);
  Rng rng(8);
  std::vector<Tuple> tuples;
  tuples.reserve(5000);
  for (int i = 0; i < 5000; ++i) {
    tuples.push_back(testutil::make_tuple({dist.sample(rng)}, i));
  }
  for (const Tuple& t : tuples) idx.insert(&t);

  RangeProbeKey key;
  key.bind(0, 100, 200);
  std::vector<const Tuple*> out;
  const auto stats = idx.probe_range(key, out);
  std::size_t expected = 0;
  for (const Tuple& t : tuples) {
    if (t.at(0) >= 100 && t.at(0) <= 200) ++expected;
  }
  EXPECT_EQ(out.size(), expected);
  EXPECT_LT(stats.tuples_compared, 5000u);  // pruned, not a full sweep
}

TEST(QuantileMapper, EmptySampleFallsBackToHashing) {
  const auto m = BitMapper::quantile({{}}, 6);
  // Deterministic, in-range, but order need not be preserved.
  EXPECT_LT(m.map(0, 1234, 6), 64u);
  EXPECT_EQ(m.map(0, 1234, 6), m.map(0, 1234, 6));
}

TEST(QuantileMapper, CoarserBitsMergeNeighborCells) {
  const auto sample = zipf_sample(10000, 1000, 0.5, 9);
  const auto m = BitMapper::quantile({sample}, 8);
  // Any two values in the same 8-bit cell share the 4-bit cell too.
  Rng rng(10);
  for (int i = 0; i < 500; ++i) {
    const Value a = static_cast<Value>(rng.below(1000));
    const Value b = static_cast<Value>(rng.below(1000));
    if (m.map(0, a, 8) == m.map(0, b, 8)) {
      EXPECT_EQ(m.map(0, a, 4), m.map(0, b, 4));
    }
  }
}

TEST(Occupancy, EmptyIndexZeros) {
  BitAddressIndex idx(JoinAttributeSet({0}), IndexConfig({3}),
                      BitMapper::hashing(1));
  const auto o = idx.occupancy();
  EXPECT_EQ(o.occupied, 0u);
  EXPECT_EQ(o.tuples, 0u);
  EXPECT_DOUBLE_EQ(o.imbalance, 0.0);
}

TEST(Occupancy, UniformValuesNearPerfect) {
  const JoinAttributeSet jas({0});
  BitAddressIndex idx(jas, IndexConfig({4}), BitMapper::ranged({{0, 15}}));
  std::vector<Tuple> tuples;
  for (int rep = 0; rep < 10; ++rep) {
    for (Value v = 0; v < 16; ++v) {
      tuples.push_back(testutil::make_tuple({v}, rep * 16 + v));
    }
  }
  for (const Tuple& t : tuples) idx.insert(&t);
  const auto o = idx.occupancy();
  EXPECT_EQ(o.occupied, 16u);
  EXPECT_EQ(o.min, 10u);
  EXPECT_EQ(o.max, 10u);
  EXPECT_DOUBLE_EQ(o.imbalance, 1.0);
  EXPECT_DOUBLE_EQ(o.stddev, 0.0);
}

}  // namespace
}  // namespace amri::index
