#include <gtest/gtest.h>

#include <set>

#include "../test_util.hpp"
#include "common/thread_pool.hpp"
#include "index/bit_address_index.hpp"

namespace amri::index {
namespace {

JoinAttributeSet jas3() { return JoinAttributeSet({0, 1, 2}); }

TEST(BulkLoad, EquivalentToSequentialInserts) {
  testutil::TuplePool pool(800, 3, 40, 3);
  BitAddressIndex serial(jas3(), IndexConfig({3, 3, 2}), BitMapper::hashing(3));
  BitAddressIndex bulk(jas3(), IndexConfig({3, 3, 2}), BitMapper::hashing(3));
  for (const Tuple* t : pool.pointers()) serial.insert(t);
  bulk.bulk_load(pool.pointers());
  EXPECT_EQ(bulk.size(), serial.size());
  EXPECT_EQ(bulk.occupied_buckets(), serial.occupied_buckets());

  // Same probe answers.
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    ProbeKey key;
    key.mask = static_cast<AttrMask>(1 + rng.below(7));
    key.values.resize(3, 0);
    for_each_bit(key.mask, [&](unsigned pos) {
      key.values[pos] = static_cast<Value>(rng.below(40));
    });
    std::vector<const Tuple*> a;
    std::vector<const Tuple*> b;
    serial.probe(key, a);
    bulk.probe(key, b);
    EXPECT_EQ(std::set<const Tuple*>(a.begin(), a.end()),
              std::set<const Tuple*>(b.begin(), b.end()));
  }
}

TEST(BulkLoad, ParallelMatchesSerial) {
  testutil::TuplePool pool(5000, 3, 100, 5);
  ThreadPool tp(4);
  BitAddressIndex parallel(jas3(), IndexConfig({4, 4, 4}),
                           BitMapper::hashing(3));
  BitAddressIndex serial(jas3(), IndexConfig({4, 4, 4}),
                         BitMapper::hashing(3));
  parallel.bulk_load(pool.pointers(), &tp);
  serial.bulk_load(pool.pointers(), nullptr);
  EXPECT_EQ(parallel.size(), 5000u);
  EXPECT_EQ(parallel.occupied_buckets(), serial.occupied_buckets());
}

TEST(BulkLoad, ChargesSameCostAsInserts) {
  testutil::TuplePool pool(100, 3, 20, 7);
  CostMeter bulk_meter;
  CostMeter serial_meter;
  BitAddressIndex bulk(jas3(), IndexConfig({2, 2, 0}), BitMapper::hashing(3),
                       &bulk_meter);
  BitAddressIndex serial(jas3(), IndexConfig({2, 2, 0}),
                         BitMapper::hashing(3), &serial_meter);
  bulk.bulk_load(pool.pointers());
  for (const Tuple* t : pool.pointers()) serial.insert(t);
  EXPECT_EQ(bulk_meter.hashes(), serial_meter.hashes());
  EXPECT_EQ(bulk_meter.inserts(), serial_meter.inserts());
}

TEST(BulkLoad, EmptyBatchIsNoop) {
  BitAddressIndex idx(jas3(), IndexConfig({2, 2, 2}), BitMapper::hashing(3));
  idx.bulk_load({});
  EXPECT_EQ(idx.size(), 0u);
}

TEST(BulkLoad, TracksMemory) {
  MemoryTracker mem;
  testutil::TuplePool pool(500, 3, 30, 9);
  BitAddressIndex idx(jas3(), IndexConfig({3, 3, 3}), BitMapper::hashing(3),
                      nullptr, &mem);
  idx.bulk_load(pool.pointers());
  EXPECT_GT(mem.category(MemCategory::kIndexStructure), 0u);
}

}  // namespace
}  // namespace amri::index
