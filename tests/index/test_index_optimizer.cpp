#include "index/index_optimizer.hpp"

#include <gtest/gtest.h>

namespace amri::index {
namespace {

WorkloadParams params() {
  WorkloadParams p;
  p.lambda_d = 100.0;
  p.lambda_r = 100.0;
  p.window_units = 10.0;
  p.hash_cost = 1.0;
  p.compare_cost = 0.5;
  return p;
}

TEST(IndexOptimizer, AllBitsToTheOnlyPattern) {
  const CostModel model(params());
  OptimizerOptions opts;
  opts.bit_budget = 6;
  opts.max_bits_per_attr = 6;
  const IndexOptimizer opt(model, opts);
  const auto r = opt.optimize(3, {{0b001, 1.0}});
  // Every useful bit goes to attribute 0; others get nothing.
  EXPECT_EQ(r.config.bits(0), 6);
  EXPECT_EQ(r.config.bits(1), 0);
  EXPECT_EQ(r.config.bits(2), 0);
}

TEST(IndexOptimizer, NoPatternsMeansNoBits) {
  const CostModel model(params());
  OptimizerOptions opts;
  opts.bit_budget = 8;
  const IndexOptimizer opt(model, opts);
  const auto r = opt.optimize(3, {});
  // With no search workload, any bit only adds maintenance cost.
  EXPECT_EQ(r.config.total_bits(), 0);
}

TEST(IndexOptimizer, PaperTableTwoCsriaOutcome) {
  // CSRIA deletes <A,*,*> and <A,B,*>; surviving patterns (renormalised)
  // are B:10%, C:10%, AC:16%, BC:10%, ABC:46%. Paper: best 4-bit IC has
  // B=1 bit, C=3 bits (A nothing).
  WorkloadParams p;
  p.lambda_d = 1000.0;
  p.lambda_r = 1000.0;
  p.window_units = 10.0;
  p.hash_cost = 1.0;
  p.compare_cost = 1.0;
  const CostModel model(p);
  OptimizerOptions opts;
  opts.bit_budget = 4;
  opts.max_bits_per_attr = 4;
  const IndexOptimizer opt(model, opts);
  const double total = 0.10 + 0.10 + 0.16 + 0.10 + 0.46;
  const std::vector<PatternFrequency> survivors = {
      {0b010, 0.10 / total}, {0b100, 0.10 / total}, {0b101, 0.16 / total},
      {0b110, 0.10 / total}, {0b111, 0.46 / total}};
  const auto r = opt.optimize(3, survivors);
  EXPECT_EQ(r.config.bits(0), 0);
  EXPECT_EQ(r.config.bits(1), 1);
  EXPECT_EQ(r.config.bits(2), 3);
}

TEST(IndexOptimizer, PaperTableTwoCdiaOutcome) {
  // CDIA keeps A's mass (8% on <A,*,*>). Paper: true optimum is A=1, B=1,
  // C=2 bits.
  WorkloadParams p;
  p.lambda_d = 1000.0;
  p.lambda_r = 1000.0;
  p.window_units = 10.0;
  p.hash_cost = 1.0;
  p.compare_cost = 1.0;
  const CostModel model(p);
  OptimizerOptions opts;
  opts.bit_budget = 4;
  opts.max_bits_per_attr = 4;
  const IndexOptimizer opt(model, opts);
  const double total = 0.08 + 0.10 + 0.10 + 0.16 + 0.10 + 0.46;
  const std::vector<PatternFrequency> survivors = {
      {0b001, 0.08 / total}, {0b010, 0.10 / total}, {0b100, 0.10 / total},
      {0b101, 0.16 / total}, {0b110, 0.10 / total}, {0b111, 0.46 / total}};
  const auto r = opt.optimize(3, survivors);
  EXPECT_EQ(r.config.bits(0), 1);
  EXPECT_EQ(r.config.bits(1), 1);
  EXPECT_EQ(r.config.bits(2), 2);
}

TEST(IndexOptimizer, ExhaustiveBeatsOrMatchesGreedy) {
  const CostModel model(params());
  OptimizerOptions opts;
  opts.bit_budget = 8;
  opts.max_bits_per_attr = 8;
  const IndexOptimizer opt(model, opts);
  const std::vector<PatternFrequency> pats = {
      {0b001, 0.3}, {0b011, 0.3}, {0b110, 0.2}, {0b111, 0.2}};
  const auto ex = opt.optimize(3, pats);
  const auto gr = opt.optimize_greedy(3, pats);
  EXPECT_LE(ex.cost, gr.cost + 1e-9);
  EXPECT_LT(gr.configs_evaluated, ex.configs_evaluated);
}

TEST(IndexOptimizer, GreedyFindsSingleHotPattern) {
  const CostModel model(params());
  OptimizerOptions opts;
  opts.bit_budget = 5;
  opts.max_bits_per_attr = 5;
  const IndexOptimizer opt(model, opts);
  const auto r = opt.optimize_greedy(3, {{0b100, 1.0}});
  EXPECT_EQ(r.config.bits(2), 5);
}

TEST(IndexOptimizer, BudgetRespected) {
  const CostModel model(params());
  OptimizerOptions opts;
  opts.bit_budget = 3;
  opts.max_bits_per_attr = 3;
  const IndexOptimizer opt(model, opts);
  const auto r = opt.optimize(
      4, {{0b0001, 0.25}, {0b0010, 0.25}, {0b0100, 0.25}, {0b1000, 0.25}});
  EXPECT_LE(r.config.total_bits(), 3);
}

TEST(IndexOptimizer, SelectHashModulesTopKByFrequency) {
  const std::vector<PatternFrequency> pats = {
      {0b001, 0.1}, {0b010, 0.4}, {0b100, 0.3}, {0b111, 0.2}};
  const auto masks = IndexOptimizer::select_hash_modules(pats, 2);
  ASSERT_EQ(masks.size(), 2u);
  EXPECT_EQ(masks[0], 0b010u);
  EXPECT_EQ(masks[1], 0b100u);
}

TEST(IndexOptimizer, SelectHashModulesSkipsFullScanPattern) {
  const std::vector<PatternFrequency> pats = {{0, 0.9}, {0b001, 0.1}};
  const auto masks = IndexOptimizer::select_hash_modules(pats, 2);
  ASSERT_EQ(masks.size(), 1u);
  EXPECT_EQ(masks[0], 0b001u);
}

TEST(IndexOptimizer, SelectHashModulesDedupes) {
  const std::vector<PatternFrequency> pats = {{0b001, 0.5}, {0b001, 0.5}};
  const auto masks = IndexOptimizer::select_hash_modules(pats, 3);
  EXPECT_EQ(masks.size(), 1u);
}

}  // namespace
}  // namespace amri::index
