// Allocation parity for the batched probe path (regression): probe_batch
// used to materialize the full wildcard-combination vector per group —
// 2^wildcard_bits bucket ids — so a wide-wildcard batch transiently
// allocated memory the equivalent sequence of probe() calls never needed.
// Combos are now materialized only up to kComboMaterializeCap (wider
// groups enumerate lazily), so the batched path's allocations must stay in
// the same league as the unbatched path's.
//
// Instrumented with replacement global new/delete that count only while a
// thread-local flag is up; everything outside the `AllocTracker` scopes
// (pool construction, inserts, gtest bookkeeping) is untracked.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "../test_util.hpp"
#include "index/bit_address_index.hpp"

namespace {

struct AllocStats {
  bool tracking = false;
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
  std::size_t peak_single = 0;  ///< largest single allocation seen
};
thread_local AllocStats g_alloc;

void note_alloc(std::size_t size) {
  if (!g_alloc.tracking) return;
  ++g_alloc.count;
  g_alloc.bytes += size;
  if (size > g_alloc.peak_single) g_alloc.peak_single = size;
}

}  // namespace

// Replacement allocation functions must live at global scope. Aligned
// overloads are deliberately not replaced: the default ones pair with the
// default aligned deletes, and nothing on the probe path over-aligns.
void* operator new(std::size_t size) {
  note_alloc(size);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  note_alloc(size);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  note_alloc(size);
  return std::malloc(size != 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  note_alloc(size);
  return std::malloc(size != 0 ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace amri::index {
namespace {

/// RAII tracking scope; snapshots counters on entry.
class AllocTracker {
 public:
  AllocTracker() {
    g_alloc = AllocStats{};
    g_alloc.tracking = true;
  }
  ~AllocTracker() { g_alloc.tracking = false; }
  AllocStats stop() {
    g_alloc.tracking = false;
    return g_alloc;
  }
};

TEST(ProbeAlloc, WideWildcardBatchMatchesUnbatchedAllocations) {
  // 12 indexed bits, all wildcard (mask 0): enum_count = 4096, which is
  // wider than kComboMaterializeCap (1024) — the group must take the lazy
  // enumeration path. Fill every one of the 4096 buckets so the
  // enumerate-vs-filter choice (enum_count <= occupied buckets) actually
  // picks enumeration, the regime the old code materialized combos in.
  const JoinAttributeSet jas({0, 1, 2});
  const IndexConfig config({4, 4, 4});
  BitAddressIndex idx(jas, config, BitMapper::hashing(3));
  testutil::TuplePool pool(60000, 3, /*domain=*/1 << 20, /*seed=*/99);
  for (const Tuple* t : pool.pointers()) idx.insert(t);
  ASSERT_EQ(idx.occupancy().occupied, 4096u)
      << "precondition: every bucket occupied, else the strategy flips to "
         "directory filtering and the regression regime is not exercised";

  constexpr std::size_t kBatch = 8;
  std::vector<ProbeKey> keys(kBatch);
  for (auto& key : keys) {
    key.mask = 0;  // full fan-out: 12 wildcard bits
    key.values = {0, 0, 0};
  }

  // Warm-up pass sizes the output vectors so the tracked passes below see
  // only the probe machinery's own allocations, not result growth (which
  // is identical on both paths by the probe_batch contract).
  std::vector<std::vector<const Tuple*>> outs_single(kBatch),
      outs_batched(kBatch);
  std::vector<ProbeStats> stats(kBatch);
  idx.probe_batch(keys.data(), kBatch, outs_single.data(), stats.data());
  for (std::size_t i = 0; i < kBatch; ++i) {
    outs_batched[i].reserve(outs_single[i].size());
    const std::size_t want = outs_single[i].size();
    outs_single[i].clear();
    outs_single[i].reserve(want);
  }

  AllocStats unbatched;
  {
    AllocTracker tracker;
    for (std::size_t i = 0; i < kBatch; ++i) {
      stats[i] = idx.probe(keys[i], outs_single[i]);
    }
    unbatched = tracker.stop();
  }
  AllocStats batched;
  {
    AllocTracker tracker;
    idx.probe_batch(keys.data(), kBatch, outs_batched.data(), stats.data());
    batched = tracker.stop();
  }
  for (std::size_t i = 0; i < kBatch; ++i) {
    ASSERT_EQ(outs_batched[i], outs_single[i]) << "key " << i;
  }

  // The old code's single combos allocation was enum_count * 8 = 32 KiB.
  // The lazy path's largest allocation is batch bookkeeping (group table,
  // hash-map node) — assert it stays an order of magnitude below a full
  // materialization, and that total batched bytes stay in the same league
  // as the unbatched passes rather than scaling with 2^wildcard_bits.
  constexpr std::size_t kFullMaterialization = 4096 * sizeof(BucketId);
  EXPECT_LT(batched.peak_single, kFullMaterialization / 4)
      << "batched probe transiently allocated a combo-vector-sized block";
  EXPECT_LE(batched.bytes, unbatched.bytes + kFullMaterialization / 4)
      << "batched probe allocates far more than the unbatched equivalent";
}

TEST(ProbeAlloc, NarrowWildcardMayMaterializeUnderCap) {
  // 8 wildcard bits (256 combos) is under the cap: materialization is
  // allowed but must be bounded by enum_count, never beyond it.
  const JoinAttributeSet jas({0, 1, 2});
  const IndexConfig config({4, 4, 0});
  BitAddressIndex idx(jas, config, BitMapper::hashing(3));
  testutil::TuplePool pool(4000, 3, /*domain=*/1 << 20, /*seed=*/7);
  for (const Tuple* t : pool.pointers()) idx.insert(t);
  ASSERT_GE(idx.occupancy().occupied, 256u);

  constexpr std::size_t kBatch = 4;
  std::vector<ProbeKey> keys(kBatch);
  for (auto& key : keys) {
    key.mask = 0;
    key.values = {0, 0, 0};
  }
  std::vector<std::vector<const Tuple*>> outs(kBatch);
  std::vector<ProbeStats> stats(kBatch);
  idx.probe_batch(keys.data(), kBatch, outs.data(), stats.data());
  for (std::size_t i = 0; i < kBatch; ++i) {
    outs[i].clear();
    outs[i].reserve(pool.size());
  }

  AllocStats batched;
  {
    AllocTracker tracker;
    idx.probe_batch(keys.data(), kBatch, outs.data(), stats.data());
    batched = tracker.stop();
  }
  EXPECT_LE(batched.peak_single, 256 * sizeof(BucketId) + 64)
      << "under-cap materialization exceeded one combo table";
}

}  // namespace
}  // namespace amri::index
