// Shared helpers for the AMRI test suite.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/tuple.hpp"

namespace amri::testutil {

/// Build a tuple with the given values; seq/ts default to 0.
inline Tuple make_tuple(std::initializer_list<Value> values, TupleSeq seq = 0,
                        TimeMicros ts = 0, StreamId stream = 0) {
  Tuple t;
  t.stream = stream;
  t.ts = ts;
  t.seq = seq;
  for (const Value v : values) t.values.push_back(v);
  return t;
}

/// A stable-addressed pool of random tuples (indexes hold Tuple pointers).
class TuplePool {
 public:
  /// `num_attrs` values per tuple, each uniform in [0, domain).
  TuplePool(std::size_t count, std::size_t num_attrs, std::int64_t domain,
            std::uint64_t seed = 1234) {
    Rng rng(seed);
    tuples_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      auto t = std::make_unique<Tuple>();
      t->seq = i;
      t->ts = static_cast<TimeMicros>(i);
      for (std::size_t a = 0; a < num_attrs; ++a) {
        t->values.push_back(static_cast<Value>(rng.below(
            static_cast<std::uint64_t>(domain))));
      }
      tuples_.push_back(std::move(t));
    }
  }

  std::size_t size() const { return tuples_.size(); }
  const Tuple* at(std::size_t i) const { return tuples_[i].get(); }

  std::vector<const Tuple*> pointers() const {
    std::vector<const Tuple*> out;
    out.reserve(tuples_.size());
    for (const auto& t : tuples_) out.push_back(t.get());
    return out;
  }

 private:
  std::vector<std::unique_ptr<Tuple>> tuples_;
};

}  // namespace amri::testutil
